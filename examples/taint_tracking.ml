(* Security monitoring with butterfly TaintCheck.

   Four exploit scenarios: a cross-thread function-pointer overwrite, a
   format-string attack, a sanitized (clean) input path, and a taint chain
   laundered across three threads in adjacent epochs.  The butterfly
   checker must flag every genuinely reachable sink (Theorem 6.2) and
   should pass the sanitized run. *)

let describe (s : Workloads.Exploit.scenario) =
  Format.printf "=== %s ===@." s.name;
  let epochs = Butterfly.Epochs.of_program s.program in
  let report = Lifeguards.Taintcheck.run ~sequential:true epochs in
  let flagged = Lifeguards.Taintcheck.flagged_sinks report in
  List.iter
    (fun e -> Format.printf "  %a@." Lifeguards.Taintcheck.pp_error e)
    report.errors;
  if report.errors = [] then Format.printf "  no tainted sinks@.";
  (* Soundness: every truly tainted sink is flagged. *)
  List.iter
    (fun sink ->
      Format.printf "  sink %a: %s@." Tracing.Addr.pp sink
        (if List.mem sink flagged then "flagged (true positive)"
         else "MISSED — soundness violation!");
      assert (List.mem sink flagged))
    s.true_positives;
  (* Precision: clean sinks should pass. *)
  List.iter
    (fun sink ->
      Format.printf "  sink %a: %s@." Tracing.Addr.pp sink
        (if List.mem sink flagged then "flagged (false positive)"
         else "clean (no false positive)"))
    s.clean_sinks;
  Format.printf "@."

let () =
  List.iter describe (Workloads.Exploit.all ());
  (* The relaxed-model variant is more conservative: it may flag more, but
     never fewer, sinks. *)
  Format.printf "=== sequential vs relaxed termination ===@.";
  List.iter
    (fun (s : Workloads.Exploit.scenario) ->
      let epochs = Butterfly.Epochs.of_program s.program in
      let sc =
        Lifeguards.Taintcheck.flagged_sinks
          (Lifeguards.Taintcheck.run ~sequential:true epochs)
      in
      let rx =
        Lifeguards.Taintcheck.flagged_sinks
          (Lifeguards.Taintcheck.run ~sequential:false epochs)
      in
      Format.printf "  %-18s SC flags %d sink(s), relaxed flags %d@." s.name
        (List.length sc) (List.length rx);
      assert (List.for_all (fun x -> List.mem x rx) sc))
    (Workloads.Exploit.all ());
  (* The pooled driver is a drop-in: same scenarios, two worker domains,
     identical reports. *)
  Format.printf "=== pooled (2 domains) vs sequential driver ===@.";
  Butterfly.Domain_pool.with_pool ~name:"example" ~domains:2 (fun pool ->
      List.iter
        (fun (s : Workloads.Exploit.scenario) ->
          let epochs = Butterfly.Epochs.of_program s.program in
          let seq = Lifeguards.Taintcheck.run epochs in
          let pooled = Lifeguards.Taintcheck.run ~pool epochs in
          Format.printf "  %-18s %d error(s), pooled report %s@." s.name
            (List.length seq.errors)
            (if seq = pooled then "identical" else "DIVERGED!");
          assert (seq = pooled))
        (Workloads.Exploit.all ()))
