(* Command-line interface: regenerate the paper's tables and figures, and
   analyze external traces with the butterfly lifeguards. *)

open Cmdliner

let scale_arg =
  let doc = "Total application instructions (split across threads)." in
  Arg.(value & opt int Harness.Experiment.default_config.total_scale
       & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Workload generation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let config_of scale seed =
  { Harness.Experiment.default_config with total_scale = scale; seed }

let table1_cmd =
  let run () = print_string (Harness.Table1.render ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table 1 (simulator and benchmark parameters)")
    Term.(const run $ const ())

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead of a table.")

let figure11_cmd =
  let run scale seed h csv =
    let config = config_of scale seed in
    let results = Harness.Figure11.run ~config ~epoch_size:h () in
    print_string
      (if csv then Harness.Figure11.to_csv results
       else Harness.Figure11.render results)
  in
  let h_arg =
    Arg.(value & opt int 512 & info [ "e"; "epoch-size" ]
         ~doc:"Epoch size in instructions per thread.")
  in
  Cmd.v (Cmd.info "figure11" ~doc:"Regenerate Figure 11 (relative performance)")
    Term.(const run $ scale_arg $ seed_arg $ h_arg $ csv_arg)

let figure12_cmd =
  let run scale seed csv =
    let config = config_of scale seed in
    let results = Harness.Figure12.run ~config () in
    print_string
      (if csv then Harness.Figure12.to_csv results
       else Harness.Figure12.render results)
  in
  Cmd.v (Cmd.info "figure12" ~doc:"Regenerate Figure 12 (performance vs epoch size)")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg)

let figure13_cmd =
  let run scale seed csv =
    let config = config_of scale seed in
    let results = Harness.Figure13.run ~config () in
    print_string
      (if csv then Harness.Figure13.to_csv results
       else Harness.Figure13.render results)
  in
  Cmd.v (Cmd.info "figure13" ~doc:"Regenerate Figure 13 (false positives vs epoch size)")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg)

let sensitivity_cmd =
  let run () = print_string (Harness.Sensitivity.render ()) in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Knob sweeps and ablations (churn/sharing/imbalance, isolation split)")
    Term.(const run $ const ())

let trace_arg =
  let doc = "Trace file (Trace_codec format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let h_arg =
  Arg.(value & opt int 64 & info [ "e"; "epoch-size" ]
       ~doc:"Re-heartbeat the trace with this epoch size (0 keeps existing \
             heartbeats).")

let load_program path h =
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let decoded =
    if String.length raw >= 5 && String.sub raw 0 5 = "BFLY1" then
      Tracing.Trace_codec.decode_binary raw
    else Tracing.Trace_codec.decode raw
  in
  match decoded with
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1
  | Ok p -> if h > 0 then Machine.Heartbeat.insert ~every:h p else p

let addrcheck_cmd =
  let run path h =
    let p = load_program path h in
    let r = Lifeguards.Addrcheck.run (Butterfly.Epochs.of_program p) in
    Format.printf "checked %d memory events; flagged %d@." r.total_accesses
      r.flagged_accesses;
    List.iter
      (fun e -> Format.printf "  %a@." Lifeguards.Addrcheck.pp_error e)
      r.errors;
    if r.errors = [] then Format.printf "  no errors@."
  in
  Cmd.v (Cmd.info "addrcheck" ~doc:"Run butterfly AddrCheck on a trace file")
    Term.(const run $ trace_arg $ h_arg)

let initcheck_cmd =
  let run path h =
    let p = load_program path h in
    let r = Lifeguards.Initcheck.run (Butterfly.Epochs.of_program p) in
    Format.printf "checked %d reads; flagged %d@." r.total_reads r.flagged_reads;
    List.iter
      (fun e -> Format.printf "  %a@." Lifeguards.Initcheck.pp_error e)
      r.errors;
    if r.errors = [] then Format.printf "  no uninitialized reads@."
  in
  Cmd.v
    (Cmd.info "initcheck"
       ~doc:"Run butterfly InitCheck (uninitialized reads) on a trace file")
    Term.(const run $ trace_arg $ h_arg)

let taintcheck_cmd =
  let run path h relaxed =
    let p = load_program path h in
    let r =
      Lifeguards.Taintcheck.run ~sequential:(not relaxed)
        (Butterfly.Epochs.of_program p)
    in
    List.iter
      (fun e -> Format.printf "  %a@." Lifeguards.Taintcheck.pp_error e)
      r.errors;
    if r.errors = [] then Format.printf "  no tainted sinks@."
  in
  let relaxed_arg =
    Arg.(value & flag & info [ "relaxed" ]
         ~doc:"Use the relaxed-consistency termination condition.")
  in
  Cmd.v (Cmd.info "taintcheck" ~doc:"Run butterfly TaintCheck on a trace file")
    Term.(const run $ trace_arg $ h_arg $ relaxed_arg)

let generate_cmd =
  let run name threads scale seed binary =
    match Workloads.Registry.find name with
    | None ->
      prerr_endline
        ("unknown workload (try: "
        ^ String.concat ", " Workloads.Registry.names
        ^ ")");
      exit 1
    | Some profile ->
      let p =
        Workloads.Workload.generate_program profile ~threads ~scale ~seed
      in
      print_string
        (if binary then Tracing.Trace_codec.encode_binary p
         else Tracing.Trace_codec.encode p)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Benchmark name (e.g. ocean).")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Application threads.")
  in
  let scale2_arg =
    Arg.(value & opt int 4000 & info [ "scale" ]
         ~doc:"Instructions per thread.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ] ~doc:"Emit the compact binary format.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a synthetic benchmark trace to stdout")
    Term.(const run $ name_arg $ threads_arg $ scale2_arg $ seed_arg $ binary_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "butterfly_cli" ~version:"1.0"
             ~doc:"Butterfly analysis: experiments and trace checking")
          [
            table1_cmd; figure11_cmd; figure12_cmd; figure13_cmd;
            sensitivity_cmd; addrcheck_cmd; taintcheck_cmd; initcheck_cmd;
            generate_cmd;
          ]))
