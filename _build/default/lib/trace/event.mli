(** Events delivered to a lifeguard thread.

    A lifeguard consumes the monitored thread's dynamic instructions
    interleaved with {e heartbeat} markers.  Heartbeats are delivered to all
    threads (not necessarily simultaneously) and demarcate uncertainty-epoch
    boundaries (Section 4.1). *)

type t =
  | Instr of Instr.t  (** An application instruction. *)
  | Heartbeat  (** Epoch boundary marker inserted into the log. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
