(** A monitored parallel execution: one dynamic trace per application
    thread.

    This is the monitoring model of Section 2 — multiple event sequences,
    one per application thread, each processed by its own lifeguard thread.
    No inter-thread ordering information is recorded. *)

type t

val make : Trace.t list -> t
(** Thread [t]'s trace is the [t]-th element. *)

val of_instrs : Instr.t list list -> t

val threads : t -> int
val trace : t -> Tid.t -> Trace.t
val traces : t -> Trace.t array

val total_instrs : t -> int
val total_memory_events : t -> int

val with_heartbeats : every:int -> t -> t
(** Re-heartbeat every thread with the given epoch size (in instructions per
    thread).  Staggered delivery is modelled downstream by the epoch
    assignment, not here. *)

val map_traces : (Tid.t -> Trace.t -> Trace.t) -> t -> t
val pp : Format.formatter -> t -> unit
