type t = { traces : Trace.t array }

let make ts =
  if ts = [] then invalid_arg "Program.make: no threads";
  { traces = Array.of_list ts }

let of_instrs iss = make (List.map Trace.of_instrs iss)
let threads p = Array.length p.traces

let trace p t =
  if t < 0 || t >= threads p then invalid_arg "Program.trace: bad tid";
  p.traces.(t)

let traces p = Array.copy p.traces

let total_instrs p =
  Array.fold_left (fun n tr -> n + Trace.instr_count tr) 0 p.traces

let total_memory_events p =
  Array.fold_left (fun n tr -> n + Trace.memory_event_count tr) 0 p.traces

let with_heartbeats ~every p =
  { traces = Array.map (Trace.with_heartbeats ~every) p.traces }

let map_traces f p = { traces = Array.mapi f p.traces }

let pp ppf p =
  Array.iteri
    (fun t tr ->
      Format.fprintf ppf "--- %a ---@.%a" Tid.pp t Trace.pp tr)
    p.traces
