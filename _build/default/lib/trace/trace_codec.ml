let encode_event buf tid e =
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let a = Addr.to_string in
  (match e with
  | Event.Heartbeat -> addf "%d heartbeat" tid
  | Event.Instr i -> (
    match i with
    | Instr.Assign_const x -> addf "%d assign %s" tid (a x)
    | Instr.Assign_unop (x, s) -> addf "%d unop %s %s" tid (a x) (a s)
    | Instr.Assign_binop (x, s1, s2) ->
      addf "%d binop %s %s %s" tid (a x) (a s1) (a s2)
    | Instr.Read s -> addf "%d read %s" tid (a s)
    | Instr.Malloc { base; size } -> addf "%d malloc %s %d" tid (a base) size
    | Instr.Free { base; size } -> addf "%d free %s %d" tid (a base) size
    | Instr.Taint_source x -> addf "%d taint %s" tid (a x)
    | Instr.Untaint x -> addf "%d untaint %s" tid (a x)
    | Instr.Jump_via x -> addf "%d jump %s" tid (a x)
    | Instr.Syscall_arg x -> addf "%d sysarg %s" tid (a x)
    | Instr.Nop -> addf "%d nop" tid));
  Buffer.add_char buf '\n'

let encode p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "threads %d\n" (Program.threads p));
  for t = 0 to Program.threads p - 1 do
    Array.iter (encode_event buf t) (Trace.events (Program.trace p t))
  done;
  Buffer.contents buf

let encode_to_channel oc p = output_string oc (encode p)

let parse_line lineno line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | [ "threads"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Some (n - 1, `Declare))
    | _ -> fail "bad thread count %S" n)
  | tid_s :: rest -> (
    match int_of_string_opt tid_s with
    | None -> fail "bad thread id %S" tid_s
    | Some tid when tid < 0 -> fail "negative thread id"
    | Some tid -> (
      let addr w =
        match Addr.of_string w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad address %S" lineno w)
      in
      let int w =
        match int_of_string_opt w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad integer %S" lineno w)
      in
      let ( let* ) = Result.bind in
      let instr i = Ok (Some (tid, `Event (Event.Instr i))) in
      match rest with
      | [ "heartbeat" ] -> Ok (Some (tid, `Event Event.Heartbeat))
      | [ "nop" ] -> instr Instr.Nop
      | [ "assign"; x ] ->
        let* x = addr x in
        instr (Instr.Assign_const x)
      | [ "unop"; x; s ] ->
        let* x = addr x in
        let* s = addr s in
        instr (Instr.Assign_unop (x, s))
      | [ "binop"; x; s1; s2 ] ->
        let* x = addr x in
        let* s1 = addr s1 in
        let* s2 = addr s2 in
        instr (Instr.Assign_binop (x, s1, s2))
      | [ "read"; s ] ->
        let* s = addr s in
        instr (Instr.Read s)
      | [ "malloc"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Malloc { base = b; size = sz })
      | [ "free"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Free { base = b; size = sz })
      | [ "taint"; x ] ->
        let* x = addr x in
        instr (Instr.Taint_source x)
      | [ "untaint"; x ] ->
        let* x = addr x in
        instr (Instr.Untaint x)
      | [ "jump"; x ] ->
        let* x = addr x in
        instr (Instr.Jump_via x)
      | [ "sysarg"; x ] ->
        let* x = addr x in
        instr (Instr.Syscall_arg x)
      | mnemonic :: _ -> fail "unknown mnemonic %S" mnemonic
      | [] -> fail "missing mnemonic"))

let decode s =
  let lines = String.split_on_char '\n' s in
  let table : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let max_tid = ref (-1) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then
        go (lineno + 1) rest
      else (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) rest
        | Ok (Some (tid, `Declare)) ->
          max_tid := max !max_tid tid;
          go (lineno + 1) rest
        | Ok (Some (tid, `Event ev)) ->
          max_tid := max !max_tid tid;
          let cell =
            match Hashtbl.find_opt table tid with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add table tid c;
              c
          in
          cell := ev :: !cell;
          go (lineno + 1) rest)
  in
  match go 1 lines with
  | Error m -> Error m
  | Ok () ->
    if !max_tid < 0 then Error "empty trace: no events"
    else
      let ts =
        List.init (!max_tid + 1) (fun t ->
            match Hashtbl.find_opt table t with
            | None -> Trace.of_events []
            | Some c -> Trace.of_events (List.rev !c))
      in
      Ok (Program.make ts)

let decode_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> decode s
  | exception Sys_error m -> Error m

let roundtrip_exn p =
  match decode (encode p) with
  | Ok p' -> p'
  | Error m -> failwith ("Trace_codec.roundtrip_exn: " ^ m)

(* ------------------------------------------------------------------ *)
(* Binary format. *)

let magic = "BFLY1"

let put_varint buf n =
  if n < 0 then invalid_arg "Trace_codec.encode_binary: negative operand";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then (
      Buffer.add_char buf (Char.chr b);
      continue := false)
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let opcode = function
  | Event.Heartbeat -> 0
  | Event.Instr i -> (
    match i with
    | Instr.Nop -> 1
    | Instr.Assign_const _ -> 2
    | Instr.Assign_unop _ -> 3
    | Instr.Assign_binop _ -> 4
    | Instr.Read _ -> 5
    | Instr.Malloc _ -> 6
    | Instr.Free _ -> 7
    | Instr.Taint_source _ -> 8
    | Instr.Untaint _ -> 9
    | Instr.Jump_via _ -> 10
    | Instr.Syscall_arg _ -> 11)

let put_event buf e =
  Buffer.add_char buf (Char.chr (opcode e));
  match e with
  | Event.Heartbeat -> ()
  | Event.Instr i -> (
    match i with
    | Instr.Nop -> ()
    | Instr.Assign_const x | Instr.Read x | Instr.Taint_source x
    | Instr.Untaint x | Instr.Jump_via x | Instr.Syscall_arg x ->
      put_varint buf x
    | Instr.Assign_unop (x, a) ->
      put_varint buf x;
      put_varint buf a
    | Instr.Assign_binop (x, a, b) ->
      put_varint buf x;
      put_varint buf a;
      put_varint buf b
    | Instr.Malloc { base; size } | Instr.Free { base; size } ->
      put_varint buf base;
      put_varint buf size)

let encode_binary p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf (Program.threads p);
  for t = 0 to Program.threads p - 1 do
    let events = Trace.events (Program.trace p t) in
    put_varint buf (Array.length events);
    Array.iter (put_event buf) events
  done;
  Buffer.contents buf

exception Malformed of string

let decode_binary s =
  let pos = ref 0 in
  let len = String.length s in
  let byte () =
    if !pos >= len then raise (Malformed "truncated input");
    let b = Char.code s.[!pos] in
    incr pos;
    b
  in
  let varint () =
    let rec go shift acc =
      if shift > 56 then raise (Malformed "varint too long");
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0
  in
  let event () =
    match byte () with
    | 0 -> Event.Heartbeat
    | 1 -> Event.Instr Instr.Nop
    | 2 -> Event.Instr (Instr.Assign_const (varint ()))
    | 3 ->
      let x = varint () in
      Event.Instr (Instr.Assign_unop (x, varint ()))
    | 4 ->
      let x = varint () in
      let a = varint () in
      Event.Instr (Instr.Assign_binop (x, a, varint ()))
    | 5 -> Event.Instr (Instr.Read (varint ()))
    | 6 ->
      let base = varint () in
      Event.Instr (Instr.Malloc { base; size = varint () })
    | 7 ->
      let base = varint () in
      Event.Instr (Instr.Free { base; size = varint () })
    | 8 -> Event.Instr (Instr.Taint_source (varint ()))
    | 9 -> Event.Instr (Instr.Untaint (varint ()))
    | 10 -> Event.Instr (Instr.Jump_via (varint ()))
    | 11 -> Event.Instr (Instr.Syscall_arg (varint ()))
    | op -> raise (Malformed (Printf.sprintf "unknown opcode %d" op))
  in
  try
    if len < String.length magic || String.sub s 0 (String.length magic) <> magic
    then Error "bad magic"
    else (
      pos := String.length magic;
      let threads = varint () in
      if threads <= 0 || threads > 4096 then raise (Malformed "bad thread count");
      let ts =
        List.init threads (fun _ ->
            let n = varint () in
            if n < 0 || n > 100_000_000 then raise (Malformed "bad event count");
            Trace.of_events (List.init n (fun _ -> event ())))
      in
      if !pos <> len then Error "trailing bytes" else Ok (Program.make ts))
  with Malformed m -> Error m

let binary_roundtrip_exn p =
  match decode_binary (encode_binary p) with
  | Ok p2 -> p2
  | Error m -> failwith ("Trace_codec.binary_roundtrip_exn: " ^ m)
