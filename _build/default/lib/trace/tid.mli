(** Application thread identifiers.

    Threads are numbered densely from [0]; thread [t]'s dynamic trace is the
    [t]-th event sequence of a {!Program.t}. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
