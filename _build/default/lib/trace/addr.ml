type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf a = Format.fprintf ppf "0x%x" a
let to_string a = Format.asprintf "%a" pp a

let of_string s =
  match int_of_string_opt s with
  | Some a -> Some a
  | None -> None
