lib/trace/event.mli: Format Instr
