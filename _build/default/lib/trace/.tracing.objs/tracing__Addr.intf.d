lib/trace/addr.mli: Format
