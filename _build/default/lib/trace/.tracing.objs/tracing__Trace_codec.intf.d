lib/trace/trace_codec.mli: Program
