lib/trace/instr.ml: Addr Format List Stdlib
