lib/trace/addr.ml: Format Hashtbl Int
