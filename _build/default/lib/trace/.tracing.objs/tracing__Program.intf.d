lib/trace/program.mli: Format Instr Tid Trace
