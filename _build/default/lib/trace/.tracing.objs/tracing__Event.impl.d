lib/trace/event.ml: Format Instr
