lib/trace/trace.ml: Array Event Format Instr List
