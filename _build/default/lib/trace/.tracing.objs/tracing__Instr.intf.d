lib/trace/instr.mli: Addr Format
