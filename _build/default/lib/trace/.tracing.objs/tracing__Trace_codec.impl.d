lib/trace/trace_codec.ml: Addr Array Buffer Char Event Hashtbl In_channel Instr List Printf Program Result String Trace
