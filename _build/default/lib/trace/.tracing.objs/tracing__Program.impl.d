lib/trace/program.ml: Array Format List Tid Trace
