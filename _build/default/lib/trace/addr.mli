(** Application memory addresses.

    Lifeguards maintain shadow metadata for every location in the monitored
    application's address space; we represent locations as plain integer
    byte addresses. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** [pp] prints addresses in hexadecimal, e.g. [0x1f40]. *)

val to_string : t -> string

val of_string : string -> t option
(** [of_string s] parses decimal or [0x]-prefixed hexadecimal. *)
