type t = Instr of Instr.t | Heartbeat

let equal a b =
  match (a, b) with
  | Heartbeat, Heartbeat -> true
  | Instr i, Instr j -> Instr.equal i j
  | (Instr _ | Heartbeat), _ -> false

let pp ppf = function
  | Instr i -> Instr.pp ppf i
  | Heartbeat -> Format.fprintf ppf "-- heartbeat --"
