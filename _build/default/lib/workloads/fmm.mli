(** FMM (Splash-2): adaptive fast multipole method.

    Reproduced profile: cell structures allocated occasionally (less churn
    than BARNES), interaction-list traversals with good locality within a
    cell, high compute-to-memory ratio (multipole expansions), balanced
    partitions. *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
