(** FFT (Splash-2): radix-2 six-step FFT.

    Reproduced profile: a single up-front allocation of the data and
    twiddle arrays, strided butterfly stages within each thread's partition
    (stride doubling each stage degrades locality), and all-to-all
    transpose phases that write into other threads' partitions — high
    memory-event density, negligible allocation churn. *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
