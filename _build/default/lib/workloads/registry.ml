let all =
  [
    Barnes.profile;
    Fft.profile;
    Fmm.profile;
    Ocean.profile;
    Blackscholes.profile;
    Lu.profile;
  ]

let find name =
  List.find_opt (fun (p : Workload.profile) -> p.name = name) all

let names = List.map (fun (p : Workload.profile) -> p.name) all

let table1_rows =
  List.map
    (fun (p : Workload.profile) ->
      (String.uppercase_ascii p.name, p.suite, p.input_desc))
    all
