module I = Tracing.Instr

(* Fixed problem size: 64 cells of 16 lines each, partitioned across
   threads.  Compute-dominated (multipole expansions), with an occasional
   adaptive re-allocation of a single cell. *)

let total_cells = 64
let cell_elems = 32
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Fmm.generate: threads must be > 0";
  if total_cells mod threads <> 0 then
    invalid_arg "Fmm.generate: threads must divide 64";
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let rngs =
    Array.init threads (fun t -> Random.State.make [| seed; t; 0xf33 |])
  in
  let cells_per_thread = total_cells / threads in
  let cells =
    Array.init threads (fun t ->
        Array.init cells_per_thread (fun _ ->
            Workload.Heap.alloc heap ems.(t) (64 * cell_elems)))
  in
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let rebuild_countdown = ref 2 in
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    (* Occasional adaptive rebuild: each thread re-allocates one cell. *)
    decr rebuild_countdown;
    if !rebuild_countdown = 0 then (
      rebuild_countdown := 2;
      Array.iteri
        (fun t em ->
          let c = Random.State.int rngs.(t) cells_per_thread in
          Workload.Heap.free heap em cells.(t).(c);
          cells.(t).(c) <- Workload.Heap.alloc heap em (64 * cell_elems))
        ems);
    (* Upward pass: expansions over the thread's own cells. *)
    Array.iteri
      (fun t em ->
        Array.iter
          (fun cell ->
            for k = 0 to cell_elems - 1 do
              Workload.Emitter.emit em
                (I.Assign_binop
                   ( Workload.elem_l cell k,
                     Workload.elem_l cell k,
                     Workload.elem_l cell ((k + 1) mod cell_elems) ));
              Workload.Emitter.nops em 5
            done)
          cells.(t))
      ems;
    (* Interaction pass: read a few neighbour threads' cells. *)
    Array.iteri
      (fun t em ->
        let rng = rngs.(t) in
        for _ = 1 to cells_per_thread do
          let t' =
            if threads = 1 then t
            else (t + 1 + Random.State.int rng (threads - 1)) mod threads
          in
          let cell = cells.(t').(Random.State.int rng cells_per_thread) in
          let acc = Workload.elem_l cells.(t).(0) 0 in
          for k = 0 to 3 do
            Workload.Emitter.emit em
              (I.Assign_binop (acc, acc, Workload.elem_l cell (4 * k)));
            Workload.Emitter.nops em 6
          done
        done)
      ems
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  Array.iteri
    (fun t row -> Array.iter (fun c -> Workload.Heap.free heap ems.(t) c) row)
    cells;
  bundle

let profile =
  {
    Workload.name = "fmm";
    suite = "Splash-2";
    input_desc = "32768 bodies";
    generate;
  }
