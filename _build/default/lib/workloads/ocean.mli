(** OCEAN (Splash-2): red-black Gauss-Seidel ocean current simulation.

    Reproduced profile: banded grid partitioning with 5-point stencil
    sweeps, heavy boundary-row sharing between adjacent threads every
    iteration, and per-iteration exchange buffers that are freed and
    re-allocated by their owners and immediately read by neighbours — the
    allocation/access pattern whose adjacent-epoch concurrency makes OCEAN
    the false-positive outlier of Figure 13. *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
