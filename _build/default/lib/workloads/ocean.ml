module I = Tracing.Instr

(* Fixed problem size: a 32 x 64 grid banded across threads.  Every
   iteration each thread recycles (frees and re-allocates) its boundary
   exchange buffer and neighbours read it immediately — the
   allocation/access concurrency that makes OCEAN the false-positive
   outlier of Figure 13. *)

let total_rows = 32
let cols = 64
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Ocean.generate: threads must be > 0";
  if total_rows mod threads <> 0 then
    invalid_arg "Ocean.generate: threads must divide 32";
  ignore seed;
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let rows_per_thread = total_rows / threads in
  let bands =
    Array.init threads (fun t ->
        Workload.Heap.alloc heap ems.(t) (64 * cols * rows_per_thread))
  in
  let exch =
    Array.init threads (fun t -> Workload.Heap.alloc heap ems.(t) (64 * cols))
  in
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let cell band r c = Workload.elem_l band ((r * cols) + c) in
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    (* Exchange: recycle the boundary buffer and publish the top row. *)
    Array.iteri
      (fun t em ->
        Workload.Heap.free heap em exch.(t);
        exch.(t) <- Workload.Heap.alloc heap em (64 * cols);
        for c = 0 to cols - 1 do
          Workload.Emitter.emit em
            (I.Assign_unop (Workload.elem_l exch.(t) c, cell bands.(t) 0 c))
        done)
      ems;
    (* Stencil sweep: interior from the own band, boundary row from the
       neighbour's freshly re-allocated exchange buffer. *)
    Array.iteri
      (fun t em ->
        let up = (t + threads - 1) mod threads in
        for r = 0 to rows_per_thread - 1 do
          for c = 1 to cols - 2 do
            let center = cell bands.(t) r c in
            let north =
              if r = 0 then Workload.elem_l exch.(up) c
              else cell bands.(t) (r - 1) c
            in
            let west = cell bands.(t) r (c - 1) in
            Workload.Emitter.emit em (I.Assign_binop (center, north, west));
            Workload.Emitter.nops em 1
          done
        done)
      ems
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  Array.iteri (fun t base -> Workload.Heap.free heap ems.(t) base) exch;
  Array.iteri (fun t base -> Workload.Heap.free heap ems.(t) base) bands;
  bundle

let profile =
  {
    Workload.name = "ocean";
    suite = "Splash-2";
    input_desc = "Grid size: 258 x 258";
    generate;
  }
