lib/workloads/lu.ml: Array Tracing Workload
