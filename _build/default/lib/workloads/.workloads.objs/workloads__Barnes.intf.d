lib/workloads/barnes.mli: Workload
