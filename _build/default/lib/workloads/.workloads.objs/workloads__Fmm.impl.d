lib/workloads/fmm.ml: Array Random Tracing Workload
