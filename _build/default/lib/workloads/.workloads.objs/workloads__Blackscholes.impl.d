lib/workloads/blackscholes.ml: Array Tracing Workload
