lib/workloads/barnes.ml: Array Random Tracing Workload
