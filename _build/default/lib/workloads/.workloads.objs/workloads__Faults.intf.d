lib/workloads/faults.mli: Format Tracing
