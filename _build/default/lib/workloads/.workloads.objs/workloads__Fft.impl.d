lib/workloads/fft.ml: Array Tracing Workload
