lib/workloads/faults.ml: Format Synthetic Tracing Workload
