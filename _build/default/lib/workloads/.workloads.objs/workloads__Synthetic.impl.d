lib/workloads/synthetic.ml: Array Printf Random Tracing Workload
