lib/workloads/registry.ml: Barnes Blackscholes Fft Fmm List Lu Ocean String Workload
