lib/workloads/workload.ml: Array Hashtbl List Tracing
