lib/workloads/ocean.ml: Array Tracing Workload
