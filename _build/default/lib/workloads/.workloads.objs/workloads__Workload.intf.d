lib/workloads/workload.mli: Tracing
