lib/workloads/fmm.mli: Workload
