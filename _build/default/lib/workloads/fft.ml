module I = Tracing.Instr

(* Fixed problem size: 512 complex points in one shared array plus a
   twiddle table, partitioned by rows across threads. *)

let total_points = 512
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Fft.generate: threads must be > 0";
  if total_points mod (threads * threads) <> 0 then
    invalid_arg "Fft.generate: threads^2 must divide 512";
  ignore seed;
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let points_per_thread = total_points / threads in
  let data = Workload.Heap.alloc heap ems.(0) (64 * total_points) in
  let twiddle = Workload.Heap.alloc heap ems.(0) (64 * total_points) in
  for k = 0 to (total_points / 2) - 1 do
    Workload.Emitter.emit ems.(0)
      (I.Assign_const (Workload.elem_l twiddle (2 * k)))
  done;
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let stages = 8 in
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    (* Local butterfly stages on each thread's contiguous partition. *)
    Array.iteri
      (fun t em ->
        let base = t * points_per_thread in
        for stage = 0 to stages - 1 do
          let stride = 1 lsl stage in
          let k = ref 0 in
          while !k < points_per_thread - stride do
            let a = Workload.elem_l data (base + !k) in
            let b = Workload.elem_l data (base + !k + stride) in
            let w = Workload.elem_l twiddle (2 * (!k mod (total_points / 2))) in
            Workload.Emitter.emit em (I.Assign_binop (b, b, w));
            Workload.Emitter.emit em (I.Assign_binop (a, a, b));
            Workload.Emitter.nops em 1;
            k := !k + (2 * stride)
          done
        done)
      ems;
    (* Transpose: all-to-all writes into other threads' partitions. *)
    Array.iteri
      (fun t em ->
        let chunk = points_per_thread / threads in
        for dst = 0 to threads - 1 do
          for k = 0 to chunk - 1 do
            let src_i = (t * points_per_thread) + (dst * chunk) + k in
            let dst_i = (dst * points_per_thread) + (t * chunk) + k in
            Workload.Emitter.emit em
              (I.Assign_unop
                 (Workload.elem_l data dst_i, Workload.elem_l data src_i))
          done
        done)
      ems
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  Workload.Heap.free heap ems.(0) twiddle;
  Workload.Heap.free heap ems.(0) data;
  bundle

let profile =
  {
    Workload.name = "fft";
    suite = "Splash-2";
    input_desc = "m = 20 (2^20 sized matrix)";
    generate;
  }
