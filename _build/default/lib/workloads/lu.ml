module I = Tracing.Instr

(* Fixed problem size: a 6x6 grid of 32-line blocks with striped ownership.
   Phase k factorizes the diagonal block (owner works alone), updates the
   perimeter, then the trailing submatrix — the shrinking active set gives
   the growing load imbalance characteristic of LU. *)

let nb = 6
let be = 32
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Lu.generate: threads must be > 0";
  ignore seed;
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let owner bi bj = (bi + (bj * nb)) mod threads in
  let blocks =
    Array.init nb (fun bi ->
        Array.init nb (fun bj ->
            Workload.Heap.alloc heap ems.(owner bi bj) (64 * be)))
  in
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let touch em ?(w = true) block k =
    let a = Workload.elem_l block (k mod be) in
    if w then Workload.Emitter.emit em (I.Assign_binop (a, a, a))
    else Workload.Emitter.emit em (I.Read a)
  in
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    let k = ref 0 in
    while (not (done_ ())) && !k < nb do
      let kk = !k in
      (* Diagonal factorization: only the owner works. *)
      let t0 = owner kk kk in
      for e = 0 to be - 1 do
        touch ems.(t0) blocks.(kk).(kk) e;
        Workload.Emitter.nops ems.(t0) 1
      done;
      (* Perimeter: row/col block owners read the diagonal block. *)
      for j = kk + 1 to nb - 1 do
        let t = owner kk j in
        for e = 0 to (be / 2) - 1 do
          touch ems.(t) ~w:false blocks.(kk).(kk) e;
          touch ems.(t) blocks.(kk).(j) e
        done;
        let t = owner j kk in
        for e = 0 to (be / 2) - 1 do
          touch ems.(t) ~w:false blocks.(kk).(kk) e;
          touch ems.(t) blocks.(j).(kk) e
        done
      done;
      (* Trailing update: owners read the perimeter blocks. *)
      for i = kk + 1 to nb - 1 do
        for j = kk + 1 to nb - 1 do
          let t = owner i j in
          for e = 0 to (be / 4) - 1 do
            touch ems.(t) ~w:false blocks.(i).(kk) e;
            touch ems.(t) ~w:false blocks.(kk).(j) e;
            touch ems.(t) blocks.(i).(j) e;
            Workload.Emitter.nops ems.(t) 1
          done
        done
      done;
      incr k
    done
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  for bi = 0 to nb - 1 do
    for bj = 0 to nb - 1 do
      Workload.Heap.free heap ems.(owner bi bj) blocks.(bi).(bj)
    done
  done;
  bundle

let profile =
  {
    Workload.name = "lu";
    suite = "Splash-2";
    input_desc = "Matrix size: 1024 x 1024, b = 64";
    generate;
  }
