module I = Tracing.Instr

(* Fixed problem size: 512 bodies and a 128-node tree, partitioned across
   threads.  The node pool is allocated once and rewired in place each
   timestep, as in the Splash-2 original. *)

let total_bodies = 2048
let tree_nodes = 512
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Barnes.generate: threads must be > 0";
  if total_bodies mod threads <> 0 then
    invalid_arg "Barnes.generate: threads must divide 2048";
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let rngs =
    Array.init threads (fun t -> Random.State.make [| seed; t; 0xba41e5 |])
  in
  let bodies_per_thread = total_bodies / threads in
  let bodies =
    Array.init threads (fun t ->
        Workload.Heap.alloc heap ems.(t) (64 * bodies_per_thread))
  in
  let tree = ref (Workload.Heap.alloc heap ems.(0) (64 * tree_nodes)) in
  (* Warm-up: let the initial allocations reach the strongly ordered past
     before compute begins (real runs spend this time in startup code). *)
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    (* Master rewires tree nodes in place (the node pool is allocated once,
       as in Splash-2 BARNES). *)
    let em0 = ems.(0) in
    for n = 0 to (tree_nodes / 4) - 1 do
      Workload.Emitter.emit em0
        (I.Assign_const (Workload.elem_l !tree (n * 4 mod tree_nodes)))
    done;
    (* All threads: force phase — pointer-chasing walks of the shared tree,
       then a write-back to the thread's own bodies. *)
    Array.iteri
      (fun t em ->
        let rng = rngs.(t) in
        for b = 0 to bodies_per_thread - 1 do
          let acc = Workload.elem_l bodies.(t) b in
          let node = ref (Random.State.int rng tree_nodes) in
          for _ = 1 to 4 do
            Workload.Emitter.emit em
              (I.Assign_binop (acc, acc, Workload.elem_l !tree !node));
            node := (!node * 2 + 1 + Random.State.int rng 3) mod tree_nodes;
            Workload.Emitter.nops em 2
          done;
          Workload.Emitter.emit em (I.Assign_const (Workload.elem_l bodies.(t) b))
        done)
      ems
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  Workload.Heap.free heap ems.(0) !tree;
  Array.iteri (fun t base -> Workload.Heap.free heap ems.(t) base) bodies;
  bundle

let profile =
  {
    Workload.name = "barnes";
    suite = "Splash-2";
    input_desc = "16384 bodies";
    generate;
  }
