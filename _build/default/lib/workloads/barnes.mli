(** BARNES (Splash-2): Barnes–Hut N-body.

    Reproduced profile: per-iteration octree rebuild (allocation churn by
    the master thread), force computation by irregular pointer-chasing tree
    walks (poor locality), balanced per-body updates to thread-private
    partitions, moderate memory-event density. *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
