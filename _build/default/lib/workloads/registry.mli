(** The benchmark registry: the six monitored applications of Table 1. *)

val all : Workload.profile list
val find : string -> Workload.profile option
val names : string list

val table1_rows : (string * string * string) list
(** (application, suite, input data set) — the benchmark half of Table 1. *)
