module I = Tracing.Instr

(* Fixed problem size: 256 options in one compact, read-only input array
   with disjoint per-thread output slices.  Embarrassingly parallel, small
   footprint, no sharing, no churn: the timesliced lifeguard filters nearly
   everything, which is what keeps the baseline competitive here
   (Figure 11). *)

let total_options = 256
let fields = 6
let warmup = 1100

let generate ~threads ~scale ~seed =
  if threads <= 0 then invalid_arg "Blackscholes.generate: threads must be > 0";
  if total_options mod threads <> 0 then
    invalid_arg "Blackscholes.generate: threads must divide 256";
  ignore seed;
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let options_per_thread = total_options / threads in
  (* Inputs are packed at 8-byte stride (6 fields = one cache line per
     option); outputs likewise. *)
  let inputs = Workload.Heap.alloc heap ems.(0) (8 * total_options * fields) in
  let outputs = Workload.Heap.alloc heap ems.(0) (8 * total_options) in
  for k = 0 to total_options - 1 do
    Workload.Emitter.emit ems.(0)
      (I.Assign_const (Workload.elem inputs (k * fields)))
  done;
  Array.iter (fun em -> Workload.Emitter.nops em warmup) ems;
  let done_ () = Array.for_all (fun e -> Workload.Emitter.length e >= scale) ems in
  while not (done_ ()) do
    Array.iteri
      (fun t em ->
        for o = 0 to options_per_thread - 1 do
          let opt = (t * options_per_thread) + o in
          let price = Workload.elem outputs opt in
          for f = 0 to fields - 1 do
            Workload.Emitter.emit em
              (I.Assign_binop
                 (price, price, Workload.elem inputs ((opt * fields) + f)))
          done;
          (* CND evaluations: compute between accesses. *)
          Workload.Emitter.nops em 10;
          Workload.Emitter.emit em (I.Assign_const price)
        done)
      ems
  done;
  Workload.Bundle.align ~extra:warmup bundle;
  Workload.Heap.free heap ems.(0) outputs;
  Workload.Heap.free heap ems.(0) inputs;
  bundle

let profile =
  {
    Workload.name = "blackscholes";
    suite = "Parsec 2.0";
    input_desc = "16384 options (simmedium)";
    generate;
  }
