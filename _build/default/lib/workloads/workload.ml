module Emitter = struct
  type t = {
    mutable rev : Tracing.Instr.t list;
    mutable len : int;
    canonical : Tracing.Instr.t list ref;
  }

  let create ~canonical = { rev = []; len = 0; canonical }

  let emit t i =
    t.rev <- i :: t.rev;
    t.len <- t.len + 1;
    t.canonical := i :: !(t.canonical)

  let nops t n =
    for _ = 1 to n do
      emit t Tracing.Instr.Nop
    done

  let length t = t.len
  let to_trace t = Tracing.Trace.of_instrs (List.rev t.rev)
end

module Bundle = struct
  type t = { emitters : Emitter.t array; canonical : Tracing.Instr.t list ref }

  let create ~threads =
    if threads <= 0 then invalid_arg "Bundle.create: threads must be > 0";
    let canonical = ref [] in
    {
      emitters = Array.init threads (fun _ -> Emitter.create ~canonical);
      canonical;
    }

  let emitters t = t.emitters

  let em t tid =
    if tid < 0 || tid >= Array.length t.emitters then
      invalid_arg "Bundle.em: bad tid";
    t.emitters.(tid)

  let program t =
    Tracing.Program.make (Array.to_list (Array.map Emitter.to_trace t.emitters))

  let canonical t = List.rev !(t.canonical)

  let align ?(extra = 0) t =
    let target =
      extra
      + Array.fold_left (fun m e -> max m (Emitter.length e)) 0 t.emitters
    in
    Array.iter
      (fun e -> Emitter.nops e (max 0 (target - Emitter.length e)))
      t.emitters
end

type profile = {
  name : string;
  suite : string;
  input_desc : string;
  generate : threads:int -> scale:int -> seed:int -> Bundle.t;
}

let generate_program p ~threads ~scale ~seed =
  Bundle.program (p.generate ~threads ~scale ~seed)

module Heap = struct
  type t = {
    mutable next : int;
    live : (int, int) Hashtbl.t; (* base -> size *)
  }

  let create ?(base = 0x10000) () = { next = base; live = Hashtbl.create 64 }

  let alloc_silent t size =
    if size <= 0 then invalid_arg "Heap.alloc: size must be > 0";
    let base = t.next in
    t.next <- t.next + ((size + 7) / 8 * 8);
    Hashtbl.replace t.live base size;
    base

  let alloc t em size =
    let base = alloc_silent t size in
    Emitter.emit em (Tracing.Instr.Malloc { base; size });
    base

  let free t em base =
    match Hashtbl.find_opt t.live base with
    | None -> invalid_arg "Heap.free: unknown or already-freed base"
    | Some size ->
      Hashtbl.remove t.live base;
      Emitter.emit em (Tracing.Instr.Free { base; size })

  let size_of t base = Hashtbl.find_opt t.live base
end

let elem base i = base + (8 * i)
let elem_l base i = base + (64 * i)
