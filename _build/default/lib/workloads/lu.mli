(** LU (Splash-2): blocked dense LU factorization.

    Reproduced profile: one up-front matrix allocation in per-thread-owned
    blocks, phase-structured elimination where the diagonal-block owner
    works alone (growing load imbalance as the trailing matrix shrinks),
    perimeter updates reading the freshly written pivot blocks of other
    threads (cross-thread sharing with one-phase lag), dense local access
    within blocks. *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
