(** Workload infrastructure: trace emitters and a simulated heap.

    The paper's evaluation monitors Splash-2 and Parsec 2.0 benchmarks;
    those binaries (and the Simics/LBA infrastructure that traces them) are
    not available, so each benchmark is reproduced as a {e synthetic
    kernel}: a generator that emits per-thread dynamic traces with the
    benchmark's characteristic instruction mix, locality, inter-thread
    sharing and allocation behaviour — the properties the evaluation's
    results actually depend on.

    Generators emit through a {!Bundle}, which records the {e canonical
    interleaving} (global emission order).  Kernels are written so that
    this interleaving is race-free: it is the "actual execution" a
    sequential lifeguard would observe, making every butterfly finding on a
    clean workload a measurable false positive. *)

(** Per-thread trace emitter. *)
module Emitter : sig
  type t

  val emit : t -> Tracing.Instr.t -> unit
  val nops : t -> int -> unit
  val length : t -> int
end

(** A multi-threaded trace under construction. *)
module Bundle : sig
  type t

  val create : threads:int -> t
  val emitters : t -> Emitter.t array
  val em : t -> Tracing.Tid.t -> Emitter.t

  val program : t -> Tracing.Program.t
  (** The per-thread traces (no heartbeats; add them downstream). *)

  val canonical : t -> Tracing.Instr.t list
  (** All emitted instructions in global emission order: a valid, race-free
      serialization of the program by construction. *)

  val align : ?extra:int -> t -> unit
  (** Pad every thread with [Nop]s to the length of the longest, plus
      [extra] (default 0): used before teardown so frees are not
      potentially concurrent with other threads' trailing accesses. *)
end

type profile = {
  name : string;
  suite : string;  (** "Splash-2" or "Parsec 2.0" *)
  input_desc : string;  (** the input-set description of Table 1 *)
  generate : threads:int -> scale:int -> seed:int -> Bundle.t;
      (** [scale] is the approximate instruction count per thread. *)
}

val generate_program :
  profile -> threads:int -> scale:int -> seed:int -> Tracing.Program.t

(** Bump allocator over the simulated heap.  Addresses are never recycled
    across different objects (like a debugging allocator), which keeps
    use-after-free detectable. *)
module Heap : sig
  type t

  val create : ?base:int -> unit -> t

  val alloc : t -> Emitter.t -> int -> int
  (** [alloc heap em size] emits the [Malloc] into [em] and returns the
      base address. *)

  val free : t -> Emitter.t -> int -> unit
  (** Emits the [Free] for a live allocation; raises if unknown. *)

  val alloc_silent : t -> int -> int
  (** Reserve an address range without emitting. *)

  val size_of : t -> int -> int option
end

val elem : int -> int -> int
(** [elem base i] is the address of 8-byte element [i] of an array. *)

val elem_l : int -> int -> int
(** [elem_l base i] is the address of cache-line-sized (64-byte) element
    [i]: used by kernels whose working-set size matters to the timing
    model. *)
