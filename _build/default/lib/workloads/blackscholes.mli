(** BLACKSCHOLES (Parsec 2.0): option pricing.

    Reproduced profile: embarrassingly parallel — one shared read-only
    input array and disjoint output slices, no inter-thread sharing, no
    allocation churn, and a very high memory-event density (each option
    reads several parameters and writes a price), which makes the lifeguard
    the bottleneck and keeps timesliced monitoring competitive
    (Figure 11). *)

val generate : threads:int -> scale:int -> seed:int -> Workload.Bundle.t
val profile : Workload.profile
