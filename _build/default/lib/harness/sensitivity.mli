(** Sensitivity and ablation studies beyond the paper's figures.

    The synthetic workload's knobs isolate the mechanisms behind the
    evaluation: inter-thread sharing and allocation churn drive false
    positives (the OCEAN effect of Figure 13), and load imbalance erodes
    butterfly's parallel speedup through its per-epoch barriers.  The
    isolation split attributes AddrCheck's reports to the local LSOS checks
    versus the wing-summary isolation check of Section 6.1. *)

type point = { value : float; result : Experiment.result }

val churn_sweep :
  ?config:Experiment.config -> ?threads:int -> ?epoch_size:int -> unit ->
  point list
(** Allocation churn (recycled buffers per 100 instructions) versus false
    positives. *)

val sharing_sweep :
  ?config:Experiment.config -> ?threads:int -> ?epoch_size:int -> unit ->
  point list
(** Fraction of accesses to other threads' buffers versus false
    positives (with churn fixed). *)

val imbalance_sweep :
  ?config:Experiment.config -> ?threads:int -> ?epoch_size:int -> unit ->
  point list
(** Thread imbalance versus butterfly's normalized time. *)

type isolation_split = {
  benchmark : string;
  with_isolation : int;  (** flagged events, full checker *)
  without_isolation : int;  (** flagged events, local checks only *)
}

val isolation_splits :
  ?config:Experiment.config -> ?threads:int -> ?epoch_size:int -> unit ->
  isolation_split list
(** Per benchmark: how many flagged events the isolation check is
    responsible for.  (Disabling it is unsound — this quantifies what the
    soundness costs in precision.) *)

val render : unit -> string
(** All sweeps at default configuration, as printable tables. *)
