type constants = {
  dispatch : int;
  check : int;
  record : int;
  pass2_check : int;
  fp_cost : int;
  epoch_fixed : int;
  barrier : int;
  meet_per_entry : int;
}

let default =
  {
    dispatch = 3;
    check = 25;
    record = 8;
    pass2_check = 6;
    fp_cost = 300;
    epoch_fixed = 400;
    barrier = 150;
    meet_per_entry = 1;
  }

(* Cycles to process one admitted event, shared by both monitoring styles:
   the check itself plus the shadow-metadata access through the lifeguard
   core's caches.  Malloc/free update the whole range's metadata. *)
let event_cycles c hier (i : Tracing.Instr.t) =
  match Tracing.Instr.alloc_effect i with
  | `Alloc _ | `Free _ -> Machine.Mem_hierarchy.instr_cycles hier i
  | `None ->
    List.fold_left
      (fun acc a -> acc + Machine.Mem_hierarchy.access hier a)
      c.check (Tracing.Instr.accesses i)

type block_work = {
  pass1 : int;
  pass2 : int;
  admitted : int; (* events admitted past the filter: the summary size *)
}

let butterfly_input ?(c = default) config p ~app ~flagged =
  let threads = Tracing.Program.threads p in
  let lifeguard_l2 = Machine.Mem_hierarchy.shared_l2 config in
  let epochs = Array.length app.(0) in
  (* First pass: per-block base work and summary sizes. *)
  let blocks_work =
    Array.init threads (fun tid ->
        let hier = Machine.Mem_hierarchy.create config ~l2:lifeguard_l2 in
        let filter = Machine.Idempotent_filter.create () in
        let blocks = Tracing.Trace.blocks (Tracing.Program.trace p tid) in
        let per_epoch = Array.make epochs { pass1 = 0; pass2 = 0; admitted = 0 } in
        List.iteri
          (fun l block ->
            Machine.Idempotent_filter.flush filter;
            let pass1 = ref c.epoch_fixed
            and pass2 = ref (c.epoch_fixed + (c.fp_cost * flagged tid l))
            and admitted = ref 0 in
            Array.iter
              (fun i ->
                pass1 := !pass1 + c.dispatch;
                (* Recording for the second pass happens for every
                   monitored load/store, before filtering (Section 7.2's
                   7-10 instructions per event). *)
                if Tracing.Instr.is_memory_event i then
                  pass1 := !pass1 + c.record;
                if Machine.Idempotent_filter.admit filter i then (
                  incr admitted;
                  pass1 := !pass1 + event_cycles c hier i;
                  (* Pass 2 replays the recorded event; metadata is warm. *)
                  pass2 :=
                    !pass2 + c.pass2_check
                    + List.fold_left
                        (fun acc a -> acc + Machine.Mem_hierarchy.access hier a)
                        0 (Tracing.Instr.accesses i)))
              block;
            if l < epochs then
              per_epoch.(l) <-
                { pass1 = !pass1; pass2 = !pass2; admitted = !admitted })
          blocks;
        per_epoch)
  in
  (* Second pass: fold in the meet — collecting and combining the wings'
     summaries costs time proportional to their total size, and the number
     of wings grows with the thread count. *)
  let admitted l t =
    if l < 0 || l >= epochs then 0 else blocks_work.(t).(l).admitted
  in
  let meet_cost l tid =
    let total = ref 0 in
    for l' = l - 1 to l + 1 do
      for t' = 0 to threads - 1 do
        if t' <> tid then total := !total + admitted l' t'
      done
    done;
    c.meet_per_entry * !total
  in
  let work =
    Array.init threads (fun tid ->
        Array.init epochs (fun l ->
            let bw = blocks_work.(tid).(l) in
            {
              Machine.Monitor_sim.instrs = app.(tid).(l).Machine.App_timing.instrs;
              app_cycles = app.(tid).(l).Machine.App_timing.cycles;
              pass1_cycles = bw.pass1;
              pass2_cycles = bw.pass2 + meet_cost l tid;
            }))
  in
  {
    Machine.Monitor_sim.work;
    buffer_entries = Machine.Machine_config.log_buffer_entries config;
    barrier_cycles = c.barrier;
    epoch_fixed_cycles = 0 (* folded into pass costs above *);
  }

let timesliced_lifeguard_cycles ?(c = default) ?quantum config p =
  let hier =
    Machine.Mem_hierarchy.create config ~l2:(Machine.Mem_hierarchy.shared_l2 config)
  in
  let filter = Machine.Idempotent_filter.create () in
  List.fold_left
    (fun acc i ->
      let acc = acc + c.dispatch in
      if Machine.Idempotent_filter.admit filter i then
        acc + event_cycles c hier i
      else acc)
    0
    (Lifeguards.Timesliced.serialize ?quantum p)
