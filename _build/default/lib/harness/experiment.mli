(** One evaluation point: a benchmark run under the three monitoring
    configurations of Figure 11, plus accuracy accounting for Figure 13.

    The problem size ([total_scale] instructions) is fixed as the thread
    count varies, matching the paper's normalization: every time is
    reported relative to the same program running sequentially without
    monitoring. *)

type config = {
  machine : Machine.Machine_config.t;
  total_scale : int;  (** total application instructions, split over threads *)
  seed : int;
  quantum : int;  (** timeslicing quantum, instructions *)
}

val default_config : config

type result = {
  benchmark : string;
  threads : int;
  epoch_size : int;  (** h: instructions per epoch per thread *)
  seq_unmonitored_cycles : int;  (** the normalization baseline *)
  timesliced : float;  (** normalized execution time *)
  butterfly : float;
  parallel_unmonitored : float;
  flagged_events : int;  (** all false positives: the workloads are clean *)
  total_accesses : int;
  fp_rate_percent : float;
  app_stall_cycles : int;  (** log-buffer stalls in the butterfly run *)
}

val run :
  ?config:config -> Workloads.Workload.profile -> threads:int ->
  epoch_size:int -> result

val pp_result : Format.formatter -> result -> unit
