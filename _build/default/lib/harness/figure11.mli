(** Figure 11: execution time normalized to sequential unmonitored
    execution, for 2/4/8 application threads, comparing timesliced
    monitoring, butterfly ("Parallel, Monitoring") and unmonitored parallel
    execution. *)

val thread_counts : int list

val run :
  ?config:Experiment.config -> ?epoch_size:int -> unit ->
  Experiment.result list

val render : Experiment.result list -> string

val to_csv : Experiment.result list -> string
(** Machine-readable form, one row per (benchmark, thread count). *)
