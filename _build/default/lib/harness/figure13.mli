(** Figure 13: precision sensitivity to epoch size — false positives as a
    percentage of memory accesses (the paper plots this on a log scale).
    The workloads are race-free by construction, so every flagged event is
    a false positive. *)

val run : ?config:Experiment.config -> unit -> (Experiment.result * Experiment.result) list

val render : (Experiment.result * Experiment.result) list -> string

val to_csv : (Experiment.result * Experiment.result) list -> string
