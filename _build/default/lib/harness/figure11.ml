let thread_counts = [ 2; 4; 8 ]

let run ?config ?(epoch_size = 512) () =
  List.concat_map
    (fun profile ->
      List.map
        (fun threads -> Experiment.run ?config profile ~threads ~epoch_size)
        thread_counts)
    Workloads.Registry.all

let render results =
  let fmt = Printf.sprintf "%.2f" in
  let rows =
    List.map
      (fun (r : Experiment.result) ->
        [
          r.benchmark;
          string_of_int r.threads;
          fmt r.timesliced;
          fmt r.butterfly;
          fmt r.parallel_unmonitored;
          Report_format.bar ~width:24 r.butterfly
            ~max:(List.fold_left
                    (fun m (x : Experiment.result) -> Float.max m x.timesliced)
                    1.0 results);
        ])
      results
  in
  "Figure 11. Relative performance, normalized to sequential unmonitored \
   execution time (lower is better)\n\n"
  ^ Report_format.table
      ~header:
        [ "benchmark"; "threads"; "timesliced"; "butterfly";
          "parallel-unmon"; "butterfly bar" ]
      rows

let to_csv results =
  let rows =
    List.map
      (fun (r : Experiment.result) ->
        Printf.sprintf "%s,%d,%d,%.4f,%.4f,%.4f" r.benchmark r.threads
          r.epoch_size r.timesliced r.butterfly r.parallel_unmonitored)
      results
  in
  String.concat "\n"
    ("benchmark,threads,epoch_size,timesliced,butterfly,parallel_unmonitored"
     :: rows)
  ^ "\n"
