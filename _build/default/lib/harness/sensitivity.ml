type point = { value : float; result : Experiment.result }

let default_threads = 4
let default_epoch = 256

let sweep ?config ?(threads = default_threads) ?(epoch_size = default_epoch)
    values profile_of =
  List.map
    (fun value ->
      let profile = profile_of value in
      { value; result = Experiment.run ?config profile ~threads ~epoch_size })
    values

let churn_sweep ?config ?threads ?epoch_size () =
  sweep ?config ?threads ?epoch_size [ 0.0; 0.2; 0.5; 1.0; 2.0 ] (fun churn ->
      Workloads.Synthetic.profile_of "synthetic-churn"
        { Workloads.Synthetic.default with churn; sharing = 0.2 })

let sharing_sweep ?config ?threads ?epoch_size () =
  sweep ?config ?threads ?epoch_size [ 0.0; 0.1; 0.2; 0.4 ] (fun sharing ->
      Workloads.Synthetic.profile_of "synthetic-sharing"
        { Workloads.Synthetic.default with sharing; churn = 0.5 })

let imbalance_sweep ?config ?threads ?epoch_size () =
  sweep ?config ?threads ?epoch_size [ 0.0; 0.3; 0.6; 0.9 ] (fun imbalance ->
      Workloads.Synthetic.profile_of "synthetic-imbalance"
        { Workloads.Synthetic.default with imbalance })

type isolation_split = {
  benchmark : string;
  with_isolation : int;
  without_isolation : int;
}

let isolation_splits ?(config = Experiment.default_config)
    ?(threads = default_threads) ?(epoch_size = default_epoch) () =
  List.map
    (fun (profile : Workloads.Workload.profile) ->
      let scale = max 1 (config.total_scale / threads) in
      let p =
        Workloads.Workload.generate_program profile ~threads ~scale
          ~seed:config.seed
        |> Machine.Heartbeat.insert ~every:epoch_size
      in
      let epochs = Butterfly.Epochs.of_program p in
      let full = Lifeguards.Addrcheck.run ~isolation:true epochs in
      let local = Lifeguards.Addrcheck.run ~isolation:false epochs in
      {
        benchmark = profile.name;
        with_isolation = full.flagged_accesses;
        without_isolation = local.flagged_accesses;
      })
    Workloads.Registry.all

let render () =
  let buf = Buffer.create 2048 in
  let fp_table title points =
    Buffer.add_string buf (title ^ "\n\n");
    Buffer.add_string buf
      (Report_format.table
         ~header:[ "knob"; "butterfly (norm.)"; "FP rate"; "FP events" ]
         (List.map
            (fun { value; result } ->
              [
                Printf.sprintf "%.2f" value;
                Printf.sprintf "%.2f" result.Experiment.butterfly;
                Report_format.pct result.Experiment.fp_rate_percent;
                string_of_int result.Experiment.flagged_events;
              ])
            points));
    Buffer.add_char buf '\n'
  in
  fp_table "Sensitivity: allocation churn (per 100 instrs) -> false positives"
    (churn_sweep ());
  fp_table "Sensitivity: inter-thread sharing -> false positives"
    (sharing_sweep ());
  fp_table "Sensitivity: load imbalance -> butterfly slowdown"
    (imbalance_sweep ());
  Buffer.add_string buf
    "Ablation: flagged events with/without the isolation check (the\n\
     without column is UNSOUND and shown only for attribution)\n\n";
  Buffer.add_string buf
    (Report_format.table
       ~header:[ "benchmark"; "full checker"; "local checks only" ]
       (List.map
          (fun s ->
            [
              s.benchmark;
              string_of_int s.with_isolation;
              string_of_int s.without_isolation;
            ])
          (isolation_splits ())));
  Buffer.contents buf
