lib/harness/sensitivity.mli: Experiment
