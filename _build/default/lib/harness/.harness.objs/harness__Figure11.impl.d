lib/harness/figure11.ml: Experiment Float List Printf Report_format String Workloads
