lib/harness/figure13.ml: Experiment Figure12 List Printf Report_format String
