lib/harness/figure12.ml: Experiment Figure11 List Printf Report_format String Workloads
