lib/harness/sensitivity.ml: Buffer Butterfly Experiment Lifeguards List Machine Printf Report_format Workloads
