lib/harness/cost_model.mli: Machine Tracing
