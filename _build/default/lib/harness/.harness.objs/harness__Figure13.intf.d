lib/harness/figure13.mli: Experiment
