lib/harness/report_format.ml: Float List Option Printf String
