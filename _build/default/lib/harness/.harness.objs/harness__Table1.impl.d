lib/harness/table1.ml: List Machine Report_format Workloads
