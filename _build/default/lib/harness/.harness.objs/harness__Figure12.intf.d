lib/harness/figure12.mli: Experiment
