lib/harness/figure11.mli: Experiment
