lib/harness/experiment.ml: Array Butterfly Cost_model Format Lifeguards Machine Report_format Workloads
