lib/harness/cost_model.ml: Array Lifeguards List Machine Tracing
