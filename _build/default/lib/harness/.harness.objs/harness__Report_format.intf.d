lib/harness/report_format.mli:
