lib/harness/experiment.mli: Format Machine Workloads
