let render ?(config = Machine.Machine_config.default) () =
  let sim =
    Report_format.table ~header:[ "Simulation Parameters"; "" ]
      (List.map
         (fun (k, v) -> [ k; v ])
         (Machine.Machine_config.table1_rows config))
  in
  let bench =
    Report_format.table
      ~header:[ "Application"; "Suite"; "Input Data Set" ]
      (List.map
         (fun (a, s, d) -> [ a; s; d ])
         Workloads.Registry.table1_rows)
  in
  "Table 1. Simulator and Benchmark Parameters\n\n" ^ sim ^ "\n" ^ bench
