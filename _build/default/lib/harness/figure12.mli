(** Figure 12: performance sensitivity to epoch size (h), butterfly
    monitoring at two epoch sizes across thread counts. *)

val epoch_sizes : int * int
(** (small, large) — the scaled analogues of the paper's 8K and 64K. *)

val run : ?config:Experiment.config -> unit -> (Experiment.result * Experiment.result) list
(** Pairs of (small-h, large-h) results per benchmark and thread count. *)

val render : (Experiment.result * Experiment.result) list -> string

val to_csv : (Experiment.result * Experiment.result) list -> string
