let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r ->
        match List.nth_opt r c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let rec rstrip s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ' ' then rstrip (String.sub s 0 (n - 1)) else s
  in
  let render row =
    rstrip
      (String.concat "  "
         (List.mapi
            (fun c w ->
              let s = Option.value (List.nth_opt row c) ~default:"" in
              s ^ String.make (max 0 (w - String.length s)) ' ')
            widths))
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render header :: sep :: List.map render rows) ^ "\n"

let bar ~width v ~max:m =
  let n =
    if m <= 0.0 then 0
    else min width (int_of_float (Float.round (v /. m *. float_of_int width)))
  in
  String.make n '#' ^ String.make (width - n) ' '

let pct v =
  if v = 0.0 then "0"
  else if v >= 0.01 then Printf.sprintf "%.3f%%" v
  else Printf.sprintf "%.5f%%" v
