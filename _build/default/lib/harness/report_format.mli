(** Plain-text table rendering for experiment output. *)

val table : header:string list -> string list list -> string
(** Column-aligned table with a separator under the header. *)

val bar : width:int -> float -> max:float -> string
(** A proportional text bar, for quick visual comparison of series. *)

val pct : float -> string
(** Percentage with enough significant digits for sub-0.001%% rates. *)
