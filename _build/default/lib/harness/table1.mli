(** Table 1: simulator and benchmark parameters. *)

val render : ?config:Machine.Machine_config.t -> unit -> string
