let epoch_sizes = (64, 512)

let run ?config () =
  let h_small, h_large = epoch_sizes in
  List.concat_map
    (fun profile ->
      List.map
        (fun threads ->
          ( Experiment.run ?config profile ~threads ~epoch_size:h_small,
            Experiment.run ?config profile ~threads ~epoch_size:h_large ))
        Figure11.thread_counts)
    Workloads.Registry.all

let render results =
  let fmt = Printf.sprintf "%.2f" in
  let h_small, h_large = epoch_sizes in
  let rows =
    List.map
      (fun ((s : Experiment.result), (l : Experiment.result)) ->
        [
          s.benchmark;
          string_of_int s.threads;
          fmt s.butterfly;
          fmt l.butterfly;
          (if l.butterfly <= s.butterfly then "larger h faster"
           else "smaller h faster");
        ])
      results
  in
  Printf.sprintf
    "Figure 12. Performance sensitivity to epoch size (butterfly, \
     normalized; h=%d vs h=%d)\n\n"
    h_small h_large
  ^ Report_format.table
      ~header:
        [
          "benchmark"; "threads";
          Printf.sprintf "h=%d" h_small;
          Printf.sprintf "h=%d" h_large;
          "winner";
        ]
      rows

let to_csv results =
  let rows =
    List.map
      (fun ((s : Experiment.result), (l : Experiment.result)) ->
        Printf.sprintf "%s,%d,%d,%.4f,%d,%.4f" s.benchmark s.threads
          s.epoch_size s.butterfly l.epoch_size l.butterfly)
      results
  in
  String.concat "\n"
    ("benchmark,threads,h_small,butterfly_small,h_large,butterfly_large" :: rows)
  ^ "\n"
