let run ?config () = Figure12.run ?config ()

let render results =
  let h_small, h_large = Figure12.epoch_sizes in
  let rows =
    List.map
      (fun ((s : Experiment.result), (l : Experiment.result)) ->
        [
          s.benchmark;
          string_of_int s.threads;
          Report_format.pct s.fp_rate_percent;
          Report_format.pct l.fp_rate_percent;
          Printf.sprintf "%d/%d" s.flagged_events s.total_accesses;
          Printf.sprintf "%d/%d" l.flagged_events l.total_accesses;
        ])
      results
  in
  Printf.sprintf
    "Figure 13. Precision sensitivity to epoch size: false positives as %% \
     of memory accesses (h=%d vs h=%d)\n\n"
    h_small h_large
  ^ Report_format.table
      ~header:
        [
          "benchmark"; "threads";
          Printf.sprintf "FP%% h=%d" h_small;
          Printf.sprintf "FP%% h=%d" h_large;
          Printf.sprintf "events h=%d" h_small;
          Printf.sprintf "events h=%d" h_large;
        ]
      rows

let to_csv results =
  let rows =
    List.map
      (fun ((s : Experiment.result), (l : Experiment.result)) ->
        Printf.sprintf "%s,%d,%d,%.6f,%d,%d,%.6f,%d" s.benchmark s.threads
          s.epoch_size s.fp_rate_percent s.flagged_events l.epoch_size
          l.fp_rate_percent l.flagged_events)
      results
  in
  String.concat "\n"
    ("benchmark,threads,h_small,fp_pct_small,fp_events_small,h_large,fp_pct_large,fp_events_large"
     :: rows)
  ^ "\n"
