(** Lifeguard cycle-cost model.

    Converts the work a lifeguard actually performs — events dispatched,
    checks after idempotent filtering, shadow-metadata cache behaviour,
    allocation-state updates, false-positive handling, per-epoch
    summarization — into the cycle quantities {!Machine.Monitor_sim}
    consumes.  The constants reflect Section 7's prototype: ~7–10
    instructions per monitored load/store in pass 1 just to record it, the
    same first-pass checks as sequential AddrCheck, and expensive
    false-positive processing.

    Shadow metadata lives at the same addresses as the data it shadows and
    is accessed through the lifeguard core's own L1/L2 — so a timesliced
    lifeguard (one core, all threads' footprints) thrashes where per-thread
    butterfly lifeguards stay warm. *)

type constants = {
  dispatch : int;  (** cycles per delivered log event *)
  check : int;  (** per admitted access, on top of the metadata access *)
  record : int;  (** butterfly pass-1 recording per admitted access *)
  pass2_check : int;  (** butterfly pass-2 per admitted access *)
  fp_cost : int;  (** per flagged (false-positive) event *)
  epoch_fixed : int;  (** per epoch per thread: summaries, SOS update *)
  barrier : int;  (** per pass synchronization *)
  meet_per_entry : int;
      (** per wing-summary entry combined during the meet: this is the
          component of butterfly overhead that grows with the thread count
          (3(T-1) wing blocks per butterfly) *)
}

val default : constants

val butterfly_input :
  ?c:constants ->
  Machine.Machine_config.t ->
  Tracing.Program.t ->
  app:Machine.App_timing.epoch_cost array array ->
  flagged:(Tracing.Tid.t -> int -> int) ->
  Machine.Monitor_sim.parallel_input
(** [butterfly_input cfg p ~app ~flagged] walks each thread's
    heartbeat-delimited trace with a per-thread idempotent filter (flushed
    every epoch) and a per-thread metadata hierarchy, producing the
    parallel-monitoring work matrix.  [flagged tid epoch] supplies the
    number of flagged events (from the actual {!Lifeguards.Addrcheck}
    run). *)

val timesliced_lifeguard_cycles :
  ?c:constants -> ?quantum:int -> Machine.Machine_config.t ->
  Tracing.Program.t -> int
(** Cycles for the sequential lifeguard to process the merged, timesliced
    stream with a single long-lived filter and one metadata hierarchy. *)
