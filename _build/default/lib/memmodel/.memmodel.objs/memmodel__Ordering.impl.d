lib/memmodel/ordering.ml: Array Format Hashtbl List Tracing
