lib/memmodel/valid_ordering.mli: Consistency Ordering Random Tracing
