lib/memmodel/consistency.mli: Format Tracing
