lib/memmodel/ordering.mli: Format Tracing
