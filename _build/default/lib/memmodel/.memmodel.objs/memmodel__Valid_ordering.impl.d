lib/memmodel/valid_ordering.ml: Array Consistency List Ordering Random Tracing
