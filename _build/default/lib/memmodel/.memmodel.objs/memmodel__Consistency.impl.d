lib/memmodel/consistency.ml: Array Format List Tracing
