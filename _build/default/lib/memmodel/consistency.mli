(** Memory consistency models.

    Butterfly analysis supports any relaxed model that (i) respects each
    thread's own intra-thread dependences and (ii) provides cache coherence
    (Section 4.4).  This module defines the models we simulate and, for each
    model, the intra-thread ordering constraints that any execution — and
    hence any ordering the lifeguard must account for — preserves. *)

type t =
  | Sequential  (** Sequential consistency: full program order per thread. *)
  | Tso
      (** Total store order: loads may not pass loads or earlier ops; a
          store may be delayed past subsequent loads to different
          locations. *)
  | Relaxed
      (** The paper's weakest model: only same-location ordering (cache
          coherence) and data dependences within a thread are preserved. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val all : t list

val intra_thread_edges : t -> Tracing.Instr.t array -> (int * int) list
(** [intra_thread_edges m is] returns the pairs [(i, j)], [i < j], such that
    instruction [i] must become globally visible before instruction [j]
    when the thread executes [is] under model [m].  The result is reduced to
    immediate constraints (no transitive closure guarantee beyond what the
    generators imply); consumers treat it as a DAG. *)
