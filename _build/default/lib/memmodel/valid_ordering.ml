type t = {
  threads : Tracing.Instr.t array array;
  preds : int list array array; (* preds.(t).(i): intra-thread predecessors *)
  epoch : int array array;
  max_epoch : int;
}

let build_preds model threads =
  Array.map
    (fun is ->
      let n = Array.length is in
      let preds = Array.make n [] in
      List.iter
        (fun (i, j) -> preds.(j) <- i :: preds.(j))
        (Consistency.intra_thread_edges model is);
      preds)
    threads

let make ?(model = Consistency.Sequential) ?epoch_of threads =
  let epoch_of = match epoch_of with Some f -> f | None -> fun _ _ -> 0 in
  let epoch =
    Array.mapi (fun t is -> Array.init (Array.length is) (epoch_of t)) threads
  in
  Array.iter
    (fun es ->
      let ok = ref true in
      Array.iteri (fun i e -> if i > 0 && e < es.(i - 1) then ok := false) es;
      if not !ok then
        invalid_arg "Valid_ordering.make: epoch_of must be non-decreasing")
    epoch;
  let max_epoch =
    Array.fold_left
      (fun m es -> Array.fold_left max m es)
      0 epoch
  in
  { threads; preds = build_preds model threads; epoch; max_epoch }

let of_blocks ?model per_thread_blocks =
  let threads =
    Array.map (fun bs -> Array.concat (List.map Array.copy bs)) per_thread_blocks
  in
  let epoch_tbl =
    Array.map
      (fun bs ->
        Array.concat
          (List.mapi (fun l b -> Array.make (Array.length b) l) bs))
      per_thread_blocks
  in
  make ?model ~epoch_of:(fun t i -> epoch_tbl.(t).(i)) threads

let threads t = t.threads

let instr_count t =
  Array.fold_left (fun n is -> n + Array.length is) 0 t.threads

let strictly_before ~epoch_a ~epoch_b = epoch_a <= epoch_b - 2

(* Enumeration state shared by iter / is_valid / sample. *)
type state = {
  emitted : bool array array;
  remaining_in_epoch : int array; (* count of unemitted instrs per epoch *)
  mutable emitted_total : int;
}

let init_state t =
  let remaining = Array.make (t.max_epoch + 1) 0 in
  Array.iter
    (Array.iter (fun e -> remaining.(e) <- remaining.(e) + 1))
    t.epoch;
  {
    emitted = Array.map (fun is -> Array.make (Array.length is) false) t.threads;
    remaining_in_epoch = remaining;
    emitted_total = 0;
  }

let min_pending_epoch st =
  let rec go e =
    if e >= Array.length st.remaining_in_epoch then max_int
    else if st.remaining_in_epoch.(e) > 0 then e
    else go (e + 1)
  in
  go 0

let ready t st tid index =
  (not st.emitted.(tid).(index))
  && List.for_all (fun p -> st.emitted.(tid).(p)) t.preds.(tid).(index)
  && t.epoch.(tid).(index) <= min_pending_epoch st + 1

let emit t st tid index =
  st.emitted.(tid).(index) <- true;
  st.remaining_in_epoch.(t.epoch.(tid).(index)) <-
    st.remaining_in_epoch.(t.epoch.(tid).(index)) - 1;
  st.emitted_total <- st.emitted_total + 1

let unemit t st tid index =
  st.emitted.(tid).(index) <- false;
  st.remaining_in_epoch.(t.epoch.(tid).(index)) <-
    st.remaining_in_epoch.(t.epoch.(tid).(index)) + 1;
  st.emitted_total <- st.emitted_total - 1

let candidates t st =
  let cs = ref [] in
  for tid = Array.length t.threads - 1 downto 0 do
    for index = Array.length t.threads.(tid) - 1 downto 0 do
      if ready t st tid index then cs := (tid, index) :: !cs
    done
  done;
  !cs

exception Stop

let iter ?(cap = 100_000) t f =
  let st = init_state t in
  let total = instr_count t in
  let seen = ref 0 in
  let exhaustive = ref true in
  let rec go acc =
    if st.emitted_total = total then (
      f (List.rev acc);
      incr seen;
      if !seen >= cap then (
        exhaustive := false;
        raise Stop))
    else
      List.iter
        (fun (tid, index) ->
          emit t st tid index;
          go (Ordering.step tid index :: acc);
          unemit t st tid index)
        (candidates t st)
  in
  (try go [] with Stop -> ());
  !exhaustive

let enumerate ?cap t =
  let acc = ref [] in
  let exhaustive = iter ?cap t (fun o -> acc := o :: !acc) in
  (List.rev !acc, exhaustive)

let count ?cap t =
  let n = ref 0 in
  let exhaustive = iter ?cap t (fun _ -> incr n) in
  (!n, exhaustive)

let exists ?cap t p =
  let found = ref false in
  let _ =
    try iter ?cap t (fun o -> if p o then (found := true; raise Stop))
    with Stop -> false
  in
  !found

let for_all ?cap t p = not (exists ?cap t (fun o -> not (p o)))

let is_valid t o =
  let st = init_state t in
  let total = instr_count t in
  let rec go = function
    | [] -> st.emitted_total = total
    | { Ordering.tid; index } :: rest ->
      tid >= 0
      && tid < Array.length t.threads
      && index >= 0
      && index < Array.length t.threads.(tid)
      && ready t st tid index
      && (emit t st tid index;
          go rest)
  in
  go o

let sample rng t =
  let st = init_state t in
  let total = instr_count t in
  let rec go acc =
    if st.emitted_total = total then List.rev acc
    else
      match candidates t st with
      | [] -> assert false (* the constraint DAG is acyclic *)
      | cs ->
        let tid, index = List.nth cs (Random.State.int rng (List.length cs)) in
        emit t st tid index;
        go (Ordering.step tid index :: acc)
  in
  go []
