type step = { tid : Tracing.Tid.t; index : int }
type t = step list

let step tid index = { tid; index }
let equal a b = a = b

let apply threads o =
  List.map
    (fun { tid; index } ->
      if tid < 0 || tid >= Array.length threads then
        invalid_arg "Ordering.apply: bad tid";
      let is = threads.(tid) in
      if index < 0 || index >= Array.length is then
        invalid_arg "Ordering.apply: bad index";
      is.(index))
    o

let complete threads o =
  let n = Array.fold_left (fun n is -> n + Array.length is) 0 threads in
  let seen = Hashtbl.create n in
  let ok =
    List.for_all
      (fun { tid; index } ->
        (not (Hashtbl.mem seen (tid, index)))
        && (Hashtbl.add seen (tid, index) (); true))
      o
  in
  ok && Hashtbl.length seen = n

let pp ppf o =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf { tid; index } -> Format.fprintf ppf "(%d,%d)" tid index)
    ppf o
