(** Valid orderings (Section 5, "Valid Ordering").

    A valid ordering is a total order over the instructions of the first
    [k] epochs that respects (i) each thread's intra-thread constraints
    under the chosen consistency model and (ii) the butterfly epoch
    assumption: every instruction of epoch [l] becomes globally visible
    before any instruction of epoch [l+2].

    The set of valid orderings is a superset of the orderings any machine
    obeying the model can produce, which is exactly why enumerating them
    provides ground truth for the paper's zero-false-negative theorems.
    Enumeration is exponential and meant for small traces in tests;
    [sample] provides cheap randomized orderings for larger ones. *)

type t

val make :
  ?model:Consistency.t ->
  ?epoch_of:(Tracing.Tid.t -> int -> int) ->
  Tracing.Instr.t array array ->
  t
(** [make threads] builds the constraint system.  [model] defaults to
    {!Consistency.Sequential}.  [epoch_of tid index] assigns each
    instruction to an epoch and must be non-decreasing in [index] for each
    thread; it defaults to a single epoch (pure interleaving semantics,
    i.e. no butterfly window constraint). *)

val of_blocks :
  ?model:Consistency.t -> Tracing.Instr.t array list array -> t
(** [of_blocks per_thread_blocks] assigns epoch [l] to every instruction of
    each thread's [l]-th block, as produced by {!Tracing.Trace.blocks}. *)

val threads : t -> Tracing.Instr.t array array
val instr_count : t -> int

val is_valid : t -> Ordering.t -> bool
(** Complete ordering respecting all constraints? *)

val iter : ?cap:int -> t -> (Ordering.t -> unit) -> bool
(** Visit valid orderings; stops after [cap] (default 100_000).  Returns
    [true] if the enumeration was exhaustive (not truncated by the cap). *)

val enumerate : ?cap:int -> t -> Ordering.t list * bool
val count : ?cap:int -> t -> int * bool

val exists : ?cap:int -> t -> (Ordering.t -> bool) -> bool
(** Early-exit search among the first [cap] valid orderings. *)

val for_all : ?cap:int -> t -> (Ordering.t -> bool) -> bool

val sample : Random.State.t -> t -> Ordering.t
(** One random valid ordering (greedy random topological sort; not uniform
    over the extension space, but covers it with nonzero probability). *)

val strictly_before :
  epoch_a:int -> epoch_b:int -> bool
(** The coarse strict-ordering test between instructions of different
    threads: epoch [a] happens strictly before epoch [b] iff
    [epoch_a <= epoch_b - 2]. *)
