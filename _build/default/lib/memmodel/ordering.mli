(** Total orderings of a parallel execution's instructions.

    An ordering is a sequence of [(thread, index)] steps; applying it to the
    per-thread instruction lists yields the single serialized instruction
    stream a sequential lifeguard would consume. *)

type step = { tid : Tracing.Tid.t; index : int }
type t = step list

val step : Tracing.Tid.t -> int -> step
val equal : t -> t -> bool

val apply : Tracing.Instr.t array array -> t -> Tracing.Instr.t list
(** [apply threads o] maps each step to its instruction.  Raises
    [Invalid_argument] if a step is out of range. *)

val complete : Tracing.Instr.t array array -> t -> bool
(** Does the ordering contain every instruction exactly once? *)

val pp : Format.formatter -> t -> unit
