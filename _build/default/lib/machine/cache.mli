(** Set-associative cache with LRU replacement.

    Tracks hits and misses for timing; data values are never modelled (the
    lifeguards consume addresses, not values). *)

type t

type stats = { accesses : int; misses : int }

val create : Machine_config.cache_geometry -> t
val sets : t -> int

val access : t -> Tracing.Addr.t -> [ `Hit | `Miss ]
(** Looks up the line containing the address, filling it on a miss
    (evicting the LRU way of the set). *)

val probe : t -> Tracing.Addr.t -> bool
(** Non-mutating lookup: is the line currently present? *)

val stats : t -> stats
val reset_stats : t -> unit
val miss_rate : t -> float
