(** Idempotent-event filtering (the LBA accelerator of Section 7.1).

    A lifeguard check on a location whose metadata has not changed since the
    last check of the same location is idempotent and can be filtered out
    before dispatch.  Metadata changes (malloc/free for AddrCheck)
    invalidate the filter for the affected range.

    The filter works at cache-line granularity (like the metadata-TLB it
    is paired with).  Timesliced monitoring keeps one long-lived filter over
    the merged stream; butterfly analysis must flush its per-thread filters
    at every epoch boundary so that events are only filtered {e within}
    epochs (footnote 5 of the paper) — a key source of its extra lifeguard
    load. *)

type t

val create : ?line_bytes:int -> ?capacity:int -> unit -> t
(** [capacity] (default 512 line entries) models the finite hardware
    filter: once full, the oldest entries are evicted, so a lifeguard whose
    working set exceeds the filter re-checks events a larger structure
    would have filtered.  A single timesliced filter covers every thread's
    footprint; per-thread butterfly filters only their own. *)

val flush : t -> unit

val admit : t -> Tracing.Instr.t -> bool
(** [admit t i] returns [true] when the event must be delivered to the
    lifeguard (not filtered), updating filter state:
    - plain accesses: admitted on first touch of each line since the last
      flush/invalidation, filtered afterwards;
    - [Malloc]/[Free]: always admitted, and invalidate their range;
    - non-memory instructions: filtered (never reach the checker). *)

val stats : t -> int * int
(** (admitted, filtered) memory events so far. *)
