type epoch_cost = { instrs : int; mem_events : int; cycles : int }

let zero_cost = { instrs = 0; mem_events = 0; cycles = 0 }

let block_cost hier block =
  Array.fold_left
    (fun c i ->
      {
        instrs = c.instrs + 1;
        mem_events =
          (c.mem_events + if Tracing.Instr.is_memory_event i then 1 else 0);
        cycles = c.cycles + Mem_hierarchy.instr_cycles hier i;
      })
    zero_cost block

let per_thread_epochs config p =
  let l2 = Mem_hierarchy.shared_l2 config in
  let threads = Tracing.Program.threads p in
  let rows =
    Array.init threads (fun t ->
        let hier = Mem_hierarchy.create config ~l2 in
        Tracing.Trace.blocks (Tracing.Program.trace p t)
        |> List.map (block_cost hier)
        |> Array.of_list)
  in
  let epochs = Array.fold_left (fun m r -> max m (Array.length r)) 0 rows in
  Array.map
    (fun r ->
      Array.init epochs (fun l -> if l < Array.length r then r.(l) else zero_cost))
    rows

let sequential_cycles config p =
  let l2 = Mem_hierarchy.shared_l2 config in
  let hier = Mem_hierarchy.create config ~l2 in
  let total = ref 0 in
  for t = 0 to Tracing.Program.threads p - 1 do
    List.iter
      (fun i -> total := !total + Mem_hierarchy.instr_cycles hier i)
      (Tracing.Trace.instrs (Tracing.Program.trace p t))
  done;
  !total

let timesliced_cycles ?(quantum = 1000) ?(switch_cost = 100) config p =
  let l2 = Mem_hierarchy.shared_l2 config in
  let hier = Mem_hierarchy.create config ~l2 in
  let threads = Tracing.Program.threads p in
  let streams =
    Array.init threads (fun t ->
        ref (Tracing.Trace.instrs (Tracing.Program.trace p t)))
  in
  let total = ref 0 in
  let live = ref threads in
  while !live > 0 do
    live := 0;
    Array.iter
      (fun stream ->
        if !stream <> [] then (
          incr live;
          total := !total + switch_cost;
          let budget = ref quantum in
          let rec go () =
            match !stream with
            | i :: rest when !budget > 0 ->
              total := !total + Mem_hierarchy.instr_cycles hier i;
              decr budget;
              stream := rest;
              go ()
            | _ -> ()
          in
          go ()))
      streams
  done;
  !total
