type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type t = {
  cores : int;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  l2_banks : int;
  memory_latency : int;
  memory_bytes : int;
  log_buffer_bytes : int;
  log_entry_bytes : int;
}

let kb n = n * 1024
let mb n = n * 1024 * 1024

let default =
  {
    cores = 16;
    l1i = { size_bytes = kb 64; ways = 4; line_bytes = 64; latency = 1 };
    l1d = { size_bytes = kb 64; ways = 4; line_bytes = 64; latency = 2 };
    l2 = { size_bytes = mb 4; ways = 8; line_bytes = 64; latency = 6 };
    l2_banks = 4;
    memory_latency = 90;
    memory_bytes = mb 512;
    log_buffer_bytes = kb 8;
    log_entry_bytes = 8;
  }

let with_cores cores t = { t with cores }
let log_buffer_entries t = t.log_buffer_bytes / t.log_entry_bytes

let pp_geometry ppf g =
  Format.fprintf ppf "%dKB, %d-way, %dB lines, %d-cycle" (g.size_bytes / 1024)
    g.ways g.line_bytes g.latency

let table1_rows t =
  [
    ("Cores", string_of_int t.cores);
    ("Pipeline", "1 GHz, in-order scalar");
    ("Line size", Printf.sprintf "%dB" t.l1d.line_bytes);
    ( "L1-I",
      Printf.sprintf "%dKB, %d-way set-assoc, %d cycle latency"
        (t.l1i.size_bytes / 1024) t.l1i.ways t.l1i.latency );
    ( "L1-D",
      Printf.sprintf "%dKB, %d-way set-assoc, %d cycle latency"
        (t.l1d.size_bytes / 1024) t.l1d.ways t.l1d.latency );
    ( "L2",
      Printf.sprintf "%dMB, %d-way set-assoc, %d banks, %d cycle latency"
        (t.l2.size_bytes / 1024 / 1024) t.l2.ways t.l2_banks t.l2.latency );
    ( "Memory",
      Printf.sprintf "%dMB, %d cycle latency" (t.memory_bytes / 1024 / 1024)
        t.memory_latency );
    ("Log buffer", Printf.sprintf "%dKB" (t.log_buffer_bytes / 1024));
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-10s %s@." k v) (table1_rows t);
  Format.fprintf ppf "L1-D geometry: %a@." pp_geometry t.l1d
