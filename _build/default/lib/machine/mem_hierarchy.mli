(** A core's view of the memory hierarchy: private L1-D, shared L2, memory.

    [access] returns the latency in cycles of one data access, updating the
    caches.  The shared L2 is passed in so several cores' hierarchies can
    share one (as on the simulated CMP). *)

type t

val create : Machine_config.t -> l2:Cache.t -> t
val shared_l2 : Machine_config.t -> Cache.t

val access : t -> Tracing.Addr.t -> int
(** L1 hit: L1 latency; L1 miss/L2 hit: L1 + L2; both miss: + memory. *)

val instr_cycles : t -> Tracing.Instr.t -> int
(** Cycles to execute one instruction on the in-order scalar pipeline: one
    base cycle plus data-access latencies beyond the 1-cycle L1 the
    pipeline hides.  [Malloc]/[Free] charge an allocator cost plus a
    traversal of the affected range's lines. *)

type stats = { l1 : Cache.stats; l2 : Cache.stats }

val stats : t -> stats
