(** Machine model parameters (Table 1 of the paper).

    The paper simulates a CMP with in-order scalar 1 GHz cores, private
    64 KB L1 caches, a shared banked L2 and a hardware log buffer per
    monitored thread (the Log-Based Architectures transport).  We reproduce
    those parameters and let experiments scale them down. *)

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;  (** access latency in cycles *)
}

type t = {
  cores : int;  (** total cores; LBA uses 2k cores for k app threads *)
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  l2_banks : int;
  memory_latency : int;
  memory_bytes : int;
  log_buffer_bytes : int;
  log_entry_bytes : int;  (** bytes per logged event *)
}

val default : t
(** Table 1: 4/8/16 cores, 64 KB 4-way L1 (1-cycle I, 2-cycle D), 2–8 MB
    8-way L2 at 6 cycles, 90-cycle 512 MB memory, 8 KB log buffer.  [cores]
    defaults to 16 and [l2] to 4 MB. *)

val with_cores : int -> t -> t

val log_buffer_entries : t -> int
(** How many events the log buffer holds. *)

val pp : Format.formatter -> t -> unit

val table1_rows : t -> (string * string) list
(** The simulator half of Table 1 as printable label/value rows. *)
