(** Timing model of the per-thread hardware log buffer.

    The application core appends one entry per logged event; the lifeguard
    core consumes them.  When the buffer is full the application stalls
    (Section 7.1: "the monitored application stalls whenever the log buffer
    is full").  This module computes the coupled timeline: each [produce]
    reports when the append actually completes given the consumer's
    progress, and accumulates the stall cycles. *)

type t

val create : capacity:int -> t

val produce : t -> now:int -> int
(** [produce t ~now] returns the completion time of the append: [now],
    or later if the buffer is full (the producer waits for the oldest
    outstanding entry to be consumed). *)

val consume : t -> now:int -> service:int -> int
(** [consume t ~now ~service] removes the oldest entry, finishing at
    [max now produce_time + service]; returns the completion time.
    Raises [Invalid_argument] when empty. *)

val occupancy : t -> int
val stall_cycles : t -> int
(** Total producer cycles lost waiting for space. *)
