(** Heartbeat insertion (Section 4.1).

    The LBA logging mechanism inserts heartbeat markers into each thread's
    log every [h] instructions.  Delivery is not simultaneous: butterfly
    analysis only requires that every thread receives each heartbeat within
    a bounded skew, so we also provide a staggered variant that perturbs
    each epoch boundary by a per-thread random skew — epoch boundaries in
    the model are explicitly {e not} aligned (Figure 6). *)

val insert : every:int -> Tracing.Program.t -> Tracing.Program.t
(** Uniform insertion: heartbeat after every [every] instructions of each
    thread. *)

val insert_staggered :
  every:int -> max_skew:int -> seed:int -> Tracing.Program.t -> Tracing.Program.t
(** Each boundary lands within [±max_skew] instructions of its nominal
    position, independently per thread.  [max_skew] must be less than
    [every / 2] so epochs never invert. *)
