type t = {
  geometry : Machine_config.cache_geometry;
  sets : int;
  tags : int array array; (* tags.(set).(way); -1 = invalid *)
  last_use : int array array;
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

type stats = { accesses : int; misses : int }

let create (geometry : Machine_config.cache_geometry) =
  if geometry.size_bytes mod (geometry.ways * geometry.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways * line";
  let sets = geometry.size_bytes / (geometry.ways * geometry.line_bytes) in
  {
    geometry;
    sets;
    tags = Array.init sets (fun _ -> Array.make geometry.ways (-1));
    last_use = Array.init sets (fun _ -> Array.make geometry.ways 0);
    clock = 0;
    n_accesses = 0;
    n_misses = 0;
  }

let sets t = t.sets

let locate t addr =
  let line = addr / t.geometry.line_bytes in
  (line mod t.sets, line / t.sets)

let find_way t set tag =
  let ways = t.tags.(set) in
  let rec go w =
    if w >= Array.length ways then None
    else if ways.(w) = tag then Some w
    else go (w + 1)
  in
  go 0

let probe t addr =
  let set, tag = locate t addr in
  find_way t set tag <> None

let lru_way t set =
  let best = ref 0 in
  for w = 1 to t.geometry.ways - 1 do
    if t.last_use.(set).(w) < t.last_use.(set).(!best) then best := w
  done;
  !best

let access t addr =
  let set, tag = locate t addr in
  t.clock <- t.clock + 1;
  t.n_accesses <- t.n_accesses + 1;
  match find_way t set tag with
  | Some w ->
    t.last_use.(set).(w) <- t.clock;
    `Hit
  | None ->
    t.n_misses <- t.n_misses + 1;
    let w = lru_way t set in
    t.tags.(set).(w) <- tag;
    t.last_use.(set).(w) <- t.clock;
    `Miss

let stats t = { accesses = t.n_accesses; misses = t.n_misses }

let reset_stats t =
  t.n_accesses <- 0;
  t.n_misses <- 0

let miss_rate t =
  if t.n_accesses = 0 then 0.0
  else float_of_int t.n_misses /. float_of_int t.n_accesses
