lib/machine/cache.mli: Machine_config Tracing
