lib/machine/monitor_sim.ml: Array
