lib/machine/app_timing.mli: Machine_config Tracing
