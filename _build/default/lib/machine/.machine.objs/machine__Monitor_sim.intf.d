lib/machine/monitor_sim.mli:
