lib/machine/heartbeat.ml: List Random Tracing
