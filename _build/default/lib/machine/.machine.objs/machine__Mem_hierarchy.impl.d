lib/machine/mem_hierarchy.ml: Cache List Machine_config Tracing
