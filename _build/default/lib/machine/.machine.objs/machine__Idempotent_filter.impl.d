lib/machine/idempotent_filter.ml: Hashtbl List Queue Tracing
