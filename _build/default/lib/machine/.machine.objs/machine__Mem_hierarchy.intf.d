lib/machine/mem_hierarchy.mli: Cache Machine_config Tracing
