lib/machine/heartbeat.mli: Tracing
