lib/machine/idempotent_filter.mli: Tracing
