lib/machine/app_timing.ml: Array List Mem_hierarchy Tracing
