lib/machine/log_buffer.ml: Hashtbl
