lib/machine/machine_config.ml: Format List Printf
