lib/machine/log_buffer.mli:
