type t = {
  line_bytes : int;
  capacity : int;
  checked : (int, unit) Hashtbl.t; (* lines checked since last change *)
  order : int Queue.t; (* FIFO of insertions; may contain stale lines *)
  mutable admitted : int;
  mutable filtered : int;
}

let create ?(line_bytes = 64) ?(capacity = 512) () =
  {
    line_bytes;
    capacity;
    checked = Hashtbl.create 1024;
    order = Queue.create ();
    admitted = 0;
    filtered = 0;
  }

let flush t =
  Hashtbl.reset t.checked;
  Queue.clear t.order

let evict_to_capacity t =
  while Hashtbl.length t.checked > t.capacity do
    match Queue.take_opt t.order with
    | None -> Hashtbl.reset t.checked (* should not happen *)
    | Some line -> Hashtbl.remove t.checked line
  done

let insert t line =
  if not (Hashtbl.mem t.checked line) then (
    Hashtbl.replace t.checked line ();
    Queue.add line t.order;
    evict_to_capacity t)

let invalidate_range t base size =
  let first = base / t.line_bytes in
  let last = (base + size - 1) / t.line_bytes in
  for line = first to last do
    Hashtbl.remove t.checked line
  done

let admit t (i : Tracing.Instr.t) =
  match Tracing.Instr.alloc_effect i with
  | `Alloc (base, size) | `Free (base, size) ->
    invalidate_range t base size;
    t.admitted <- t.admitted + 1;
    true
  | `None ->
    let accesses = Tracing.Instr.accesses i in
    if accesses = [] then false
    else
      let fresh =
        List.exists
          (fun a -> not (Hashtbl.mem t.checked (a / t.line_bytes)))
          accesses
      in
      List.iter (fun a -> insert t (a / t.line_bytes)) accesses;
      if fresh then t.admitted <- t.admitted + 1 else t.filtered <- t.filtered + 1;
      fresh

let stats t = (t.admitted, t.filtered)
