type t = {
  capacity : int;
  produced : (int, int) Hashtbl.t; (* seq -> produce completion time *)
  consumed : (int, int) Hashtbl.t; (* seq -> consume completion time *)
  mutable next_produce : int;
  mutable next_consume : int;
  mutable stalls : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Log_buffer.create: capacity must be > 0";
  {
    capacity;
    produced = Hashtbl.create 64;
    consumed = Hashtbl.create 64;
    next_produce = 0;
    next_consume = 0;
    stalls = 0;
  }

let occupancy t = t.next_produce - t.next_consume

let produce t ~now =
  let seq = t.next_produce in
  let available =
    if seq < t.capacity then now
    else
      (* Space frees when entry [seq - capacity] has been consumed. *)
      let freed = Hashtbl.find t.consumed (seq - t.capacity) in
      max now freed
  in
  t.stalls <- t.stalls + (available - now);
  Hashtbl.replace t.produced seq available;
  t.next_produce <- seq + 1;
  (* Old bookkeeping can be dropped once consumed. *)
  available

let consume t ~now ~service =
  if t.next_consume >= t.next_produce then
    invalid_arg "Log_buffer.consume: empty";
  let seq = t.next_consume in
  let ready = Hashtbl.find t.produced seq in
  let finish = max now ready + service in
  Hashtbl.replace t.consumed seq finish;
  Hashtbl.remove t.produced seq;
  if seq - t.capacity >= 0 then Hashtbl.remove t.consumed (seq - t.capacity - 1);
  t.next_consume <- seq + 1;
  finish

let stall_cycles t = t.stalls
