(** Application-side execution timing through the cache hierarchy.

    Computes, per thread and per epoch (heartbeat-delimited block), the
    instruction count, logged memory-event count and execution cycles of the
    monitored application itself, using per-core L1-D caches over a shared
    L2.  Also provides the two baselines Figure 11 needs: the program run
    sequentially on one core (the normalization denominator) and the
    timesliced execution of all threads on one core. *)

type epoch_cost = { instrs : int; mem_events : int; cycles : int }

val per_thread_epochs : Machine_config.t -> Tracing.Program.t -> epoch_cost array array
(** [.(tid).(epoch)]; epochs are the heartbeat-delimited blocks of each
    trace, padded to a common epoch count with zero-cost entries. *)

val sequential_cycles : Machine_config.t -> Tracing.Program.t -> int
(** All threads' work executed back-to-back on a single core (one L1): the
    unmonitored sequential baseline. *)

val timesliced_cycles :
  ?quantum:int -> ?switch_cost:int -> Machine_config.t -> Tracing.Program.t -> int
(** All threads interleaved on one core with round-robin quanta (default
    1000 instructions, 100-cycle switch): the application side of the
    timesliced-monitoring baseline. *)
