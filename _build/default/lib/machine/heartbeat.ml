let insert ~every p = Tracing.Program.with_heartbeats ~every p

let insert_staggered ~every ~max_skew ~seed p =
  if max_skew < 0 || 2 * max_skew >= every then
    invalid_arg "Heartbeat.insert_staggered: max_skew must be < every/2";
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  Tracing.Program.map_traces
    (fun _tid trace ->
      let instrs = Tracing.Trace.instrs trace in
      let n = List.length instrs in
      (* Boundary k sits at k*every + skew_k. *)
      let boundaries = ref [] in
      let k = ref 1 in
      while (!k * every) - max_skew < n do
        let skew = Random.State.int rng (2 * max_skew + 1) - max_skew in
        boundaries := ((!k * every) + skew) :: !boundaries;
        incr k
      done;
      let boundaries = List.rev !boundaries in
      let events = ref [] in
      let remaining = ref boundaries in
      List.iteri
        (fun i instr ->
          (match !remaining with
          | b :: rest when i = b ->
            events := Tracing.Event.Heartbeat :: !events;
            remaining := rest
          | _ -> ());
          events := Tracing.Event.Instr instr :: !events)
        instrs;
      (* Any boundaries past the end become a trailing heartbeat. *)
      List.iter (fun _ -> events := Tracing.Event.Heartbeat :: !events) !remaining;
      Tracing.Trace.of_events (List.rev !events))
    p
