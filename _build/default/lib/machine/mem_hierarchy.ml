type t = {
  config : Machine_config.t;
  l1 : Cache.t;
  l2 : Cache.t;
}

let create config ~l2 = { config; l1 = Cache.create config.Machine_config.l1d; l2 }
let shared_l2 (config : Machine_config.t) = Cache.create config.l2

let access t addr =
  match Cache.access t.l1 addr with
  | `Hit -> t.config.l1d.latency
  | `Miss -> (
    match Cache.access t.l2 addr with
    | `Hit -> t.config.l1d.latency + t.config.l2.latency
    | `Miss ->
      t.config.l1d.latency + t.config.l2.latency + t.config.memory_latency)

(* Allocator calls walk their metadata and touch the first line of the
   range; model a fixed software cost plus one access per 4 lines. *)
let allocator_base = 40

let range_cycles t base size =
  let line = t.config.l1d.line_bytes in
  let lines = max 1 ((size + line - 1) / line) in
  let cost = ref allocator_base in
  let step = 4 * line in
  let k = ref 0 in
  while !k < lines * line do
    cost := !cost + access t (base + !k);
    k := !k + step
  done;
  !cost

let instr_cycles t (i : Tracing.Instr.t) =
  match i with
  | Nop -> 1
  | Malloc { base; size } | Free { base; size } -> 1 + range_cycles t base size
  | _ ->
    let accesses = Tracing.Instr.accesses i in
    List.fold_left
      (fun cycles a ->
        (* The 1-cycle pipeline overlap hides part of an L1 hit. *)
        cycles + max 0 (access t a - 1))
      1 accesses

type stats = { l1 : Cache.stats; l2 : Cache.stats }

let stats (t : t) = { l1 = Cache.stats t.l1; l2 = Cache.stats t.l2 }
