(** Timeline simulation of parallel and timesliced monitoring.

    Reproduces the performance behaviour Section 7 measures:

    - {b Parallel (butterfly)}: each application thread is paired with a
      lifeguard thread on its own core.  Per epoch, the lifeguard runs
      pass 1 streaming from the log (the application stalls when it gets a
      full log buffer ahead), then all lifeguard threads exchange summaries
      at a barrier, then pass 2 runs one epoch behind (the window needs the
      next epoch's pass-1 summaries).  Makespan is the last pass-2
      completion.
    - {b Timesliced}: the state of the art — application threads interleave
      on one core, a single sequential lifeguard consumes the merged log on
      another; the slower side determines completion.

    Work quantities (per-block lifeguard cycles, false-positive handling)
    are supplied by the caller, which obtains them from the actual lifeguard
    run: the timing model never invents analysis work. *)

type epoch_work = {
  instrs : int;  (** events logged by this block *)
  app_cycles : int;  (** application execution cycles for this block *)
  pass1_cycles : int;  (** lifeguard pass-1 cycles for this block *)
  pass2_cycles : int;  (** lifeguard pass-2 cycles, incl. FP processing *)
}

type parallel_input = {
  work : epoch_work array array;  (** [.(tid).(epoch)] *)
  buffer_entries : int;  (** log-buffer capacity in events *)
  barrier_cycles : int;  (** per-pass synchronization cost *)
  epoch_fixed_cycles : int;  (** per-epoch summary/meet/SOS bookkeeping *)
}

type parallel_result = {
  makespan : int;
  app_finish : int array;  (** per-thread application completion *)
  lifeguard_finish : int array;
  stall_cycles : int array;  (** application cycles lost to a full buffer *)
}

val parallel : parallel_input -> parallel_result

type timesliced_input = {
  app_total_cycles : int;  (** all threads timesliced on one core *)
  lifeguard_total_cycles : int;  (** sequential lifeguard over merged log *)
}

val timesliced : timesliced_input -> int
(** Completion time: the application and the lifeguard proceed coupled
    through the log buffer, so the slower side dominates. *)
