lib/core/reaching_expressions.ml: Dataflow Expr Expr_set Tracing
