lib/core/def_set.ml: Definition Format Instr_id Int List Map Option Tracing
