lib/core/expr_set.ml: Expr Format Int List Map Tracing
