lib/core/epochs.ml: Array Block Format List Tracing
