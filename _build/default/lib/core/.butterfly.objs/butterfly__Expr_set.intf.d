lib/core/expr_set.mli: Expr Format Tracing
