lib/core/epochs.mli: Block Format Tracing
