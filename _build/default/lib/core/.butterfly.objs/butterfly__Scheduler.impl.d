lib/core/scheduler.ml: Array Block Dataflow Hashtbl List Tracing
