lib/core/interval_set.ml: Format List
