lib/core/reaching_definitions.ml: Dataflow Def_set Definition Tracing
