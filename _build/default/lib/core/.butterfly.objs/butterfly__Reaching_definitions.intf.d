lib/core/reaching_definitions.mli: Dataflow Def_set Epochs Tracing
