lib/core/dataflow.ml: Array Block Epochs Format Instr_id List Tracing
