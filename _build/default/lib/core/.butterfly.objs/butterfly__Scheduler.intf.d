lib/core/scheduler.mli: Dataflow Tracing
