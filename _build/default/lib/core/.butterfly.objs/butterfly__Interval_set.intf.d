lib/core/interval_set.mli: Format
