lib/core/parallel.ml: Array Block Dataflow Domain Epochs List
