lib/core/instr_id.mli: Format Tracing
