lib/core/parallel.mli: Dataflow Epochs
