lib/core/expr.mli: Format Set Tracing
