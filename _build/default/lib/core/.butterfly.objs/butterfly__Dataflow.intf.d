lib/core/dataflow.mli: Block Epochs Format Instr_id Tracing
