lib/core/definition.ml: Format Instr_id Set Tracing
