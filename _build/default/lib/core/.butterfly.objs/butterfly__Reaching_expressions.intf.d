lib/core/reaching_expressions.mli: Dataflow Epochs Expr Expr_set Tracing
