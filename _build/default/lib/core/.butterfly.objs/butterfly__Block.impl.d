lib/core/block.ml: Array Format Instr_id Tracing
