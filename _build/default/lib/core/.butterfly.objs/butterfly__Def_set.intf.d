lib/core/def_set.mli: Definition Format Instr_id Tracing
