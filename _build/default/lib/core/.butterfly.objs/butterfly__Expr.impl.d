lib/core/expr.ml: Format Stdlib Tracing
