lib/core/block.mli: Format Instr_id Tracing
