lib/core/definition.mli: Format Instr_id Set Tracing
