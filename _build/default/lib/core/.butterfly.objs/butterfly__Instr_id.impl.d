lib/core/instr_id.ml: Format Hashtbl Int Tracing
