(** Epoch-structured executions and butterfly geometry.

    Splits a heartbeat-annotated program into the [epoch x thread] grid of
    blocks, padding threads that finished early with empty blocks, and
    answers the geometric questions of Figure 7: for a body block [(l, t)],
    which blocks form its head, tail and wings. *)

type t

val of_program : Tracing.Program.t -> t
(** Blocks are delimited by the heartbeats already present in each trace
    (insert them with {!Tracing.Program.with_heartbeats}).  A program whose
    traces contain no heartbeats yields a single epoch. *)

val of_blocks : Tracing.Instr.t array list array -> t
(** Per-thread block lists, for hand-built tests with staggered epoch
    boundaries. *)

val threads : t -> int
val num_epochs : t -> int

val block : t -> epoch:int -> tid:Tracing.Tid.t -> Block.t
(** Out-of-range epochs return an empty block: the grid is conceptually
    infinite in both directions, with no instructions outside the
    execution. *)

val head : t -> epoch:int -> tid:Tracing.Tid.t -> Block.t
(** [(l-1, t)]: already executed before the body. *)

val tail : t -> epoch:int -> tid:Tracing.Tid.t -> Block.t
(** [(l+1, t)]: executes after the body. *)

val wings : t -> epoch:int -> tid:Tracing.Tid.t -> Block.t list
(** Blocks [(l', t')] with [l-1 <= l' <= l+1] and [t' <> t]: potentially
    concurrent with the body. *)

val epoch_blocks : t -> epoch:int -> Block.t list
(** All blocks of one epoch, in thread order. *)

val iter_blocks : (Block.t -> unit) -> t -> unit
(** Visits blocks epoch-major, thread-minor. *)

val instr_count : t -> int
val pp : Format.formatter -> t -> unit
