(** Dynamic parallel reaching definitions (Section 5.1).

    A definition [d] (a particular dynamic write) {e reaches} epoch [l] if
    some valid ordering of the first [l] epochs ends with [d] live.
    Generation is global (a definition in a wing is visible to the body);
    killing is local, so KILL-SIDE-OUT is conservatively useless and only
    GEN-SIDE-IN/OUT carry wing information.

    [Analysis] exposes the full two-pass machinery ({!Dataflow.Make}) over
    {!Def_set}; the IN/OUT sets it computes are what a lifeguard layered on
    reaching definitions would check against. *)

module Problem :
  Dataflow.PROBLEM with type Set.t = Def_set.t

module Analysis : module type of Dataflow.Make (Problem)

val run :
  ?on_instr:(Analysis.instr_view -> unit) -> Epochs.t -> Analysis.result
(** Convenience alias for [Analysis.run]. *)

val definitely_reaches_loc :
  Analysis.result -> epoch:int -> tid:Tracing.Tid.t -> Tracing.Addr.t -> bool
(** Does some definition of the location possibly reach the block entry?
    (The "may" query checks are built from.) *)
