type t = { epoch : int; tid : Tracing.Tid.t; index : int }

let make ~epoch ~tid ~index = { epoch; tid; index }
let equal a b = a = b

let compare a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> (
    match Tracing.Tid.compare a.tid b.tid with
    | 0 -> Int.compare a.index b.index
    | c -> c)
  | c -> c

let hash = Hashtbl.hash
let pp ppf { epoch; tid; index } = Format.fprintf ppf "(%d,%d,%d)" epoch tid index
let to_string t = Format.asprintf "%a" pp t

let strictly_before ~sequential a b =
  a.epoch <= b.epoch - 2
  || sequential
     && Tracing.Tid.equal a.tid b.tid
     && (a.epoch < b.epoch || (a.epoch = b.epoch && a.index < b.index))

let potentially_concurrent a b =
  (not (Tracing.Tid.equal a.tid b.tid)) && abs (a.epoch - b.epoch) <= 1
