(** Dynamic instruction identifiers [(l, t, i)].

    A block is identified by its epoch [l] and thread [t]; an instruction by
    its offset [i] from the start of block [(l, t)] (Section 4.1). *)

type t = { epoch : int; tid : Tracing.Tid.t; index : int }

val make : epoch:int -> tid:Tracing.Tid.t -> index:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val strictly_before : sequential:bool -> t -> t -> bool
(** The strictly-before relation of Section 6.2: [(l,t,i) < (l',t',i')] iff
    [l <= l' - 2]; when [sequential] (i.e. the machine is sequentially
    consistent) additionally same-thread program order applies. *)

val potentially_concurrent : t -> t -> bool
(** Different threads and epochs within one of each other. *)
