type t = { epoch : int; tid : Tracing.Tid.t; instrs : Tracing.Instr.t array }

let make ~epoch ~tid instrs = { epoch; tid; instrs }
let empty ~epoch ~tid = { epoch; tid; instrs = [||] }
let length b = Array.length b.instrs
let is_empty b = length b = 0
let id b i = Instr_id.make ~epoch:b.epoch ~tid:b.tid ~index:i

let iteri f b = Array.iteri (fun i ins -> f (id b i) ins) b.instrs

let fold_left f acc b =
  let acc = ref acc in
  Array.iteri (fun i ins -> acc := f !acc (id b i) ins) b.instrs;
  !acc

let pp ppf b =
  Format.fprintf ppf "block (%d,%a): %d instrs" b.epoch Tracing.Tid.pp b.tid
    (length b)
