(** Dynamic expressions for reaching expressions.

    An expression is identified by its operand locations (the operator is
    irrelevant to availability: what matters is whether the operands have
    been overwritten since the expression was computed).  Binary operands
    are kept in canonical order so structural equality is semantic. *)

type t = private Unop of Tracing.Addr.t | Binop of Tracing.Addr.t * Tracing.Addr.t

val unop : Tracing.Addr.t -> t
val binop : Tracing.Addr.t -> Tracing.Addr.t -> t
(** Canonicalizes operand order; [binop a a] collapses to [unop a]. *)

val of_instr : Tracing.Instr.t -> t option
(** The expression an instruction computes: [Assign_unop]/[Assign_binop]
    yield one unless an operand is also the destination (the write would
    immediately kill it). *)

val operands : t -> Tracing.Addr.t list
val mentions : Tracing.Addr.t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
