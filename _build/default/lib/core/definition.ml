type t = { loc : Tracing.Addr.t; site : Instr_id.t }

let make ~loc ~site = { loc; site }
let equal a b = a = b

let compare a b =
  match Tracing.Addr.compare a.loc b.loc with
  | 0 -> Instr_id.compare a.site b.site
  | c -> c

let pp ppf { loc; site } =
  Format.fprintf ppf "%a@%a" Tracing.Addr.pp loc Instr_id.pp site

let of_instr id instr =
  match Tracing.Instr.writes instr with
  | Some loc -> Some { loc; site = id }
  | None -> None

module Site_set = Set.Make (Instr_id)
