(** Parallel execution of a butterfly analysis on OCaml 5 domains.

    The deployment model of the paper runs one lifeguard thread per
    application thread, synchronizing at pass boundaries.  This module
    realizes that shape in-process: pass 1 (block summarization) runs with
    one domain per application thread, the master computes epoch summaries
    and the SOS (it is the designated single writer of Section 5), and
    pass 2 runs per-thread domains again — each consuming only read-only
    summaries, so no locking is needed, exactly the paper's "objects are
    not modified after being released for reading" discipline.

    Results are deterministic and identical to {!Dataflow.Make}'s batch
    driver (property-tested). *)

module Make (P : Dataflow.PROBLEM) : sig
  module D : module type of Dataflow.Make (P)

  val run :
    ?map:(D.instr_view -> 'a option) ->
    Epochs.t ->
    D.result * 'a list
  (** [run ~map epochs] executes both passes with per-thread parallelism.
      [map] is applied to every second-pass instruction view {e inside} the
      worker domains; the [Some] results are returned in deterministic
      (epoch-major, thread-minor, instruction-order) order.  Omitting [map]
      collects nothing. *)

  val checks_in_parallel : unit -> int
  (** Number of worker domains the last [run] used (for tests: > 1 on a
      multicore runtime). *)
end
