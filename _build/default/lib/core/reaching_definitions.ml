module Problem = struct
  let name = "reaching-definitions"

  module Set = Def_set

  let flavour = `May

  let gen id instr =
    match Definition.of_instr id instr with
    | Some d -> Def_set.singleton d
    | None -> Def_set.empty

  let kill id instr =
    match Tracing.Instr.writes instr with
    | Some x -> Def_set.all_of_loc_except x id
    | None -> Def_set.empty
end

module Analysis = Dataflow.Make (Problem)

let run = Analysis.run

let definitely_reaches_loc result ~epoch ~tid loc =
  Def_set.defines_loc loc (Analysis.block_in result ~epoch ~tid)
