(** Dynamic parallel reaching expressions (Section 5.2).

    An expression reaches a point only if {e no} valid ordering kills it on
    the way — GEN and KILL trade roles relative to reaching definitions:
    killing is global (KILL-SIDE-IN/OUT summarize the wings, met by union,
    as in Figure 8), generating is local.  AddrCheck is this analysis with
    allocations as GEN and deallocations as KILL. *)

module Problem :
  Dataflow.PROBLEM with type Set.t = Expr_set.t

module Analysis : module type of Dataflow.Make (Problem)

val run :
  ?on_instr:(Analysis.instr_view -> unit) -> Epochs.t -> Analysis.result

val available :
  Analysis.result -> epoch:int -> tid:Tracing.Tid.t -> Expr.t -> bool
(** Is the expression available (no recomputation needed) at block entry
    under every valid ordering? *)
