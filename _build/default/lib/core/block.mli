(** Butterfly blocks.

    A block is the dynamic instruction sequence one thread executes during
    one uncertainty epoch, demarcated by heartbeat reception (Figure 5).
    Unlike a basic block it has no static structure — it is just a slice of
    the thread's trace. *)

type t = { epoch : int; tid : Tracing.Tid.t; instrs : Tracing.Instr.t array }

val make : epoch:int -> tid:Tracing.Tid.t -> Tracing.Instr.t array -> t
val empty : epoch:int -> tid:Tracing.Tid.t -> t
val length : t -> int
val is_empty : t -> bool

val id : t -> int -> Instr_id.t
(** [id b i] is the identifier [(l, t, i)] of the [i]-th instruction. *)

val iteri : (Instr_id.t -> Tracing.Instr.t -> unit) -> t -> unit
val fold_left : ('a -> Instr_id.t -> Tracing.Instr.t -> 'a) -> 'a -> t -> 'a
val pp : Format.formatter -> t -> unit
