module Problem = struct
  let name = "reaching-expressions"

  module Set = Expr_set

  let flavour = `Must

  let gen _id instr =
    match Expr.of_instr instr with
    | Some e -> Expr_set.singleton e
    | None -> Expr_set.empty

  let kill _id instr =
    match Tracing.Instr.writes instr with
    | Some x -> Expr_set.killing x
    | None -> Expr_set.empty
end

module Analysis = Dataflow.Make (Problem)

let run = Analysis.run

let available result ~epoch ~tid e =
  Expr_set.mem e (Analysis.block_in result ~epoch ~tid)
