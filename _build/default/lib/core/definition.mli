(** Dynamic definitions.

    In dynamic parallel reaching definitions every executed write is a
    distinct definition, identified by the location it defines and the
    instruction [(l, t, i)] that performed it. *)

type t = { loc : Tracing.Addr.t; site : Instr_id.t }

val make : loc:Tracing.Addr.t -> site:Instr_id.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val of_instr : Instr_id.t -> Tracing.Instr.t -> t option
(** The definition an instruction generates, if it writes a location. *)

module Site_set : Set.S with type elt = Instr_id.t
