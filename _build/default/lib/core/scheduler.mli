(** Online sliding-window driver (the processing discipline of Section 4.3).

    {!Dataflow.Make}'s [run] is a batch driver over a complete execution.
    A deployed lifeguard instead consumes each thread's event stream as the
    application produces it.  This module drives the same analysis
    incrementally: pass 1 runs the moment a heartbeat closes a block;
    pass 2 for epoch [l] runs as soon as every thread has delivered its
    epoch-[l+1] block (the butterfly needs the tail's summaries); and
    SOS{_l+2} is committed right after.  Only a constant number of epochs
    of state is ever resident — the point of the sliding window — and
    {!max_resident_epochs} exposes the high-water mark so tests can verify
    boundedness.

    The per-instruction views delivered to [on_instr] are identical to the
    batch driver's (the equivalence is property-tested). *)

module Make (P : Dataflow.PROBLEM) : sig
  module D : module type of Dataflow.Make (P)

  type t

  val create : threads:int -> on_instr:(D.instr_view -> unit) -> t

  val feed : t -> Tracing.Tid.t -> Tracing.Event.t -> unit
  (** Deliver the next event of one thread's stream.  Heartbeats close the
      thread's current block; any pass-2 work whose window is now complete
      runs before [feed] returns.  Raises [Invalid_argument] after
      {!finish} or for an out-of-range thread. *)

  val feed_trace : t -> Tracing.Tid.t -> Tracing.Trace.t -> unit

  val finish : t -> unit
  (** End of all streams: closes trailing partial blocks (padding threads
      to a common epoch count) and drains the remaining window.  Idempotent. *)

  val sos : t -> D.Set.t
  (** The most recently committed strongly ordered state. *)

  val epochs_completed : t -> int
  (** Epochs whose second pass has run. *)

  val max_resident_epochs : t -> int
  (** High-water mark of epochs simultaneously buffered. *)
end
