type t = {
  blocks : Block.t array array; (* blocks.(epoch).(tid) *)
  threads : int;
}

let of_blocks per_thread =
  let threads = Array.length per_thread in
  if threads = 0 then invalid_arg "Epochs.of_blocks: no threads";
  let num_epochs =
    Array.fold_left (fun m bs -> max m (List.length bs)) 1 per_thread
  in
  let blocks =
    Array.init num_epochs (fun l ->
        Array.init threads (fun tid ->
            match List.nth_opt per_thread.(tid) l with
            | Some instrs -> Block.make ~epoch:l ~tid instrs
            | None -> Block.empty ~epoch:l ~tid))
  in
  { blocks; threads }

let of_program p =
  of_blocks
    (Array.init (Tracing.Program.threads p) (fun t ->
         Tracing.Trace.blocks (Tracing.Program.trace p t)))

let threads t = t.threads
let num_epochs t = Array.length t.blocks

let block t ~epoch ~tid =
  if tid < 0 || tid >= t.threads then invalid_arg "Epochs.block: bad tid";
  if epoch < 0 || epoch >= num_epochs t then Block.empty ~epoch ~tid
  else t.blocks.(epoch).(tid)

let head t ~epoch ~tid = block t ~epoch:(epoch - 1) ~tid
let tail t ~epoch ~tid = block t ~epoch:(epoch + 1) ~tid

let wings t ~epoch ~tid =
  let acc = ref [] in
  for l = epoch + 1 downto epoch - 1 do
    for t' = t.threads - 1 downto 0 do
      if t' <> tid then acc := block t ~epoch:l ~tid:t' :: !acc
    done
  done;
  !acc

let epoch_blocks t ~epoch =
  List.init t.threads (fun tid -> block t ~epoch ~tid)

let iter_blocks f t = Array.iter (fun row -> Array.iter f row) t.blocks

let instr_count t =
  let n = ref 0 in
  iter_blocks (fun b -> n := !n + Block.length b) t;
  !n

let pp ppf t =
  Format.fprintf ppf "epochs: %d x %d threads, %d instrs" (num_epochs t)
    t.threads (instr_count t)
