(** Sequential INITCHECK: uninitialized-read detection.

    A MemCheck-style lifeguard tracking which bytes hold defined values:
    writes define their destination, [malloc] yields allocated-but-
    undefined memory, [free] undefines.  Reading an undefined location is
    an error.  Not one of the paper's two case studies — it is the "other
    lifeguards fit the same generate/propagate structure" claim of
    Section 5, made concrete. *)

type error = {
  index : int;
  addr : Tracing.Addr.t;  (** undefined byte that was read *)
}

type report = { errors : error list; checked_reads : int }

val check : Tracing.Instr.t list -> report

val flagged_addresses : report -> Butterfly.Interval_set.t
