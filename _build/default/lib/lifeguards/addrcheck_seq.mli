(** Sequential ADDRCHECK (Section 2).

    The original single-stream memory-checking lifeguard: maintains the
    allocation state of every byte and checks that every access touches
    allocated memory, every free frees allocated memory, and every malloc
    targets unallocated memory.  Used directly by timesliced monitoring and
    as the per-ordering ground truth for the butterfly version. *)

type error_kind =
  | Unallocated_access  (** read or write outside any live allocation *)
  | Unallocated_free  (** free of (partly) unallocated memory, incl. double free *)
  | Double_alloc  (** malloc overlapping a live allocation *)

type error = {
  index : int;  (** position in the checked instruction stream *)
  kind : error_kind;
  addrs : Butterfly.Interval_set.t;  (** offending bytes *)
}

type report = {
  errors : error list;
  checked_accesses : int;  (** memory events examined *)
}

val check : Tracing.Instr.t list -> report

val flagged_addresses : report -> Butterfly.Interval_set.t
(** Union of all offending bytes, for set-level comparisons. *)

val pp_error : Format.formatter -> error -> unit
