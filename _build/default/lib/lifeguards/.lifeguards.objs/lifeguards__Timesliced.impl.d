lib/lifeguards/timesliced.ml: Addrcheck_seq Array List Taintcheck_seq Tracing
