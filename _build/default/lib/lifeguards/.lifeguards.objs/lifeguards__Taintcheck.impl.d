lib/lifeguards/taintcheck.ml: Array Butterfly Format Fun Hashtbl Int List Map Option Set Tracing
