lib/lifeguards/addrcheck.ml: Array Butterfly Fmt Format List Tracing
