lib/lifeguards/initcheck.ml: Butterfly Format List Tracing
