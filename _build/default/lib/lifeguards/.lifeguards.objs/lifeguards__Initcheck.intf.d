lib/lifeguards/initcheck.mli: Butterfly Format
