lib/lifeguards/addrcheck.mli: Butterfly Format Tracing
