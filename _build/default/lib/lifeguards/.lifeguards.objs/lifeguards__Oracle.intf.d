lib/lifeguards/oracle.mli: Memmodel Tracing
