lib/lifeguards/oracle.ml: Addrcheck Addrcheck_seq Array Butterfly Format Initcheck Initcheck_seq List Memmodel Random Taintcheck Taintcheck_seq Tracing
