lib/lifeguards/timesliced.mli: Addrcheck_seq Taintcheck_seq Tracing
