lib/lifeguards/taintcheck_seq.mli: Tracing
