lib/lifeguards/taintcheck_seq.ml: Int List Set Tracing
