lib/lifeguards/addrcheck_seq.mli: Butterfly Format Tracing
