lib/lifeguards/addrcheck_seq.ml: Butterfly Format List Tracing
