lib/lifeguards/initcheck_seq.mli: Butterfly Tracing
