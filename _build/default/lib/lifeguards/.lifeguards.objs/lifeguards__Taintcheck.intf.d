lib/lifeguards/taintcheck.mli: Butterfly Format Tracing
