lib/lifeguards/initcheck_seq.ml: Butterfly List Tracing
