module IS = Butterfly.Interval_set

type error = { index : int; addr : Tracing.Addr.t }
type report = { errors : error list; checked_reads : int }

let check instrs =
  let defined = ref IS.empty in
  let errors = ref [] in
  let reads = ref 0 in
  List.iteri
    (fun index i ->
      (match Tracing.Instr.reads i with
      | [] -> ()
      | rs ->
        incr reads;
        List.iter
          (fun a -> if not (IS.mem a !defined) then errors := { index; addr = a } :: !errors)
          rs);
      (match Tracing.Instr.alloc_effect i with
      | `Alloc (base, size) | `Free (base, size) ->
        (* Fresh allocations hold garbage; freed memory no longer holds a
           defined value. *)
        defined := IS.remove_range base (base + size) !defined
      | `None -> ());
      match Tracing.Instr.writes i with
      | Some x -> defined := IS.add_range x (x + 1) !defined
      | None -> ())
    instrs;
  { errors = List.rev !errors; checked_reads = !reads }

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc (IS.singleton e.addr)) IS.empty r.errors
