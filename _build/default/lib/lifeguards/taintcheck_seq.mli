(** Sequential TAINTCHECK (Section 2).

    Tracks the propagation of untrusted ("tainted") data through a single
    serialized instruction stream: system-call inputs taint their
    destinations, assignments OR their sources' taint into the destination,
    and using tainted data as a jump target or critical system-call
    argument is an error. *)

type error = {
  index : int;  (** position in the checked stream *)
  sink : Tracing.Addr.t;
}

type report = {
  errors : error list;
  final_tainted : Tracing.Addr.t list;  (** sorted *)
}

val check : Tracing.Instr.t list -> report
val flagged_sinks : report -> Tracing.Addr.t list
(** Sorted, deduplicated sink locations that were flagged. *)
