let serialize ?(quantum = 1000) p =
  let threads = Tracing.Program.threads p in
  let streams =
    Array.init threads (fun t ->
        ref (Tracing.Trace.instrs (Tracing.Program.trace p t)))
  in
  let out = ref [] in
  let live = ref true in
  while !live do
    live := false;
    Array.iter
      (fun stream ->
        if !stream <> [] then (
          live := true;
          let rec take n =
            match !stream with
            | i :: rest when n > 0 ->
              out := i :: !out;
              stream := rest;
              take (n - 1)
            | _ -> ()
          in
          take quantum))
      streams
  done;
  List.rev !out

let addrcheck ?quantum p = Addrcheck_seq.check (serialize ?quantum p)
let taintcheck ?quantum p = Taintcheck_seq.check (serialize ?quantum p)

let lifeguard_events p =
  let n = ref 0 in
  for t = 0 to Tracing.Program.threads p - 1 do
    n := !n + Tracing.Trace.instr_count (Tracing.Program.trace p t)
  done;
  !n
