(** Timesliced monitoring: the state-of-the-art baseline of Figure 11.

    All application threads are interleaved on a single core (round-robin
    quanta) and the resulting {e single} serialized event stream is checked
    by an unmodified sequential lifeguard on another core.  Sound because
    the interleaving is real — but the application loses its parallelism
    and the lifeguard cannot scale with threads. *)

val serialize : ?quantum:int -> Tracing.Program.t -> Tracing.Instr.t list
(** The merged instruction stream produced by round-robin timeslicing
    (default quantum 1000 instructions). *)

val addrcheck : ?quantum:int -> Tracing.Program.t -> Addrcheck_seq.report
val taintcheck : ?quantum:int -> Tracing.Program.t -> Taintcheck_seq.report

val lifeguard_events : Tracing.Program.t -> int
(** Number of events the sequential lifeguard must process. *)
