module IS = Butterfly.Interval_set

type error_kind = Unallocated_access | Unallocated_free | Double_alloc

type error = { index : int; kind : error_kind; addrs : IS.t }
type report = { errors : error list; checked_accesses : int }

let check instrs =
  let allocated = ref IS.empty in
  let errors = ref [] in
  let checked = ref 0 in
  let flag index kind addrs =
    if not (IS.is_empty addrs) then errors := { index; kind; addrs } :: !errors
  in
  List.iteri
    (fun index i ->
      match Tracing.Instr.alloc_effect i with
      | `Alloc (base, size) ->
        incr checked;
        let r = IS.range base (base + size) in
        flag index Double_alloc (IS.inter r !allocated);
        allocated := IS.union !allocated r
      | `Free (base, size) ->
        incr checked;
        let r = IS.range base (base + size) in
        flag index Unallocated_free (IS.diff r !allocated);
        allocated := IS.diff !allocated r
      | `None ->
        let accesses = Tracing.Instr.accesses i in
        if accesses <> [] then incr checked;
        List.iter
          (fun a ->
            if not (IS.mem a !allocated) then
              flag index Unallocated_access (IS.singleton a))
          accesses)
    instrs;
  { errors = List.rev !errors; checked_accesses = !checked }

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc e.addrs) IS.empty r.errors

let pp_error ppf e =
  let kind =
    match e.kind with
    | Unallocated_access -> "unallocated access"
    | Unallocated_free -> "unallocated free"
    | Double_alloc -> "double alloc"
  in
  Format.fprintf ppf "[%d] %s: %a" e.index kind IS.pp e.addrs
