(* Def_set: the per-location finite/cofinite algebra is validated against
   direct semantic evaluation of random operation trees.  Probe definitions
   include sites never used in construction, so cofinite ("all defs of a
   location") portions are exercised on generic elements. *)

module D = Butterfly.Def_set
module Def = Butterfly.Definition
module Id = Butterfly.Instr_id

let site k = Id.make ~epoch:k ~tid:0 ~index:k
let used_sites = List.init 4 site
let fresh_sites = [ site 97; site 98 ]
let locs = [ 0; 1; 2 ]

type tree =
  | Empty
  | Single of Def.t
  | All_loc of Tracing.Addr.t
  | All_except of Tracing.Addr.t * Id.t
  | Union of tree * tree
  | Inter of tree * tree
  | Diff of tree * tree

let rec build = function
  | Empty -> D.empty
  | Single d -> D.singleton d
  | All_loc l -> D.all_of_loc l
  | All_except (l, s) -> D.all_of_loc_except l s
  | Union (a, b) -> D.union (build a) (build b)
  | Inter (a, b) -> D.inter (build a) (build b)
  | Diff (a, b) -> D.diff (build a) (build b)

let rec sem t (d : Def.t) =
  match t with
  | Empty -> false
  | Single d' -> Def.equal d d'
  | All_loc l -> d.loc = l
  | All_except (l, s) -> d.loc = l && not (Id.equal d.site s)
  | Union (a, b) -> sem a d || sem b d
  | Inter (a, b) -> sem a d && sem b d
  | Diff (a, b) -> sem a d && not (sem b d)

let gen_tree =
  let open QCheck.Gen in
  let loc = oneofl locs in
  let st = oneofl used_sites in
  let base =
    frequency
      [
        (1, return Empty);
        (3, map2 (fun l s -> Single (Def.make ~loc:l ~site:s)) loc st);
        (2, map (fun l -> All_loc l) loc);
        (2, map2 (fun l s -> All_except (l, s)) loc st);
      ]
  in
  fix
    (fun self n ->
      if n = 0 then base
      else
        frequency
          [
            (1, base);
            (2, map2 (fun a b -> Union (a, b)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Inter (a, b)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Diff (a, b)) (self (n - 1)) (self (n - 1)));
          ])
    3

let rec tree_to_string = function
  | Empty -> "0"
  | Single d -> Format.asprintf "%a" Def.pp d
  | All_loc l -> Printf.sprintf "all(%d)" l
  | All_except (l, s) -> Format.asprintf "all(%d)\\%a" l Id.pp s
  | Union (a, b) -> Printf.sprintf "(%s u %s)" (tree_to_string a) (tree_to_string b)
  | Inter (a, b) -> Printf.sprintf "(%s n %s)" (tree_to_string a) (tree_to_string b)
  | Diff (a, b) -> Printf.sprintf "(%s - %s)" (tree_to_string a) (tree_to_string b)

let arb = QCheck.make ~print:tree_to_string gen_tree

let probes =
  List.concat_map
    (fun l ->
      List.map (fun s -> Def.make ~loc:l ~site:s) (used_sites @ fresh_sites))
    (locs @ [ 9 ])

let prop_tests =
  [
    Testutil.qtest ~count:500 "membership matches semantics" arb (fun t ->
        let s = build t in
        List.for_all (fun d -> D.mem d s = sem t d) probes);
    Testutil.qtest ~count:500 "equal is semantic" (QCheck.pair arb arb)
      (fun (ta, tb) ->
        let a = build ta and b = build tb in
        let same_sem = List.for_all (fun d -> sem ta d = sem tb d) probes in
        (* The probe set distinguishes all canonical forms over these
           locations and sites, so structural and semantic equality must
           agree exactly. *)
        D.equal a b = same_sem);
    Testutil.qtest ~count:500 "is_empty sound" arb (fun t ->
        let s = build t in
        if D.is_empty s then List.for_all (fun d -> not (sem t d)) probes
        else true);
    Testutil.qtest ~count:300 "defines_loc sound" arb (fun t ->
        let s = build t in
        List.for_all
          (fun l ->
            let any_probe =
              List.exists (fun (d : Def.t) -> d.loc = l && sem t d) probes
            in
            if D.defines_loc l s then true else not any_probe)
          locs);
  ]

let unit_tests =
  [
    Alcotest.test_case "kill algebra closure" `Quick (fun () ->
        let d0 = Def.make ~loc:0 ~site:(site 0) in
        let d1 = Def.make ~loc:0 ~site:(site 1) in
        let s = D.diff (D.all_of_loc 0) (D.singleton d0) in
        Testutil.checkb "excluded" false (D.mem d0 s);
        Testutil.checkb "included" true (D.mem d1 s));
    Alcotest.test_case "cofinite minus cofinite flips to finite" `Quick
      (fun () ->
        let a = D.all_of_loc_except 0 (site 0) in
        let b = D.all_of_loc_except 0 (site 1) in
        let d = D.diff a b in
        Testutil.checkb "s1 in" true (D.mem (Def.make ~loc:0 ~site:(site 1)) d);
        Testutil.checkb "s0 out" false (D.mem (Def.make ~loc:0 ~site:(site 0)) d);
        Testutil.checkb "generic out" false
          (D.mem (Def.make ~loc:0 ~site:(site 42)) d));
    Alcotest.test_case "sites_of_loc" `Quick (fun () ->
        let d0 = Def.make ~loc:1 ~site:(site 0) in
        match D.sites_of_loc 1 (D.singleton d0) with
        | `Sites s ->
          Testutil.checkb "site present" true (Def.Site_set.mem (site 0) s)
        | `None | `All_except _ -> Alcotest.fail "expected `Sites");
  ]

let () =
  Alcotest.run "def_set" [ ("unit", unit_tests); ("properties", prop_tests) ]
