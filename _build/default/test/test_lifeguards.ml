(* Lifeguards: sequential checkers, butterfly AddrCheck/TaintCheck, and the
   zero-false-negative theorems (6.1, 6.2) validated against enumerated
   valid orderings. *)

module I = Tracing.Instr
module IS = Butterfly.Interval_set
module AC = Lifeguards.Addrcheck
module ACS = Lifeguards.Addrcheck_seq
module TC = Lifeguards.Taintcheck
module TCS = Lifeguards.Taintcheck_seq

(* ---------- sequential AddrCheck ---------- *)

let seq_addrcheck_tests =
  [
    Alcotest.test_case "clean run" `Quick (fun () ->
        let r =
          ACS.check
            [
              I.Malloc { base = 0; size = 16 };
              I.Read 4;
              I.Assign_const 8;
              I.Free { base = 0; size = 16 };
            ]
        in
        Alcotest.(check int) "no errors" 0 (List.length r.errors);
        Alcotest.(check int) "accesses" 4 r.checked_accesses);
    Alcotest.test_case "use after free" `Quick (fun () ->
        let r =
          ACS.check
            [
              I.Malloc { base = 0; size = 16 };
              I.Free { base = 0; size = 16 };
              I.Read 4;
            ]
        in
        (match r.errors with
        | [ { kind = ACS.Unallocated_access; index = 2; _ } ] -> ()
        | _ -> Alcotest.fail "expected one unallocated access at index 2"));
    Alcotest.test_case "double free" `Quick (fun () ->
        let r =
          ACS.check
            [
              I.Malloc { base = 0; size = 8 };
              I.Free { base = 0; size = 8 };
              I.Free { base = 0; size = 8 };
            ]
        in
        match r.errors with
        | [ { kind = ACS.Unallocated_free; _ } ] -> ()
        | _ -> Alcotest.fail "expected one unallocated free");
    Alcotest.test_case "double alloc" `Quick (fun () ->
        let r =
          ACS.check
            [ I.Malloc { base = 0; size = 8 }; I.Malloc { base = 4; size = 8 } ]
        in
        match r.errors with
        | [ { kind = ACS.Double_alloc; addrs; _ } ] ->
          Testutil.checkb "overlap" true (IS.equal addrs (IS.range 4 8))
        | _ -> Alcotest.fail "expected one double alloc");
    Alcotest.test_case "partial free flagged" `Quick (fun () ->
        let r =
          ACS.check
            [ I.Malloc { base = 0; size = 8 }; I.Free { base = 0; size = 16 } ]
        in
        match r.errors with
        | [ { kind = ACS.Unallocated_free; addrs; _ } ] ->
          Testutil.checkb "tail flagged" true (IS.equal addrs (IS.range 8 16))
        | _ -> Alcotest.fail "expected one unallocated free");
  ]

(* ---------- sequential TaintCheck ---------- *)

let seq_taintcheck_tests =
  [
    Alcotest.test_case "propagation chain" `Quick (fun () ->
        let r =
          TCS.check
            [
              I.Taint_source 0;
              I.Assign_unop (1, 0);
              I.Assign_binop (2, 1, 3);
              I.Jump_via 2;
            ]
        in
        Alcotest.(check (list int)) "sink flagged" [ 2 ] (TCS.flagged_sinks r));
    Alcotest.test_case "overwrite clears taint" `Quick (fun () ->
        let r =
          TCS.check
            [ I.Taint_source 0; I.Assign_const 0; I.Jump_via 0 ]
        in
        Alcotest.(check int) "no errors" 0 (List.length r.errors));
    Alcotest.test_case "untaint clears" `Quick (fun () ->
        let r =
          TCS.check
            [ I.Taint_source 0; I.Untaint 0; I.Syscall_arg 0 ]
        in
        Alcotest.(check int) "no errors" 0 (List.length r.errors));
    Alcotest.test_case "untainted source clears dst" `Quick (fun () ->
        let r =
          TCS.check
            [
              I.Taint_source 1;
              I.Assign_unop (1, 0);
              (* 1 now inherits untainted 0 *)
              I.Jump_via 1;
            ]
        in
        Alcotest.(check int) "no errors" 0 (List.length r.errors));
  ]

(* ---------- butterfly AddrCheck scenarios ---------- *)

let figure9 () =
  (* Thread 0 allocates [a] in epoch 0; thread 1 accesses it in epoch 1:
     potentially concurrent, must be flagged.  Thread 2 allocates [b] in
     epoch 1 and accesses it itself in epoch 2: isolated, must pass. *)
  let a = 0x100 and b = 0x200 in
  let g : Testutil.grid =
    [|
      [ [| I.Malloc { base = a; size = 8 } |]; [||]; [||] ];
      [ [||]; [| I.Read a |]; [||] ];
      [ [||]; [| I.Malloc { base = b; size = 8 } |]; [| I.Read b |] ];
    |]
  in
  let r = AC.run (Testutil.epochs_of_grid g) in
  Testutil.checkb "access to a flagged" true (IS.mem a (AC.flagged_addresses r));
  Testutil.checkb "b never flagged" false (IS.mem b (AC.flagged_addresses r))

let same_thread_alloc_use_ok () =
  (* Allocation and use within one thread, separated by epochs: clean. *)
  let g : Testutil.grid =
    [|
      [ [| I.Malloc { base = 0; size = 8 } |]; [| I.Read 0 |];
        [| I.Assign_const 4 |]; [| I.Free { base = 0; size = 8 } |] ];
      [ [| I.Nop |]; [| I.Nop |]; [| I.Nop |]; [| I.Nop |] ];
    |]
  in
  let r = AC.run (Testutil.epochs_of_grid g) in
  Alcotest.(check int) "no errors" 0 (List.length r.errors)

let distant_alloc_visible () =
  (* An allocation two epochs back is in the SOS: accesses pass. *)
  let g : Testutil.grid =
    [|
      [ [| I.Malloc { base = 0; size = 8 } |]; [||]; [||]; [||] ];
      [ [||]; [||]; [| I.Read 0 |]; [| I.Assign_const 4 |] ];
    |]
  in
  let r = AC.run (Testutil.epochs_of_grid g) in
  Alcotest.(check int) "no errors" 0 (List.length r.errors)

let injected_faults_flagged () =
  List.iter
    (fun (name, make) ->
      let program, bugs = make ~threads:3 ~scale:300 ~seed:11 in
      let program = Tracing.Program.with_heartbeats ~every:64 program in
      let r = AC.run (Butterfly.Epochs.of_program program) in
      let flagged = AC.flagged_addresses r in
      List.iter
        (fun (b : Workloads.Faults.injected) ->
          Testutil.checkb
            (Format.asprintf "%s: %a flagged" name Workloads.Faults.pp_bug b)
            true (IS.mem b.addr flagged))
        bugs)
    [
      ("uaf", Workloads.Faults.use_after_free);
      ("df", Workloads.Faults.double_free);
      ("ua", Workloads.Faults.unallocated_access);
      ("all", Workloads.Faults.all_kinds);
    ]

(* Random alloc/access grids for the zero-FN property. *)
let gen_ac_instr : I.t QCheck.Gen.t =
  let open QCheck.Gen in
  let region = int_bound 2 in
  frequency
    [
      (2, map (fun r -> I.Malloc { base = 16 * r; size = 8 }) region);
      (2, map (fun r -> I.Free { base = 16 * r; size = 8 }) region);
      (3, map (fun r -> I.Read (16 * r)) region);
      (2, map (fun r -> I.Assign_const ((16 * r) + 4)) region);
      (1, return I.Nop);
    ]

let gen_ac_program =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 3 in
  let thread = list_size (int_range 1 5) gen_ac_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_ac_program =
  QCheck.make ~print:Tracing.Trace_codec.encode gen_ac_program

let addrcheck_tests =
  [
    Alcotest.test_case "figure 9 isolation" `Quick figure9;
    Alcotest.test_case "same-thread alloc+use is clean" `Quick
      same_thread_alloc_use_ok;
    Alcotest.test_case "allocation reaches SOS" `Quick distant_alloc_visible;
    Alcotest.test_case "injected faults all flagged" `Quick
      injected_faults_flagged;
    Testutil.qtest ~count:120 "zero false negatives (Thm 6.1)" arb_ac_program
      (fun p ->
        let v = Lifeguards.Oracle.addrcheck_zero_false_negatives ~cap:3_000 p in
        v.sound);
    Testutil.qtest ~count:60 "zero false negatives under relaxed model"
      arb_ac_program (fun p ->
        let v =
          Lifeguards.Oracle.addrcheck_zero_false_negatives
            ~model:Memmodel.Consistency.Relaxed ~cap:3_000 p
        in
        v.sound);
  ]

(* ---------- butterfly TaintCheck ---------- *)

let exploit_scenarios () =
  List.iter
    (fun (s : Workloads.Exploit.scenario) ->
      let epochs = Butterfly.Epochs.of_program s.program in
      let r = TC.run ~sequential:true epochs in
      let flagged = TC.flagged_sinks r in
      List.iter
        (fun sink ->
          Testutil.checkb
            (Printf.sprintf "%s: sink %x flagged" s.name sink)
            true (List.mem sink flagged))
        s.true_positives)
    (Workloads.Exploit.all ())

let sanitized_is_precise () =
  (* The sanitized scenario unlearns the taint epochs before the sink: a
     precise butterfly TaintCheck must not flag it. *)
  let s = Workloads.Exploit.sanitized () in
  let r = TC.run ~sequential:true (Butterfly.Epochs.of_program s.program) in
  Alcotest.(check (list int)) "no flagged sinks" [] (TC.flagged_sinks r)

let gen_tc_instr : I.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = int_bound 3 in
  frequency
    [
      (2, map (fun x -> I.Taint_source x) addr);
      (1, map (fun x -> I.Untaint x) addr);
      (2, map (fun x -> I.Assign_const x) addr);
      (3, map2 (fun x a -> I.Assign_unop (x, a)) addr addr);
      (2, map3 (fun x a b -> I.Assign_binop (x, a, b)) addr addr addr);
      (2, map (fun x -> I.Jump_via x) addr);
      (1, return I.Nop);
    ]

let gen_tc_program =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 3 in
  let thread = list_size (int_range 1 4) gen_tc_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_tc_program =
  QCheck.make ~print:Tracing.Trace_codec.encode gen_tc_program

let figure10_sos_update () =
  (* Figure 10: [a := b] in epoch 1 becomes tainted only through an
     interleaving with epoch 2's [taint b]; the SOS must nevertheless carry
     [a] into epoch 3, where another thread inherits and jumps through it. *)
  let a = 1 and b = 2 and d = 3 in
  let g : Testutil.grid =
    [|
      [ [||]; [| I.Assign_unop (a, b) |]; [||]; [||] ];
      [ [||]; [||]; [| I.Taint_source b |];
        [| I.Assign_unop (d, a); I.Jump_via d |] ];
    |]
  in
  let r = TC.run ~sequential:true (Testutil.epochs_of_grid g) in
  Testutil.checkb "a committed to SOS_3" true (List.mem a r.sos_tainted.(3));
  Alcotest.(check (list int)) "sink d flagged" [ d ] (TC.flagged_sinks r)

let taintcheck_tests =
  [
    Alcotest.test_case "exploit scenarios flagged" `Quick exploit_scenarios;
    Alcotest.test_case "figure 10: SOS update across the window" `Quick
      figure10_sos_update;
    Alcotest.test_case "sanitized input not flagged" `Quick sanitized_is_precise;
    Testutil.qtest ~count:120 "zero false negatives (Thm 6.2, SC)"
      arb_tc_program (fun p ->
        let v = Lifeguards.Oracle.taintcheck_zero_false_negatives ~cap:3_000 p in
        v.sound);
    Testutil.qtest ~count:60 "zero false negatives (relaxed model)"
      arb_tc_program (fun p ->
        let v =
          Lifeguards.Oracle.taintcheck_zero_false_negatives
            ~model:Memmodel.Consistency.Relaxed ~sequential:false ~cap:3_000 p
        in
        v.sound);
    Testutil.qtest ~count:80 "SC check is at least as precise as relaxed"
      arb_tc_program (fun p ->
        let epochs = Butterfly.Epochs.of_program p in
        let sc = TC.flagged_sinks (TC.run ~sequential:true epochs) in
        let rx = TC.flagged_sinks (TC.run ~sequential:false epochs) in
        List.for_all (fun s -> List.mem s rx) sc);
  ]

(* ---------- timesliced baseline ---------- *)

(* ---------- butterfly InitCheck ---------- *)

let gen_ic_instr : I.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = int_bound 3 in
  frequency
    [
      (3, map (fun x -> I.Assign_const x) addr);
      (3, map (fun a -> I.Read a) addr);
      (2, map2 (fun x a -> I.Assign_unop (x, a)) addr addr);
      (1, map (fun r -> I.Malloc { base = r; size = 2 }) addr);
      (1, map (fun r -> I.Free { base = r; size = 2 }) addr);
      (1, return I.Nop);
    ]

let gen_ic_program =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 3 in
  let thread = list_size (int_range 1 5) gen_ic_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_ic_program =
  QCheck.make ~print:Tracing.Trace_codec.encode gen_ic_program

let initcheck_tests =
  [
    Alcotest.test_case "write-then-read is clean within a thread" `Quick
      (fun () ->
        let g : Testutil.grid =
          [|
            [ [| I.Assign_const 0 |]; [| I.Read 0 |]; [| I.Assign_unop (1, 0) |] ];
            [ [| I.Nop |]; [| I.Nop |]; [| I.Nop |] ];
          |]
        in
        let r = Lifeguards.Initcheck.run (Testutil.epochs_of_grid g) in
        Alcotest.(check int) "no flags" 0 (List.length r.errors));
    Alcotest.test_case "read of never-written location flagged" `Quick
      (fun () ->
        let g : Testutil.grid =
          [| [ [| I.Read 7 |] ]; [ [| I.Nop |] ] |]
        in
        let r = Lifeguards.Initcheck.run (Testutil.epochs_of_grid g) in
        Testutil.checkb "flagged" true
          (IS.mem 7 (Lifeguards.Initcheck.flagged_addresses r)));
    Alcotest.test_case "adjacent-epoch initialization is uncertain" `Quick
      (fun () ->
        (* Thread 0 initializes in epoch 0; thread 1 reads in epoch 1: some
           ordering has the read first, so it must be flagged.  Reading two
           epochs later is safe. *)
        let g : Testutil.grid =
          [|
            [ [| I.Assign_const 5 |]; [||]; [||] ];
            [ [||]; [| I.Read 5 |]; [||] ];
            [ [||]; [||]; [| I.Read 5 |] ];
          |]
        in
        let r = Lifeguards.Initcheck.run (Testutil.epochs_of_grid g) in
        Alcotest.(check int) "exactly the adjacent read" 1
          (List.length r.errors);
        match r.errors with
        | [ e ] -> Alcotest.(check int) "in epoch 1" 1 e.Lifeguards.Initcheck.id.epoch
        | _ -> Alcotest.fail "expected one error");
    Alcotest.test_case "malloc poisons definedness" `Quick (fun () ->
        let r =
          Lifeguards.Initcheck_seq.check
            [
              I.Assign_const 0;
              I.Malloc { base = 0; size = 4 };
              I.Read 0;
            ]
        in
        Testutil.checkb "garbage read flagged" true
          (IS.mem 0 (Lifeguards.Initcheck_seq.flagged_addresses r)));
    Testutil.qtest ~count:120 "zero false negatives (InitCheck)"
      arb_ic_program (fun p ->
        let v = Lifeguards.Oracle.initcheck_zero_false_negatives ~cap:3_000 p in
        v.sound);
    Testutil.qtest ~count:50 "zero false negatives under relaxed model"
      arb_ic_program (fun p ->
        let v =
          Lifeguards.Oracle.initcheck_zero_false_negatives
            ~model:Memmodel.Consistency.Relaxed ~cap:3_000 p
        in
        v.sound);
  ]

(* ---------- ablations ---------- *)

(* Section 6.2's "Reducing False Positives" example: resolving (a <- b)
   where the wings hold (b <- r) in epoch l-1 and taint(r) in epoch l+1.
   A single-phase resolution concludes a is tainted even though that needs
   epoch l+1 to execute before epoch l-1 — impossible.  The two-phase check
   rejects it; no valid ordering taints the sink, so single-phase flags a
   false positive and two-phase does not. *)
let two_phase_scenario =
  let b = 0x10 and r = 0x20 and x = 0x30 in
  let module I = Tracing.Instr in
  Tracing.Program.of_instrs
    [
      (* t0: epoch 1 computes x := b and jumps through it *)
      [ I.Nop; I.Nop; I.Assign_unop (x, b); I.Jump_via x ];
      (* t1: epoch 0 computes b := r *)
      [ I.Assign_unop (b, r); I.Nop ];
      (* t2: epoch 2 taints r *)
      [ I.Nop; I.Nop; I.Nop; I.Nop; I.Taint_source r ];
    ]
  |> Tracing.Program.with_heartbeats ~every:2

let ablation_tests =
  [
    Alcotest.test_case "two-phase check kills the impossible path" `Quick
      (fun () ->
        let epochs = Butterfly.Epochs.of_program two_phase_scenario in
        let with_phases = TC.run ~sequential:true ~two_phase:true epochs in
        let without = TC.run ~sequential:true ~two_phase:false epochs in
        Alcotest.(check (list int)) "two-phase: clean" []
          (TC.flagged_sinks with_phases);
        Alcotest.(check (list int)) "single-phase: false positive" [ 0x30 ]
          (TC.flagged_sinks without);
        (* And indeed no valid ordering taints the sink. *)
        let v =
          Lifeguards.Oracle.taintcheck_zero_false_negatives ~cap:20_000
            two_phase_scenario
        in
        Testutil.checkb "exhaustive" true v.exhaustive;
        Testutil.checkb "still sound" true v.sound);
    Testutil.qtest ~count:60 "single-phase ablation is still sound"
      arb_tc_program (fun p ->
        let v =
          Lifeguards.Oracle.taintcheck_zero_false_negatives ~two_phase:false
            ~cap:3_000 p
        in
        v.sound);
    Alcotest.test_case "disabling isolation misses a concurrent free" `Quick
      (fun () ->
        (* The allocation is old (in the SOS); the free and a foreign read
           land in the same epoch.  The ordering "free, then read" is a
           real use-after-free, and only the isolation check can see it:
           from the reader's LSOS the address still looks allocated. *)
        let a = 0x100 in
        let g : Testutil.grid =
          [|
            [ [| I.Malloc { base = a; size = 8 } |]; [||]; [||];
              [| I.Free { base = a; size = 8 } |]; [||] ];
            [ [||]; [||]; [||]; [| I.Read a |]; [||] ];
          |]
        in
        let epochs = Testutil.epochs_of_grid g in
        let with_iso = AC.run ~isolation:true epochs in
        let without = AC.run ~isolation:false epochs in
        (* The read is concurrent with the free (same epoch, other
           thread).  The sequential order "read then free" is clean, the
           order "free then read" is an error: butterfly must flag it. *)
        Testutil.checkb "isolation flags the race" true
          (IS.mem a (AC.flagged_addresses with_iso));
        (* Without isolation the read looks allocated in the LSOS (the
           free is not yet visible): the error is silently missed. *)
        Testutil.checkb "without isolation it is missed" false
          (IS.mem a
             (List.fold_left
                (fun acc (e : AC.error) ->
                  match e.kind with
                  | AC.Unallocated_access -> IS.union acc e.addrs
                  | _ -> acc)
                IS.empty without.errors)));
  ]

(* ---------- staggered heartbeats (Figure 6) ---------- *)

let staggered_tests =
  [
    Testutil.qtest ~count:60 "zero false negatives with staggered epochs"
      arb_ac_program (fun p ->
        (* Re-heartbeat with per-thread skew: boundaries are no longer
           aligned, which is the model's normal operating condition. *)
        let p =
          Tracing.Program.with_heartbeats ~every:6
            (Tracing.Program.of_instrs
               (List.init (Tracing.Program.threads p) (fun t ->
                    Tracing.Trace.instrs (Tracing.Program.trace p t))))
          |> fun base ->
          Machine.Heartbeat.insert_staggered ~every:6 ~max_skew:2 ~seed:3
            base
        in
        let v = Lifeguards.Oracle.addrcheck_zero_false_negatives ~cap:3_000 p in
        v.sound);
  ]

let timesliced_tests =
  [
    Alcotest.test_case "serialization preserves all instructions" `Quick
      (fun () ->
        let p =
          Tracing.Program.of_instrs
            [ List.init 5 (fun _ -> I.Nop); List.init 3 (fun _ -> I.Read 0) ]
        in
        Alcotest.(check int) "count" 8
          (List.length (Lifeguards.Timesliced.serialize ~quantum:2 p)));
    Alcotest.test_case "timesliced addrcheck catches seq bugs" `Quick
      (fun () ->
        let program, bugs = Workloads.Faults.use_after_free ~threads:2 ~scale:100 ~seed:3 in
        let r = Lifeguards.Timesliced.addrcheck ~quantum:10 program in
        let flagged = ACS.flagged_addresses r in
        List.iter
          (fun (b : Workloads.Faults.injected) ->
            Testutil.checkb "bug flagged" true (IS.mem b.addr flagged))
          bugs);
  ]

let () =
  Alcotest.run "lifeguards"
    [
      ("addrcheck_seq", seq_addrcheck_tests);
      ("taintcheck_seq", seq_taintcheck_tests);
      ("addrcheck_butterfly", addrcheck_tests);
      ("taintcheck_butterfly", taintcheck_tests);
      ("timesliced", timesliced_tests);
      ("initcheck", initcheck_tests);
      ("ablations", ablation_tests);
      ("staggered", staggered_tests);
    ]
