(* Expr_set: the wildcard ("all expressions mentioning a location")
   representation is validated against direct semantic evaluation of random
   operation trees.  Probe expressions use locations beyond those seen in
   construction so wildcard coverage is tested on generic elements. *)

module E = Butterfly.Expr
module ES = Butterfly.Expr_set

let used_locs = [ 0; 1; 2 ]
let probe_locs = [ 0; 1; 2; 3; 4 ]

let all_probe_exprs =
  let unops = List.map E.unop probe_locs in
  let binops =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (E.binop a b) else None) probe_locs)
      probe_locs
  in
  unops @ binops

type tree =
  | Empty
  | Single of E.t
  | Killing of Tracing.Addr.t
  | Union of tree * tree
  | Inter of tree * tree
  | Diff of tree * tree

let rec build = function
  | Empty -> ES.empty
  | Single e -> ES.singleton e
  | Killing l -> ES.killing l
  | Union (a, b) -> ES.union (build a) (build b)
  | Inter (a, b) -> ES.inter (build a) (build b)
  | Diff (a, b) -> ES.diff (build a) (build b)

let rec sem t e =
  match t with
  | Empty -> false
  | Single e' -> E.equal e e'
  | Killing l -> E.mentions l e
  | Union (a, b) -> sem a e || sem b e
  | Inter (a, b) -> sem a e && sem b e
  | Diff (a, b) -> sem a e && not (sem b e)

let gen_tree =
  let open QCheck.Gen in
  let loc = oneofl used_locs in
  let expr =
    oneof
      [
        map E.unop loc;
        map2 E.binop loc loc;
      ]
  in
  let base =
    frequency
      [
        (1, return Empty);
        (3, map (fun e -> Single e) expr);
        (3, map (fun l -> Killing l) loc);
      ]
  in
  fix
    (fun self n ->
      if n = 0 then base
      else
        frequency
          [
            (1, base);
            (2, map2 (fun a b -> Union (a, b)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Inter (a, b)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Diff (a, b)) (self (n - 1)) (self (n - 1)));
          ])
    3

let rec tree_to_string = function
  | Empty -> "0"
  | Single e -> Format.asprintf "%a" E.pp e
  | Killing l -> Printf.sprintf "kill(%d)" l
  | Union (a, b) -> Printf.sprintf "(%s u %s)" (tree_to_string a) (tree_to_string b)
  | Inter (a, b) -> Printf.sprintf "(%s n %s)" (tree_to_string a) (tree_to_string b)
  | Diff (a, b) -> Printf.sprintf "(%s - %s)" (tree_to_string a) (tree_to_string b)

let arb = QCheck.make ~print:tree_to_string gen_tree

let prop_tests =
  [
    Testutil.qtest ~count:800 "membership matches semantics" arb (fun t ->
        let s = build t in
        List.for_all (fun e -> ES.mem e s = sem t e) all_probe_exprs);
    Testutil.qtest ~count:800 "equal is semantic" (QCheck.pair arb arb)
      (fun (ta, tb) ->
        let a = build ta and b = build tb in
        let same_sem =
          List.for_all (fun e -> sem ta e = sem tb e) all_probe_exprs
        in
        ES.equal a b = same_sem);
    Testutil.qtest ~count:500 "is_empty is semantic" arb (fun t ->
        ES.is_empty (build t)
        = List.for_all (fun e -> not (sem t e)) all_probe_exprs);
  ]

let unit_tests =
  [
    Alcotest.test_case "binop canonicalization" `Quick (fun () ->
        Testutil.checkb "commutes" true (E.equal (E.binop 2 5) (E.binop 5 2));
        Testutil.checkb "self collapses" true (E.equal (E.binop 3 3) (E.unop 3)));
    Alcotest.test_case "killing covers both operand positions" `Quick
      (fun () ->
        let k = ES.killing 1 in
        Testutil.checkb "first" true (ES.mem (E.binop 1 7) k);
        Testutil.checkb "second" true (ES.mem (E.binop 0 1) k);
        Testutil.checkb "unop" true (ES.mem (E.unop 1) k);
        Testutil.checkb "other" false (ES.mem (E.unop 2) k));
    Alcotest.test_case "wildcard intersection is the shared binop" `Quick
      (fun () ->
        let s = ES.inter (ES.killing 0) (ES.killing 1) in
        Testutil.checkb "binop01" true (ES.mem (E.binop 0 1) s);
        Testutil.checkb "unop0 out" false (ES.mem (E.unop 0) s);
        Testutil.checkb "binop02 out" false (ES.mem (E.binop 0 2) s));
    Alcotest.test_case "kill minus regenerated expr" `Quick (fun () ->
        (* Net-kill composition: (kill x) − {gen of a later instr}. *)
        let s = ES.diff (ES.killing 0) (ES.singleton (E.binop 0 1)) in
        Testutil.checkb "generic still killed" true (ES.mem (E.binop 0 2) s);
        Testutil.checkb "regenerated survives" false (ES.mem (E.binop 0 1) s));
    Alcotest.test_case "explicit and wild_locations" `Quick (fun () ->
        let s = ES.union (ES.singleton (E.unop 3)) (ES.killing 1) in
        Testutil.checkb "explicit has unop3" true
          (E.Set.mem (E.unop 3) (ES.explicit s));
        Alcotest.(check (list int)) "wild locs" [ 1 ] (ES.wild_locations s));
  ]

let () =
  Alcotest.run "expr_set" [ ("unit", unit_tests); ("properties", prop_tests) ]
