test/test_memmodel.ml: Alcotest Array List Memmodel Random Testutil Tracing
