test/test_machine.ml: Alcotest Array List Machine Testutil Tracing
