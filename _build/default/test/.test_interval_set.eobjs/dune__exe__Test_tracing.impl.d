test/test_tracing.ml: Alcotest Array Fun Gen List QCheck String Testutil Tracing
