test/test_workloads.ml: Alcotest Array Butterfly Format Lifeguards List Memmodel Option Printf QCheck Testutil Tracing Workloads
