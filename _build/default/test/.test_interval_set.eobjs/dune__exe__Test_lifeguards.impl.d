test/test_lifeguards.ml: Alcotest Array Butterfly Format Lifeguards List Machine Memmodel Printf QCheck Testutil Tracing Workloads
