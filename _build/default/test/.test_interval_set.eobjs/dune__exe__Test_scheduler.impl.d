test/test_scheduler.ml: Alcotest Array Butterfly Format List Printf QCheck Random Testutil Tracing
