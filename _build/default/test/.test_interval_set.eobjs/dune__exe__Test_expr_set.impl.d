test/test_expr_set.ml: Alcotest Butterfly Format List Printf QCheck Testutil Tracing
