test/test_dataflow.ml: Alcotest Array Butterfly List Memmodel Printf Testutil Tracing
