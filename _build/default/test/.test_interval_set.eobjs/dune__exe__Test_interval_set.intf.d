test/test_interval_set.mli:
