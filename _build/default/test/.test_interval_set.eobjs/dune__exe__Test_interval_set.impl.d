test/test_interval_set.ml: Alcotest Array Butterfly Format List QCheck Testutil
