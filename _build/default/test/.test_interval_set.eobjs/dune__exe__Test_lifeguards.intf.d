test/test_lifeguards.mli:
