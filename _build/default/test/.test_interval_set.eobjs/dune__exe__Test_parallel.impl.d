test/test_parallel.ml: Alcotest Array Butterfly Format List QCheck Testutil Tracing
