test/test_expr_set.mli:
