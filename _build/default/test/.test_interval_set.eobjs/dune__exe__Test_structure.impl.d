test/test_structure.ml: Alcotest Array Butterfly List Testutil Tracing
