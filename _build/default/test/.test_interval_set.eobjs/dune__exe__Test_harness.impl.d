test/test_harness.ml: Alcotest Array Astring Format Harness List Machine Option String Testutil Workloads
