test/testutil.ml: Alcotest Array Buffer Butterfly Hashtbl List Memmodel Printf QCheck QCheck_alcotest Tracing
