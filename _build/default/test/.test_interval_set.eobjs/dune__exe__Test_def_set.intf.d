test/test_def_set.mli:
