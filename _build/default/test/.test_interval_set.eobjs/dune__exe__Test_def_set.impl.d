test/test_def_set.ml: Alcotest Butterfly Format List Printf QCheck Testutil Tracing
