(* The butterfly dataflow engine cross-validated against exhaustively
   enumerated valid orderings:

   - Lemma 5.1: d ∈ GEN_l implies some valid ordering of epochs [0..l] ends
     with d live; d ∈ KILL_l implies none does.
   - Lemma 5.2 (SOS invariant): d ∈ SOS_l iff some valid ordering of epochs
     [0..l-2] ends with d live — tested as an exact equivalence.
   - IN soundness (May): every definition live at the body's entry along any
     valid prefix is contained in IN_{l,t}.
   - Duals for reaching expressions (Must): SOS_l only contains expressions
     available under every ordering; IN_{l,t} only contains expressions
     available at block entry along every valid prefix. *)

module RD = Butterfly.Reaching_definitions
module RE = Butterfly.Reaching_expressions
module DS = Butterfly.Def_set
module ES = Butterfly.Expr_set
module Def = Butterfly.Definition
module VO = Memmodel.Valid_ordering

let cap = 40_000

(* Explicit definitions of a wildcard-free Def_set. *)
let defs_of_set s =
  List.concat_map
    (fun loc ->
      match DS.sites_of_loc loc s with
      | `None -> []
      | `Sites sites ->
        List.map (fun site -> Def.make ~loc ~site) (Def.Site_set.elements sites)
      | `All_except _ -> failwith "unexpected cofinite portion")
    (DS.locations s)

(* All valid orderings of the first [n] epochs of a grid, or None if the
   enumeration hits the cap. *)
let orderings ?model g n =
  let g' = Testutil.grid_prefix g n in
  let vo = Testutil.vo_of_grid ?model g' in
  let os, exhaustive = VO.enumerate ~cap vo in
  if exhaustive then Some (g', os) else None

let num_epochs (g : Testutil.grid) =
  Array.fold_left (fun m bs -> max m (List.length bs)) 0 g

let arb2 = Testutil.arb_grid ~n_addrs:3 ~max_threads:2 ~max_epochs:3 ~max_block:2 ()
let arb3 = Testutil.arb_grid ~n_addrs:3 ~max_threads:3 ~max_epochs:3 ~max_block:1 ()

(* ---------- Reaching definitions ---------- *)

let rd_result g = RD.run (Testutil.epochs_of_grid g)

let lemma51_gen g =
  let r = rd_result g in
  let ok = ref true in
  Array.iteri
    (fun l (s : RD.Analysis.epoch_summary) ->
      match orderings g (l + 1) with
      | None -> ()
      | Some (g', os) ->
        List.iter
          (fun d ->
            let witnessed =
              List.exists
                (fun o -> List.exists (Def.equal d) (Testutil.live_defs g' o))
                os
            in
            if not witnessed then ok := false)
          (defs_of_set s.gen_l))
    r.epoch_summaries;
  !ok

let lemma51_kill ?model g =
  let r = rd_result g in
  let ok = ref true in
  Array.iteri
    (fun l (s : RD.Analysis.epoch_summary) ->
      match orderings ?model g (l + 1) with
      | None -> ()
      | Some (g', os) ->
        List.iter
          (fun o ->
            List.iter
              (fun d -> if DS.mem d s.kill_l then ok := false)
              (Testutil.live_defs g' o))
          os)
    r.epoch_summaries;
  !ok

let lemma52_sos g =
  let r = rd_result g in
  let l_max = num_epochs g + 1 in
  let ok = ref true in
  for l = 2 to l_max do
    match orderings g (l - 1) with
    | None -> ()
    | Some (g', os) ->
      let reachable =
        List.fold_left
          (fun acc o ->
            List.fold_left (fun acc d -> d :: acc) acc (Testutil.live_defs g' o))
          [] os
        |> List.sort_uniq Def.compare
      in
      let sos = r.sos.(l) in
      (* Exact equivalence: SOS_l = union over orderings of live defs. *)
      List.iter (fun d -> if not (DS.mem d sos) then ok := false) reachable;
      List.iter
        (fun d ->
          if not (List.exists (Def.equal d) reachable) then ok := false)
        (defs_of_set sos)
  done;
  !ok

(* Flat index of the first instruction of block (l,t) in thread t. *)
let block_start (g : Testutil.grid) l t =
  let rec go acc k = function
    | [] -> None
    | b :: rest ->
      if k = l then if Array.length b = 0 then None else Some acc
      else go (acc + Array.length b) (k + 1) rest
  in
  go 0 0 g.(t)

let prefix_before_step (o : Memmodel.Ordering.t) tid index =
  let rec go acc = function
    | [] -> None
    | (s : Memmodel.Ordering.step) :: rest ->
      if s.tid = tid && s.index = index then Some (List.rev acc)
      else go (s :: acc) rest
  in
  go [] o

let rd_in_sound g =
  let r = rd_result g in
  let epochs = Testutil.epochs_of_grid g in
  let ok = ref true in
  for l = 0 to Butterfly.Epochs.num_epochs epochs - 1 do
    for t = 0 to Butterfly.Epochs.threads epochs - 1 do
      match block_start g l t with
      | None -> ()
      | Some start -> (
        match orderings g (min (num_epochs g) (l + 2)) with
        | None -> ()
        | Some (g', os) ->
          let in_set = RD.Analysis.block_in r ~epoch:l ~tid:t in
          List.iter
            (fun o ->
              match prefix_before_step o t start with
              | None -> ()
              | Some prefix ->
                List.iter
                  (fun d -> if not (DS.mem d in_set) then ok := false)
                  (Testutil.live_defs g' prefix))
            os)
    done
  done;
  !ok

(* ---------- Reaching expressions ---------- *)

let re_result g = RE.run (Testutil.epochs_of_grid g)

let re_sos_sound ?model g =
  (* e ∈ SOS_l ⟹ available at the end of every ordering of epochs 0..l-2. *)
  let r = re_result g in
  let l_max = num_epochs g + 1 in
  let ok = ref true in
  for l = 2 to l_max do
    match orderings ?model g (l - 1) with
    | None -> ()
    | Some (g', os) ->
      Butterfly.Expr.Set.iter
        (fun e ->
          List.iter
            (fun o ->
              if not (Butterfly.Expr.Set.mem e (Testutil.avail_exprs g' o)) then
                ok := false)
            os)
        (ES.explicit r.sos.(l))
  done;
  !ok

let re_sos_exact g =
  (* Converse: available under every ordering ⟹ in SOS. *)
  let r = re_result g in
  let l_max = num_epochs g + 1 in
  let ok = ref true in
  for l = 2 to l_max do
    match orderings g (l - 1) with
    | None -> ()
    | Some (g', os) ->
      if os <> [] then (
        let inter_avail =
          List.fold_left
            (fun acc o ->
              Butterfly.Expr.Set.inter acc (Testutil.avail_exprs g' o))
            (Testutil.avail_exprs g' (List.hd os))
            (List.tl os)
        in
        Butterfly.Expr.Set.iter
          (fun e -> if not (ES.mem e r.sos.(l)) then ok := false)
          inter_avail)
  done;
  !ok

let re_in_sound g =
  let r = re_result g in
  let epochs = Testutil.epochs_of_grid g in
  let ok = ref true in
  for l = 0 to Butterfly.Epochs.num_epochs epochs - 1 do
    for t = 0 to Butterfly.Epochs.threads epochs - 1 do
      match block_start g l t with
      | None -> ()
      | Some start -> (
        match orderings g (min (num_epochs g) (l + 2)) with
        | None -> ()
        | Some (g', os) ->
          let in_set = RE.Analysis.block_in r ~epoch:l ~tid:t in
          List.iter
            (fun o ->
              match prefix_before_step o t start with
              | None -> ()
              | Some prefix ->
                let avail = Testutil.avail_exprs g' prefix in
                Butterfly.Expr.Set.iter
                  (fun e ->
                    if ES.mem e in_set && not (Butterfly.Expr.Set.mem e avail)
                    then ok := false)
                  (ES.explicit in_set))
            os)
    done
  done;
  !ok

(* ---------- Hand-built scenarios ---------- *)

module I = Tracing.Instr

let single_thread_is_sequential () =
  (* With one thread there is exactly one valid ordering; the SOS must equal
     the sequential live-def set of the epoch prefix. *)
  let g : Testutil.grid =
    [|
      [
        [| I.Assign_const 0; I.Assign_const 1 |];
        [| I.Assign_const 0 |];
        [| I.Assign_const 2; I.Assign_const 1 |];
        [| I.Nop |];
      ];
    |]
  in
  let r = rd_result g in
  for l = 2 to 5 do
    match orderings g (l - 1) with
    | None -> Alcotest.fail "enumeration capped unexpectedly"
    | Some (g', os) ->
      Alcotest.(check int) "unique ordering" 1 (List.length os);
      let live = Testutil.live_defs g' (List.hd os) in
      let sos_defs = defs_of_set r.sos.(l) in
      Alcotest.(check int)
        (Printf.sprintf "SOS_%d size" l)
        (List.length live) (List.length sos_defs);
      List.iter
        (fun d -> Testutil.checkb "live in SOS" true (DS.mem d r.sos.(l)))
        live
  done

let figure8_kill_side_in () =
  (* Reaching expressions, Figure 8: block (l,2) kills a-b by writing b; a
     wing block in another thread also kills it.  KILL-SIDE-IN for (l,2)
     must contain the expression. *)
  let a = 0 and b = 1 and t1 = 10 and t2 = 11 in
  let g : Testutil.grid =
    [|
      (* thread 0: kills a-b in epoch 1 by writing a *)
      [ [| I.Nop |]; [| I.Assign_const a |]; [| I.Nop |] ];
      (* thread 1: computes a-b in epoch 0, then irrelevant *)
      [ [| I.Assign_binop (t1, a, b) |]; [| I.Nop |]; [| I.Nop |] ];
      (* thread 2: kills a-b in epoch 1 by writing b *)
      [ [| I.Nop |]; [| I.Assign_binop (t2, t2, t2) ; I.Assign_const b |]; [| I.Nop |] ];
    |]
  in
  let r = re_result g in
  let wings =
    Butterfly.Epochs.wings r.epochs ~epoch:1 ~tid:2
    |> List.map (fun (blk : Butterfly.Block.t) ->
           r.block_summaries.(blk.epoch).(blk.tid))
  in
  let ksi = RE.Analysis.side_in ~wings in
  Testutil.checkb "wings kill a-b" true (ES.mem (Butterfly.Expr.binop a b) ksi);
  (* And IN for block (1,2) must not contain a-b. *)
  let in_set = RE.Analysis.block_in r ~epoch:1 ~tid:2 in
  Testutil.checkb "a-b not in IN" false (ES.mem (Butterfly.Expr.binop a b) in_set)

let resurrection_clause () =
  (* LSOS (May): the head kills d, but another thread re-generates the same
     location in epoch l-2, which may interleave after the head; the
     location must still be possibly-defined in the LSOS. *)
  let x = 0 in
  let g : Testutil.grid =
    [|
      (* thread 0: defines x in epoch 0; head (epoch 1) redefines x *)
      [ [| I.Assign_const x |]; [| I.Assign_const x |]; [| I.Nop |] ];
      (* thread 1: also defines x in epoch 0 *)
      [ [| I.Assign_const x |]; [| I.Nop |]; [| I.Nop |] ];
    |]
  in
  let r = rd_result g in
  (* Body block (2,0): its head (1,0) kills all other defs of x, but thread
     1's epoch-0 definition can interleave after the head. *)
  let head = r.block_summaries.(1).(0) in
  let lsos =
    RD.Analysis.lsos ~sos:r.sos.(2) ~head ~two_back_row:r.block_summaries.(0)
      ~tid:0
  in
  let d_other =
    Def.make ~loc:x ~site:(Butterfly.Instr_id.make ~epoch:0 ~tid:1 ~index:0)
  in
  Testutil.checkb "other thread's def survives the head kill" true
    (DS.mem d_other lsos)

(* Section 4.4: the analyses remain sound when each thread's instructions
   may reorder subject only to data dependences and per-location coherence
   — the universal ("all orderings") claims are checked against the larger
   relaxed ordering set. *)
let rd_sos_sound_relaxed g =
  let r = rd_result g in
  let l_max = num_epochs g + 1 in
  let ok = ref true in
  for l = 2 to l_max do
    match orderings ~model:Memmodel.Consistency.Relaxed g (l - 1) with
    | None -> ()
    | Some (g', os) ->
      (* Every definition live under some relaxed ordering is in the SOS. *)
      List.iter
        (fun o ->
          List.iter
            (fun d -> if not (DS.mem d r.sos.(l)) then ok := false)
            (Testutil.live_defs g' o))
        os
  done;
  !ok

let prop_tests =
  [
    Testutil.qtest ~count:60 "lemma 5.1 GEN_l witnessed (2 threads)" arb2 lemma51_gen;
    Testutil.qtest ~count:40 "lemma 5.1 GEN_l witnessed (3 threads)" arb3 lemma51_gen;
    Testutil.qtest ~count:60 "lemma 5.1 KILL_l universal (2 threads)" arb2 lemma51_kill;
    Testutil.qtest ~count:40 "lemma 5.1 KILL_l universal (3 threads)" arb3 lemma51_kill;
    Testutil.qtest ~count:60 "lemma 5.2 SOS exact (2 threads)" arb2 lemma52_sos;
    Testutil.qtest ~count:40 "lemma 5.2 SOS exact (3 threads)" arb3 lemma52_sos;
    Testutil.qtest ~count:40 "IN sound for reaching definitions" arb2 rd_in_sound;
    Testutil.qtest ~count:60 "SOS sound for reaching expressions" arb2 re_sos_sound;
    Testutil.qtest ~count:60 "SOS exact for reaching expressions" arb2 re_sos_exact;
    Testutil.qtest ~count:40 "IN sound for reaching expressions" arb2 re_in_sound;
    Testutil.qtest ~count:50 "KILL_l holds under relaxed intra-thread order"
      arb2 (fun g -> lemma51_kill ~model:Memmodel.Consistency.Relaxed g);
    Testutil.qtest ~count:50 "KILL_l holds under TSO"
      arb2 (fun g -> lemma51_kill ~model:Memmodel.Consistency.Tso g);
    Testutil.qtest ~count:50 "RD SOS sound under relaxed orderings" arb2
      rd_sos_sound_relaxed;
    Testutil.qtest ~count:50 "RE SOS sound under relaxed orderings" arb2
      (fun g -> re_sos_sound ~model:Memmodel.Consistency.Relaxed g);
  ]

let unit_tests =
  [
    Alcotest.test_case "single thread reduces to sequential" `Quick
      single_thread_is_sequential;
    Alcotest.test_case "figure 8: KILL-SIDE-IN" `Quick figure8_kill_side_in;
    Alcotest.test_case "LSOS resurrection clause" `Quick resurrection_clause;
  ]

let () =
  Alcotest.run "dataflow"
    [ ("scenarios", unit_tests); ("properties", prop_tests) ]
