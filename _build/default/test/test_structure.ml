(* Butterfly structure: epochs, blocks, butterfly geometry (Figure 7) and
   the strictly-before relation. *)

module E = Butterfly.Epochs
module B = Butterfly.Block
module Id = Butterfly.Instr_id
module I = Tracing.Instr

let grid_3x2 : Testutil.grid =
  (* 2 threads, 3 epochs, 2 instrs per block. *)
  [|
    [ [| I.Nop; I.Nop |]; [| I.Nop; I.Nop |]; [| I.Nop; I.Nop |] ];
    [ [| I.Nop; I.Nop |]; [| I.Nop; I.Nop |]; [| I.Nop; I.Nop |] ];
  |]

let structure_tests =
  [
    Alcotest.test_case "grid dimensions" `Quick (fun () ->
        let e = E.of_blocks grid_3x2 in
        Alcotest.(check int) "threads" 2 (E.threads e);
        Alcotest.(check int) "epochs" 3 (E.num_epochs e);
        Alcotest.(check int) "instrs" 12 (E.instr_count e));
    Alcotest.test_case "ragged threads are padded" `Quick (fun () ->
        let g : Testutil.grid =
          [| [ [| I.Nop |]; [| I.Nop |] ]; [ [| I.Nop |] ] |]
        in
        let e = E.of_blocks g in
        Alcotest.(check int) "epochs" 2 (E.num_epochs e);
        Testutil.checkb "padding empty" true
          (B.is_empty (E.block e ~epoch:1 ~tid:1)));
    Alcotest.test_case "out-of-range blocks are empty" `Quick (fun () ->
        let e = E.of_blocks grid_3x2 in
        Testutil.checkb "negative" true (B.is_empty (E.block e ~epoch:(-1) ~tid:0));
        Testutil.checkb "beyond" true (B.is_empty (E.block e ~epoch:99 ~tid:0)));
    Alcotest.test_case "head and tail" `Quick (fun () ->
        let e = E.of_blocks grid_3x2 in
        let h = E.head e ~epoch:1 ~tid:0 in
        Alcotest.(check int) "head epoch" 0 h.B.epoch;
        Alcotest.(check int) "head tid" 0 h.B.tid;
        let t = E.tail e ~epoch:1 ~tid:0 in
        Alcotest.(check int) "tail epoch" 2 t.B.epoch);
    Alcotest.test_case "wings of a middle block" `Quick (fun () ->
        let e = E.of_blocks grid_3x2 in
        let ws = E.wings e ~epoch:1 ~tid:0 in
        (* 3 epochs x 1 other thread. *)
        Alcotest.(check int) "count" 3 (List.length ws);
        List.iter
          (fun (w : B.t) ->
            Testutil.checkb "other thread" true (w.B.tid <> 0);
            Testutil.checkb "adjacent epoch" true (abs (w.B.epoch - 1) <= 1))
          ws);
    Alcotest.test_case "wings at the boundary include empty blocks" `Quick
      (fun () ->
        let e = E.of_blocks grid_3x2 in
        let ws = E.wings e ~epoch:0 ~tid:1 in
        Alcotest.(check int) "count" 3 (List.length ws);
        let empty = List.filter B.is_empty ws in
        Alcotest.(check int) "epoch -1 is empty" 1 (List.length empty));
    Alcotest.test_case "three threads have six wing blocks" `Quick (fun () ->
        let g : Testutil.grid =
          Array.make 3 [ [| I.Nop |]; [| I.Nop |]; [| I.Nop |] ]
        in
        let e = E.of_blocks g in
        Alcotest.(check int) "count" 6 (List.length (E.wings e ~epoch:1 ~tid:1)));
    Alcotest.test_case "block ids" `Quick (fun () ->
        let e = E.of_blocks grid_3x2 in
        let b = E.block e ~epoch:2 ~tid:1 in
        let id = B.id b 1 in
        Alcotest.(check int) "epoch" 2 id.Id.epoch;
        Alcotest.(check int) "tid" 1 id.Id.tid;
        Alcotest.(check int) "index" 1 id.Id.index);
    Alcotest.test_case "of_program splits at heartbeats" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs
            [ List.init 5 (fun _ -> I.Nop); List.init 3 (fun _ -> I.Nop) ]
          |> Tracing.Program.with_heartbeats ~every:2
        in
        let e = E.of_program p in
        Alcotest.(check int) "threads" 2 (E.threads e);
        Alcotest.(check int) "epochs" 3 (E.num_epochs e);
        Alcotest.(check int) "instrs preserved" 8 (E.instr_count e));
  ]

let id_tests =
  [
    Alcotest.test_case "strictly_before epoch gap" `Quick (fun () ->
        let a = Id.make ~epoch:0 ~tid:0 ~index:5 in
        let b = Id.make ~epoch:2 ~tid:1 ~index:0 in
        Testutil.checkb "gap 2" true (Id.strictly_before ~sequential:false a b);
        Testutil.checkb "not symmetric" false
          (Id.strictly_before ~sequential:false b a));
    Alcotest.test_case "strictly_before same thread needs SC" `Quick (fun () ->
        let a = Id.make ~epoch:1 ~tid:0 ~index:0 in
        let b = Id.make ~epoch:1 ~tid:0 ~index:1 in
        Testutil.checkb "sc" true (Id.strictly_before ~sequential:true a b);
        Testutil.checkb "relaxed" false (Id.strictly_before ~sequential:false a b));
    Alcotest.test_case "potentially_concurrent" `Quick (fun () ->
        let a = Id.make ~epoch:1 ~tid:0 ~index:0 in
        Testutil.checkb "adjacent other thread" true
          (Id.potentially_concurrent a (Id.make ~epoch:2 ~tid:1 ~index:0));
        Testutil.checkb "same thread" false
          (Id.potentially_concurrent a (Id.make ~epoch:1 ~tid:0 ~index:1));
        Testutil.checkb "distant epoch" false
          (Id.potentially_concurrent a (Id.make ~epoch:3 ~tid:1 ~index:0)));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        let a = Id.make ~epoch:0 ~tid:1 ~index:9 in
        let b = Id.make ~epoch:1 ~tid:0 ~index:0 in
        Testutil.checkb "epoch dominates" true (Id.compare a b < 0));
  ]

let () =
  Alcotest.run "structure"
    [ ("epochs", structure_tests); ("instr_id", id_tests) ]
