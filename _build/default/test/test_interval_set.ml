(* Interval_set: unit tests plus qcheck equivalence with a reference
   bitset implementation over the universe [0, 64). *)

module I = Butterfly.Interval_set

let universe = 64

(* Reference: bool array. *)
module Ref = struct
  type t = bool array [@@warning "-34"]

  let of_iset (s : I.t) =
    Array.init universe (fun x -> I.mem x s)

  let binop f a b = Array.init universe (fun x -> f a.(x) b.(x))
  let union = binop ( || )
  let inter = binop ( && )
  let diff = binop (fun x y -> x && not y)
  let equal = ( = )
end

(* A random interval-set built from a list of signed ranges. *)
let gen_ops =
  QCheck.Gen.(
    list_size (int_bound 8)
      (triple (int_bound (universe - 1)) (int_bound 16) bool))

let build ops =
  List.fold_left
    (fun s (lo, len, add) ->
      if add then I.add_range lo (min universe (lo + len)) s
      else I.remove_range lo (min universe (lo + len)) s)
    I.empty ops

let arb =
  QCheck.make
    ~print:(fun ops ->
      Format.asprintf "%a" I.pp (build ops))
    gen_ops

let arb2 = QCheck.pair arb arb

let canonical (s : I.t) =
  (* Intervals sorted, disjoint, non-adjacent, non-empty. *)
  let rec ok = function
    | [] | [ _ ] -> true
    | (lo1, hi1) :: ((lo2, _) :: _ as rest) ->
      lo1 < hi1 && hi1 < lo2 && ok rest
  in
  (match I.intervals s with [ (lo, hi) ] -> lo < hi | l -> ok l)

let unit_tests =
  [
    Alcotest.test_case "empty" `Quick (fun () ->
        Testutil.checkb "is_empty" true (I.is_empty I.empty);
        Testutil.checkb "mem" false (I.mem 3 I.empty));
    Alcotest.test_case "range basics" `Quick (fun () ->
        let s = I.range 10 20 in
        Testutil.checkb "mem lo" true (I.mem 10 s);
        Testutil.checkb "mem hi-1" true (I.mem 19 s);
        Testutil.checkb "mem hi" false (I.mem 20 s);
        Alcotest.(check int) "cardinal" 10 (I.cardinal s));
    Alcotest.test_case "adjacent ranges merge" `Quick (fun () ->
        let s = I.union (I.range 0 5) (I.range 5 10) in
        Alcotest.(check int) "one interval" 1 (I.interval_count s);
        Testutil.checkb "equal" true (I.equal s (I.range 0 10)));
    Alcotest.test_case "remove splits" `Quick (fun () ->
        let s = I.remove_range 3 5 (I.range 0 10) in
        Alcotest.(check int) "two intervals" 2 (I.interval_count s);
        Testutil.checkb "left" true (I.mem 2 s);
        Testutil.checkb "gone" false (I.mem 4 s);
        Testutil.checkb "right" true (I.mem 5 s));
    Alcotest.test_case "empty range is empty" `Quick (fun () ->
        Testutil.checkb "hi<=lo" true (I.is_empty (I.range 5 5));
        Testutil.checkb "hi<lo" true (I.is_empty (I.range 5 2)));
    Alcotest.test_case "of_intervals normalizes" `Quick (fun () ->
        let s = I.of_intervals [ (5, 8); (0, 6); (10, 10); (8, 9) ] in
        Testutil.checkb "merged" true (I.equal s (I.range 0 9)));
    Alcotest.test_case "choose" `Quick (fun () ->
        Alcotest.(check (option int)) "min" (Some 3)
          (I.choose (I.of_intervals [ (7, 9); (3, 4) ]));
        Alcotest.(check (option int)) "none" None (I.choose I.empty));
    Alcotest.test_case "elements" `Quick (fun () ->
        Alcotest.(check (list int)) "elems" [ 1; 2; 5 ]
          (I.elements (I.of_intervals [ (1, 3); (5, 6) ])));
    Alcotest.test_case "subset/disjoint" `Quick (fun () ->
        Testutil.checkb "subset" true (I.subset (I.range 2 4) (I.range 0 10));
        Testutil.checkb "not subset" false (I.subset (I.range 2 12) (I.range 0 10));
        Testutil.checkb "disjoint" true (I.disjoint (I.range 0 5) (I.range 5 9));
        Testutil.checkb "not disjoint" false (I.disjoint (I.range 0 6) (I.range 5 9)));
  ]

let prop_tests =
  [
    Testutil.qtest "build matches reference" arb (fun ops ->
        let s = build ops in
        let r =
          List.fold_left
            (fun r (lo, len, add) ->
              Array.mapi
                (fun x v ->
                  if x >= lo && x < min universe (lo + len) then add else v)
                r)
            (Array.make universe false)
            ops
        in
        Ref.equal (Ref.of_iset s) r);
    Testutil.qtest "canonical form" arb (fun ops -> canonical (build ops));
    Testutil.qtest "union matches reference" arb2 (fun (a, b) ->
        let sa = build a and sb = build b in
        Ref.equal
          (Ref.of_iset (I.union sa sb))
          (Ref.union (Ref.of_iset sa) (Ref.of_iset sb)));
    Testutil.qtest "inter matches reference" arb2 (fun (a, b) ->
        let sa = build a and sb = build b in
        Ref.equal
          (Ref.of_iset (I.inter sa sb))
          (Ref.inter (Ref.of_iset sa) (Ref.of_iset sb)));
    Testutil.qtest "diff matches reference" arb2 (fun (a, b) ->
        let sa = build a and sb = build b in
        Ref.equal
          (Ref.of_iset (I.diff sa sb))
          (Ref.diff (Ref.of_iset sa) (Ref.of_iset sb)));
    Testutil.qtest "union canonical" arb2 (fun (a, b) ->
        canonical (I.union (build a) (build b)));
    Testutil.qtest "diff canonical" arb2 (fun (a, b) ->
        canonical (I.diff (build a) (build b)));
    Testutil.qtest "inter canonical" arb2 (fun (a, b) ->
        canonical (I.inter (build a) (build b)));
    Testutil.qtest "equal is semantic" arb2 (fun (a, b) ->
        let sa = build a and sb = build b in
        I.equal sa sb = Ref.equal (Ref.of_iset sa) (Ref.of_iset sb));
    Testutil.qtest "cardinal matches" arb (fun ops ->
        let s = build ops in
        I.cardinal s
        = Array.fold_left (fun n v -> if v then n + 1 else n) 0 (Ref.of_iset s));
  ]

let () =
  Alcotest.run "interval_set"
    [ ("unit", unit_tests); ("properties", prop_tests) ]
