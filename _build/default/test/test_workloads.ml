(* Workload generators: scale fidelity, profile differentiation, and the
   key invariant that each kernel's canonical interleaving is race-free
   (so every butterfly finding on it is a measurable false positive). *)

module W = Workloads.Workload

(* Kernels append fixed warm-up/quiesce padding around the scaled compute
   phase, and stop at whole-iteration granularity; bound accordingly. *)
let scale = 4000

let small ~threads profile =
  profile.W.generate ~threads ~scale ~seed:42

let instr_count bundle tid =
  Tracing.Trace.instr_count
    (Tracing.Program.trace (W.Bundle.program bundle) tid)

let mem_ratio bundle =
  let p = W.Bundle.program bundle in
  float_of_int (Tracing.Program.total_memory_events p)
  /. float_of_int (Tracing.Program.total_instrs p)

let per_profile_tests =
  List.concat_map
    (fun (profile : W.profile) ->
      [
        Alcotest.test_case (profile.name ^ ": scale respected") `Quick
          (fun () ->
            let b = small ~threads:4 profile in
            for t = 0 to 3 do
              let n = instr_count b t in
              Testutil.checkb
                (Printf.sprintf "thread %d count %d in [scale, 3*scale+12k)" t n)
                true
                (n >= scale && n < (3 * scale) + 12_000)
            done);
        Alcotest.test_case (profile.name ^ ": canonical order is clean")
          `Quick (fun () ->
            let b = small ~threads:4 profile in
            let r = Lifeguards.Addrcheck_seq.check (W.Bundle.canonical b) in
            Alcotest.(check int) "no true errors" 0 (List.length r.errors));
        Alcotest.test_case (profile.name ^ ": deterministic for a seed")
          `Quick (fun () ->
            let b1 = small ~threads:2 profile in
            let b2 = small ~threads:2 profile in
            Testutil.checkb "same canonical" true
              (W.Bundle.canonical b1 = W.Bundle.canonical b2));
      ])
    Workloads.Registry.all

let differentiation_tests =
  [
    Alcotest.test_case "registry is complete" `Quick (fun () ->
        Alcotest.(check (list string)) "names"
          [ "barnes"; "fft"; "fmm"; "ocean"; "blackscholes"; "lu" ]
          Workloads.Registry.names);
    Alcotest.test_case "find" `Quick (fun () ->
        Testutil.checkb "ocean found" true
          (Workloads.Registry.find "ocean" <> None);
        Testutil.checkb "absent" true (Workloads.Registry.find "x264" = None));
    Alcotest.test_case "profiles differ in memory density" `Quick (fun () ->
        let ratio name =
          mem_ratio (small ~threads:4 (Option.get (Workloads.Registry.find name)))
        in
        (* blackscholes is access-dominated; fmm is compute-dominated. *)
        Testutil.checkb "blackscholes > fmm" true
          (ratio "blackscholes" > ratio "fmm" +. 0.1));
    Alcotest.test_case "ocean has the most allocation churn" `Quick (fun () ->
        let churn name =
          let b = small ~threads:4 (Option.get (Workloads.Registry.find name)) in
          List.length
            (List.filter
               (fun i ->
                 match Tracing.Instr.alloc_effect i with
                 | `Alloc _ | `Free _ -> true
                 | `None -> false)
               (W.Bundle.canonical b))
        in
        Testutil.checkb "ocean > fft" true (churn "ocean" > churn "fft");
        Testutil.checkb "ocean > blackscholes" true
          (churn "ocean" > churn "blackscholes"));
  ]

let synthetic_tests =
  [
    Alcotest.test_case "imbalance shortens later threads" `Quick (fun () ->
        let b =
          Workloads.Synthetic.generate
            ~knobs:{ Workloads.Synthetic.default with imbalance = 0.8 }
            ~threads:4 ~scale:1000 ~seed:1 ()
        in
        Testutil.checkb "t0 > t3" true (instr_count b 0 > instr_count b 3));
    Testutil.qtest ~count:25 "synthetic canonical order is clean"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
      (fun seed ->
        let b =
          Workloads.Synthetic.generate
            ~knobs:
              {
                Workloads.Synthetic.default with
                sharing = 0.3;
                churn = 0.5;
              }
            ~threads:3 ~scale:300 ~seed ()
        in
        (Lifeguards.Addrcheck_seq.check (W.Bundle.canonical b)).errors = []);
  ]

let fault_tests =
  [
    Alcotest.test_case "injected bugs are real on the canonical order" `Quick
      (fun () ->
        (* Faults must be true errors, not merely butterfly findings. *)
        List.iter
          (fun (name, make) ->
            let program, bugs = make ~threads:3 ~scale:200 ~seed:5 in
            ignore program;
            Testutil.checkb (name ^ " has bugs") true (bugs <> []))
          [
            ("uaf", Workloads.Faults.use_after_free);
            ("df", Workloads.Faults.double_free);
            ("ua", Workloads.Faults.unallocated_access);
          ]);
    Alcotest.test_case "sequential oracle flags injected bugs" `Quick
      (fun () ->
        let program, bugs =
          Workloads.Faults.all_kinds ~threads:3 ~scale:200 ~seed:5
        in
        (* Timeslicing is a real interleaving, so the sequential lifeguard
           must flag each injected address. *)
        let r = Lifeguards.Timesliced.addrcheck ~quantum:50 program in
        let flagged = Lifeguards.Addrcheck_seq.flagged_addresses r in
        List.iter
          (fun (b : Workloads.Faults.injected) ->
            Testutil.checkb
              (Format.asprintf "%a" Workloads.Faults.pp_bug b)
              true
              (Butterfly.Interval_set.mem b.addr flagged))
          bugs);
  ]

let exploit_tests =
  [
    Alcotest.test_case "true positives are sequentially reachable" `Quick
      (fun () ->
        List.iter
          (fun (s : Workloads.Exploit.scenario) ->
            let grid =
              Array.init (Tracing.Program.threads s.program) (fun t ->
                  Tracing.Trace.blocks (Tracing.Program.trace s.program t))
            in
            let vo = Memmodel.Valid_ordering.of_blocks grid in
            List.iter
              (fun sink ->
                let reachable =
                  Memmodel.Valid_ordering.exists ~cap:20_000 vo (fun o ->
                      let instrs =
                        Memmodel.Ordering.apply
                          (Memmodel.Valid_ordering.threads vo)
                          o
                      in
                      List.mem sink
                        (Lifeguards.Taintcheck_seq.flagged_sinks
                           (Lifeguards.Taintcheck_seq.check instrs)))
                in
                Testutil.checkb
                  (Printf.sprintf "%s: sink %x truly tainted in some ordering"
                     s.name sink)
                  true reachable)
              s.true_positives)
          (Workloads.Exploit.all ()));
    Alcotest.test_case "clean sinks are never sequentially tainted" `Quick
      (fun () ->
        List.iter
          (fun (s : Workloads.Exploit.scenario) ->
            let grid =
              Array.init (Tracing.Program.threads s.program) (fun t ->
                  Tracing.Trace.blocks (Tracing.Program.trace s.program t))
            in
            let vo = Memmodel.Valid_ordering.of_blocks grid in
            List.iter
              (fun sink ->
                let tainted_somewhere =
                  Memmodel.Valid_ordering.exists ~cap:20_000 vo (fun o ->
                      let instrs =
                        Memmodel.Ordering.apply
                          (Memmodel.Valid_ordering.threads vo)
                          o
                      in
                      List.mem sink
                        (Lifeguards.Taintcheck_seq.flagged_sinks
                           (Lifeguards.Taintcheck_seq.check instrs)))
                in
                Testutil.checkb
                  (Printf.sprintf "%s: sink %x clean in all orderings" s.name
                     sink)
                  false tainted_somewhere)
              s.clean_sinks)
          (Workloads.Exploit.all ()));
  ]

let () =
  Alcotest.run "workloads"
    [
      ("profiles", per_profile_tests);
      ("differentiation", differentiation_tests);
      ("synthetic", synthetic_tests);
      ("faults", fault_tests);
      ("exploits", exploit_tests);
    ]
