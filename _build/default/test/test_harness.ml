(* Harness: cost model, experiment pipeline, and the reproduced shapes of
   the paper's evaluation (small-scale configuration for test speed). *)

let test_config =
  { Harness.Experiment.default_config with total_scale = 12_000 }

let run name ~threads ~epoch_size =
  Harness.Experiment.run ~config:test_config
    (Option.get (Workloads.Registry.find name))
    ~threads ~epoch_size

let sane (r : Harness.Experiment.result) =
  r.seq_unmonitored_cycles > 0
  && r.timesliced > 0.0
  && r.butterfly > 0.0
  && r.parallel_unmonitored > 0.0
  && r.total_accesses > 0
  && r.flagged_events >= 0
  && r.flagged_events <= r.total_accesses

let experiment_tests =
  [
    Alcotest.test_case "results are sane across the matrix" `Slow (fun () ->
        List.iter
          (fun name ->
            List.iter
              (fun threads ->
                let r = run name ~threads ~epoch_size:256 in
                Testutil.checkb
                  (Format.asprintf "%a" Harness.Experiment.pp_result r)
                  true (sane r))
              [ 2; 4 ])
          Workloads.Registry.names);
    Alcotest.test_case "parallel unmonitored beats sequential" `Quick
      (fun () ->
        let r = run "fmm" ~threads:4 ~epoch_size:256 in
        Testutil.checkb "speedup" true (r.parallel_unmonitored < 1.0));
    Alcotest.test_case "butterfly scales with threads" `Slow (fun () ->
        let r2 = run "fmm" ~threads:2 ~epoch_size:256 in
        let r8 = run "fmm" ~threads:8 ~epoch_size:256 in
        Testutil.checkb "8 threads faster" true (r8.butterfly < r2.butterfly));
    Alcotest.test_case "timesliced does not scale with threads" `Slow
      (fun () ->
        let r2 = run "fmm" ~threads:2 ~epoch_size:256 in
        let r8 = run "fmm" ~threads:8 ~epoch_size:256 in
        (* Within a factor ~1.6 either way: flat, no parallel speedup. *)
        Testutil.checkb "flat" true
          (r8.timesliced > r2.timesliced /. 1.6
          && r8.timesliced < r2.timesliced *. 1.6));
    Alcotest.test_case "ocean: FPs grow with epoch size" `Slow (fun () ->
        let small = run "ocean" ~threads:4 ~epoch_size:64 in
        let large = run "ocean" ~threads:4 ~epoch_size:512 in
        Testutil.checkb "nonzero at small h" true (small.flagged_events > 0);
        Testutil.checkb "grows with h" true
          (large.flagged_events > small.flagged_events));
    Alcotest.test_case "ocean is the false-positive outlier" `Slow (fun () ->
        let ocean = run "ocean" ~threads:4 ~epoch_size:512 in
        List.iter
          (fun name ->
            let other = run name ~threads:4 ~epoch_size:512 in
            Testutil.checkb
              (name ^ " has fewer FPs than ocean")
              true
              (other.fp_rate_percent < ocean.fp_rate_percent /. 5.0))
          [ "barnes"; "fft"; "fmm"; "blackscholes"; "lu" ]);
    Alcotest.test_case "static-allocation benchmarks have zero FPs" `Slow
      (fun () ->
        List.iter
          (fun name ->
            let r = run name ~threads:4 ~epoch_size:512 in
            Alcotest.(check int) (name ^ " FPs") 0 r.flagged_events)
          [ "fft"; "blackscholes"; "lu"; "barnes" ]);
  ]

let render_tests =
  [
    Alcotest.test_case "table1 contains the paper's rows" `Quick (fun () ->
        let t = Harness.Table1.render () in
        List.iter
          (fun needle ->
            Testutil.checkb needle true
              (Astring.String.is_infix ~affix:needle t))
          [ "L1-D"; "Log buffer"; "BARNES"; "Parsec 2.0"; "OCEAN" ]);
    Alcotest.test_case "figure renders mention every benchmark" `Slow
      (fun () ->
        let results =
          List.map
            (fun name -> run name ~threads:2 ~epoch_size:256)
            Workloads.Registry.names
        in
        let s = Harness.Figure11.render results in
        List.iter
          (fun name ->
            Testutil.checkb name true (Astring.String.is_infix ~affix:name s))
          Workloads.Registry.names);
  ]

let format_tests =
  [
    Alcotest.test_case "table aligns columns" `Quick (fun () ->
        let t =
          Harness.Report_format.table ~header:[ "a"; "bb" ]
            [ [ "xxx"; "y" ]; [ "z" ] ]
        in
        let lines = String.split_on_char '\n' t in
        (match lines with
        | header :: sep :: _ ->
          Testutil.checkb "separator dashes" true
            (String.for_all (fun ch -> ch = '-' || ch = ' ') sep);
          Testutil.checkb "header present" true
            (Astring.String.is_infix ~affix:"bb" header)
        | _ -> Alcotest.fail "expected at least two lines"));
    Alcotest.test_case "pct formats tiny rates" `Quick (fun () ->
        Alcotest.(check string) "zero" "0" (Harness.Report_format.pct 0.0);
        Testutil.checkb "small keeps digits" true
          (Harness.Report_format.pct 0.00042 = "0.00042%"));
    Alcotest.test_case "bar is proportional" `Quick (fun () ->
        let full = Harness.Report_format.bar ~width:10 10.0 ~max:10.0 in
        let half = Harness.Report_format.bar ~width:10 5.0 ~max:10.0 in
        Alcotest.(check string) "full" "##########" full;
        Alcotest.(check string) "half" "#####     " half);
  ]

let cost_model_tests =
  [
    Alcotest.test_case "butterfly input dimensions" `Quick (fun () ->
        let profile = Option.get (Workloads.Registry.find "fft") in
        let p =
          Workloads.Workload.generate_program profile ~threads:4 ~scale:2000
            ~seed:3
          |> Machine.Heartbeat.insert ~every:128
        in
        let app =
          Machine.App_timing.per_thread_epochs Machine.Machine_config.default p
        in
        let input =
          Harness.Cost_model.butterfly_input Machine.Machine_config.default p
            ~app ~flagged:(fun _ _ -> 0)
        in
        Alcotest.(check int) "threads" 4 (Array.length input.work);
        Alcotest.(check int) "epochs" (Array.length app.(0))
          (Array.length input.work.(0));
        Array.iter
          (Array.iter (fun (w : Machine.Monitor_sim.epoch_work) ->
               Testutil.checkb "pass1 nonneg" true (w.pass1_cycles >= 0)))
          input.work);
    Alcotest.test_case "more threads, more meet work per event" `Quick
      (fun () ->
        (* The meet combines 3(T-1) wing summaries: per-epoch pass-2 cost
           grows with thread count for the same per-thread trace. *)
        let mk threads =
          let profile = Option.get (Workloads.Registry.find "ocean") in
          let p =
            Workloads.Workload.generate_program profile ~threads ~scale:2000
              ~seed:3
            |> Machine.Heartbeat.insert ~every:256
          in
          let app =
            Machine.App_timing.per_thread_epochs Machine.Machine_config.default
              p
          in
          let input =
            Harness.Cost_model.butterfly_input Machine.Machine_config.default p
              ~app ~flagged:(fun _ _ -> 0)
          in
          (* average pass-2 cycles per epoch of thread 0 *)
          let row = input.work.(0) in
          Array.fold_left (fun a w -> a + w.Machine.Monitor_sim.pass2_cycles) 0 row
          / Array.length row
        in
        Testutil.checkb "meet grows" true (mk 8 > mk 2));
  ]

let sensitivity_tests =
  [
    Alcotest.test_case "no sharing, no churn -> no false positives" `Slow
      (fun () ->
        let pts =
          Harness.Sensitivity.sharing_sweep ~config:test_config ~threads:2 ()
        in
        match pts with
        | { value = 0.0; result } :: _ when result.flagged_events > 0 ->
          (* sharing=0 still has churn: flags allowed; check the stronger
             condition on a churn sweep instead *)
          ()
        | _ -> ();
        let churn0 =
          List.hd (Harness.Sensitivity.churn_sweep ~config:test_config ~threads:2 ())
        in
        Testutil.checkb "churn-0 FPs bounded by cold start" true
          (churn0.result.flagged_events < churn0.result.total_accesses / 10));
    Alcotest.test_case "imbalance slows butterfly down" `Slow (fun () ->
        match Harness.Sensitivity.imbalance_sweep ~config:test_config ~threads:4 () with
        | first :: rest ->
          let last = List.nth rest (List.length rest - 1) in
          Testutil.checkb "monotone-ish" true
            (last.result.butterfly > first.result.butterfly)
        | [] -> Alcotest.fail "empty sweep");
    Alcotest.test_case "isolation check only adds reports" `Slow (fun () ->
        List.iter
          (fun (s : Harness.Sensitivity.isolation_split) ->
            Testutil.checkb s.benchmark true
              (s.with_isolation >= s.without_isolation))
          (Harness.Sensitivity.isolation_splits ~config:test_config ~threads:2 ()));
  ]

let () =
  Alcotest.run "harness"
    [
      ("experiment", experiment_tests);
      ("render", render_tests);
      ("format", format_tests);
      ("cost_model", cost_model_tests);
      ("sensitivity", sensitivity_tests);
    ]
