(* Memory-model substrate: intra-thread constraint generation and the
   valid-ordering enumerator. *)

module C = Memmodel.Consistency
module VO = Memmodel.Valid_ordering
module I = Tracing.Instr

let consistency_tests =
  [
    Alcotest.test_case "sequential is the program-order chain" `Quick
      (fun () ->
        let is = [| I.Nop; I.Read 1; I.Assign_const 2 |] in
        Alcotest.(check (list (pair int int)))
          "chain" [ (0, 1); (1, 2) ]
          (C.intra_thread_edges C.Sequential is));
    Alcotest.test_case "relaxed keeps only dependences" `Quick (fun () ->
        (* Two writes to different locations: unordered under Relaxed. *)
        let is = [| I.Assign_const 0; I.Assign_const 1 |] in
        Alcotest.(check (list (pair int int)))
          "independent" []
          (C.intra_thread_edges C.Relaxed is);
        (* Same location: coherence orders them. *)
        let is = [| I.Assign_const 0; I.Assign_const 0 |] in
        Alcotest.(check (list (pair int int)))
          "coherence" [ (0, 1) ]
          (C.intra_thread_edges C.Relaxed is));
    Alcotest.test_case "relaxed respects data dependences" `Quick (fun () ->
        (* x := a; b := x  — write-read dependence through x. *)
        let is = [| I.Assign_unop (1, 0); I.Assign_unop (2, 1) |] in
        Alcotest.(check (list (pair int int)))
          "raw" [ (0, 1) ]
          (C.intra_thread_edges C.Relaxed is));
    Alcotest.test_case "tso relaxes store->load only" `Quick (fun () ->
        (* store x; load y: reorderable under TSO. *)
        let is = [| I.Assign_const 0; I.Read 1 |] in
        Alcotest.(check (list (pair int int)))
          "store-load relaxed" []
          (C.intra_thread_edges C.Tso is);
        (* load y; store x: kept in order. *)
        let is = [| I.Read 1; I.Assign_const 0 |] in
        Alcotest.(check (list (pair int int)))
          "load-store ordered" [ (0, 1) ]
          (C.intra_thread_edges C.Tso is);
        (* store x; load x: same location, ordered. *)
        let is = [| I.Assign_const 0; I.Read 0 |] in
        Alcotest.(check (list (pair int int)))
          "same-loc ordered" [ (0, 1) ]
          (C.intra_thread_edges C.Tso is));
    Alcotest.test_case "malloc is a fence" `Quick (fun () ->
        let is = [| I.Malloc { base = 0; size = 4 }; I.Read 100 |] in
        Alcotest.(check (list (pair int int)))
          "fenced" [ (0, 1) ]
          (C.intra_thread_edges C.Relaxed is));
  ]

let nop_thread n = Array.make n I.Nop

let count_exn vo =
  let n, exhaustive = VO.count vo in
  Testutil.checkb "exhaustive" true exhaustive;
  n

let enumeration_tests =
  [
    Alcotest.test_case "single epoch = all interleavings" `Quick (fun () ->
        (* 2 threads x 2 instrs, no epoch constraint: C(4,2) = 6. *)
        let vo = VO.make [| nop_thread 2; nop_thread 2 |] in
        Alcotest.(check int) "count" 6 (count_exn vo));
    Alcotest.test_case "three threads" `Quick (fun () ->
        (* multinomial 6! / (2!2!2!) = 90 *)
        let vo = VO.make [| nop_thread 2; nop_thread 2; nop_thread 2 |] in
        Alcotest.(check int) "count" 90 (count_exn vo));
    Alcotest.test_case "epoch gap constrains orderings" `Quick (fun () ->
        (* Two threads, one instr per epoch, 3 epochs.  Without constraints
           C(6,3)=20 interleavings; the epoch-gap rule removes those where
           an epoch-l instruction follows an epoch-(l+2) one. *)
        let g = [| [ [| I.Nop |]; [| I.Nop |]; [| I.Nop |] ] |] in
        let g2 = Array.append g g in
        let vo = VO.of_blocks g2 in
        let n = count_exn vo in
        Testutil.checkb "fewer than unconstrained" true (n < 20);
        Testutil.checkb "more than one" true (n > 1));
    Alcotest.test_case "samples are valid" `Quick (fun () ->
        let g =
          [|
            [ [| I.Assign_const 0; I.Nop |]; [| I.Read 0 |] ];
            [ [| I.Nop |]; [| I.Assign_const 1; I.Nop |] ];
          |]
        in
        let vo = VO.of_blocks g in
        let rng = Random.State.make [| 42 |] in
        for _ = 1 to 50 do
          let o = VO.sample rng vo in
          Testutil.checkb "valid" true (VO.is_valid vo o)
        done);
    Alcotest.test_case "enumerated orderings are valid and complete" `Quick
      (fun () ->
        let g =
          [|
            [ [| I.Assign_const 0 |]; [| I.Read 0 |] ];
            [ [| I.Assign_const 1 |]; [| I.Nop |] ];
          |]
        in
        let vo = VO.of_blocks g in
        let os, exhaustive = VO.enumerate vo in
        Testutil.checkb "exhaustive" true exhaustive;
        List.iter
          (fun o ->
            Testutil.checkb "valid" true (VO.is_valid vo o);
            Testutil.checkb "complete" true
              (Memmodel.Ordering.complete (VO.threads vo) o))
          os;
        (* No duplicates. *)
        let sorted = List.sort_uniq compare os in
        Alcotest.(check int) "distinct" (List.length os) (List.length sorted));
    Alcotest.test_case "is_valid rejects bad orderings" `Quick (fun () ->
        let g = [| [ [| I.Nop |]; [| I.Nop |] ]; [ [| I.Nop |]; [| I.Nop |] ] |] in
        let vo = VO.of_blocks g in
        (* Program order violated within thread 0 (SC model). *)
        let bad =
          [ Memmodel.Ordering.step 0 1; Memmodel.Ordering.step 0 0;
            Memmodel.Ordering.step 1 0; Memmodel.Ordering.step 1 1 ]
        in
        Testutil.checkb "rejected" false (VO.is_valid vo bad);
        (* Incomplete ordering rejected. *)
        Testutil.checkb "incomplete" false
          (VO.is_valid vo [ Memmodel.Ordering.step 0 0 ]));
    Alcotest.test_case "relaxed model admits more orderings" `Quick (fun () ->
        let threads =
          [| [| I.Assign_const 0; I.Assign_const 1 |]; [| I.Read 0 |] |]
        in
        let sc = count_exn (VO.make ~model:C.Sequential threads) in
        let rx = count_exn (VO.make ~model:C.Relaxed threads) in
        Testutil.checkb "superset" true (rx > sc));
    Alcotest.test_case "strictly_before" `Quick (fun () ->
        Testutil.checkb "gap 2" true (VO.strictly_before ~epoch_a:0 ~epoch_b:2);
        Testutil.checkb "adjacent" false (VO.strictly_before ~epoch_a:0 ~epoch_b:1);
        Testutil.checkb "same" false (VO.strictly_before ~epoch_a:1 ~epoch_b:1));
    Alcotest.test_case "cap truncates and reports" `Quick (fun () ->
        let vo = VO.make [| nop_thread 4; nop_thread 4 |] in
        let n, exhaustive = VO.count ~cap:10 vo in
        Alcotest.(check int) "capped" 10 n;
        Testutil.checkb "not exhaustive" false exhaustive);
  ]

let () =
  Alcotest.run "memmodel"
    [ ("consistency", consistency_tests); ("valid_ordering", enumeration_tests) ]
