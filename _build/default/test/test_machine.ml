(* Machine substrate: caches, memory hierarchy, heartbeats, log buffer, and
   the monitoring timeline. *)

module MC = Machine.Machine_config
module I = Tracing.Instr

let tiny_cache =
  { MC.size_bytes = 512; ways = 2; line_bytes = 64; latency = 2 }

let cache_tests =
  [
    Alcotest.test_case "geometry" `Quick (fun () ->
        let c = Machine.Cache.create tiny_cache in
        (* 512 / (2 * 64) = 4 sets *)
        Alcotest.(check int) "sets" 4 (Machine.Cache.sets c));
    Alcotest.test_case "hit after miss" `Quick (fun () ->
        let c = Machine.Cache.create tiny_cache in
        Testutil.checkb "first is miss" true (Machine.Cache.access c 0x100 = `Miss);
        Testutil.checkb "second is hit" true (Machine.Cache.access c 0x100 = `Hit);
        Testutil.checkb "same line hits" true (Machine.Cache.access c 0x13f = `Hit));
    Alcotest.test_case "lru eviction" `Quick (fun () ->
        let c = Machine.Cache.create tiny_cache in
        (* Three conflicting lines in a 2-way set: set = (addr/64) mod 4. *)
        let a0 = 0 and a1 = 4 * 64 and a2 = 8 * 64 in
        ignore (Machine.Cache.access c a0);
        ignore (Machine.Cache.access c a1);
        ignore (Machine.Cache.access c a0);
        (* a1 is LRU now; a2 evicts it. *)
        ignore (Machine.Cache.access c a2);
        Testutil.checkb "a0 kept" true (Machine.Cache.probe c a0);
        Testutil.checkb "a1 evicted" false (Machine.Cache.probe c a1));
    Alcotest.test_case "stats" `Quick (fun () ->
        let c = Machine.Cache.create tiny_cache in
        ignore (Machine.Cache.access c 0);
        ignore (Machine.Cache.access c 0);
        let s = Machine.Cache.stats c in
        Alcotest.(check int) "accesses" 2 s.Machine.Cache.accesses;
        Alcotest.(check int) "misses" 1 s.Machine.Cache.misses;
        Testutil.checkb "rate" true (abs_float (Machine.Cache.miss_rate c -. 0.5) < 1e-9));
  ]

let hierarchy_tests =
  [
    Alcotest.test_case "latency ordering" `Quick (fun () ->
        let cfg = MC.default in
        let l2 = Machine.Mem_hierarchy.shared_l2 cfg in
        let h = Machine.Mem_hierarchy.create cfg ~l2 in
        let cold = Machine.Mem_hierarchy.access h 0x1000 in
        let warm = Machine.Mem_hierarchy.access h 0x1000 in
        Testutil.checkb "cold slower" true (cold > warm);
        Alcotest.(check int) "warm is L1" cfg.MC.l1d.MC.latency warm;
        Alcotest.(check int) "cold goes to memory"
          (cfg.MC.l1d.MC.latency + cfg.MC.l2.MC.latency + cfg.MC.memory_latency)
          cold);
    Alcotest.test_case "instr cycles" `Quick (fun () ->
        let cfg = MC.default in
        let l2 = Machine.Mem_hierarchy.shared_l2 cfg in
        let h = Machine.Mem_hierarchy.create cfg ~l2 in
        Alcotest.(check int) "nop" 1 (Machine.Mem_hierarchy.instr_cycles h I.Nop);
        Testutil.checkb "malloc has allocator cost" true
          (Machine.Mem_hierarchy.instr_cycles h (I.Malloc { base = 0; size = 64 })
          > 20));
  ]

let heartbeat_tests =
  [
    Alcotest.test_case "uniform insertion" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs [ List.init 10 (fun _ -> I.Nop) ]
          |> Machine.Heartbeat.insert ~every:3
        in
        Alcotest.(check (list int)) "blocks" [ 3; 3; 3; 1 ]
          (List.map Array.length (Tracing.Trace.blocks (Tracing.Program.trace p 0))));
    Alcotest.test_case "staggered boundaries stay within skew" `Quick
      (fun () ->
        let every = 10 and max_skew = 3 in
        let p =
          Tracing.Program.of_instrs
            [ List.init 100 (fun _ -> I.Nop); List.init 100 (fun _ -> I.Nop) ]
          |> Machine.Heartbeat.insert_staggered ~every ~max_skew ~seed:9
        in
        for t = 0 to 1 do
          let blocks = Tracing.Trace.blocks (Tracing.Program.trace p t) in
          let pos = ref 0 in
          List.iteri
            (fun k b ->
              pos := !pos + Array.length b;
              (* boundary k+1 nominal position: (k+1)*every *)
              if k < List.length blocks - 1 then
                Testutil.checkb "within skew" true
                  (abs (!pos - ((k + 1) * every)) <= max_skew))
            blocks;
          Alcotest.(check int) "instrs preserved" 100
            (Tracing.Trace.instr_count (Tracing.Program.trace p t))
        done);
    Alcotest.test_case "staggered rejects excessive skew" `Quick (fun () ->
        let p = Tracing.Program.of_instrs [ [ I.Nop ] ] in
        match Machine.Heartbeat.insert_staggered ~every:4 ~max_skew:2 ~seed:0 p with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let log_buffer_tests =
  [
    Alcotest.test_case "no stall under capacity" `Quick (fun () ->
        let b = Machine.Log_buffer.create ~capacity:4 in
        for now = 0 to 3 do
          Alcotest.(check int) "immediate" now (Machine.Log_buffer.produce b ~now)
        done;
        Alcotest.(check int) "no stalls" 0 (Machine.Log_buffer.stall_cycles b);
        Alcotest.(check int) "occupancy" 4 (Machine.Log_buffer.occupancy b));
    Alcotest.test_case "producer stalls when full" `Quick (fun () ->
        let b = Machine.Log_buffer.create ~capacity:2 in
        ignore (Machine.Log_buffer.produce b ~now:0);
        ignore (Machine.Log_buffer.produce b ~now:1);
        (* Consumer drains the first entry at t=10. *)
        let c0 = Machine.Log_buffer.consume b ~now:5 ~service:5 in
        Alcotest.(check int) "consume done" 10 c0;
        (* Third produce at t=2 must wait for that consume. *)
        let p2 = Machine.Log_buffer.produce b ~now:2 in
        Alcotest.(check int) "stalled to 10" 10 p2;
        Alcotest.(check int) "stall cycles" 8 (Machine.Log_buffer.stall_cycles b));
    Alcotest.test_case "consume before produce waits" `Quick (fun () ->
        let b = Machine.Log_buffer.create ~capacity:2 in
        ignore (Machine.Log_buffer.produce b ~now:7);
        let c = Machine.Log_buffer.consume b ~now:0 ~service:1 in
        Alcotest.(check int) "waits for data" 8 c);
    Alcotest.test_case "consume empty raises" `Quick (fun () ->
        let b = Machine.Log_buffer.create ~capacity:2 in
        match Machine.Log_buffer.consume b ~now:0 ~service:1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let work ~instrs ~app ~p1 ~p2 =
  { Machine.Monitor_sim.instrs; app_cycles = app; pass1_cycles = p1; pass2_cycles = p2 }

let sim_tests =
  [
    Alcotest.test_case "lifeguard-bound makespan" `Quick (fun () ->
        (* One thread, two epochs; the lifeguard is far slower than the
           application, so the makespan tracks lifeguard work. *)
        let input =
          {
            Machine.Monitor_sim.work =
              [| [| work ~instrs:100 ~app:100 ~p1:1000 ~p2:500;
                    work ~instrs:100 ~app:100 ~p1:1000 ~p2:500 |] |];
            buffer_entries = 1000;
            barrier_cycles = 0;
            epoch_fixed_cycles = 0;
          }
        in
        let r = Machine.Monitor_sim.parallel input in
        Testutil.checkb "dominated by lifeguard" true (r.makespan >= 3000));
    Alcotest.test_case "app-bound when lifeguard is fast" `Quick (fun () ->
        let input =
          {
            Machine.Monitor_sim.work =
              [| [| work ~instrs:100 ~app:5000 ~p1:10 ~p2:10;
                    work ~instrs:100 ~app:5000 ~p1:10 ~p2:10 |] |];
            buffer_entries = 1000;
            barrier_cycles = 0;
            epoch_fixed_cycles = 0;
          }
        in
        let r = Machine.Monitor_sim.parallel input in
        Testutil.checkb "close to app time" true
          (r.makespan >= 10000 && r.makespan < 11000));
    Alcotest.test_case "slow thread delays the barrier" `Quick (fun () ->
        let fast = work ~instrs:10 ~app:10 ~p1:10 ~p2:10 in
        let slow = work ~instrs:10 ~app:10 ~p1:10000 ~p2:10 in
        let balanced =
          Machine.Monitor_sim.parallel
            {
              work = [| [| fast; fast |]; [| fast; fast |] |];
              buffer_entries = 1000;
              barrier_cycles = 0;
              epoch_fixed_cycles = 0;
            }
        in
        let skewed =
          Machine.Monitor_sim.parallel
            {
              work = [| [| fast; fast |]; [| slow; fast |] |];
              buffer_entries = 1000;
              barrier_cycles = 0;
              epoch_fixed_cycles = 0;
            }
        in
        Testutil.checkb "skew hurts everyone" true
          (skewed.makespan > balanced.makespan + 9000));
    Alcotest.test_case "per-epoch fixed costs accumulate" `Quick (fun () ->
        let w = work ~instrs:10 ~app:10 ~p1:10 ~p2:10 in
        let base =
          Machine.Monitor_sim.parallel
            { work = [| [| w; w; w; w |] |]; buffer_entries = 100;
              barrier_cycles = 0; epoch_fixed_cycles = 0 }
        in
        let fixed =
          Machine.Monitor_sim.parallel
            { work = [| [| w; w; w; w |] |]; buffer_entries = 100;
              barrier_cycles = 0; epoch_fixed_cycles = 1000 }
        in
        Testutil.checkb "fixed cost visible" true
          (fixed.makespan >= base.makespan + 4000));
    Alcotest.test_case "small buffer stalls the application" `Quick (fun () ->
        let w = work ~instrs:1000 ~app:1000 ~p1:10000 ~p2:0 in
        let r =
          Machine.Monitor_sim.parallel
            { work = [| [| w; w |] |]; buffer_entries = 10;
              barrier_cycles = 0; epoch_fixed_cycles = 0 }
        in
        Testutil.checkb "stalls recorded" true (r.stall_cycles.(0) > 0));
    Alcotest.test_case "timesliced is the max of both sides" `Quick (fun () ->
        Alcotest.(check int) "lifeguard bound" 500
          (Machine.Monitor_sim.timesliced
             { app_total_cycles = 300; lifeguard_total_cycles = 500 });
        Alcotest.(check int) "app bound" 700
          (Machine.Monitor_sim.timesliced
             { app_total_cycles = 700; lifeguard_total_cycles = 500 }));
  ]

let app_timing_tests =
  [
    Alcotest.test_case "per-thread epoch costs" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs
            [ List.init 10 (fun k -> I.Read (64 * k)); List.init 6 (fun _ -> I.Nop) ]
          |> Tracing.Program.with_heartbeats ~every:4
        in
        let costs = Machine.App_timing.per_thread_epochs MC.default p in
        Alcotest.(check int) "threads" 2 (Array.length costs);
        Alcotest.(check int) "epochs padded" (Array.length costs.(0))
          (Array.length costs.(1));
        Alcotest.(check int) "t0 epoch0 instrs" 4 costs.(0).(0).Machine.App_timing.instrs;
        Testutil.checkb "reads cost more than nops" true
          (costs.(0).(0).Machine.App_timing.cycles > costs.(1).(0).Machine.App_timing.cycles));
    Alcotest.test_case "sequential vs timesliced" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs
            [ List.init 50 (fun k -> I.Read (64 * k));
              List.init 50 (fun k -> I.Read (64 * (k + 100))) ]
        in
        let seq = Machine.App_timing.sequential_cycles MC.default p in
        let ts = Machine.App_timing.timesliced_cycles ~quantum:10 MC.default p in
        Testutil.checkb "timeslicing adds switch cost" true (ts > seq));
  ]

let config_tests =
  [
    Alcotest.test_case "table 1 defaults" `Quick (fun () ->
        let c = MC.default in
        Alcotest.(check int) "log entries" 1024 (MC.log_buffer_entries c);
        let rows = MC.table1_rows c in
        Testutil.checkb "has L2 row" true (List.mem_assoc "L2" rows);
        Testutil.checkb "has log row" true (List.mem_assoc "Log buffer" rows));
  ]

let filter_tests =
  [
    Alcotest.test_case "first touch admitted, repeat filtered" `Quick
      (fun () ->
        let f = Machine.Idempotent_filter.create () in
        Testutil.checkb "first" true (Machine.Idempotent_filter.admit f (I.Read 0x100));
        Testutil.checkb "repeat" false (Machine.Idempotent_filter.admit f (I.Read 0x100));
        Testutil.checkb "same line" false (Machine.Idempotent_filter.admit f (I.Read 0x13f));
        Testutil.checkb "other line" true (Machine.Idempotent_filter.admit f (I.Read 0x140)));
    Alcotest.test_case "metadata change invalidates" `Quick (fun () ->
        let f = Machine.Idempotent_filter.create () in
        ignore (Machine.Idempotent_filter.admit f (I.Read 0x100));
        Testutil.checkb "malloc admitted" true
          (Machine.Idempotent_filter.admit f (I.Malloc { base = 0x100; size = 8 }));
        Testutil.checkb "readmitted after change" true
          (Machine.Idempotent_filter.admit f (I.Read 0x100)));
    Alcotest.test_case "flush readmits" `Quick (fun () ->
        let f = Machine.Idempotent_filter.create () in
        ignore (Machine.Idempotent_filter.admit f (I.Read 0x100));
        Machine.Idempotent_filter.flush f;
        Testutil.checkb "fresh after flush" true
          (Machine.Idempotent_filter.admit f (I.Read 0x100)));
    Alcotest.test_case "capacity eviction readmits old lines" `Quick
      (fun () ->
        let f = Machine.Idempotent_filter.create ~capacity:4 () in
        for k = 0 to 5 do
          ignore (Machine.Idempotent_filter.admit f (I.Read (64 * k)))
        done;
        (* line 0 was evicted by lines 4 and 5 *)
        Testutil.checkb "evicted line readmits" true
          (Machine.Idempotent_filter.admit f (I.Read 0));
        Testutil.checkb "recent line filtered" false
          (Machine.Idempotent_filter.admit f (I.Read (64 * 5))));
    Alcotest.test_case "non-memory instructions never admitted" `Quick
      (fun () ->
        let f = Machine.Idempotent_filter.create () in
        Testutil.checkb "nop" false (Machine.Idempotent_filter.admit f I.Nop));
    Alcotest.test_case "stats" `Quick (fun () ->
        let f = Machine.Idempotent_filter.create () in
        ignore (Machine.Idempotent_filter.admit f (I.Read 0));
        ignore (Machine.Idempotent_filter.admit f (I.Read 0));
        let adm, filt = Machine.Idempotent_filter.stats f in
        Alcotest.(check int) "admitted" 1 adm;
        Alcotest.(check int) "filtered" 1 filt);
  ]

let () =
  Alcotest.run "machine"
    [
      ("cache", cache_tests);
      ("hierarchy", hierarchy_tests);
      ("heartbeat", heartbeat_tests);
      ("log_buffer", log_buffer_tests);
      ("monitor_sim", sim_tests);
      ("app_timing", app_timing_tests);
      ("filter", filter_tests);
      ("config", config_tests);
    ]
