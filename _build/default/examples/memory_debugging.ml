(* Memory debugging with butterfly AddrCheck.

   A parallel workload is seeded with real memory bugs (use-after-free,
   double free, a wild read).  Butterfly AddrCheck — which never sees any
   inter-thread ordering information — must flag every one of them
   (Theorem 6.1), and we count how many additional reports are false
   positives from potential concurrency. *)

module IS = Butterfly.Interval_set

let () =
  let threads = 4 and scale = 2_000 and seed = 42 in
  let program, bugs = Workloads.Faults.all_kinds ~threads ~scale ~seed in
  Format.printf "injected bugs:@.";
  List.iter
    (fun b -> Format.printf "  %a@." Workloads.Faults.pp_bug b)
    bugs;

  let program = Machine.Heartbeat.insert ~every:128 program in
  let report = Lifeguards.Addrcheck.run (Butterfly.Epochs.of_program program) in
  Format.printf "@.butterfly AddrCheck: %d of %d memory events flagged@."
    report.flagged_accesses report.total_accesses;

  let flagged = Lifeguards.Addrcheck.flagged_addresses report in
  List.iter
    (fun (b : Workloads.Faults.injected) ->
      Format.printf "  bug at %a: %s@." Tracing.Addr.pp b.addr
        (if IS.mem b.addr flagged then "CAUGHT" else "MISSED (bug in tool!)"))
    bugs;

  (* Every injected address must be flagged; anything else is imprecision,
     not unsoundness. *)
  assert (
    List.for_all
      (fun (b : Workloads.Faults.injected) -> IS.mem b.addr flagged)
      bugs);

  (* Show a few of the raw error reports. *)
  Format.printf "@.first error reports:@.";
  List.iteri
    (fun k e ->
      if k < 5 then Format.printf "  %a@." Lifeguards.Addrcheck.pp_error e)
    report.errors;

  (* The same check through the timesliced baseline, for comparison: it
     sees one real interleaving, so it reports the true errors only. *)
  let seq = Lifeguards.Timesliced.addrcheck program in
  Format.printf "@.timesliced (sequential) lifeguard: %d error reports@."
    (List.length seq.errors)
