(* Relaxed memory models (Section 4.4).

   Butterfly analysis never assumes sequential consistency: it only needs
   intra-thread dependences and cache coherence.  This example enumerates
   the valid orderings of a small racy execution under three consistency
   models, shows that weaker models admit strictly more orderings, and
   verifies that butterfly AddrCheck and TaintCheck remain sound (no false
   negatives) even against the weakest model's orderings. *)

module I = Tracing.Instr
module VO = Memmodel.Valid_ordering

let count model threads =
  let n, exhaustive = VO.count (VO.make ~model threads) in
  assert exhaustive;
  n

let () =
  (* Two threads, independent stores that a relaxed machine may reorder. *)
  let threads =
    [|
      [| I.Assign_const 0x10; I.Assign_const 0x20; I.Read 0x30 |];
      [| I.Assign_const 0x30; I.Read 0x10 |];
    |]
  in
  Format.printf "valid orderings of a 5-instruction execution:@.";
  List.iter
    (fun model ->
      Format.printf "  %-10s %d orderings@."
        (Memmodel.Consistency.to_string model)
        (count model threads))
    Memmodel.Consistency.all;

  (* Soundness against the weakest model, checked by exhaustive
     enumeration: every error any sequential run could see is flagged. *)
  let program, bugs =
    Workloads.Faults.use_after_free ~threads:2 ~scale:40 ~seed:9
  in
  let program = Tracing.Program.with_heartbeats ~every:8 program in
  let verdict =
    Lifeguards.Oracle.addrcheck_zero_false_negatives
      ~model:Memmodel.Consistency.Relaxed ~cap:2_000 ~samples:300 program
  in
  Format.printf
    "@.AddrCheck vs relaxed-model orderings: %d orderings checked \
     (exhaustive=%b) -> %s@."
    verdict.orderings_checked verdict.exhaustive
    (if verdict.sound then "sound (no false negatives)" else "UNSOUND");
  assert verdict.sound;
  List.iter
    (fun b -> Format.printf "  covered bug: %a@." Workloads.Faults.pp_bug b)
    bugs;

  let scenario = Workloads.Exploit.cross_thread_chain () in
  let verdict =
    Lifeguards.Oracle.taintcheck_zero_false_negatives
      ~model:Memmodel.Consistency.Relaxed ~sequential:false ~cap:20_000
      scenario.program
  in
  Format.printf
    "TaintCheck vs relaxed-model orderings: %d orderings checked \
     (exhaustive=%b) -> %s@."
    verdict.orderings_checked verdict.exhaustive
    (if verdict.sound then "sound (no false negatives)" else "UNSOUND");
  assert verdict.sound
