examples/quickstart.ml: Array Butterfly Format Tracing
