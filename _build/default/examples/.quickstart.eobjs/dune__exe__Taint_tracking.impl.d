examples/taint_tracking.ml: Butterfly Format Lifeguards List Tracing Workloads
