examples/memory_debugging.ml: Butterfly Format Lifeguards List Machine Tracing Workloads
