examples/quickstart.mli:
