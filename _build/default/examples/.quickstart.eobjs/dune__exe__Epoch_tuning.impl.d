examples/epoch_tuning.ml: Format Harness List Option Printf Workloads
