examples/relaxed_memory.mli:
