examples/relaxed_memory.ml: Format Lifeguards List Memmodel Tracing Workloads
