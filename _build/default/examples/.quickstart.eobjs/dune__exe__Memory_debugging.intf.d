examples/memory_debugging.mli:
