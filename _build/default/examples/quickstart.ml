(* Quickstart: run a butterfly dataflow analysis over a tiny two-thread
   execution and inspect what the framework computes.

   Thread 0 writes [x] and then reads it two epochs later; thread 1
   overwrites [x] somewhere in between.  Reaching definitions tells us,
   with no inter-thread ordering information at all, which writes may
   still be visible. *)

module I = Tracing.Instr
module RD = Butterfly.Reaching_definitions

let x = 0x10
let y = 0x20

let () =
  (* Per-thread traces; a heartbeat after every 2 instructions splits them
     into uncertainty epochs. *)
  let program =
    Tracing.Program.of_instrs
      [
        [ I.Assign_const x; I.Nop; I.Nop; I.Nop; I.Assign_unop (y, x) ];
        [ I.Nop; I.Nop; I.Assign_const x; I.Nop; I.Nop ];
      ]
    |> Tracing.Program.with_heartbeats ~every:2
  in
  let epochs = Butterfly.Epochs.of_program program in
  Format.printf "execution: %a@.@." Butterfly.Epochs.pp epochs;

  (* Run the analysis, printing the per-instruction IN sets of the second
     pass (local strongly-ordered view plus wing side-in). *)
  Format.printf "second-pass IN sets (definitions possibly reaching):@.";
  let result =
    RD.run
      ~on_instr:(fun v ->
        if v.instr <> I.Nop then
          Format.printf "  %a %-14s IN = %a@." Butterfly.Instr_id.pp v.id
            (I.to_string v.instr) Butterfly.Def_set.pp v.in_before)
      epochs
  in

  (* The strongly ordered state after each epoch: definitions that some
     valid ordering leaves live. *)
  Format.printf "@.SOS per epoch:@.";
  Array.iteri
    (fun l sos -> Format.printf "  SOS_%d = %a@." l Butterfly.Def_set.pp sos)
    result.sos;

  (* Block-level queries. *)
  Format.printf "@.does a definition of x reach block (2,0)?  %b@."
    (RD.definitely_reaches_loc result ~epoch:2 ~tid:0 x);
  Format.printf "definitions reaching the end of the run: %a@."
    Butterfly.Def_set.pp result.sos.(Array.length result.sos - 1)
