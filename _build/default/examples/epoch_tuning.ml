(* The epoch-size knob (Section 8): sweep h for the OCEAN workload and
   watch the performance/accuracy trade-off the paper's Figures 12 and 13
   describe — larger epochs amortize per-epoch costs but make more events
   potentially concurrent, and OCEAN's allocation churn turns that into
   false positives that are themselves expensive to process. *)

let () =
  let config =
    { Harness.Experiment.default_config with total_scale = 32_000 }
  in
  let profile = Option.get (Workloads.Registry.find "ocean") in
  let threads = 4 in
  Format.printf
    "OCEAN, %d threads, %d total instructions: sweeping epoch size@.@."
    threads config.total_scale;
  let rows =
    List.map
      (fun h ->
        let r = Harness.Experiment.run ~config profile ~threads ~epoch_size:h in
        [
          string_of_int h;
          Printf.sprintf "%.2f" r.butterfly;
          Harness.Report_format.pct r.fp_rate_percent;
          string_of_int r.flagged_events;
          string_of_int r.app_stall_cycles;
        ])
      [ 32; 64; 128; 256; 512; 1024 ]
  in
  print_string
    (Harness.Report_format.table
       ~header:
         [ "epoch size"; "butterfly (norm.)"; "FP rate"; "FP events";
           "log-buffer stalls" ]
       rows);
  Format.printf
    "@.Small epochs pay per-epoch costs; large epochs pay false-positive \
     processing.@.The sweet spot balances the two — exactly the knob the \
     paper ends on.@."
