(* Parallel TaintCheck: the pooled driver is the sequential driver.

   The pooled mode fans pass-1 summarization over the grid and pass-2
   block evaluation per epoch (Scheduler.Epochwise), with the master
   serializing LASTCHECK/SOS commits epoch-major / thread-minor.  The
   claim under test is *structural equality of the whole report* — error
   list in order, SOS taint history, per-block statistics — not just the
   same set of flagged sinks.  On top of that, soundness (Theorem 6.2):
   butterfly errors are a superset of `Taintcheck_seq` on valid
   orderings, in particular on program order; and precision (Lemma 6.3):
   the two-phase reduction never drops an error that both the one-phase
   analysis and some valid ordering report.

   Every property goes through Testutil.qtest: CI pins QCHECK_SEED, and
   a failure prints the QCHECK_SEED=... line that replays the run. *)

module TC = Lifeguards.Taintcheck
module TC_seq = Lifeguards.Taintcheck_seq
module VO = Memmodel.Valid_ordering

let taint_gen = Testutil.gen_taint_instr ~n_addrs:3

(* Ragged taint grids: 1..max_threads threads (the 1-thread degenerate
   case included), empty blocks, threads disagreeing on epoch counts. *)
let arb_grid ?(max_threads = 4) ?(max_epochs = 4) ?(max_block = 3) () =
  Testutil.arb_grid ~n_addrs:3 ~min_threads:1 ~max_threads ~max_epochs
    ~max_block ~uneven:true ~instr_gen:taint_gen ()

let reports_equal (a : TC.report) (b : TC.report) =
  a.errors = b.errors && a.sos_tainted = b.sos_tainted
  && a.block_stats = b.block_stats

(* ------------------------------------------------------------------ *)
(* Differential battery: pooled report == sequential butterfly report.  *)

let pooled_equal ~sequential ~two_phase domains g =
  let epochs = Testutil.epochs_of_grid g in
  reports_equal
    (TC.run ~sequential ~two_phase epochs)
    (TC.run ~sequential ~two_phase ~domains epochs)

let differential_tests =
  List.map
    (fun domains ->
      Testutil.qtest ~count:130
        (Printf.sprintf "pooled report == sequential report (%d domain%s)"
           domains
           (if domains = 1 then "" else "s"))
        (arb_grid ())
        (pooled_equal ~sequential:true ~two_phase:true domains))
    [ 1; 2; 8 ]
  @ [
      Testutil.qtest ~count:60 "pooled == sequential (relaxed chase, 2 domains)"
        (arb_grid ())
        (pooled_equal ~sequential:false ~two_phase:true 2);
      Testutil.qtest ~count:60 "pooled == sequential (one-phase ablation, 2 domains)"
        (arb_grid ())
        (pooled_equal ~sequential:true ~two_phase:false 2);
      Testutil.qtest ~count:40 "pooled == sequential (8 threads, 2 domains)"
        (arb_grid ~max_threads:8 ~max_epochs:3 ~max_block:2 ())
        (pooled_equal ~sequential:true ~two_phase:true 2);
    ]

(* ------------------------------------------------------------------ *)
(* Soundness vs the sequential lifeguard (Theorem 6.2).                 *)

(* Epoch-major / thread-minor concatenation of the padded grid: a valid
   sequentially consistent ordering, so everything Taintcheck_seq flags
   on it must be flagged by the (pooled) butterfly. *)
let program_order epochs =
  let acc = ref [] in
  Butterfly.Epochs.iter_blocks
    (fun b -> Array.iter (fun i -> acc := i :: !acc) b.Butterfly.Block.instrs)
    epochs;
  List.rev !acc

let superset_of_seq domains g =
  let epochs = Testutil.epochs_of_grid g in
  let butterfly = TC.flagged_sinks (TC.run ~domains epochs) in
  let seq = TC_seq.flagged_sinks (TC_seq.check (program_order epochs)) in
  List.for_all (fun s -> List.mem s butterfly) seq

let soundness_tests =
  [
    Testutil.qtest ~count:120
      "pooled errors ⊇ Taintcheck_seq on program order (2 domains)"
      (arb_grid ()) (superset_of_seq 2);
    Testutil.qtest ~count:60
      "pooled errors ⊇ Taintcheck_seq on program order (8 domains, 8 threads)"
      (arb_grid ~max_threads:8 ~max_epochs:3 ~max_block:2 ())
      (superset_of_seq 8);
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 6.3: the two-phase reduction only rejects impossible chains.   *)

(* If the one-phase (sound, coarser) analysis flags a sink AND some valid
   ordering actually taints it, the two-phase analysis must still flag
   it.  Orderings come from Memmodel.Valid_ordering: exhaustive when the
   grid is small enough, seed-derived samples otherwise. *)
let two_phase_never_drops model g =
  let sequential =
    Memmodel.Consistency.equal model Memmodel.Consistency.Sequential
  in
  let epochs = Testutil.epochs_of_grid g in
  let two =
    TC.flagged_sinks (TC.run ~sequential ~two_phase:true ~domains:2 epochs)
  in
  let one = TC.flagged_sinks (TC.run ~sequential ~two_phase:false epochs) in
  let vo = Testutil.vo_of_grid ~model g in
  let orderings =
    match VO.enumerate ~cap:1_500 vo with
    | os, true -> os
    | _, false ->
      let rng = Random.State.make [| Testutil.qcheck_seed; 0x63 |] in
      List.init 40 (fun _ -> VO.sample rng vo)
  in
  List.for_all
    (fun o ->
      let seq = TC_seq.check (Memmodel.Ordering.apply (VO.threads vo) o) in
      List.for_all
        (fun s -> (not (List.mem s one)) || List.mem s two)
        (TC_seq.flagged_sinks seq))
    orderings

let lemma63_tests =
  List.map
    (fun model ->
      Testutil.qtest ~count:60
        (Printf.sprintf "two-phase drops no reachable error (%s orderings)"
           (Memmodel.Consistency.to_string model))
        (arb_grid ~max_threads:3 ~max_epochs:3 ~max_block:2 ())
        (two_phase_never_drops model))
    [ Memmodel.Consistency.Sequential; Memmodel.Consistency.Relaxed ]

(* ------------------------------------------------------------------ *)
(* Pool plumbing: an externally owned pool, reused across runs.         *)

let demo_grid : Testutil.grid =
  [|
    [
      [| Tracing.Instr.Taint_source 0 |];
      [| Tracing.Instr.Assign_unop (1, 0) |];
      [| Tracing.Instr.Syscall_arg 1 |];
    ];
    [
      [| Tracing.Instr.Read 0; Tracing.Instr.Jump_via 0 |];
      [| Tracing.Instr.Untaint 0 |];
      [||];
    ];
  |]

let pool_reuse () =
  let epochs = Testutil.epochs_of_grid demo_grid in
  let baseline = TC.run epochs in
  Testutil.checkb "demo grid flags something" true (baseline.errors <> []);
  Butterfly.Domain_pool.with_pool ~name:"taint-shared" ~domains:2 (fun pool ->
      let a = TC.run ~pool epochs in
      let b = TC.run ~pool ~sequential:false epochs in
      let c = TC.run ~pool epochs in
      Testutil.checkb "pooled == sequential" true (reports_equal a baseline);
      Testutil.checkb "second pooled run identical" true (reports_equal a c);
      Testutil.checkb "relaxed pooled == relaxed sequential" true
        (reports_equal b (TC.run ~sequential:false epochs)))

let oversized_domains () =
  (* ~domains above the hardware count: with_pool caps it, the report is
     still the sequential one. *)
  let epochs = Testutil.epochs_of_grid demo_grid in
  Testutil.checkb "capped pool matches" true
    (reports_equal (TC.run ~domains:64 epochs) (TC.run epochs))

let pool_tests =
  [
    Alcotest.test_case "external pool reused across runs" `Quick pool_reuse;
    Alcotest.test_case "domain count capped at hardware" `Quick
      oversized_domains;
  ]

let () =
  Alcotest.run "taintcheck_parallel"
    [
      ("differential", differential_tests);
      ("soundness", soundness_tests);
      ("lemma-6.3", lemma63_tests);
      ("pool", pool_tests);
    ]
