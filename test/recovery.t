The checkpoint/restore flags must keep two promises: a resumed run
prints exactly what an uninterrupted run prints, and every way a
snapshot can be wrong is a stable, parseable error.

Generate a small deterministic trace to work on.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 60 --seed 3 > t.trace

Checkpointing changes nothing about the report.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 > plain.out
  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 \
  >   --checkpoint-every 2 --checkpoint-out ck.snap > ckpt.out
  $ cmp plain.out ckpt.out

The happy path: resuming from the snapshot reproduces the report
byte for byte, sequentially and on the pooled driver.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --resume ck.snap > resumed.out
  $ cmp plain.out resumed.out
  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --resume ck.snap > pooled.out
  $ cmp plain.out pooled.out

Same for TaintCheck with its own snapshot (the analysis variant is
recorded in the snapshot, not on the resume command line).

  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 8 \
  >   --checkpoint-every 1 --checkpoint-out tc.snap > tc.out
  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 8 --resume tc.snap > tcr.out
  $ cmp tc.out tcr.out

RaceCheck checkpoints and resumes the same way; its snapshot carries
the sliding window rows plus the accumulated races.

  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 \
  >   --checkpoint-every 2 --checkpoint-out rc.snap > rc.out
  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 --resume rc.snap > rcr.out
  $ cmp rc.out rcr.out
  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 --domains 2 --resume rc.snap > rcp.out
  $ cmp rc.out rcp.out

A RaceCheck snapshot resumed into the wrong lifeguard is refused.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --resume rc.snap
  error: checkpoint is for racecheck, not addrcheck
  [2]

A zero (or negative) checkpoint interval is a usage error, caught at
parse time.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 \
  >   --checkpoint-every 0 --checkpoint-out x.snap
  butterfly_cli: option '--checkpoint-every': expected a positive integer
  Usage: butterfly_cli addrcheck [OPTION]… TRACE
  Try 'butterfly_cli addrcheck --help' or 'butterfly_cli --help' for more information.
  [124]

--checkpoint-every without a destination is refused.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --checkpoint-every 2
  error: --checkpoint-every requires --checkpoint-out
  [2]

Resuming from a missing file.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --resume missing.snap
  error: cannot read checkpoint missing.snap: missing.snap: No such file or directory
  [2]

Resuming an AddrCheck snapshot into the wrong lifeguard.

  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --resume ck.snap
  error: checkpoint is for addrcheck, not initcheck
  [2]

A corrupted snapshot (here: truncated) trips the CRC trailer; the
stored/computed values are deterministic because the trace is seeded.

  $ head -c 20 ck.snap > bad.snap
  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --resume bad.snap
  error: CRC mismatch: stored 92029401, computed bfaeed46
  [2]

A snapshot for a different epoch geometry (the same trace re-split
into fewer, larger epochs) is refused, not misapplied.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 32 --resume ck.snap
  error: checkpoint is ahead of the trace: 276 epochs folded, trace has 69
  [2]

Snapshots cut at sealed-epoch frontiers, so they are driver-portable:
a wavefront run checkpoints, resumes under wavefront, and its snapshot
also resumes under the sequential driver — all byte-identical.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --driver wavefront \
  >   --checkpoint-every 2 --checkpoint-out wf.snap > wf-ckpt.out
  $ cmp plain.out wf-ckpt.out
  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --driver wavefront --resume wf.snap > wf-resumed.out
  $ cmp plain.out wf-resumed.out
  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --resume wf.snap > wf-seq-resumed.out
  $ cmp plain.out wf-seq-resumed.out

The crash-recovery fuzz mode drives checkpoint + kill + resume on
every generated grid and reports like the plain battery.

  $ ../bin/butterfly_cli.exe fuzz --lifeguard initcheck --iterations 3 --crash-at random
  fuzz initcheck: 3 grids, 0 mismatches
  $ ../bin/butterfly_cli.exe fuzz --lifeguard addrcheck --iterations 2 --crash-at 1
  fuzz addrcheck: 2 grids, 0 mismatches
  $ ../bin/butterfly_cli.exe fuzz --lifeguard addrcheck --iterations 2 --crash-at 1 --driver wavefront
  fuzz addrcheck: 2 grids, 0 mismatches
