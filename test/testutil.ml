(* Shared helpers for the test suites. *)

(* One seed drives every property in a test binary.  CI pins it with
   QCHECK_SEED for reproducible runs; otherwise a fresh seed is drawn,
   and the first failing property prints the env line that replays the
   whole run. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> invalid_arg "QCHECK_SEED must be an integer")
  | None ->
    Random.self_init ();
    Random.bits ()

let seed_reported = ref false

let report_seed_once () =
  if not !seed_reported then begin
    seed_reported := true;
    Printf.eprintf "\n[testutil] reproduce with: QCHECK_SEED=%d dune runtest\n%!"
      qcheck_seed
  end

let qtest ?(count = 200) name arb prop =
  (* The wrapper fires before shrinking starts, so the seed is printed
     even if a later shrink candidate diverges (e.g. raises). *)
  let prop x =
    match prop x with
    | true -> true
    | false ->
      report_seed_once ();
      false
    | exception e ->
      report_seed_once ();
      raise e
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck.Test.make ~name ~count arb prop)

let check = Alcotest.check
let checkb name expected actual = Alcotest.check Alcotest.bool name expected actual

(* --- Grids: per-thread block lists, the raw form of an epoch grid. --- *)

type grid = Tracing.Instr.t array list array

let epochs_of_grid (g : grid) = Butterfly.Epochs.of_blocks g

let vo_of_grid ?model (g : grid) = Memmodel.Valid_ordering.of_blocks ?model g

(* Map an ordering step (tid, flat index) to the butterfly instruction id. *)
let id_of_step (g : grid) (s : Memmodel.Ordering.step) =
  let rec find epoch index = function
    | [] -> invalid_arg "id_of_step: index out of range"
    | b :: rest ->
      if index < Array.length b then
        Butterfly.Instr_id.make ~epoch ~tid:s.Memmodel.Ordering.tid ~index
      else find (epoch + 1) (index - Array.length b) rest
  in
  find 0 s.Memmodel.Ordering.index g.(s.Memmodel.Ordering.tid)

let instr_of_step (g : grid) (s : Memmodel.Ordering.step) =
  let rec find index = function
    | [] -> invalid_arg "instr_of_step: index out of range"
    | b :: rest ->
      if index < Array.length b then b.(index)
      else find (index - Array.length b) rest
  in
  find s.Memmodel.Ordering.index g.(s.Memmodel.Ordering.tid)

(* Restrict a grid to its first [n] epochs. *)
let grid_prefix (g : grid) n =
  Array.map (fun bs -> List.filteri (fun l _ -> l < n) bs) g

(* --- Sequential reference analyses over a total ordering. --- *)

(* Reaching definitions: the definitions live at the end of the ordering
   (per location, the last write wins). *)
let live_defs (g : grid) (o : Memmodel.Ordering.t) : Butterfly.Definition.t list =
  let last : (Tracing.Addr.t, Butterfly.Instr_id.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun step ->
      let instr = instr_of_step g step in
      match Tracing.Instr.writes instr with
      | Some x -> Hashtbl.replace last x (id_of_step g step)
      | None -> ())
    o;
  Hashtbl.fold
    (fun loc site acc -> Butterfly.Definition.make ~loc ~site :: acc)
    last []

(* Reaching expressions: expressions available at the end of the ordering
   (generated, and no operand overwritten since). *)
let avail_exprs (g : grid) (o : Memmodel.Ordering.t) : Butterfly.Expr.Set.t =
  List.fold_left
    (fun avail step ->
      let instr = instr_of_step g step in
      let avail =
        match Tracing.Instr.writes instr with
        | Some x ->
          Butterfly.Expr.Set.filter
            (fun e -> not (Butterfly.Expr.mentions x e))
            avail
        | None -> avail
      in
      match Butterfly.Expr.of_instr instr with
      | Some e -> Butterfly.Expr.Set.add e avail
      | None -> avail)
    Butterfly.Expr.Set.empty o

(* --- Small random instruction/grid generators for dataflow tests. --- *)

let gen_addr n_addrs = QCheck.Gen.int_bound (n_addrs - 1)

let gen_df_instr ~n_addrs : Tracing.Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = gen_addr n_addrs in
  frequency
    [
      (3, map (fun x -> Tracing.Instr.Assign_const x) addr);
      (3, map2 (fun x a -> Tracing.Instr.Assign_unop (x, a)) addr addr);
      ( 2,
        map3 (fun x a b -> Tracing.Instr.Assign_binop (x, a, b)) addr addr addr
      );
      (1, map (fun a -> Tracing.Instr.Read a) addr);
      (1, return Tracing.Instr.Nop);
    ]

(* Taint-flavoured instruction mix: every transfer-function shape
   TaintCheck distinguishes (source, sanitize, const kill, unary/binary
   inheritance) plus both sink kinds and taint-neutral noise. *)
let gen_taint_instr ~n_addrs : Tracing.Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = gen_addr n_addrs in
  frequency
    [
      (2, map (fun x -> Tracing.Instr.Taint_source x) addr);
      (2, map (fun x -> Tracing.Instr.Untaint x) addr);
      (2, map (fun x -> Tracing.Instr.Assign_const x) addr);
      (3, map2 (fun x a -> Tracing.Instr.Assign_unop (x, a)) addr addr);
      ( 2,
        map3 (fun x a b -> Tracing.Instr.Assign_binop (x, a, b)) addr addr addr
      );
      (2, map (fun x -> Tracing.Instr.Jump_via x) addr);
      (2, map (fun x -> Tracing.Instr.Syscall_arg x) addr);
      (1, map (fun a -> Tracing.Instr.Read a) addr);
      (1, return Tracing.Instr.Nop);
    ]

let gen_grid ?(n_addrs = 3) ?(min_threads = 2) ?(max_threads = 3)
    ?(max_epochs = 3) ?(max_block = 2) ?(uneven = false) ?instr_gen () :
    grid QCheck.Gen.t =
  let open QCheck.Gen in
  let instr =
    match instr_gen with Some g -> g | None -> gen_df_instr ~n_addrs
  in
  let* threads = int_range min_threads max_threads in
  let* epochs = int_range 1 max_epochs in
  let block =
    if uneven then
      (* Bias towards empty blocks: threads that heartbeat without
         executing anything stress the padding paths. *)
      frequency
        [
          (1, return [||]);
          (4, map Array.of_list (list_size (int_bound max_block) instr));
        ]
    else map Array.of_list (list_size (int_bound max_block) instr)
  in
  let thread =
    if uneven then
      (* Ragged grids: threads disagree on how many epochs they saw,
         including threads with no blocks at all.  [Epochs.of_blocks]
         pads the missing tail with empty blocks. *)
      let* mine = int_range 0 epochs in
      list_repeat mine block
    else list_repeat epochs block
  in
  map Array.of_list (list_repeat threads thread)

let arb_grid ?n_addrs ?min_threads ?max_threads ?max_epochs ?max_block ?uneven
    ?instr_gen () =
  let print (g : grid) =
    let buf = Buffer.create 256 in
    Array.iteri
      (fun t bs ->
        Buffer.add_string buf (Printf.sprintf "T%d:" t);
        List.iter
          (fun b ->
            Buffer.add_string buf " [";
            Array.iter
              (fun i ->
                Buffer.add_string buf (Tracing.Instr.to_string i);
                Buffer.add_string buf "; ")
              b;
            Buffer.add_string buf "]")
          bs;
        Buffer.add_char buf '\n')
      g;
    Buffer.contents buf
  in
  QCheck.make ~print
    (gen_grid ?n_addrs ?min_threads ?max_threads ?max_epochs ?max_block ?uneven
       ?instr_gen ())
