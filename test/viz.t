The viz subcommand renders the paper's dependence structure.  Its DOT
and JSON outputs are machine-read downstream (Graphviz, CI diffing), so
they are pinned byte-for-byte on a small hand-built grid.

A 3-epoch x 2-thread grid with distinct per-block instruction counts.

  $ cat > tiny.trace <<'TRACE'
  > threads 2
  > 0 nop
  > 0 heartbeat
  > 0 nop
  > 0 nop
  > 0 heartbeat
  > 0 nop
  > 1 nop
  > 1 heartbeat
  > 1 nop
  > 1 heartbeat
  > 1 nop
  > 1 nop
  > TRACE

The full dependence graph: SOS chain, epoch summaries into SOS, head
edges, wings, and SOS-in edges, grouped per epoch.

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --dot -
  digraph butterfly {
    rankdir=LR;
    fontname="Helvetica";
    node [fontname="Helvetica",fontsize=10];
    edge [fontname="Helvetica",fontsize=9];
    label="butterfly dependence graph — 3 epochs x 2 threads\nhead: blue solid; wing: gray dashed; SOS: green; epoch summary: gray dotted";
    labelloc=t;
    subgraph cluster_epoch_0 {
      label="epoch 0";
      color="#c3c2b7";
      sos_0 [label="SOS_0",shape=diamond,style=filled,fillcolor="#d9f2e6"];
      p1_0_0 [label="pass1 (0,0)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_0_1 [label="pass1 (0,1)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p2_0_0 [label="pass2 (0,0)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
      p2_0_1 [label="pass2 (0,1)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
    }
    subgraph cluster_epoch_1 {
      label="epoch 1";
      color="#c3c2b7";
      sos_1 [label="SOS_1",shape=diamond,style=filled,fillcolor="#d9f2e6"];
      p1_1_0 [label="pass1 (1,0)\n2 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_1_1 [label="pass1 (1,1)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p2_1_0 [label="pass2 (1,0)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
      p2_1_1 [label="pass2 (1,1)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
    }
    subgraph cluster_epoch_2 {
      label="epoch 2";
      color="#c3c2b7";
      sos_2 [label="SOS_2",shape=diamond,style=filled,fillcolor="#d9f2e6"];
      p1_2_0 [label="pass1 (2,0)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_2_1 [label="pass1 (2,1)\n2 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p2_2_0 [label="pass2 (2,0)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
      p2_2_1 [label="pass2 (2,1)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
    }
    p1_0_1 -> p2_0_0 [color="#898781",style=dashed];
    p1_1_1 -> p2_0_0 [color="#898781",style=dashed];
    sos_0 -> p2_0_0 [color="#1baf7a",penwidth=1.6];
    p1_0_0 -> p2_0_1 [color="#898781",style=dashed];
    p1_1_0 -> p2_0_1 [color="#898781",style=dashed];
    sos_0 -> p2_0_1 [color="#1baf7a",penwidth=1.6];
    sos_0 -> sos_1 [color="#1baf7a",style=bold];
    p1_0_0 -> p2_1_0 [color="#2a78d6",penwidth=1.6];
    p1_0_1 -> p2_1_0 [color="#898781",style=dashed];
    p1_1_1 -> p2_1_0 [color="#898781",style=dashed];
    p1_2_1 -> p2_1_0 [color="#898781",style=dashed];
    sos_1 -> p2_1_0 [color="#1baf7a",penwidth=1.6];
    p1_0_1 -> p2_1_1 [color="#2a78d6",penwidth=1.6];
    p1_0_0 -> p2_1_1 [color="#898781",style=dashed];
    p1_1_0 -> p2_1_1 [color="#898781",style=dashed];
    p1_2_0 -> p2_1_1 [color="#898781",style=dashed];
    sos_1 -> p2_1_1 [color="#1baf7a",penwidth=1.6];
    sos_1 -> sos_2 [color="#1baf7a",style=bold];
    p1_0_0 -> sos_2 [color="#898781",style=dotted,arrowhead=empty];
    p1_0_1 -> sos_2 [color="#898781",style=dotted,arrowhead=empty];
    p1_1_0 -> p2_2_0 [color="#2a78d6",penwidth=1.6];
    p1_1_1 -> p2_2_0 [color="#898781",style=dashed];
    p1_2_1 -> p2_2_0 [color="#898781",style=dashed];
    sos_2 -> p2_2_0 [color="#1baf7a",penwidth=1.6];
    p1_1_1 -> p2_2_1 [color="#2a78d6",penwidth=1.6];
    p1_1_0 -> p2_2_1 [color="#898781",style=dashed];
    p1_2_0 -> p2_2_1 [color="#898781",style=dashed];
    sos_2 -> p2_2_1 [color="#1baf7a",penwidth=1.6];
  }

The JSON rendering carries the same graph plus the epoch timeline.

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --graph-json -
  {"schema":"butterfly.graph/1","num_epochs":3,"threads":2,"nodes":[{"id":"sos_0","kind":"sos","epoch":0},{"id":"p1_0_0","kind":"pass1","epoch":0,"tid":0,"instrs":1},{"id":"p1_0_1","kind":"pass1","epoch":0,"tid":1,"instrs":1},{"id":"p2_0_0","kind":"pass2","epoch":0,"tid":0},{"id":"p2_0_1","kind":"pass2","epoch":0,"tid":1},{"id":"sos_1","kind":"sos","epoch":1},{"id":"p1_1_0","kind":"pass1","epoch":1,"tid":0,"instrs":2},{"id":"p1_1_1","kind":"pass1","epoch":1,"tid":1,"instrs":1},{"id":"p2_1_0","kind":"pass2","epoch":1,"tid":0},{"id":"p2_1_1","kind":"pass2","epoch":1,"tid":1},{"id":"sos_2","kind":"sos","epoch":2},{"id":"p1_2_0","kind":"pass1","epoch":2,"tid":0,"instrs":1},{"id":"p1_2_1","kind":"pass1","epoch":2,"tid":1,"instrs":2},{"id":"p2_2_0","kind":"pass2","epoch":2,"tid":0},{"id":"p2_2_1","kind":"pass2","epoch":2,"tid":1}],"edges":[{"src":"p1_0_1","dst":"p2_0_0","kind":"wing"},{"src":"p1_1_1","dst":"p2_0_0","kind":"wing"},{"src":"sos_0","dst":"p2_0_0","kind":"sos_in"},{"src":"p1_0_0","dst":"p2_0_1","kind":"wing"},{"src":"p1_1_0","dst":"p2_0_1","kind":"wing"},{"src":"sos_0","dst":"p2_0_1","kind":"sos_in"},{"src":"sos_0","dst":"sos_1","kind":"sos_chain"},{"src":"p1_0_0","dst":"p2_1_0","kind":"head"},{"src":"p1_0_1","dst":"p2_1_0","kind":"wing"},{"src":"p1_1_1","dst":"p2_1_0","kind":"wing"},{"src":"p1_2_1","dst":"p2_1_0","kind":"wing"},{"src":"sos_1","dst":"p2_1_0","kind":"sos_in"},{"src":"p1_0_1","dst":"p2_1_1","kind":"head"},{"src":"p1_0_0","dst":"p2_1_1","kind":"wing"},{"src":"p1_1_0","dst":"p2_1_1","kind":"wing"},{"src":"p1_2_0","dst":"p2_1_1","kind":"wing"},{"src":"sos_1","dst":"p2_1_1","kind":"sos_in"},{"src":"sos_1","dst":"sos_2","kind":"sos_chain"},{"src":"p1_0_0","dst":"sos_2","kind":"epoch_sum"},{"src":"p1_0_1","dst":"sos_2","kind":"epoch_sum"},{"src":"p1_1_0","dst":"p2_2_0","kind":"head"},{"src":"p1_1_1","dst":"p2_2_0","kind":"wing"},{"src":"p1_2_1","dst":"p2_2_0","kind":"wing"},{"src":"sos_2","dst":"p2_2_0","kind":"sos_in"},{"src":"p1_1_1","dst":"p2_2_1","kind":"head"},{"src":"p1_1_0","dst":"p2_2_1","kind":"wing"},{"src":"p1_2_0","dst":"p2_2_1","kind":"wing"},{"src":"sos_2","dst":"p2_2_1","kind":"sos_in"}],"timeline":[{"epoch":0,"blocks":[{"tid":0,"instrs":1},{"tid":1,"instrs":1}],"instrs":2},{"epoch":1,"blocks":[{"tid":0,"instrs":2},{"tid":1,"instrs":1}],"instrs":3},{"epoch":2,"blocks":[{"tid":0,"instrs":1},{"tid":1,"instrs":2}],"instrs":3}]}

--focus restricts to one body epoch's butterflies (the classic picture).

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --focus 1 --dot -
  digraph butterfly {
    rankdir=LR;
    fontname="Helvetica";
    node [fontname="Helvetica",fontsize=10];
    edge [fontname="Helvetica",fontsize=9];
    label="butterfly dependence graph — 3 epochs x 2 threads\nhead: blue solid; wing: gray dashed; SOS: green; epoch summary: gray dotted";
    labelloc=t;
    subgraph cluster_epoch_0 {
      label="epoch 0";
      color="#c3c2b7";
      sos_0 [label="SOS_0",shape=diamond,style=filled,fillcolor="#d9f2e6"];
      p1_0_0 [label="pass1 (0,0)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_0_1 [label="pass1 (0,1)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
    }
    subgraph cluster_epoch_1 {
      label="epoch 1";
      color="#c3c2b7";
      sos_1 [label="SOS_1",shape=diamond,style=filled,fillcolor="#d9f2e6"];
      p1_1_0 [label="pass1 (1,0)\n2 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_1_1 [label="pass1 (1,1)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p2_1_0 [label="pass2 (1,0)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
      p2_1_1 [label="pass2 (1,1)",shape=box,style="rounded,filled",fillcolor="#fdf1e6"];
    }
    subgraph cluster_epoch_2 {
      label="epoch 2";
      color="#c3c2b7";
      p1_2_0 [label="pass1 (2,0)\n1 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
      p1_2_1 [label="pass1 (2,1)\n2 instrs",shape=box,style=filled,fillcolor="#e3eefc"];
    }
    sos_0 -> sos_1 [color="#1baf7a",style=bold];
    p1_0_0 -> p2_1_0 [color="#2a78d6",penwidth=1.6];
    p1_0_1 -> p2_1_0 [color="#898781",style=dashed];
    p1_1_1 -> p2_1_0 [color="#898781",style=dashed];
    p1_2_1 -> p2_1_0 [color="#898781",style=dashed];
    sos_1 -> p2_1_0 [color="#1baf7a",penwidth=1.6];
    p1_0_1 -> p2_1_1 [color="#2a78d6",penwidth=1.6];
    p1_0_0 -> p2_1_1 [color="#898781",style=dashed];
    p1_1_0 -> p2_1_1 [color="#898781",style=dashed];
    p1_2_0 -> p2_1_1 [color="#898781",style=dashed];
    sos_1 -> p2_1_1 [color="#1baf7a",penwidth=1.6];
  }

Rendering is deterministic: two runs produce identical bytes.

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --dot a.dot --graph-json a.json
  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --dot b.dot --graph-json b.json
  $ cmp a.dot b.dot && cmp a.json b.json

Usage errors are distinct and exit 2.

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0
  error: nothing to do (pass --dot, --graph-json or --dashboard)
  [2]

  $ ../bin/butterfly_cli.exe viz --dot -
  error: --dot/--graph-json need a TRACE argument
  [2]

  $ ../bin/butterfly_cli.exe viz tiny.trace -e 0 --focus 7 --dot -
  error: --focus 7 out of range (3 epochs)
  [2]

  $ ../bin/butterfly_cli.exe viz --dashboard out.html
  error: --dashboard requires --obs EVENTS.jsonl
  [2]

A lifeguard run streams scoped events with --obs-jsonl; the dashboard is
a pure function of that file -- self-contained HTML, no scripts, no
external fetches, and byte-stable across re-renders.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 20 --seed 3 > t.trace
  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 4 --domains 2 --json --obs-jsonl ev.jsonl
  {"lifeguard":"taintcheck","checked":0,"flagged":0,"errors":[]}
  $ test -s ev.jsonl
  $ grep -c '"t_ns"' ev.jsonl > /dev/null
  $ grep -q '"scope":{"epoch":' ev.jsonl

  $ ../bin/butterfly_cli.exe viz --dashboard dash.html --obs ev.jsonl --title "viz cram"
  $ grep -c '<svg' dash.html > /dev/null
  $ grep -c '<script' dash.html
  0
  [1]
  $ grep -q 'viz cram' dash.html
  $ ../bin/butterfly_cli.exe viz --dashboard dash2.html --obs ev.jsonl --title "viz cram"
  $ cmp dash.html dash2.html

A torn tail line (crashed writer) is skipped with a warning, not fatal.

  $ printf '{"kind":"add","na' >> ev.jsonl
  $ ../bin/butterfly_cli.exe viz --dashboard torn.html --obs ev.jsonl
  warning: skipped 1 malformed event line
  $ grep -q '</html>' torn.html

--refresh embeds a meta refresh for live viewing.

  $ ../bin/butterfly_cli.exe viz --dashboard live.html --obs ev.jsonl --refresh 5 2>/dev/null
  $ grep -o '<meta http-equiv="refresh" content="5"/>' live.html
  <meta http-equiv="refresh" content="5"/>

The stats subcommand also speaks Prometheus text exposition.

  $ ../bin/butterfly_cli.exe stats t.trace -e 4 --lifeguard taintcheck --domains 2 --prometheus \
  >   | grep '^# TYPE' | sort
  # TYPE butterfly_epochs_processed counter
  # TYPE butterfly_lsos_ns histogram
  # TYPE butterfly_pass1_summarize_ns histogram
  # TYPE butterfly_pass2_block_ns histogram
  # TYPE butterfly_pass2_instrs counter
  # TYPE butterfly_side_in_meet_ns histogram
  # TYPE lifeguard_checks counter
  # TYPE lifeguard_flags counter
  # TYPE lifeguard_phase2_rechecks counter
  # TYPE lifeguard_sos_size_hwm gauge
  # TYPE pool_queue_depth histogram
  # TYPE pool_size gauge
  # TYPE pool_submit_wait_ns histogram
  # TYPE pool_task_ns histogram
  # TYPE pool_utilization gauge
  # TYPE scheduler_blocks_closed counter
  # TYPE scheduler_epoch_barriers counter
  # TYPE scheduler_epoch_fanout_ns histogram
  # TYPE scheduler_window_occupancy gauge
  # TYPE scheduler_window_occupancy_hwm gauge
