(* Streaming scheduler: the online sliding-window driver must deliver
   exactly the batch driver's per-instruction views — regardless of how
   the per-thread streams are interleaved at the input — while keeping
   only a bounded window of epochs resident. *)

module RD = Butterfly.Reaching_definitions
module RE = Butterfly.Reaching_expressions
module Sched_rd = Butterfly.Scheduler.Make (RD.Problem)
module Sched_re = Butterfly.Scheduler.Make (RE.Problem)

type view_key = {
  id : Butterfly.Instr_id.t;
  instr : string;
  lsos : string;
  in_before : string;
  sos : string;
}

let key_rd (v : RD.Analysis.instr_view) =
  {
    id = v.id;
    instr = Tracing.Instr.to_string v.instr;
    lsos = Format.asprintf "%a" Butterfly.Def_set.pp v.lsos_before;
    in_before = Format.asprintf "%a" Butterfly.Def_set.pp v.in_before;
    sos = Format.asprintf "%a" Butterfly.Def_set.pp v.sos;
  }

let key_re (v : RE.Analysis.instr_view) =
  {
    id = v.id;
    instr = Tracing.Instr.to_string v.instr;
    lsos = Format.asprintf "%a" Butterfly.Expr_set.pp v.lsos_before;
    in_before = Format.asprintf "%a" Butterfly.Expr_set.pp v.in_before;
    sos = Format.asprintf "%a" Butterfly.Expr_set.pp v.sos;
  }

let batch_views_rd program =
  let acc = ref [] in
  let r =
    RD.run
      ~on_instr:(fun v -> acc := key_rd v :: !acc)
      (Butterfly.Epochs.of_program program)
  in
  (List.rev !acc, Format.asprintf "%a" Butterfly.Def_set.pp r.sos.(Array.length r.sos - 1))


let stream_views_rd order program =
  let acc = ref [] in
  let threads = Tracing.Program.threads program in
  let s = Sched_rd.create ~threads ~on_instr:(fun v -> acc := key_rd v :: !acc) () in
  (match order with
  | `Sequential ->
    for tid = 0 to threads - 1 do
      Sched_rd.feed_trace s tid (Tracing.Program.trace program tid)
    done
  | `Round_robin ->
    let streams =
      Array.init threads (fun tid ->
          ref (Array.to_list (Tracing.Trace.events (Tracing.Program.trace program tid))))
    in
    let live = ref true in
    while !live do
      live := false;
      Array.iteri
        (fun tid stream ->
          match !stream with
          | [] -> ()
          | ev :: rest ->
            live := true;
            stream := rest;
            Sched_rd.feed s tid ev)
        streams
    done
  | `Random ->
    let rng = Random.State.make [| 0xfeed |] in
    let streams =
      Array.init threads (fun tid ->
          ref (Array.to_list (Tracing.Trace.events (Tracing.Program.trace program tid))))
    in
    let remaining () =
      Array.to_list streams
      |> List.mapi (fun tid s -> (tid, s))
      |> List.filter (fun (_, s) -> !s <> [])
    in
    let rec go () =
      match remaining () with
      | [] -> ()
      | choices ->
        let tid, stream = List.nth choices (Random.State.int rng (List.length choices)) in
        (match !stream with
        | ev :: rest ->
          stream := rest;
          Sched_rd.feed s tid ev
        | [] -> assert false);
        go ()
    in
    go ());
  Sched_rd.finish s;
  let sos = Format.asprintf "%a" Butterfly.Def_set.pp (Sched_rd.sos s) in
  (List.rev !acc, sos, Sched_rd.max_resident_epochs s)

let gen_program =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 4 in
  let thread = list_size (int_range 0 14) (Testutil.gen_df_instr ~n_addrs:3) in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_program = QCheck.make ~print:Tracing.Trace_codec.encode gen_program

let equivalence_tests =
  List.map
    (fun (name, order) ->
      Testutil.qtest ~count:150
        (Printf.sprintf "streaming == batch (%s feed)" name)
        arb_program
        (fun p ->
          let batch, batch_sos = batch_views_rd p in
          let stream, stream_sos, _ = stream_views_rd order p in
          batch = stream && batch_sos = stream_sos))
    [ ("sequential", `Sequential); ("round-robin", `Round_robin);
      ("random", `Random) ]

let re_equivalence =
  Testutil.qtest ~count:100 "streaming == batch (reaching expressions)"
    arb_program
    (fun p ->
      let acc_b = ref [] in
      ignore
        (RE.run
           ~on_instr:(fun v -> acc_b := key_re v :: !acc_b)
           (Butterfly.Epochs.of_program p));
      let acc_s = ref [] in
      let threads = Tracing.Program.threads p in
      let s =
        Sched_re.create ~threads ~on_instr:(fun v -> acc_s := key_re v :: !acc_s) ()
      in
      for tid = 0 to threads - 1 do
        Sched_re.feed_trace s tid (Tracing.Program.trace p tid)
      done;
      Sched_re.finish s;
      !acc_b = !acc_s)

let bounded_window =
  Alcotest.test_case "window stays bounded on long streams" `Quick (fun () ->
      let instrs = List.init 2_000 (fun k -> Tracing.Instr.Assign_const (k mod 5)) in
      let p =
        Tracing.Program.of_instrs [ instrs; instrs ]
        |> Tracing.Program.with_heartbeats ~every:10
      in
      let s = Sched_rd.create ~threads:2 ~on_instr:(fun _ -> ()) () in
      (* Round-robin so both threads advance together. *)
      let e0 = Tracing.Trace.events (Tracing.Program.trace p 0) in
      let e1 = Tracing.Trace.events (Tracing.Program.trace p 1) in
      for k = 0 to Array.length e0 - 1 do
        Sched_rd.feed s 0 e0.(k);
        Sched_rd.feed s 1 e1.(k)
      done;
      Sched_rd.finish s;
      Alcotest.(check int) "epochs completed" 201 (Sched_rd.epochs_completed s);
      Testutil.checkb
        (Printf.sprintf "resident window %d <= 6" (Sched_rd.max_resident_epochs s))
        true
        (Sched_rd.max_resident_epochs s <= 6))

let misuse =
  Alcotest.test_case "feed after finish raises" `Quick (fun () ->
      let s = Sched_rd.create ~threads:1 ~on_instr:(fun _ -> ()) () in
      Sched_rd.feed s 0 (Tracing.Event.Instr Tracing.Instr.Nop);
      Sched_rd.finish s;
      (match Sched_rd.feed s 0 Tracing.Event.Heartbeat with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected Invalid_argument");
      (* finish is idempotent *)
      Sched_rd.finish s)

let lagging_thread =
  Alcotest.test_case "a lagging thread stalls pass 2 but not pass 1" `Quick
    (fun () ->
      let s = Sched_rd.create ~threads:2 ~on_instr:(fun _ -> ()) () in
      (* Thread 0 races ahead by many epochs; nothing can be processed
         because thread 1's blocks are missing. *)
      for _ = 1 to 10 do
        Sched_rd.feed s 0 (Tracing.Event.Instr (Tracing.Instr.Assign_const 0));
        Sched_rd.feed s 0 Tracing.Event.Heartbeat
      done;
      Alcotest.(check int) "nothing processed" 0 (Sched_rd.epochs_completed s);
      (* Thread 1 catches up: the window drains. *)
      for _ = 1 to 10 do
        Sched_rd.feed s 1 (Tracing.Event.Instr (Tracing.Instr.Assign_const 1));
        Sched_rd.feed s 1 Tracing.Event.Heartbeat
      done;
      Testutil.checkb "processing resumed" true (Sched_rd.epochs_completed s >= 8))

(* --- Pooled streaming battery (the tentpole differential test). ---

   The pooled scheduler must deliver byte-identical view sequences and
   the same SOS history as the batch driver, for a May problem (reaching
   definitions) and a Must problem (reaching expressions), at every pool
   width — over ragged grids with empty blocks and threads that quit
   early. *)

let arb_uneven_grid =
  Testutil.arb_grid ~n_addrs:3 ~max_threads:4 ~max_epochs:4 ~max_block:3
    ~uneven:true ()

let pooled_equiv_rd domains g =
  let epochs = Testutil.epochs_of_grid g in
  let batch = ref [] in
  let br = RD.run ~on_instr:(fun v -> batch := key_rd v :: !batch) epochs in
  let stream = ref [] in
  let hist =
    Butterfly.Domain_pool.with_pool ~name:"test-rd" ~domains (fun pool ->
        let s =
          Sched_rd.run_epochs ~pool
            ~on_instr:(fun v -> stream := key_rd v :: !stream)
            epochs
        in
        Sched_rd.sos_history s)
  in
  !batch = !stream
  && Array.length hist = Array.length br.sos
  && Array.for_all2 Butterfly.Def_set.equal br.sos hist

let pooled_equiv_re domains g =
  let epochs = Testutil.epochs_of_grid g in
  let batch = ref [] in
  let br = RE.run ~on_instr:(fun v -> batch := key_re v :: !batch) epochs in
  let stream = ref [] in
  let hist =
    Butterfly.Domain_pool.with_pool ~name:"test-re" ~domains (fun pool ->
        let s =
          Sched_re.run_epochs ~pool
            ~on_instr:(fun v -> stream := key_re v :: !stream)
            epochs
        in
        Sched_re.sos_history s)
  in
  !batch = !stream
  && Array.length hist = Array.length br.sos
  && Array.for_all2 Butterfly.Expr_set.equal br.sos hist

let pooled_tests =
  List.concat_map
    (fun domains ->
      [
        Testutil.qtest ~count:180
          (Printf.sprintf "pooled == batch (May/RD, %d domains)" domains)
          arb_uneven_grid (pooled_equiv_rd domains);
        Testutil.qtest ~count:170
          (Printf.sprintf "pooled == batch (Must/RE, %d domains)" domains)
          arb_uneven_grid (pooled_equiv_re domains);
      ])
    [ 1; 2; 8 ]

let () =
  Alcotest.run "scheduler"
    [
      ("equivalence", (re_equivalence :: equivalence_tests));
      ("pooled", pooled_tests);
      ("streaming", [ bounded_window; misuse; lagging_thread ]);
    ]
