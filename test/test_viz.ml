(* lib/viz: the butterfly dependence graph must reproduce the paper's
   geometry exactly (wings via Epochs.wings, head, SOS recurrence edges),
   stay acyclic, and render deterministically; the dashboard must build a
   self-contained page (no scripts, no external fetches) from any event
   stream, including an empty one. *)

module G = Viz.Butterfly_graph

let grid_arb =
  QCheck.(pair (int_range 0 8) (int_range 1 4))

(* A concrete Epochs.t with the same geometry, to compare wings against. *)
let epochs_of ~num_epochs ~threads =
  Butterfly.Epochs.of_blocks
    (Array.init threads (fun _ ->
         List.init num_epochs (fun _ -> [| Tracing.Instr.Read 0 |])))

let acyclic_prop =
  Testutil.qtest "dependence graph is acyclic" grid_arb
    (fun (num_epochs, threads) -> G.is_acyclic (G.make ~num_epochs ~threads))

let wing_edges_prop =
  Testutil.qtest "each body has exactly its wing edges (Epochs.wings)"
    grid_arb (fun (num_epochs, threads) ->
      let g = G.make ~num_epochs ~threads in
      let epochs = epochs_of ~num_epochs ~threads in
      let ok = ref true in
      for l = 0 to num_epochs - 1 do
        for tid = 0 to threads - 1 do
          let body = G.Pass2 { epoch = l; tid } in
          let wings_in_graph =
            List.filter_map
              (fun (e : G.edge) ->
                if e.kind = G.Wing && e.dst = body then
                  match e.src with
                  | G.Pass1 { epoch; tid } -> Some (epoch, tid)
                  | _ ->
                    ok := false;
                    None
                else None)
              g.G.edges
            |> List.sort compare
          in
          (* Epochs.wings also lists out-of-grid blocks (the conceptually
             infinite grid: they read as empty and contribute nothing to
             the meet); the graph omits those empty sources. *)
          let wings_expected =
            Butterfly.Epochs.wings epochs ~epoch:l ~tid
            |> List.filter_map (fun (b : Butterfly.Block.t) ->
                   if b.epoch >= 0 && b.epoch < num_epochs then
                     Some (b.epoch, b.tid)
                   else None)
            |> List.sort compare
          in
          if wings_in_graph <> wings_expected then ok := false
        done
      done;
      !ok)

let head_sos_prop =
  Testutil.qtest "head/SOS edges match the recurrences" grid_arb
    (fun (num_epochs, threads) ->
      let g = G.make ~num_epochs ~threads in
      let count kind pred =
        List.length
          (List.filter
             (fun (e : G.edge) -> e.kind = kind && pred e)
             g.G.edges)
      in
      let any _ = true in
      (* one head edge per body except epoch 0 *)
      count G.Head any = max 0 (num_epochs - 1) * threads
      (* one sos-in per body *)
      && count G.Sos_in any = num_epochs * threads
      (* the SOS chain is a path over the epochs *)
      && count G.Sos_chain any = max 0 (num_epochs - 1)
      (* every thread of epoch l-2 feeds SOS_l *)
      && count G.Epoch_sum any = max 0 (num_epochs - 2) * threads)

let deterministic_rendering =
  Alcotest.test_case "DOT and JSON render byte-identically" `Quick (fun () ->
      let g () = G.of_epochs (epochs_of ~num_epochs:4 ~threads:3) in
      Alcotest.(check string) "dot" (G.to_dot (g ())) (G.to_dot (g ()));
      Alcotest.(check string) "json"
        (Obs.Json.to_string (G.to_json (g ())))
        (Obs.Json.to_string (G.to_json (g ())));
      (* and the JSON is parseable by our own parser *)
      match Obs.Json.of_string (Obs.Json.to_string (G.to_json (g ()))) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail ("graph JSON does not re-parse: " ^ m))

let restrict_focuses =
  Alcotest.test_case "restrict keeps only one body epoch's butterflies"
    `Quick (fun () ->
      let g = G.restrict (G.make ~num_epochs:6 ~threads:2) ~epoch:3 in
      Alcotest.(check bool) "non-empty" true (g.G.edges <> []);
      List.iter
        (fun (e : G.edge) ->
          match e.dst with
          | G.Pass2 { epoch; _ } | G.Sos { epoch } ->
            Alcotest.(check int) "edge targets the focus epoch" 3 epoch
          | G.Pass1 _ -> Alcotest.fail "pass-1 nodes have no in-edges")
        g.G.edges;
      Alcotest.(check bool) "still acyclic" true (G.is_acyclic g);
      match G.restrict (G.make ~num_epochs:6 ~threads:2) ~epoch:6 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "out-of-range focus must be rejected")

(* ------------------------------------------------------------------ *)
(* Dashboard *)

let capture_events f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.with_sink (Obs.Sink.jsonl ppf) f;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let dashboard_smoke =
  Alcotest.test_case "dashboard renders self-contained HTML from JSONL"
    `Quick (fun () ->
      let jsonl =
        capture_events (fun () ->
            let checks = Obs.Counter.make ~labels:[ ("lifeguard", "taintcheck") ] "lifeguard.checks" in
            let p2 = Obs.Counter.make "lifeguard.phase2_rechecks" in
            let sp = Obs.Histogram.make "butterfly.pass2_block.ns" in
            let util = Obs.Gauge.make "pool.utilization" in
            for l = 0 to 4 do
              Obs.Scope.with_scope ~epoch:l ~tid:0 ~phase:"pass2" (fun () ->
                  Obs.Histogram.observe sp (float_of_int (1000 * (l + 1)));
                  Obs.Counter.add checks 10;
                  Obs.Counter.add p2 l)
            done;
            Obs.Gauge.set util 0.5;
            Obs.Gauge.set util 0.9;
            Obs.Counter.incr (Obs.Counter.make "recovery.checkpoints"))
      in
      let events, bad = Viz.Dashboard.parse_events jsonl in
      Alcotest.(check int) "no malformed lines" 0 bad;
      Alcotest.(check bool) "events parsed" true (List.length events > 10);
      let html = Viz.Dashboard.render ~title:"smoke <&> test" events in
      let has affix = Astring.String.is_infix ~affix html in
      Alcotest.(check bool) "has charts" true (has "<svg");
      Alcotest.(check bool) "title escaped" true (has "smoke &lt;&amp;&gt; test");
      Alcotest.(check bool) "no scripts" false (has "<script");
      Alcotest.(check bool) "no external stylesheets" false (has "<link");
      Alcotest.(check bool) "no external images" false (has "<img");
      Alcotest.(check bool) "dark mode present" true
        (has "prefers-color-scheme: dark");
      Alcotest.(check bool) "tooltips present" true (has "<title>");
      (* deterministic: same events, same bytes *)
      Alcotest.(check string) "stable render" html
        (Viz.Dashboard.render ~title:"smoke <&> test" events);
      (* the only URL is the SVG namespace *)
      let without_ns =
        Astring.String.cuts ~sep:"http://www.w3.org/2000/svg" html
        |> String.concat ""
      in
      Alcotest.(check bool) "no network fetches" false
        (Astring.String.is_infix ~affix:"http" without_ns))

let dashboard_empty_and_torn =
  Alcotest.test_case "dashboard tolerates empty and torn streams" `Quick
    (fun () ->
      let html = Viz.Dashboard.render [] in
      Alcotest.(check bool) "empty stream renders" true
        (Astring.String.is_infix ~affix:"</html>" html);
      (* a torn last line (crashed writer) parses as one bad line *)
      let events, bad =
        Viz.Dashboard.parse_events
          "{\"kind\":\"add\",\"name\":\"x\",\"v\":1,\"t_ns\":5}\n\
           {\"kind\":\"add\",\"na"
      in
      Alcotest.(check int) "one good event" 1 (List.length events);
      Alcotest.(check int) "one torn line" 1 bad;
      let refreshed = Viz.Dashboard.render ~refresh:5 events in
      Alcotest.(check bool) "meta refresh present" true
        (Astring.String.is_infix
           ~affix:"<meta http-equiv=\"refresh\" content=\"5\"/>" refreshed))

let () =
  Alcotest.run "viz"
    [
      ( "graph",
        [
          acyclic_prop; wing_edges_prop; head_sos_prop;
          deterministic_rendering; restrict_focuses;
        ] );
      ("dashboard", [ dashboard_smoke; dashboard_empty_and_torn ]);
    ]
