(* Domain pool: the bounded worker pool both parallel drivers run on.
   The contract under test: results come back in submission order no
   matter which worker ran what, exceptions surface at [await], submit
   blocks (rather than drops) when a queue fills, and pool width never
   exceeds the hardware's recommended domain count. *)

module Pool = Butterfly.Domain_pool

let with_pool ?queue_capacity ~domains f =
  Pool.with_pool ?queue_capacity ~name:"test" ~domains f

let map_array_order =
  Alcotest.test_case "map_array preserves index order" `Quick (fun () ->
      with_pool ~domains:4 (fun pool ->
          let input = Array.init 257 (fun i -> i) in
          let out = Pool.map_array pool (fun i -> i * i) input in
          Alcotest.(check (array int))
            "squares in order"
            (Array.map (fun i -> i * i) input)
            out))

let map_array_deterministic =
  Alcotest.test_case "map_array is deterministic under timing jitter" `Quick
    (fun () ->
      (* Jittered task durations shuffle completion order; collection
         order must not move with it. *)
      let run () =
        with_pool ~domains:3 (fun pool ->
            Pool.map_array pool
              (fun i ->
                if i land 3 = 0 then Unix.sleepf 0.0005;
                i * 2)
              (Array.init 64 (fun i -> i)))
      in
      Alcotest.(check (array int)) "same output" (run ()) (run ()))

let map_array_empty =
  Alcotest.test_case "map_array on the empty array" `Quick (fun () ->
      with_pool ~domains:2 (fun pool ->
          Alcotest.(check (array int))
            "empty" [||]
            (Pool.map_array pool (fun i -> i) [||])))

let single_worker =
  Alcotest.test_case "pool of size 1 serializes but completes everything"
    `Quick (fun () ->
      with_pool ~domains:1 (fun pool ->
          Alcotest.(check int) "size" 1 (Pool.size pool);
          let input = Array.init 100 (fun i -> i) in
          Alcotest.(check (array int))
            "map_array in order"
            (Array.map (fun i -> i + 1) input)
            (Pool.map_array pool (fun i -> i + 1) input);
          (* Interleaved async/await cycles on the single worker: each
             future must resolve even though every task shares one queue. *)
          for k = 0 to 9 do
            Alcotest.(check int) "async round" (k * 3)
              (Pool.await (Pool.async pool (fun () -> k * 3)))
          done))

exception Boom of int

let exception_propagation =
  Alcotest.test_case "task exceptions surface at await" `Quick (fun () ->
      with_pool ~domains:2 (fun pool ->
          let ok = Pool.async pool (fun () -> 41 + 1) in
          let bad = Pool.async pool (fun () -> raise (Boom 7)) in
          Alcotest.(check int) "healthy future" 42 (Pool.await ok);
          (match Pool.await bad with
          | exception Boom 7 -> ()
          | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
          | _ -> Alcotest.fail "expected Boom");
          (* The pool survives a failed task. *)
          Alcotest.(check int) "still alive" 7
            (Pool.await (Pool.async pool (fun () -> 7)))))

let exception_in_map_array =
  Alcotest.test_case "map_array re-raises and leaves the pool reusable"
    `Quick (fun () ->
      with_pool ~domains:2 (fun pool ->
          (match
             Pool.map_array pool
               (fun i -> if i = 5 then raise (Boom i) else i)
               (Array.init 16 (fun i -> i))
           with
          | exception Boom 5 -> ()
          | exception e ->
            Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
          | _ -> Alcotest.fail "expected Boom");
          (* Every task of the failed batch has drained; the pool keeps
             serving both entry points afterwards. *)
          Alcotest.(check (array int))
            "pool reusable for map_array" [| 0; 2; 4 |]
            (Pool.map_array pool (fun i -> 2 * i) [| 0; 1; 2 |]);
          Alcotest.(check int) "pool reusable for async" 9
            (Pool.await (Pool.async pool (fun () -> 9)))))

let exception_on_single_worker =
  Alcotest.test_case "a failed task does not wedge a size-1 pool" `Quick
    (fun () ->
      with_pool ~domains:1 (fun pool ->
          (match Pool.await (Pool.async pool (fun () -> raise (Boom 1))) with
          | exception Boom 1 -> ()
          | exception e ->
            Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
          | _ -> Alcotest.fail "expected Boom");
          Alcotest.(check int) "still serving" 4
            (Pool.await (Pool.async pool (fun () -> 4)))))

let backpressure =
  Alcotest.test_case "submit blocks on a full queue, nothing is lost" `Quick
    (fun () ->
      (* Capacity 1 and slow tasks force every enqueue after the first
         into the backpressure path; all results must still arrive. *)
      with_pool ~queue_capacity:1 ~domains:2 (fun pool ->
          let n = 50 in
          let hits = Atomic.make 0 in
          let out =
            Pool.map_array pool
              (fun i ->
                if i land 7 = 0 then Unix.sleepf 0.001;
                Atomic.incr hits;
                i)
              (Array.init n (fun i -> i))
          in
          Alcotest.(check int) "all tasks ran" n (Atomic.get hits);
          Alcotest.(check (array int)) "in order" (Array.init n (fun i -> i)) out))

let size_capped =
  Alcotest.test_case "pool size is capped at max_domains" `Quick (fun () ->
      let cap = Pool.max_domains () in
      Alcotest.(check bool) "cap is positive" true (cap >= 1);
      with_pool ~domains:512 (fun pool ->
          Alcotest.(check bool)
            "512 requested, capped" true
            (Pool.size pool <= cap));
      match with_pool ~domains:0 (fun _ -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected Invalid_argument for 0 domains")

let shutdown_idempotent =
  Alcotest.test_case "shutdown is idempotent; submit after raises" `Quick
    (fun () ->
      let pool = Pool.create ~name:"test" ~domains:2 () in
      Alcotest.(check int) "works" 3 (Pool.await (Pool.async pool (fun () -> 3)));
      Pool.shutdown pool;
      Pool.shutdown pool;
      (match Pool.async pool (fun () -> 0) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument after shutdown");
      (* Same for the batch entry point: tasks submitted after teardown
         must be rejected, not silently dropped. *)
      (match Pool.map_array pool (fun i -> i) [| 1; 2; 3 |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument after shutdown");
      (* The empty batch submits nothing, so it is the one map_array call
         that still succeeds on a dead pool. *)
      Alcotest.(check (array int))
        "empty map_array is submission-free" [||]
        (Pool.map_array pool (fun i -> i) [||]);
      (* Futures resolved before teardown remain readable after it. *)
      let pool2 = Pool.create ~name:"test" ~domains:1 () in
      let fut = Pool.async pool2 (fun () -> 11) in
      Alcotest.(check int) "resolve before shutdown" 11 (Pool.await fut);
      Pool.shutdown pool2;
      Alcotest.(check int) "await is idempotent after teardown" 11
        (Pool.await fut))

let () =
  Alcotest.run "domain_pool"
    [
      ( "pool",
        [
          map_array_order; map_array_deterministic; map_array_empty;
          single_worker; exception_propagation; exception_in_map_array;
          exception_on_single_worker; backpressure; size_capped;
          shutdown_idempotent;
        ] );
    ]
