(* Tracing library: instruction footprints, heartbeat splitting, and codec
   round-trips. *)

module I = Tracing.Instr

let addr = 0x10

let footprint_tests =
  [
    Alcotest.test_case "reads/writes" `Quick (fun () ->
        Alcotest.(check (list int)) "binop reads" [ 1; 2 ]
          (I.reads (I.Assign_binop (0, 1, 2)));
        Alcotest.(check (list int)) "binop same-operand dedup" [ 1 ]
          (I.reads (I.Assign_binop (0, 1, 1)));
        Alcotest.(check (option int)) "write dst" (Some 0)
          (I.writes (I.Assign_binop (0, 1, 2)));
        Alcotest.(check (option int)) "read has no write" None
          (I.writes (I.Read 5)));
    Alcotest.test_case "accesses" `Quick (fun () ->
        Alcotest.(check (list int)) "dst first" [ 0; 1; 2 ]
          (I.accesses (I.Assign_binop (0, 1, 2)));
        Alcotest.(check (list int)) "jump reads target" [ 7 ]
          (I.accesses (I.Jump_via 7));
        Alcotest.(check (list int)) "malloc accesses nothing" []
          (I.accesses (I.Malloc { base = 0; size = 8 })));
    Alcotest.test_case "alloc_effect" `Quick (fun () ->
        (match I.alloc_effect (I.Malloc { base = 4; size = 8 }) with
        | `Alloc (4, 8) -> ()
        | _ -> Alcotest.fail "malloc");
        match I.alloc_effect (I.Free { base = 4; size = 8 }) with
        | `Free (4, 8) -> ()
        | _ -> Alcotest.fail "free");
    Alcotest.test_case "is_memory_event" `Quick (fun () ->
        Testutil.checkb "nop" false (I.is_memory_event I.Nop);
        Testutil.checkb "malloc" true (I.is_memory_event (I.Malloc { base = 0; size = 1 }));
        Testutil.checkb "assign" true (I.is_memory_event (I.Assign_const addr)));
    Alcotest.test_case "taint_sink" `Quick (fun () ->
        Alcotest.(check (option int)) "jump" (Some 3) (I.taint_sink (I.Jump_via 3));
        Alcotest.(check (option int)) "sysarg" (Some 4)
          (I.taint_sink (I.Syscall_arg 4));
        Alcotest.(check (option int)) "assign" None
          (I.taint_sink (I.Assign_const 3)));
  ]

let trace_tests =
  [
    Alcotest.test_case "with_heartbeats splits evenly" `Quick (fun () ->
        let t =
          Tracing.Trace.of_instrs (List.init 7 (fun _ -> I.Nop))
          |> Tracing.Trace.with_heartbeats ~every:3
        in
        let blocks = Tracing.Trace.blocks t in
        Alcotest.(check (list int)) "block sizes" [ 3; 3; 1 ]
          (List.map Array.length blocks));
    Alcotest.test_case "with_heartbeats exact multiple" `Quick (fun () ->
        let t =
          Tracing.Trace.of_instrs (List.init 6 (fun _ -> I.Nop))
          |> Tracing.Trace.with_heartbeats ~every:3
        in
        Alcotest.(check (list int)) "trailing empty block" [ 3; 3; 0 ]
          (List.map Array.length (Tracing.Trace.blocks t)));
    Alcotest.test_case "re-heartbeat strips old markers" `Quick (fun () ->
        let t =
          Tracing.Trace.of_instrs (List.init 6 (fun _ -> I.Nop))
          |> Tracing.Trace.with_heartbeats ~every:2
          |> Tracing.Trace.with_heartbeats ~every:5
        in
        Alcotest.(check (list int)) "sizes" [ 5; 1 ]
          (List.map Array.length (Tracing.Trace.blocks t)));
    Alcotest.test_case "instr_count ignores heartbeats" `Quick (fun () ->
        let t =
          Tracing.Trace.of_instrs (List.init 9 (fun _ -> I.Nop))
          |> Tracing.Trace.with_heartbeats ~every:2
        in
        Alcotest.(check int) "count" 9 (Tracing.Trace.instr_count t));
    Alcotest.test_case "memory_event_count" `Quick (fun () ->
        let t =
          Tracing.Trace.of_instrs [ I.Nop; I.Read 1; I.Assign_const 2; I.Nop ]
        in
        Alcotest.(check int) "count" 2 (Tracing.Trace.memory_event_count t));
    Alcotest.test_case "program accessors" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs [ [ I.Nop; I.Read 1 ]; [ I.Assign_const 2 ] ]
        in
        Alcotest.(check int) "threads" 2 (Tracing.Program.threads p);
        Alcotest.(check int) "total" 3 (Tracing.Program.total_instrs p));
  ]

(* Codec round-trip over random programs. *)
let gen_instr : I.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = int_bound 0xff in
  let size = int_range 1 64 in
  oneof
    [
      map (fun x -> I.Assign_const x) addr;
      map2 (fun x a -> I.Assign_unop (x, a)) addr addr;
      map3 (fun x a b -> I.Assign_binop (x, a, b)) addr addr addr;
      map (fun a -> I.Read a) addr;
      map2 (fun base size -> I.Malloc { base; size }) addr size;
      map2 (fun base size -> I.Free { base; size }) addr size;
      map (fun x -> I.Taint_source x) addr;
      map (fun x -> I.Untaint x) addr;
      map (fun x -> I.Jump_via x) addr;
      map (fun x -> I.Syscall_arg x) addr;
      return I.Nop;
    ]

let gen_program =
  let open QCheck.Gen in
  let* threads = int_range 1 4 in
  let* heartbeat = int_range 1 5 in
  let thread = list_size (int_bound 20) gen_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every:heartbeat

let arb_program =
  QCheck.make ~print:(fun p -> Tracing.Trace_codec.encode p) gen_program

let programs_equal a b =
  Tracing.Program.threads a = Tracing.Program.threads b
  && List.for_all
       (fun t ->
         let ea = Tracing.Trace.events (Tracing.Program.trace a t) in
         let eb = Tracing.Trace.events (Tracing.Program.trace b t) in
         Array.length ea = Array.length eb
         && Array.for_all2 Tracing.Event.equal ea eb)
       (List.init (Tracing.Program.threads a) Fun.id)

let codec_tests =
  [
    Testutil.qtest ~count:200 "codec round-trip" arb_program (fun p ->
        programs_equal p (Tracing.Trace_codec.roundtrip_exn p));
    Alcotest.test_case "decode rejects garbage" `Quick (fun () ->
        (match Tracing.Trace_codec.decode "0 frobnicate 0x10" with
        | Error msg ->
          Testutil.checkb "mentions line" true
            (String.length msg > 0 && String.sub msg 0 4 = "line")
        | Ok _ -> Alcotest.fail "expected parse error");
        match Tracing.Trace_codec.decode "x nop" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected tid error");
    Alcotest.test_case "decode skips comments and blanks" `Quick (fun () ->
        match Tracing.Trace_codec.decode "# hi\n\n0 nop\n  \n0 heartbeat\n" with
        | Ok p ->
          Alcotest.(check int) "events" 2
            (Array.length (Tracing.Trace.events (Tracing.Program.trace p 0)))
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "decode empty is an error" `Quick (fun () ->
        match Tracing.Trace_codec.decode "# nothing\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
  ]

let fuzz_tests =
  [
    Testutil.qtest ~count:200 "binary codec round-trip" arb_program (fun p ->
        programs_equal p (Tracing.Trace_codec.binary_roundtrip_exn p));
    Alcotest.test_case "binary is denser than text" `Quick (fun () ->
        let p =
          Tracing.Program.of_instrs
            [ List.init 500 (fun k -> I.Assign_binop (k, k + 1, k + 2)) ]
        in
        Testutil.checkb "smaller" true
          (String.length (Tracing.Trace_codec.encode_binary p)
          < String.length (Tracing.Trace_codec.encode p) / 3));
    Testutil.qtest ~count:300 "text decoder never raises on garbage"
      QCheck.(string_gen_of_size Gen.(int_bound 200) Gen.printable)
      (fun s ->
        match Tracing.Trace_codec.decode s with
        | Ok _ | Error _ -> true);
    Testutil.qtest ~count:300 "binary decoder never raises on garbage"
      QCheck.(string_gen_of_size Gen.(int_bound 200) Gen.char)
      (fun s ->
        match Tracing.Trace_codec.decode_binary s with
        | Ok _ | Error _ -> true);
    Testutil.qtest ~count:100 "binary decoder survives truncation"
      arb_program (fun p ->
        let b = Tracing.Trace_codec.encode_binary p in
        let cut = String.sub b 0 (String.length b / 2) in
        match Tracing.Trace_codec.decode_binary cut with
        | Ok _ | Error _ -> true);
  ]

(* Taint-instruction traffic through the codec: the parallel TaintCheck
   work made these variants load-bearing on the CLI path, so they get
   their own fuzz corpus (text and binary), plus the truncation
   guarantee [load_program] relies on: a cut trace is a clean [Error],
   never an escaping exception and never a silent [Ok]. *)
let gen_taint_program =
  let open QCheck.Gen in
  let* threads = int_range 1 4 in
  let* heartbeat = int_range 1 5 in
  let thread = list_size (int_bound 20) (Testutil.gen_taint_instr ~n_addrs:256) in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss
  |> Tracing.Program.with_heartbeats ~every:heartbeat

let arb_taint_program =
  QCheck.make ~print:(fun p -> Tracing.Trace_codec.encode p) gen_taint_program

(* One fixed program exercising every taint-relevant variant. *)
let taint_exemplar =
  Tracing.Program.of_instrs
    [
      [ I.Taint_source 1; I.Assign_unop (2, 1); I.Syscall_arg 2 ];
      [ I.Untaint 3; I.Assign_binop (4, 1, 3); I.Jump_via 4; I.Assign_const 1 ];
    ]
  |> Tracing.Program.with_heartbeats ~every:2

let taint_codec_tests =
  [
    Testutil.qtest ~count:200 "text round-trip (taint variants)"
      arb_taint_program (fun p ->
        programs_equal p (Tracing.Trace_codec.roundtrip_exn p));
    Testutil.qtest ~count:200 "binary round-trip (taint variants)"
      arb_taint_program (fun p ->
        programs_equal p (Tracing.Trace_codec.binary_roundtrip_exn p));
    Alcotest.test_case "every strict binary prefix is a clean error" `Quick
      (fun () ->
        (* Success requires consuming the entire buffer, so any strict
           prefix must surface as [Error] — the contract the CLI's
           [load_program] error path depends on. *)
        let b = Tracing.Trace_codec.encode_binary taint_exemplar in
        for cut = 0 to String.length b - 1 do
          match Tracing.Trace_codec.decode_binary (String.sub b 0 cut) with
          | Error m -> Testutil.checkb "non-empty message" true (m <> "")
          | Ok _ -> Alcotest.failf "prefix of %d bytes decoded Ok" cut
        done);
    Testutil.qtest ~count:150 "random truncation is a clean error"
      arb_taint_program (fun p ->
        let b = Tracing.Trace_codec.encode_binary p in
        (* Derive the cut point from the payload so the property stays
           seed-reproducible. *)
        let cut = Hashtbl.hash b mod String.length b in
        match Tracing.Trace_codec.decode_binary (String.sub b 0 cut) with
        | Error _ -> true
        | Ok _ -> false);
  ]

(* Synchronization events through the codec: Lock/Unlock/Fork/Join are
   new in binary format version 2 (opcodes 12-15) and in the text
   mnemonic set, and they feed RaceCheck's happens-before relation — a
   silently dropped or misparsed sync op turns into missed races, so
   the four kinds get the same corpus treatment as the taint variants:
   round-trips, truncation, bit flips, the legacy-decode pin and the
   cursor-ingest equivalence below. *)
let gen_sync_program =
  let open QCheck.Gen in
  let sync_instr =
    let addr = int_bound 0xff in
    frequency
      [
        (2, map (fun m -> I.Lock m) addr);
        (2, map (fun m -> I.Unlock m) addr);
        (2, map (fun u -> I.Fork u) (int_bound 4));
        (2, map (fun u -> I.Join u) (int_bound 4));
        (2, map (fun x -> I.Assign_const x) addr);
        (1, map (fun a -> I.Read a) addr);
        (1, return I.Nop);
      ]
  in
  let* threads = int_range 1 4 in
  let* heartbeat = int_range 1 5 in
  let thread = list_size (int_bound 20) sync_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss
  |> Tracing.Program.with_heartbeats ~every:heartbeat

let arb_sync_program =
  QCheck.make ~print:(fun p -> Tracing.Trace_codec.encode p) gen_sync_program

(* One fixed program exercising all four sync kinds. *)
let sync_exemplar =
  Tracing.Program.of_instrs
    [
      [ I.Lock 1; I.Assign_const 2; I.Unlock 1; I.Fork 1 ];
      [ I.Lock 1; I.Read 2; I.Unlock 1; I.Join 0 ];
    ]
  |> Tracing.Program.with_heartbeats ~every:2

let sync_codec_tests =
  [
    Testutil.qtest ~count:200 "text round-trip (sync events)" arb_sync_program
      (fun p -> programs_equal p (Tracing.Trace_codec.roundtrip_exn p));
    Testutil.qtest ~count:200 "binary round-trip (sync events)"
      arb_sync_program (fun p ->
        programs_equal p (Tracing.Trace_codec.binary_roundtrip_exn p));
    Alcotest.test_case "text mnemonics are pinned" `Quick (fun () ->
        let enc = Tracing.Trace_codec.encode sync_exemplar in
        List.iter
          (fun needle ->
            Testutil.checkb needle true (Astring.String.is_infix ~affix:needle enc))
          [ "0 lock 0x1"; "0 unlock 0x1"; "0 fork 1"; "1 join 0" ]);
    Alcotest.test_case "negative fork/join targets are parse errors" `Quick
      (fun () ->
        List.iter
          (fun line ->
            match Tracing.Trace_codec.decode line with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S accepted" line)
          [ "0 fork -1"; "0 join -2" ]);
    Alcotest.test_case "every strict binary prefix is a clean error" `Quick
      (fun () ->
        let b = Tracing.Trace_codec.encode_binary sync_exemplar in
        for cut = 0 to String.length b - 1 do
          match Tracing.Trace_codec.decode_binary (String.sub b 0 cut) with
          | Error m -> Testutil.checkb "non-empty message" true (m <> "")
          | Ok _ -> Alcotest.failf "prefix of %d bytes decoded Ok" cut
        done);
    Alcotest.test_case "every single-bit flip is rejected" `Quick (fun () ->
        let b = Tracing.Trace_codec.encode_binary sync_exemplar in
        for pos = 0 to String.length b - 1 do
          for bit = 0 to 7 do
            if pos <> 4 then (
              let flipped = Bytes.of_string b in
              Bytes.set flipped pos
                (Char.chr (Char.code b.[pos] lxor (1 lsl bit)));
              match
                Tracing.Trace_codec.decode_binary (Bytes.to_string flipped)
              with
              | Ok _ -> Alcotest.failf "bit flip %d.%d accepted" pos bit
              | Error _ -> ())
          done
        done);
    Alcotest.test_case "legacy BFLY1 payloads with sync opcodes decode" `Quick
      (fun () ->
        (* The version-2 opcodes are not gated out of the legacy reader:
           an old consumer never wrote them, but a BFLY1 payload that
           contains them is decoded rather than rejected. *)
        let b = Tracing.Trace_codec.encode_binary sync_exemplar in
        let legacy = "BFLY1" ^ String.sub b 5 (String.length b - 9) in
        match Tracing.Trace_codec.decode_binary legacy with
        | Error m -> Alcotest.failf "legacy decode: %s" m
        | Ok p -> Testutil.checkb "round-trip" true (programs_equal sync_exemplar p));
  ]

(* The zero-copy cursor against the materializing decoder: same rows,
   same accept/reject verdict, on well-formed traces, every strict
   prefix, every single-bit corruption, and the legacy BFLY1 framing.
   The cursor feeds the streaming lifeguard engines directly (`--ingest
   cursor`), so "identical to decode_binary + Epochs.of_program" is the
   contract that keeps that path honest. *)
module Cursor = Tracing.Trace_codec.Cursor

let rows_of_cursor ?every c =
  let acc = ref [] in
  Cursor.iter_rows ?every c (fun row -> acc := Array.map Array.copy row :: !acc);
  List.rev !acc

let rows_match_epochs rows e =
  let threads = Butterfly.Epochs.threads e in
  List.length rows = Butterfly.Epochs.num_epochs e
  && List.for_all2
       (fun row l ->
         Array.length row = threads
         && List.for_all
              (fun t ->
                row.(t)
                = (Butterfly.Epochs.block e ~epoch:l ~tid:t)
                    .Butterfly.Block.instrs)
              (List.init threads Fun.id))
       rows
       (List.init (List.length rows) Fun.id)

let cursor_of_program p =
  match Cursor.of_string (Tracing.Trace_codec.encode_binary p) with
  | Ok c -> c
  | Error m -> failwith ("cursor: " ^ m)

let accepts = function Ok _ -> true | Error _ -> false

let cursor_tests =
  [
    Testutil.qtest ~count:200 "rows = Epochs.of_program (embedded heartbeats)"
      arb_program (fun p ->
        let c = cursor_of_program p in
        let rows = rows_of_cursor c in
        Cursor.num_rows c = List.length rows
        && Cursor.threads c = Tracing.Program.threads p
        && rows_match_epochs rows (Butterfly.Epochs.of_program p));
    Testutil.qtest ~count:200 "rows = Epochs.of_program (re-chunked)"
      (QCheck.make
         ~print:(fun (p, h) ->
           Printf.sprintf "every=%d\n%s" h (Tracing.Trace_codec.encode p))
         QCheck.Gen.(pair gen_program (int_range 1 5)))
      (fun (p, h) ->
        let c = cursor_of_program p in
        let rows = rows_of_cursor ~every:h c in
        Cursor.num_rows ~every:h c = List.length rows
        && rows_match_epochs rows
             (Butterfly.Epochs.of_program
                (Tracing.Program.with_heartbeats ~every:h p)));
    Testutil.qtest ~count:300 "cursor and decoder agree on garbage"
      QCheck.(string_gen_of_size Gen.(int_bound 200) Gen.char)
      (fun s ->
        accepts (Cursor.of_string s)
        = accepts (Tracing.Trace_codec.decode_binary s));
    Alcotest.test_case "every strict prefix rejected, like the decoder"
      `Quick (fun () ->
        let b = Tracing.Trace_codec.encode_binary taint_exemplar in
        for cut = 0 to String.length b - 1 do
          let prefix = String.sub b 0 cut in
          (match Cursor.of_string prefix with
          | Error m -> Testutil.checkb "non-empty message" true (m <> "")
          | Ok _ -> Alcotest.failf "cursor accepted a %d-byte prefix" cut);
          Testutil.checkb "decoder agrees" false
            (accepts (Tracing.Trace_codec.decode_binary prefix))
        done);
    Alcotest.test_case "every single-bit flip rejected, like the decoder"
      `Quick (fun () ->
        (* The envelope CRC covers every byte, so any one-bit corruption
           must be a clean rejection from both decoders. *)
        let b = Tracing.Trace_codec.encode_binary taint_exemplar in
        let flipped = Bytes.of_string b in
        for pos = 0 to String.length b - 1 do
          for bit = 0 to 7 do
            Bytes.set flipped pos
              (Char.chr (Char.code b.[pos] lxor (1 lsl bit)));
            let s = Bytes.to_string flipped in
            Testutil.checkb "cursor rejects" false (accepts (Cursor.of_string s));
            Testutil.checkb "decoder rejects" false
              (accepts (Tracing.Trace_codec.decode_binary s));
            Bytes.set flipped pos b.[pos]
          done
        done);
    Testutil.qtest ~count:150 "cursor-ingest equivalence on sync traffic"
      (QCheck.make
         ~print:(fun (p, h) ->
           Printf.sprintf "every=%d\n%s" h (Tracing.Trace_codec.encode p))
         QCheck.Gen.(pair gen_sync_program (int_range 1 5)))
      (fun (p, h) ->
        (* Lock/fork/join rows delivered by `--ingest cursor` must be the
           rows the batch pipeline sees. *)
        let c = cursor_of_program p in
        rows_match_epochs (rows_of_cursor c) (Butterfly.Epochs.of_program p)
        && rows_match_epochs
             (rows_of_cursor ~every:h c)
             (Butterfly.Epochs.of_program
                (Tracing.Program.with_heartbeats ~every:h p)));
    Alcotest.test_case "legacy BFLY1 traces walk identically" `Quick
      (fun () ->
        (* Same payload behind the unchecksummed legacy magic: the cursor
           must accept it and yield the same rows as the v2 framing. *)
        let b = Tracing.Trace_codec.encode_binary taint_exemplar in
        let legacy = "BFLY1" ^ String.sub b 5 (String.length b - 9) in
        match Cursor.of_string legacy with
        | Error m -> Alcotest.failf "legacy cursor: %s" m
        | Ok c ->
          Testutil.checkb "rows match" true
            (rows_match_epochs (rows_of_cursor c)
               (Butterfly.Epochs.of_program taint_exemplar));
          Testutil.checkb "re-chunked rows match" true
            (rows_match_epochs
               (rows_of_cursor ~every:3 c)
               (Butterfly.Epochs.of_program
                  (Tracing.Program.with_heartbeats ~every:3 taint_exemplar))));
  ]

let () =
  Alcotest.run "tracing"
    [
      ("instr", footprint_tests);
      ("trace", trace_tests);
      ("codec", codec_tests);
      ("codec_binary", fuzz_tests);
      ("codec_taint", taint_codec_tests);
      ("codec_sync", sync_codec_tests);
      ("cursor", cursor_tests);
    ]
