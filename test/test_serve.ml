(* The serving stack, bottom-up:

   - the wire protocol: frame round-trips under arbitrary write
     boundaries, stable rejection of malformed input;
   - the pure pieces: admission/backpressure policy, fairness rotation;
   - sessions without a socket: batch-equivalent feeding, evict/revive,
     the snapshot rejection catalogue;
   - the daemon itself, hosted in a domain: an 8-tenant concurrent
     differential battery (every tenant's report byte-identical to the
     solo batch run, including under 3-byte shredded writes), crash at a
     sealed-epoch frontier + reconnect/resume, oversubscription
     eviction, per-session fault containment, and the STATUS surface. *)

module Wire = Serve.Wire
module Session = Serve.Session
module Daemon = Serve.Daemon
module Client = Serve.Client
module Policy = Serve.Policy
module Table = Serve.Table
module Report = Serve.Report
module Runner = Recovery.Runner
module Snapshot = Recovery.Snapshot
module Epochs = Butterfly.Epochs

let check = Alcotest.check
let checks = Alcotest.(check string)
let checkb = Testutil.checkb
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Fixtures: deterministic workload programs, one per tenant.           *)

let program ~seed ~threads ~scale =
  let profile =
    match Workloads.Registry.find "lu" with
    | Some p -> p
    | None -> Alcotest.fail "lu workload missing"
  in
  Machine.Heartbeat.insert ~every:16
    (Workloads.Workload.generate_program profile ~threads ~scale ~seed)

let rows_of_program p = Runner.rows_of (Epochs.of_program p)

(* The solo batch reference: sequential driver, functional backend —
   every other driver/backend must match it byte-for-byte, so it serves
   as the oracle for all tenant configs. *)
let batch_report lifeguard ~relaxed p =
  let epochs = Epochs.of_program p in
  match lifeguard with
  | Snapshot.Addrcheck -> Report.addrcheck (Lifeguards.Addrcheck.run epochs)
  | Snapshot.Initcheck -> Report.initcheck (Lifeguards.Initcheck.run epochs)
  | Snapshot.Taintcheck ->
    Report.taintcheck
      (Lifeguards.Taintcheck.run ~sequential:(not relaxed) epochs)
  | Snapshot.Racecheck -> Report.racecheck (Lifeguards.Racecheck.run epochs)

let hello ?(lifeguard = Snapshot.Addrcheck) ?(driver = `Sequential)
    ?(state = `Functional) ?(relaxed = false) ~tenant ~threads () =
  { Wire.tenant; lifeguard; driver; state; relaxed; threads }

(* ------------------------------------------------------------------ *)
(* Wire: round-trips and rejections.                                   *)

let sample_frames =
  [
    Wire.Hello
      (hello ~tenant:"alpha-1" ~lifeguard:Snapshot.Taintcheck ~driver:`Wavefront
         ~state:`Flat ~relaxed:true ~threads:7 ());
    Wire.Hello_ok { resumed_from = 42 };
    Wire.Data "\x00\x01\x02binary payload\xff";
    Wire.Fin;
    Wire.Report {|{"lifeguard":"addrcheck","checked":3}|};
    Wire.Error "bad trace chunk: bad magic";
    Wire.Status;
    Wire.Status_ok {|{"live":0}|};
  ]

let frame_testable =
  Alcotest.testable Wire.pp (fun a b ->
      (* [pp] elides payloads, so compare structurally. *)
      a = b)

let wire_roundtrip () =
  List.iter
    (fun f ->
      let encoded = Wire.encode f in
      let reader = Wire.Reader.create () in
      Wire.Reader.feed reader encoded ~pos:0 ~len:(String.length encoded);
      match Wire.Reader.next reader with
      | Ok (Some got) ->
        check frame_testable "roundtrip" f got;
        (match Wire.Reader.next reader with
        | Ok None -> ()
        | _ -> Alcotest.fail "leftover bytes after one frame")
      | _ -> Alcotest.fail "complete frame not decoded")
    sample_frames

let wire_torn_delivery () =
  (* The whole conversation shredded one byte at a time: the reader must
     reassemble the same sequence. *)
  let stream = String.concat "" (List.map Wire.encode sample_frames) in
  let reader = Wire.Reader.create () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Wire.Reader.feed reader stream ~pos:i ~len:1;
      let rec drain () =
        match Wire.Reader.next reader with
        | Ok (Some f) ->
          got := f :: !got;
          drain ()
        | Ok None -> ()
        | Error m -> Alcotest.fail ("reader error: " ^ m)
      in
      drain ())
    stream;
  check
    (Alcotest.list frame_testable)
    "shredded stream" sample_frames (List.rev !got)

let wire_rejects () =
  let expect_err body prefix =
    match Wire.decode_body body with
    | Error m ->
      checkb
        (Printf.sprintf "%S starts with %S" m prefix)
        true
        (String.length m >= String.length prefix
        && String.sub m 0 (String.length prefix) = prefix)
    | Ok f -> Alcotest.fail (Format.asprintf "decoded %a" Wire.pp f)
  in
  expect_err "\x2a" "bad frame: ";
  (* unknown tag *)
  expect_err "" "bad frame: ";
  (* empty body *)
  expect_err "\x01\x63" "bad frame: unsupported protocol version 99";
  expect_err "\x04\x00" "bad frame: ";
  (* trailing bytes after FIN *)
  let truncated_hello =
    let full = Wire.encode (List.hd sample_frames) in
    String.sub full 4 (String.length full - 8)
  in
  expect_err truncated_hello "bad frame: "

let wire_oversized_sticky () =
  let reader = Wire.Reader.create () in
  (* A length prefix claiming 64 MiB. *)
  Wire.Reader.feed reader "\x04\x00\x00\x00" ~pos:0 ~len:4;
  (match Wire.Reader.next reader with
  | Error m ->
    checks "oversized" "oversized frame: 67108864 bytes (limit 16777216)" m
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* Sticky: even valid input afterwards keeps failing. *)
  let fin = Wire.encode Wire.Fin in
  Wire.Reader.feed reader fin ~pos:0 ~len:(String.length fin);
  match Wire.Reader.next reader with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reader recovered from a framing error"

let gen_frame =
  let open QCheck.Gen in
  let str = string_size ~gen:printable (int_bound 40) in
  let tenant =
    map
      (fun s -> if s = "" then "t" else s)
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
  in
  frequency
    [
      ( 2,
        let* t = tenant in
        let* lg =
          oneofl
            [ Snapshot.Addrcheck; Snapshot.Initcheck; Snapshot.Taintcheck;
              Snapshot.Racecheck ]
        in
        let* driver = oneofl [ `Sequential; `Pooled; `Wavefront ] in
        let* state = oneofl [ `Functional; `Flat ] in
        let* relaxed = bool in
        let* threads = int_range 1 16 in
        return
          (Wire.Hello
             { Wire.tenant = t; lifeguard = lg; driver; state; relaxed;
               threads }) );
      (1, map (fun n -> Wire.Hello_ok { resumed_from = n }) (int_bound 1000));
      (2, map (fun s -> Wire.Data s) str);
      (1, return Wire.Fin);
      (1, map (fun s -> Wire.Report s) str);
      (1, map (fun s -> Wire.Error s) str);
      (1, return Wire.Status);
      (1, map (fun s -> Wire.Status_ok s) str);
    ]

let arb_frames_and_cuts =
  QCheck.make
    ~print:(fun (fs, _) ->
      String.concat "; " (List.map (Format.asprintf "%a" Wire.pp) fs))
    QCheck.Gen.(
      let* fs = list_size (int_range 1 8) gen_frame in
      let* cuts = list_size (int_bound 12) (int_bound 2000) in
      return (fs, cuts))

let prop_chunked_roundtrip (frames, cuts) =
  let stream = String.concat "" (List.map Wire.encode frames) in
  let reader = Wire.Reader.create () in
  let got = ref [] in
  let drain () =
    let rec go () =
      match Wire.Reader.next reader with
      | Ok (Some f) ->
        got := f :: !got;
        go ()
      | Ok None -> ()
      | Error m -> Alcotest.fail ("reader error: " ^ m)
    in
    go ()
  in
  (* Split the stream at the generated cut points (modulo length). *)
  let n = String.length stream in
  let cuts = List.sort_uniq compare (List.map (fun c -> c mod (n + 1)) cuts) in
  let pos = ref 0 in
  List.iter
    (fun c ->
      if c > !pos then begin
        Wire.Reader.feed reader stream ~pos:!pos ~len:(c - !pos);
        drain ();
        pos := c
      end)
    cuts;
  if !pos < n then begin
    Wire.Reader.feed reader stream ~pos:!pos ~len:(n - !pos);
    drain ()
  end;
  List.rev !got = frames

(* ------------------------------------------------------------------ *)
(* Policy and table.                                                   *)

let policy_throttle () =
  let p = Policy.v ~max_sessions:4 ~max_queued:8 in
  checkb "below" false (Policy.throttled p ~queued:7);
  checkb "at" true (Policy.throttled p ~queued:8);
  checkb "above" true (Policy.throttled p ~queued:9);
  match Policy.v ~max_sessions:0 ~max_queued:1 with
  | _ -> Alcotest.fail "max_sessions 0 accepted"
  | exception Invalid_argument _ -> ()

let policy_eviction () =
  let p = Policy.v ~max_sessions:2 ~max_queued:8 in
  let c key detached idle = { Policy.key; detached; idle } in
  check
    (Alcotest.option Alcotest.string)
    "under capacity" None
    (Policy.evictee p ~live:1 [ c "a" true 9 ]);
  check
    (Alcotest.option Alcotest.string)
    "longest idle detached" (Some "b")
    (Policy.evictee p ~live:2 [ c "a" true 3; c "b" true 7; c "c" false 9 ]);
  check
    (Alcotest.option Alcotest.string)
    "ties break on key" (Some "a")
    (Policy.evictee p ~live:2 [ c "b" true 5; c "a" true 5 ]);
  check
    (Alcotest.option Alcotest.string)
    "all connected: nobody" None
    (Policy.evictee p ~live:2 [ c "a" false 3; c "b" false 7 ])

let table_rotation () =
  let t = Table.create () in
  List.iter (fun k -> Table.add t k (ref 0)) [ "a"; "b"; "c" ];
  let first = ref [] in
  for _ = 1 to 3 do
    let seen = ref [] in
    ignore
      (Table.tick t (fun k r ->
           if !seen = [] then first := k :: !first;
           seen := k :: !seen;
           incr r;
           true))
  done;
  check
    (Alcotest.list Alcotest.string)
    "start rotates" [ "a"; "b"; "c" ] (List.rev !first);
  Table.iter t (fun k r -> checki (k ^ " visited each tick") 3 !r);
  (* Removal mid-tick is safe, including self-removal. *)
  let visited = ref 0 in
  ignore
    (Table.tick t (fun k _ ->
         incr visited;
         Table.remove t k;
         true));
  checki "all visited despite removals" 3 !visited;
  checki "empty after" 0 (Table.live t)

(* ------------------------------------------------------------------ *)
(* Sessions without a socket.                                          *)

let session_create_rejects () =
  let expect msg h =
    match Session.create h with
    | Error m -> checks "create error" msg m
    | Ok _ -> Alcotest.fail "bad hello accepted"
  in
  expect "bad hello: invalid tenant id \"no/slash\""
    (hello ~tenant:"no/slash" ~threads:2 ());
  expect "bad hello: threads must be >= 1" (hello ~tenant:"ok" ~threads:0 ());
  expect "bad hello: driver needs a daemon started with --domains"
    (hello ~tenant:"ok" ~driver:`Pooled ~threads:2 ())

let session_matches_batch () =
  let p = program ~seed:11 ~threads:3 ~scale:100 in
  let rows = rows_of_program p in
  List.iter
    (fun (lifeguard, relaxed) ->
      let h =
        hello ~tenant:"solo" ~lifeguard ~relaxed
          ~threads:(Tracing.Program.threads p) ()
      in
      match Session.create h with
      | Error m -> Alcotest.fail m
      | Ok s ->
        Array.iter
          (fun row ->
            match Session.enqueue s (Client.chunk_of_row row) with
            | Ok n -> checki "one row per chunk" 1 n
            | Error m -> Alcotest.fail m)
          rows;
        checki "queued" (Array.length rows) (Session.queued s);
        while Session.step s do () done;
        checki "fed" (Array.length rows) (Session.fed s);
        Session.fin s;
        checkb "finished" true (Session.finished s);
        checks
          (Snapshot.lifeguard_to_string lifeguard ^ " == batch")
          (batch_report lifeguard ~relaxed p)
          (Session.report s))
    [ (Snapshot.Addrcheck, false); (Snapshot.Initcheck, false);
      (Snapshot.Taintcheck, false); (Snapshot.Taintcheck, true);
      (Snapshot.Racecheck, false) ]

let session_stream_rejects () =
  let p = program ~seed:3 ~threads:2 ~scale:60 in
  let h = hello ~tenant:"rj" ~threads:2 () in
  let s = Result.get_ok (Session.create h) in
  (match Session.enqueue s "not a trace" with
  | Error m -> checks "bad chunk" "bad trace chunk: bad magic" m
  | Ok _ -> Alcotest.fail "garbage chunk accepted");
  let four = program ~seed:3 ~threads:4 ~scale:60 in
  (match Session.enqueue s (Client.chunk_of_row (rows_of_program four).(0)) with
  | Error m -> checks "threads" "bad trace chunk: 4 threads, session has 2" m
  | Ok _ -> Alcotest.fail "thread mismatch accepted");
  (match Session.enqueue s (Client.chunk_of_row (rows_of_program p).(0)) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Session.fin s;
  match Session.enqueue s (Client.chunk_of_row (rows_of_program p).(1)) with
  | Error m -> checks "after fin" "bad stream: DATA after FIN" m
  | Ok _ -> Alcotest.fail "DATA after FIN accepted"

let with_state_dir f =
  let dir = Filename.temp_file "serve_state" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let session_evict_revive () =
  with_state_dir @@ fun dir ->
  let p = program ~seed:21 ~threads:3 ~scale:120 in
  let rows = rows_of_program p in
  let h =
    hello ~tenant:"ev" ~lifeguard:Snapshot.Initcheck
      ~threads:(Tracing.Program.threads p) ()
  in
  let s = Result.get_ok (Session.create ~state_dir:dir h) in
  checki "fresh frontier" 0 (Session.frontier s);
  let cut = Array.length rows / 2 in
  for l = 0 to cut - 1 do
    (match Session.enqueue s (Client.chunk_of_row rows.(l)) with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m);
    ignore (Session.step s)
  done;
  (match Session.evict s ~dir with
  | Ok bytes -> checkb "snapshot non-empty" true (bytes > 0)
  | Error m -> Alcotest.fail m);
  checkb "session-keyed file" true
    (Sys.file_exists
       (Snapshot.session_path ~dir ~tenant:"ev" Snapshot.Initcheck));
  (* Revive and finish: identical to the uninterrupted batch run. *)
  let s' = Result.get_ok (Session.create ~state_dir:dir h) in
  checki "revived frontier" cut (Session.frontier s');
  for l = cut to Array.length rows - 1 do
    match Session.enqueue s' (Client.chunk_of_row rows.(l)) with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  done;
  Session.fin s';
  checks "revived == batch"
    (batch_report Snapshot.Initcheck ~relaxed:false p)
    (Session.report s')

let session_snapshot_rejects () =
  with_state_dir @@ fun dir ->
  let p = program ~seed:21 ~threads:3 ~scale:120 in
  let rows = rows_of_program p in
  let h = hello ~tenant:"rej" ~threads:3 () in
  let s = Result.get_ok (Session.create ~state_dir:dir h) in
  ignore (Session.enqueue s (Client.chunk_of_row rows.(0)));
  ignore (Session.step s);
  (match Session.evict s ~dir with Ok _ -> () | Error m -> Alcotest.fail m);
  (* Wrong lifeguard: the on-disk session is addrcheck. *)
  (match
     Session.create ~state_dir:dir
       (hello ~tenant:"rej" ~lifeguard:Snapshot.Racecheck ~threads:3 ())
   with
  | Error m ->
    checks "wrong lifeguard"
      "tenant rej has a addrcheck session on disk, not racecheck" m
  | Ok _ -> Alcotest.fail "wrong-lifeguard hello accepted");
  (* Wrong thread count against the snapshot. *)
  (match Session.create ~state_dir:dir (hello ~tenant:"rej" ~threads:5 ()) with
  | Error m -> checks "threads" "checkpoint has 3 threads, trace has 5" m
  | Ok _ -> Alcotest.fail "thread mismatch accepted");
  (* A different tenant is unaffected by rej's snapshot. *)
  (match Session.create ~state_dir:dir (hello ~tenant:"other" ~threads:2 ()) with
  | Ok s' -> checki "fresh" 0 (Session.frontier s')
  | Error m -> Alcotest.fail m);
  (* Corrupt snapshot: flip one payload byte. *)
  let path = Snapshot.session_path ~dir ~tenant:"rej" Snapshot.Addrcheck in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string raw in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  match Session.create ~state_dir:dir h with
  | Error m ->
    checkb "corrupt rejected with a stable prefix" true
      (Astring.String.is_prefix ~affix:"CRC mismatch" m
      || Astring.String.is_prefix ~affix:"corrupt checkpoint" m)
  | Ok _ -> Alcotest.fail "corrupt snapshot accepted"

(* ------------------------------------------------------------------ *)
(* Crash_sim over session-keyed snapshots.                             *)

let crash_sim_session () =
  with_state_dir @@ fun dir ->
  let p = program ~seed:5 ~threads:3 ~scale:120 in
  let epochs = Epochs.of_program p in
  List.iter
    (fun lifeguard ->
      match
        Recovery.Crash_sim.run_session ~every:2 ~seed:9 ~dir ~tenant:"cs"
          lifeguard epochs
      with
      | Error m -> Alcotest.fail m
      | Ok o ->
        checkb
          (Snapshot.lifeguard_to_string lifeguard ^ " recovers identically")
          true o.Recovery.Crash_sim.equal)
    [ Snapshot.Addrcheck; Snapshot.Taintcheck ];
  checkb "snapshot under session path" true
    (Sys.file_exists (Snapshot.session_path ~dir ~tenant:"cs" Snapshot.Addrcheck));
  match
    Recovery.Crash_sim.run_session ~every:1 ~dir ~tenant:"no good"
      Snapshot.Addrcheck epochs
  with
  | _ -> Alcotest.fail "invalid tenant accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The daemon, hosted in a domain.                                     *)

let temp_socket () =
  let path = Filename.temp_file "serve" ".sock" in
  Sys.remove path;
  path

let with_daemon ?domains ?state_dir ?checkpoint_every ?evict_idle_after ?policy
    f =
  let socket = temp_socket () in
  let stop = Atomic.make `Run in
  let cfg =
    Daemon.config ~socket ?domains ?state_dir ?checkpoint_every
      ?evict_idle_after ?policy ()
  in
  let d = Domain.spawn (fun () -> Daemon.run ~stop:(fun () -> Atomic.get stop) cfg) in
  Fun.protect
    ~finally:(fun () ->
      if Atomic.get stop = `Run then Atomic.set stop `Quit;
      Domain.join d;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f socket stop)

(* Eight tenants, mixed lifeguards × drivers × backends, streaming
   concurrently (some with writes shredded to 3 bytes); every report
   must equal the tenant's solo sequential batch run. *)
let eight_tenant_battery () =
  let configs =
    [
      ("t0", Snapshot.Addrcheck, `Sequential, `Functional, false, None);
      ("t1", Snapshot.Addrcheck, `Pooled, `Flat, false, Some 3);
      ("t2", Snapshot.Initcheck, `Wavefront, `Functional, false, None);
      ("t3", Snapshot.Initcheck, `Sequential, `Flat, false, Some 2);
      ("t4", Snapshot.Taintcheck, `Pooled, `Functional, false, None);
      ("t5", Snapshot.Taintcheck, `Wavefront, `Flat, true, Some 3);
      ("t6", Snapshot.Racecheck, `Sequential, `Functional, false, None);
      ("t7", Snapshot.Racecheck, `Pooled, `Flat, false, Some 5);
    ]
  in
  with_daemon ~domains:2 @@ fun socket _stop ->
  let jobs =
    List.mapi
      (fun i (tenant, lifeguard, driver, state, relaxed, write_chunk) ->
        let p = program ~seed:(100 + i) ~threads:(2 + (i mod 3)) ~scale:80 in
        let expected = batch_report lifeguard ~relaxed p in
        let rows = rows_of_program p in
        let h =
          hello ~tenant ~lifeguard ~driver ~state ~relaxed
            ~threads:(Tracing.Program.threads p) ()
        in
        ( tenant,
          expected,
          Domain.spawn (fun () ->
              Client.run_tenant ~socket ?write_chunk ~hello:h rows) ))
      configs
  in
  List.iter
    (fun (tenant, expected, d) ->
      match Domain.join d with
      | Ok (resumed_from, report) ->
        checki (tenant ^ " started fresh") 0 resumed_from;
        checks (tenant ^ " == solo batch") expected report
      | Error m -> Alcotest.fail (tenant ^ ": " ^ m))
    jobs

(* Minimal raw-protocol client pieces for the crash and containment
   tests, where [Client.run_tenant]'s full conversation is too much. *)
let raw_connect socket =
  match Client.status ~socket () with
  | _ ->
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.connect fd (ADDR_UNIX socket);
    fd

let raw_send fd frame =
  let s = Wire.encode frame in
  ignore (Unix.write fd (Bytes.unsafe_of_string s) 0 (String.length s))

let raw_read_frame fd =
  let reader = Wire.Reader.create () in
  let buf = Bytes.create 4096 in
  let rec go () =
    match Wire.Reader.next reader with
    | Ok (Some f) -> Ok f
    | Error m -> Error m
    | Ok None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Error "eof"
      | n ->
        Wire.Reader.feed reader (Bytes.unsafe_to_string buf) ~pos:0 ~len:n;
        go ())
  in
  go ()

let fed_of_status socket tenant =
  match Client.status ~socket () with
  | Error _ -> None
  | Ok s -> (
    match Obs.Json.of_string s with
    | Error _ -> None
    | Ok (Obs.Json.Obj fields) -> (
      match List.assoc_opt "sessions" fields with
      | Some (Obs.Json.List cards) ->
        List.find_map
          (function
            | Obs.Json.Obj card
              when List.assoc_opt "tenant" card
                   = Some (Obs.Json.String tenant) -> (
              match List.assoc_opt "fed" card with
              | Some (Obs.Json.Int n) -> Some n
              | _ -> None)
            | _ -> None)
          cards
      | _ -> None)
    | Ok _ -> None)

let rec wait_for ?(tries = 500) pred =
  if tries = 0 then Alcotest.fail "timeout waiting for daemon state"
  else if not (pred ()) then begin
    Unix.sleepf 0.01;
    wait_for ~tries:(tries - 1) pred
  end

(* Kill the daemon mid-stream at a sealed-epoch frontier; the tenant
   reconnects to a restarted daemon over the same state dir and resumes
   from the periodic checkpoint, with a byte-identical final report. *)
let crash_and_reconnect () =
  with_state_dir @@ fun dir ->
  let p = program ~seed:31 ~threads:3 ~scale:150 in
  let rows = rows_of_program p in
  let expected = batch_report Snapshot.Addrcheck ~relaxed:false p in
  let h = hello ~tenant:"phoenix" ~threads:3 () in
  let cut = Array.length rows / 2 in
  checkb "fixture has enough epochs" true (cut >= 2);
  let socket = temp_socket () in
  let crashed_at =
    let stop = Atomic.make `Run in
    let cfg =
      Daemon.config ~socket ~state_dir:dir ~checkpoint_every:1 ()
    in
    let d =
      Domain.spawn (fun () -> Daemon.run ~stop:(fun () -> Atomic.get stop) cfg)
    in
    (* Stream the first half, wait until the daemon has provably fed
       (and therefore checkpointed) those epochs, then pull the plug
       without FIN, eviction or any goodbye. *)
    let fd = raw_connect socket in
    raw_send fd (Wire.Hello h);
    (match raw_read_frame fd with
    | Ok (Wire.Hello_ok { resumed_from }) -> checki "fresh" 0 resumed_from
    | other ->
      Alcotest.fail
        (match other with Error m -> m | Ok f -> Format.asprintf "%a" Wire.pp f));
    for l = 0 to cut - 1 do
      raw_send fd (Wire.Data (Client.chunk_of_row rows.(l)))
    done;
    wait_for (fun () ->
        match fed_of_status socket "phoenix" with
        | Some fed -> fed >= cut
        | None -> false);
    let fed = Option.get (fed_of_status socket "phoenix") in
    Atomic.set stop `Abort;
    Domain.join d;
    Unix.close fd;
    fed
  in
  (* The daemon is gone; its snapshot is the only survivor. *)
  checkb "snapshot survived the crash" true
    (Sys.file_exists
       (Snapshot.session_path ~dir ~tenant:"phoenix" Snapshot.Addrcheck));
  let stop = Atomic.make `Run in
  let cfg = Daemon.config ~socket ~state_dir:dir ~checkpoint_every:1 () in
  let d =
    Domain.spawn (fun () -> Daemon.run ~stop:(fun () -> Atomic.get stop) cfg)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop `Quit;
      Domain.join d;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      match Client.run_tenant ~socket ~hello:h rows with
      | Error m -> Alcotest.fail m
      | Ok (resumed_from, report) ->
        checki "resumed at the crash frontier" crashed_at resumed_from;
        checkb "resumed past the start" true (resumed_from > 0);
        checks "resumed == solo batch" expected report)

(* One tenant's corrupt stream must not perturb another tenant streaming
   concurrently — and must end with one stable ERROR frame. *)
let fault_containment () =
  with_daemon @@ fun socket _stop ->
  let p = program ~seed:41 ~threads:2 ~scale:100 in
  let expected = batch_report Snapshot.Initcheck ~relaxed:false p in
  let rows = rows_of_program p in
  let good =
    Domain.spawn (fun () ->
        Client.run_tenant ~socket
          ~hello:
            (hello ~tenant:"good" ~lifeguard:Snapshot.Initcheck ~threads:2 ())
          rows)
  in
  (* Bad tenant 1: valid HELLO, garbage DATA. *)
  let fd = raw_connect socket in
  raw_send fd (Wire.Hello (hello ~tenant:"bad1" ~threads:2 ()));
  (match raw_read_frame fd with
  | Ok (Wire.Hello_ok _) -> ()
  | _ -> Alcotest.fail "bad1 hello refused");
  raw_send fd (Wire.Data "garbage, not a trace");
  (match raw_read_frame fd with
  | Ok (Wire.Error m) -> checks "bad1 error" "bad trace chunk: bad magic" m
  | other ->
    Alcotest.fail
      (match other with Error m -> m | Ok f -> Format.asprintf "%a" Wire.pp f));
  Unix.close fd;
  (* Bad tenant 2: raw garbage where a frame should be. *)
  let fd2 = raw_connect socket in
  ignore
    (Unix.write fd2 (Bytes.of_string "\x00\x00\x00\x03xyz") 0 7);
  (match raw_read_frame fd2 with
  | Ok (Wire.Error m) ->
    checkb "bad2 stable error" true
      (Astring.String.is_prefix ~affix:"bad frame: " m)
  | other ->
    Alcotest.fail
      (match other with Error m -> m | Ok f -> Format.asprintf "%a" Wire.pp f));
  Unix.close fd2;
  match Domain.join good with
  | Ok (_, report) -> checks "good tenant unaffected" expected report
  | Error m -> Alcotest.fail ("good tenant: " ^ m)

let daemon_hello_rejects () =
  with_daemon @@ fun socket _stop ->
  let fd = raw_connect socket in
  raw_send fd (Wire.Hello (hello ~tenant:"dup" ~threads:2 ()));
  (match raw_read_frame fd with
  | Ok (Wire.Hello_ok _) -> ()
  | _ -> Alcotest.fail "hello refused");
  (* Same tenant, second connection while the first is attached. *)
  let fd2 = raw_connect socket in
  raw_send fd2 (Wire.Hello (hello ~tenant:"dup" ~threads:2 ()));
  (match raw_read_frame fd2 with
  | Ok (Wire.Error m) -> checks "already connected" "tenant dup already connected" m
  | _ -> Alcotest.fail "duplicate attach accepted");
  Unix.close fd2;
  (* Detach, then come back under a different lifeguard: the live
     session's config wins. *)
  Unix.close fd;
  wait_for (fun () ->
      match Client.status ~socket () with
      | Ok s -> (
        match Obs.Json.of_string s with
        | Ok (Obs.Json.Obj fields) -> (
          match List.assoc_opt "sessions" fields with
          | Some (Obs.Json.List [ Obs.Json.Obj card ]) ->
            List.assoc_opt "connected" card = Some (Obs.Json.Bool false)
          | _ -> false)
        | _ -> false)
      | Error _ -> false);
  let fd3 = raw_connect socket in
  raw_send fd3
    (Wire.Hello (hello ~tenant:"dup" ~lifeguard:Snapshot.Taintcheck ~threads:2 ()));
  (match raw_read_frame fd3 with
  | Ok (Wire.Error m) ->
    checks "live lifeguard mismatch"
      "tenant dup has a addrcheck session, not taintcheck" m
  | _ -> Alcotest.fail "lifeguard switch accepted");
  Unix.close fd3;
  (* DATA before HELLO. *)
  let fd4 = raw_connect socket in
  raw_send fd4 (Wire.Data "x");
  (match raw_read_frame fd4 with
  | Ok (Wire.Error m) -> checks "data before hello" "bad stream: DATA before HELLO" m
  | _ -> Alcotest.fail "DATA before HELLO accepted");
  Unix.close fd4

(* Oversubscription: a second tenant's HELLO evicts the detached first
   tenant to disk; the first then reconnects and resumes. *)
let oversubscription_eviction () =
  with_state_dir @@ fun dir ->
  with_daemon ~state_dir:dir
    ~policy:(Policy.v ~max_sessions:1 ~max_queued:64)
  @@ fun socket _stop ->
  let p = program ~seed:51 ~threads:2 ~scale:100 in
  let rows = rows_of_program p in
  let expected = batch_report Snapshot.Addrcheck ~relaxed:false p in
  let h = hello ~tenant:"first" ~threads:2 () in
  (* First tenant streams half and detaches. *)
  let fd = raw_connect socket in
  raw_send fd (Wire.Hello h);
  (match raw_read_frame fd with
  | Ok (Wire.Hello_ok _) -> ()
  | _ -> Alcotest.fail "first hello refused");
  let cut = Array.length rows / 2 in
  for l = 0 to cut - 1 do
    raw_send fd (Wire.Data (Client.chunk_of_row rows.(l)))
  done;
  wait_for (fun () ->
      match fed_of_status socket "first" with
      | Some fed -> fed >= cut
      | None -> false);
  Unix.close fd;
  (* Second tenant displaces it. *)
  let p2 = program ~seed:52 ~threads:2 ~scale:60 in
  (match
     Client.run_tenant ~socket
       ~hello:(hello ~tenant:"second" ~threads:2 ())
       (rows_of_program p2)
   with
  | Ok (_, report) ->
    checks "second tenant served"
      (batch_report Snapshot.Addrcheck ~relaxed:false p2)
      report
  | Error m -> Alcotest.fail ("second tenant: " ^ m));
  checkb "first evicted to disk" true
    (Sys.file_exists
       (Snapshot.session_path ~dir ~tenant:"first" Snapshot.Addrcheck));
  (* First reconnects: revived from the snapshot, resumes, matches. *)
  match Client.run_tenant ~socket ~hello:h rows with
  | Ok (resumed_from, report) ->
    checkb "resumed from the eviction snapshot" true (resumed_from > 0);
    checks "first == solo batch" expected report
  | Error m -> Alcotest.fail ("first reconnect: " ^ m)

(* A slice of the nightly frame-protocol campaign ([fuzz --serve]):
   mutated conversations must end in a report, one stable error frame or
   a clean hang-up, with the daemon standing and a control tenant still
   batch-identical afterwards. *)
let protocol_fuzz () =
  let config =
    { Qa.Serve_fuzz.default_config with iterations = 40; seed = 20260807 }
  in
  let o = Qa.Serve_fuzz.run ~config () in
  (match o.Qa.Serve_fuzz.failure with
  | Some m -> Alcotest.fail m
  | None -> ());
  checki "campaign completed" 40 o.Qa.Serve_fuzz.iterations

let status_surface () =
  with_daemon @@ fun socket _stop ->
  let p = program ~seed:61 ~threads:2 ~scale:60 in
  (match
     Client.run_tenant ~socket
       ~hello:(hello ~tenant:"st" ~threads:2 ())
       (rows_of_program p)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  match Client.status ~socket () with
  | Error m -> Alcotest.fail m
  | Ok s -> (
    match Obs.Json.of_string s with
    | Error m -> Alcotest.fail ("status is not JSON: " ^ m)
    | Ok (Obs.Json.Obj fields) ->
      checkb "live" true (List.mem_assoc "live" fields);
      checkb "sessions" true (List.mem_assoc "sessions" fields);
      (match List.assoc_opt "prometheus" fields with
      | Some (Obs.Json.String prom) ->
        checkb "prometheus text" true
          (Astring.String.is_infix ~affix:"# TYPE" prom)
      | _ -> Alcotest.fail "no prometheus field")
    | Ok _ -> Alcotest.fail "status is not an object")

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "frames round-trip" `Quick wire_roundtrip;
          Alcotest.test_case "one-byte-at-a-time reassembly" `Quick
            wire_torn_delivery;
          Alcotest.test_case "malformed bodies rejected stably" `Quick
            wire_rejects;
          Alcotest.test_case "oversized frames rejected and sticky" `Quick
            wire_oversized_sticky;
          Testutil.qtest ~count:300 "round-trip under arbitrary chunking"
            arb_frames_and_cuts prop_chunked_roundtrip;
        ] );
      ( "policy",
        [
          Alcotest.test_case "backpressure threshold" `Quick policy_throttle;
          Alcotest.test_case "eviction choice" `Quick policy_eviction;
        ] );
      ( "table",
        [ Alcotest.test_case "round-robin rotation" `Quick table_rotation ] );
      ( "session",
        [
          Alcotest.test_case "hello rejections" `Quick session_create_rejects;
          Alcotest.test_case "streamed == batch for every lifeguard" `Slow
            session_matches_batch;
          Alcotest.test_case "stream rejections" `Quick session_stream_rejects;
          Alcotest.test_case "evict + revive == uninterrupted" `Slow
            session_evict_revive;
          Alcotest.test_case "snapshot rejection catalogue" `Quick
            session_snapshot_rejects;
        ] );
      ( "crash-sim",
        [
          Alcotest.test_case "session-keyed crash recovery" `Slow
            crash_sim_session;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "8 concurrent tenants == solo batch" `Slow
            eight_tenant_battery;
          Alcotest.test_case "crash at a sealed frontier + reconnect" `Slow
            crash_and_reconnect;
          Alcotest.test_case "per-session fault containment" `Quick
            fault_containment;
          Alcotest.test_case "hello rejections over the wire" `Quick
            daemon_hello_rejects;
          Alcotest.test_case "oversubscription eviction + revival" `Slow
            oversubscription_eviction;
          Alcotest.test_case "status endpoint" `Quick status_surface;
          Alcotest.test_case "frame-protocol fuzz slice" `Slow protocol_fuzz;
        ] );
    ]
