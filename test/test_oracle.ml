(* Soundness regression suite: the zero-false-negative theorems checked
   against the ground-truth ordering oracle over random small programs.

   For each lifeguard the oracle enumerates (or samples, past [cap]) the
   valid orderings of a random program, runs the sequential checker on
   each, and verifies the butterfly checker flagged a superset.  Run for
   the Sequential model and a relaxed one, and — for the lifeguards that
   grew a pooled driver — on the pooled streaming scheduler too, so the
   theorems are regression-checked against the parallel deployment. *)

module Oracle = Lifeguards.Oracle

(* Programs with allocation traffic, so AddrCheck has state to race on. *)
let gen_mem_instr ~n_addrs : Tracing.Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = int_bound (n_addrs - 1) in
  frequency
    [
      (3, map (fun a -> Tracing.Instr.Malloc { base = a; size = 1 }) addr);
      (3, map (fun a -> Tracing.Instr.Free { base = a; size = 1 }) addr);
      (3, map (fun x -> Tracing.Instr.Assign_const x) addr);
      (2, map (fun a -> Tracing.Instr.Read a) addr);
      (1, return Tracing.Instr.Nop);
    ]

let gen_program ~instr =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 3 in
  let thread = list_size (int_range 0 6) instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_program ~instr =
  QCheck.make ~print:Tracing.Trace_codec.encode (gen_program ~instr)

let arb_mem = arb_program ~instr:(gen_mem_instr ~n_addrs:3)
let arb_df = arb_program ~instr:(Testutil.gen_df_instr ~n_addrs:3)

let sound name (v : Oracle.verdict) =
  if not v.sound then
    Alcotest.failf "%s: %d orderings (exhaustive=%b), missed:\n  %s" name
      v.orderings_checked v.exhaustive
      (String.concat "\n  " v.missed);
  v.orderings_checked > 0

let cap = 1_500
let samples = 60

let addrcheck_cases =
  List.map
    (fun (name, model, domains) ->
      Testutil.qtest ~count:120
        (Printf.sprintf "addrcheck zero false negatives (%s)" name)
        arb_mem
        (fun p ->
          sound name
            (Oracle.addrcheck_zero_false_negatives ~model ~cap ~samples
               ?domains p)))
    [
      ("sequential", Memmodel.Consistency.Sequential, None);
      ("relaxed", Memmodel.Consistency.Relaxed, None);
      ("sequential, 2 domains", Memmodel.Consistency.Sequential, Some 2);
    ]

let initcheck_cases =
  List.map
    (fun (name, model, domains) ->
      Testutil.qtest ~count:120
        (Printf.sprintf "initcheck zero false negatives (%s)" name)
        arb_df
        (fun p ->
          sound name
            (Oracle.initcheck_zero_false_negatives ~model ~cap ~samples
               ?domains p)))
    [
      ("sequential", Memmodel.Consistency.Sequential, None);
      ("relaxed", Memmodel.Consistency.Relaxed, None);
      ("sequential, 2 domains", Memmodel.Consistency.Sequential, Some 2);
    ]

(* Programs with real taint traffic (sources, sanitizers, sinks), so the
   theorem is checked on runs where the sequential lifeguard actually
   flags something; [arb_df]'s write-only mix keeps covering the
   vacuous side. *)
let arb_taint = arb_program ~instr:(Testutil.gen_taint_instr ~n_addrs:3)

let taintcheck_cases =
  List.concat_map
    (fun (name, model, sequential, domains) ->
      List.map
        (fun (flavour, arb) ->
          Testutil.qtest ~count:100
            (Printf.sprintf "taintcheck zero false negatives (%s, %s)" name
               flavour)
            arb
            (fun p ->
              sound name
                (Oracle.taintcheck_zero_false_negatives ~model ~cap ~samples
                   ~sequential ?domains p)))
        [ ("dataflow mix", arb_df); ("taint mix", arb_taint) ])
    [
      ("sequential", Memmodel.Consistency.Sequential, true, None);
      ("relaxed", Memmodel.Consistency.Relaxed, false, None);
      ("sequential, 2 domains", Memmodel.Consistency.Sequential, true, Some 2);
    ]

let () =
  Alcotest.run "oracle"
    [
      ("addrcheck", addrcheck_cases);
      ("initcheck", initcheck_cases);
      ("taintcheck", taintcheck_cases);
    ]
