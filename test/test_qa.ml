(* The QA subsystem tested on itself.

   Three claims gate every future driver change on this repo:

   1. The differential battery is *quiet on main*: generated grids pass
      all driver × domains × memory-model combinations and the
      valid-ordering oracle (mini versions here; the 200-iteration runs
      live in cram/CI).
   2. The battery is *loud on a real bug*: a deliberately unsound
      TaintCheck meet (test-only hook) is caught within 200 iterations at
      a pinned seed, and the counterexample shrinks to a grid no larger
      than 3 threads x 3 epochs that still reproduces the unsoundness.
   3. The shrinker keeps its invariants: the result still fails, is never
      larger than the input, and round-trips through Trace_codec. *)

module Grid = Qa.Grid
module Gen = Qa.Grid_gen
module Diff = Qa.Differential
module Engine = Qa.Engine

let mutation_seed = 42
(* Pinned: with this seed the broken binop meet is caught well inside the
   200-iteration budget (see the assertion below, which also pins the
   budget). Bump deliberately if the generator's distribution changes. *)

let contains pred (g : Grid.t) =
  Array.exists (fun bs -> List.exists (Array.exists pred) bs) g

let is_sink (i : Tracing.Instr.t) =
  match i with Jump_via _ | Syscall_arg _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Generator and grid plumbing.                                         *)

let gen_roundtrip =
  Alcotest.test_case "generated grids round-trip through Trace_codec" `Quick
    (fun () ->
      let rng = Random.State.make [| Testutil.qcheck_seed; 0x9a |] in
      List.iter
        (fun profile ->
          for _ = 1 to 50 do
            let g = Gen.grid profile rng in
            match Grid.decode (Grid.encode g) with
            | Error m -> Alcotest.failf "codec rejected a generated grid: %s" m
            | Ok g' ->
              if not (Grid.equal g g') then
                Alcotest.failf "round-trip changed the grid:@.%a@.vs@.%a"
                  Grid.pp g Grid.pp g'
          done)
        [ Gen.Alloc; Gen.Init; Gen.Taint; Gen.Mixed ])

let gen_deterministic =
  Alcotest.test_case "same seed, same campaign" `Quick (fun () ->
      let campaign () =
        let rng = Random.State.make [| 11; 0x9a5eed |] in
        List.init 30 (fun _ -> Gen.grid Gen.Taint rng)
      in
      Alcotest.(check bool) "identical grids" true (campaign () = campaign ()))

(* ------------------------------------------------------------------ *)
(* Quiet on main: a mini fuzzing campaign per lifeguard finds nothing.   *)

let clean_campaign lifeguard =
  Alcotest.test_case
    (Printf.sprintf "fuzz %s: no mismatch on main"
       (Diff.lifeguard_to_string lifeguard))
    `Quick
    (fun () ->
      let config =
        { Engine.default_config with iterations = 30; seed = Testutil.qcheck_seed }
      in
      let outcome = Engine.run ~config lifeguard in
      Alcotest.(check int) "all grids checked" 30 outcome.grids;
      match outcome.counterexample with
      | None -> ()
      | Some cx ->
        Testutil.report_seed_once ();
        Alcotest.failf "unexpected counterexample:@.%a@.%a" Grid.pp cx.grid
          (Format.pp_print_list Diff.pp_mismatch)
          cx.mismatches)

(* ------------------------------------------------------------------ *)
(* Loud on a bug: the mutation smoke test (wrong TaintCheck meet).       *)

let with_broken_meet f =
  Lifeguards.Taintcheck.Testing.break_binop_meet := true;
  Fun.protect
    ~finally:(fun () ->
      Lifeguards.Taintcheck.Testing.break_binop_meet := false)
    f

let mutation_caught =
  Alcotest.test_case
    "broken binop meet is caught and shrunk within 200 iterations" `Quick
    (fun () ->
      with_broken_meet (fun () ->
          let config =
            {
              Engine.default_config with
              iterations = 200;
              seed = mutation_seed;
              shrink = true;
            }
          in
          let outcome = Engine.run ~config Diff.Taintcheck in
          match outcome.counterexample with
          | None ->
            Alcotest.fail
              "the fuzz engine missed an unsound meet in 200 iterations"
          | Some cx ->
            Alcotest.(check bool) "mismatches recorded" true (cx.mismatches <> []);
            let shrunk =
              match cx.shrunk with
              | Some s -> s
              | None -> Alcotest.fail "shrinking was requested but not done"
            in
            (* The acceptance bound: a replayable repro no larger than a
               3-thread x 3-epoch window. *)
            Alcotest.(check bool)
              (Format.asprintf "repro <= 3 threads x 3 epochs:@.%a" Grid.pp
                 shrunk)
              true
              (Grid.threads shrunk <= 3 && Grid.num_epochs shrunk <= 3);
            Alcotest.(check bool) "shrunk is not larger" true
              (Grid.instr_count shrunk <= Grid.instr_count cx.grid);
            (* The shrunk repro still demonstrates the bug, and does so
               after a serialization round-trip (replay from file). *)
            let p = Grid.to_program shrunk in
            let replayed =
              Engine.check_program Diff.Taintcheck
                (Tracing.Trace_codec.roundtrip_exn p)
            in
            Alcotest.(check bool) "repro replays from its trace form" true
              (replayed <> [])))

let mutation_metrics =
  Alcotest.test_case "qa.* counters track the campaign" `Quick (fun () ->
      let sink = Obs.Sink.memory () in
      with_broken_meet (fun () ->
          Obs.with_sink sink (fun () ->
              let config =
                {
                  Engine.default_config with
                  iterations = 200;
                  seed = mutation_seed;
                  shrink = true;
                }
              in
              ignore (Engine.run ~config Diff.Taintcheck)));
      let snap = Obs.Sink.snapshot sink in
      let labels = [ ("lifeguard", "taintcheck") ] in
      let grids = Obs.Snapshot.counter ~labels snap "qa.grids" in
      Alcotest.(check bool) "stopped at the first counterexample" true
        (grids >= 1 && grids <= 200);
      Alcotest.(check bool) "mismatches counted" true
        (Obs.Snapshot.counter ~labels snap "qa.mismatches" >= 1);
      Alcotest.(check bool) "shrink steps counted" true
        (Obs.Snapshot.counter snap "qa.shrink_steps" >= 1))

(* ------------------------------------------------------------------ *)
(* Shrinker invariants, property-tested with a synthetic predicate.      *)

let taint_grid max_block =
  Testutil.arb_grid ~n_addrs:3 ~min_threads:1 ~max_threads:3 ~max_epochs:3
    ~max_block ~uneven:true
    ~instr_gen:(Testutil.gen_taint_instr ~n_addrs:3)
    ()

let shrinker_invariants =
  Testutil.qtest ~count:150 "shrunk grid still fails, is smaller, round-trips"
    (taint_grid 3)
    (fun g ->
      let fails g' = contains is_sink g' in
      QCheck.assume (fails g);
      let shrunk, steps = Qa.Shrinker.shrink ~fails g in
      fails shrunk
      && Grid.instr_count shrunk <= Grid.instr_count g
      && Grid.weight shrunk <= Grid.weight g
      && steps >= 0
      && Grid.threads shrunk >= 1
      &&
      match Grid.decode (Grid.encode shrunk) with
      | Ok g' -> Grid.equal g' shrunk
      | Error _ -> false)

let shrinker_minimizes =
  Testutil.qtest ~count:100 "greedy shrink reaches the 1-instruction witness"
    (taint_grid 3)
    (fun g ->
      let fails g' = contains is_sink g' in
      QCheck.assume (fails g);
      let shrunk, _ = Qa.Shrinker.shrink ~fails g in
      (* For a predicate needing one sink, greedy minimization must reach
         a single-thread, single-epoch, single-instruction grid with the
         operand lowered to 0. *)
      Grid.equal shrunk [| [ [| Tracing.Instr.Jump_via 0 |] ] |]
      || Grid.equal shrunk [| [ [| Tracing.Instr.Syscall_arg 0 |] ] |])

let shrinker_rejects_passing_input =
  Alcotest.test_case "shrink of a non-failing grid is an error" `Quick
    (fun () ->
      match Qa.Shrinker.shrink ~fails:(fun _ -> false) [| [ [| Tracing.Instr.Nop |] ] |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let () =
  Alcotest.run "qa"
    [
      ("grids", [ gen_roundtrip; gen_deterministic ]);
      ("quiet-on-main", List.map clean_campaign Diff.all_lifeguards);
      ("mutation", [ mutation_caught; mutation_metrics ]);
      ( "shrinker",
        [ shrinker_invariants; shrinker_minimizes; shrinker_rejects_passing_input ] );
    ]
