The serve/client pair must keep the repo's core promise across a
socket: a report streamed through the daemon is byte-identical to the
batch subcommand's --json line, and every way a session can be refused
is a stable, parseable error.

Generate a small deterministic trace and boot a daemon over it.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 60 --seed 3 > t.trace
  $ ../bin/butterfly_cli.exe serve --socket d.sock --state-dir state \
  >   --checkpoint-every 2 > daemon.log 2>&1 & DPID=$!
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

A streamed report equals the batch one, for a functional and a flat
session alike (the backend is invisible in the output).

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --json > addr.batch
  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant alpha -e 8 > addr.serve
  $ cmp addr.batch addr.serve
  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant beta --state flat -e 8 > addr.flat
  $ cmp addr.batch addr.flat

Shredding every socket write to 13 bytes changes nothing: framing is
the wire protocol's job, not the transport's.

  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant gamma --chunk-bytes 13 -e 8 > addr.torn
  $ cmp addr.batch addr.torn

The other lifeguards ride the same session machinery.

  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 --json > race.batch
  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant delta --lifeguard racecheck -e 8 > race.serve
  $ cmp race.batch race.serve

STATUS reports the daemon's view: live connections, one card per
session, and the Prometheus registry.

  $ ../bin/butterfly_cli.exe client --socket d.sock --status > status.json
  $ grep -c '"live"' status.json
  1
  $ grep -q '"sessions"' status.json
  $ grep -q '# TYPE' status.json

Rejections are single stable error lines.  A malformed tenant id:

  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant 'no good' -e 8
  error: bad hello: invalid tenant id "no good"
  [1]

A parallel driver against a daemon that was started without --domains:

  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant eps --driver pooled -e 8
  error: bad hello: driver needs a daemon started with --domains
  [1]

Reconnecting a finished tenant under a different lifeguard collides
with its session on disk:

  $ ../bin/butterfly_cli.exe client t.trace --socket d.sock \
  >   --tenant alpha --lifeguard taintcheck -e 8
  error: tenant alpha has a addrcheck session on disk, not taintcheck
  [1]

No daemon, no session:

  $ ../bin/butterfly_cli.exe client t.trace --socket absent.sock \
  >   --tenant zeta -e 8 2>&1 | head -1
  error: cannot connect to absent.sock: No such file or directory

The daemon exits cleanly on SIGTERM, evicting live sessions to the
state dir on the way out.

  $ kill $DPID && wait $DPID
  $ ls state | sort
  alpha.addrcheck.snap
  beta.addrcheck.snap
  delta.racecheck.snap
  gamma.addrcheck.snap

--socket is mandatory in both subcommands.

  $ ../bin/butterfly_cli.exe serve 2>&1 | head -1
  butterfly_cli: required option --socket is missing
  $ ../bin/butterfly_cli.exe client t.trace 2>&1 | head -1
  butterfly_cli: required option --socket is missing
