(* Checkpoint/restore correctness.

   Three layers, matching the subsystem's trust chain:

   - the binary envelope ([Tracing.Binio]): round-trips, and rejects
     truncation, version skew and every single-bit flip deterministically;
   - the resumable lifeguard engines: for every grid and EVERY epoch
     boundary, checkpoint + restore + continue produces a report
     fingerprint byte-identical to the uninterrupted run, across
     sequential and pooled drivers and every TaintCheck variant;
   - the scheduler itself ([Scheduler.Make(P).encode_state]): same
     resume-equivalence at the raw event level, for a May and a Must
     problem, including cuts in the middle of a block. *)

module IS = Butterfly.Interval_set
module Binio = Tracing.Binio
module AC = Lifeguards.Addrcheck
module IC = Lifeguards.Initcheck
module TC = Lifeguards.Taintcheck

let check = Alcotest.check
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Binio primitives and the framed envelope.                           *)

let roundtrip_ints () =
  let w = Binio.W.create () in
  let uns = [ 0; 1; 127; 128; 300; 0xffff; max_int ] in
  let sgn = [ 0; -1; 1; -64; 63; -(max_int / 2); max_int / 2 ] in
  List.iter (Binio.W.varint w) uns;
  List.iter (Binio.W.sint w) sgn;
  Binio.W.string w "hello";
  Binio.W.list w Binio.W.bool [ true; false; true ];
  let r = Binio.R.of_string (Binio.W.contents w) in
  List.iter (fun n -> check Alcotest.int "varint" n (Binio.R.varint r)) uns;
  List.iter (fun n -> check Alcotest.int "sint" n (Binio.R.sint r)) sgn;
  checks "string" "hello" (Binio.R.string r);
  check
    Alcotest.(list bool)
    "list" [ true; false; true ]
    (Binio.R.list r Binio.R.bool);
  Binio.R.expect_end r

let crc_vector () =
  (* The standard CRC-32 check value. *)
  check Alcotest.int "crc32(123456789)" 0xcbf43926 (Binio.crc32 "123456789")

let truncated_reader () =
  let r = Binio.R.of_string "" in
  (match Binio.R.u8 r with
  | _ -> Alcotest.fail "u8 on empty input must raise"
  | exception Binio.R.Corrupt _ -> ());
  let w = Binio.W.create () in
  Binio.W.string w "abc";
  let s = Binio.W.contents w in
  let r = Binio.R.of_string (String.sub s 0 (String.length s - 1)) in
  match Binio.R.string r with
  | _ -> Alcotest.fail "truncated string must raise"
  | exception Binio.R.Corrupt _ -> ()

let frame_roundtrip () =
  let framed = Binio.frame ~magic:"MAGI" ~version:7 "payload bytes" in
  match Binio.unframe ~magic:"MAGI" ~version:7 framed with
  | Ok p -> checks "payload" "payload bytes" p
  | Error m -> Alcotest.failf "unframe: %s" m

let frame_rejections () =
  let framed = Binio.frame ~magic:"MAGI" ~version:7 "payload" in
  let expect_err label input expected =
    match Binio.unframe ~magic:"MAGI" ~version:7 input with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error m -> checks label expected m
  in
  expect_err "bad magic" ("XXXX" ^ String.sub framed 4 (String.length framed - 4))
    "bad magic";
  expect_err "truncated" (String.sub framed 0 6) "truncated envelope";
  let skewed = Bytes.of_string framed in
  Bytes.set skewed 4 (Char.chr 8);
  (match Binio.unframe ~magic:"MAGI" ~version:7 (Bytes.to_string skewed) with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error m -> checks "version skew" "unsupported format version 8 (expected 7)" m);
  (* Every single-bit flip (outside the version byte, reported as skew)
     must be caught by the CRC. *)
  for byte = 0 to String.length framed - 1 do
    if byte <> 4 then
      for bit = 0 to 7 do
        let b = Bytes.of_string framed in
        Bytes.set b byte (Char.chr (Char.code framed.[byte] lxor (1 lsl bit)));
        match Binio.unframe ~magic:"MAGI" ~version:7 (Bytes.to_string b) with
        | Ok _ -> Alcotest.failf "bit flip at %d.%d accepted" byte bit
        | Error _ -> ()
      done
  done

(* ------------------------------------------------------------------ *)
(* Trace codec: versioned framing, legacy decode.                      *)

let gen_trace seed =
  let rng = Random.State.make [| 0x7ace; seed |] in
  Qa.Grid.to_program (Qa.Grid_gen.grid Qa.Grid_gen.Mixed rng)

let codec_roundtrip () =
  for seed = 0 to 19 do
    let p = gen_trace seed in
    let bin = Tracing.Trace_codec.encode_binary p in
    match Tracing.Trace_codec.decode_binary bin with
    | Error m -> Alcotest.failf "decode: %s" m
    | Ok p' ->
      checks "binary round-trip" (Tracing.Trace_codec.encode p)
        (Tracing.Trace_codec.encode p')
  done

let codec_legacy_decode () =
  (* A legacy trace is the same payload behind the "BFLY1" magic, with no
     version byte and no checksum; the decoder must still read it. *)
  for seed = 0 to 9 do
    let p = gen_trace seed in
    let bin = Tracing.Trace_codec.encode_binary p in
    let payload =
      (* strip "BFLY" + version prefix and the 4-byte CRC trailer *)
      String.sub bin 5 (String.length bin - 9)
    in
    match Tracing.Trace_codec.decode_binary ("BFLY1" ^ payload) with
    | Error m -> Alcotest.failf "legacy decode: %s" m
    | Ok p' ->
      checks "legacy round-trip" (Tracing.Trace_codec.encode p)
        (Tracing.Trace_codec.encode p')
  done

let codec_rejects_corruption () =
  let p = gen_trace 42 in
  let bin = Tracing.Trace_codec.encode_binary p in
  (* Version skew: stable error message. *)
  let skewed = Bytes.of_string bin in
  Bytes.set skewed 4 '\x63';
  (match Tracing.Trace_codec.decode_binary (Bytes.to_string skewed) with
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error m ->
    checks "version skew" "unsupported format version 99 (expected 2)" m);
  (* Any single bit flip outside the version byte is rejected. *)
  for byte = 0 to String.length bin - 1 do
    if byte <> 4 then (
      let b = Bytes.of_string bin in
      Bytes.set b byte (Char.chr (Char.code bin.[byte] lxor 1));
      match Tracing.Trace_codec.decode_binary (Bytes.to_string b) with
      | Ok _ -> Alcotest.failf "bit flip at byte %d accepted" byte
      | Error _ -> ())
  done;
  (* Truncations are rejected (never misparsed, never an exception). *)
  for len = 0 to String.length bin - 1 do
    match Tracing.Trace_codec.decode_binary (String.sub bin 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d accepted" len
    | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Resume-from-every-epoch equivalence, per lifeguard.                 *)

let rows_of_epochs epochs =
  let threads = Butterfly.Epochs.threads epochs in
  Array.init (Butterfly.Epochs.num_epochs epochs) (fun epoch ->
      Array.init threads (fun tid ->
          (Butterfly.Epochs.block epochs ~epoch ~tid).Butterfly.Block.instrs))

(* One lifeguard driven through a cut: feed rows [0, cut), serialize,
   revive, feed the rest, finish.  Also asserts the snapshot is stable:
   re-encoding the revived state reproduces it byte for byte. *)
type engine = {
  label : string;
  profile : Qa.Grid_gen.profile;
  batch_fp : ?pool:Butterfly.Domain_pool.t -> Butterfly.Epochs.t -> string;
  resumed_fp :
    ?pool:Butterfly.Domain_pool.t ->
    cut:int ->
    threads:int ->
    Tracing.Instr.t array array array ->
    string;
}

let resumed_via (type s) ~(create : threads:int -> unit -> s)
    ~(feed : s -> Tracing.Instr.t array array -> unit) ~(encode : s -> string)
    ~(decode : string -> (s, string) result) ~(finish : s -> 'r)
    ~(fp : 'r -> string) ~cut ~threads rows =
  let st = create ~threads () in
  Array.iteri (fun i row -> if i < cut then feed st row) rows;
  let payload = encode st in
  let st' =
    match decode payload with
    | Ok st' -> st'
    | Error m -> Alcotest.failf "decode after %d rows: %s" cut m
  in
  checks "snapshot stability" payload (encode st');
  Array.iteri (fun i row -> if i >= cut then feed st' row) rows;
  fp (finish st')

let addrcheck_engine =
  {
    label = "addrcheck";
    profile = Qa.Grid_gen.Alloc;
    batch_fp = (fun ?pool epochs -> AC.fingerprint (AC.run ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () -> AC.Resumable.create ?pool ~threads ())
          ~feed:AC.Resumable.feed_epoch ~encode:AC.Resumable.encode
          ~decode:(AC.Resumable.decode ?pool)
          ~finish:AC.Resumable.finish ~fp:AC.fingerprint ~cut ~threads rows);
  }

let initcheck_engine =
  {
    label = "initcheck";
    profile = Qa.Grid_gen.Init;
    batch_fp = (fun ?pool epochs -> IC.fingerprint (IC.run ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () -> IC.Resumable.create ?pool ~threads ())
          ~feed:IC.Resumable.feed_epoch ~encode:IC.Resumable.encode
          ~decode:(IC.Resumable.decode ?pool)
          ~finish:IC.Resumable.finish ~fp:IC.fingerprint ~cut ~threads rows);
  }

let taintcheck_engine ~sequential ~two_phase vlabel =
  {
    label = Printf.sprintf "taintcheck[%s]" vlabel;
    profile = Qa.Grid_gen.Taint;
    batch_fp =
      (fun ?pool epochs ->
        TC.fingerprint (TC.run ~sequential ~two_phase ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () ->
            TC.Resumable.create ?pool ~sequential ~two_phase ~threads ())
          ~feed:TC.Resumable.feed_epoch ~encode:TC.Resumable.encode
          ~decode:(TC.Resumable.decode ?pool)
          ~finish:TC.Resumable.finish ~fp:TC.fingerprint ~cut ~threads rows);
  }

let racecheck_engine =
  let module RC = Lifeguards.Racecheck in
  {
    label = "racecheck";
    profile = Qa.Grid_gen.Racy;
    batch_fp = (fun ?pool epochs -> RC.fingerprint (RC.run ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () -> RC.Resumable.create ?pool ~threads ())
          ~feed:RC.Resumable.feed_epoch ~encode:RC.Resumable.encode
          ~decode:(RC.Resumable.decode ?pool)
          ~finish:RC.Resumable.finish ~fp:RC.fingerprint ~cut ~threads rows);
  }

let engines =
  [
    addrcheck_engine;
    initcheck_engine;
    racecheck_engine;
    taintcheck_engine ~sequential:true ~two_phase:true "sc,two-phase";
    taintcheck_engine ~sequential:false ~two_phase:true "relaxed,two-phase";
    taintcheck_engine ~sequential:true ~two_phase:false "sc,one-phase";
  ]

(* Flat-state twins: the arena backend on both sides of the checkpoint.
   Snapshots serialize fact sets as canonical interval lists, so the
   payloads are backend-portable — the cross-backend battery below cuts
   under one backend and revives under the other. *)
let addrcheck_flat_engine =
  {
    label = "addrcheck[flat]";
    profile = Qa.Grid_gen.Alloc;
    batch_fp =
      (fun ?pool epochs -> AC.fingerprint (AC.run ~state:`Flat ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () ->
            AC.Resumable.create ?pool ~state:`Flat ~threads ())
          ~feed:AC.Resumable.feed_epoch ~encode:AC.Resumable.encode
          ~decode:(AC.Resumable.decode ?pool ~state:`Flat)
          ~finish:AC.Resumable.finish ~fp:AC.fingerprint ~cut ~threads rows);
  }

let initcheck_flat_engine =
  {
    label = "initcheck[flat]";
    profile = Qa.Grid_gen.Init;
    batch_fp =
      (fun ?pool epochs -> IC.fingerprint (IC.run ~state:`Flat ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () ->
            IC.Resumable.create ?pool ~state:`Flat ~threads ())
          ~feed:IC.Resumable.feed_epoch ~encode:IC.Resumable.encode
          ~decode:(IC.Resumable.decode ?pool ~state:`Flat)
          ~finish:IC.Resumable.finish ~fp:IC.fingerprint ~cut ~threads rows);
  }

let taintcheck_flat_engine =
  {
    label = "taintcheck[flat]";
    profile = Qa.Grid_gen.Taint;
    batch_fp =
      (fun ?pool epochs -> TC.fingerprint (TC.run ~state:`Flat ?pool epochs));
    resumed_fp =
      (fun ?pool ~cut ~threads rows ->
        resumed_via
          ~create:(fun ~threads () ->
            TC.Resumable.create ?pool ~state:`Flat ~threads ())
          ~feed:TC.Resumable.feed_epoch ~encode:TC.Resumable.encode
          ~decode:(TC.Resumable.decode ?pool ~state:`Flat)
          ~finish:TC.Resumable.finish ~fp:TC.fingerprint ~cut ~threads rows);
  }

let flat_engines =
  [ addrcheck_flat_engine; initcheck_flat_engine; taintcheck_flat_engine ]

(* Cut under [from]-backend, revive under [into]-backend: the finished
   report must still match the uninterrupted functional batch run. *)
let cross_backend_case (type s)
    ~(create :
       state:[ `Functional | `Flat ] -> threads:int -> unit -> s)
    ~(feed : s -> Tracing.Instr.t array array -> unit)
    ~(encode : s -> string)
    ~(decode :
       state:[ `Functional | `Flat ] -> string -> (s, string) result)
    ~(finish : s -> 'r) ~(fp : 'r -> string) ~from ~into ~cut ~threads rows =
  let st = create ~state:from ~threads () in
  Array.iteri (fun i row -> if i < cut then feed st row) rows;
  let st' =
    match decode ~state:into (encode st) with
    | Ok st' -> st'
    | Error m -> Alcotest.failf "cross-backend decode at %d: %s" cut m
  in
  Array.iteri (fun i row -> if i >= cut then feed st' row) rows;
  fp (finish st')

let cross_backend_battery () =
  let directions = [ (`Functional, `Flat); (`Flat, `Functional) ] in
  let cases =
    [
      ( "addrcheck",
        Qa.Grid_gen.Alloc,
        fun epochs ~from ~into ~cut ~threads rows label ->
          checks label
            (AC.fingerprint (AC.run epochs))
            (cross_backend_case
               ~create:(fun ~state ~threads () ->
                 AC.Resumable.create ~state ~threads ())
               ~feed:AC.Resumable.feed_epoch ~encode:AC.Resumable.encode
               ~decode:(fun ~state p -> AC.Resumable.decode ~state p)
               ~finish:AC.Resumable.finish ~fp:AC.fingerprint ~from ~into
               ~cut ~threads rows) );
      ( "initcheck",
        Qa.Grid_gen.Init,
        fun epochs ~from ~into ~cut ~threads rows label ->
          checks label
            (IC.fingerprint (IC.run epochs))
            (cross_backend_case
               ~create:(fun ~state ~threads () ->
                 IC.Resumable.create ~state ~threads ())
               ~feed:IC.Resumable.feed_epoch ~encode:IC.Resumable.encode
               ~decode:(fun ~state p -> IC.Resumable.decode ~state p)
               ~finish:IC.Resumable.finish ~fp:IC.fingerprint ~from ~into
               ~cut ~threads rows) );
      ( "taintcheck",
        Qa.Grid_gen.Taint,
        fun epochs ~from ~into ~cut ~threads rows label ->
          checks label
            (TC.fingerprint (TC.run epochs))
            (cross_backend_case
               ~create:(fun ~state ~threads () ->
                 TC.Resumable.create ~state ~threads ())
               ~feed:TC.Resumable.feed_epoch ~encode:TC.Resumable.encode
               ~decode:(fun ~state p -> TC.Resumable.decode ~state p)
               ~finish:TC.Resumable.finish ~fp:TC.fingerprint ~from ~into
               ~cut ~threads rows) );
    ]
  in
  let rng = Random.State.make [| 0xeb11; 23 |] in
  for g = 1 to 12 do
    List.iter
      (fun (name, profile, run_case) ->
        let grid = Qa.Grid_gen.grid profile rng in
        let epochs = Qa.Grid.epochs grid in
        let rows = rows_of_epochs epochs in
        let threads = Butterfly.Epochs.threads epochs in
        List.iter
          (fun (from, into) ->
            for cut = 0 to Array.length rows do
              run_case epochs ~from ~into ~cut ~threads rows
                (Printf.sprintf "%s grid #%d cut %d %s->%s" name g cut
                   (if from = `Flat then "flat" else "functional")
                   (if into = `Flat then "flat" else "functional"))
            done)
          directions)
      cases
  done

(* The deterministic battery: [n_grids] seeded grids per engine, resumed
   from EVERY epoch boundary (including 0 and num_epochs). *)
let every_epoch_battery e ~n_grids () =
  let rng = Random.State.make [| 0xeb0c; 17 |] in
  for g = 1 to n_grids do
    let grid = Qa.Grid_gen.grid e.profile rng in
    let epochs = Qa.Grid.epochs grid in
    let rows = rows_of_epochs epochs in
    let threads = Butterfly.Epochs.threads epochs in
    let expected = e.batch_fp epochs in
    for cut = 0 to Array.length rows do
      let got = e.resumed_fp ~cut ~threads rows in
      if not (String.equal expected got) then
        Alcotest.failf
          "%s grid #%d resumed at epoch %d/%d diverged:\n%s\n%s\nvs\n%s"
          e.label g cut (Array.length rows)
          (Format.asprintf "%a" Qa.Grid.pp grid)
          expected got
    done
  done

(* Pooled drivers: the same equivalence with worker pools on both sides
   of the cut, across 1/2/8-domain pools (capped by the machine). *)
let pooled_battery e ~n_grids () =
  List.iter
    (fun domains ->
      Butterfly.Domain_pool.with_pool ~name:"recovery-test" ~domains
        (fun pool ->
          let rng = Random.State.make [| 0xeb0d; domains |] in
          for g = 1 to n_grids do
            let grid = Qa.Grid_gen.grid e.profile rng in
            let epochs = Qa.Grid.epochs grid in
            let rows = rows_of_epochs epochs in
            let threads = Butterfly.Epochs.threads epochs in
            let expected = e.batch_fp ~pool epochs in
            let sequential = e.batch_fp epochs in
            checks
              (Printf.sprintf "%s pooled(%d) == sequential" e.label domains)
              sequential expected;
            let cut = g * 7 mod (Array.length rows + 1) in
            let got = e.resumed_fp ~pool ~cut ~threads rows in
            checks
              (Printf.sprintf "%s pooled(%d) resumed at %d" e.label domains cut)
              expected got
          done))
    [ 1; 2; 8 ]

(* QCheck: random ragged grids (derived from the seed, so cases print and
   shrink as integers), random cut point, sequential engines. *)
let arb_cut_case =
  let print (seed, cut_bias) =
    Printf.sprintf "seed=%d cut_bias=%d" seed cut_bias
  in
  QCheck.make ~print
    ~shrink:QCheck.Shrink.(pair int int)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 64))

let grid_of_seed profile seed =
  Qa.Grid_gen.grid profile (Random.State.make [| 0xeb0e; seed |])

let resume_prop e (seed, cut_bias) =
  let grid = grid_of_seed e.profile seed in
  let epochs = Qa.Grid.epochs grid in
  let rows = rows_of_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  let cut = cut_bias mod (Array.length rows + 1) in
  String.equal (e.batch_fp epochs) (e.resumed_fp ~cut ~threads rows)

(* ------------------------------------------------------------------ *)
(* Scheduler-level checkpointing: May and Must synthetic problems, with
   cuts at arbitrary event positions (including mid-block).             *)

module May_problem = struct
  let name = "syn-may"

  module Set = Butterfly.Interval_set

  let flavour = `May

  let gen _id i =
    match Tracing.Instr.writes i with
    | Some x -> IS.range x (x + 2)
    | None -> IS.empty

  let kill _id i =
    List.fold_left
      (fun acc a -> IS.union acc (IS.range a (a + 1)))
      IS.empty (Tracing.Instr.reads i)
end

module Must_problem = struct
  include May_problem

  let name = "syn-must"
  let flavour = `Must
end

module SMay = Butterfly.Scheduler.Make (May_problem)
module SMust = Butterfly.Scheduler.Make (Must_problem)

let events_of_grid grid =
  let epochs = Qa.Grid.epochs grid in
  let rows = rows_of_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  let evs = ref [] in
  Array.iteri
    (fun i row ->
      if i > 0 then
        for tid = 0 to threads - 1 do
          evs := (tid, Tracing.Event.Heartbeat) :: !evs
        done;
      Array.iteri
        (fun tid instrs ->
          Array.iter
            (fun ins -> evs := (tid, Tracing.Event.Instr ins) :: !evs)
            instrs)
        row)
    rows;
  (threads, List.rev !evs)

let scheduler_resume_prop
    (module P : Butterfly.Dataflow.PROBLEM with type Set.t = IS.t)
    (seed, cut_bias) =
  let grid = grid_of_seed Qa.Grid_gen.Mixed seed in
  let module S = Butterfly.Scheduler.Make (P) in
  let module A = Butterfly.Dataflow.Make (P) in
  let set = { S.put_set = Lifeguards.Lg_io.put_is; get_set = Lifeguards.Lg_io.get_is } in
  let view_sig (v : A.instr_view) =
    Format.asprintf "%a|%a|%a|%a" Butterfly.Instr_id.pp v.id IS.pp v.in_before
      IS.pp v.lsos_before IS.pp v.side_in
  in
  let threads, events = events_of_grid grid in
  let run_full () =
    let log = ref [] in
    let s = S.create ~threads ~on_instr:(fun v -> log := view_sig v :: !log) () in
    List.iter (fun (tid, ev) -> S.feed s tid ev) events;
    S.finish s;
    (List.rev !log, S.sos_history s)
  in
  let run_cut cut =
    let log = ref [] in
    let on_instr v = log := view_sig v :: !log in
    let s = S.create ~threads ~on_instr () in
    List.iteri (fun i (tid, ev) -> if i < cut then S.feed s tid ev) events;
    let payload = S.encode_state ~set s in
    let s' = S.decode_state ~set ~on_instr payload in
    List.iteri (fun i (tid, ev) -> if i >= cut then S.feed s' tid ev) events;
    S.finish s';
    (List.rev !log, S.sos_history s')
  in
  let full_log, full_sos = run_full () in
  let cut = cut_bias mod (List.length events + 1) in
  let cut_log, cut_sos = run_cut cut in
  full_log = cut_log
  && Array.length full_sos = Array.length cut_sos
  && Array.for_all2 IS.equal full_sos cut_sos

(* ------------------------------------------------------------------ *)
(* The on-disk snapshot envelope, the checkpointed runner, and the
   crash-simulation harness built on them.                              *)

module Snapshot = Recovery.Snapshot
module Runner = Recovery.Runner

let all_tags =
  [
    (Snapshot.Addrcheck, Qa.Grid_gen.Alloc);
    (Snapshot.Initcheck, Qa.Grid_gen.Init);
    (Snapshot.Taintcheck, Qa.Grid_gen.Taint);
    (Snapshot.Racecheck, Qa.Grid_gen.Racy);
  ]

let with_snap_file f =
  let path = Filename.temp_file "bfly-test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let snapshot_roundtrip () =
  List.iter
    (fun (lg, _) ->
      let meta = { Snapshot.lifeguard = lg; next_epoch = 7; threads = 3 } in
      match Snapshot.decode (Snapshot.encode meta "payload-bytes") with
      | Ok (m, p) ->
        check Alcotest.bool "meta" true (m = meta);
        checks "payload" "payload-bytes" p
      | Error m -> Alcotest.failf "snapshot decode: %s" m)
    all_tags;
  with_snap_file (fun path ->
      let meta =
        { Snapshot.lifeguard = Snapshot.Taintcheck; next_epoch = 0; threads = 1 }
      in
      let bytes = Snapshot.write_file ~path meta "" in
      check Alcotest.int "written size" bytes
        (String.length (Snapshot.encode meta ""));
      match Snapshot.read_file ~path with
      | Ok (m, p) ->
        check Alcotest.bool "file meta" true (m = meta);
        checks "file payload" "" p
      | Error m -> Alcotest.failf "snapshot read_file: %s" m)

let snapshot_rejections () =
  let data =
    Snapshot.encode
      { Snapshot.lifeguard = Snapshot.Initcheck; next_epoch = 2; threads = 2 }
      "xyz"
  in
  (* Every single-bit flip and every truncation must be rejected: the CRC
     trailer covers the whole envelope. *)
  for i = 0 to String.length data - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code data.[i] lxor (1 lsl bit)));
      match Snapshot.decode (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bit flip %d.%d accepted" i bit
    done
  done;
  for n = 0 to String.length data - 1 do
    match Snapshot.decode (String.sub data 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" n
  done;
  (* A well-framed envelope with a nonsense header is caught one layer
     up, with the metadata error. *)
  let w = Binio.W.create () in
  Binio.W.u8 w 9;
  Binio.W.varint w 0;
  Binio.W.varint w 1;
  Binio.W.string w "";
  (match
     Snapshot.decode
       (Binio.frame ~magic:Snapshot.magic ~version:Snapshot.version
          (Binio.W.contents w))
   with
  | Error m ->
    checks "bad tag" "corrupt checkpoint metadata: bad lifeguard tag 9" m
  | Ok _ -> Alcotest.fail "bad lifeguard tag accepted");
  match Snapshot.read_file ~path:"/nonexistent/ckpt.snap" with
  | Error m ->
    check Alcotest.bool "missing file error" true
      (String.length m > 0
      && String.sub m 0 22 = "cannot read checkpoint")
  | Ok _ -> Alcotest.fail "missing file accepted"

let runner_roundtrip () =
  List.iter
    (fun (tag, profile) ->
      let (Runner.Packed ops) = Runner.ops_of tag in
      let rng = Random.State.make [| 0xeb0f; 3 |] in
      for g = 1 to 6 do
        let grid = Qa.Grid_gen.grid profile rng in
        let epochs = Qa.Grid.epochs grid in
        with_snap_file (fun path ->
            let checkpoint = { Runner.every = 1; path } in
            let expected = ops.Runner.fp (Runner.run ops epochs) in
            let ck = ops.Runner.fp (Runner.run ops ~checkpoint epochs) in
            checks "checkpointing changes nothing" expected ck;
            match Runner.resume ops ~path epochs with
            | Ok r -> checks "resumed from last snapshot" expected (ops.Runner.fp r)
            | Error m -> Alcotest.failf "resume (%s grid #%d): %s" (Snapshot.lifeguard_to_string tag) g m)
      done)
    all_tags

let runner_rejections () =
  let grid = grid_of_seed Qa.Grid_gen.Alloc 42 in
  let epochs = Qa.Grid.epochs grid in
  let threads = Butterfly.Epochs.threads epochs in
  let num = Butterfly.Epochs.num_epochs epochs in
  let (Runner.Packed aops) = Runner.ops_of Snapshot.Addrcheck in
  let (Runner.Packed iops) = Runner.ops_of Snapshot.Initcheck in
  let expect_error name want = function
    | Error m -> checks name want m
    | Ok _ -> Alcotest.failf "%s: resume accepted" name
  in
  with_snap_file (fun path ->
      let st = aops.Runner.create ~threads in
      aops.Runner.feed st (rows_of_epochs epochs).(0);
      ignore (Runner.write_checkpoint aops ~path ~threads st);
      expect_error "wrong lifeguard" "checkpoint is for addrcheck, not initcheck"
        (Runner.resume iops ~path epochs);
      let (Runner.Packed rops) = Runner.ops_of Snapshot.Racecheck in
      expect_error "wrong lifeguard (racecheck)"
        "checkpoint is for addrcheck, not racecheck"
        (Runner.resume rops ~path epochs);
      let payload = aops.Runner.enc st in
      ignore
        (Snapshot.write_file ~path
           { Snapshot.lifeguard = Snapshot.Addrcheck; next_epoch = 1;
             threads = threads + 1 }
           payload);
      expect_error "thread mismatch"
        (Printf.sprintf "checkpoint has %d threads, trace has %d" (threads + 1)
           threads)
        (Runner.resume aops ~path epochs);
      ignore
        (Snapshot.write_file ~path
           { Snapshot.lifeguard = Snapshot.Addrcheck; next_epoch = num + 3;
             threads }
           payload);
      expect_error "ahead of trace"
        (Printf.sprintf
           "checkpoint is ahead of the trace: %d epochs folded, trace has %d"
           (num + 3) num)
        (Runner.resume aops ~path epochs);
      ignore
        (Snapshot.write_file ~path
           { Snapshot.lifeguard = Snapshot.Addrcheck; next_epoch = 0; threads }
           payload);
      expect_error "header/payload skew"
        "corrupt checkpoint payload: header and payload disagree on epoch"
        (Runner.resume aops ~path epochs);
      ignore
        (Snapshot.write_file ~path
           { Snapshot.lifeguard = Snapshot.Addrcheck; next_epoch = 1; threads }
           "garbage");
      (match Runner.resume aops ~path epochs with
      | Error m ->
        check Alcotest.bool "corrupt payload" true
          (String.length m >= 26
          && String.sub m 0 26 = "corrupt checkpoint payload")
      | Ok _ -> Alcotest.fail "corrupt payload accepted"))

let crash_sim_battery () =
  List.iter
    (fun (tag, profile) ->
      let rng = Random.State.make [| 0xeb10; 5 |] in
      for g = 1 to 5 do
        let grid = Qa.Grid_gen.grid profile rng in
        let epochs = Qa.Grid.epochs grid in
        List.iter
          (fun state ->
            with_snap_file (fun path ->
                match
                  Recovery.Crash_sim.run ~state ~seed:g ~every:(1 + (g mod 2))
                    ~path tag epochs
                with
                | Error m -> Alcotest.failf "crash sim: %s" m
                | Ok o ->
                  if not o.Recovery.Crash_sim.equal then
                    Alcotest.failf "%s grid #%d (%s): %a"
                      (Snapshot.lifeguard_to_string tag)
                      g
                      (match state with
                      | `Functional -> "functional"
                      | `Flat -> "flat")
                      Recovery.Crash_sim.pp_outcome o))
          [ `Functional; `Flat ]
      done;
      (* A crash before the first checkpoint recovers by starting over. *)
      let grid = Qa.Grid_gen.grid profile rng in
      with_snap_file (fun path ->
          match
            Recovery.Crash_sim.run ~crash_at:0 ~every:1 ~path tag
              (Qa.Grid.epochs grid)
          with
          | Error m -> Alcotest.failf "crash sim at 0: %s" m
          | Ok o ->
            check Alcotest.int "no snapshot" 0 o.Recovery.Crash_sim.resumed_from;
            check Alcotest.bool "fresh-start recovery" true
              o.Recovery.Crash_sim.equal))
    all_tags

let qa_crash_checks () =
  List.iter
    (fun lg ->
      let grid = grid_of_seed (Qa.Differential.profile_of lg) 11 in
      List.iter
        (fun state ->
          match Qa.Differential.check_recovery ~state ~seed:3 lg grid with
          | [] -> ()
          | ms ->
            Alcotest.failf "check_recovery flagged %d mismatches: %s"
              (List.length ms)
              (String.concat "; "
                 (List.map
                    (fun (m : Qa.Differential.mismatch) -> m.subject)
                    ms)))
        [ `Functional; `Flat ])
    Qa.Differential.all_lifeguards

(* ------------------------------------------------------------------ *)

let () =
  let qt = Testutil.qtest in
  Alcotest.run "recovery"
    [
      ( "binio",
        [
          Alcotest.test_case "primitive round-trips" `Quick roundtrip_ints;
          Alcotest.test_case "crc32 check vector" `Quick crc_vector;
          Alcotest.test_case "truncated reads raise Corrupt" `Quick
            truncated_reader;
          Alcotest.test_case "frame round-trips" `Quick frame_roundtrip;
          Alcotest.test_case "frame rejects magic/version/truncation/bit flips"
            `Quick frame_rejections;
        ] );
      ( "trace-codec",
        [
          Alcotest.test_case "binary round-trip (v2 framed)" `Quick
            codec_roundtrip;
          Alcotest.test_case "legacy BFLY1 traces still decode" `Quick
            codec_legacy_decode;
          Alcotest.test_case "corruption is rejected deterministically" `Quick
            codec_rejects_corruption;
        ] );
      ( "resume-equivalence",
        List.map
          (fun e ->
            Alcotest.test_case
              (Printf.sprintf "%s: every-epoch battery" e.label)
              `Slow
              (every_epoch_battery e ~n_grids:40))
          (engines @ flat_engines)
        @ List.map
            (fun e ->
              qt ~count:40
                (Printf.sprintf "%s: random grid, random cut" e.label)
                arb_cut_case (resume_prop e))
            (engines @ flat_engines)
        @ [
            Alcotest.test_case
              "snapshots are backend-portable (cut under one, revive under \
               the other)"
              `Slow cross_backend_battery;
          ] );
      ( "resume-pooled",
        List.map
          (fun e ->
            Alcotest.test_case
              (Printf.sprintf "%s: pooled 1/2/8 domains" e.label)
              `Slow
              (pooled_battery e ~n_grids:8))
          (engines @ flat_engines) );
      ( "scheduler-state",
        [
          qt ~count:80 "May problem: resume at any event == uninterrupted"
            arb_cut_case
            (scheduler_resume_prop (module May_problem));
          qt ~count:80 "Must problem: resume at any event == uninterrupted"
            arb_cut_case
            (scheduler_resume_prop (module Must_problem));
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "envelope round-trips (memory and disk)" `Quick
            snapshot_roundtrip;
          Alcotest.test_case "rejects bit flips/truncation/bad header" `Quick
            snapshot_rejections;
        ] );
      ( "runner",
        [
          Alcotest.test_case "checkpointed run + resume == straight run" `Slow
            runner_roundtrip;
          Alcotest.test_case "resume rejections are precise" `Quick
            runner_rejections;
        ] );
      ( "crash-sim",
        [
          Alcotest.test_case "seeded crashes recover byte-identically" `Slow
            crash_sim_battery;
          Alcotest.test_case "qa check_recovery finds nothing to flag" `Slow
            qa_crash_checks;
        ] );
    ]
