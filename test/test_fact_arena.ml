(* The flat fact-table backend proven against the functional reference.

   Three layers, coarsest to finest:

   1. Differential battery: 500 seeded ragged grids, each run through
      all three lifeguards — which between them exercise both dataflow
      flavours and all three fact representations (Interval_set,
      Def_set-style initialization facts, Set.Make(Int) taint facts) —
      under the sequential, pooled-2, pooled-8 and wavefront drivers on
      the flat backend.  Every fingerprint must equal the functional
      sequential baseline byte for byte.

   2. QCheck properties pinning Bitset (and the FACTS wrappers) to the
      Set.Make(Int) / Interval_set reference semantics: every operation
      the lifeguard bodies perform, plus the flat-only bulk constructors
      (of_list, union_all) against their fold-of-unions definitions, and
      canonicity (structural equality is semantic equality, whatever the
      construction order).

   3. Arena edge cases the grid generator cannot reliably hit:
      zero-length ranges, far-apart and maximal addresses (geometric
      growth), Dense reuse-after-clear, and the in-place set algebra. *)

module B = Butterfly.Fact_arena.Bitset
module Dense = Butterfly.Fact_arena.Dense
module IS = Butterfly.Interval_set
module S = Set.Make (Int)
module Grid = Qa.Grid
module Gen = Qa.Grid_gen
module Diff = Qa.Differential
module AC = Lifeguards.Addrcheck
module IC = Lifeguards.Initcheck
module TC = Lifeguards.Taintcheck
module RC = Lifeguards.Racecheck

(* ------------------------------------------------------------------ *)
(* 1. The differential battery. *)

let fp lg ?pool ?wavefront ~state epochs =
  match lg with
  | Diff.Addrcheck -> AC.fingerprint (AC.run ~state ?wavefront ?pool epochs)
  | Diff.Initcheck -> IC.fingerprint (IC.run ~state ?wavefront ?pool epochs)
  | Diff.Taintcheck -> TC.fingerprint (TC.run ~state ?wavefront ?pool epochs)
  | Diff.Racecheck ->
    RC.fingerprint (RC.run ~state ?wavefront ?pool epochs)

(* Slightly wider than Grid_gen.default_shape: the battery has no
   valid-ordering oracle to keep feasible, so it can afford denser
   grids — more epochs and a bigger address universe mean wider, more
   fragmented fact sets, which is what the arena paths have to get
   right. *)
let battery_shape =
  { Gen.default_shape with max_epochs = 4; max_block = 4; n_addrs = 8 }

let battery_grids = 500

let battery () =
  let pool2 = Butterfly.Domain_pool.create ~name:"fa-pool2" ~domains:2 () in
  let pool8 = Butterfly.Domain_pool.create ~name:"fa-pool8" ~domains:8 () in
  Fun.protect
    ~finally:(fun () ->
      Butterfly.Domain_pool.shutdown pool2;
      Butterfly.Domain_pool.shutdown pool8)
  @@ fun () ->
  for seed = 0 to battery_grids - 1 do
    List.iter
      (fun lg ->
        let rs = Random.State.make [| 0xFAC7; seed |] in
        let g = Gen.grid ~shape:battery_shape (Diff.profile_of lg) rs in
        let epochs = Grid.epochs g in
        let baseline = fp lg ~state:`Functional epochs in
        List.iter
          (fun (driver, flat) ->
            if not (String.equal baseline flat) then
              Alcotest.failf
                "flat %s diverges from functional sequential on grid \
                 seed=%d lifeguard=%s:\n\
                 functional: %s\n\
                 flat:       %s"
                driver seed
                (Diff.lifeguard_to_string lg)
                baseline flat)
          [
            ("sequential", fp lg ~state:`Flat epochs);
            ("pooled-2", fp lg ~state:`Flat ~pool:pool2 epochs);
            ("pooled-8", fp lg ~state:`Flat ~pool:pool8 epochs);
            ( "wavefront",
              fp lg ~state:`Flat ~pool:pool2 ~wavefront:true epochs );
          ])
      Diff.all_lifeguards
  done

(* ------------------------------------------------------------------ *)
(* 2. Bitset vs Set.Make(Int): every operation, via [elements]. *)

let addr = QCheck.Gen.int_bound 300
let addrs = QCheck.Gen.(list_size (int_bound 40) addr)

let arb_addrs = QCheck.make ~print:QCheck.Print.(list int) addrs

let arb_addrs2 =
  QCheck.make
    ~print:QCheck.Print.(pair (list int) (list int))
    QCheck.Gen.(pair addrs addrs)

let sets_of l = (B.of_list l, S.of_list l)
let agree b s = B.elements b = S.elements s

let qtest ?count name arb prop = Testutil.qtest ?count name arb prop

let bitset_props =
  [
    qtest "of_list agrees with Set.of_list" arb_addrs (fun l ->
        let b, s = sets_of l in
        agree b s && B.cardinal b = S.cardinal s);
    qtest "of_list = fold singleton union" arb_addrs (fun l ->
        B.equal (B.of_list l)
          (List.fold_left (fun acc x -> B.union acc (B.singleton x)) B.empty l));
    qtest "construction order is invisible (canonicity)" arb_addrs (fun l ->
        B.equal (B.of_list l) (B.of_list (List.rev l)));
    qtest "mem agrees on the whole universe" arb_addrs (fun l ->
        let b, s = sets_of l in
        List.for_all (fun x -> B.mem x b = S.mem x s) (List.init 310 Fun.id));
    qtest "add agrees" arb_addrs (fun l ->
        match l with
        | [] -> true
        | x :: rest ->
          let b, s = sets_of rest in
          agree (B.add x b) (S.add x s));
    qtest "union agrees" arb_addrs2 (fun (l1, l2) ->
        let b1, s1 = sets_of l1 and b2, s2 = sets_of l2 in
        agree (B.union b1 b2) (S.union s1 s2));
    qtest "inter agrees" arb_addrs2 (fun (l1, l2) ->
        let b1, s1 = sets_of l1 and b2, s2 = sets_of l2 in
        agree (B.inter b1 b2) (S.inter s1 s2));
    qtest "diff agrees" arb_addrs2 (fun (l1, l2) ->
        let b1, s1 = sets_of l1 and b2, s2 = sets_of l2 in
        agree (B.diff b1 b2) (S.diff s1 s2));
    qtest "subset and disjoint agree" arb_addrs2 (fun (l1, l2) ->
        let b1, s1 = sets_of l1 and b2, s2 = sets_of l2 in
        B.subset b1 b2 = S.subset s1 s2
        && B.disjoint b1 b2 = S.disjoint s1 s2);
    qtest "equal is semantic equality" arb_addrs2 (fun (l1, l2) ->
        let b1, s1 = sets_of l1 and b2, s2 = sets_of l2 in
        B.equal b1 b2 = S.equal s1 s2);
    qtest "union_all = fold union"
      (QCheck.make
         ~print:QCheck.Print.(list (list int))
         QCheck.Gen.(list_size (int_bound 6) addrs))
      (fun ls ->
        let bs = List.map B.of_list ls in
        B.equal (B.union_all bs) (List.fold_left B.union B.empty bs));
    qtest "range agrees with an explicit enumeration"
      (QCheck.make
         ~print:QCheck.Print.(pair int int)
         QCheck.Gen.(pair (int_bound 300) (int_bound 80)))
      (fun (lo, len) ->
        let b = B.range lo (lo + len) in
        B.elements b = List.init len (fun i -> lo + i));
    qtest "intervals round-trip" arb_addrs (fun l ->
        let b = B.of_list l in
        B.equal (B.of_intervals (B.to_intervals b)) b
        && IS.elements (B.to_intervals b) = B.elements b);
    qtest "choose / fold / iter agree" arb_addrs (fun l ->
        let b, s = sets_of l in
        B.choose b = S.min_elt_opt s
        && B.fold (fun x acc -> x :: acc) b [] = List.rev (S.elements s)
        &&
        let seen = ref [] in
        B.iter (fun x -> seen := x :: !seen) b;
        List.rev !seen = S.elements s);
    (* The two FACTS implementations agree through the representation-
       independent interval view — the conversion the lifeguard reports
       go through. *)
    qtest "Interval_facts and Bitset_facts agree" arb_addrs2 (fun (l1, l2) ->
        let module IF = Butterfly.Fact_arena.Interval_facts in
        let module BF = Butterfly.Fact_arena.Bitset_facts in
        let i1 = IF.of_list l1 and i2 = IF.of_list l2 in
        let b1 = BF.of_list l1 and b2 = BF.of_list l2 in
        IS.equal (BF.to_intervals (BF.union b1 b2)) (IF.union i1 i2)
        && IS.equal (BF.to_intervals (BF.inter b1 b2)) (IF.inter i1 i2)
        && IS.equal (BF.to_intervals (BF.diff b1 b2)) (IF.diff i1 i2)
        && IS.equal
             (BF.to_intervals (BF.union_all [ b1; b2; b1 ]))
             (IF.union_all [ i1; i2; i1 ]));
    (* A random op-script against the same script on Set.Make(Int):
       Dense is the mutable construction path every flat transfer
       function goes through. *)
    qtest "Dense op-script agrees with Set.Make(Int)"
      (QCheck.make
         ~print:QCheck.Print.(list (pair bool int))
         QCheck.Gen.(list_size (int_bound 60) (pair bool addr)))
      (fun script ->
        let d = Dense.create ~capacity_bits:64 () in
        let s =
          List.fold_left
            (fun s (set, x) ->
              if set then (Dense.set d x; S.add x s)
              else (Dense.unset d x; S.remove x s))
            S.empty script
        in
        B.elements (Dense.freeze d) = S.elements s);
  ]

(* ------------------------------------------------------------------ *)
(* 3. Arena edge cases. *)

let zero_length_blocks () =
  Alcotest.(check bool) "range x x empty" true (B.is_empty (B.range 7 7));
  Alcotest.(check bool) "range hi<lo empty" true (B.is_empty (B.range 9 3));
  Alcotest.(check bool) "range 0 0 empty" true (B.is_empty (B.range 0 0));
  Alcotest.(check bool)
    "empty union empty" true
    (B.is_empty (B.union B.empty B.empty));
  Alcotest.(check bool)
    "union_all [] empty" true
    (B.is_empty (B.union_all []));
  Alcotest.(check bool) "of_list [] empty" true (B.is_empty (B.of_list []))

let max_address_touch () =
  let far = 1_000_003 in
  let b = B.union (B.singleton 0) (B.singleton far) in
  Alcotest.(check int) "cardinal" 2 (B.cardinal b);
  Alcotest.(check bool) "mem far" true (B.mem far b);
  Alcotest.(check bool) "mem mid" false (B.mem (far / 2) b);
  Alcotest.(check (list int)) "elements" [ 0; far ] (B.elements b);
  (* The arena grows geometrically to reach it and the frozen set still
     trims back to canonical form. *)
  let d = Dense.create ~capacity_bits:64 () in
  Dense.set d far;
  Alcotest.(check bool) "dense get far" true (Dense.get d far);
  Alcotest.(check bool) "dense capacity grew" true (Dense.capacity_bits d > far);
  Alcotest.(check bool)
    "dense freeze = singleton" true
    (B.equal (Dense.freeze d) (B.singleton far));
  (match B.singleton (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative address accepted");
  match Dense.set (Dense.create ()) (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative Dense.set accepted"

let reuse_after_clear () =
  let d = Dense.create ~capacity_bits:64 () in
  List.iter (Dense.set d) [ 1; 64; 700 ];
  let cap = Dense.capacity_bits d in
  Dense.clear d;
  Alcotest.(check int) "clear keeps capacity" cap (Dense.capacity_bits d);
  Alcotest.(check bool) "clear empties" true (B.is_empty (Dense.freeze d));
  (* Reused arena must not leak bits from the previous generation. *)
  Dense.set d 3;
  Dense.union_into d (B.range 100 110);
  Dense.inter_into d (B.of_list [ 3; 101; 105; 700 ]);
  Dense.diff_into d (B.singleton 105);
  Alcotest.(check (list int))
    "reused arena contents" [ 3; 101 ]
    (B.elements (Dense.freeze d))

let () =
  Alcotest.run "fact_arena"
    [
      ( "differential-battery",
        [
          Alcotest.test_case
            (Printf.sprintf "%d ragged grids x 4 drivers x 3 lifeguards"
               battery_grids)
            `Slow battery;
        ] );
      ("bitset-vs-reference", bitset_props);
      ( "arena-edges",
        [
          Alcotest.test_case "zero-length blocks" `Quick zero_length_blocks;
          Alcotest.test_case "max-address touch" `Quick max_address_touch;
          Alcotest.test_case "reuse after clear" `Quick reuse_after_clear;
        ] );
    ]
