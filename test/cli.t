The CLI must keep machine-readable surfaces stable: scripts parse the
--json reports, and CI diffs the metric registry by name.

Generate a small deterministic trace to work on.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 40 --seed 3 > t.trace

AddrCheck emits a one-line JSON report.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --json
  {"lifeguard":"addrcheck","checked":8,"flagged":0,"errors":[]}

The pooled streaming driver (--domains) must report exactly the same.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --json
  {"lifeguard":"addrcheck","checked":8,"flagged":0,"errors":[]}

Same differential for InitCheck, byte-for-byte.

  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --json > seq.json
  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --domains 4 --json > pooled.json
  $ cmp seq.json pooled.json

--stats=json appends a registry snapshot after the normal output.  The
metric values are timings, so only the (already sorted) name stream is
pinned here.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.isolation.ns"
  "name":"lifeguard.sos_size_hwm"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

The stats subcommand prints the full registry, including the streaming
window replay.

  $ ../bin/butterfly_cli.exe stats t.trace -e 8 --lifeguard initcheck --json \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.sos_size_hwm"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

Under --domains the same run also carries the domain-pool telemetry.

  $ ../bin/butterfly_cli.exe stats t.trace -e 8 --domains 2 --json \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.isolation.ns"
  "name":"lifeguard.sos_size_hwm"
  "name":"pool.queue_depth"
  "name":"pool.size"
  "name":"pool.task.ns"
  "name":"pool.utilization"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"
