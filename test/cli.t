The CLI must keep machine-readable surfaces stable: scripts parse the
--json reports, and CI diffs the metric registry by name.

Generate a small deterministic trace to work on.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 40 --seed 3 > t.trace

AddrCheck emits a one-line JSON report.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --json
  {"lifeguard":"addrcheck","checked":8,"flagged":0,"errors":[]}

The pooled streaming driver (--domains) must report exactly the same.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --json
  {"lifeguard":"addrcheck","checked":8,"flagged":0,"errors":[]}

Same differential for InitCheck, byte-for-byte.

  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --json > seq.json
  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --domains 4 --json > pooled.json
  $ cmp seq.json pooled.json

--stats=json appends a registry snapshot after the normal output.  The
metric values are timings, so only the (already sorted) name stream is
pinned here.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.isolation.ns"
  "name":"lifeguard.sos_size_hwm"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

The stats subcommand prints the full registry, including the streaming
window replay.

  $ ../bin/butterfly_cli.exe stats t.trace -e 8 --lifeguard initcheck --json \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.sos_size_hwm"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

Under --domains the same run also carries the domain-pool telemetry.

  $ ../bin/butterfly_cli.exe stats t.trace -e 8 --domains 2 --json \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.isolation.ns"
  "name":"lifeguard.sos_size_hwm"
  "name":"pool.queue_depth"
  "name":"pool.size"
  "name":"pool.task.ns"
  "name":"pool.utilization"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

TaintCheck rides the epoch-barrier pool driver.  Hand-build a trace with
a cross-thread taint chain (a wing chase, so checked > 0) and a
sanitized-then-resurrected location.

  $ cat > taint.trace <<'TRACE'
  > threads 2
  > 0 taint 1
  > 0 heartbeat
  > 0 assign 4
  > 0 heartbeat
  > 0 nop
  > 1 unop 2 1
  > 1 jump 2
  > 1 heartbeat
  > 1 untaint 1
  > 1 heartbeat
  > 1 sysarg 1
  > TRACE

  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --domains 2 --json
  {"lifeguard":"taintcheck","checked":1,"flagged":2,"errors":[{"kind":"tainted_sink","sink":2,"at":{"epoch":0,"tid":1,"index":1}},{"kind":"tainted_sink","sink":1,"at":{"epoch":2,"tid":1,"index":0}}]}

--domains must not change a byte of the report, on the taint trace and
on a generated one.

  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --json > tc-seq.json
  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --domains 1 --json > tc-d1.json
  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --domains 2 --json > tc-d2.json
  $ cmp tc-seq.json tc-d1.json && cmp tc-d1.json tc-d2.json
  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 8 --json > tc-gen-seq.json
  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 8 --domains 4 --json > tc-gen-d4.json
  $ cmp tc-gen-seq.json tc-gen-d4.json

Pooled --stats=json carries the pool and epoch-barrier telemetry next to
the lifeguard counters (names only; values are timings).

  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --domains 2 --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.phase2_rechecks"
  "name":"lifeguard.sos_size_hwm"
  "name":"pool.queue_depth"
  "name":"pool.size"
  "name":"pool.task.ns"
  "name":"pool.utilization"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.epoch_barriers"
  "name":"scheduler.epoch_fanout.ns"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

--domains 0 is a usage error, not a crash — on every lifeguard, so the
validation cannot drift between subcommands again.

  $ ../bin/butterfly_cli.exe taintcheck taint.trace --domains 0
  butterfly_cli: option '--domains': expected a positive integer
  Usage: butterfly_cli taintcheck [OPTION]… TRACE
  Try 'butterfly_cli taintcheck --help' or 'butterfly_cli --help' for more information.
  [124]

  $ ../bin/butterfly_cli.exe addrcheck t.trace --domains 0
  butterfly_cli: option '--domains': expected a positive integer
  Usage: butterfly_cli addrcheck [OPTION]… TRACE
  Try 'butterfly_cli addrcheck --help' or 'butterfly_cli --help' for more information.
  [124]

  $ ../bin/butterfly_cli.exe initcheck t.trace --domains 0
  butterfly_cli: option '--domains': expected a positive integer
  Usage: butterfly_cli initcheck [OPTION]… TRACE
  Try 'butterfly_cli initcheck --help' or 'butterfly_cli --help' for more information.
  [124]

Negative counts are rejected the same way (cmdliner needs "--" is not
involved: the option parser sees the value directly).

  $ ../bin/butterfly_cli.exe addrcheck t.trace --domains=-2
  butterfly_cli: option '--domains': expected a positive integer
  Usage: butterfly_cli addrcheck [OPTION]… TRACE
  Try 'butterfly_cli addrcheck --help' or 'butterfly_cli --help' for more information.
  [124]

The differential fuzzer (lib/qa): seeded campaigns are deterministic and
quiet on a healthy tree.  Each grid runs through every driver x domains
combination plus the valid-ordering soundness oracle.

  $ ../bin/butterfly_cli.exe fuzz --lifeguard taintcheck --iterations 25 --seed 42
  fuzz taintcheck: 25 grids, 0 mismatches

  $ ../bin/butterfly_cli.exe fuzz --lifeguard addrcheck --iterations 10 --seed 7
  fuzz addrcheck: 10 grids, 0 mismatches

  $ ../bin/butterfly_cli.exe fuzz --lifeguard initcheck --iterations 10 --seed 7 --shrink
  fuzz initcheck: 10 grids, 0 mismatches

--iterations 0 is rejected by the same positive-int validator as
--domains.

  $ ../bin/butterfly_cli.exe fuzz --iterations 0
  butterfly_cli: option '--iterations': expected a positive integer
  Usage: butterfly_cli fuzz [OPTION]…
  Try 'butterfly_cli fuzz --help' or 'butterfly_cli --help' for more information.
  [124]

fuzz --replay runs the battery on a serialized trace — the replay path a
shrunk counterexample file goes through.

  $ ../bin/butterfly_cli.exe fuzz --replay taint.trace --lifeguard taintcheck
  replay taint.trace taintcheck: 0 mismatches

The fuzz run emits its qa.* telemetry under --stats (names only; values
are counters and timings).

  $ ../bin/butterfly_cli.exe fuzz --lifeguard initcheck --iterations 2 --seed 7 --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"qa[^"]*"' | sort -u
  "name":"qa.check.ns"
  "name":"qa.grids"
  "name":"qa.mismatches"

--driver selects the execution strategy explicitly.  Wavefront is the
dependency-driven pipeline; its report must be byte-identical to the
sequential batch driver's.

  $ ../bin/butterfly_cli.exe addrcheck t.trace -e 8 --domains 2 --driver wavefront --json
  {"lifeguard":"addrcheck","checked":8,"flagged":0,"errors":[]}

  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --json > drv-seq.json
  $ ../bin/butterfly_cli.exe initcheck t.trace -e 8 --domains 2 --driver wavefront --json > drv-wf.json
  $ cmp drv-seq.json drv-wf.json
  $ ../bin/butterfly_cli.exe taintcheck taint.trace -e 0 --domains 2 --driver wavefront --json > tc-wf.json
  $ cmp tc-seq.json tc-wf.json

Driver/domain combinations that make no sense are usage errors, not
silent fallbacks.

  $ ../bin/butterfly_cli.exe addrcheck t.trace --domains 2 --driver sequential
  error: --driver sequential conflicts with --domains
  [2]

  $ ../bin/butterfly_cli.exe addrcheck t.trace --driver wavefront
  error: --driver wavefront/pooled requires --domains
  [2]

  $ ../bin/butterfly_cli.exe taintcheck t.trace --driver pooled
  error: --driver wavefront/pooled requires --domains
  [2]

Under --driver wavefront the registry grows the pipeline metrics next
to the pool telemetry (names only; values are timings).

  $ ../bin/butterfly_cli.exe taintcheck t.trace -e 8 --domains 2 --driver wavefront --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"scheduler.wavefront[^"]*"' | sort -u
  "name":"scheduler.wavefront.overlapped_epochs"
  "name":"scheduler.wavefront.pipelined_pass1_blocks"
  "name":"scheduler.wavefront.ready_queue"
  "name":"scheduler.wavefront.stall_ns"

The fuzzer's equivalence battery can be narrowed to one driver.

  $ ../bin/butterfly_cli.exe fuzz --lifeguard initcheck --iterations 5 --seed 7 --driver wavefront
  fuzz initcheck: 5 grids, 0 mismatches

RaceCheck reports may-races as pairs.  Hand-build a trace where two
threads write two shared addresses in the same epoch — one under a
common lock (suppressed), one bare (flagged).

  $ cat > race.trace <<'TRACE'
  > threads 2
  > 0 lock 0x1
  > 0 assign 8
  > 0 unlock 0x1
  > 0 assign 16
  > 0 heartbeat
  > 0 nop
  > 1 lock 0x1
  > 1 assign 8
  > 1 unlock 0x1
  > 1 assign 16
  > 1 heartbeat
  > 1 nop
  > TRACE

  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0
  checked 2 conflicting pairs; flagged 1 may-races
    race on 0x10: W(0,1,3) vs W(0,0,3)

  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0 --json
  {"lifeguard":"racecheck","checked":2,"flagged":1,"errors":[{"kind":"may_race","addr":16,"a":{"epoch":0,"tid":1,"index":3},"a_kind":"write","b":{"epoch":0,"tid":0,"index":3},"b_kind":"write"}]}

The pooled and wavefront drivers must not change a byte of the report.

  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0 --json > rc-seq.json
  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0 --domains 2 --json > rc-d2.json
  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0 --domains 2 --driver wavefront --json > rc-wf.json
  $ cmp rc-seq.json rc-d2.json && cmp rc-seq.json rc-wf.json
  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 --json > rc-gen-seq.json
  $ ../bin/butterfly_cli.exe racecheck t.trace -e 8 --domains 4 --json > rc-gen-d4.json
  $ cmp rc-gen-seq.json rc-gen-d4.json

Cursor ingestion streams the binary trace and must agree with the list
path.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 40 --seed 3 --binary > rc.bin
  $ ../bin/butterfly_cli.exe racecheck rc.bin --ingest cursor -e 8 --json > rc-cur.json
  $ cmp rc-gen-seq.json rc-cur.json

RaceCheck shares the --domains and --driver validation with the other
lifeguards.

  $ ../bin/butterfly_cli.exe racecheck race.trace --domains 0
  butterfly_cli: option '--domains': expected a positive integer
  Usage: butterfly_cli racecheck [OPTION]… TRACE
  Try 'butterfly_cli racecheck --help' or 'butterfly_cli --help' for more information.
  [124]

  $ ../bin/butterfly_cli.exe racecheck race.trace --driver wavefront
  error: --driver wavefront/pooled requires --domains
  [2]

  $ ../bin/butterfly_cli.exe racecheck race.trace --domains 2 --driver sequential
  error: --driver sequential conflicts with --domains
  [2]

--stats=json grows the racecheck.* suppression counters next to the
shared pipeline metrics (names only; values are timings).

  $ ../bin/butterfly_cli.exe racecheck race.trace -e 0 --stats=json | tail -1 \
  >   | tr ',' '\n' | grep -o '"name":"[^"]*"' | sort -u
  "name":"butterfly.epochs_processed"
  "name":"butterfly.lsos.ns"
  "name":"butterfly.pass1_summarize.ns"
  "name":"butterfly.pass2_block.ns"
  "name":"butterfly.pass2_instrs"
  "name":"butterfly.side_in_meet.ns"
  "name":"lifeguard.checks"
  "name":"lifeguard.flags"
  "name":"lifeguard.sos_size_hwm"
  "name":"racecheck.hb_suppressed"
  "name":"racecheck.lock_suppressed"
  "name":"scheduler.blocks_closed"
  "name":"scheduler.window_occupancy"
  "name":"scheduler.window_occupancy_hwm"

  $ ../bin/butterfly_cli.exe stats t.trace -e 8 --lifeguard racecheck --json \
  >   | tr ',' '\n' | grep -o '"name":"racecheck[^"]*"' | sort -u
  "name":"racecheck.hb_suppressed"
  "name":"racecheck.lock_suppressed"

The differential fuzzer covers RaceCheck: racy grids (lock/unlock/
fork/join traffic) through every driver plus the happens-before
interleaving oracle.

  $ ../bin/butterfly_cli.exe fuzz --lifeguard racecheck --iterations 10 --seed 7
  fuzz racecheck: 10 grids, 0 mismatches

A truncated binary trace is a clean CLI error.

  $ ../bin/butterfly_cli.exe generate ocean --threads 2 --scale 40 --seed 3 --binary > t.bin
  $ head -c 24 t.bin > cut.bin
  $ ../bin/butterfly_cli.exe taintcheck cut.bin
  error: CRC mismatch: stored 01010120, computed 85c90367
  [1]
