(* Domain-parallel execution: the per-thread-domain runner must produce
   exactly the batch driver's results — summaries, SOS, and the full
   ordered stream of second-pass views. *)

module RD = Butterfly.Reaching_definitions
module RE = Butterfly.Reaching_expressions
module Par_rd = Butterfly.Parallel.Make (RD.Problem)
module Par_re = Butterfly.Parallel.Make (RE.Problem)

let view_sig_rd (v : RD.Analysis.instr_view) =
  Format.asprintf "%a|%s|%a|%a" Butterfly.Instr_id.pp v.id
    (Tracing.Instr.to_string v.instr)
    Butterfly.Def_set.pp v.in_before Butterfly.Def_set.pp v.lsos_before

let view_sig_re (v : RE.Analysis.instr_view) =
  Format.asprintf "%a|%s|%a|%a" Butterfly.Instr_id.pp v.id
    (Tracing.Instr.to_string v.instr)
    Butterfly.Expr_set.pp v.in_before Butterfly.Expr_set.pp v.lsos_before

let gen_program =
  let open QCheck.Gen in
  let* threads = int_range 2 4 in
  let* every = int_range 1 4 in
  let thread = list_size (int_range 0 12) (Testutil.gen_df_instr ~n_addrs:3) in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_program = QCheck.make ~print:Tracing.Trace_codec.encode gen_program

let rd_equiv p =
  let epochs = Butterfly.Epochs.of_program p in
  let batch = ref [] in
  let batch_result =
    RD.run ~on_instr:(fun v -> batch := view_sig_rd v :: !batch) epochs
  in
  let par_result, par_views =
    Par_rd.run ~map:(fun v -> Some (view_sig_rd v)) epochs
  in
  List.rev !batch = par_views
  && Array.for_all2
       (fun a b -> Butterfly.Def_set.equal a b)
       batch_result.sos par_result.sos

let re_equiv p =
  let epochs = Butterfly.Epochs.of_program p in
  let batch = ref [] in
  let batch_result =
    RE.run ~on_instr:(fun v -> batch := view_sig_re v :: !batch) epochs
  in
  let par_result, par_views =
    Par_re.run ~map:(fun v -> Some (view_sig_re v)) epochs
  in
  List.rev !batch = par_views
  && Array.for_all2
       (fun a b -> Butterfly.Expr_set.equal a b)
       batch_result.sos par_result.sos

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Testutil.qtest ~count:60 "domains == batch (reaching definitions)"
            arb_program rd_equiv;
          Testutil.qtest ~count:60 "domains == batch (reaching expressions)"
            arb_program re_equiv;
          Alcotest.test_case "domain count is capped at the core count" `Quick
            (fun () ->
              (* 64 application threads must NOT spawn 64 domains: the pool
                 clamps to the hardware's recommended domain count. *)
              let p =
                Tracing.Program.of_instrs
                  (List.init 64 (fun _ -> [ Tracing.Instr.Nop ]))
              in
              ignore (Par_rd.run (Butterfly.Epochs.of_program p));
              Alcotest.(check int)
                "domains"
                (min 64 (Butterfly.Domain_pool.max_domains ()))
                (Par_rd.checks_in_parallel ()));
          Alcotest.test_case "explicit ~domains request is also capped" `Quick
            (fun () ->
              let p =
                Tracing.Program.of_instrs
                  [ [ Tracing.Instr.Nop ]; [ Tracing.Instr.Nop ] ]
              in
              ignore (Par_rd.run ~domains:128 (Butterfly.Epochs.of_program p));
              Testutil.checkb "capped" true
                (Par_rd.checks_in_parallel ()
                <= Butterfly.Domain_pool.max_domains ()));
        ] );
    ]
