(* RaceCheck proof battery (DESIGN §16).

   Four layers, mirroring the lifeguard's own trust chain:

   1. Differential battery: 500+ seeded lock-heavy grids, each analyzed
      by the independent brute-force reference [Racecheck_seq.check] and
      by every deployment of the butterfly lifeguard — sequential batch,
      pooled 2/8 domains, wavefront, and the (aliased) flat backend.
      Every report fingerprint must match the reference byte for byte.

   2. QCheck lattice laws for the two abstractions the analysis is built
      on: vector clocks under [join]/[meet]/[leq] and locksets under
      intersection/union — the algebra the soundness argument leans on.

   3. The interleaving oracle: on random lock/fork/join programs, every
      pair that races under some valid ordering (explicit happens-before
      graph + lockset filter) must be flagged — Theorem 6.1/6.2 shape,
      checked generatively, plus a mutation smoke test proving the
      battery has teeth (disabling the same-epoch wing check is caught).

   4. Known-answer workloads: the seeded racy kernels flag exactly their
      racy addresses and their properly-locked twins stay silent. *)

module RC = Lifeguards.Racecheck
module RCS = Lifeguards.Racecheck_seq
module VC = Lifeguards.Vclock
module LS = RC.Lockset
module Oracle = Lifeguards.Oracle
module Gen = Qa.Grid_gen
module Grid = Qa.Grid
module I = Tracing.Instr

let checks = Alcotest.(check string)
let checkb = Testutil.checkb

(* ------------------------------------------------------------------ *)
(* 1. Differential battery: reference vs every driver.                 *)

let battery_shape =
  { Gen.default_shape with max_epochs = 4; max_block = 4; n_addrs = 4 }

let battery_grids = 500

let differential_battery () =
  let pool2 = Butterfly.Domain_pool.create ~name:"rc-pool2" ~domains:2 () in
  let pool8 = Butterfly.Domain_pool.create ~name:"rc-pool8" ~domains:8 () in
  Fun.protect
    ~finally:(fun () ->
      Butterfly.Domain_pool.shutdown pool2;
      Butterfly.Domain_pool.shutdown pool8)
  @@ fun () ->
  for seed = 0 to battery_grids - 1 do
    (* Mostly lock/fork/join-dense grids; every fourth grid is the mixed
       profile, covering sync-free traffic and the alloc/taint opcodes
       RaceCheck must ignore. *)
    let profile = if seed mod 4 = 3 then Gen.Mixed else Gen.Racy in
    let rs = Random.State.make [| 0xace; seed |] in
    let g = Gen.grid ~shape:battery_shape profile rs in
    let epochs = Grid.epochs g in
    let reference = RC.fingerprint (RCS.check epochs) in
    List.iter
      (fun (label, report) ->
        let fp = RC.fingerprint report in
        if not (String.equal reference fp) then
          Alcotest.failf
            "%s diverges from the sequential reference on grid seed=%d:\n\
             %s\nreference: %s\n%s:  %s"
            label seed
            (Format.asprintf "%a" Grid.pp g)
            reference label fp)
      [
        ("sequential", RC.run epochs);
        ("flat", RC.run ~state:`Flat epochs);
        ("pooled(2)", RC.run ~pool:pool2 epochs);
        ("pooled(8)", RC.run ~pool:pool8 epochs);
        ("wavefront(2)", RC.run ~wavefront:true ~pool:pool2 epochs);
        ("wavefront(8)", RC.run ~wavefront:true ~pool:pool8 epochs);
      ]
  done

(* ------------------------------------------------------------------ *)
(* 2. Lattice laws.                                                    *)

let arb_clock =
  let open QCheck.Gen in
  let pos = pair (int_range (-2) 4) (int_range 0 5) in
  let gen =
    let* width = return 3 in
    let+ ps = list_repeat width pos in
    Array.of_list ps
  in
  let print c = Format.asprintf "%a" VC.pp c in
  QCheck.make ~print gen

let arb_clock2 = QCheck.pair arb_clock arb_clock
let arb_clock3 = QCheck.triple arb_clock arb_clock arb_clock

let clock_laws =
  let qt = Testutil.qtest in
  [
    qt "leq reflexive" arb_clock (fun a -> VC.leq a a);
    qt "leq antisymmetric" arb_clock2 (fun (a, b) ->
        (not (VC.leq a b && VC.leq b a)) || VC.equal a b);
    qt "leq transitive" arb_clock3 (fun (a, b, c) ->
        (not (VC.leq a b && VC.leq b c)) || VC.leq a c);
    qt "join is an upper bound" arb_clock2 (fun (a, b) ->
        VC.leq a (VC.join a b) && VC.leq b (VC.join a b));
    qt "join is the LEAST upper bound" arb_clock3 (fun (a, b, c) ->
        (not (VC.leq a c && VC.leq b c)) || VC.leq (VC.join a b) c);
    qt "meet is a lower bound" arb_clock2 (fun (a, b) ->
        VC.leq (VC.meet a b) a && VC.leq (VC.meet a b) b);
    qt "meet is the GREATEST lower bound" arb_clock3 (fun (a, b, c) ->
        (not (VC.leq c a && VC.leq c b)) || VC.leq c (VC.meet a b));
    qt "join monotone" arb_clock3 (fun (a, a', b) ->
        (not (VC.leq a a')) || VC.leq (VC.join a b) (VC.join a' b));
    qt "absorption" arb_clock2 (fun (a, b) ->
        VC.equal (VC.meet a (VC.join a b)) a
        && VC.equal (VC.join a (VC.meet a b)) a);
    qt "commutativity" arb_clock2 (fun (a, b) ->
        VC.equal (VC.join a b) (VC.join b a)
        && VC.equal (VC.meet a b) (VC.meet b a));
    qt "associativity" arb_clock3 (fun (a, b, c) ->
        VC.equal (VC.join a (VC.join b c)) (VC.join (VC.join a b) c)
        && VC.equal (VC.meet a (VC.meet b c)) (VC.meet (VC.meet a b) c));
  ]

let arb_lockset =
  let open QCheck.Gen in
  let gen = map LS.of_list (list_size (int_bound 6) (int_bound 7)) in
  QCheck.make
    ~print:(fun s ->
      "{" ^ String.concat "," (List.map string_of_int (LS.elements s)) ^ "}")
    gen

let lockset_laws =
  let qt = Testutil.qtest in
  let pair = QCheck.pair arb_lockset arb_lockset in
  [
    qt "intersection is a lower bound" pair (fun (a, b) ->
        LS.subset (LS.inter a b) a && LS.subset (LS.inter a b) b);
    qt "intersection is sound (member of both)" pair (fun (a, b) ->
        LS.for_all (fun x -> LS.mem x a && LS.mem x b) (LS.inter a b));
    qt "union monotone" pair (fun (a, b) ->
        LS.subset a (LS.union a b) && LS.subset b (LS.union a b));
    qt "disjointness is symmetric and matches inter" pair (fun (a, b) ->
        LS.is_empty (LS.inter a b) = LS.is_empty (LS.inter b a));
  ]

(* ------------------------------------------------------------------ *)
(* 3. The interleaving oracle.                                         *)

(* Racy instruction mix over a tiny universe: shared writes and reads,
   two mutexes, fork/join with occasionally-invalid targets. *)
let gen_racy_instr : I.t QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = int_bound 2 in
  let mutex = int_bound 1 in
  let tid = int_bound 2 in
  frequency
    [
      (3, map (fun x -> I.Assign_const x) addr);
      (2, map2 (fun x a -> I.Assign_unop (x, a)) addr addr);
      (3, map (fun a -> I.Read a) addr);
      (3, map (fun m -> I.Lock m) mutex);
      (3, map (fun m -> I.Unlock m) mutex);
      (1, map (fun u -> I.Fork u) tid);
      (1, map (fun u -> I.Join u) tid);
      (1, return I.Nop);
    ]

let gen_program =
  let open QCheck.Gen in
  let* threads = int_range 2 3 in
  let* every = int_range 1 3 in
  let thread = list_size (int_range 0 5) gen_racy_instr in
  let+ iss = list_repeat threads thread in
  Tracing.Program.of_instrs iss |> Tracing.Program.with_heartbeats ~every

let arb_racy = QCheck.make ~print:Tracing.Trace_codec.encode gen_program

let sound name (v : Oracle.verdict) =
  if not v.sound then
    Alcotest.failf "%s: %d orderings (exhaustive=%b), missed:\n  %s" name
      v.orderings_checked v.exhaustive
      (String.concat "\n  " v.missed);
  v.orderings_checked > 0

let cap = 1_500
let samples = 60

let oracle_cases =
  List.map
    (fun (name, wavefront, domains) ->
      Testutil.qtest ~count:100
        (Printf.sprintf "racecheck zero false negatives (%s)" name)
        arb_racy
        (fun p ->
          sound name
            (Oracle.racecheck_zero_false_negatives
               ~model:Memmodel.Consistency.Sequential ~cap ~samples ~wavefront
               ?domains p)))
    [
      ("sequential", false, None);
      ("2 domains", false, Some 2);
      ("wavefront, 2 domains", true, Some 2);
    ]

(* The battery has teeth: disabling the same-epoch backward wing makes
   RaceCheck miss a first-epoch write-write race, and both the oracle
   and the reference differential catch it. *)
let mutation_smoke () =
  let g : Testutil.grid =
    [| [ [| I.Assign_const 0 |] ]; [ [| I.Assign_const 0 |] ] |]
  in
  let epochs = Testutil.epochs_of_grid g in
  let p = Grid.to_program g in
  (* Healthy: the same-epoch pair is flagged and the oracle agrees. *)
  let r = RC.run epochs in
  Alcotest.(check int) "healthy run flags the race" 1 (List.length r.RC.races);
  checkb "healthy oracle sound" true
    (Oracle.racecheck_zero_false_negatives ~cap ~samples p).Oracle.sound;
  checks "healthy reference agrees" (RC.fingerprint (RCS.check epochs))
    (RC.fingerprint r);
  (* Mutated: the pair is silently dropped; the oracle must object. *)
  Fun.protect
    ~finally:(fun () -> RC.Testing.break_same_epoch := false)
    (fun () ->
      RC.Testing.break_same_epoch := true;
      let r' = RC.run epochs in
      Alcotest.(check int) "mutant misses the race" 0 (List.length r'.RC.races);
      let v = Oracle.racecheck_zero_false_negatives ~cap ~samples p in
      checkb "mutant oracle unsound" false v.Oracle.sound;
      checkb "mutant diverges from reference" false
        (String.equal
           (RC.fingerprint (RCS.check epochs))
           (RC.fingerprint r')))

(* ------------------------------------------------------------------ *)
(* 4. Known-answer workloads.                                          *)

let sorted_addrs = List.sort_uniq compare

let scenario_case (s : Workloads.Races.scenario) =
  Alcotest.test_case s.name `Quick (fun () ->
      let epochs = Butterfly.Epochs.of_program s.program in
      let r = RC.run epochs in
      let flagged = RC.flagged_addrs r in
      Alcotest.(check (list int))
        (s.name ^ ": flags exactly the racy addresses")
        (sorted_addrs s.racy_addrs) flagged;
      List.iter
        (fun a ->
          checkb
            (Printf.sprintf "%s: guarded address %d stays clean" s.name a)
            false (List.mem a flagged))
        s.guarded_addrs;
      (* The windowed verdicts also satisfy the ordering oracle. *)
      checkb (s.name ^ ": oracle sound") true
        (Oracle.racecheck_zero_false_negatives ~cap ~samples s.program)
          .Oracle.sound;
      (* And every driver reproduces them. *)
      checks
        (s.name ^ ": wavefront == sequential")
        (RC.fingerprint r)
        (RC.fingerprint (RC.run ~wavefront:true ~domains:2 epochs)))

let faults_twins () =
  let racy_program, bugs =
    Workloads.Faults.data_race ~threads:3 ~scale:40 ~seed:7 ()
  in
  let locked_program, no_bugs =
    Workloads.Faults.data_race ~locked:true ~threads:3 ~scale:40 ~seed:7 ()
  in
  Alcotest.(check int) "one injected race" 1 (List.length bugs);
  Alcotest.(check int) "locked twin injects nothing" 0 (List.length no_bugs);
  let flags p =
    RC.flagged_addrs
      (RC.run
         (Butterfly.Epochs.of_program
            (Tracing.Program.with_heartbeats ~every:16 p)))
  in
  let racy_addr = (List.hd bugs).Workloads.Faults.addr in
  checkb "injected race is flagged" true (List.mem racy_addr (flags racy_program));
  Alcotest.(check (list int)) "locked twin is race-free" [] (flags locked_program)

let synthetic_discipline () =
  (* Full lock discipline is race-free by construction; dropping the
     discipline seeds races on the shared counters. *)
  let epochs_of b =
    Butterfly.Epochs.of_program
      (Tracing.Program.with_heartbeats ~every:8 (Workloads.Workload.Bundle.program b))
  in
  let clean =
    Workloads.Synthetic.generate_racy ~discipline:1.0 ~threads:3 ~scale:60
      ~seed:11 ()
  in
  Alcotest.(check (list int))
    "discipline 1.0 is race-free" []
    (RC.flagged_addrs (RC.run (epochs_of clean)));
  let sloppy =
    Workloads.Synthetic.generate_racy ~discipline:0.3 ~threads:3 ~scale:60
      ~seed:11 ()
  in
  checkb "discipline 0.3 races" true
    (RC.flagged_addrs (RC.run (epochs_of sloppy)) <> [])

let () =
  Alcotest.run "racecheck"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf
               "%d grids: reference == sequential/flat/pooled-2/pooled-8/wavefront"
               battery_grids)
            `Slow differential_battery;
        ] );
      ("vclock-lattice", clock_laws);
      ("lockset-lattice", lockset_laws);
      ( "oracle",
        oracle_cases
        @ [ Alcotest.test_case "mutation smoke test" `Quick mutation_smoke ] );
      ( "workloads",
        List.map scenario_case (Workloads.Races.all ())
        @ [
            Alcotest.test_case "faults twin pair" `Quick faults_twins;
            Alcotest.test_case "synthetic lock discipline" `Quick
              synthetic_discipline;
          ] );
    ]
