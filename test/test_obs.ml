(* The Obs telemetry subsystem: registry semantics, sink swapping,
   snapshot determinism, JSON serialization — and the pipeline's window
   accounting: the streaming scheduler's occupancy metrics must agree
   with its own high-water-mark accessor and with the batch
   Epochs.of_program pipeline on the same trace. *)

let counter_semantics =
  Alcotest.test_case "counters aggregate in the memory sink" `Quick (fun () ->
      let c = Obs.Counter.make "t.count" in
      let cl = Obs.Counter.make ~labels:[ ("k", "v") ] "t.count" in
      Obs.Counter.incr c;
      (* dropped: null sink *)
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Alcotest.(check bool) "enabled under memory sink" true (Obs.enabled ());
          Obs.Counter.incr c;
          Obs.Counter.add c 41;
          Obs.Counter.add cl 7);
      Alcotest.(check bool) "disabled after restore" false (Obs.enabled ());
      let snap = Obs.Sink.snapshot sink in
      Alcotest.(check int) "unlabelled" 42 (Obs.Snapshot.counter snap "t.count");
      Alcotest.(check int) "labelled is a separate series" 7
        (Obs.Snapshot.counter ~labels:[ ("k", "v") ] snap "t.count");
      Alcotest.(check int) "absent counter reads 0" 0
        (Obs.Snapshot.counter snap "t.missing"))

let gauge_semantics =
  Alcotest.test_case "gauges: set overwrites, set_max keeps the max" `Quick
    (fun () ->
      let g = Obs.Gauge.make "t.gauge" in
      let hwm = Obs.Gauge.make "t.hwm" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Gauge.set g 5.0;
          Obs.Gauge.set g 2.0;
          Obs.Gauge.set_max hwm 5.0;
          Obs.Gauge.set_max hwm 2.0);
      let snap = Obs.Sink.snapshot sink in
      Alcotest.(check (float 0.0)) "set" 2.0 (Obs.Snapshot.gauge snap "t.gauge");
      Alcotest.(check (float 0.0)) "set_max" 5.0 (Obs.Snapshot.gauge snap "t.hwm"))

let histogram_semantics =
  Alcotest.test_case "histograms: count/sum/min/max and buckets" `Quick
    (fun () ->
      let h = Obs.Histogram.make "t.hist" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 100.0; 0.5 ]);
      match Obs.Snapshot.find (Obs.Sink.snapshot sink) "t.hist" with
      | Some (Obs.Snapshot.Histogram hs) ->
        Alcotest.(check int) "count" 4 hs.count;
        Alcotest.(check (float 1e-9)) "sum" 104.5 hs.sum;
        Alcotest.(check (float 1e-9)) "min" 0.5 hs.min;
        Alcotest.(check (float 1e-9)) "max" 100.0 hs.max;
        Alcotest.(check int) "buckets partition the observations" 4
          (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.buckets);
        Testutil.checkb "bucket bounds ascend" true
          (let bounds = List.map fst hs.buckets in
           bounds = List.sort compare bounds)
      | _ -> Alcotest.fail "expected a histogram")

let sink_swapping =
  Alcotest.test_case "handles follow the installed sink" `Quick (fun () ->
      let c = Obs.Counter.make "t.swap" in
      let a = Obs.Sink.memory () and b = Obs.Sink.memory () in
      Obs.with_sink a (fun () -> Obs.Counter.incr c);
      Obs.with_sink b (fun () -> Obs.Counter.add c 10);
      (* nested swap restores the outer sink, also on exceptions *)
      Obs.with_sink a (fun () ->
          (try Obs.with_sink b (fun () -> failwith "boom") with Failure _ -> ());
          Obs.Counter.incr c);
      Alcotest.(check int) "sink a" 2
        (Obs.Snapshot.counter (Obs.Sink.snapshot a) "t.swap");
      Alcotest.(check int) "sink b" 10
        (Obs.Snapshot.counter (Obs.Sink.snapshot b) "t.swap"))

let tee_sink =
  Alcotest.test_case "tee duplicates events to both sinks" `Quick (fun () ->
      let c = Obs.Counter.make "t.tee" in
      let a = Obs.Sink.memory () and b = Obs.Sink.memory () in
      Obs.with_sink (Obs.Sink.tee a b) (fun () -> Obs.Counter.add c 3);
      Alcotest.(check int) "a" 3 (Obs.Snapshot.counter (Obs.Sink.snapshot a) "t.tee");
      Alcotest.(check int) "b" 3 (Obs.Snapshot.counter (Obs.Sink.snapshot b) "t.tee"))

let snapshot_determinism =
  Alcotest.test_case "identical runs snapshot identically" `Quick (fun () ->
      let record () =
        let sink = Obs.Sink.memory () in
        Obs.with_sink sink (fun () ->
            let c = Obs.Counter.make ~labels:[ ("x", "1") ] "t.z" in
            let c2 = Obs.Counter.make "t.a" in
            let g = Obs.Gauge.make "t.m" in
            Obs.Counter.add c 5;
            Obs.Counter.add c2 2;
            Obs.Gauge.set_max g 9.0);
        Obs.Sink.snapshot sink
      in
      let s1 = record () and s2 = record () in
      Testutil.checkb "snapshots equal" true (s1 = s2);
      let names = List.map (fun (e : Obs.Snapshot.entry) -> e.name) s1 in
      Testutil.checkb "sorted by name" true (names = List.sort compare names))

let span_timing =
  Alcotest.test_case "spans record durations, also on exceptions" `Quick
    (fun () ->
      let sp = Obs.Span.make "t.span.ns" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Span.time sp (fun () -> ignore (Sys.opaque_identity 42));
          try Obs.Span.time sp (fun () -> failwith "die") with Failure _ -> ());
      match Obs.Snapshot.find (Obs.Sink.snapshot sink) "t.span.ns" with
      | Some (Obs.Snapshot.Histogram hs) ->
        Alcotest.(check int) "both thunks recorded" 2 hs.count;
        Testutil.checkb "durations are non-negative" true (hs.min >= 0.0)
      | _ -> Alcotest.fail "expected a histogram")

let json_output =
  Alcotest.test_case "snapshot serializes to well-formed JSON" `Quick (fun () ->
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Counter.add (Obs.Counter.make ~labels:[ ("l", "x\"y") ] "t.j") 1;
          Obs.Histogram.observe (Obs.Histogram.make "t.h") 2.0);
      let s = Obs.Json.to_string (Obs.Snapshot.to_json (Obs.Sink.snapshot sink)) in
      Testutil.checkb "escapes quotes" true
        (Astring.String.is_infix ~affix:{|x\"y|} s);
      Testutil.checkb "histogram fields present" true
        (Astring.String.is_infix ~affix:{|"type":"histogram"|} s);
      (* Spot-check the tiny emitter against hand-written JSON. *)
      Alcotest.(check string) "literal rendering"
        {|{"a":[1,2.5,null,true,"s"],"b":{}}|}
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "a",
                  Obs.Json.List
                    [
                      Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null;
                      Obs.Json.Bool true; Obs.Json.String "s";
                    ] );
                ("b", Obs.Json.Obj []);
              ])))

let jsonl_sink =
  Alcotest.test_case "jsonl sink emits one line per event" `Quick (fun () ->
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Obs.with_sink (Obs.Sink.jsonl ppf) (fun () ->
          let c = Obs.Counter.make "t.l" in
          Obs.Counter.incr c;
          Obs.Counter.add c 2;
          Obs.Gauge.set (Obs.Gauge.make "t.g") 1.5);
      Format.pp_print_flush ppf ();
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "three events, three lines" 3 (List.length lines);
      List.iter
        (fun l ->
          Testutil.checkb "line is a JSON object" true
            (String.length l > 1 && l.[0] = '{'
            && l.[String.length l - 1] = '}'))
        lines)

let histogram_edge_cases =
  Alcotest.test_case "histogram min/max: single and negative observations"
    `Quick (fun () ->
      (* A single observation pins every statistic to itself; the memory
         sink can never render min as 0 unless 0 was observed — the
         "min is 0 when count = 0" clause in the docs applies only to
         hand-built empty snapshots, which the sink cannot produce. *)
      let one v =
        let h = Obs.Histogram.make "t.single" in
        let sink = Obs.Sink.memory () in
        Obs.with_sink sink (fun () -> Obs.Histogram.observe h v);
        match Obs.Snapshot.find (Obs.Sink.snapshot sink) "t.single" with
        | Some (Obs.Snapshot.Histogram hs) -> hs
        | _ -> Alcotest.fail "expected a histogram"
      in
      let hs = one 7.25 in
      Alcotest.(check int) "count 1" 1 hs.count;
      Alcotest.(check (float 0.0)) "min = the observation" 7.25 hs.min;
      Alcotest.(check (float 0.0)) "max = the observation" 7.25 hs.max;
      Alcotest.(check (float 0.0)) "sum = the observation" 7.25 hs.sum;
      let neg = one (-3.5) in
      Alcotest.(check (float 0.0)) "negative min survives" (-3.5) neg.min;
      Alcotest.(check (float 0.0)) "negative max survives" (-3.5) neg.max;
      (* A span-shaped zero-duration observation: min must be a real 0
         from observing, not a count-0 placeholder. *)
      let z = one 0.0 in
      Alcotest.(check int) "count 1 at zero" 1 z.count;
      Alcotest.(check (float 0.0)) "zero min" 0.0 z.min)

let json_parser =
  Alcotest.test_case "Json.of_string: round-trips and precise errors" `Quick
    (fun () ->
      let open Obs.Json in
      let roundtrip v =
        match of_string (to_string v) with
        | Ok v' -> Alcotest.(check string) "round-trip" (to_string v) (to_string v')
        | Error m -> Alcotest.fail ("parse failed: " ^ m)
      in
      List.iter roundtrip
        [
          Null; Bool true; Bool false; Int 0; Int (-42); Float 2.5;
          Float (-0.125); String ""; String "a\"b\\c\nd\te";
          String "unicode: \xc3\xa9"; List []; Obj [];
          List [ Int 1; List [ Obj [ ("k", Null) ] ] ];
          Obj [ ("a", Int 1); ("b", List [ Bool false ]); ("c", String "x") ];
        ];
      (* Ints stay ints, fractions and exponents become floats. *)
      (match of_string "17" with
      | Ok (Int 17) -> ()
      | _ -> Alcotest.fail "17 should parse as Int");
      (match of_string "17.0" with
      | Ok (Float 17.0) -> ()
      | _ -> Alcotest.fail "17.0 should parse as Float");
      (match of_string "1e3" with
      | Ok (Float 1000.0) -> ()
      | _ -> Alcotest.fail "1e3 should parse as Float");
      (* \u escapes decode to UTF-8; raw UTF-8 passes through. *)
      (match of_string "\"\\u00e9\"" with
      | Ok (String "\xc3\xa9") -> ()
      | _ -> Alcotest.fail "\\u00e9 should decode to UTF-8");
      (match of_string "\"\xc3\xa9\"" with
      | Ok (String "\xc3\xa9") -> ()
      | _ -> Alcotest.fail "raw UTF-8 should pass through");
      (* Errors carry a byte offset and reject trailing garbage. *)
      let fails s =
        match of_string s with
        | Error m ->
          Testutil.checkb ("offset in: " ^ m) true
            (Astring.String.is_prefix ~affix:"byte " m)
        | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
      in
      List.iter fails
        [ ""; "{"; "[1,"; "{\"a\"}"; "tru"; "1 2"; "\"unterminated"; "{]";
          "[1] trailing"; "nan" ])

let jsonl_scope =
  Alcotest.test_case "jsonl events carry t_ns and the active scope" `Quick
    (fun () ->
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      let c = Obs.Counter.make "t.scoped" in
      Obs.with_sink (Obs.Sink.jsonl ppf) (fun () ->
          Obs.Counter.incr c;
          Obs.Scope.with_scope ~epoch:3 ~phase:"pass1" (fun () ->
              Obs.Counter.incr c;
              (* nested scope inherits epoch, overrides phase, adds tid *)
              Obs.Scope.with_scope ~tid:1 ~phase:"pass2" (fun () ->
                  Obs.Counter.incr c));
          (* restored after the nested scopes *)
          Obs.Counter.incr c);
      Format.pp_print_flush ppf ();
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "four events" 4 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match Obs.Json.of_string l with
            | Ok (Obs.Json.Obj fields) -> fields
            | _ -> Alcotest.fail "event line must parse as an object")
          lines
      in
      List.iter
        (fun fields ->
          Testutil.checkb "t_ns present" true
            (List.mem_assoc "t_ns" fields))
        parsed;
      let scope_of fields =
        match List.assoc_opt "scope" fields with
        | Some (Obs.Json.Obj s) -> Some s
        | _ -> None
      in
      (match List.map scope_of parsed with
      | [ None; Some s1; Some s2; None ] ->
        Alcotest.(check bool) "outer scope: epoch 3" true
          (List.assoc_opt "epoch" s1 = Some (Obs.Json.Int 3));
        Alcotest.(check bool) "outer scope: phase pass1" true
          (List.assoc_opt "phase" s1 = Some (Obs.Json.String "pass1"));
        Alcotest.(check bool) "outer scope: no tid" true
          (List.assoc_opt "tid" s1 = None);
        Alcotest.(check bool) "nested: epoch inherited" true
          (List.assoc_opt "epoch" s2 = Some (Obs.Json.Int 3));
        Alcotest.(check bool) "nested: tid layered in" true
          (List.assoc_opt "tid" s2 = Some (Obs.Json.Int 1));
        Alcotest.(check bool) "nested: phase overridden" true
          (List.assoc_opt "phase" s2 = Some (Obs.Json.String "pass2"))
      | _ -> Alcotest.fail "scope should appear on exactly the scoped events");
      (* Scopes restore on exceptions too. *)
      (try
         Obs.with_sink (Obs.Sink.memory ()) (fun () ->
             Obs.Scope.with_scope ~epoch:9 (fun () -> failwith "die"))
       with Failure _ -> ());
      Testutil.checkb "scope restored after raise" true
        (Obs.Scope.current () = Obs.Scope.none))

let prometheus_exposition =
  Alcotest.test_case "Prometheus text exposition is pinned" `Quick (fun () ->
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Counter.add
            (Obs.Counter.make ~labels:[ ("lifeguard", "x\"y\n") ] "lifeguard.checks")
            12;
          Obs.Gauge.set (Obs.Gauge.make "pool.utilization") 0.75;
          let h = Obs.Histogram.make "t.lat.ns" in
          List.iter (Obs.Histogram.observe h) [ 10.0; 100.0; 100.0 ]);
      let text = Obs.Snapshot.to_prometheus (Obs.Sink.snapshot sink) in
      Alcotest.(check string) "exposition"
        ("# TYPE lifeguard_checks counter\n\
          lifeguard_checks{lifeguard=\"x\\\"y\\n\"} 12\n\
          # TYPE pool_utilization gauge\n\
          pool_utilization 0.75\n\
          # TYPE t_lat_ns histogram\n\
          t_lat_ns_bucket{le=\"16\"} 1\n\
          t_lat_ns_bucket{le=\"128\"} 3\n\
          t_lat_ns_bucket{le=\"+Inf\"} 3\n\
          t_lat_ns_sum 210\n\
          t_lat_ns_count 3\n")
        text;
      (* Cumulative bucket counts never decrease. *)
      let sink2 = Obs.Sink.memory () in
      Obs.with_sink sink2 (fun () ->
          let h = Obs.Histogram.make "m" in
          List.iter (Obs.Histogram.observe h) (List.init 100 float_of_int));
      let lines =
        String.split_on_char '\n' (Obs.Snapshot.to_prometheus (Obs.Sink.snapshot sink2))
      in
      let counts =
        List.filter_map
          (fun l ->
            if Astring.String.is_prefix ~affix:"m_bucket" l then
              int_of_string_opt
                (List.nth (String.split_on_char ' ' l)
                   (List.length (String.split_on_char ' ' l) - 1))
            else None)
          lines
      in
      Testutil.checkb "monotone buckets" true
        (counts = List.sort compare counts && counts <> []))

let null_sink_allocation_free =
  Alcotest.test_case "null sink: instruments allocate nothing" `Quick (fun () ->
      Alcotest.(check bool) "null sink installed" false (Obs.enabled ());
      let c = Obs.Counter.make "t.alloc.c" in
      let g = Obs.Gauge.make "t.alloc.g" in
      let h = Obs.Histogram.make "t.alloc.h" in
      (* Pre-boxed float: passing a literal would box at the call site and
         charge the measurement with the caller's allocation, not the
         instrument's. *)
      let v = Sys.opaque_identity 1.5 in
      let iters = 10_000 in
      let measure f =
        f ();
        (* warm-up: first call may allocate closures/handles lazily *)
        let before = Gc.minor_words () in
        for _ = 1 to iters do
          f ()
        done;
        Gc.minor_words () -. before
      in
      let check_free what f =
        let words = measure f in
        Testutil.checkb
          (Printf.sprintf "%s allocated %.0f words over %d calls" what words
             iters)
          true
          (words < 64.0)
      in
      check_free "Counter.incr" (fun () -> Obs.Counter.incr c);
      check_free "Counter.add" (fun () -> Obs.Counter.add c 3);
      check_free "Gauge.set" (fun () -> Obs.Gauge.set g v);
      check_free "Gauge.set_max" (fun () -> Obs.Gauge.set_max g v);
      check_free "Histogram.observe" (fun () -> Obs.Histogram.observe h v))

(* ------------------------------------------------------------------ *)
(* Scheduler window accounting vs the batch pipeline. *)

module RD = Butterfly.Reaching_definitions
module Sched = Butterfly.Scheduler.Make (RD.Problem)

let sched_labels = [ ("driver", "streaming"); ("problem", "reaching-definitions") ]

let window_accounting =
  Alcotest.test_case "occupancy metrics agree with the batch pipeline" `Quick
    (fun () ->
      let instrs =
        List.init 600 (fun k ->
            if k mod 7 = 0 then Tracing.Instr.Read (k mod 13)
            else Tracing.Instr.Assign_const (k mod 5))
      in
      let p =
        Tracing.Program.of_instrs [ instrs; instrs; instrs ]
        |> Tracing.Program.with_heartbeats ~every:25
      in
      let epochs = Butterfly.Epochs.of_program p in
      let sink = Obs.Sink.memory () in
      let s =
        Obs.with_sink sink (fun () ->
            let s = Sched.create ~threads:3 ~on_instr:(fun _ -> ()) () in
            (* Round-robin feed: threads advance together. *)
            let evs =
              Array.init 3 (fun tid ->
                  Tracing.Trace.events (Tracing.Program.trace p tid))
            in
            for k = 0 to Array.length evs.(0) - 1 do
              for tid = 0 to 2 do
                if k < Array.length evs.(tid) then Sched.feed s tid evs.(tid).(k)
              done
            done;
            Sched.finish s;
            s)
      in
      let snap = Obs.Sink.snapshot sink in
      let counter = Obs.Snapshot.counter ~labels:sched_labels snap in
      let gauge = Obs.Snapshot.gauge ~labels:sched_labels snap in
      Alcotest.(check int) "epochs processed = batch epoch count"
        (Butterfly.Epochs.num_epochs epochs)
        (counter "butterfly.epochs_processed");
      Alcotest.(check int) "epochs processed = scheduler accessor"
        (Sched.epochs_completed s)
        (counter "butterfly.epochs_processed");
      Alcotest.(check int) "pass-2 instrs = batch instr count"
        (Butterfly.Epochs.instr_count epochs)
        (counter "butterfly.pass2_instrs");
      Alcotest.(check int) "every block of the grid was closed"
        (3 * Butterfly.Epochs.num_epochs epochs)
        (counter "scheduler.blocks_closed");
      Alcotest.(check (float 0.0)) "occupancy hwm = max_resident_epochs"
        (float_of_int (Sched.max_resident_epochs s))
        (gauge "scheduler.window_occupancy_hwm");
      Testutil.checkb "window stayed bounded" true
        (gauge "scheduler.window_occupancy_hwm" <= 6.0))

let null_sink_inert =
  Alcotest.test_case "null sink: pipeline runs emit nothing" `Quick (fun () ->
      Alcotest.(check bool) "disabled" false (Obs.enabled ());
      let p =
        Tracing.Program.of_instrs [ List.init 40 (fun k -> Tracing.Instr.Read k) ]
        |> Tracing.Program.with_heartbeats ~every:10
      in
      ignore (RD.run (Butterfly.Epochs.of_program p));
      Alcotest.(check int) "null registry snapshots empty" 0
        (List.length (Obs.Sink.snapshot (Obs.sink ()))))

(* The flat backend's promise is that the hot transfer-function loop
   works in place: once the arena has grown to the working address span,
   the [Dense] set algebra must not touch the minor heap at all — the
   same budget-style Gc.minor_words guard as the instrument test above,
   because a regression here (an accidental [Bytes.make] in an _into op)
   would silently melt the fast path without failing any equivalence
   test. *)
let flat_transfer_allocation_free =
  Alcotest.test_case
    "null sink: arena transfer functions allocate nothing" `Quick (fun () ->
      Alcotest.(check bool) "null sink installed" false (Obs.enabled ());
      let module FA = Butterfly.Fact_arena in
      let d = FA.Dense.create ~capacity_bits:4096 () in
      let gen = FA.Bitset.range 100 180 in
      let kill = FA.Bitset.of_list [ 7; 64; 130; 700; 701 ] in
      let iters = 10_000 in
      let measure f =
        f ();
        (* warm-up: the first call may still grow the arena *)
        let before = Gc.minor_words () in
        for _ = 1 to iters do
          f ()
        done;
        Gc.minor_words () -. before
      in
      let check_free what f =
        let words = measure f in
        Testutil.checkb
          (Printf.sprintf "%s allocated %.0f words over %d calls" what words
             iters)
          true
          (words < 64.0)
      in
      check_free "Dense.set/unset" (fun () ->
          FA.Dense.set d 900;
          FA.Dense.unset d 900);
      check_free "Dense.union_into" (fun () -> FA.Dense.union_into d gen);
      check_free "Dense.diff_into" (fun () -> FA.Dense.diff_into d kill);
      check_free "Dense.inter_into" (fun () -> FA.Dense.inter_into d gen);
      check_free "Dense.clear" (fun () -> FA.Dense.clear d);
      (* And under the null sink the whole flat-backend run stays silent:
         the state.arena.* counters exist only where a sink is live. *)
      let p =
        Tracing.Program.of_instrs
          [ List.init 60 (fun k -> Tracing.Instr.Malloc { base = 4 * k; size = 4 }) ]
        |> Tracing.Program.with_heartbeats ~every:16
      in
      ignore
        (Lifeguards.Addrcheck.run ~state:`Flat (Butterfly.Epochs.of_program p));
      Alcotest.(check int) "null registry snapshots empty" 0
        (List.length (Obs.Sink.snapshot (Obs.sink ()))))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          counter_semantics; gauge_semantics; histogram_semantics;
          histogram_edge_cases; sink_swapping; tee_sink; snapshot_determinism;
          span_timing;
        ] );
      ( "serialization",
        [ json_output; jsonl_sink; json_parser; jsonl_scope;
          prometheus_exposition ] );
      ("pipeline", [ window_accounting; null_sink_inert;
                     null_sink_allocation_free;
                     flat_transfer_allocation_free ]);
    ]
