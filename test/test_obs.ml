(* The Obs telemetry subsystem: registry semantics, sink swapping,
   snapshot determinism, JSON serialization — and the pipeline's window
   accounting: the streaming scheduler's occupancy metrics must agree
   with its own high-water-mark accessor and with the batch
   Epochs.of_program pipeline on the same trace. *)

let counter_semantics =
  Alcotest.test_case "counters aggregate in the memory sink" `Quick (fun () ->
      let c = Obs.Counter.make "t.count" in
      let cl = Obs.Counter.make ~labels:[ ("k", "v") ] "t.count" in
      Obs.Counter.incr c;
      (* dropped: null sink *)
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Alcotest.(check bool) "enabled under memory sink" true (Obs.enabled ());
          Obs.Counter.incr c;
          Obs.Counter.add c 41;
          Obs.Counter.add cl 7);
      Alcotest.(check bool) "disabled after restore" false (Obs.enabled ());
      let snap = Obs.Sink.snapshot sink in
      Alcotest.(check int) "unlabelled" 42 (Obs.Snapshot.counter snap "t.count");
      Alcotest.(check int) "labelled is a separate series" 7
        (Obs.Snapshot.counter ~labels:[ ("k", "v") ] snap "t.count");
      Alcotest.(check int) "absent counter reads 0" 0
        (Obs.Snapshot.counter snap "t.missing"))

let gauge_semantics =
  Alcotest.test_case "gauges: set overwrites, set_max keeps the max" `Quick
    (fun () ->
      let g = Obs.Gauge.make "t.gauge" in
      let hwm = Obs.Gauge.make "t.hwm" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Gauge.set g 5.0;
          Obs.Gauge.set g 2.0;
          Obs.Gauge.set_max hwm 5.0;
          Obs.Gauge.set_max hwm 2.0);
      let snap = Obs.Sink.snapshot sink in
      Alcotest.(check (float 0.0)) "set" 2.0 (Obs.Snapshot.gauge snap "t.gauge");
      Alcotest.(check (float 0.0)) "set_max" 5.0 (Obs.Snapshot.gauge snap "t.hwm"))

let histogram_semantics =
  Alcotest.test_case "histograms: count/sum/min/max and buckets" `Quick
    (fun () ->
      let h = Obs.Histogram.make "t.hist" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 100.0; 0.5 ]);
      match Obs.Snapshot.find (Obs.Sink.snapshot sink) "t.hist" with
      | Some (Obs.Snapshot.Histogram hs) ->
        Alcotest.(check int) "count" 4 hs.count;
        Alcotest.(check (float 1e-9)) "sum" 104.5 hs.sum;
        Alcotest.(check (float 1e-9)) "min" 0.5 hs.min;
        Alcotest.(check (float 1e-9)) "max" 100.0 hs.max;
        Alcotest.(check int) "buckets partition the observations" 4
          (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.buckets);
        Testutil.checkb "bucket bounds ascend" true
          (let bounds = List.map fst hs.buckets in
           bounds = List.sort compare bounds)
      | _ -> Alcotest.fail "expected a histogram")

let sink_swapping =
  Alcotest.test_case "handles follow the installed sink" `Quick (fun () ->
      let c = Obs.Counter.make "t.swap" in
      let a = Obs.Sink.memory () and b = Obs.Sink.memory () in
      Obs.with_sink a (fun () -> Obs.Counter.incr c);
      Obs.with_sink b (fun () -> Obs.Counter.add c 10);
      (* nested swap restores the outer sink, also on exceptions *)
      Obs.with_sink a (fun () ->
          (try Obs.with_sink b (fun () -> failwith "boom") with Failure _ -> ());
          Obs.Counter.incr c);
      Alcotest.(check int) "sink a" 2
        (Obs.Snapshot.counter (Obs.Sink.snapshot a) "t.swap");
      Alcotest.(check int) "sink b" 10
        (Obs.Snapshot.counter (Obs.Sink.snapshot b) "t.swap"))

let tee_sink =
  Alcotest.test_case "tee duplicates events to both sinks" `Quick (fun () ->
      let c = Obs.Counter.make "t.tee" in
      let a = Obs.Sink.memory () and b = Obs.Sink.memory () in
      Obs.with_sink (Obs.Sink.tee a b) (fun () -> Obs.Counter.add c 3);
      Alcotest.(check int) "a" 3 (Obs.Snapshot.counter (Obs.Sink.snapshot a) "t.tee");
      Alcotest.(check int) "b" 3 (Obs.Snapshot.counter (Obs.Sink.snapshot b) "t.tee"))

let snapshot_determinism =
  Alcotest.test_case "identical runs snapshot identically" `Quick (fun () ->
      let record () =
        let sink = Obs.Sink.memory () in
        Obs.with_sink sink (fun () ->
            let c = Obs.Counter.make ~labels:[ ("x", "1") ] "t.z" in
            let c2 = Obs.Counter.make "t.a" in
            let g = Obs.Gauge.make "t.m" in
            Obs.Counter.add c 5;
            Obs.Counter.add c2 2;
            Obs.Gauge.set_max g 9.0);
        Obs.Sink.snapshot sink
      in
      let s1 = record () and s2 = record () in
      Testutil.checkb "snapshots equal" true (s1 = s2);
      let names = List.map (fun (e : Obs.Snapshot.entry) -> e.name) s1 in
      Testutil.checkb "sorted by name" true (names = List.sort compare names))

let span_timing =
  Alcotest.test_case "spans record durations, also on exceptions" `Quick
    (fun () ->
      let sp = Obs.Span.make "t.span.ns" in
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Span.time sp (fun () -> ignore (Sys.opaque_identity 42));
          try Obs.Span.time sp (fun () -> failwith "die") with Failure _ -> ());
      match Obs.Snapshot.find (Obs.Sink.snapshot sink) "t.span.ns" with
      | Some (Obs.Snapshot.Histogram hs) ->
        Alcotest.(check int) "both thunks recorded" 2 hs.count;
        Testutil.checkb "durations are non-negative" true (hs.min >= 0.0)
      | _ -> Alcotest.fail "expected a histogram")

let json_output =
  Alcotest.test_case "snapshot serializes to well-formed JSON" `Quick (fun () ->
      let sink = Obs.Sink.memory () in
      Obs.with_sink sink (fun () ->
          Obs.Counter.add (Obs.Counter.make ~labels:[ ("l", "x\"y") ] "t.j") 1;
          Obs.Histogram.observe (Obs.Histogram.make "t.h") 2.0);
      let s = Obs.Json.to_string (Obs.Snapshot.to_json (Obs.Sink.snapshot sink)) in
      Testutil.checkb "escapes quotes" true
        (Astring.String.is_infix ~affix:{|x\"y|} s);
      Testutil.checkb "histogram fields present" true
        (Astring.String.is_infix ~affix:{|"type":"histogram"|} s);
      (* Spot-check the tiny emitter against hand-written JSON. *)
      Alcotest.(check string) "literal rendering"
        {|{"a":[1,2.5,null,true,"s"],"b":{}}|}
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "a",
                  Obs.Json.List
                    [
                      Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null;
                      Obs.Json.Bool true; Obs.Json.String "s";
                    ] );
                ("b", Obs.Json.Obj []);
              ])))

let jsonl_sink =
  Alcotest.test_case "jsonl sink emits one line per event" `Quick (fun () ->
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Obs.with_sink (Obs.Sink.jsonl ppf) (fun () ->
          let c = Obs.Counter.make "t.l" in
          Obs.Counter.incr c;
          Obs.Counter.add c 2;
          Obs.Gauge.set (Obs.Gauge.make "t.g") 1.5);
      Format.pp_print_flush ppf ();
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "three events, three lines" 3 (List.length lines);
      List.iter
        (fun l ->
          Testutil.checkb "line is a JSON object" true
            (String.length l > 1 && l.[0] = '{'
            && l.[String.length l - 1] = '}'))
        lines)

(* ------------------------------------------------------------------ *)
(* Scheduler window accounting vs the batch pipeline. *)

module RD = Butterfly.Reaching_definitions
module Sched = Butterfly.Scheduler.Make (RD.Problem)

let sched_labels = [ ("driver", "streaming"); ("problem", "reaching-definitions") ]

let window_accounting =
  Alcotest.test_case "occupancy metrics agree with the batch pipeline" `Quick
    (fun () ->
      let instrs =
        List.init 600 (fun k ->
            if k mod 7 = 0 then Tracing.Instr.Read (k mod 13)
            else Tracing.Instr.Assign_const (k mod 5))
      in
      let p =
        Tracing.Program.of_instrs [ instrs; instrs; instrs ]
        |> Tracing.Program.with_heartbeats ~every:25
      in
      let epochs = Butterfly.Epochs.of_program p in
      let sink = Obs.Sink.memory () in
      let s =
        Obs.with_sink sink (fun () ->
            let s = Sched.create ~threads:3 ~on_instr:(fun _ -> ()) () in
            (* Round-robin feed: threads advance together. *)
            let evs =
              Array.init 3 (fun tid ->
                  Tracing.Trace.events (Tracing.Program.trace p tid))
            in
            for k = 0 to Array.length evs.(0) - 1 do
              for tid = 0 to 2 do
                if k < Array.length evs.(tid) then Sched.feed s tid evs.(tid).(k)
              done
            done;
            Sched.finish s;
            s)
      in
      let snap = Obs.Sink.snapshot sink in
      let counter = Obs.Snapshot.counter ~labels:sched_labels snap in
      let gauge = Obs.Snapshot.gauge ~labels:sched_labels snap in
      Alcotest.(check int) "epochs processed = batch epoch count"
        (Butterfly.Epochs.num_epochs epochs)
        (counter "butterfly.epochs_processed");
      Alcotest.(check int) "epochs processed = scheduler accessor"
        (Sched.epochs_completed s)
        (counter "butterfly.epochs_processed");
      Alcotest.(check int) "pass-2 instrs = batch instr count"
        (Butterfly.Epochs.instr_count epochs)
        (counter "butterfly.pass2_instrs");
      Alcotest.(check int) "every block of the grid was closed"
        (3 * Butterfly.Epochs.num_epochs epochs)
        (counter "scheduler.blocks_closed");
      Alcotest.(check (float 0.0)) "occupancy hwm = max_resident_epochs"
        (float_of_int (Sched.max_resident_epochs s))
        (gauge "scheduler.window_occupancy_hwm");
      Testutil.checkb "window stayed bounded" true
        (gauge "scheduler.window_occupancy_hwm" <= 6.0))

let null_sink_inert =
  Alcotest.test_case "null sink: pipeline runs emit nothing" `Quick (fun () ->
      Alcotest.(check bool) "disabled" false (Obs.enabled ());
      let p =
        Tracing.Program.of_instrs [ List.init 40 (fun k -> Tracing.Instr.Read k) ]
        |> Tracing.Program.with_heartbeats ~every:10
      in
      ignore (RD.run (Butterfly.Epochs.of_program p));
      Alcotest.(check int) "null registry snapshots empty" 0
        (List.length (Obs.Sink.snapshot (Obs.sink ()))))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          counter_semantics; gauge_semantics; histogram_semantics;
          sink_swapping; tee_sink; snapshot_determinism; span_timing;
        ] );
      ("serialization", [ json_output; jsonl_sink ]);
      ("pipeline", [ window_accounting; null_sink_inert ]);
    ]
