(* Wavefront scheduler: dependency-driven pipelining past the epoch
   barrier, proven equivalent to the sequential drivers.

   Five batteries:

   - the cross-driver equivalence battery: 500+ seeded ragged grids, all
     three lifeguards (TaintCheck in every analysis variant), pools of
     1/2/8 domains — every wavefront report fingerprint must be
     byte-identical to the sequential driver's;
   - scheduler-level equivalence for a May problem (reaching
     definitions) and a Must problem (reaching expressions): wavefront
     view sequences and SOS history equal the batch driver's;
   - the readiness rule, pinned by replaying Wavefront.run's dispatch
     log against the butterfly geometry ([Epochs.wings]/head/tail —
     the Lemma 5.2 dependence set) plus the ordered-commit laws;
   - Theorem 6.2 through the wavefront driver: the valid-ordering
     oracle must still find zero false negatives;
   - edge cases: degenerate grids, a pass-2 task that raises (surfaces
     once, pool survives), submit-after-teardown, argument validation. *)

module AC = Lifeguards.Addrcheck
module IC = Lifeguards.Initcheck
module TC = Lifeguards.Taintcheck
module RD = Butterfly.Reaching_definitions
module RE = Butterfly.Reaching_expressions
module Sched_rd = Butterfly.Scheduler.Make (RD.Problem)
module Sched_re = Butterfly.Scheduler.Make (RE.Problem)
module WF = Butterfly.Scheduler.Wavefront

let check = Alcotest.check
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cross-driver equivalence: the 500+-grid battery.                    *)

(* One run of each lifeguard under each driver; a divergent fingerprint
   names the grid (seeded, so any failure replays exactly). *)
type fp_fn =
  ?pool:Butterfly.Domain_pool.t -> ?wavefront:bool -> Butterfly.Epochs.t -> string

let lifeguard_cases : (string * Qa.Grid_gen.profile * fp_fn list) list =
  [
    ( "addrcheck",
      Qa.Grid_gen.Alloc,
      [
        (fun ?pool ?(wavefront = false) epochs ->
          AC.fingerprint (AC.run ?pool ~wavefront epochs));
      ] );
    ( "initcheck",
      Qa.Grid_gen.Init,
      [
        (fun ?pool ?(wavefront = false) epochs ->
          IC.fingerprint (IC.run ?pool ~wavefront epochs));
      ] );
    ( "taintcheck",
      Qa.Grid_gen.Taint,
      List.map
        (fun (sequential, two_phase) ?pool ?(wavefront = false) epochs ->
          TC.fingerprint (TC.run ~sequential ~two_phase ?pool ~wavefront epochs))
        [ (true, true); (false, true); (true, false) ] );
  ]

(* 3 lifeguards x 3 pool widths x 20 grids x (1 or 3 variants) = 540
   grid-runs, each compared against the sequential baseline. *)
let equivalence_battery domains () =
  Butterfly.Domain_pool.with_pool ~name:"wf-test" ~domains (fun pool ->
      List.iter
        (fun (label, profile, fps) ->
          let rng = Random.State.make [| 0x3afe; domains |] in
          for g = 1 to 20 do
            let grid = Qa.Grid_gen.grid profile rng in
            let epochs = Qa.Grid.epochs grid in
            List.iteri
              (fun v (fp : fp_fn) ->
                let expected = fp epochs in
                let got = fp ~pool ~wavefront:true epochs in
                if not (String.equal expected got) then
                  Alcotest.failf
                    "%s[v%d] wavefront(%d) diverged on grid #%d:\n%s\n%s\nvs\n%s"
                    label v domains g
                    (Format.asprintf "%a" Qa.Grid.pp grid)
                    expected got)
              fps
          done)
        lifeguard_cases)

(* ------------------------------------------------------------------ *)
(* Scheduler-level equivalence: May and Must problems, qcheck grids.   *)

let arb_uneven_grid =
  Testutil.arb_grid ~n_addrs:3 ~max_threads:4 ~max_epochs:4 ~max_block:3
    ~uneven:true ()

let key_rd (v : RD.Analysis.instr_view) =
  Format.asprintf "%a|%s|%a|%a|%a" Butterfly.Instr_id.pp v.id
    (Tracing.Instr.to_string v.instr)
    Butterfly.Def_set.pp v.lsos_before Butterfly.Def_set.pp v.in_before
    Butterfly.Def_set.pp v.sos

let key_re (v : RE.Analysis.instr_view) =
  Format.asprintf "%a|%s|%a|%a|%a" Butterfly.Instr_id.pp v.id
    (Tracing.Instr.to_string v.instr)
    Butterfly.Expr_set.pp v.lsos_before Butterfly.Expr_set.pp v.in_before
    Butterfly.Expr_set.pp v.sos

let wavefront_equiv_rd domains g =
  let epochs = Testutil.epochs_of_grid g in
  let batch = ref [] in
  let br = RD.run ~on_instr:(fun v -> batch := key_rd v :: !batch) epochs in
  let stream = ref [] in
  let hist =
    Butterfly.Domain_pool.with_pool ~name:"wf-rd" ~domains (fun pool ->
        let s =
          Sched_rd.run_epochs ~pool ~wavefront:true
            ~on_instr:(fun v -> stream := key_rd v :: !stream)
            epochs
        in
        Sched_rd.sos_history s)
  in
  !batch = !stream
  && Array.length hist = Array.length br.sos
  && Array.for_all2 Butterfly.Def_set.equal br.sos hist

let wavefront_equiv_re domains g =
  let epochs = Testutil.epochs_of_grid g in
  let batch = ref [] in
  let br = RE.run ~on_instr:(fun v -> batch := key_re v :: !batch) epochs in
  let stream = ref [] in
  let hist =
    Butterfly.Domain_pool.with_pool ~name:"wf-re" ~domains (fun pool ->
        let s =
          Sched_re.run_epochs ~pool ~wavefront:true
            ~on_instr:(fun v -> stream := key_re v :: !stream)
            epochs
        in
        Sched_re.sos_history s)
  in
  !batch = !stream
  && Array.length hist = Array.length br.sos
  && Array.for_all2 Butterfly.Expr_set.equal br.sos hist

let scheduler_tests =
  List.concat_map
    (fun domains ->
      [
        Testutil.qtest ~count:120
          (Printf.sprintf "wavefront == batch (May/RD, %d domains)" domains)
          arb_uneven_grid (wavefront_equiv_rd domains);
        Testutil.qtest ~count:110
          (Printf.sprintf "wavefront == batch (Must/RE, %d domains)" domains)
          arb_uneven_grid (wavefront_equiv_re domains);
      ])
    [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Readiness rule: the dispatch log vs the butterfly geometry.         *)

(* Collect Wavefront.run's probe log over an (num_epochs x threads)
   grid; passes are no-ops, so the log is pure scheduling. *)
let probe_log ?pool ?lookahead ~num_epochs ~threads () =
  let log = ref [] in
  WF.run ?pool ?lookahead
    ~probe:(fun e -> log := e :: !log)
    ~num_epochs ~threads
    ~pass1:(fun ~epoch:_ ~tid:_ -> ())
    ~commit1:(fun ~epoch:_ ~tid:_ () -> ())
    ~prepare:(fun _ -> ())
    ~pass2:(fun ~epoch:_ ~tid:_ -> ())
    ~commit2:(fun ~epoch:_ ~tid:_ () -> ())
    ();
  List.rev !log

let position log ev =
  let rec go i = function
    | [] -> None
    | e :: rest -> if e = ev then Some i else go (i + 1) rest
  in
  go 0 log

let pos_exn log ev =
  match position log ev with
  | Some i -> i
  | None -> Alcotest.fail "probe event missing from dispatch log"

(* The Lemma 5.2 dependence set of block (l, t): its own pass-1 facts,
   the head (l-1, t), the tail (l+1, t), and the wings (l', t') with
   l-1 <= l' <= l+1, t' <> t.  Derived here directly from the epoch
   grid's geometry so the scheduler's readiness rule is checked against
   [Epochs.wings]/[head]/[tail], not against its own bookkeeping. *)
let dependence_coords epochs ~epoch ~tid =
  let num = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  let wing_ids =
    Butterfly.Epochs.wings epochs ~epoch ~tid
    |> List.map (fun b -> (b.Butterfly.Block.epoch, b.Butterfly.Block.tid))
  in
  let own = [ (epoch, tid) ] in
  let head = if epoch > 0 then [ (epoch - 1, tid) ] else [] in
  let tail = if epoch + 1 < num then [ (epoch + 1, tid) ] else [] in
  List.filter
    (fun (l, t) -> l >= 0 && l < num && t >= 0 && t < threads)
    (own @ head @ tail @ wing_ids)

let readiness_prop ?pool (num_epochs, threads) =
  let num_epochs = 1 + (num_epochs mod 5) and threads = 1 + (threads mod 4) in
  let log = probe_log ?pool ~num_epochs ~threads () in
  (* Geometry oracle: an all-empty grid of the same shape. *)
  let epochs =
    Butterfly.Epochs.of_blocks
      (Array.make threads (List.init num_epochs (fun _ -> [||])))
  in
  let ok = ref true in
  for l = 0 to num_epochs - 1 do
    for t = 0 to threads - 1 do
      let d2 = pos_exn log (WF.Dispatched { phase = Pass2; epoch = l; tid = t }) in
      (* Every pass-1 fact the butterfly of (l, t) reads is committed
         before its pass-2 dispatch. *)
      List.iter
        (fun (l', t') ->
          let c1 =
            pos_exn log (WF.Committed { phase = Pass1; epoch = l'; tid = t' })
          in
          if c1 >= d2 then ok := false)
        (dependence_coords epochs ~epoch:l ~tid:t);
      (* The SOS recurrence is serial: prepare of epoch l runs after all
         pass-2 commits of l-1, so dispatch of (l, t) must follow them. *)
      if l > 0 then
        for t' = 0 to threads - 1 do
          let c2 =
            pos_exn log (WF.Committed { phase = Pass2; epoch = l - 1; tid = t' })
          in
          if c2 >= d2 then ok := false
        done
    done
  done;
  (* Commits are epoch-major / thread-minor within each pass. *)
  let commit_order phase =
    List.filter_map
      (function
        | WF.Committed { phase = p; epoch; tid } when p = phase ->
          Some (epoch, tid)
        | _ -> None)
      log
  in
  let sorted l = List.sort compare l = l in
  !ok
  && sorted (commit_order WF.Pass1)
  && sorted (commit_order WF.Pass2)
  && List.length log = 4 * num_epochs * threads

let arb_shape =
  QCheck.make
    ~print:(fun (e, t) -> Printf.sprintf "num_epochs~%d threads~%d" e t)
    QCheck.Gen.(pair (int_bound 64) (int_bound 64))

(* The dispatch log is a pure function of (num_epochs, threads,
   lookahead) — never of worker timing — so with the lookahead pinned
   the inline and pooled logs must coincide event for event. *)
let probe_pool_invariance =
  Alcotest.test_case
    "dispatch log is identical with and without a pool (equal lookahead)"
    `Quick (fun () ->
      Butterfly.Domain_pool.with_pool ~name:"wf-probe" ~domains:2 (fun pool ->
          List.iter
            (fun (num_epochs, threads) ->
              List.iter
                (fun lookahead ->
                  let inline = probe_log ~lookahead ~num_epochs ~threads () in
                  let pooled =
                    probe_log ~pool ~lookahead ~num_epochs ~threads ()
                  in
                  check Alcotest.bool
                    (Printf.sprintf "%dx%d lookahead=%d" num_epochs threads
                       lookahead)
                    true (inline = pooled))
                [ 2; 3; 6 ])
            [ (1, 1); (3, 2); (5, 4); (7, 1) ]))

let readiness_tests =
  [
    Testutil.qtest ~count:150 "readiness rule == Lemma 5.2 wings (inline)"
      arb_shape (readiness_prop ?pool:None);
    Testutil.qtest ~count:80 "readiness rule == Lemma 5.2 wings (pooled)"
      arb_shape
      (fun shape ->
        Butterfly.Domain_pool.with_pool ~name:"wf-ready" ~domains:2
          (fun pool -> readiness_prop ~pool shape));
    probe_pool_invariance;
  ]

(* ------------------------------------------------------------------ *)
(* Theorem 6.2 through the wavefront driver.                           *)

let arb_taint_grid =
  Testutil.arb_grid ~n_addrs:3 ~max_threads:3 ~max_epochs:3 ~max_block:2
    ~instr_gen:(Testutil.gen_taint_instr ~n_addrs:3) ()

let theorem_tests =
  [
    Testutil.qtest ~count:60
      "Theorem 6.2: wavefront TaintCheck has zero false negatives"
      arb_taint_grid
      (fun g ->
        let program = Qa.Grid.to_program g in
        let v =
          Lifeguards.Oracle.taintcheck_zero_false_negatives ~cap:120
            ~samples:12 ~seed:5 ~wavefront:true ~domains:2 program
        in
        v.Lifeguards.Oracle.sound);
  ]

(* ------------------------------------------------------------------ *)
(* Edge cases.                                                         *)

let fp_all_drivers epochs =
  Butterfly.Domain_pool.with_pool ~name:"wf-edge" ~domains:2 (fun pool ->
      ( AC.fingerprint (AC.run epochs),
        AC.fingerprint (AC.run ~pool ~wavefront:true epochs) ))

let edge_grid name (g : Testutil.grid) =
  Alcotest.test_case name `Quick (fun () ->
      let epochs = Testutil.epochs_of_grid g in
      let seq, wf = fp_all_drivers epochs in
      checks name seq wf)

exception Boom

let raising_task =
  Alcotest.test_case "a raising pass-2 task surfaces once; pool survives"
    `Quick (fun () ->
      Butterfly.Domain_pool.with_pool ~name:"wf-raise" ~domains:2 (fun pool ->
          let raised = ref 0 in
          (try
             WF.run ~pool ~num_epochs:4 ~threads:2
               ~pass1:(fun ~epoch:_ ~tid:_ -> ())
               ~commit1:(fun ~epoch:_ ~tid:_ () -> ())
               ~prepare:(fun _ -> ())
               ~pass2:(fun ~epoch ~tid ->
                 if epoch = 1 && tid = 1 then raise Boom)
               ~commit2:(fun ~epoch:_ ~tid:_ () -> ())
               ()
           with Boom -> incr raised);
          check Alcotest.int "raised exactly once" 1 !raised;
          (* The pool took the exception in stride: it still runs work. *)
          let f = Butterfly.Domain_pool.async pool (fun () -> 41 + 1) in
          check Alcotest.int "pool survives" 42
            (Butterfly.Domain_pool.await f)))

let submit_after_teardown =
  Alcotest.test_case "submit after shutdown raises Invalid_argument" `Quick
    (fun () ->
      let pool = Butterfly.Domain_pool.create ~name:"wf-dead" ~domains:1 () in
      Butterfly.Domain_pool.shutdown pool;
      (match Butterfly.Domain_pool.async pool (fun () -> ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "async on a shut-down pool must raise");
      match
        WF.run ~pool ~num_epochs:1 ~threads:1
          ~pass1:(fun ~epoch:_ ~tid:_ -> ())
          ~commit1:(fun ~epoch:_ ~tid:_ () -> ())
          ~prepare:(fun _ -> ())
          ~pass2:(fun ~epoch:_ ~tid:_ -> ())
          ~commit2:(fun ~epoch:_ ~tid:_ () -> ())
          ()
      with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "Wavefront.run on a shut-down pool must raise")

let poll_semantics =
  Alcotest.test_case "future poll: false while pending, true when done"
    `Quick (fun () ->
      Butterfly.Domain_pool.with_pool ~name:"wf-poll" ~domains:1 (fun pool ->
          let gate = Atomic.make false in
          let f =
            Butterfly.Domain_pool.async pool (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done;
                7)
          in
          check Alcotest.bool "pending" false (Butterfly.Domain_pool.poll f);
          Atomic.set gate true;
          check Alcotest.int "await" 7 (Butterfly.Domain_pool.await f);
          check Alcotest.bool "done" true (Butterfly.Domain_pool.poll f)))

let validation =
  Alcotest.test_case "argument validation" `Quick (fun () ->
      let noop ~epoch:_ ~tid:_ = () in
      let commit ~epoch:_ ~tid:_ () = () in
      let run ?lookahead ~num_epochs ~threads () =
        WF.run ?lookahead ~num_epochs ~threads ~pass1:noop ~commit1:commit
          ~prepare:(fun _ -> ())
          ~pass2:noop ~commit2:commit ()
      in
      let expect_invalid name f =
        match f () with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.failf "%s: expected Invalid_argument" name
      in
      expect_invalid "threads = 0" (fun () -> run ~num_epochs:1 ~threads:0 ());
      expect_invalid "num_epochs < 0" (fun () ->
          run ~num_epochs:(-1) ~threads:1 ());
      expect_invalid "lookahead < 2" (fun () ->
          run ~lookahead:1 ~num_epochs:1 ~threads:1 ());
      (* num_epochs = 0 is fine: nothing runs. *)
      run ~num_epochs:0 ~threads:3 ())

let edge_tests =
  [
    edge_grid "single-epoch grid"
      [|
        [ [| Tracing.Instr.Malloc { base = 0; size = 4 }; Tracing.Instr.Read 1 |] ];
        [ [| Tracing.Instr.Free { base = 0; size = 4 } |] ];
      |];
    edge_grid "single-thread grid"
      [|
        [
          [| Tracing.Instr.Malloc { base = 0; size = 2 } |];
          [| Tracing.Instr.Read 0 |];
          [| Tracing.Instr.Free { base = 0; size = 2 } |];
          [| Tracing.Instr.Read 0 |];
        ];
      |];
    edge_grid "empty epochs" [| [ [||]; [||]; [||] ]; [ [||]; [||] ] |];
    edge_grid "no blocks at all" [| []; [] |];
    raising_task;
    submit_after_teardown;
    poll_semantics;
    validation;
  ]

(* ------------------------------------------------------------------ *)
(* Resume from every sealed epoch, wavefront engines on both sides.    *)

let rows_of_epochs epochs =
  let threads = Butterfly.Epochs.threads epochs in
  Array.init (Butterfly.Epochs.num_epochs epochs) (fun epoch ->
      Array.init threads (fun tid ->
          (Butterfly.Epochs.block epochs ~epoch ~tid).Butterfly.Block.instrs))

let resumed_via (type s) ~(create : threads:int -> unit -> s)
    ~(feed : s -> Tracing.Instr.t array array -> unit) ~(encode : s -> string)
    ~(decode : string -> (s, string) result) ~(finish : s -> 'r)
    ~(fp : 'r -> string) ~cut ~threads rows =
  let st = create ~threads () in
  Array.iteri (fun i row -> if i < cut then feed st row) rows;
  let payload = encode st in
  let st' =
    match decode payload with
    | Ok st' -> st'
    | Error m -> Alcotest.failf "decode after %d rows: %s" cut m
  in
  checks "snapshot stability" payload (encode st');
  Array.iteri (fun i row -> if i >= cut then feed st' row) rows;
  fp (finish st')

type engine = {
  label : string;
  profile : Qa.Grid_gen.profile;
  batch_fp : Butterfly.Epochs.t -> string;
  resumed_fp :
    pool:Butterfly.Domain_pool.t ->
    cut:int ->
    threads:int ->
    Tracing.Instr.t array array array ->
    string;
}

let wavefront_engines =
  [
    {
      label = "addrcheck";
      profile = Qa.Grid_gen.Alloc;
      batch_fp = (fun epochs -> AC.fingerprint (AC.run epochs));
      resumed_fp =
        (fun ~pool ~cut ~threads rows ->
          resumed_via
            ~create:(fun ~threads () ->
              AC.Resumable.create ~pool ~wavefront:true ~threads ())
            ~feed:AC.Resumable.feed_epoch ~encode:AC.Resumable.encode
            ~decode:(AC.Resumable.decode ~pool ~wavefront:true)
            ~finish:AC.Resumable.finish ~fp:AC.fingerprint ~cut ~threads rows);
    };
    {
      label = "initcheck";
      profile = Qa.Grid_gen.Init;
      batch_fp = (fun epochs -> IC.fingerprint (IC.run epochs));
      resumed_fp =
        (fun ~pool ~cut ~threads rows ->
          resumed_via
            ~create:(fun ~threads () ->
              IC.Resumable.create ~pool ~wavefront:true ~threads ())
            ~feed:IC.Resumable.feed_epoch ~encode:IC.Resumable.encode
            ~decode:(IC.Resumable.decode ~pool ~wavefront:true)
            ~finish:IC.Resumable.finish ~fp:IC.fingerprint ~cut ~threads rows);
    };
    {
      label = "taintcheck";
      profile = Qa.Grid_gen.Taint;
      batch_fp = (fun epochs -> TC.fingerprint (TC.run epochs));
      resumed_fp =
        (fun ~pool ~cut ~threads rows ->
          resumed_via
            ~create:(fun ~threads () ->
              TC.Resumable.create ~pool ~wavefront:true ~threads ())
            ~feed:TC.Resumable.feed_epoch ~encode:TC.Resumable.encode
            ~decode:(TC.Resumable.decode ~pool ~wavefront:true)
            ~finish:TC.Resumable.finish ~fp:TC.fingerprint ~cut ~threads rows);
    };
  ]

(* Checkpoints cut at sealed-epoch frontiers: the snapshot must drain
   the pipeline, so a resumed wavefront run — from EVERY epoch boundary
   — reproduces the sequential report byte for byte. *)
let wavefront_resume_battery e () =
  Butterfly.Domain_pool.with_pool ~name:"wf-resume" ~domains:2 (fun pool ->
      let rng = Random.State.make [| 0x3afd; 23 |] in
      for g = 1 to 8 do
        let grid = Qa.Grid_gen.grid e.profile rng in
        let epochs = Qa.Grid.epochs grid in
        let rows = rows_of_epochs epochs in
        let threads = Butterfly.Epochs.threads epochs in
        let expected = e.batch_fp epochs in
        for cut = 0 to Array.length rows do
          let got = e.resumed_fp ~pool ~cut ~threads rows in
          if not (String.equal expected got) then
            Alcotest.failf
              "%s grid #%d wavefront-resumed at epoch %d/%d diverged:\n%s"
              e.label g cut (Array.length rows)
              (Format.asprintf "%a" Qa.Grid.pp grid)
        done
      done)

let crash_sim_wavefront =
  Alcotest.test_case "crash sim under the wavefront driver" `Quick (fun () ->
      Butterfly.Domain_pool.with_pool ~name:"wf-crash" ~domains:2 (fun pool ->
          List.iter
            (fun lg ->
              let rng = Random.State.make [| 0x3afc; 31 |] in
              for g = 1 to 4 do
                let grid =
                  Qa.Grid_gen.grid (Qa.Differential.profile_of lg) rng
                in
                match
                  Qa.Differential.check_recovery ~pool ~wavefront:true
                    ~seed:g lg grid
                with
                | [] -> ()
                | ms ->
                  Alcotest.failf "%s grid #%d: %d crash-recovery mismatches"
                    (Qa.Differential.lifeguard_to_string lg)
                    g (List.length ms)
              done)
            Qa.Differential.all_lifeguards))

(* ------------------------------------------------------------------ *)
(* The qa driver matrix includes Wavefront.                            *)

let qa_matrix =
  Alcotest.test_case "differential battery spans pooled and wavefront"
    `Quick (fun () ->
      check
        Alcotest.(list string)
        "all_drivers" [ "pooled"; "wavefront" ]
        (List.map Qa.Differential.driver_to_string Qa.Differential.all_drivers);
      check Alcotest.bool "default config fuzzes both drivers" true
        (Qa.Differential.default_config.Qa.Differential.drivers
        = Qa.Differential.all_drivers);
      (* One grid through the full driver x pool matrix. *)
      let grid =
        Qa.Grid_gen.grid Qa.Grid_gen.Taint (Random.State.make [| 0x3afb |])
      in
      Butterfly.Domain_pool.with_pool ~name:"wf-qa" ~domains:2 (fun pool ->
          match Qa.Differential.check ~pools:[ pool ] Qa.Differential.Taintcheck grid with
          | [] -> ()
          | ms ->
            Alcotest.failf "differential matrix flagged %d mismatches"
              (List.length ms)))

let () =
  Alcotest.run "wavefront"
    [
      ( "equivalence-battery",
        List.map
          (fun domains ->
            Alcotest.test_case
              (Printf.sprintf "540-run battery, wavefront(%d) == sequential"
                 domains)
              `Slow (equivalence_battery domains))
          [ 1; 2; 8 ] );
      ("scheduler", scheduler_tests);
      ("readiness", readiness_tests);
      ("soundness", theorem_tests);
      ("edge-cases", edge_tests);
      ( "resume",
        crash_sim_wavefront
        :: List.map
             (fun e ->
               Alcotest.test_case
                 (Printf.sprintf "%s resumed from every sealed epoch" e.label)
                 `Slow (wavefront_resume_battery e))
             wavefront_engines );
      ("qa-matrix", [ qa_matrix ]);
    ]
