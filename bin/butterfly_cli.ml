(* Command-line interface: regenerate the paper's tables and figures, and
   analyze external traces with the butterfly lifeguards. *)

open Cmdliner

let scale_arg =
  let doc = "Total application instructions (split across threads)." in
  Arg.(value & opt int Harness.Experiment.default_config.total_scale
       & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Workload generation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let config_of scale seed =
  { Harness.Experiment.default_config with total_scale = scale; seed }

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing: every subcommand takes [--stats[=FORMAT]], which
   runs it under an in-memory Obs registry and appends a structured run
   report after the normal output. *)

let stats_arg =
  let fmt =
    Arg.enum [ ("text", `Text); ("json", `Json); ("prometheus", `Prometheus) ]
  in
  Arg.(value
       & opt ~vopt:(Some `Text) (some fmt) None
       & info [ "stats" ] ~docv:"FORMAT"
           ~doc:"Append a structured telemetry report (metric registry \
                 snapshot) after normal output; FORMAT is $(b,text) \
                 (default), $(b,json) or $(b,prometheus).")

let print_snapshot fmt snap =
  match fmt with
  | `Text ->
    Format.printf "@.--- run report ---@.";
    Format.printf "%a" Obs.Snapshot.pp snap
  | `Json -> print_endline (Obs.Json.to_string (Obs.Snapshot.to_json snap))
  | `Prometheus -> print_string (Obs.Snapshot.to_prometheus snap)

let obs_jsonl_arg =
  Arg.(value
       & opt (some string) None
       & info [ "obs-jsonl" ] ~docv:"FILE"
           ~doc:"Also stream every telemetry event to $(docv) as JSON lines \
                 (timestamped, scope-tagged); feed the file to $(b,viz \
                 --dashboard) to render it.")

let with_stats ?obs_jsonl stats f =
  match (stats, obs_jsonl) with
  | None, None -> f ()
  | _ ->
    let mem = if stats = None then None else Some (Obs.Sink.memory ()) in
    let with_jsonl k =
      match obs_jsonl with
      | None -> k None
      | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            let r = k (Some (Obs.Sink.jsonl ppf)) in
            Format.pp_print_flush ppf ();
            r)
    in
    let r =
      with_jsonl (fun jsonl ->
          let sink =
            match (mem, jsonl) with
            | Some m, Some j -> Obs.Sink.tee m j
            | Some m, None -> m
            | None, Some j -> j
            | None, None -> assert false
          in
          Obs.with_sink sink f)
    in
    (match (stats, mem) with
    | Some fmt, Some m -> print_snapshot fmt (Obs.Sink.snapshot m)
    | _ -> ());
    r

(* Streaming window replay: drives the trace through the sliding-window
   scheduler with a no-op analysis, so [--stats] reports genuine
   summary-window occupancy (geometry only depends on the heartbeats,
   not on the lifeguard).  Metrics carry [problem=window]. *)
module Window_probe = struct
  let name = "window"

  module Set = Butterfly.Interval_set

  let flavour = `May
  let gen _ _ = Butterfly.Interval_set.empty
  let kill _ _ = Butterfly.Interval_set.empty
end

module Window_sched = Butterfly.Scheduler.Make (Window_probe)

let replay_window_metrics p =
  let threads = Tracing.Program.threads p in
  let s = Window_sched.create ~threads ~on_instr:(fun _ -> ()) () in
  (* Round-robin feed: threads advance together, as in a deployment, so
     the occupancy high-water mark reflects the bounded window rather
     than one thread racing ahead of the others. *)
  let events =
    Array.init threads (fun tid ->
        Tracing.Trace.events (Tracing.Program.trace p tid))
  in
  let longest = Array.fold_left (fun m e -> max m (Array.length e)) 0 events in
  for k = 0 to longest - 1 do
    Array.iteri
      (fun tid evs -> if k < Array.length evs then Window_sched.feed s tid evs.(k))
      events
  done;
  Window_sched.finish s

(* ------------------------------------------------------------------ *)
(* JSON report serialization lives in [Serve.Report], so [--json] here
   and a daemon's REPORT frames render the same bytes — the serve
   differential battery compares the two outputs verbatim. *)

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit the error list and totals as a JSON object instead \
                 of text.")

(* ------------------------------------------------------------------ *)

let table1_cmd =
  let run stats =
    with_stats stats (fun () -> print_string (Harness.Table1.render ()))
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table 1 (simulator and benchmark parameters)")
    Term.(const run $ stats_arg)

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead of a table.")

let figure11_cmd =
  let run scale seed h csv stats =
    with_stats stats (fun () ->
        let config = config_of scale seed in
        let results = Harness.Figure11.run ~config ~epoch_size:h () in
        print_string
          (if csv then Harness.Figure11.to_csv results
           else Harness.Figure11.render results))
  in
  let h_arg =
    Arg.(value & opt int 512 & info [ "e"; "epoch-size" ]
         ~doc:"Epoch size in instructions per thread.")
  in
  Cmd.v (Cmd.info "figure11" ~doc:"Regenerate Figure 11 (relative performance)")
    Term.(const run $ scale_arg $ seed_arg $ h_arg $ csv_arg $ stats_arg)

let figure12_cmd =
  let run scale seed csv stats =
    with_stats stats (fun () ->
        let config = config_of scale seed in
        let results = Harness.Figure12.run ~config () in
        print_string
          (if csv then Harness.Figure12.to_csv results
           else Harness.Figure12.render results))
  in
  Cmd.v (Cmd.info "figure12" ~doc:"Regenerate Figure 12 (performance vs epoch size)")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg $ stats_arg)

let figure13_cmd =
  let run scale seed csv stats =
    with_stats stats (fun () ->
        let config = config_of scale seed in
        let results = Harness.Figure13.run ~config () in
        print_string
          (if csv then Harness.Figure13.to_csv results
           else Harness.Figure13.render results))
  in
  Cmd.v (Cmd.info "figure13" ~doc:"Regenerate Figure 13 (false positives vs epoch size)")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg $ stats_arg)

let sensitivity_cmd =
  let run stats =
    with_stats stats (fun () -> print_string (Harness.Sensitivity.render ()))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Knob sweeps and ablations (churn/sharing/imbalance, isolation split)")
    Term.(const run $ stats_arg)

let trace_arg =
  let doc = "Trace file (Trace_codec format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let h_arg =
  Arg.(value & opt int 64 & info [ "e"; "epoch-size" ]
       ~doc:"Re-heartbeat the trace with this epoch size (0 keeps existing \
             heartbeats).")

(* [--domains 0] (or a negative count) is a usage error, caught at parse
   time rather than as an [Invalid_argument] escaping from pool creation. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ | None -> Error (`Msg "expected a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(value & opt (some positive_int) None & info [ "domains" ] ~docv:"N"
       ~doc:"Run the lifeguard on the pooled streaming scheduler with $(docv) \
             worker domains (capped at the hardware's recommended domain \
             count) instead of the sequential batch driver.  The output is \
             identical in either mode.")

(* Driver selection: [--driver] names the execution strategy explicitly;
   [auto] (the default) preserves the historical behaviour where
   [--domains] alone picks sequential vs pooled. *)

let driver_arg =
  let d =
    Arg.enum
      [ ("auto", `Auto); ("sequential", `Sequential); ("pooled", `Pooled);
        ("wavefront", `Wavefront) ]
  in
  Arg.(value & opt d `Auto & info [ "driver" ] ~docv:"DRIVER"
       ~doc:"Execution driver: $(b,sequential) (batch, single domain), \
             $(b,pooled) (epoch-barrier streaming scheduler; needs \
             $(b,--domains)), $(b,wavefront) (barrier-free pipelined \
             scheduler; needs $(b,--domains)), or $(b,auto) (default: \
             $(b,pooled) when $(b,--domains) is given, else \
             $(b,sequential)).  The report is identical for every driver.")

(* Returns whether the wavefront scheduler is requested; exits on the
   contradictory combinations so the error surfaces at parse time, not as
   an escaped [Invalid_argument]. *)
let wavefront_of_driver driver domains =
  match (driver, domains) with
  | `Auto, _ | `Sequential, None | `Pooled, Some _ -> false
  | `Wavefront, Some _ -> true
  | `Sequential, Some _ ->
    prerr_endline "error: --driver sequential conflicts with --domains";
    exit 2
  | (`Pooled | `Wavefront), None ->
    prerr_endline "error: --driver wavefront/pooled requires --domains";
    exit 2

(* Checkpoint/restore plumbing (lib/recovery), shared by the three
   lifeguard subcommands. *)

let ckpt_every_arg =
  Arg.(value & opt (some positive_int) None
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Snapshot the analysis state every $(docv) epochs (default 1 \
                 when only $(b,--checkpoint-out) is given).  Requires \
                 $(b,--checkpoint-out).")

let ckpt_out_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-out" ] ~docv:"FILE"
           ~doc:"Checkpoint snapshot file, atomically overwritten at each \
                 checkpoint; resume with $(b,--resume) $(docv).")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume the analysis from a checkpoint snapshot written by \
                 $(b,--checkpoint-out), feeding only the remaining epochs of \
                 TRACE.  The report is identical to an uninterrupted run.")

let checkpointing_of every out =
  match (every, out) with
  | None, None -> None
  | Some _, None ->
    prerr_endline "error: --checkpoint-every requires --checkpoint-out";
    exit 2
  | every, Some path ->
    Some { Recovery.Runner.every = Option.value every ~default:1; path }

let with_pool_opt domains f =
  match domains with
  | None -> f None
  | Some n ->
    Butterfly.Domain_pool.with_pool ~name:"cli" ~domains:n (fun p -> f (Some p))

let state_arg =
  let b = Arg.enum [ ("functional", `Functional); ("flat", `Flat) ] in
  Arg.(value & opt b `Functional & info [ "state" ] ~docv:"BACKEND"
       ~doc:"Fact-table backend: $(b,functional) (default; the persistent \
             reference structures) or $(b,flat) (arena-backed bitsets with \
             word-at-a-time set algebra).  The report is byte-identical in \
             either mode.")

let ingest_arg =
  let m = Arg.enum [ ("list", `List); ("cursor", `Cursor) ] in
  Arg.(value & opt m `List & info [ "ingest" ] ~docv:"MODE"
       ~doc:"Trace ingestion path: $(b,list) (default) decodes the whole \
             trace into a program before analysis; $(b,cursor) streams epoch \
             rows straight out of the binary trace buffer (no program \
             materialization) into the epoch-incremental engine.  \
             $(b,cursor) needs the binary trace format and is incompatible \
             with $(b,--checkpoint-out)/$(b,--resume).")

(* Cursor ingestion feeds the Resumable engines row by row; the
   checkpoint flags drive a different engine lifecycle, so the
   combination is rejected up front rather than half-working. *)
let cursor_incompat ~every ~out ~resume =
  if every <> None || out <> None || resume <> None then begin
    prerr_endline
      "error: --ingest cursor is incompatible with \
       --checkpoint-every/--checkpoint-out/--resume";
    exit 2
  end

let load_cursor path =
  let raw = In_channel.with_open_bin path In_channel.input_all in
  match Tracing.Trace_codec.Cursor.of_string raw with
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1
  | Ok c -> c

(* Drive a lifeguard's epoch-incremental engine from a trace cursor:
   epoch rows are decoded in place and fed directly, so peak memory is
   one row, not the whole program.  [--epoch-size 0] keeps the trace's
   embedded heartbeats as epoch separators, like the list path. *)
let run_cursor ~create ~feed ~finish ~h ~domains c =
  with_pool_opt domains (fun pool ->
      let st = create pool ~threads:(Tracing.Trace_codec.Cursor.threads c) in
      Tracing.Trace_codec.Cursor.iter_rows
        ?every:(if h > 0 then Some h else None)
        c (feed st);
      finish st)

(* Route a lifeguard run through [Recovery.Runner] when any checkpoint or
   resume flag is present; the plain batch driver otherwise. *)
let run_with_recovery ~batch ~fresh ~resumed ~domains ~checkpoint ~resume
    epochs =
  match (resume, checkpoint) with
  | None, None -> batch ~domains epochs
  | resume, checkpoint ->
    with_pool_opt domains (fun pool ->
        match resume with
        | None -> fresh ?pool ?checkpoint epochs
        | Some path -> (
          match resumed ?pool ?checkpoint ~path epochs with
          | Ok r -> r
          | Error m ->
            prerr_endline ("error: " ^ m);
            exit 2))

let load_program path h =
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let decoded =
    let m = Tracing.Trace_codec.binary_magic in
    if String.length raw >= String.length m && String.sub raw 0 (String.length m) = m
    then Tracing.Trace_codec.decode_binary raw
    else Tracing.Trace_codec.decode raw
  in
  match decoded with
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1
  | Ok p -> if h > 0 then Machine.Heartbeat.insert ~every:h p else p

let addrcheck_cmd =
  let run path h state ingest domains driver every out resume json stats
      obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        let wavefront = wavefront_of_driver driver domains in
        let r =
          match ingest with
          | `Cursor ->
            cursor_incompat ~every ~out ~resume;
            run_cursor
              ~create:(fun pool ~threads ->
                Lifeguards.Addrcheck.Resumable.create ?pool ~wavefront ~state
                  ~threads ())
              ~feed:Lifeguards.Addrcheck.Resumable.feed_epoch
              ~finish:Lifeguards.Addrcheck.Resumable.finish ~h ~domains
              (load_cursor path)
          | `List ->
            let p = load_program path h in
            let r =
              run_with_recovery
                ~batch:(fun ~domains epochs ->
                  Lifeguards.Addrcheck.run ~state ~wavefront ?domains epochs)
                ~fresh:(fun ?pool ?checkpoint epochs ->
                  Recovery.Runner.run_addrcheck ?pool ~wavefront ~state
                    ?checkpoint epochs)
                ~resumed:(fun ?pool ?checkpoint ~path epochs ->
                  Recovery.Runner.resume_addrcheck ?pool ~wavefront ~state
                    ?checkpoint ~path epochs)
                ~domains ~checkpoint:(checkpointing_of every out) ~resume
                (Butterfly.Epochs.of_program p)
            in
            if stats <> None then replay_window_metrics p;
            r
        in
        if json then print_endline (Serve.Report.addrcheck r)
        else begin
          Format.printf "checked %d memory events; flagged %d@."
            r.total_accesses r.flagged_accesses;
          List.iter
            (fun e -> Format.printf "  %a@." Lifeguards.Addrcheck.pp_error e)
            r.errors;
          if r.errors = [] then Format.printf "  no errors@."
        end)
  in
  Cmd.v (Cmd.info "addrcheck" ~doc:"Run butterfly AddrCheck on a trace file")
    Term.(const run $ trace_arg $ h_arg $ state_arg $ ingest_arg $ domains_arg
          $ driver_arg $ ckpt_every_arg $ ckpt_out_arg $ resume_arg $ json_arg
          $ stats_arg $ obs_jsonl_arg)

let initcheck_cmd =
  let run path h state ingest domains driver every out resume json stats
      obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        let wavefront = wavefront_of_driver driver domains in
        let r =
          match ingest with
          | `Cursor ->
            cursor_incompat ~every ~out ~resume;
            run_cursor
              ~create:(fun pool ~threads ->
                Lifeguards.Initcheck.Resumable.create ?pool ~wavefront ~state
                  ~threads ())
              ~feed:Lifeguards.Initcheck.Resumable.feed_epoch
              ~finish:Lifeguards.Initcheck.Resumable.finish ~h ~domains
              (load_cursor path)
          | `List ->
            let p = load_program path h in
            let r =
              run_with_recovery
                ~batch:(fun ~domains epochs ->
                  Lifeguards.Initcheck.run ~state ~wavefront ?domains epochs)
                ~fresh:(fun ?pool ?checkpoint epochs ->
                  Recovery.Runner.run_initcheck ?pool ~wavefront ~state
                    ?checkpoint epochs)
                ~resumed:(fun ?pool ?checkpoint ~path epochs ->
                  Recovery.Runner.resume_initcheck ?pool ~wavefront ~state
                    ?checkpoint ~path epochs)
                ~domains ~checkpoint:(checkpointing_of every out) ~resume
                (Butterfly.Epochs.of_program p)
            in
            if stats <> None then replay_window_metrics p;
            r
        in
        if json then print_endline (Serve.Report.initcheck r)
        else begin
          Format.printf "checked %d reads; flagged %d@." r.total_reads
            r.flagged_reads;
          List.iter
            (fun e -> Format.printf "  %a@." Lifeguards.Initcheck.pp_error e)
            r.errors;
          if r.errors = [] then Format.printf "  no uninitialized reads@."
        end)
  in
  Cmd.v
    (Cmd.info "initcheck"
       ~doc:"Run butterfly InitCheck (uninitialized reads) on a trace file")
    Term.(const run $ trace_arg $ h_arg $ state_arg $ ingest_arg $ domains_arg
          $ driver_arg $ ckpt_every_arg $ ckpt_out_arg $ resume_arg $ json_arg
          $ stats_arg $ obs_jsonl_arg)

let taintcheck_cmd =
  let run path h relaxed state ingest domains driver every out resume json
      stats obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        let wavefront = wavefront_of_driver driver domains in
        let r =
          match ingest with
          | `Cursor ->
            cursor_incompat ~every ~out ~resume;
            run_cursor
              ~create:(fun pool ~threads ->
                Lifeguards.Taintcheck.Resumable.create ?pool
                  ~sequential:(not relaxed) ~wavefront ~state ~threads ())
              ~feed:Lifeguards.Taintcheck.Resumable.feed_epoch
              ~finish:Lifeguards.Taintcheck.Resumable.finish ~h ~domains
              (load_cursor path)
          | `List ->
            let p = load_program path h in
            let r =
              run_with_recovery
                ~batch:(fun ~domains epochs ->
                  Lifeguards.Taintcheck.run ~state ~sequential:(not relaxed)
                    ~wavefront ?domains epochs)
                ~fresh:(fun ?pool ?checkpoint epochs ->
                  Recovery.Runner.run_taintcheck ?pool
                    ~sequential:(not relaxed) ~wavefront ~state ?checkpoint
                    epochs)
                ~resumed:(fun ?pool ?checkpoint ~path epochs ->
                  Recovery.Runner.resume_taintcheck ?pool ~wavefront ~state
                    ?checkpoint ~path epochs)
                ~domains ~checkpoint:(checkpointing_of every out) ~resume
                (Butterfly.Epochs.of_program p)
            in
            if stats <> None then replay_window_metrics p;
            r
        in
        if json then print_endline (Serve.Report.taintcheck r)
        else begin
          List.iter
            (fun e -> Format.printf "  %a@." Lifeguards.Taintcheck.pp_error e)
            r.errors;
          if r.errors = [] then Format.printf "  no tainted sinks@."
        end)
  in
  let relaxed_arg =
    Arg.(value & flag & info [ "relaxed" ]
         ~doc:"Use the relaxed-consistency termination condition.")
  in
  Cmd.v (Cmd.info "taintcheck" ~doc:"Run butterfly TaintCheck on a trace file")
    Term.(const run $ trace_arg $ h_arg $ relaxed_arg $ state_arg $ ingest_arg
          $ domains_arg $ driver_arg $ ckpt_every_arg $ ckpt_out_arg
          $ resume_arg $ json_arg $ stats_arg $ obs_jsonl_arg)

let racecheck_cmd =
  let run path h state ingest domains driver every out resume json stats
      obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        let wavefront = wavefront_of_driver driver domains in
        let r =
          match ingest with
          | `Cursor ->
            cursor_incompat ~every ~out ~resume;
            run_cursor
              ~create:(fun pool ~threads ->
                Lifeguards.Racecheck.Resumable.create ?pool ~wavefront ~state
                  ~threads ())
              ~feed:Lifeguards.Racecheck.Resumable.feed_epoch
              ~finish:Lifeguards.Racecheck.Resumable.finish ~h ~domains
              (load_cursor path)
          | `List ->
            let p = load_program path h in
            let r =
              run_with_recovery
                ~batch:(fun ~domains epochs ->
                  Lifeguards.Racecheck.run ~state ~wavefront ?domains epochs)
                ~fresh:(fun ?pool ?checkpoint epochs ->
                  Recovery.Runner.run_racecheck ?pool ~wavefront ~state
                    ?checkpoint epochs)
                ~resumed:(fun ?pool ?checkpoint ~path epochs ->
                  Recovery.Runner.resume_racecheck ?pool ~wavefront ~state
                    ?checkpoint ~path epochs)
                ~domains ~checkpoint:(checkpointing_of every out) ~resume
                (Butterfly.Epochs.of_program p)
            in
            if stats <> None then replay_window_metrics p;
            r
        in
        let checked =
          Array.fold_left
            (fun acc row ->
              Array.fold_left
                (fun acc (s : Lifeguards.Racecheck.block_stats) ->
                  acc + s.pairs_checked)
                acc row)
            0 r.block_stats
        in
        if json then print_endline (Serve.Report.racecheck r)
        else begin
          Format.printf "checked %d conflicting pairs; flagged %d may-races@."
            checked (List.length r.races);
          List.iter
            (fun e -> Format.printf "  %a@." Lifeguards.Racecheck.pp_race e)
            r.races;
          if r.races = [] then Format.printf "  no races@."
        end)
  in
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:"Run butterfly RaceCheck (happens-before/lockset may-races) on \
             a trace file")
    Term.(const run $ trace_arg $ h_arg $ state_arg $ ingest_arg $ domains_arg
          $ driver_arg $ ckpt_every_arg $ ckpt_out_arg $ resume_arg $ json_arg
          $ stats_arg $ obs_jsonl_arg)

let stats_cmd =
  let run path h domains lifeguard json prometheus obs_jsonl =
    let sink = Obs.Sink.memory () in
    let with_jsonl k =
      match obs_jsonl with
      | None -> k sink
      | Some jpath ->
        Out_channel.with_open_bin jpath (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            let r = k (Obs.Sink.tee sink (Obs.Sink.jsonl ppf)) in
            Format.pp_print_flush ppf ();
            r)
    in
    with_jsonl (fun s ->
        Obs.with_sink s (fun () ->
            let p = load_program path h in
            let epochs = Butterfly.Epochs.of_program p in
            (match lifeguard with
            | `Addrcheck -> ignore (Lifeguards.Addrcheck.run ?domains epochs)
            | `Initcheck -> ignore (Lifeguards.Initcheck.run ?domains epochs)
            | `Taintcheck -> ignore (Lifeguards.Taintcheck.run ?domains epochs)
            | `Racecheck -> ignore (Lifeguards.Racecheck.run ?domains epochs));
            replay_window_metrics p));
    print_snapshot
      (if prometheus then `Prometheus else if json then `Json else `Text)
      (Obs.Sink.snapshot sink)
  in
  let prometheus_arg =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Print the registry in Prometheus text exposition format \
                   (0.0.4) instead of the table — the /metrics surface a \
                   scraper would collect.")
  in
  let lifeguard_arg =
    let lg =
      Arg.enum
        [ ("addrcheck", `Addrcheck); ("initcheck", `Initcheck);
          ("taintcheck", `Taintcheck); ("racecheck", `Racecheck) ]
    in
    Arg.(value & opt lg `Addrcheck & info [ "lifeguard" ] ~docv:"LIFEGUARD"
         ~doc:"Which lifeguard to run: $(b,addrcheck) (default), \
               $(b,initcheck), $(b,taintcheck) or $(b,racecheck).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a lifeguard on a trace and print the full metric registry \
             (pipeline counters, window occupancy, per-phase timings)")
    Term.(const run $ trace_arg $ h_arg $ domains_arg $ lifeguard_arg
          $ json_arg $ prometheus_arg $ obs_jsonl_arg)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing (lib/qa): generated grids through every driver ×
   domains × memory-model combination plus the valid-ordering oracle,
   with greedy minimization of any counterexample. *)

let fuzz_cmd =
  let run lifeguard driver state iterations seed shrink crash_at out replay
      serve stats obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        if serve then begin
          (* Frame-protocol fuzzing: mutate valid serving conversations
             and require clean per-session rejection from a live daemon. *)
          let config =
            { Qa.Serve_fuzz.default_config with iterations; seed }
          in
          let o = Qa.Serve_fuzz.run ~config () in
          Format.printf "fuzz serve: %a@." Qa.Serve_fuzz.pp_outcome o;
          if o.Qa.Serve_fuzz.failure <> None then exit 1
        end
        else
        let drivers =
          match driver with
          | `All -> Qa.Differential.all_drivers
          | `One d -> [ d ]
        in
        let states =
          match state with
          | `All -> Qa.Differential.all_backends
          | `One st -> [ st ]
        in
        let lifeguards =
          match lifeguard with
          | `All -> Qa.Differential.all_lifeguards
          | `One lg -> [ lg ]
        in
        let emit_repro grid =
          let text = Qa.Grid.encode grid in
          match out with
          | Some path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc text);
            Format.printf "  repro written to %s@." path
          | None -> Format.printf "  repro trace:@.%s" text
        in
        let failed = ref false in
        (match replay with
        | Some path ->
          (* Re-run a serialized counterexample through the same battery. *)
          let p = load_program path 0 in
          List.iter
            (fun lg ->
              let mismatches = Qa.Engine.check_program lg p in
              Format.printf "replay %s %s: %d mismatch%s@." path
                (Qa.Differential.lifeguard_to_string lg)
                (List.length mismatches)
                (if List.length mismatches = 1 then "" else "es");
              if mismatches <> [] then begin
                failed := true;
                List.iter
                  (fun m ->
                    Format.printf "  %a@." Qa.Differential.pp_mismatch m)
                  mismatches
              end)
            lifeguards
        | None ->
          List.iter
            (fun lg ->
              let config =
                let crash =
                  Option.map
                    (fun crash_at -> { Qa.Engine.crash_at; every = 1 })
                    crash_at
                in
                {
                  Qa.Engine.default_config with
                  iterations;
                  seed;
                  shrink;
                  crash;
                  diff = { Qa.Differential.default_config with drivers; states };
                }
              in
              let outcome = Qa.Engine.run ~config lg in
              match outcome.counterexample with
              | None ->
                Format.printf "fuzz %s: %d grids, 0 mismatches@."
                  (Qa.Differential.lifeguard_to_string lg)
                  outcome.grids
              | Some cx ->
                failed := true;
                Format.printf
                  "fuzz %s: counterexample at iteration %d (%d mismatch%s%s)@."
                  (Qa.Differential.lifeguard_to_string lg)
                  cx.iteration
                  (List.length cx.mismatches)
                  (if List.length cx.mismatches = 1 then "" else "es")
                  (if shrink then
                     Printf.sprintf ", shrunk in %d steps" cx.shrink_steps
                   else "");
                List.iter
                  (fun m ->
                    Format.printf "  %a@." Qa.Differential.pp_mismatch m)
                  cx.mismatches;
                emit_repro (Option.value cx.shrunk ~default:cx.grid))
            lifeguards);
        if !failed then exit 1)
  in
  let lifeguard_arg =
    let lg =
      Arg.enum
        [
          ("addrcheck", `One Qa.Differential.Addrcheck);
          ("initcheck", `One Qa.Differential.Initcheck);
          ("taintcheck", `One Qa.Differential.Taintcheck);
          ("racecheck", `One Qa.Differential.Racecheck);
          ("all", `All);
        ]
    in
    Arg.(value & opt lg `All & info [ "lifeguard" ] ~docv:"LIFEGUARD"
         ~doc:"Which lifeguard to fuzz: $(b,addrcheck), $(b,initcheck), \
               $(b,taintcheck), $(b,racecheck) or $(b,all) (default).")
  in
  let fuzz_driver_arg =
    let d =
      Arg.enum
        [
          ("pooled", `One Qa.Differential.Pooled);
          ("wavefront", `One Qa.Differential.Wavefront);
          ("all", `All);
        ]
    in
    Arg.(value & opt d `All & info [ "driver" ] ~docv:"DRIVER"
         ~doc:"Which parallel drivers the equivalence battery quantifies \
               over: $(b,pooled), $(b,wavefront) or $(b,all) (default).  \
               The sequential baseline always runs.  Ignored with \
               $(b,--replay).")
  in
  let fuzz_state_arg =
    let b =
      Arg.enum
        [
          ("functional", `One (`Functional : Qa.Differential.backend));
          ("flat", `One (`Flat : Qa.Differential.backend));
          ("all", `All);
        ]
    in
    Arg.(value & opt b `All & info [ "state" ] ~docv:"BACKEND"
         ~doc:"Which fact-table backends the battery quantifies over: \
               $(b,functional), $(b,flat) or $(b,all) (default).  Every \
               driver entry runs once per backend, and the flat backend \
               additionally gets its own sequential entry against the \
               functional sequential baseline.  Ignored with $(b,--replay).")
  in
  let iterations_arg =
    Arg.(value & opt positive_int 100 & info [ "iterations" ] ~docv:"N"
         ~doc:"Grids to generate and check per lifeguard.")
  in
  let fuzz_seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ]
         ~doc:"Campaign seed: the same seed replays the same grids.")
  in
  let shrink_arg =
    Arg.(value & flag & info [ "shrink" ]
         ~doc:"Minimize the first failing grid (greedy delta debugging) \
               before reporting it.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Write the (shrunk) counterexample trace to $(docv) in \
               Trace_codec format instead of printing it; replay it with \
               $(b,fuzz --replay) $(docv).")
  in
  let replay_arg =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"TRACE"
         ~doc:"Skip generation: run the differential battery on this trace \
               file (heartbeats in the file delimit the epochs).")
  in
  let serve_arg =
    Arg.(value & flag & info [ "serve" ]
         ~doc:"Fuzz the serving frame protocol instead of the analyses: \
               mutate valid daemon conversations (dropped, duplicated and \
               reordered frames, truncation, bit flips, injected garbage) \
               and play them at an in-process daemon over torn writes.  \
               Each stream must end in a report, one stable error frame or \
               a clean hang-up; the daemon must answer STATUS after every \
               stream, and an unmutated control tenant must still match \
               the batch report.  Uses $(b,--iterations) and $(b,--seed); \
               the analysis-fuzzing options are ignored.")
  in
  let crash_at_arg =
    let crash_conv =
      let parse s =
        if String.equal s "random" then Ok None
        else
          match int_of_string_opt s with
          | Some n when n >= 0 -> Ok (Some n)
          | Some _ | None ->
            Error (`Msg "expected 'random' or a non-negative epoch number")
      in
      let print ppf = function
        | None -> Format.pp_print_string ppf "random"
        | Some n -> Format.pp_print_int ppf n
      in
      Arg.conv (parse, print)
    in
    Arg.(value & opt (some crash_conv) None & info [ "crash-at" ] ~docv:"EPOCH"
         ~doc:"Also exercise checkpoint/restore on every generated grid: \
               checkpoint each epoch, kill the run at $(docv) ($(b,random) \
               draws a seeded epoch per iteration), resume from the latest \
               snapshot and require a byte-identical report.  Ignored with \
               $(b,--replay).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the butterfly lifeguards: random grids \
             through all driver/domain/memory-model combinations plus the \
             valid-ordering soundness oracle; exits non-zero on mismatch")
    Term.(const run $ lifeguard_arg $ fuzz_driver_arg $ fuzz_state_arg
          $ iterations_arg $ fuzz_seed_arg $ shrink_arg $ crash_at_arg
          $ out_arg $ replay_arg $ serve_arg $ stats_arg $ obs_jsonl_arg)

(* ------------------------------------------------------------------ *)
(* Introspection: dependence-graph / timeline rendering and the obs
   dashboard (lib/viz). *)

let viz_cmd =
  let run trace h focus dot graph_json dashboard obs title refresh =
    let write target s =
      match target with
      | "-" -> print_string s
      | path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s)
    in
    let want_graph = dot <> None || graph_json <> None in
    if (not want_graph) && dashboard = None then begin
      prerr_endline
        "error: nothing to do (pass --dot, --graph-json or --dashboard)";
      exit 2
    end;
    (if want_graph then
       match trace with
       | None ->
         prerr_endline "error: --dot/--graph-json need a TRACE argument";
         exit 2
       | Some path ->
         let p = load_program path h in
         let g = Viz.Butterfly_graph.of_epochs (Butterfly.Epochs.of_program p) in
         let g =
           match focus with
           | None -> g
           | Some l ->
             if l < 0 || l >= g.Viz.Butterfly_graph.num_epochs then begin
               Printf.eprintf "error: --focus %d out of range (%d epochs)\n" l
                 g.Viz.Butterfly_graph.num_epochs;
               exit 2
             end;
             Viz.Butterfly_graph.restrict g ~epoch:l
         in
         Option.iter (fun t -> write t (Viz.Butterfly_graph.to_dot g)) dot;
         Option.iter
           (fun t ->
             write t
               (Obs.Json.to_string (Viz.Butterfly_graph.to_json g) ^ "\n"))
           graph_json);
    match dashboard with
    | None -> ()
    | Some target -> (
      match obs with
      | None ->
        prerr_endline "error: --dashboard requires --obs EVENTS.jsonl";
        exit 2
      | Some path ->
        let contents = In_channel.with_open_bin path In_channel.input_all in
        let events, bad = Viz.Dashboard.parse_events contents in
        if bad > 0 then
          Printf.eprintf "warning: skipped %d malformed event line%s\n%!" bad
            (if bad = 1 then "" else "s");
        write target (Viz.Dashboard.render ?title ?refresh events))
  in
  let trace_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Trace file (Trace_codec format); required for $(b,--dot) / \
               $(b,--graph-json).")
  in
  let focus_arg =
    Arg.(value & opt (some int) None & info [ "focus" ] ~docv:"EPOCH"
         ~doc:"Restrict the graph to the butterflies of one body epoch — \
               the classic wings/head/SOS picture instead of the whole grid.")
  in
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
         ~doc:"Write the dependence graph as Graphviz DOT to $(docv) \
               ($(b,-) for stdout).")
  in
  let graph_json_arg =
    Arg.(value & opt (some string) None & info [ "graph-json" ] ~docv:"FILE"
         ~doc:"Write the dependence graph and epoch timeline as JSON to \
               $(docv) ($(b,-) for stdout).")
  in
  let dashboard_arg =
    Arg.(value & opt (some string) None & info [ "dashboard" ] ~docv:"FILE"
         ~doc:"Render a self-contained HTML dashboard (inline SVG, no \
               scripts, no network) to $(docv) ($(b,-) for stdout) from the \
               obs JSONL stream given with $(b,--obs).")
  in
  let obs_arg =
    Arg.(value & opt (some file) None & info [ "obs" ] ~docv:"EVENTS"
         ~doc:"Obs JSONL event stream (written by $(b,--obs-jsonl)) backing \
               $(b,--dashboard).")
  in
  let title_arg =
    Arg.(value & opt (some string) None & info [ "title" ] ~docv:"TITLE"
         ~doc:"Dashboard page title.")
  in
  let refresh_arg =
    Arg.(value & opt (some positive_int) None & info [ "refresh" ] ~docv:"SECONDS"
         ~doc:"Add a meta-refresh so a browser re-reads the dashboard every \
               $(docv) seconds — live view of a stream being appended to.")
  in
  Cmd.v
    (Cmd.info "viz"
       ~doc:"Render butterfly introspection artifacts: the per-block \
             dependence graph (wings, head, SOS chain) as DOT/JSON, and an \
             HTML dashboard over a structured telemetry stream")
    Term.(const run $ trace_opt_arg $ h_arg $ focus_arg $ dot_arg
          $ graph_json_arg $ dashboard_arg $ obs_arg $ title_arg $ refresh_arg)

let generate_cmd =
  let run name threads scale seed binary stats =
    with_stats stats (fun () ->
        match Workloads.Registry.find name with
        | None ->
          prerr_endline
            ("unknown workload (try: "
            ^ String.concat ", " Workloads.Registry.names
            ^ ")");
          exit 1
        | Some profile ->
          let p =
            Workloads.Workload.generate_program profile ~threads ~scale ~seed
          in
          print_string
            (if binary then Tracing.Trace_codec.encode_binary p
             else Tracing.Trace_codec.encode p))
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Benchmark name (e.g. ocean).")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Application threads.")
  in
  let scale2_arg =
    Arg.(value & opt int 4000 & info [ "scale" ]
         ~doc:"Instructions per thread.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ] ~doc:"Emit the compact binary format.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a synthetic benchmark trace to stdout")
    Term.(const run $ name_arg $ threads_arg $ scale2_arg $ seed_arg
          $ binary_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* The multi-tenant streaming daemon (lib/serve) and its client. *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
       ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket domains state_dir every idle max_sessions max_queued stats
      obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        let cfg =
          try
            Serve.Daemon.config ~socket ?domains ?state_dir
              ?checkpoint_every:every ?evict_idle_after:idle
              ~policy:(Serve.Policy.v ~max_sessions ~max_queued)
              ()
          with Invalid_argument m ->
            prerr_endline ("error: " ^ m);
            exit 2
        in
        let stopping = ref `Run in
        let on_signal _ = stopping := `Quit in
        List.iter
          (fun s ->
            try Sys.set_signal s (Sys.Signal_handle on_signal)
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        Serve.Daemon.run ~stop:(fun () -> !stopping) cfg)
  in
  let state_dir_arg =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Directory for session-keyed snapshots — enables periodic \
               checkpointing, idle/oversubscription eviction, and \
               transparent resume on reconnect.")
  in
  let ckpt_arg =
    Arg.(value & opt (some positive_int) None
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Snapshot every session each $(docv) fed epochs (crash \
                   survivability); needs $(b,--state-dir).")
  in
  let idle_arg =
    Arg.(value & opt (some positive_int) None
         & info [ "evict-idle-after" ] ~docv:"TICKS"
             ~doc:"Evict a disconnected session to its snapshot after \
                   $(docv) scheduler ticks without activity; needs \
                   $(b,--state-dir).")
  in
  let max_sessions_arg =
    Arg.(value & opt positive_int 64 & info [ "max-sessions" ] ~docv:"N"
         ~doc:"Live session cap; beyond it new tenants evict the \
               longest-idle detached session, or are rejected.")
  in
  let max_queued_arg =
    Arg.(value & opt positive_int 64 & info [ "max-queued" ] ~docv:"ROWS"
         ~doc:"Per-session backpressure bound: stop reading a connection \
               whose unfed-row queue reaches $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-tenant streaming monitor daemon on a Unix-domain \
             socket; one analysis session per tenant, multiplexed over a \
             shared domain pool, until SIGINT/SIGTERM")
    Term.(const run $ socket_arg $ domains_arg $ state_dir_arg $ ckpt_arg
          $ idle_arg $ max_sessions_arg $ max_queued_arg $ stats_arg
          $ obs_jsonl_arg)

let client_cmd =
  let run socket status_only tenant lifeguard trace h relaxed state driver
      write_chunk stats obs_jsonl =
    with_stats ?obs_jsonl stats (fun () ->
        if status_only then (
          match Serve.Client.status ~socket () with
          | Ok s -> print_endline s
          | Error m ->
            prerr_endline ("error: " ^ m);
            exit 1)
        else
          match (tenant, trace) with
          | Some tenant, Some path -> (
            let p = load_program path h in
            let rows =
              Recovery.Runner.rows_of (Butterfly.Epochs.of_program p)
            in
            let hello =
              { Serve.Wire.tenant; lifeguard; driver; state; relaxed;
                threads = Tracing.Program.threads p }
            in
            match
              Serve.Client.run_tenant ~socket ?write_chunk ~hello rows
            with
            | Ok (resumed_from, report) ->
              (* The frontier note goes to stderr: stdout is exactly the
                 report line, so it diffs against the batch [--json]. *)
              if resumed_from > 0 then
                Format.eprintf "resumed from epoch %d@." resumed_from;
              print_endline report
            | Error m ->
              prerr_endline ("error: " ^ m);
              exit 1)
          | _ ->
            prerr_endline
              "error: client needs --tenant and TRACE (or --status)";
            exit 2)
  in
  let status_flag =
    Arg.(value & flag & info [ "status" ]
         ~doc:"Query the daemon's STATUS endpoint (session cards plus the \
               Prometheus registry) instead of streaming a trace.")
  in
  let tenant_arg =
    Arg.(value & opt (some string) None & info [ "tenant" ] ~docv:"ID"
         ~doc:"Session key ([A-Za-z0-9_-]{1,64}); reconnecting with the \
               same $(docv) resumes the session.")
  in
  let lifeguard_arg =
    let lg =
      Arg.enum
        [ ("addrcheck", Recovery.Snapshot.Addrcheck);
          ("initcheck", Recovery.Snapshot.Initcheck);
          ("taintcheck", Recovery.Snapshot.Taintcheck);
          ("racecheck", Recovery.Snapshot.Racecheck) ]
    in
    Arg.(value & opt lg Recovery.Snapshot.Addrcheck
         & info [ "lifeguard" ] ~docv:"LIFEGUARD"
             ~doc:"Analysis to request: $(b,addrcheck) (default), \
                   $(b,initcheck), $(b,taintcheck) or $(b,racecheck).")
  in
  let trace_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Trace file (Trace_codec text or binary format).")
  in
  let client_driver_arg =
    let d =
      Arg.enum
        [ ("sequential", `Sequential); ("pooled", `Pooled);
          ("wavefront", `Wavefront) ]
    in
    Arg.(value & opt d `Sequential & info [ "driver" ] ~docv:"DRIVER"
         ~doc:"Execution driver the daemon should run this session with; \
               $(b,pooled)/$(b,wavefront) need a daemon started with \
               $(b,--domains).  The report is identical for every driver.")
  in
  let relaxed_arg =
    Arg.(value & flag & info [ "relaxed" ]
         ~doc:"TaintCheck's relaxed-consistency termination condition.")
  in
  let chunk_arg =
    Arg.(value & opt (some positive_int) None
         & info [ "chunk-bytes" ] ~docv:"N"
             ~doc:"Cap every socket write to $(docv) bytes, shredding \
                   frames across reads (protocol-robustness testing).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Stream a trace to a running daemon as one tenant and print the \
             report — byte-identical to the batch subcommand's $(b,--json) \
             line — or query the daemon's status")
    Term.(const run $ socket_arg $ status_flag $ tenant_arg $ lifeguard_arg
          $ trace_opt_arg $ h_arg $ relaxed_arg $ state_arg
          $ client_driver_arg $ chunk_arg $ stats_arg $ obs_jsonl_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "butterfly_cli" ~version:"1.0"
             ~doc:"Butterfly analysis: experiments and trace checking")
          [
            table1_cmd; figure11_cmd; figure12_cmd; figure13_cmd;
            sensitivity_cmd; addrcheck_cmd; taintcheck_cmd; initcheck_cmd;
            racecheck_cmd; stats_cmd; viz_cmd; generate_cmd; fuzz_cmd;
            serve_cmd; client_cmd;
          ]))
