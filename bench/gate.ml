(* Bench regression gate over the committed BENCH_*.json trajectory.

   Usage: gate.exe BASELINE.json CURRENT.json

   Both files are the `bench/main.exe --json` output: one array of
   {name; runs; ns_per_run}.  The gate enforces two rules and exits
   non-zero (listing every violation) if either is broken:

   1. Trajectory: no benchmark group may regress by more than 25%
      against the previous committed point.  A group's regression is the
      geometric mean of the per-benchmark ratios over the names present
      in both files — robust to one noisy entry, sensitive to a whole
      group drifting.  Names only in one file (benches added or retired
      between points) are reported but don't gate.

   2. Wavefront: within CURRENT's `epochwise-vs-wavefront` group, every
      `*.wavefront-N` entry must be no more than 10% slower than its
      `*.epochwise-N` twin — the pipelined driver is allowed to win or
      tie, never to lose the barrier it removed.

   3. Flat state: within CURRENT's `flat-vs-functional` group, every
      `*.flat` entry is paired with its `*.functional` twin.  The
      taint* pairs must hold a >=1.5x flat speedup (geometric mean over
      the pairs) — the arena fast path's reason to exist.  Every other
      pair must keep flat within 2x of functional: on interval-shaped
      facts (AddrCheck) the wide bitset loses a little by design
      (~1.4x nominal), and the bound only exists to catch the backend
      collapsing, with headroom for bechamel's run-to-run noise.
      Unpaired names (the ingest.* entries) are reported, not gated. *)

let fail_usage () =
  prerr_endline "usage: gate.exe BASELINE.json CURRENT.json";
  exit 2

let read_measurements path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  match Obs.Json.of_string contents with
  | Error m ->
    Printf.eprintf "gate: %s: %s\n" path m;
    exit 2
  | Ok (Obs.Json.List entries) ->
    List.filter_map
      (fun e ->
        match e with
        | Obs.Json.Obj fields -> (
          let str k =
            match List.assoc_opt k fields with
            | Some (Obs.Json.String s) -> Some s
            | _ -> None
          in
          let num k =
            match List.assoc_opt k fields with
            | Some (Obs.Json.Float f) -> Some f
            | Some (Obs.Json.Int n) -> Some (float_of_int n)
            | _ -> None
          in
          match (str "name", num "ns_per_run") with
          | Some name, Some ns when ns > 0. && Float.is_finite ns ->
            Some (name, ns)
          | _ -> None)
        | _ -> None)
      entries
  | Ok _ ->
    Printf.eprintf "gate: %s: expected a JSON array\n" path;
    exit 2

let group_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

let max_group_regression = 1.25
let max_wavefront_ratio = 1.10
let min_taint_flat_speedup = 1.5
let max_flat_overhead = 2.0

(* Substring replace for the epochwise/wavefront twin lookup. *)
let replace ~sub ~by s =
  let ls = String.length sub in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - ls do
    if String.sub s !i ls = sub then begin
      Buffer.add_string b by;
      i := !i + ls
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ -> fail_usage ()
  in
  let baseline = read_measurements baseline_path in
  let current = read_measurements current_path in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in

  (* Rule 1: per-group geometric mean of current/baseline ratios. *)
  let groups =
    List.sort_uniq compare (List.map (fun (n, _) -> group_of n) current)
  in
  List.iter
    (fun g ->
      let ratios =
        List.filter_map
          (fun (n, cur) ->
            if group_of n <> g then None
            else
              match List.assoc_opt n baseline with
              | Some base -> Some (cur /. base)
              | None ->
                Printf.printf "note: %s only in %s (not gated)\n" n
                  current_path;
                None)
          current
      in
      match ratios with
      | [] -> ()
      | _ ->
        let geomean =
          exp
            (List.fold_left (fun acc r -> acc +. log r) 0. ratios
            /. float_of_int (List.length ratios))
        in
        Printf.printf "group %-28s %d benches, ratio %.3fx\n" g
          (List.length ratios) geomean;
        if geomean > max_group_regression then
          violate "group %s regressed %.1f%% vs %s (limit %.0f%%)" g
            ((geomean -. 1.) *. 100.)
            baseline_path
            ((max_group_regression -. 1.) *. 100.))
    groups;

  (* Rule 2: wavefront vs its epochwise twin, within CURRENT. *)
  let contains s sub =
    let ls = String.length sub in
    let rec has i =
      i + ls <= String.length s && (String.sub s i ls = sub || has (i + 1))
    in
    has 0
  in
  List.iter
    (fun (n, wf) ->
      let marker = ".wavefront-" in
      if group_of n = "epochwise-vs-wavefront" && contains n marker then
        let twin = replace ~sub:marker ~by:".epochwise-" n in
        match List.assoc_opt twin current with
        | None -> violate "%s has no epochwise twin %s" n twin
        | Some ep ->
          let ratio = wf /. ep in
          Printf.printf "pair  %-40s %.3fx of %s\n" n ratio twin;
          if ratio > max_wavefront_ratio then
            violate "%s is %.1f%% slower than %s (limit %.0f%%)" n
              ((ratio -. 1.) *. 100.)
              twin
              ((max_wavefront_ratio -. 1.) *. 100.))
    current;

  (* Rule 3: flat vs its functional twin, within CURRENT. *)
  let flat_pairs =
    List.filter_map
      (fun (n, flat) ->
        let marker = ".flat" in
        if group_of n = "flat-vs-functional" && contains n marker then
          let twin = replace ~sub:marker ~by:".functional" n in
          match List.assoc_opt twin current with
          | None ->
            Printf.printf "note: %s has no functional twin (not gated)\n" n;
            None
          | Some fn -> Some (n, flat /. fn)
        else None)
      current
  in
  let taint_ratios, other_pairs =
    List.partition (fun (n, _) -> contains n "/taint") flat_pairs
  in
  (match taint_ratios with
  | [] ->
    if flat_pairs <> [] then
      violate "flat-vs-functional has no taint.* pair to hold the speedup"
  | _ ->
    let geomean =
      exp
        (List.fold_left (fun acc (_, r) -> acc +. log r) 0. taint_ratios
        /. float_of_int (List.length taint_ratios))
    in
    Printf.printf "flat  taint pairs (%d)%24s %.2fx speedup\n"
      (List.length taint_ratios) ""
      (1. /. geomean);
    if 1. /. geomean < min_taint_flat_speedup then
      violate "flat taint speedup %.2fx below the %.1fx floor" (1. /. geomean)
        min_taint_flat_speedup);
  List.iter
    (fun (n, r) ->
      Printf.printf "flat  %-40s %.3fx of functional\n" n r;
      if r > max_flat_overhead then
        violate "%s is %.2fx slower than its functional twin (limit %.1fx)" n
          r max_flat_overhead)
    other_pairs;

  match List.rev !violations with
  | [] -> print_endline "bench gate: OK"
  | vs ->
    List.iter (fun v -> Printf.eprintf "bench gate: FAIL: %s\n" v) vs;
    exit 1
