(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks, one group per reproduced artifact:
   the analysis kernels behind Table 1 (machine model), Figure 11
   (monitoring configurations), Figure 12 (epoch-size sensitivity) and
   Figure 13 (precision), plus the core data structures everything rides
   on.  Part 2 — full regeneration of every table and figure, printed to
   stdout (the same output `butterfly_cli table1|figure11|figure12|figure13`
   produces). *)

open Bechamel

(* ------------------------------------------------------------------ *)
(* Workload/analysis fixtures shared by the benches (built once).      *)

let fixture_program name ~threads ~scale ~h =
  let profile = Option.get (Workloads.Registry.find name) in
  Workloads.Workload.generate_program profile ~threads ~scale ~seed:7
  |> Machine.Heartbeat.insert ~every:h

let ocean_small = fixture_program "ocean" ~threads:4 ~scale:1500 ~h:128
let ocean_small_epochs = Butterfly.Epochs.of_program ocean_small
let fft_small = fixture_program "fft" ~threads:4 ~scale:1500 ~h:128

(* Large streaming workload: the sequential-vs-pooled comparison needs
   enough per-epoch work for fan-out to matter, but each entry also needs
   several samples for the gate's ratio bounds to mean anything.  Two
   threads of LU churn land a sequential pass around a quarter second
   (the pooled and wavefront drivers roughly double that), so the timed
   quota below collects at least a handful of runs per entry.  (The
   previous fixture, OCEAN at scale 1200, cost ~14 s per pass: OCEAN's fixed-size
   stencil iteration is all-or-nothing, so every streaming entry sat at
   runs:1 and the wavefront gate was comparing single samples.) *)
let lu_large = fixture_program "lu" ~threads:2 ~scale:1200 ~h:64
let lu_large_epochs = Butterfly.Epochs.of_program lu_large

let exploit_program = (Workloads.Exploit.cross_thread_chain ()).program
let exploit_epochs = Butterfly.Epochs.of_program exploit_program

let frag_a =
  Butterfly.Interval_set.of_intervals
    (List.init 200 (fun k -> (k * 128, (k * 128) + 64)))

let frag_b =
  Butterfly.Interval_set.of_intervals
    (List.init 200 (fun k -> ((k * 128) + 32, (k * 128) + 96)))

let site k = Butterfly.Instr_id.make ~epoch:k ~tid:(k mod 4) ~index:k

let defs =
  Butterfly.Def_set.of_list
    (List.init 64 (fun k ->
         Butterfly.Definition.make ~loc:(k mod 16) ~site:(site k)))

let kills =
  List.init 16 Butterfly.Def_set.all_of_loc
  |> List.fold_left Butterfly.Def_set.union Butterfly.Def_set.empty

let exprs =
  Butterfly.Expr_set.of_list
    (List.init 64 (fun k -> Butterfly.Expr.binop (k mod 12) ((k + 5) mod 12)))

let expr_kills =
  List.init 12 Butterfly.Expr_set.killing
  |> List.fold_left Butterfly.Expr_set.union Butterfly.Expr_set.empty

let vo_fixture =
  Memmodel.Valid_ordering.of_blocks
    [|
      [ [| Tracing.Instr.Assign_const 0 |]; [| Tracing.Instr.Read 0 |] ];
      [ [| Tracing.Instr.Assign_const 1 |]; [| Tracing.Instr.Read 1 |] ];
    |]

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks.                                                    *)

let core_tests =
  Test.make_grouped ~name:"substrates"
    [
      Test.make ~name:"interval_set.union"
        (Staged.stage (fun () -> Butterfly.Interval_set.union frag_a frag_b));
      Test.make ~name:"interval_set.diff"
        (Staged.stage (fun () -> Butterfly.Interval_set.diff frag_a frag_b));
      Test.make ~name:"def_set.kill-consensus"
        (Staged.stage (fun () ->
             Butterfly.Def_set.union
               (Butterfly.Def_set.inter kills kills)
               (Butterfly.Def_set.diff kills defs)));
      Test.make ~name:"expr_set.diff-wildcards"
        (Staged.stage (fun () -> Butterfly.Expr_set.diff exprs expr_kills));
      Test.make ~name:"valid_ordering.enumerate"
        (Staged.stage (fun () ->
             Memmodel.Valid_ordering.count ~cap:5_000 vo_fixture));
      Test.make ~name:"scheduler.streaming-run"
        (Staged.stage
           (let module S = Butterfly.Scheduler.Make
                (Butterfly.Reaching_definitions.Problem) in
            fun () ->
              let s = S.create ~threads:3 ~on_instr:(fun _ -> ()) () in
              for tid = 0 to 2 do
                S.feed_trace s tid (Tracing.Program.trace exploit_program tid)
              done;
              S.finish s));
      Test.make ~name:"idempotent_filter.walk-1k"
        (Staged.stage (fun () ->
             let f = Machine.Idempotent_filter.create () in
             for k = 0 to 999 do
               ignore
                 (Machine.Idempotent_filter.admit f
                    (Tracing.Instr.Read (64 * (k mod 600))))
             done));
    ]

(* Table 1: the machine model — cache-simulated application timing. *)
let table1_tests =
  Test.make_grouped ~name:"table1.machine-model"
    [
      Test.make ~name:"app-timing.per-thread-epochs"
        (Staged.stage (fun () ->
             Machine.App_timing.per_thread_epochs Machine.Machine_config.default
               fft_small));
      Test.make ~name:"app-timing.sequential"
        (Staged.stage (fun () ->
             Machine.App_timing.sequential_cycles Machine.Machine_config.default
               fft_small));
    ]

(* Figure 11: the three monitoring configurations. *)
let figure11_tests =
  let app =
    Machine.App_timing.per_thread_epochs Machine.Machine_config.default
      ocean_small
  in
  Test.make_grouped ~name:"figure11.monitoring"
    [
      Test.make ~name:"butterfly.addrcheck-run"
        (Staged.stage (fun () -> Lifeguards.Addrcheck.run ocean_small_epochs));
      Test.make ~name:"butterfly.cost-model"
        (Staged.stage (fun () ->
             Harness.Cost_model.butterfly_input Machine.Machine_config.default
               ocean_small ~app ~flagged:(fun _ _ -> 0)));
      Test.make ~name:"timesliced.lifeguard"
        (Staged.stage (fun () ->
             Harness.Cost_model.timesliced_lifeguard_cycles
               Machine.Machine_config.default ocean_small));
      Test.make ~name:"monitor-sim.timeline"
        (Staged.stage
           (let input =
              Harness.Cost_model.butterfly_input Machine.Machine_config.default
                ocean_small ~app ~flagged:(fun _ _ -> 0)
            in
            fun () -> Machine.Monitor_sim.parallel input));
    ]

(* Figure 12: epoch-size sensitivity of the analysis itself. *)
let figure12_tests =
  let with_h h =
    Butterfly.Epochs.of_program
      (fixture_program "ocean" ~threads:4 ~scale:1500 ~h)
  in
  let small = with_h 64 and large = with_h 512 in
  Test.make_grouped ~name:"figure12.epoch-size"
    [
      Test.make ~name:"addrcheck.h=64"
        (Staged.stage (fun () -> Lifeguards.Addrcheck.run small));
      Test.make ~name:"addrcheck.h=512"
        (Staged.stage (fun () -> Lifeguards.Addrcheck.run large));
    ]

(* Streaming drivers: the same butterfly pass over the same trace, run on
   the sequential scheduler and on domain pools of increasing width.  The
   pools outlive the measurement loop (created once in [main], shut down
   after), so the numbers compare steady-state dispatch, not domain
   spawning. *)
module SRD = Butterfly.Scheduler.Make (Butterfly.Reaching_definitions.Problem)

let streaming_run ?pool ?wavefront () =
  ignore
    (SRD.run_epochs ?pool ?wavefront ~on_instr:(fun _ -> ())
       lu_large_epochs)

let streaming_tests pools =
  Test.make_grouped ~name:"streaming"
    (Test.make ~name:"sequential" (Staged.stage (fun () -> streaming_run ()))
    :: List.map
         (fun (d, pool) ->
           Test.make
             ~name:(Printf.sprintf "pooled-%d" d)
             (Staged.stage (fun () -> streaming_run ~pool ())))
         pools)

(* TaintCheck drivers: none of the registry workloads emit taint traffic
   (only the tiny exploit scenarios do), so the sequential-vs-pooled
   comparison runs over a hand-built fixture — a deterministic mix of
   sources, sanitizers, inheritance chains and sinks over a small shared
   address space, big enough per epoch for fan-out to matter. *)
let taint_program ~threads ~scale ~h =
  let instrs t =
    List.init scale (fun k ->
        let a = ((k * 7) + (t * 13)) mod 24 and b = ((k * 5) + 3) mod 24 in
        match k mod 12 with
        | 0 -> Tracing.Instr.Taint_source a
        | 1 | 2 | 3 -> Tracing.Instr.Assign_unop (b, a)
        | 4 -> Tracing.Instr.Assign_binop (a, b, (k + 9) mod 24)
        | 5 -> Tracing.Instr.Untaint b
        | 6 -> Tracing.Instr.Syscall_arg a
        | 7 -> Tracing.Instr.Jump_via b
        | 8 -> Tracing.Instr.Assign_const a
        | 9 | 10 -> Tracing.Instr.Read a
        | _ -> Tracing.Instr.Nop)
  in
  Tracing.Program.of_instrs (List.init threads instrs)
  |> Machine.Heartbeat.insert ~every:h

let taint_epochs =
  Butterfly.Epochs.of_program (taint_program ~threads:4 ~scale:1000 ~h:64)

let taint_run ?pool ?wavefront () =
  ignore (Lifeguards.Taintcheck.run ?pool ?wavefront taint_epochs)

let taint_tests pools =
  Test.make_grouped ~name:"taint"
    (Test.make ~name:"sequential" (Staged.stage (fun () -> taint_run ()))
    :: List.map
         (fun (d, pool) ->
           Test.make
             ~name:(Printf.sprintf "pooled-%d" d)
             (Staged.stage (fun () -> taint_run ~pool ())))
         pools)

(* RaceCheck drivers: happens-before/lockset pairing over the
   lock-discipline workload.  Discipline 0.7 leaves most accesses
   guarded and seeds genuine races, so both suppression paths (vector
   clock and lockset) and the cross-thread pairing loop all do real
   work; the wavefront entries ride the same pools as the other
   driver-comparison groups. *)
let race_epochs =
  Workloads.Synthetic.generate_racy ~counters:8 ~discipline:0.7 ~threads:4
    ~scale:1000 ~seed:7 ()
  |> Workloads.Workload.Bundle.program
  |> Tracing.Program.with_heartbeats ~every:64
  |> Butterfly.Epochs.of_program

let race_run ?pool ?wavefront () =
  ignore (Lifeguards.Racecheck.run ?pool ?wavefront race_epochs)

let race_tests pools =
  Test.make_grouped ~name:"race"
    (Test.make ~name:"sequential" (Staged.stage (fun () -> race_run ()))
    :: List.concat_map
         (fun (d, pool) ->
           [
             Test.make
               ~name:(Printf.sprintf "pooled-%d" d)
               (Staged.stage (fun () -> race_run ~pool ()));
             Test.make
               ~name:(Printf.sprintf "wavefront-%d" d)
               (Staged.stage (fun () -> race_run ~pool ~wavefront:true ()));
           ])
         pools)

(* Epochwise vs wavefront: the same pool, the same trace, barrier vs
   pipelined dispatch — the pairing BENCH_*.json's regression gate holds
   to "wavefront no slower than epochwise".  Two workload shapes: the
   streaming reaching-definitions pass (pass-2 dominated, the barrier is
   pure overhead) and the TaintCheck two-pass pipeline (serially
   dependent pass-2, the win is pass-1 overlap). *)
let wavefront_tests pools =
  Test.make_grouped ~name:"epochwise-vs-wavefront"
    (List.concat_map
       (fun (d, pool) ->
         [
           Test.make
             ~name:(Printf.sprintf "streaming.epochwise-%d" d)
             (Staged.stage (fun () -> streaming_run ~pool ()));
           Test.make
             ~name:(Printf.sprintf "streaming.wavefront-%d" d)
             (Staged.stage (fun () -> streaming_run ~pool ~wavefront:true ()));
           Test.make
             ~name:(Printf.sprintf "taint.epochwise-%d" d)
             (Staged.stage (fun () -> taint_run ~pool ()));
           Test.make
             ~name:(Printf.sprintf "taint.wavefront-%d" d)
             (Staged.stage (fun () -> taint_run ~pool ~wavefront:true ()));
         ])
       pools)

(* Flat vs functional fact tables: the same lifeguard, the same epochs,
   with only the [--state] backend switched.  The `.flat`/`.functional`
   naming is load-bearing: gate.exe's rule 3 pairs entries by that suffix
   within this group and requires the taint pair to hold a >=1.5x flat
   speedup (the arena fast path's reason to exist) while every other pair
   merely must not regress.  The ingest.* entries compare whole-trace
   materialization against the zero-copy cursor walk and are unpaired
   (reported, not gated). *)
(* Fan-out variant for the gated flat-vs-functional taint pair: eight
   threads, 128-instruction blocks, taint sources scattered over a 4k
   address space.  Every window slide recomputes each wing block's
   GEN/KILL summary once per body — threads x (threads - 1) times plus
   the SOS update — so the per-block summary cost grows quadratically
   with thread count.  The flat backend memoizes those summaries and
   builds each in one arena buffer; the functional reference deliberately
   re-folds them element by element, which is exactly the gap the >=1.5x
   gate rule pins.  (The narrow fixture above fits the whole taint state
   in a few machine words, hiding any representation difference; it keeps
   serving the driver-comparison group.) *)
let taint_fanout_epochs =
  let threads = 8 and scale = 2000 and span = 4096 in
  let instrs t =
    List.init scale (fun k ->
        let a = ((k * 2654435761) + (t * 977)) land (span - 1) in
        let b = ((k * 40503) + (t * 131) + 12289) land (span - 1) in
        match k mod 16 with
        | m when m < 10 -> Tracing.Instr.Taint_source a
        | 12 -> Tracing.Instr.Untaint b
        | 13 -> Tracing.Instr.Assign_unop (b, a)
        | 14 -> Tracing.Instr.Syscall_arg b
        | _ -> Tracing.Instr.Nop)
  in
  Tracing.Program.of_instrs (List.init threads instrs)
  |> Machine.Heartbeat.insert ~every:128
  |> Butterfly.Epochs.of_program

let flat_tests =
  let ocean_binary = Tracing.Trace_codec.encode_binary ocean_small in
  let cursor_run () =
    match Tracing.Trace_codec.Cursor.of_string ocean_binary with
    | Error m -> failwith m
    | Ok c ->
      let st = Lifeguards.Addrcheck.Resumable.create ~state:`Flat ~threads:(Tracing.Trace_codec.Cursor.threads c) () in
      Tracing.Trace_codec.Cursor.iter_rows c
        (Lifeguards.Addrcheck.Resumable.feed_epoch st);
      ignore (Lifeguards.Addrcheck.Resumable.finish st)
  in
  let list_run () =
    match Tracing.Trace_codec.decode_binary ocean_binary with
    | Error m -> failwith m
    | Ok p ->
      ignore
        (Lifeguards.Addrcheck.run ~state:`Flat (Butterfly.Epochs.of_program p))
  in
  Test.make_grouped ~name:"flat-vs-functional"
    [
      Test.make ~name:"taint.functional"
        (Staged.stage (fun () ->
             ignore
               (Lifeguards.Taintcheck.run ~state:`Functional taint_fanout_epochs)));
      Test.make ~name:"taint.flat"
        (Staged.stage (fun () ->
             ignore (Lifeguards.Taintcheck.run ~state:`Flat taint_fanout_epochs)));
      Test.make ~name:"addrcheck-ocean.functional"
        (Staged.stage (fun () ->
             ignore
               (Lifeguards.Addrcheck.run ~state:`Functional ocean_small_epochs)));
      Test.make ~name:"addrcheck-ocean.flat"
        (Staged.stage (fun () ->
             ignore (Lifeguards.Addrcheck.run ~state:`Flat ocean_small_epochs)));
      Test.make ~name:"initcheck-ocean.functional"
        (Staged.stage (fun () ->
             ignore
               (Lifeguards.Initcheck.run ~state:`Functional ocean_small_epochs)));
      Test.make ~name:"initcheck-ocean.flat"
        (Staged.stage (fun () ->
             ignore (Lifeguards.Initcheck.run ~state:`Flat ocean_small_epochs)));
      Test.make ~name:"ingest.list" (Staged.stage list_run);
      Test.make ~name:"ingest.cursor" (Staged.stage cursor_run);
    ]

(* Serving throughput: full HELLO→DATA→FIN→REPORT conversations against
   a live daemon on a Unix socket, 1 tenant vs 8 concurrent tenants.
   Reports per second is 1e9/ns_per_run (×8 for the 8-tenant entry).
   The daemon feeds every session from one domain, so 8 tenants carry
   ~8× the analysis work of the solo entry; what the pair tracks is the
   multiplexing tax on top of that — select churn, frame decoding and
   the round-robin rotation across 8 live connections.  The daemon
   outlives the measurement loop (booted once around this group's
   measurement, see [measure_serve] in [main]), so the numbers compare
   steady-state serving, not daemon start-up. *)
let serve_rows, serve_threads =
  let p = fixture_program "lu" ~threads:4 ~scale:400 ~h:64 in
  (Recovery.Runner.rows_of (Butterfly.Epochs.of_program p), 4)

let serve_one ~socket tenant =
  let hello =
    {
      Serve.Wire.tenant;
      lifeguard = Recovery.Snapshot.Addrcheck;
      driver = `Sequential;
      state = `Flat;
      relaxed = false;
      threads = serve_threads;
    }
  in
  match Serve.Client.run_tenant ~socket ~hello serve_rows with
  | Ok _ -> ()
  | Error m -> failwith ("serve bench: " ^ m)

let serve_tests socket =
  Test.make_grouped ~name:"serve"
    [
      Test.make ~name:"tenants-1"
        (Staged.stage (fun () -> serve_one ~socket "bench0"));
      Test.make ~name:"tenants-8"
        (Staged.stage (fun () ->
             List.init 8 (fun i ->
                 Domain.spawn (fun () ->
                     serve_one ~socket (Printf.sprintf "bench%d" i)))
             |> List.iter Domain.join));
    ]

(* Obs null path: the instrument calls the scheduler hot path makes,
   measured under the default null sink — the tax every run pays whether
   or not telemetry is being collected.  The allocation guard lives in
   test_obs (null_sink_allocation_free); this group tracks the cycles. *)
let obs_counter = Obs.Counter.make "bench.obs.counter"
let obs_gauge = Obs.Gauge.make "bench.obs.gauge"
let obs_hist = Obs.Histogram.make "bench.obs.hist"

let obs_tests =
  Test.make_grouped ~name:"obs.null-sink"
    [
      Test.make ~name:"counter.incr-1k"
        (Staged.stage (fun () ->
             for _ = 1 to 1000 do Obs.Counter.incr obs_counter done));
      Test.make ~name:"gauge.set-1k"
        (Staged.stage (fun () ->
             for _ = 1 to 1000 do Obs.Gauge.set obs_gauge 0.5 done));
      Test.make ~name:"histogram.observe-1k"
        (Staged.stage (fun () ->
             for _ = 1 to 1000 do Obs.Histogram.observe obs_hist 1.5 done));
      Test.make ~name:"scope.with_scope-1k"
        (Staged.stage (fun () ->
             for k = 1 to 1000 do
               Obs.Scope.with_scope ~epoch:k ~tid:0 ~phase:"pass2" ignore
             done));
    ]

(* Figure 13: precision machinery — the checks that classify events. *)
let figure13_tests =
  Test.make_grouped ~name:"figure13.precision"
    [
      Test.make ~name:"taintcheck.window-checks"
        (Staged.stage (fun () ->
             Lifeguards.Taintcheck.run ~sequential:true exploit_epochs));
      Test.make ~name:"reaching-definitions.epochs"
        (Staged.stage (fun () ->
             Butterfly.Reaching_definitions.run exploit_epochs));
      Test.make ~name:"reaching-expressions.epochs"
        (Staged.stage (fun () ->
             Butterfly.Reaching_expressions.run exploit_epochs));
    ]

(* One measured benchmark: noise-floor ns-per-run estimate plus the
   number of raw measurements it was taken over.

   The estimator is the minimum time/runs across all samples, not an
   OLS fit.  gate.exe holds hard ratio bounds on these numbers, and on
   a shared single-core box the noise is strictly one-sided — GC major
   slices, CPU steal and scheduler preemption only ever add time — so
   the floor is the stable, comparable statistic while a fitted slope
   swings by tens of percent depending on which samples caught an
   outlier (observed: the same entry at 12 ms and 30 ms in back-to-back
   suite runs under OLS). *)
type measurement = { name : string; runs : int; ns_per_run : float }

let measure_benchmarks groups =
  let instance = Toolkit.Instance.monotonic_clock in
  let label = Measure.label instance in
  List.map
    (fun (quota, stabilize, tests) ->
      let cfg =
        Benchmark.cfg ~limit:50 ~stabilize ~quota:(Time.second quota) ()
      in
      let raw = Benchmark.all cfg [ instance ] tests in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) raw [] in
      List.map
        (fun name ->
          let (b : Benchmark.t) = Hashtbl.find raw name in
          let floor =
            Array.fold_left
              (fun acc m ->
                let runs = Measurement_raw.run m in
                if runs <= 0.0 then acc
                else Float.min acc (Measurement_raw.get ~label m /. runs))
              infinity b.lr
          in
          let est = if Float.is_finite floor then floor else nan in
          { name; runs = b.stats.samples; ns_per_run = est })
        (List.sort compare names))
    groups
  |> List.concat

let print_text measurements =
  List.iter
    (fun m ->
      let pretty =
        if m.ns_per_run > 1e6 then Printf.sprintf "%8.3f ms" (m.ns_per_run /. 1e6)
        else if m.ns_per_run > 1e3 then
          Printf.sprintf "%8.3f us" (m.ns_per_run /. 1e3)
        else Printf.sprintf "%8.1f ns" m.ns_per_run
      in
      Printf.printf "  %-45s %s/run\n%!" m.name pretty)
    measurements

(* Machine-readable mode: the perf baseline future changes regress
   against.  One JSON array of {name, runs, ns_per_run} on stdout,
   nothing else. *)
let print_json measurements =
  let j =
    Obs.Json.List
      (List.map
         (fun m ->
           Obs.Json.Obj
             [
               ("name", Obs.Json.String m.name);
               ("runs", Obs.Json.Int m.runs);
               ("ns_per_run", Obs.Json.Float m.ns_per_run);
             ])
         measurements)
  in
  print_endline (Obs.Json.to_string j)

(* ------------------------------------------------------------------ *)

let () =
  (* [--probe]: direct wall-clock + GC timing of the flat-vs-functional
     fixtures, 2 s of repeated runs each after one warm-up.  Bechamel's
     quota/regression machinery is the committed instrument, but on
     300-700 ms fixtures its sample counts are small and run-to-run
     medians wobble; this probe is the diagnostic to reach for when a
     gate ratio looks implausible.  Not part of [--json] output. *)
  (if Array.exists (( = ) "--probe") Sys.argv then begin
     let major0 = ref 0.0 in
     let time name f =
       ignore (f ());
       major0 := (Gc.quick_stat ()).Gc.major_words;
       let t0 = Unix.gettimeofday () in
       let n = ref 0 in
       while Unix.gettimeofday () -. t0 < 2.0 do
         ignore (f ());
         incr n
       done;
       let st = Gc.quick_stat () in
       Printf.printf "%-28s %8.2f ms/run (%d runs)  major %.1f MB/run\n%!" name
         ((Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int !n)
         !n
         ((st.Gc.major_words -. !major0) *. 8e-6 /. float_of_int !n);
       major0 := (Gc.quick_stat ()).Gc.major_words
     in
     time "taint.functional" (fun () ->
         Lifeguards.Taintcheck.run ~state:`Functional taint_fanout_epochs);
     time "taint.flat" (fun () ->
         Lifeguards.Taintcheck.run ~state:`Flat taint_fanout_epochs);
     time "taint-narrow.functional" (fun () ->
         Lifeguards.Taintcheck.run ~state:`Functional taint_epochs);
     time "taint-narrow.flat" (fun () ->
         Lifeguards.Taintcheck.run ~state:`Flat taint_epochs);
     time "addrcheck.functional" (fun () ->
         Lifeguards.Addrcheck.run ~state:`Functional ocean_small_epochs);
     time "addrcheck.flat" (fun () ->
         Lifeguards.Addrcheck.run ~state:`Flat ocean_small_epochs);
     time "initcheck.functional" (fun () ->
         Lifeguards.Initcheck.run ~state:`Functional ocean_small_epochs);
     time "initcheck.flat" (fun () ->
         Lifeguards.Initcheck.run ~state:`Flat ocean_small_epochs);
     exit 0
   end);
  let json = Array.exists (( = ) "--json") Sys.argv in
  let streaming_only = Array.exists (( = ) "--streaming-only") Sys.argv in
  let taint_only = Array.exists (( = ) "--taint-only") Sys.argv in
  let wavefront_only = Array.exists (( = ) "--wavefront-only") Sys.argv in
  let race_only = Array.exists (( = ) "--race-only") Sys.argv in
  let flat_only = Array.exists (( = ) "--flat-only") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve-only") Sys.argv in
  let pools =
    List.map
      (fun d ->
        ( d,
          Butterfly.Domain_pool.create
            ~name:(Printf.sprintf "bench-%d" d)
            ~domains:d () ))
      [ 2; 4 ]
  in
  (* The serve group gets its daemon scoped to its own measurement: an
     extra live domain parked in the daemon's select loop for the whole
     suite drags every microsecond-scale entry (each stop-the-world
     minor collection synchronises one more domain), which showed up as
     10-50x "regressions" on obs.null-sink when the daemon stayed
     resident from [main].  Boot, measure, tear down. *)
  let measure_serve quota =
    let socket = Filename.temp_file "bench_serve" ".sock" in
    Sys.remove socket;
    let stop = Atomic.make `Run in
    let daemon =
      Domain.spawn (fun () ->
          Serve.Daemon.run
            ~stop:(fun () -> Atomic.get stop)
            (Serve.Daemon.config ~socket ()))
    in
    (match Serve.Client.status ~socket () with
    | Ok _ -> ()
    | Error m -> failwith ("serve bench daemon never came up: " ^ m));
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop `Quit;
        Domain.join daemon;
        if Sys.file_exists socket then Sys.remove socket)
      (fun () -> measure_benchmarks [ (quota, true, serve_tests socket) ])
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> Butterfly.Domain_pool.shutdown p) pools)
    (fun () ->
      (* Most groups live on a 1s quota (bechamel stabilizes the GC
         before every sample, so even microsecond entries only collect
         a handful of samples per second — the ~limit:50 cap keeps the
         cheap ones from eating the whole quota).  The groups whose
         entries gate.exe holds hard ratio bounds on —
         flat-vs-functional (rule 3) and the streaming pairs (rules 1
         and 2) — get 4-6s quotas instead: their runs are hundreds of
         ms, and a short quota would pin them at a single sample each,
         gating on noise.
         The flat fixtures deliberately stay full-size — the arena
         backend's advantage is fact density, which a downscaled OCEAN
         run never develops (at scale 500 the functional InitCheck
         trees are small enough to win) — so the quota is what buys the
         sample count. *)
      let groups =
        if streaming_only then [ (6.0, false, streaming_tests pools) ]
        else if taint_only then [ (1.0, true, taint_tests pools) ]
        else if wavefront_only then [ (6.0, false, wavefront_tests pools) ]
        else if race_only then [ (1.0, true, race_tests pools) ]
        else if flat_only then [ (4.0, true, flat_tests) ]
        else if serve_only then []
        else
          [
            (1.0, true, core_tests); (1.0, true, obs_tests);
            (1.0, true, table1_tests); (1.0, true, figure11_tests);
            (1.0, true, figure12_tests); (1.0, true, figure13_tests);
            (6.0, false, streaming_tests pools);
            (1.0, true, taint_tests pools);
            (6.0, false, wavefront_tests pools);
            (1.0, true, race_tests pools); (4.0, true, flat_tests);
          ]
      in
      let full_suite =
        not
          (streaming_only || taint_only || wavefront_only || race_only
         || flat_only || serve_only)
      in
      let measure_all () =
        let base = measure_benchmarks groups in
        if serve_only || full_suite then base @ measure_serve 2.0 else base
      in
      if json then print_json (measure_all ())
      else begin
        print_endline
          "=== Bechamel micro-benchmarks (one group per artifact) ===";
        print_text (measure_all ());
        if full_suite then begin
          print_endline "";
          print_endline "=== Regenerated paper artifacts ===";
          print_endline "";
          print_string (Harness.Table1.render ());
          print_endline "";
          print_string (Harness.Figure11.render (Harness.Figure11.run ()));
          print_endline "";
          print_string (Harness.Figure12.render (Harness.Figure12.run ()));
          print_endline "";
          print_string (Harness.Figure13.render (Harness.Figure13.run ()))
        end
      end)
