type event = {
  kind : string;
  name : string;
  labels : (string * string) list;
  v : float;
  t_ns : float;
  epoch : int option;
  tid : int option;
  phase : string option;
}

(* ------------------------------------------------------------------ *)
(* JSONL parsing                                                       *)

let num = function
  | Obs.Json.Int n -> Some (float_of_int n)
  | Obs.Json.Float f -> Some f
  | _ -> None

let parse_line line =
  if String.trim line = "" then Error "empty line"
  else
    match Obs.Json.of_string line with
    | Error m -> Error m
    | Ok (Obs.Json.Obj fields) -> (
      let get k = List.assoc_opt k fields in
      let str k = match get k with Some (Obs.Json.String s) -> Some s | _ -> None in
      match (str "kind", str "name", Option.bind (get "v") num) with
      | Some kind, Some name, Some v ->
        let labels =
          match get "labels" with
          | Some (Obs.Json.Obj ls) ->
            List.filter_map
              (fun (k, j) ->
                match j with Obs.Json.String s -> Some (k, s) | _ -> None)
              ls
          | _ -> []
        in
        let t_ns = Option.value ~default:0. (Option.bind (get "t_ns") num) in
        let scope k =
          match get "scope" with
          | Some (Obs.Json.Obj s) -> List.assoc_opt k s
          | _ -> None
        in
        let scope_int k =
          match scope k with Some (Obs.Json.Int n) -> Some n | _ -> None
        in
        let phase =
          match scope "phase" with Some (Obs.Json.String s) -> Some s | _ -> None
        in
        Ok
          {
            kind;
            name;
            labels;
            v;
            t_ns;
            epoch = scope_int "epoch";
            tid = scope_int "tid";
            phase;
          }
      | _ -> Error "not an obs event (kind/name/v missing)")
    | Ok _ -> Error "not a JSON object"

let parse_events contents =
  let bad = ref 0 in
  let events =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
    |> List.filter_map (fun l ->
           match parse_line l with
           | Ok e -> Some e
           | Error _ ->
             incr bad;
             None)
  in
  (events, !bad)

(* ------------------------------------------------------------------ *)
(* Formatting                                                          *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f µs" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let fmt_bytes b =
  if b < 1024. then Printf.sprintf "%.0f B" b
  else if b < 1024. *. 1024. then Printf.sprintf "%.1f KiB" (b /. 1024.)
  else Printf.sprintf "%.1f MiB" (b /. (1024. *. 1024.))

let fmt_count v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

(* ------------------------------------------------------------------ *)
(* SVG charts                                                          *)

(* All charts are single-series (categorical slot 1), so no legend box:
   the card title names the series.  Tooltips are native SVG <title>
   elements — no script. *)

let chart_w = 560.
let chart_h = 200.
let pad_l = 56.
let pad_r = 12.
let pad_t = 10.
let pad_b = 26.

let plot_w = chart_w -. pad_l -. pad_r
let plot_h = chart_h -. pad_t -. pad_b

let svg_open b =
  Printf.ksprintf (Buffer.add_string b)
    "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" \
     xmlns=\"http://www.w3.org/2000/svg\">\n"
    chart_w chart_h

let gridlines b ~vmax ~fmt =
  for i = 0 to 4 do
    let frac = float_of_int i /. 4. in
    let y = pad_t +. plot_h -. (frac *. plot_h) in
    if i > 0 then
      Printf.ksprintf (Buffer.add_string b)
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"var(--gridline)\" stroke-width=\"1\"/>\n"
        pad_l y (pad_l +. plot_w) y;
    Printf.ksprintf (Buffer.add_string b)
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" class=\"tick\">%s</text>\n"
      (pad_l -. 6.) (y +. 3.)
      (html_escape (fmt (frac *. vmax)))
  done;
  (* baseline *)
  Printf.ksprintf (Buffer.add_string b)
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
     stroke=\"var(--baseline)\" stroke-width=\"1\"/>\n"
    pad_l (pad_t +. plot_h) (pad_l +. plot_w) (pad_t +. plot_h)

(* Nice axis ceiling: 1/2/5 x 10^k at or above v. *)
let nice_max v =
  if v <= 0. then 1.
  else
    let e = Float.of_int (int_of_float (Float.floor (Float.log10 v))) in
    let base = Float.pow 10. e in
    let m = v /. base in
    if m <= 1. then base
    else if m <= 2. then 2. *. base
    else if m <= 5. then 5. *. base
    else 10. *. base

let bar_chart ~x_title ~fmt ~tooltip bars =
  let b = Buffer.create 2048 in
  svg_open b;
  let vmax = nice_max (List.fold_left (fun a (_, v) -> Float.max a v) 0. bars) in
  gridlines b ~vmax ~fmt;
  let n = List.length bars in
  let slot = plot_w /. float_of_int (max 1 n) in
  let bw = Float.max 2. (Float.min 28. (slot -. 2.)) in
  List.iteri
    (fun i (label, v) ->
      let x = pad_l +. (float_of_int i *. slot) +. ((slot -. bw) /. 2.) in
      let h = v /. vmax *. plot_h in
      let y = pad_t +. plot_h -. h in
      (* 2px-radius rounded data end, squared at the baseline: draw the
         rect slightly taller and clip at the baseline via a path.  A
         plain rx rect rounds both ends; acceptable only when h > rx. *)
      Printf.ksprintf (Buffer.add_string b)
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"2\" \
         fill=\"var(--series-1)\"><title>%s</title></rect>\n"
        x y bw (Float.max 1. h)
        (html_escape (tooltip label v));
      (* x tick labels, thinned to at most ~12 *)
      let every = max 1 (n / 12) in
      if i mod every = 0 then
        Printf.ksprintf (Buffer.add_string b)
          "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
           class=\"tick\">%s</text>\n"
          (x +. (bw /. 2.))
          (pad_t +. plot_h +. 14.)
          (html_escape label))
    bars;
  Printf.ksprintf (Buffer.add_string b)
    "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" class=\"axis\">%s</text>\n"
    (pad_l +. (plot_w /. 2.))
    (chart_h -. 2.) (html_escape x_title);
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

let line_chart ~x_title ~fmt ~tooltip points =
  let b = Buffer.create 2048 in
  svg_open b;
  let xmin = List.fold_left (fun a (x, _) -> Float.min a x) infinity points in
  let xmax = List.fold_left (fun a (x, _) -> Float.max a x) neg_infinity points in
  let vmax = nice_max (List.fold_left (fun a (_, v) -> Float.max a v) 0. points) in
  gridlines b ~vmax ~fmt;
  let xspan = if xmax > xmin then xmax -. xmin else 1. in
  let px x = pad_l +. ((x -. xmin) /. xspan *. plot_w) in
  let py v = pad_t +. plot_h -. (v /. vmax *. plot_h) in
  let path =
    String.concat " "
      (List.mapi
         (fun i (x, v) ->
           Printf.sprintf "%s%.1f,%.1f" (if i = 0 then "M" else "L") (px x) (py v))
         points)
  in
  Printf.ksprintf (Buffer.add_string b)
    "<path d=\"%s\" fill=\"none\" stroke=\"var(--series-1)\" \
     stroke-width=\"2\" stroke-linejoin=\"round\"/>\n"
    path;
  (* Hover targets: invisible fat circles carrying the tooltip, plus a
     small visible marker. *)
  List.iter
    (fun (x, v) ->
      Printf.ksprintf (Buffer.add_string b)
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"var(--series-1)\"/>\n"
        (px x) (py v);
      Printf.ksprintf (Buffer.add_string b)
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"8\" fill=\"transparent\">\
         <title>%s</title></circle>\n"
        (px x) (py v)
        (html_escape (tooltip x v)))
    points;
  Printf.ksprintf (Buffer.add_string b)
    "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" class=\"axis\">%s</text>\n"
    (pad_l +. (plot_w /. 2.))
    (chart_h -. 2.) (html_escape x_title);
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Series extraction                                                   *)

let sum_by_epoch events ~kind ~name =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if e.kind = kind && e.name = name then
        match e.epoch with
        | Some l ->
          Hashtbl.replace tbl l (e.v +. Option.value ~default:0. (Hashtbl.find_opt tbl l))
        | None -> ())
    events;
  Hashtbl.fold (fun l v acc -> (l, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total events ~kind ~name =
  List.fold_left
    (fun acc e -> if e.kind = kind && e.name = name then acc +. e.v else acc)
    0. events

let series events ~kind ~name =
  List.filter_map
    (fun e -> if e.kind = kind && e.name = name then Some (e.t_ns, e.v) else None)
    events

(* ------------------------------------------------------------------ *)
(* Page                                                                *)

let style =
  {css|
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}
header h1 { font-size: 20px; margin: 0 0 4px; }
header p { color: var(--ink-2); margin: 0 0 20px; font-size: 13px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--ink-2); margin-top: 2px; }
.cards { display: grid; grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); gap: 16px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px;
}
.card h2 { font-size: 14px; margin: 0 0 2px; }
.card .sub { font-size: 12px; color: var(--ink-2); margin: 0 0 10px; }
.card svg { width: 100%; height: auto; display: block; }
.card .empty { color: var(--muted); font-size: 13px; padding: 32px 0; text-align: center; }
svg text { fill: var(--muted); font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .tick { font-size: 9px; font-variant-numeric: tabular-nums; }
svg .axis { font-size: 10px; fill: var(--ink-2); }
footer { margin-top: 20px; color: var(--muted); font-size: 12px; }
|css}

let card b ~title ~sub body =
  Printf.ksprintf (Buffer.add_string b)
    "<div class=\"card\"><h2>%s</h2><p class=\"sub\">%s</p>%s</div>\n"
    (html_escape title) (html_escape sub) body

let empty_card = "<p class=\"empty\">no data in this stream</p>"

let tile b ~value ~label =
  Printf.ksprintf (Buffer.add_string b)
    "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"k\">%s</div></div>\n"
    (html_escape value) (html_escape label)

let render ?(title = "Butterfly run") ?refresh events =
  let b = Buffer.create 16384 in
  Buffer.add_string b "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  Buffer.add_string b "<meta charset=\"utf-8\"/>\n";
  Buffer.add_string b
    "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\"/>\n";
  (match refresh with
  | Some n ->
    Printf.ksprintf (Buffer.add_string b)
      "<meta http-equiv=\"refresh\" content=\"%d\"/>\n" n
  | None -> ());
  Printf.ksprintf (Buffer.add_string b) "<title>%s</title>\n" (html_escape title);
  Printf.ksprintf (Buffer.add_string b) "<style>%s</style>\n" style;
  Buffer.add_string b "</head>\n<body>\n";

  let t0 =
    List.fold_left (fun a e -> Float.min a e.t_ns) infinity events
  in
  let t1 =
    List.fold_left (fun a e -> Float.max a e.t_ns) neg_infinity events
  in
  let epochs_seen =
    List.fold_left
      (fun a e -> match e.epoch with Some l -> max a (l + 1) | None -> a)
      0 events
  in
  Printf.ksprintf (Buffer.add_string b)
    "<header><h1>%s</h1><p>%d events%s%s</p></header>\n" (html_escape title)
    (List.length events)
    (if events = [] then "" else Printf.sprintf " over %s" (fmt_ns (t1 -. t0)))
    (if epochs_seen > 0 then Printf.sprintf " · %d epochs" epochs_seen else "");

  (* --- stat tiles ------------------------------------------------- *)
  let checks = total events ~kind:"add" ~name:"lifeguard.checks" in
  let flags = total events ~kind:"add" ~name:"lifeguard.flags" in
  let rechecks = total events ~kind:"add" ~name:"lifeguard.phase2_rechecks" in
  let ckpts = total events ~kind:"add" ~name:"recovery.checkpoints" in
  Buffer.add_string b "<div class=\"tiles\">\n";
  if epochs_seen > 0 then tile b ~value:(string_of_int epochs_seen) ~label:"epochs";
  tile b ~value:(fmt_count checks) ~label:"checks resolved";
  tile b ~value:(fmt_count flags) ~label:"errors flagged";
  if checks > 0. then
    tile b
      ~value:(Printf.sprintf "%.1f%%" (100. *. rechecks /. checks))
      ~label:"phase-2 recheck rate";
  if ckpts > 0. then tile b ~value:(fmt_count ckpts) ~label:"checkpoints";
  Buffer.add_string b "</div>\n";

  Buffer.add_string b "<div class=\"cards\">\n";

  (* --- per-epoch pass-2 latency ----------------------------------- *)
  let lat = sum_by_epoch events ~kind:"observe" ~name:"butterfly.pass2_block.ns" in
  card b ~title:"Pass-2 latency by epoch"
    ~sub:"sum of butterfly.pass2_block.ns per uncertainty epoch"
    (if lat = [] then empty_card
     else
       bar_chart ~x_title:"epoch" ~fmt:fmt_ns
         ~tooltip:(fun l v -> Printf.sprintf "epoch %s: %s" l (fmt_ns v))
         (List.map (fun (l, v) -> (string_of_int l, v)) lat));

  (* --- pool utilization ------------------------------------------- *)
  let util = series events ~kind:"set" ~name:"pool.utilization" in
  card b ~title:"Domain-pool utilization"
    ~sub:"pool.utilization gauge over the run"
    (if util = [] then empty_card
     else
       line_chart ~x_title:"ms since start"
         ~fmt:(fun v -> Printf.sprintf "%.0f%%" v)
         ~tooltip:(fun x v -> Printf.sprintf "+%.1f ms: %.0f%% busy" x v)
         (List.map (fun (t, v) -> ((t -. t0) /. 1e6, v *. 100.)) util));

  (* --- wavefront pipeline, when that driver ran -------------------- *)
  (* Conditional on the metrics existing in the stream: epochwise and
     sequential runs never touch scheduler.wavefront.*, so their
     dashboards are unchanged byte for byte. *)
  let wf_stall = sum_by_epoch events ~kind:"observe" ~name:"scheduler.wavefront.stall_ns" in
  let wf_overlap = total events ~kind:"add" ~name:"scheduler.wavefront.overlapped_epochs" in
  let wf_p1 = total events ~kind:"add" ~name:"scheduler.wavefront.pipelined_pass1_blocks" in
  let wf_ready = series events ~kind:"set" ~name:"scheduler.wavefront.ready_queue" in
  if wf_stall <> [] || wf_overlap > 0. || wf_p1 > 0. || wf_ready <> [] then begin
    let stall_total = total events ~kind:"observe" ~name:"scheduler.wavefront.stall_ns" in
    card b ~title:"Wavefront pipeline"
      ~sub:
        (Printf.sprintf
           "commit-side stall per epoch · %s overlapped epochs · %s pass-1 \
            blocks pipelined · %s total stall"
           (fmt_count wf_overlap) (fmt_count wf_p1) (fmt_ns stall_total))
      (if wf_stall = [] then empty_card
       else
         bar_chart ~x_title:"epoch" ~fmt:fmt_ns
           ~tooltip:(fun l v -> Printf.sprintf "epoch %s: stalled %s" l (fmt_ns v))
           (List.map (fun (l, v) -> (string_of_int l, v)) wf_stall));
    if wf_ready <> [] then
      card b ~title:"Wavefront in-flight epochs"
        ~sub:"scheduler.wavefront.ready_queue gauge over the run"
        (line_chart ~x_title:"ms since start" ~fmt:fmt_count
           ~tooltip:(fun x v ->
             Printf.sprintf "+%.1f ms: %s in flight" x (fmt_count v))
           (List.map (fun (t, v) -> ((t -. t0) /. 1e6, v)) wf_ready))
  end;

  (* --- phase-2 rechecks per epoch ---------------------------------- *)
  let p2 = sum_by_epoch events ~kind:"add" ~name:"lifeguard.phase2_rechecks" in
  card b ~title:"Phase-2 rechecks by epoch"
    ~sub:"Lemma 6.3 second-phase resolutions (lifeguard.phase2_rechecks)"
    (if p2 = [] then empty_card
     else
       bar_chart ~x_title:"epoch" ~fmt:fmt_count
         ~tooltip:(fun l v -> Printf.sprintf "epoch %s: %s rechecks" l (fmt_count v))
         (List.map (fun (l, v) -> (string_of_int l, v)) p2));

  (* --- checkpoint cadence ------------------------------------------ *)
  let ckpt_events =
    List.filter (fun e -> e.kind = "add" && e.name = "recovery.checkpoints") events
  in
  let bytes_by_epoch = sum_by_epoch events ~kind:"add" ~name:"recovery.bytes" in
  card b ~title:"Checkpoint cadence"
    ~sub:"recovery.checkpoints: interval between consecutive snapshots"
    (if List.length ckpt_events < 1 then empty_card
     else
       let times = List.map (fun e -> e.t_ns) ckpt_events in
       let bars =
         List.mapi
           (fun i t ->
             let prev = if i = 0 then t0 else List.nth times (i - 1) in
             (string_of_int (i + 1), t -. prev))
           times
       in
       bar_chart ~x_title:"checkpoint #" ~fmt:fmt_ns
         ~tooltip:(fun l v -> Printf.sprintf "checkpoint %s after %s" l (fmt_ns v))
         bars);

  (* --- checkpoint sizes, when scoped ------------------------------- *)
  if bytes_by_epoch <> [] then
    card b ~title:"Checkpoint size by epoch"
      ~sub:"recovery.bytes written per checkpointed epoch"
      (bar_chart ~x_title:"epoch" ~fmt:fmt_bytes
         ~tooltip:(fun l v -> Printf.sprintf "epoch %s: %s" l (fmt_bytes v))
         (List.map (fun (l, v) -> (string_of_int l, v)) bytes_by_epoch));

  Buffer.add_string b "</div>\n";
  Buffer.add_string b
    "<footer>rendered from an obs JSONL stream — butterfly analysis \
     introspection</footer>\n";
  Buffer.add_string b "</body>\n</html>\n";
  Buffer.contents b
