type node =
  | Pass1 of { epoch : int; tid : int }
  | Pass2 of { epoch : int; tid : int }
  | Sos of { epoch : int }

type edge_kind = Head | Wing | Sos_in | Sos_chain | Epoch_sum

type edge = { src : node; dst : node; kind : edge_kind }

type t = {
  num_epochs : int;
  threads : int;
  instrs : int array array;
  edges : edge list;
  focus : int option;
}

(* Sort keys.  Nodes order epoch-major, SOS before the pass columns of
   its epoch (it is computed from strictly earlier epochs), pass-1
   before pass-2, thread-minor within a column. *)
let node_key = function
  | Sos { epoch } -> (epoch, 0, 0)
  | Pass1 { epoch; tid } -> (epoch, 1, tid)
  | Pass2 { epoch; tid } -> (epoch, 2, tid)

let kind_key = function
  | Sos_chain -> 0
  | Epoch_sum -> 1
  | Head -> 2
  | Wing -> 3
  | Sos_in -> 4

let edge_key e = (node_key e.dst, kind_key e.kind, node_key e.src)

let in_grid ~num_epochs ~threads ~epoch ~tid =
  epoch >= 0 && epoch < num_epochs && tid >= 0 && tid < threads

let edges_of ~num_epochs ~threads =
  let es = ref [] in
  let push src dst kind = es := { src; dst; kind } :: !es in
  for l = 0 to num_epochs - 1 do
    (* SOS recurrence: SOS_l = GEN_{l-2} ∪ (SOS_{l-1} − KILL_{l-2}). *)
    if l >= 1 then push (Sos { epoch = l - 1 }) (Sos { epoch = l }) Sos_chain;
    if l >= 2 then
      for t = 0 to threads - 1 do
        push (Pass1 { epoch = l - 2; tid = t }) (Sos { epoch = l }) Epoch_sum
      done;
    for tid = 0 to threads - 1 do
      let body = Pass2 { epoch = l; tid } in
      if l >= 1 then push (Pass1 { epoch = l - 1; tid }) body Head;
      for l' = l - 1 to l + 1 do
        for t' = 0 to threads - 1 do
          if t' <> tid && in_grid ~num_epochs ~threads ~epoch:l' ~tid:t' then
            push (Pass1 { epoch = l'; tid = t' }) body Wing
        done
      done;
      push (Sos { epoch = l }) body Sos_in
    done
  done;
  List.sort (fun a b -> compare (edge_key a) (edge_key b)) !es

let make ~num_epochs ~threads =
  if num_epochs < 0 then invalid_arg "Butterfly_graph.make: negative num_epochs";
  if threads <= 0 then invalid_arg "Butterfly_graph.make: threads must be > 0";
  {
    num_epochs;
    threads;
    instrs = Array.make_matrix num_epochs threads 0;
    edges = edges_of ~num_epochs ~threads;
    focus = None;
  }

let of_epochs epochs =
  let num_epochs = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  let g = make ~num_epochs ~threads in
  for l = 0 to num_epochs - 1 do
    for tid = 0 to threads - 1 do
      g.instrs.(l).(tid) <-
        Butterfly.Block.length (Butterfly.Epochs.block epochs ~epoch:l ~tid)
    done
  done;
  g

let restrict g ~epoch =
  if epoch < 0 || epoch >= g.num_epochs then
    invalid_arg "Butterfly_graph.restrict: epoch out of range";
  let keep e =
    match e.dst with
    | Pass2 { epoch = l; _ } -> l = epoch
    | Sos { epoch = l } -> l = epoch
    | Pass1 _ -> false
  in
  { g with edges = List.filter keep g.edges; focus = Some epoch }

let node_id = function
  | Sos { epoch } -> Printf.sprintf "sos_%d" epoch
  | Pass1 { epoch; tid } -> Printf.sprintf "p1_%d_%d" epoch tid
  | Pass2 { epoch; tid } -> Printf.sprintf "p2_%d_%d" epoch tid

let nodes g =
  let tbl = Hashtbl.create 64 in
  let add n = Hashtbl.replace tbl n () in
  (* A full graph lists every in-grid node even in degenerate grids
     (a 1-epoch grid has no head/SOS edges); a restricted one only what
     its edges touch. *)
  if g.focus = None then
    for l = 0 to g.num_epochs - 1 do
      add (Sos { epoch = l });
      for tid = 0 to g.threads - 1 do
        add (Pass1 { epoch = l; tid });
        add (Pass2 { epoch = l; tid })
      done
    done;
  List.iter
    (fun e ->
      add e.src;
      add e.dst)
    g.edges;
  Hashtbl.fold (fun n () acc -> n :: acc) tbl []
  |> List.sort (fun a b -> compare (node_key a) (node_key b))

let is_acyclic g =
  (* Kahn's algorithm over the edge list — no appeal to construction. *)
  let ns = nodes g in
  let indeg = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) ns;
  let out = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace indeg e.dst (Hashtbl.find indeg e.dst + 1);
      Hashtbl.replace out e.src (e.dst :: Option.value ~default:[] (Hashtbl.find_opt out e.src)))
    g.edges;
  let q = Queue.create () in
  List.iter (fun n -> if Hashtbl.find indeg n = 0 then Queue.add n q) ns;
  let visited = ref 0 in
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    incr visited;
    List.iter
      (fun m ->
        let d = Hashtbl.find indeg m - 1 in
        Hashtbl.replace indeg m d;
        if d = 0 then Queue.add m q)
      (Option.value ~default:[] (Hashtbl.find_opt out n))
  done;
  !visited = List.length ns

let kind_name = function
  | Head -> "head"
  | Wing -> "wing"
  | Sos_in -> "sos_in"
  | Sos_chain -> "sos_chain"
  | Epoch_sum -> "epoch_sum"

let dot_edge_attrs = function
  | Head -> "color=\"#2a78d6\",penwidth=1.6"
  | Wing -> "color=\"#898781\",style=dashed"
  | Sos_in -> "color=\"#1baf7a\",penwidth=1.6"
  | Sos_chain -> "color=\"#1baf7a\",style=bold"
  | Epoch_sum -> "color=\"#898781\",style=dotted,arrowhead=empty"

let node_label g = function
  | Sos { epoch } -> Printf.sprintf "SOS_%d" epoch
  | Pass1 { epoch; tid } ->
    Printf.sprintf "pass1 (%d,%d)\\n%d instrs" epoch tid g.instrs.(epoch).(tid)
  | Pass2 { epoch; tid } -> Printf.sprintf "pass2 (%d,%d)" epoch tid

let node_shape = function
  | Sos _ -> "shape=diamond,style=filled,fillcolor=\"#d9f2e6\""
  | Pass1 _ -> "shape=box,style=filled,fillcolor=\"#e3eefc\""
  | Pass2 _ -> "shape=box,style=\"rounded,filled\",fillcolor=\"#fdf1e6\""

let to_dot g =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "digraph butterfly {\n";
  pf "  rankdir=LR;\n";
  pf "  fontname=\"Helvetica\";\n";
  pf "  node [fontname=\"Helvetica\",fontsize=10];\n";
  pf "  edge [fontname=\"Helvetica\",fontsize=9];\n";
  pf
    "  label=\"butterfly dependence graph — %d epochs x %d threads\\nhead: \
     blue solid; wing: gray dashed; SOS: green; epoch summary: gray \
     dotted\";\n"
    g.num_epochs g.threads;
  pf "  labelloc=t;\n";
  let ns = nodes g in
  let by_epoch =
    List.filter
      (fun n ->
        match n with
        | Sos { epoch } | Pass1 { epoch; _ } | Pass2 { epoch; _ } ->
          epoch >= 0 && epoch < g.num_epochs)
      ns
  in
  for l = 0 to g.num_epochs - 1 do
    let mine =
      List.filter
        (fun n ->
          match n with
          | Sos { epoch } | Pass1 { epoch; _ } | Pass2 { epoch; _ } -> epoch = l)
        by_epoch
    in
    if mine <> [] then begin
      pf "  subgraph cluster_epoch_%d {\n" l;
      pf "    label=\"epoch %d\";\n" l;
      pf "    color=\"#c3c2b7\";\n";
      List.iter
        (fun n ->
          pf "    %s [label=\"%s\",%s];\n" (node_id n) (node_label g n)
            (node_shape n))
        mine;
      pf "  }\n"
    end
  done;
  List.iter
    (fun e ->
      pf "  %s -> %s [%s];\n" (node_id e.src) (node_id e.dst)
        (dot_edge_attrs e.kind))
    g.edges;
  pf "}\n";
  Buffer.contents b

let to_json g =
  let open Obs.Json in
  let node_json n =
    let kind, epoch, tid =
      match n with
      | Sos { epoch } -> ("sos", epoch, None)
      | Pass1 { epoch; tid } -> ("pass1", epoch, Some tid)
      | Pass2 { epoch; tid } -> ("pass2", epoch, Some tid)
    in
    Obj
      ([ ("id", String (node_id n)); ("kind", String kind); ("epoch", Int epoch) ]
      @ (match tid with Some t -> [ ("tid", Int t) ] | None -> [])
      @
      match n with
      | Pass1 { epoch; tid } when epoch >= 0 && epoch < g.num_epochs ->
        [ ("instrs", Int g.instrs.(epoch).(tid)) ]
      | _ -> [])
  in
  let edge_json e =
    Obj
      [
        ("src", String (node_id e.src));
        ("dst", String (node_id e.dst));
        ("kind", String (kind_name e.kind));
      ]
  in
  let timeline =
    List.init g.num_epochs (fun l ->
        Obj
          [
            ("epoch", Int l);
            ( "blocks",
              List
                (Array.to_list
                   (Array.mapi
                      (fun tid n -> Obj [ ("tid", Int tid); ("instrs", Int n) ])
                      g.instrs.(l))) );
            ("instrs", Int (Array.fold_left ( + ) 0 g.instrs.(l)));
          ])
  in
  Obj
    ([
       ("schema", String "butterfly.graph/1");
       ("num_epochs", Int g.num_epochs);
       ("threads", Int g.threads);
     ]
    @ (match g.focus with Some l -> [ ("focus", Int l) ] | None -> [])
    @ [
        ("nodes", List (List.map node_json (nodes g)));
        ("edges", List (List.map edge_json g.edges));
        ("timeline", List timeline);
      ])
