(** Self-contained HTML dashboard over a {!Obs.Sink.jsonl} event stream.

    {!render} turns the structured telemetry a run streamed to JSONL —
    every event timestamped ([t_ns]) and scope-tagged (epoch / tid /
    phase, see {!Obs.Scope}) — into one HTML file with zero external
    dependencies: no scripts, no fonts, no network fetches.  Charts are
    inline SVG with native [<title>] tooltips; light and dark render
    from the same markup via CSS custom properties and
    [prefers-color-scheme].

    Panels, each skipped gracefully when its series is absent:
    - header stat tiles (events, epochs, checks, flags);
    - per-epoch pass-2 latency (sum of [butterfly.pass2_block.ns]
      observations grouped by scope epoch);
    - domain-pool utilization over time ([pool.utilization]);
    - phase-2 recheck rate ([lifeguard.phase2_rechecks] vs
      [lifeguard.checks], per epoch);
    - checkpoint cadence ([recovery.checkpoints] event times and
      [recovery.bytes] sizes).

    Output is a pure function of the input events: rendering the same
    JSONL twice gives byte-identical HTML. *)

type event = {
  kind : string;  (** [add], [set], [set_max] or [observe]. *)
  name : string;
  labels : (string * string) list;
  v : float;
  t_ns : float;
  epoch : int option;
  tid : int option;
  phase : string option;
}

val parse_line : string -> (event, string) result
(** One JSONL line.  Blank lines are an error ([Error "empty line"]) —
    filter them out before calling. *)

val parse_events : string -> event list * int
(** Whole-file contents: the well-formed events in order, and how many
    non-blank lines failed to parse (surfaced on the dashboard rather
    than failing the render — a crashed run leaves a torn last line). *)

val render : ?title:string -> ?refresh:int -> event list -> string
(** The HTML document.  [refresh] adds a [<meta http-equiv="refresh">]
    so a browser pointed at a file being appended to re-reads it — the
    "live" mode; the page itself still contains no script. *)
