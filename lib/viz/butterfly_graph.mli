(** The butterfly dependence graph of an epoch grid.

    Renders the paper's two-pass pipeline (Figure 7 geometry plus the
    SOS recurrence of Section 5) as an explicit DAG: what each pass-2
    body computation is allowed to read, and where the strongly-ordered
    state it starts from came from.  Nodes are {e phase-qualified} —
    pass-1 of a block, pass-2 of a block, and SOS of an epoch are
    distinct vertices — which is exactly why the graph is acyclic even
    though two concurrent blocks sit in each other's wings.

    Per body block [(l, t)]:

    - a {b head} edge from pass-1 of [(l-1, t)] — the same thread's
      previous block is fully ordered before the body;
    - a {b wing} edge from pass-1 of every [(l', t')] with
      [l-1 <= l' <= l+1], [t' <> t] (in-grid only) — potentially
      concurrent blocks contribute their summaries to the side-in meet;
    - an {b sos-in} edge from [SOS_l] — the strongly-ordered prefix the
      local pass-2 state is seeded from.

    Per epoch [l >= 1], an {b sos-chain} edge [SOS_{l-1} -> SOS_l], and
    for [l >= 2] an {b epoch-sum} edge from pass-1 of every block of
    epoch [l-2]: [SOS_l = GEN_{l-2} ∪ (SOS_{l-1} − KILL_{l-2})] — the
    two-epoch lag is the uncertainty window made visible.

    Both renderings ({!to_dot}, {!to_json}) are byte-deterministic for a
    given grid: nodes epoch-major then thread-minor, edges sorted by
    destination then kind then source. *)

type node =
  | Pass1 of { epoch : int; tid : int }
  | Pass2 of { epoch : int; tid : int }
  | Sos of { epoch : int }  (** [SOS_epoch], the state {e entering} the epoch. *)

type edge_kind = Head | Wing | Sos_in | Sos_chain | Epoch_sum

type edge = { src : node; dst : node; kind : edge_kind }

type t = private {
  num_epochs : int;
  threads : int;
  instrs : int array array;  (** [instrs.(l).(t)]: body size of block (l,t). *)
  edges : edge list;
  focus : int option;  (** Body epoch when {!restrict}ed, [None] for the grid. *)
}

val make : num_epochs:int -> threads:int -> t
(** Pure geometry — every block counts 0 instructions. *)

val of_epochs : Butterfly.Epochs.t -> t
(** Geometry of the grid plus per-block instruction counts. *)

val restrict : t -> epoch:int -> t
(** Keep only the butterfly of bodies in [epoch]: edges into its pass-2
    nodes and into [SOS_epoch], plus the nodes they touch.  Raises
    [Invalid_argument] when [epoch] is out of range. *)

val nodes : t -> node list
(** Every node incident to an edge plus every in-grid pass-1/pass-2
    node, epoch-major, thread-minor, SOS first within an epoch. *)

val node_id : node -> string
(** Stable identifier ([sos_3], [p1_2_0], [p2_2_0]) used by both
    renderings. *)

val is_acyclic : t -> bool
(** Always [true] by construction; exported so property tests check the
    construction rather than trust this comment. *)

val to_dot : t -> string
(** Graphviz source: one [subgraph cluster_*] per epoch, edge styles per
    kind, a legend in the graph label. *)

val to_json : t -> Obs.Json.t
(** [{schema; num_epochs; threads; nodes; edges; timeline}] where
    [timeline] lists per-epoch block sizes in thread order. *)
