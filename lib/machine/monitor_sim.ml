type epoch_work = {
  instrs : int;
  app_cycles : int;
  pass1_cycles : int;
  pass2_cycles : int;
}

type parallel_input = {
  work : epoch_work array array;
  buffer_entries : int;
  barrier_cycles : int;
  epoch_fixed_cycles : int;
}

type parallel_result = {
  makespan : int;
  app_finish : int array;
  lifeguard_finish : int array;
  stall_cycles : int array;
}

let obs_labels = [ ("sim", "monitor") ]
let m_stalls = Obs.Counter.make ~labels:obs_labels "monitor_sim.stall_cycles"
let g_makespan = Obs.Gauge.make ~labels:obs_labels "monitor_sim.makespan_cycles"

let g_queue_hwm =
  Obs.Gauge.make ~labels:obs_labels "monitor_sim.log_queue_depth_hwm"

let g_timesliced =
  Obs.Gauge.make ~labels:obs_labels "monitor_sim.timesliced_cycles"

(* Per-core lifeguard schedule: p1(0), p1(1), p2(0), p1(2), p2(1), ...
   pass 2 of epoch e requires pass 1 of epoch e+1 on every thread (the
   sliding window covers epochs e-1..e+1).  The application is coupled to
   pass 1 through the finite log buffer. *)
let parallel input =
  let threads = Array.length input.work in
  if threads = 0 then invalid_arg "Monitor_sim.parallel: no threads";
  let epochs = Array.length input.work.(0) in
  let w t e = input.work.(t).(e) in
  let p1_finish = Array.make_matrix threads (epochs + 1) 0 in
  let p2_finish = Array.make_matrix threads (epochs + 1) 0 in
  let produce_done = Array.make threads 0 in
  let stalls = Array.make threads 0 in
  let service1 t e =
    let k = w t e in
    if k.instrs = 0 then 0 else (k.pass1_cycles + k.instrs - 1) / k.instrs
  in
  for e = 0 to epochs - 1 do
    (* Pass 1 of epoch e on every lifeguard core. *)
    for t = 0 to threads - 1 do
      let k = w t e in
      let prev_item =
        if e = 0 then 0
        else if e = 1 then p1_finish.(t).(0)
        else p2_finish.(t).(e - 2)
      in
      let p1_start = prev_item in
      (* Backpressure: the producer cannot finish the epoch before the
         consumer has drained all but a buffer's worth of its events. *)
      let natural = produce_done.(t) + k.app_cycles in
      let drained =
        p1_start + (service1 t e * max 0 (k.instrs - input.buffer_entries))
      in
      let actual = max natural drained in
      stalls.(t) <- stalls.(t) + (actual - natural);
      produce_done.(t) <- actual;
      (* Pass 1 finishes after its own work, and no earlier than the last
         event arrives plus draining the buffered tail. *)
      let queued = min input.buffer_entries k.instrs in
      Obs.Gauge.set_max g_queue_hwm (float_of_int queued);
      let tail = service1 t e * queued in
      p1_finish.(t).(e) <-
        max (p1_start + k.pass1_cycles + input.epoch_fixed_cycles)
          (actual + tail)
    done;
    (* Pass 2 of epoch e-1: needs pass 1 of epoch e on all threads. *)
    if e >= 1 then (
      let barrier =
        Array.fold_left (fun m row -> max m row.(e)) 0
          (Array.map (fun r -> r) p1_finish)
        + input.barrier_cycles
      in
      for t = 0 to threads - 1 do
        let k = w t (e - 1) in
        p2_finish.(t).(e - 1) <-
          max barrier p1_finish.(t).(e)
          + k.pass2_cycles + input.epoch_fixed_cycles
      done)
  done;
  (* Final epoch's pass 2: the window's tail is empty, so it only needs the
     last epoch's own pass-1 summaries. *)
  if epochs > 0 then (
    let barrier =
      Array.fold_left (fun m row -> max m row.(epochs - 1)) 0 p1_finish
      + input.barrier_cycles
    in
    for t = 0 to threads - 1 do
      let k = w t (epochs - 1) in
      let prev = if epochs >= 2 then p2_finish.(t).(epochs - 2) else 0 in
      p2_finish.(t).(epochs - 1) <-
        max (max barrier prev) (p1_finish.(t).(epochs - 1))
        + k.pass2_cycles + input.epoch_fixed_cycles
    done);
  let lifeguard_finish =
    Array.init threads (fun t -> if epochs = 0 then 0 else p2_finish.(t).(epochs - 1))
  in
  let makespan = Array.fold_left max 0 lifeguard_finish in
  Obs.Counter.add m_stalls (Array.fold_left ( + ) 0 stalls);
  Obs.Gauge.set g_makespan (float_of_int makespan);
  {
    makespan;
    app_finish = Array.copy produce_done;
    lifeguard_finish;
    stall_cycles = stalls;
  }

type timesliced_input = {
  app_total_cycles : int;
  lifeguard_total_cycles : int;
}

let timesliced input =
  let cycles = max input.app_total_cycles input.lifeguard_total_cycles in
  Obs.Gauge.set g_timesliced (float_of_int cycles);
  cycles
