(** Checkpointed lifeguard runs.

    Drives a lifeguard's [Resumable] engine over an epoch grid, persisting
    a {!Snapshot} every [every] epochs, and revives a run from such a
    snapshot.  The resumed run is byte-identical to an uninterrupted one —
    that is the [Resumable] contract, enforced by the resume-equivalence
    suite in [test_recovery] and fuzzed continuously by [Qa].

    Telemetry (under the installed {!Obs} sink): [recovery.checkpoints]
    and [recovery.bytes] counters, and a [recovery.restore.ns] span around
    payload decoding on resume. *)

type checkpointing = {
  every : int;  (** epochs between snapshots; must be > 0 *)
  path : string;  (** snapshot file, atomically overwritten each time *)
}

(** One lifeguard's resumable engine, as first-class operations.  ['s] is
    the engine state, ['r] its report.  Obtain instances from {!ops_of}
    (or the typed wrappers below); the record is exposed so [Crash_sim]
    and the QA crash fuzzer can drive any lifeguard generically. *)
type ('s, 'r) ops = {
  tag : Snapshot.lifeguard;
  create : threads:int -> 's;
  feed : 's -> Tracing.Instr.t array array -> unit;
  fed : 's -> int;
  finish : 's -> 'r;
  enc : 's -> string;
  dec : string -> ('s, string) result;
  fp : 'r -> string;  (** canonical report fingerprint *)
}

type packed = Packed : ('s, 'r) ops -> packed

val ops_of :
  ?pool:Butterfly.Domain_pool.t ->
  ?isolation:bool ->
  ?sequential:bool ->
  ?two_phase:bool ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  Snapshot.lifeguard ->
  packed
(** [isolation] applies to AddrCheck, [sequential]/[two_phase] to
    TaintCheck; the others ignore them.  [wavefront] (with [pool]) runs
    every lifeguard's engine in pipelined mode; checkpoints are always
    cut at sealed-epoch frontiers, so snapshots are driver-independent.
    [state] (default [`Functional]) selects the fact-table backend;
    snapshots serialize fact sets canonically, so they are
    backend-portable in both directions.  On resume the analysis flags
    are restored from the snapshot payload, not from here;
    [pool]/[wavefront]/[state] are transient and re-supplied. *)

(** Typed builders behind {!ops_of}, for callers that need to keep the
    report type visible — e.g. [lib/serve] packs an engine together with
    a typed report renderer, which the existential {!packed} cannot
    express. *)

val addr_ops :
  ?pool:Butterfly.Domain_pool.t ->
  ?isolation:bool ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  unit ->
  (Lifeguards.Addrcheck.Resumable.state, Lifeguards.Addrcheck.report) ops

val init_ops :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  unit ->
  (Lifeguards.Initcheck.Resumable.state, Lifeguards.Initcheck.report) ops

val taint_ops :
  ?pool:Butterfly.Domain_pool.t ->
  ?sequential:bool ->
  ?two_phase:bool ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  unit ->
  (Lifeguards.Taintcheck.Resumable.state, Lifeguards.Taintcheck.report) ops

val race_ops :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  unit ->
  (Lifeguards.Racecheck.Resumable.state, Lifeguards.Racecheck.report) ops

val rows_of : Butterfly.Epochs.t -> Tracing.Instr.t array array array
(** The grid as epoch rows, [rows.(epoch).(tid)]. *)

val write_checkpoint : ('s, 'r) ops -> path:string -> threads:int -> 's -> int
(** Snapshot the engine state to [path] (atomic), bumping the recovery
    counters; returns the byte size. *)

val run : ('s, 'r) ops -> ?checkpoint:checkpointing -> Butterfly.Epochs.t -> 'r
(** Feed the whole grid, snapshotting after every [every]-th epoch when
    [checkpoint] is given.  Raises [Invalid_argument] if [every <= 0]. *)

val resume :
  ('s, 'r) ops ->
  ?checkpoint:checkpointing ->
  path:string ->
  Butterfly.Epochs.t ->
  ('r, string) result
(** Revive the engine from the snapshot at [path] and feed the remaining
    epochs of the grid.  Stable errors: the {!Snapshot.read_file} errors;
    ["checkpoint is for LIFEGUARD, not LIFEGUARD"];
    ["checkpoint has N threads, trace has M"];
    ["checkpoint is ahead of the trace: N epochs folded, trace has M"];
    ["corrupt checkpoint payload: _"]. *)

(** Typed per-lifeguard conveniences over {!run}/{!resume}. *)

val run_addrcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?isolation:bool ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  Butterfly.Epochs.t ->
  Lifeguards.Addrcheck.report

val resume_addrcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  path:string ->
  Butterfly.Epochs.t ->
  (Lifeguards.Addrcheck.report, string) result

val run_initcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  Butterfly.Epochs.t ->
  Lifeguards.Initcheck.report

val resume_initcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  path:string ->
  Butterfly.Epochs.t ->
  (Lifeguards.Initcheck.report, string) result

val run_taintcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?sequential:bool ->
  ?two_phase:bool ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  Butterfly.Epochs.t ->
  Lifeguards.Taintcheck.report

val resume_taintcheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  path:string ->
  Butterfly.Epochs.t ->
  (Lifeguards.Taintcheck.report, string) result

val run_racecheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  Butterfly.Epochs.t ->
  Lifeguards.Racecheck.report

val resume_racecheck :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?checkpoint:checkpointing ->
  path:string ->
  Butterfly.Epochs.t ->
  (Lifeguards.Racecheck.report, string) result
