module W = Tracing.Binio.W
module R = Tracing.Binio.R

type lifeguard = Addrcheck | Initcheck | Taintcheck | Racecheck

let lifeguard_to_string = function
  | Addrcheck -> "addrcheck"
  | Initcheck -> "initcheck"
  | Taintcheck -> "taintcheck"
  | Racecheck -> "racecheck"

type meta = { lifeguard : lifeguard; next_epoch : int; threads : int }

let magic = "BFLYCKPT"
let version = 1

let encode meta payload =
  let w = W.create () in
  W.u8 w
    (match meta.lifeguard with
    | Addrcheck -> 0
    | Initcheck -> 1
    | Taintcheck -> 2
    | Racecheck -> 3);
  W.varint w meta.next_epoch;
  W.varint w meta.threads;
  W.string w payload;
  Tracing.Binio.frame ~magic ~version (W.contents w)

let decode s =
  match Tracing.Binio.unframe ~magic ~version s with
  | Error _ as e -> e
  | Ok body -> (
    match
      let r = R.of_string body in
      let lifeguard =
        match R.u8 r with
        | 0 -> Addrcheck
        | 1 -> Initcheck
        | 2 -> Taintcheck
        | 3 -> Racecheck
        | t -> raise (R.Corrupt (Printf.sprintf "bad lifeguard tag %d" t))
      in
      let next_epoch = R.varint r in
      let threads = R.varint r in
      let payload = R.string r in
      R.expect_end r;
      ({ lifeguard; next_epoch; threads }, payload)
    with
    | result -> Ok result
    | exception R.Corrupt m -> Error ("corrupt checkpoint metadata: " ^ m))

let write_file ~path meta payload =
  let data = encode meta payload in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
  Sys.rename tmp path;
  String.length data

let read_file ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> decode data
  | exception Sys_error m -> Error (Printf.sprintf "cannot read checkpoint %s: %s" path m)

let valid_tenant t =
  let n = String.length t in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       t

let session_path ~dir ~tenant lifeguard =
  if not (valid_tenant tenant) then
    invalid_arg (Printf.sprintf "Snapshot.session_path: invalid tenant %S" tenant);
  Filename.concat dir
    (Printf.sprintf "%s.%s.snap" tenant (lifeguard_to_string lifeguard))
