(** Fault-injection harness for checkpoint/restore.

    Simulates a monitor that dies mid-stream: feed the grid with periodic
    checkpoints, abandon the in-memory state at a chosen (or seeded)
    epoch, revive from the latest on-disk snapshot — or from scratch when
    the crash precedes the first checkpoint — and compare the recovered
    report's fingerprint against an uninterrupted run.  Any inequality is
    a recovery bug. *)

type outcome = {
  crash_epoch : int;  (** epochs fed before the simulated kill *)
  resumed_from : int;  (** snapshot's [next_epoch]; 0 with no snapshot *)
  snapshot_bytes : int;  (** size of the snapshot resumed from; 0 if none *)
  straight_fp : string;
  resumed_fp : string;
  equal : bool;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?crash_at:int ->
  ?seed:int ->
  every:int ->
  path:string ->
  Snapshot.lifeguard ->
  Butterfly.Epochs.t ->
  (outcome, string) result
(** [crash_at] is clamped to [0 .. num_epochs]; when absent the crash
    epoch is drawn deterministically from [seed] (default 0).  [path] is
    overwritten.  [Error _] propagates a failed resume — which the
    simulation itself never provokes, so it too signals a bug.  Raises
    [Invalid_argument] if [every <= 0]. *)

val run_session :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:[ `Functional | `Flat ] ->
  ?crash_at:int ->
  ?seed:int ->
  every:int ->
  dir:string ->
  tenant:string ->
  Snapshot.lifeguard ->
  Butterfly.Epochs.t ->
  (outcome, string) result
(** {!run} with the snapshot at {!Snapshot.session_path} — the same
    file a serving daemon would checkpoint this tenant's session to —
    and the whole simulation under [Obs.Scope.with_scope ~tenant], so
    streamed telemetry carries the tenant.  Raises [Invalid_argument]
    on an invalid tenant id (see {!Snapshot.valid_tenant}). *)
