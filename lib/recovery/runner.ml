module AC = Lifeguards.Addrcheck
module IC = Lifeguards.Initcheck
module TC = Lifeguards.Taintcheck
module RC = Lifeguards.Racecheck
module Epochs = Butterfly.Epochs

type checkpointing = { every : int; path : string }

type ('s, 'r) ops = {
  tag : Snapshot.lifeguard;
  create : threads:int -> 's;
  feed : 's -> Tracing.Instr.t array array -> unit;
  fed : 's -> int;
  finish : 's -> 'r;
  enc : 's -> string;
  dec : string -> ('s, string) result;
  fp : 'r -> string;
}

type packed = Packed : ('s, 'r) ops -> packed

let addr_ops ?pool ?isolation ?wavefront ?state () =
  {
    tag = Snapshot.Addrcheck;
    create =
      (fun ~threads ->
        AC.Resumable.create ?pool ?isolation ?wavefront ?state ~threads ());
    feed = AC.Resumable.feed_epoch;
    fed = AC.Resumable.epochs_fed;
    finish = AC.Resumable.finish;
    enc = AC.Resumable.encode;
    dec = AC.Resumable.decode ?pool ?wavefront ?state;
    fp = AC.fingerprint;
  }

let init_ops ?pool ?wavefront ?state () =
  {
    tag = Snapshot.Initcheck;
    create =
      (fun ~threads -> IC.Resumable.create ?pool ?wavefront ?state ~threads ());
    feed = IC.Resumable.feed_epoch;
    fed = IC.Resumable.epochs_fed;
    finish = IC.Resumable.finish;
    enc = IC.Resumable.encode;
    dec = IC.Resumable.decode ?pool ?wavefront ?state;
    fp = IC.fingerprint;
  }

let taint_ops ?pool ?sequential ?two_phase ?wavefront ?state () =
  {
    tag = Snapshot.Taintcheck;
    create =
      (fun ~threads ->
        TC.Resumable.create ?pool ?sequential ?two_phase ?wavefront ?state
          ~threads ());
    feed = TC.Resumable.feed_epoch;
    fed = TC.Resumable.epochs_fed;
    finish = TC.Resumable.finish;
    enc = TC.Resumable.encode;
    dec = TC.Resumable.decode ?pool ?wavefront ?state;
    fp = TC.fingerprint;
  }

let race_ops ?pool ?wavefront ?state () =
  {
    tag = Snapshot.Racecheck;
    create =
      (fun ~threads -> RC.Resumable.create ?pool ?wavefront ?state ~threads ());
    feed = RC.Resumable.feed_epoch;
    fed = RC.Resumable.epochs_fed;
    finish = RC.Resumable.finish;
    enc = RC.Resumable.encode;
    dec = RC.Resumable.decode ?pool ?wavefront ?state;
    fp = RC.fingerprint;
  }

let ops_of ?pool ?isolation ?sequential ?two_phase ?wavefront ?state = function
  | Snapshot.Addrcheck ->
    Packed (addr_ops ?pool ?isolation ?wavefront ?state ())
  | Snapshot.Initcheck -> Packed (init_ops ?pool ?wavefront ?state ())
  | Snapshot.Taintcheck ->
    Packed (taint_ops ?pool ?sequential ?two_phase ?wavefront ?state ())
  | Snapshot.Racecheck -> Packed (race_ops ?pool ?wavefront ?state ())

let rows_of epochs =
  let threads = Epochs.threads epochs in
  Array.init (Epochs.num_epochs epochs) (fun l ->
      Array.init threads (fun tid ->
          (Epochs.block epochs ~epoch:l ~tid).Butterfly.Block.instrs))

let m_checkpoints = Obs.Counter.make "recovery.checkpoints"
let m_bytes = Obs.Counter.make "recovery.bytes"
let sp_restore = Obs.Span.make "recovery.restore.ns"

let write_checkpoint ops ~path ~threads st =
  Obs.Scope.with_scope ~epoch:(ops.fed st) ~phase:"checkpoint" @@ fun () ->
  let meta =
    { Snapshot.lifeguard = ops.tag; next_epoch = ops.fed st; threads }
  in
  let bytes = Snapshot.write_file ~path meta (ops.enc st) in
  Obs.Counter.incr m_checkpoints;
  Obs.Counter.add m_bytes bytes;
  bytes

let drive ops ?checkpoint ~threads rows ~from st =
  (match checkpoint with
  | Some { every; _ } when every <= 0 ->
    invalid_arg "Recovery.Runner: checkpoint interval must be > 0"
  | _ -> ());
  for l = from to Array.length rows - 1 do
    ops.feed st rows.(l);
    match checkpoint with
    | Some { every; path } when ops.fed st mod every = 0 ->
      ignore (write_checkpoint ops ~path ~threads st)
    | _ -> ()
  done;
  ops.finish st

let run ops ?checkpoint epochs =
  let threads = Epochs.threads epochs in
  drive ops ?checkpoint ~threads (rows_of epochs) ~from:0 (ops.create ~threads)

let resume ops ?checkpoint ~path epochs =
  match Snapshot.read_file ~path with
  | Error m -> Error m
  | Ok (meta, payload) ->
    if meta.Snapshot.lifeguard <> ops.tag then
      Error
        (Printf.sprintf "checkpoint is for %s, not %s"
           (Snapshot.lifeguard_to_string meta.Snapshot.lifeguard)
           (Snapshot.lifeguard_to_string ops.tag))
    else
      let threads = Epochs.threads epochs in
      let num = Epochs.num_epochs epochs in
      if meta.Snapshot.threads <> threads then
        Error
          (Printf.sprintf "checkpoint has %d threads, trace has %d"
             meta.Snapshot.threads threads)
      else if meta.Snapshot.next_epoch > num then
        Error
          (Printf.sprintf
             "checkpoint is ahead of the trace: %d epochs folded, trace has %d"
             meta.Snapshot.next_epoch num)
      else (
        match
          Obs.Scope.with_scope ~phase:"restore" (fun () ->
              Obs.Span.time sp_restore (fun () -> ops.dec payload))
        with
        | Error m -> Error ("corrupt checkpoint payload: " ^ m)
        | Ok st ->
          if ops.fed st <> meta.Snapshot.next_epoch then
            Error "corrupt checkpoint payload: header and payload disagree on epoch"
          else
            Ok
              (drive ops ?checkpoint ~threads (rows_of epochs)
                 ~from:meta.Snapshot.next_epoch st))

let run_addrcheck ?pool ?isolation ?wavefront ?state ?checkpoint epochs =
  run (addr_ops ?pool ?isolation ?wavefront ?state ()) ?checkpoint epochs

let resume_addrcheck ?pool ?wavefront ?state ?checkpoint ~path epochs =
  resume (addr_ops ?pool ?wavefront ?state ()) ?checkpoint ~path epochs

let run_initcheck ?pool ?wavefront ?state ?checkpoint epochs =
  run (init_ops ?pool ?wavefront ?state ()) ?checkpoint epochs

let resume_initcheck ?pool ?wavefront ?state ?checkpoint ~path epochs =
  resume (init_ops ?pool ?wavefront ?state ()) ?checkpoint ~path epochs

let run_taintcheck ?pool ?sequential ?two_phase ?wavefront ?state ?checkpoint
    epochs =
  run
    (taint_ops ?pool ?sequential ?two_phase ?wavefront ?state ())
    ?checkpoint epochs

let resume_taintcheck ?pool ?wavefront ?state ?checkpoint ~path epochs =
  resume (taint_ops ?pool ?wavefront ?state ()) ?checkpoint ~path epochs

let run_racecheck ?pool ?wavefront ?state ?checkpoint epochs =
  run (race_ops ?pool ?wavefront ?state ()) ?checkpoint epochs

let resume_racecheck ?pool ?wavefront ?state ?checkpoint ~path epochs =
  resume (race_ops ?pool ?wavefront ?state ()) ?checkpoint ~path epochs
