module Epochs = Butterfly.Epochs

type outcome = {
  crash_epoch : int;
  resumed_from : int;
  snapshot_bytes : int;
  straight_fp : string;
  resumed_fp : string;
  equal : bool;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>crash at epoch %d, resumed from %d (%d snapshot bytes): %s@,straight: %s@,resumed:  %s@]"
    o.crash_epoch o.resumed_from o.snapshot_bytes
    (if o.equal then "reports identical" else "REPORTS DIVERGE")
    o.straight_fp o.resumed_fp

let crash_point ?crash_at ~seed ~num_epochs () =
  match crash_at with
  | Some k -> max 0 (min k num_epochs)
  | None ->
    let rng = Random.State.make [| 0xc4a5; seed |] in
    Random.State.int rng (num_epochs + 1)

let simulate (type s r) (ops : (s, r) Runner.ops) ?crash_at ~seed ~every ~path
    epochs =
  if every <= 0 then invalid_arg "Crash_sim.run: every must be > 0";
  let rows = Runner.rows_of epochs in
  let threads = Epochs.threads epochs in
  let crash_epoch = crash_point ?crash_at ~seed ~num_epochs:(Array.length rows) () in
  let straight_fp = ops.Runner.fp (Runner.run ops epochs) in
  if Sys.file_exists path then Sys.remove path;
  (* The doomed run: its state is simply abandoned at the crash point,
     exactly like a killed process.  Only the snapshot file survives. *)
  let doomed = ops.Runner.create ~threads in
  for l = 0 to crash_epoch - 1 do
    ops.Runner.feed doomed rows.(l);
    if ops.Runner.fed doomed mod every = 0 then
      ignore (Runner.write_checkpoint ops ~path ~threads doomed)
  done;
  if Sys.file_exists path then (
    match Snapshot.read_file ~path with
    | Error m -> Error m
    | Ok (meta, payload) -> (
      match Runner.resume ops ~path epochs with
      | Error m -> Error m
      | Ok report ->
        let resumed_fp = ops.Runner.fp report in
        Ok
          {
            crash_epoch;
            resumed_from = meta.Snapshot.next_epoch;
            snapshot_bytes = String.length (Snapshot.encode meta payload);
            straight_fp;
            resumed_fp;
            equal = String.equal straight_fp resumed_fp;
          }))
  else
    (* Crashed before the first checkpoint: recovery is a fresh run. *)
    let resumed_fp = ops.Runner.fp (Runner.run ops epochs) in
    Ok
      {
        crash_epoch;
        resumed_from = 0;
        snapshot_bytes = 0;
        straight_fp;
        resumed_fp;
        equal = String.equal straight_fp resumed_fp;
      }

let run ?pool ?wavefront ?state ?crash_at ?(seed = 0) ~every ~path lifeguard
    epochs =
  let (Runner.Packed ops) = Runner.ops_of ?pool ?wavefront ?state lifeguard in
  simulate ops ?crash_at ~seed ~every ~path epochs

let run_session ?pool ?wavefront ?state ?crash_at ?seed ~every ~dir ~tenant
    lifeguard epochs =
  Obs.Scope.with_scope ~tenant (fun () ->
      run ?pool ?wavefront ?state ?crash_at ?seed ~every
        ~path:(Snapshot.session_path ~dir ~tenant lifeguard)
        lifeguard epochs)
