(** Durable checkpoint snapshots.

    A snapshot is the envelope every checkpoint travels in on disk:
    {!Tracing.Binio.frame} (magic, format-version byte, CRC32 trailer)
    around a small metadata header and the lifeguard engine's raw state
    payload ([Resumable.encode]).  The metadata is what restore needs to
    {e refuse} early with a precise message — resuming AddrCheck state
    into TaintCheck, or a 4-thread checkpoint against a 2-thread trace —
    before the payload is even parsed.

    Writes are atomic (temp file + rename): a crash mid-checkpoint leaves
    the previous snapshot intact, never a torn file. *)

type lifeguard = Addrcheck | Initcheck | Taintcheck | Racecheck

val lifeguard_to_string : lifeguard -> string

type meta = {
  lifeguard : lifeguard;
  next_epoch : int;  (** epochs already folded in; resume feeds from here *)
  threads : int;
}

val magic : string
(** ["BFLYCKPT"]. *)

val version : int

val encode : meta -> string -> string
(** [encode meta payload] is the complete framed snapshot. *)

val decode : string -> (meta * string, string) result
(** Errors (stable): the {!Tracing.Binio.unframe} messages for a damaged
    envelope, or ["corrupt checkpoint metadata: _"] for a valid envelope
    with an unreadable header. *)

val write_file : path:string -> meta -> string -> int
(** Atomically persist a snapshot; returns the byte size written. *)

val read_file : path:string -> (meta * string, string) result
(** [Error _] also covers an unreadable/missing file
    (["cannot read checkpoint _: _"]). *)

(** {1 Session-keyed naming}

    The serving layer ([lib/serve]) persists one snapshot per tenant
    session in a state directory; the file name is derived from the
    tenant id and the lifeguard, so a reconnecting tenant (or a daemon
    restarted after a crash) finds its own snapshot and nobody else's.
    Tenant ids are validated before they ever reach the filesystem —
    {!session_path} refuses anything {!valid_tenant} refuses, which is
    also the admission check the daemon applies to HELLO frames. *)

val valid_tenant : string -> bool
(** 1–64 characters drawn from [A-Za-z0-9_-] — no separators, no dots,
    nothing a path could be traversed with. *)

val session_path : dir:string -> tenant:string -> lifeguard -> string
(** [dir/<tenant>.<lifeguard>.snap].  Raises [Invalid_argument] if
    [valid_tenant tenant] is [false]. *)
