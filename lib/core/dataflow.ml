module type SET = sig
  type t

  val empty : t
  val is_empty : t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val union_all : t list -> t
  (* n-ary union: functional sets fold {!union}; the flat backend
     allocates the result once instead of once per operand. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type PROBLEM = sig
  val name : string

  module Set : SET

  val flavour : [ `May | `Must ]
  val gen : Instr_id.t -> Tracing.Instr.t -> Set.t
  val kill : Instr_id.t -> Tracing.Instr.t -> Set.t
end

module Make (P : PROBLEM) = struct
  module Set = P.Set

  (* Telemetry: one instrument per metric, shared by every batch run of
     this problem.  The streaming driver emits the same names with
     [driver=streaming] (see {!Scheduler.Make}). *)
  let obs_labels = [ ("problem", P.name); ("driver", "batch") ]
  let m_epochs = Obs.Counter.make ~labels:obs_labels "butterfly.epochs_processed"
  let m_instrs = Obs.Counter.make ~labels:obs_labels "butterfly.pass2_instrs"
  let sp_pass1 = Obs.Span.make ~labels:obs_labels "butterfly.pass1_summarize.ns"
  let sp_meet = Obs.Span.make ~labels:obs_labels "butterfly.side_in_meet.ns"
  let sp_lsos = Obs.Span.make ~labels:obs_labels "butterfly.lsos.ns"
  let sp_pass2 = Obs.Span.make ~labels:obs_labels "butterfly.pass2_block.ns"

  type block_summary = {
    block : Block.t;
    gen : Set.t;
    kill : Set.t;
    gen_union : Set.t;
    kill_union : Set.t;
  }

  let summarize block =
    Block.fold_left
      (fun s id instr ->
        let g = P.gen id instr and k = P.kill id instr in
        {
          s with
          gen = Set.union (Set.diff s.gen k) g;
          kill = Set.union (Set.diff s.kill g) k;
          gen_union = Set.union s.gen_union g;
          kill_union = Set.union s.kill_union k;
        })
      {
        block;
        gen = Set.empty;
        kill = Set.empty;
        gen_union = Set.empty;
        kill_union = Set.empty;
      }
      block

  let side_out s =
    match P.flavour with `May -> s.gen_union | `Must -> s.kill_union

  let side_in ~wings = Set.union_all (List.map side_out wings)

  type epoch_summary = { gen_l : Set.t; kill_l : Set.t }

  (* KILL_l (May): a fact is killed across epoch l iff some block (l,t)
     net-kills it and every other thread, over epochs l-1 and l combined,
     either kills it too or never generates it.  GEN_l (Must) is the exact
     dual.  Both reduce to pure set algebra:
       X ∩ (K' ∪ ¬G')  =  (X ∩ K') ∪ (X − G'). *)
  let consensus ~locals ~span_other ~not_other =
    let n = Array.length locals in
    let acc = ref Set.empty in
    for t = 0 to n - 1 do
      let x = ref locals.(t) in
      for t' = 0 to n - 1 do
        if t' <> t then
          x :=
            Set.union
              (Set.inter !x span_other.(t'))
              (Set.diff !x not_other.(t'))
      done;
      acc := Set.union !acc !x
    done;
    !acc

  let epoch_summary ~prev ~cur =
    let n = Array.length cur in
    let prev_gen t = match prev with None -> Set.empty | Some p -> p.(t).gen in
    let prev_kill t =
      match prev with None -> Set.empty | Some p -> p.(t).kill
    in
    match P.flavour with
    | `May ->
      let gen_l =
        Array.fold_left (fun acc s -> Set.union acc s.gen) Set.empty cur
      in
      (* KILL_{(l-1,l),t} = (KILL_{l-1,t} − GEN_{l,t}) ∪ KILL_{l,t} *)
      let span =
        Array.init n (fun t ->
            Set.union (Set.diff (prev_kill t) cur.(t).gen) cur.(t).kill)
      in
      (* ¬NOT-GEN_{(l-1,l),t} = GEN_{l-1,t} ∪ GEN_{l,t} *)
      let gen2 = Array.init n (fun t -> Set.union (prev_gen t) cur.(t).gen) in
      let locals = Array.map (fun s -> s.kill) cur in
      { gen_l; kill_l = consensus ~locals ~span_other:span ~not_other:gen2 }
    | `Must ->
      let kill_l =
        Array.fold_left (fun acc s -> Set.union acc s.kill) Set.empty cur
      in
      (* GEN_{(l-1,l),t} = (GEN_{l-1,t} − KILL_{l,t}) ∪ GEN_{l,t} *)
      let span =
        Array.init n (fun t ->
            Set.union (Set.diff (prev_gen t) cur.(t).kill) cur.(t).gen)
      in
      let kill2 =
        Array.init n (fun t -> Set.union (prev_kill t) cur.(t).kill)
      in
      let locals = Array.map (fun s -> s.gen) cur in
      { gen_l = consensus ~locals ~span_other:span ~not_other:kill2; kill_l }

  let sos_next ~sos_prev ~two_back =
    Set.union two_back.gen_l (Set.diff sos_prev two_back.kill_l)

  let lsos ~sos ~head ~two_back_row ~tid =
    let others f =
      Array.to_list two_back_row
      |> List.filteri (fun t _ -> t <> tid)
      |> List.fold_left (fun acc s -> Set.union acc (f s)) Set.empty
    in
    match P.flavour with
    | `May ->
      (* GEN_{l-1,t} ∪ (SOS_l − KILL_{l-1,t})
         ∪ {d ∈ SOS_l ∩ KILL_{l-1,t} | some other thread generates d in
            epoch l-2 — that generation may interleave after the head}. *)
      let resurrect =
        Set.inter (Set.inter sos head.kill) (others (fun s -> s.gen_union))
      in
      Set.union head.gen (Set.union (Set.diff sos head.kill) resurrect)
    | `Must ->
      (* (GEN_{l-1,t} − kills anywhere in epoch l-2 by other threads)
         ∪ (SOS_l − KILL_{l-1,t}). *)
      Set.union
        (Set.diff head.gen (others (fun s -> s.kill_union)))
        (Set.diff sos head.kill)

  type instr_view = {
    id : Instr_id.t;
    instr : Tracing.Instr.t;
    lsos_before : Set.t;
    in_before : Set.t;
    side_in : Set.t;
    sos : Set.t;
  }

  type result = {
    epochs : Epochs.t;
    sos : Set.t array;
    block_summaries : block_summary array array;
    epoch_summaries : epoch_summary array;
  }

  let compute_in ~side_in ~lsos_at =
    match P.flavour with
    | `May -> Set.union side_in lsos_at
    | `Must -> Set.diff lsos_at side_in

  (* Pass-2 inner loop over one block, shared by every driver (batch here,
     pooled/wavefront in [Scheduler.Make], fork-join in [Parallel]).
     [in_before] depends only on the running LSOS, which GEN/KILL-free
     instructions leave physically unchanged (the set ops shortcut empty
     operands) — so the meet with the side-in is recomputed only at state
     changes.  Word-at-a-time backends pay O(set width) per mutation
     instead of per instruction; the view stream is unchanged. *)
  let iter_block ~side_in ~lsos0 ~sos f body =
    let cur = ref lsos0 in
    let cached_at = ref lsos0 in
    let cached_in = ref (compute_in ~side_in ~lsos_at:lsos0) in
    Block.iteri
      (fun id instr ->
        let lsos_at = !cur in
        let in_before =
          if lsos_at == !cached_at then !cached_in
          else begin
            let v = compute_in ~side_in ~lsos_at in
            cached_at := lsos_at;
            cached_in := v;
            v
          end
        in
        f { id; instr; lsos_before = lsos_at; in_before; side_in; sos };
        let g = P.gen id instr and k = P.kill id instr in
        cur := Set.union g (Set.diff lsos_at k))
      body

  let run ?on_instr epochs =
    let num_l = Epochs.num_epochs epochs in
    let threads = Epochs.threads epochs in
    (* Pass 1: block summaries, in arrival order. *)
    let block_summaries =
      Array.init num_l (fun l ->
          Obs.Scope.with_scope ~epoch:l ~phase:"pass1" (fun () ->
              Obs.Span.time sp_pass1 (fun () ->
                  Array.init threads (fun tid ->
                      summarize (Epochs.block epochs ~epoch:l ~tid)))))
    in
    Obs.Counter.add m_epochs num_l;
    let epoch_summaries =
      Array.init num_l (fun l ->
          epoch_summary
            ~prev:(if l = 0 then None else Some block_summaries.(l - 1))
            ~cur:block_summaries.(l))
    in
    (* SOS_0 = SOS_1 = ∅; SOS_l = GEN_{l-2} ∪ (SOS_{l-1} − KILL_{l-2}). *)
    let sos = Array.make (num_l + 2) Set.empty in
    for l = 2 to num_l + 1 do
      sos.(l) <-
        sos_next ~sos_prev:sos.(l - 1) ~two_back:epoch_summaries.(l - 2)
    done;
    let empty_row epoch =
      Array.init threads (fun t -> summarize (Block.empty ~epoch ~tid:t))
    in
    let row l = if l < 0 || l >= num_l then empty_row l else block_summaries.(l) in
    (* Pass 2 with checks. *)
    (match on_instr with
    | None -> ()
    | Some f ->
      for l = 0 to num_l - 1 do
        for tid = 0 to threads - 1 do
          Obs.Scope.with_scope ~epoch:l ~tid ~phase:"pass2" (fun () ->
              let body = Epochs.block epochs ~epoch:l ~tid in
              let wings =
                Epochs.wings epochs ~epoch:l ~tid
                |> List.map (fun (b : Block.t) -> (row b.epoch).(b.tid))
              in
              let side_in = Obs.Span.time sp_meet (fun () -> side_in ~wings) in
              let head = (row (l - 1)).(tid) in
              let lsos0 =
                Obs.Span.time sp_lsos (fun () ->
                    lsos ~sos:sos.(l) ~head ~two_back_row:(row (l - 2)) ~tid)
              in
              Obs.Counter.add m_instrs (Block.length body);
              Obs.Span.time sp_pass2 (fun () ->
                  iter_block ~side_in ~lsos0 ~sos:sos.(l) f body))
        done
      done);
    { epochs; sos; block_summaries; epoch_summaries }

  let row_of r l =
    let num_l = Epochs.num_epochs r.epochs in
    let threads = Epochs.threads r.epochs in
    if l < 0 || l >= num_l then
      Array.init threads (fun tid -> summarize (Block.empty ~epoch:l ~tid))
    else r.block_summaries.(l)

  let block_in r ~epoch ~tid =
    let wings =
      Epochs.wings r.epochs ~epoch ~tid
      |> List.map (fun (b : Block.t) -> (row_of r b.epoch).(b.tid))
    in
    let side_in = side_in ~wings in
    let head = (row_of r (epoch - 1)).(tid) in
    let lsos0 =
      lsos ~sos:r.sos.(epoch) ~head ~two_back_row:(row_of r (epoch - 2)) ~tid
    in
    compute_in ~side_in ~lsos_at:lsos0

  let block_out r ~epoch ~tid =
    let s = r.block_summaries.(epoch).(tid) in
    Set.union s.gen (Set.diff (block_in r ~epoch ~tid) s.kill)
end
