(** Sets of integers represented as disjoint half-open intervals.

    AddrCheck's shadow state conceptually stores one allocation bit per byte
    of the application address space; allocations arrive as ranges
    ([malloc base size]), so the canonical compressed representation is a
    sorted list of disjoint, non-adjacent intervals [\[lo, hi)].  All
    operations preserve canonicity, making {!equal} structural. *)

type t

val empty : t
val is_empty : t -> bool

val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi-1}]; empty if [hi <= lo]. *)

val singleton : int -> t
val add_range : int -> int -> t -> t
val remove_range : int -> int -> t -> t
val mem : int -> t -> bool

val union : t -> t -> t

val union_all : t list -> t
(** n-ary {!union} (folds pairwise). *)

val inter : t -> t -> t
val diff : t -> t -> t

val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

val cardinal : t -> int
(** Number of integers (not intervals). *)

val interval_count : t -> int
val intervals : t -> (int * int) list
(** Sorted [(lo, hi)] pairs. *)

val of_intervals : (int * int) list -> t
(** Intervals may overlap and arrive in any order. *)

val choose : t -> int option
(** The smallest element, if any. *)

val fold_intervals : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
(** Per-element iteration; beware of large ranges. *)

val elements : t -> int list
val pp : Format.formatter -> t -> unit
