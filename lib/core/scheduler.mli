(** Online sliding-window driver (the processing discipline of Section 4.3).

    {!Dataflow.Make}'s [run] is a batch driver over a complete execution.
    A deployed lifeguard instead consumes each thread's event stream as the
    application produces it.  This module drives the same analysis
    incrementally: pass 1 runs the moment a heartbeat closes a block;
    pass 2 for epoch [l] runs as soon as every thread has delivered its
    epoch-[l+1] block (the butterfly needs the tail's summaries); and
    SOS{_l+2} is committed right after.  Only a constant number of epochs
    of state is ever resident — the point of the sliding window — and
    {!max_resident_epochs} exposes the high-water mark so tests can verify
    boundedness.

    {b Parallel mode.}  Passing a {!Domain_pool.t} to {!create} dispatches
    the per-block work to the pool, exploiting exactly the structure the
    paper identifies (§4.3): pass-1 summaries are per-block-local, so each
    runs on a worker the moment its heartbeat lands, while the master keeps
    ingesting events; pass-2 per-thread work reads only the (by then
    frozen) wing summaries and SOS, so one task per thread fans out when a
    window closes.  The master remains the single writer of SOS and epoch
    summaries, and re-serializes buffered views so [on_instr] observes the
    same epoch-major / thread-minor / instruction-order sequence as the
    sequential path.

    The per-instruction views delivered to [on_instr] are identical to the
    batch driver's in both modes (the equivalence is property-tested over
    thousands of random grids; see [test/test_scheduler.ml]). *)

module Make (P : Dataflow.PROBLEM) : sig
  module D : module type of Dataflow.Make (P)

  type t

  val create :
    ?pool:Domain_pool.t ->
    ?wavefront:bool ->
    threads:int ->
    on_instr:(D.instr_view -> unit) ->
    unit ->
    t
  (** With [pool], pass 1 and pass 2 run as pool tasks (see above).  The
      scheduler does not own the pool: the caller shuts it down.  All
      [feed]/[finish] calls must come from the same domain that created
      the scheduler (the master).

      With [wavefront] (default [false]; ignored without a pool), pass-2
      fan-outs do not block at the epoch boundary: each epoch's per-thread
      tasks are launched and the master moves on, so pass 1 of later
      epochs overlaps pass 2 of earlier ones.  Completed epochs are
      delivered to [on_instr] strictly in order — the view sequence stays
      byte-identical to the sequential path — but delivery may lag
      {!epochs_completed} by a bounded number of epochs until {!finish}
      (or {!quiesce}) flushes the pipeline.  Telemetry:
      [scheduler.wavefront.ready_queue], [scheduler.wavefront.stall_ns]
      and [scheduler.wavefront.overlapped_epochs] under
      [driver=wavefront]. *)

  val feed : t -> Tracing.Tid.t -> Tracing.Event.t -> unit
  (** Deliver the next event of one thread's stream.  Heartbeats close the
      thread's current block; any pass-2 work whose window is now complete
      runs before [feed] returns.  Raises [Invalid_argument] after
      {!finish} or for an out-of-range thread. *)

  val feed_trace : t -> Tracing.Tid.t -> Tracing.Trace.t -> unit

  val finish : t -> unit
  (** End of all streams: closes trailing partial blocks (padding threads
      to a common epoch count) and drains the remaining window.  Idempotent. *)

  val run_epochs :
    ?pool:Domain_pool.t ->
    ?wavefront:bool ->
    on_instr:(D.instr_view -> unit) ->
    Epochs.t ->
    t
  (** Convenience driver: replays a complete epoch grid through the
      sliding window (epoch-major feed, one heartbeat per interior block
      boundary) and {!finish}es.  The resulting view sequence and SOS
      match the batch driver's on the same grid. *)

  val sos : t -> D.Set.t
  (** The most recently committed strongly ordered state. *)

  val sos_history : t -> D.Set.t array
  (** All SOS levels computed so far, [SOS_0 .. SOS_(processed+1)].  After
      a full drain this matches the batch driver's [result.sos] array. *)

  val epochs_completed : t -> int
  (** Epochs whose second pass has been launched. *)

  val epochs_delivered : t -> int
  (** Epochs whose views have reached [on_instr].  Equal to
      {!epochs_completed} except mid-stream in wavefront mode, where it
      may lag while pass-2 tasks are still in flight. *)

  val quiesce : t -> unit
  (** Flush all transient parallelism: resolve in-flight pass-1 summaries
      and deliver every launched-but-undelivered pass-2 epoch, in order.
      Afterwards [epochs_delivered t = epochs_completed t] and the pool
      holds no work for this scheduler.  No-op outside wavefront mode
      (and on an idle scheduler). *)

  val max_resident_epochs : t -> int
  (** High-water mark of epochs simultaneously buffered. *)

  (** {2 Checkpointing}

      The durable state of a scheduler is exactly its bounded sliding
      window — open per-thread buffers, closed-block counts, the resident
      summary/block/epoch-summary rows, the SOS levels and the cursor
      counters.  {!encode_state} serializes it (resolving any in-flight
      pooled pass-1 work first, so snapshots are self-contained);
      {!decode_state} rebuilds a live scheduler that continues exactly
      where the snapshot left off: feeding the remaining events produces
      the same [on_instr] view sequence and SOS history as an
      uninterrupted run (property-tested in [test/test_recovery.ml]).
      The fact-set representation is problem-specific, so the caller
      supplies its codec; the payload carries no framing — wrap it in a
      {!Tracing.Binio.frame} (as [lib/recovery] does) before persisting. *)

  type set_codec = {
    put_set : Tracing.Binio.W.t -> D.Set.t -> unit;
    get_set : Tracing.Binio.R.t -> D.Set.t;
  }

  val encode_state : set:set_codec -> t -> string

  val decode_state :
    set:set_codec ->
    ?pool:Domain_pool.t ->
    ?wavefront:bool ->
    on_instr:(D.instr_view -> unit) ->
    string ->
    t
  (** Raises {!Tracing.Binio.R.Corrupt} on a malformed payload.  [pool],
      [wavefront] and [on_instr] are the transient plumbing re-supplied on
      restore; they play the same roles as in {!create}.  Snapshots are
      always cut quiesced (sealed-epoch frontier), so a wavefront
      scheduler restores with an empty pipeline. *)
end

(** Epoch-barrier fan-out for analyses outside {!Dataflow.PROBLEM}.

    {!Make}'s pooled mode covers lifeguards expressible as summaries plus
    a meet; TaintCheck's window-wide transfer-function chase is not, but
    it has the same parallel structure: per-block work is pure once its
    inputs are frozen, and cross-block state has a single writer.  This
    driver factors that structure out of the lifeguard:

    {ul
    {- {!Epochwise.map_grid} fans a pure per-block function over the whole
       grid at once (TaintCheck pass 1: block summarization);}
    {- {!Epochwise.run} walks epochs in order; per epoch the master runs
       [prepare], the per-thread [task]s run (on the pool when given,
       otherwise inline) and block at an epoch barrier, and the master
       then [commit]s the results in thread order.  Because tasks may only
       read state committed before the barrier opened, the pooled
       schedule is observationally identical to the sequential loop.}}

    Telemetry (pooled path only, so sequential runs report identical
    metric sets to before): [scheduler.epoch_barriers] and
    [scheduler.epoch_fanout.ns] under [driver=epochwise]. *)
module Epochwise : sig
  val map_grid :
    ?pool:Domain_pool.t ->
    num_epochs:int ->
    threads:int ->
    (epoch:int -> tid:int -> 'a) ->
    'a array array
  (** [map_grid ?pool ~num_epochs ~threads f] is the [num_epochs ×
      threads] grid of [f ~epoch ~tid], indexed [.(epoch).(tid)].  [f]
      must be pure up to thread-safety: with a pool, calls run
      concurrently in unspecified order.  Raises [Invalid_argument] if
      [threads <= 0] or [num_epochs < 0]. *)

  val run :
    ?pool:Domain_pool.t ->
    num_epochs:int ->
    threads:int ->
    prepare:(int -> unit) ->
    task:(epoch:int -> tid:int -> 'r) ->
    commit:(epoch:int -> tid:int -> 'r -> unit) ->
    unit ->
    unit
  (** For each epoch [l] in order: [prepare l] (master), then
      [task ~epoch:l ~tid] for every thread (pool workers when [pool] is
      given — they must not write shared state), then, after all of epoch
      [l]'s tasks return, [commit ~epoch:l ~tid r] in increasing [tid]
      order (master).  Raises [Invalid_argument] if [threads <= 0]. *)
end

(** Dependency-driven pipelining past the epoch barrier.

    {!Epochwise.run} stalls the whole pool at every epoch boundary, but
    the butterfly dependence structure (Lemma 5.2) only requires a block
    to wait on its own wings and head: pass 1 of block [(l, t)] is
    block-local and always ready, while pass 2 of [(l, t)] needs the
    pass-1 facts of epochs [l-1 .. l+1] and the epoch-[l] cross-block
    input ([prepare l], which the master seals once every pass-2 result
    of [l-1] is committed).  {!Wavefront.run} exploits exactly that
    slack: pass-1 dispatch runs [lookahead] epochs ahead of the pass-2
    cursor, so the pool summarizes future epochs while the current
    epoch's checks are still in flight.

    Determinism is preserved by the master-side ordered-commit trick:
    tasks run in unspecified order, but [commit1]/[commit2] are invoked
    by the master in epoch-major / thread-minor order, so all observable
    output — reports, cross-block state evolution — is byte-identical to
    the sequential schedule (property-tested in [test/test_wavefront.ml],
    including a dispatch-log replay against {!Epochs.wings}).

    Telemetry (pooled path only) under [driver=wavefront]:
    [scheduler.wavefront.ready_queue] (blocks dispatched but
    uncommitted), [scheduler.wavefront.stall_ns] (master time blocked on
    an unfinished task), [scheduler.wavefront.overlapped_epochs] and
    [scheduler.wavefront.pipelined_pass1_blocks]. *)
module Wavefront : sig
  type phase = Pass1 | Pass2

  type probe_event =
    | Dispatched of { phase : phase; epoch : int; tid : int }
    | Committed of { phase : phase; epoch : int; tid : int }
        (** Scheduling trace for the readiness-rule tests: [Dispatched]
            fires on the master just before a task is handed to the pool
            (or run inline), [Committed] just after its result is
            committed.  The probe event sequence is deterministic — a
            pure function of [(num_epochs, threads, lookahead)], never
            of worker timing — so at equal [lookahead] it is identical
            with and without a pool.  (The {e defaults} differ by mode,
            so compare runs with [lookahead] pinned.) *)

  val run :
    ?pool:Domain_pool.t ->
    ?lookahead:int ->
    ?probe:(probe_event -> unit) ->
    num_epochs:int ->
    threads:int ->
    pass1:(epoch:int -> tid:int -> 'p) ->
    commit1:(epoch:int -> tid:int -> 'p -> unit) ->
    prepare:(int -> unit) ->
    pass2:(epoch:int -> tid:int -> 'r) ->
    commit2:(epoch:int -> tid:int -> 'r -> unit) ->
    unit ->
    unit
  (** Runs the two-pass butterfly schedule over a [num_epochs × threads]
      grid.  Guarantees, in every mode:

      {ul
      {- [commit1 ~epoch ~tid] runs in epoch-major / thread-minor order,
         and for every epoch [l], pass-1 commits of epochs [<= l+1]
         precede the first pass-2 dispatch of epoch [l];}
      {- [prepare l] runs after every [commit2] of epoch [l-1] and before
         any pass-2 dispatch of epoch [l];}
      {- [commit2 ~epoch ~tid] runs in epoch-major / thread-minor order.}}

      [pass1]/[pass2] run on pool workers when [pool] is given and must
      not write shared state; commits run on the master.  [lookahead]
      (default [2 + 2 × pool size], or [2] inline) bounds how many epochs
      of pass-1 work may be in flight or uncommitted; it must be [>= 2]
      because pass 2 of epoch [l] reads the tail wing's epoch-[l+1]
      facts.  A task that raises re-raises on the master at its commit
      point, once; the pool survives.  Raises [Invalid_argument] if
      [threads <= 0], [num_epochs < 0] or [lookahead < 2]. *)
end
