(** Online sliding-window driver (the processing discipline of Section 4.3).

    {!Dataflow.Make}'s [run] is a batch driver over a complete execution.
    A deployed lifeguard instead consumes each thread's event stream as the
    application produces it.  This module drives the same analysis
    incrementally: pass 1 runs the moment a heartbeat closes a block;
    pass 2 for epoch [l] runs as soon as every thread has delivered its
    epoch-[l+1] block (the butterfly needs the tail's summaries); and
    SOS{_l+2} is committed right after.  Only a constant number of epochs
    of state is ever resident — the point of the sliding window — and
    {!max_resident_epochs} exposes the high-water mark so tests can verify
    boundedness.

    {b Parallel mode.}  Passing a {!Domain_pool.t} to {!create} dispatches
    the per-block work to the pool, exploiting exactly the structure the
    paper identifies (§4.3): pass-1 summaries are per-block-local, so each
    runs on a worker the moment its heartbeat lands, while the master keeps
    ingesting events; pass-2 per-thread work reads only the (by then
    frozen) wing summaries and SOS, so one task per thread fans out when a
    window closes.  The master remains the single writer of SOS and epoch
    summaries, and re-serializes buffered views so [on_instr] observes the
    same epoch-major / thread-minor / instruction-order sequence as the
    sequential path.

    The per-instruction views delivered to [on_instr] are identical to the
    batch driver's in both modes (the equivalence is property-tested over
    thousands of random grids; see [test/test_scheduler.ml]). *)

module Make (P : Dataflow.PROBLEM) : sig
  module D : module type of Dataflow.Make (P)

  type t

  val create :
    ?pool:Domain_pool.t ->
    threads:int ->
    on_instr:(D.instr_view -> unit) ->
    unit ->
    t
  (** With [pool], pass 1 and pass 2 run as pool tasks (see above).  The
      scheduler does not own the pool: the caller shuts it down.  All
      [feed]/[finish] calls must come from the same domain that created
      the scheduler (the master). *)

  val feed : t -> Tracing.Tid.t -> Tracing.Event.t -> unit
  (** Deliver the next event of one thread's stream.  Heartbeats close the
      thread's current block; any pass-2 work whose window is now complete
      runs before [feed] returns.  Raises [Invalid_argument] after
      {!finish} or for an out-of-range thread. *)

  val feed_trace : t -> Tracing.Tid.t -> Tracing.Trace.t -> unit

  val finish : t -> unit
  (** End of all streams: closes trailing partial blocks (padding threads
      to a common epoch count) and drains the remaining window.  Idempotent. *)

  val run_epochs :
    ?pool:Domain_pool.t ->
    on_instr:(D.instr_view -> unit) ->
    Epochs.t ->
    t
  (** Convenience driver: replays a complete epoch grid through the
      sliding window (epoch-major feed, one heartbeat per interior block
      boundary) and {!finish}es.  The resulting view sequence and SOS
      match the batch driver's on the same grid. *)

  val sos : t -> D.Set.t
  (** The most recently committed strongly ordered state. *)

  val sos_history : t -> D.Set.t array
  (** All SOS levels computed so far, [SOS_0 .. SOS_(processed+1)].  After
      a full drain this matches the batch driver's [result.sos] array. *)

  val epochs_completed : t -> int
  (** Epochs whose second pass has run. *)

  val max_resident_epochs : t -> int
  (** High-water mark of epochs simultaneously buffered. *)

  (** {2 Checkpointing}

      The durable state of a scheduler is exactly its bounded sliding
      window — open per-thread buffers, closed-block counts, the resident
      summary/block/epoch-summary rows, the SOS levels and the cursor
      counters.  {!encode_state} serializes it (resolving any in-flight
      pooled pass-1 work first, so snapshots are self-contained);
      {!decode_state} rebuilds a live scheduler that continues exactly
      where the snapshot left off: feeding the remaining events produces
      the same [on_instr] view sequence and SOS history as an
      uninterrupted run (property-tested in [test/test_recovery.ml]).
      The fact-set representation is problem-specific, so the caller
      supplies its codec; the payload carries no framing — wrap it in a
      {!Tracing.Binio.frame} (as [lib/recovery] does) before persisting. *)

  type set_codec = {
    put_set : Tracing.Binio.W.t -> D.Set.t -> unit;
    get_set : Tracing.Binio.R.t -> D.Set.t;
  }

  val encode_state : set:set_codec -> t -> string

  val decode_state :
    set:set_codec ->
    ?pool:Domain_pool.t ->
    on_instr:(D.instr_view -> unit) ->
    string ->
    t
  (** Raises {!Tracing.Binio.R.Corrupt} on a malformed payload.  [pool]
      and [on_instr] are the transient plumbing re-supplied on restore;
      they play the same roles as in {!create}. *)
end

(** Epoch-barrier fan-out for analyses outside {!Dataflow.PROBLEM}.

    {!Make}'s pooled mode covers lifeguards expressible as summaries plus
    a meet; TaintCheck's window-wide transfer-function chase is not, but
    it has the same parallel structure: per-block work is pure once its
    inputs are frozen, and cross-block state has a single writer.  This
    driver factors that structure out of the lifeguard:

    {ul
    {- {!Epochwise.map_grid} fans a pure per-block function over the whole
       grid at once (TaintCheck pass 1: block summarization);}
    {- {!Epochwise.run} walks epochs in order; per epoch the master runs
       [prepare], the per-thread [task]s run (on the pool when given,
       otherwise inline) and block at an epoch barrier, and the master
       then [commit]s the results in thread order.  Because tasks may only
       read state committed before the barrier opened, the pooled
       schedule is observationally identical to the sequential loop.}}

    Telemetry (pooled path only, so sequential runs report identical
    metric sets to before): [scheduler.epoch_barriers] and
    [scheduler.epoch_fanout.ns] under [driver=epochwise]. *)
module Epochwise : sig
  val map_grid :
    ?pool:Domain_pool.t ->
    num_epochs:int ->
    threads:int ->
    (epoch:int -> tid:int -> 'a) ->
    'a array array
  (** [map_grid ?pool ~num_epochs ~threads f] is the [num_epochs ×
      threads] grid of [f ~epoch ~tid], indexed [.(epoch).(tid)].  [f]
      must be pure up to thread-safety: with a pool, calls run
      concurrently in unspecified order.  Raises [Invalid_argument] if
      [threads <= 0] or [num_epochs < 0]. *)

  val run :
    ?pool:Domain_pool.t ->
    num_epochs:int ->
    threads:int ->
    prepare:(int -> unit) ->
    task:(epoch:int -> tid:int -> 'r) ->
    commit:(epoch:int -> tid:int -> 'r -> unit) ->
    unit ->
    unit
  (** For each epoch [l] in order: [prepare l] (master), then
      [task ~epoch:l ~tid] for every thread (pool workers when [pool] is
      given — they must not write shared state), then, after all of epoch
      [l]'s tasks return, [commit ~epoch:l ~tid r] in increasing [tid]
      order (master).  Raises [Invalid_argument] if [threads <= 0]. *)
end
