(* Flat fact-table backend: word-addressed bitsets over the application
   address space.

   The functional fact structures ([Interval_set], [Set.Make (Int)]) are
   the reference semantics; this module is the raw-speed twin.  A fact
   set is a run of 64-bit words starting at word [off] of the (infinite,
   zero-extended) address-indexed bit vector, so GEN/KILL meets and
   joins batch 64 addresses per [logand]/[logor] instead of walking an
   element-wise fold.  Canonical form makes structural equality semantic
   equality, which the differential battery leans on.

   Only non-negative addresses are representable: every producer
   (trace codec varints, the workload generators, the QA grid
   generators) already guarantees that, and constructors raise
   [Invalid_argument] rather than silently misfile a negative key. *)

let arena_labels = [ ("backend", "flat") ]
let m_arena_bytes = Obs.Counter.make ~labels:arena_labels "state.arena.bytes"
let m_arena_grows = Obs.Counter.make ~labels:arena_labels "state.arena.grows"

(* Every fresh fact-set buffer is accounted to [state.arena.bytes] —
   Bitset operation results and Dense arenas alike — so a [--stats] run
   under [--state flat] shows the backend's cumulative allocation
   footprint.  [state.arena.grows] counts Dense capacity doublings.
   With no sink installed this is one boolean load per operation (not
   per word), preserving the null-sink discipline. *)
let count_bytes n = if Obs.enabled () then Obs.Counter.add m_arena_bytes n

module Bitset = struct
  (* [bits] holds words [off, off + length/8) of the bit vector;
     invariants: [Bytes.length bits] is a multiple of 8, and unless the
     set is empty the first and last words are nonzero (both ends
     trimmed, so equal sets are structurally equal).  The empty set is
     uniquely [{ off = 0; bits = "" }]. *)
  type t = { off : int; bits : Bytes.t }

  let empty = { off = 0; bits = Bytes.empty }
  let is_empty s = Bytes.length s.bits = 0
  let nwords s = Bytes.length s.bits lsr 3
  let wget b i = Bytes.get_int64_ne b (i lsl 3)
  let wset b i v = Bytes.set_int64_ne b (i lsl 3) v

  let canon off bits =
    let n = Bytes.length bits lsr 3 in
    let lo = ref 0 in
    while !lo < n && wget bits !lo = 0L do
      incr lo
    done;
    if !lo = n then empty
    else begin
      let hi = ref (n - 1) in
      while wget bits !hi = 0L do
        decr hi
      done;
      if !lo = 0 && !hi = n - 1 then { off; bits }
      else
        {
          off = off + !lo;
          bits = Bytes.sub bits (!lo lsl 3) ((!hi - !lo + 1) lsl 3);
        }
    end

  (* Set bits [max lo w*64, min hi (w+1)*64) of each word [w] covered by
     [\[lo, hi)], into [bits] whose word 0 is absolute word [base]. *)
  let blit_range bits ~base lo hi =
    let w0 = lo asr 6 and w1 = (hi - 1) asr 6 in
    for w = w0 to w1 do
      let from = if w = w0 then lo land 63 else 0 in
      let upto = if w = w1 then ((hi - 1) land 63) + 1 else 64 in
      let count = upto - from in
      let mask =
        if count = 64 then -1L
        else Int64.shift_left (Int64.sub (Int64.shift_left 1L count) 1L) from
      in
      let j = w - base in
      wset bits j (Int64.logor (wget bits j) mask)
    done

  let range lo hi =
    if hi <= lo then empty
    else if lo < 0 then invalid_arg "Fact_arena.Bitset.range: negative"
    else begin
      let w0 = lo asr 6 and w1 = (hi - 1) asr 6 in
      count_bytes ((w1 - w0 + 1) lsl 3);
      let bits = Bytes.make ((w1 - w0 + 1) lsl 3) '\000' in
      blit_range bits ~base:w0 lo hi;
      { off = w0; bits }
    end

  let singleton x = range x (x + 1)

  let mem x s =
    if x < 0 then false
    else
      let j = (x asr 6) - s.off in
      j >= 0
      && j < nwords s
      && Int64.logand (wget s.bits j) (Int64.shift_left 1L (x land 63)) <> 0L

  (* The word loops below index each operand's words directly instead of
     going through a bounds-checking word-of-the-infinite-vector helper:
     a function returning [int64] boxes its result on every call, and
     these loops are the flat backend's whole reason to exist.  Directly
     nested [Bytes.get_int64_ne]/[Int64] primitives stay unboxed
     (pinned by the Gc.minor_words regression test in test_obs.ml for
     the Dense ops). *)
  let union a b =
    if is_empty a then b
    else if is_empty b then a
    else begin
      let lo = min a.off b.off in
      let hi = max (a.off + nwords a) (b.off + nwords b) in
      count_bytes ((hi - lo) lsl 3);
      let bits = Bytes.make ((hi - lo) lsl 3) '\000' in
      Bytes.blit a.bits 0 bits ((a.off - lo) lsl 3) (Bytes.length a.bits);
      let db = b.off - lo in
      for i = 0 to nwords b - 1 do
        wset bits (db + i)
          (Int64.logor (wget bits (db + i)) (wget b.bits i))
      done;
      (* Both ends inherit a nonzero word from one operand: canonical. *)
      { off = lo; bits }
    end

  let inter a b =
    if is_empty a || is_empty b then empty
    else begin
      let lo = max a.off b.off in
      let hi = min (a.off + nwords a) (b.off + nwords b) in
      if hi <= lo then empty
      else begin
        count_bytes ((hi - lo) lsl 3);
        let bits = Bytes.create ((hi - lo) lsl 3) in
        let da = lo - a.off and db = lo - b.off in
        for i = 0 to hi - lo - 1 do
          wset bits i
            (Int64.logand (wget a.bits (da + i)) (wget b.bits (db + i)))
        done;
        canon lo bits
      end
    end

  let diff a b =
    if is_empty a then empty
    else if
      is_empty b || b.off + nwords b <= a.off || b.off >= a.off + nwords a
    then a
    else begin
      let n = nwords a in
      count_bytes (n lsl 3);
      let bits = Bytes.sub a.bits 0 (n lsl 3) in
      let lo = max a.off b.off and hi = min (a.off + n) (b.off + nwords b) in
      for w = lo to hi - 1 do
        let i = w - a.off and j = w - b.off in
        wset bits i
          (Int64.logand (wget bits i) (Int64.lognot (wget b.bits j)))
      done;
      canon a.off bits
    end

  let equal a b = a.off = b.off && Bytes.equal a.bits b.bits

  let disjoint a b =
    let lo = max a.off b.off in
    let hi = min (a.off + nwords a) (b.off + nwords b) in
    let ok = ref true in
    let i = ref lo in
    while !ok && !i < hi do
      if
        Int64.logand (wget a.bits (!i - a.off)) (wget b.bits (!i - b.off))
        <> 0L
      then ok := false;
      incr i
    done;
    !ok

  let subset a b =
    (* Canonical end words are nonzero, so an [a] range poking out of
       [b]'s range cannot be covered. *)
    if is_empty a then true
    else if a.off < b.off || a.off + nwords a > b.off + nwords b then false
    else begin
      let d = a.off - b.off in
      let ok = ref true in
      let i = ref 0 in
      let n = nwords a in
      while !ok && !i < n do
        if
          Int64.logand (wget a.bits !i) (Int64.lognot (wget b.bits (d + !i)))
          <> 0L
        then ok := false;
        incr i
      done;
      !ok
    end

  (* SWAR popcount: this compiler predates a stdlib [Int64.popcount]. *)
  let popcount64 x =
    let open Int64 in
    let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
    let x =
      add
        (logand x 0x3333333333333333L)
        (logand (shift_right_logical x 2) 0x3333333333333333L)
    in
    let x = logand (add x (shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
    to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

  let cardinal s =
    let n = ref 0 in
    for i = 0 to nwords s - 1 do
      n := !n + popcount64 (wget s.bits i)
    done;
    !n

  let iter f s =
    for i = 0 to nwords s - 1 do
      let w = wget s.bits i in
      if w <> 0L then
        let base = (s.off + i) lsl 6 in
        for b = 0 to 63 do
          if Int64.logand w (Int64.shift_left 1L b) <> 0L then f (base lor b)
        done
    done

  let elements s =
    let acc = ref [] in
    iter (fun x -> acc := x :: !acc) s;
    List.rev !acc

  let fold f s init =
    let acc = ref init in
    iter (fun x -> acc := f x !acc) s;
    !acc

  let choose s =
    if is_empty s then None
    else begin
      let w = wget s.bits 0 in
      let b = ref 0 in
      while Int64.logand w (Int64.shift_left 1L !b) = 0L do
        incr b
      done;
      Some ((s.off lsl 6) lor !b)
    end

  let add x s = union s (singleton x)

  let of_list xs =
    match xs with
    | [] -> empty
    | x0 :: _ ->
      let lo = ref x0 and hi = ref x0 in
      List.iter
        (fun x ->
          if x < 0 then invalid_arg "Fact_arena.Bitset.of_list: negative";
          if x < !lo then lo := x;
          if x > !hi then hi := x)
        xs;
      let w0 = !lo asr 6 and w1 = !hi asr 6 in
      count_bytes ((w1 - w0 + 1) lsl 3);
      let bits = Bytes.make ((w1 - w0 + 1) lsl 3) '\000' in
      List.iter
        (fun x ->
          let j = (x asr 6) - w0 in
          wset bits j
            (Int64.logor (wget bits j) (Int64.shift_left 1L (x land 63))))
        xs;
      (* First and last words each hold an extremal element: canonical. *)
      { off = w0; bits }

  (* n-ary union in one pass: bounds scan, one buffer, one OR sweep per
     operand.  The extremal offsets come from nonzero end words of their
     operands, so the result is canonical without a trim pass. *)
  let union_all = function
    | [] -> empty
    | [ s ] -> s
    | ss ->
      let lo = ref max_int and hi = ref min_int in
      List.iter
        (fun s ->
          if not (is_empty s) then begin
            if s.off < !lo then lo := s.off;
            let e = s.off + nwords s in
            if e > !hi then hi := e
          end)
        ss;
      if !hi <= !lo then empty
      else begin
        count_bytes ((!hi - !lo) lsl 3);
        let bits = Bytes.make ((!hi - !lo) lsl 3) '\000' in
        List.iter
          (fun s ->
            let n = nwords s in
            for i = 0 to n - 1 do
              let j = s.off - !lo + i in
              wset bits j (Int64.logor (wget bits j) (wget s.bits i))
            done)
          ss;
        { off = !lo; bits }
      end

  let to_intervals s =
    let runs = ref [] in
    let start = ref (-1) and prev = ref (-2) in
    iter
      (fun x ->
        if x = !prev + 1 then prev := x
        else begin
          if !start >= 0 then runs := (!start, !prev + 1) :: !runs;
          start := x;
          prev := x
        end)
      s;
    if !start >= 0 then runs := (!start, !prev + 1) :: !runs;
    Interval_set.of_intervals (List.rev !runs)

  let of_intervals is =
    match Interval_set.intervals is with
    | [] -> empty
    | ivs ->
      let lo = fst (List.hd ivs) in
      let hi = List.fold_left (fun _ (_, h) -> h) 0 ivs in
      if lo < 0 then invalid_arg "Fact_arena.Bitset.of_intervals: negative";
      let w0 = lo asr 6 and w1 = (hi - 1) asr 6 in
      count_bytes ((w1 - w0 + 1) lsl 3);
      let bits = Bytes.make ((w1 - w0 + 1) lsl 3) '\000' in
      List.iter (fun (l, h) -> blit_range bits ~base:w0 l h) ivs;
      { off = w0; bits }

  let pp ppf s = Interval_set.pp ppf (to_intervals s)
end

(* Mutable scratch arena: the construction side of the flat backend.
   Bit vector rooted at address 0 with geometric growth, in-place
   (allocation-free once grown) meet/join against immutable bitsets, and
   [freeze] to cut a canonical {!Bitset.t}.  Not thread-safe: each pool
   worker builds into its own arena. *)
module Dense = struct
  type t = { mutable bits : Bytes.t }

  let alloc_words n =
    count_bytes (n lsl 3);
    Bytes.make (n lsl 3) '\000'

  let create ?(capacity_bits = 512) () =
    let words = max 1 ((capacity_bits + 63) asr 6) in
    { bits = alloc_words words }

  let capacity_bits t = Bytes.length t.bits lsl 3
  let words t = Bytes.length t.bits lsr 3

  let grow t needed_words =
    let old = words t in
    if needed_words > old then begin
      let n = max needed_words (2 * old) in
      let bits = alloc_words n in
      if Obs.enabled () then Obs.Counter.incr m_arena_grows;
      Bytes.blit t.bits 0 bits 0 (Bytes.length t.bits);
      t.bits <- bits
    end

  let set t x =
    if x < 0 then invalid_arg "Fact_arena.Dense.set: negative";
    let w = x asr 6 in
    grow t (w + 1);
    Bytes.set_int64_ne t.bits (w lsl 3)
      (Int64.logor
         (Bytes.get_int64_ne t.bits (w lsl 3))
         (Int64.shift_left 1L (x land 63)))

  let unset t x =
    if x >= 0 then
      let w = x asr 6 in
      if w < words t then
        Bytes.set_int64_ne t.bits (w lsl 3)
          (Int64.logand
             (Bytes.get_int64_ne t.bits (w lsl 3))
             (Int64.lognot (Int64.shift_left 1L (x land 63))))

  let get t x =
    x >= 0
    &&
    let w = x asr 6 in
    w < words t
    && Int64.logand
         (Bytes.get_int64_ne t.bits (w lsl 3))
         (Int64.shift_left 1L (x land 63))
       <> 0L

  let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

  let union_into t (b : Bitset.t) =
    let nb = Bytes.length b.Bitset.bits lsr 3 in
    if nb > 0 then begin
      grow t (b.Bitset.off + nb);
      for i = 0 to nb - 1 do
        let j = b.Bitset.off + i in
        Bytes.set_int64_ne t.bits (j lsl 3)
          (Int64.logor
             (Bytes.get_int64_ne t.bits (j lsl 3))
             (Bytes.get_int64_ne b.Bitset.bits (i lsl 3)))
      done
    end

  let inter_into t (b : Bitset.t) =
    (* Zero outside [b]'s word range, mask inside it — split so the word
       loop reads [b.bits] directly (see the unboxing note in Bitset). *)
    let nb = Bytes.length b.Bitset.bits lsr 3 in
    let n = words t in
    let lo = min n (max 0 b.Bitset.off) in
    let hi = min n (b.Bitset.off + nb) in
    if hi <= lo then Bytes.fill t.bits 0 (n lsl 3) '\000'
    else begin
      Bytes.fill t.bits 0 (lo lsl 3) '\000';
      for j = lo to hi - 1 do
        let i = j - b.Bitset.off in
        Bytes.set_int64_ne t.bits (j lsl 3)
          (Int64.logand
             (Bytes.get_int64_ne t.bits (j lsl 3))
             (Bytes.get_int64_ne b.Bitset.bits (i lsl 3)))
      done;
      if hi < n then Bytes.fill t.bits (hi lsl 3) ((n - hi) lsl 3) '\000'
    end

  let diff_into t (b : Bitset.t) =
    let nb = Bytes.length b.Bitset.bits lsr 3 in
    let lo = max 0 b.Bitset.off and hi = min (words t) (b.Bitset.off + nb) in
    for j = lo to hi - 1 do
      let i = j - b.Bitset.off in
      Bytes.set_int64_ne t.bits (j lsl 3)
        (Int64.logand
           (Bytes.get_int64_ne t.bits (j lsl 3))
           (Int64.lognot (Bytes.get_int64_ne b.Bitset.bits (i lsl 3))))
    done

  let freeze t =
    let n = words t in
    let lo = ref 0 in
    while !lo < n && Bytes.get_int64_ne t.bits (!lo lsl 3) = 0L do
      incr lo
    done;
    if !lo = n then Bitset.empty
    else begin
      let hi = ref (n - 1) in
      while Bytes.get_int64_ne t.bits (!hi lsl 3) = 0L do
        decr hi
      done;
      {
        Bitset.off = !lo;
        bits = Bytes.sub t.bits (!lo lsl 3) ((!hi - !lo + 1) lsl 3);
      }
    end
end

(* The fact-set operations a Must/May lifeguard body is generic over:
   {!Dataflow.SET} plus the address-range constructors and queries the
   transfer functions and reports need.  [Interval_facts] is the
   functional reference, {!Bitset} the flat backend; reports always
   round-trip through {!Interval_set.t} so fingerprints are
   representation-independent. *)
module type FACTS = sig
  include Dataflow.SET

  val range : int -> int -> t
  val singleton : int -> t
  val mem : int -> t -> bool
  val disjoint : t -> t -> bool
  val subset : t -> t -> bool
  val cardinal : t -> int

  val of_list : int list -> t
  (** Batch constructor: equals folding {!singleton} unions, but the flat
      backend builds it in a single buffer — hot loops that collect
      per-instruction addresses should accumulate a list and build once. *)

  val union_all : t list -> t
  (** n-ary {!union}; the flat backend allocates the result once instead
      of once per operand. *)

  val to_intervals : t -> Interval_set.t
  val of_intervals : Interval_set.t -> t
end

module Interval_facts : FACTS with type t = Interval_set.t = struct
  include Interval_set

  let of_list xs =
    List.fold_left (fun acc x -> union acc (singleton x)) empty xs

  let union_all = List.fold_left union empty
  let to_intervals = Fun.id
  let of_intervals = Fun.id
end

module Bitset_facts : FACTS with type t = Bitset.t = Bitset
