module Loc_map = Map.Make (Int)
module ES = Expr.Set

(* Semantics: the set contains [pos] plus, for every binding [loc -> ex] in
   [wild], every expression mentioning [loc] except those in [ex].
   Canonical form (established by [normalize]):
   - ex(loc) contains exactly the non-member expressions mentioning [loc]
     that are tracked at all (every expr in an except set mentions its key);
   - pos contains only members mentioning no wildcard key. *)
type t = { pos : ES.t; wild : ES.t Loc_map.t }

let empty = { pos = ES.empty; wild = Loc_map.empty }
let is_empty t = ES.is_empty t.pos && Loc_map.is_empty t.wild
let mem_raw e t =
  ES.mem e t.pos
  || List.exists
       (fun loc ->
         match Loc_map.find_opt loc t.wild with
         | None -> false
         | Some ex -> not (ES.mem e ex))
       (Expr.operands e)

let normalize t =
  (* Step 1: drop pos members from except sets. *)
  let ex1 = Loc_map.map (fun ex -> ES.diff ex t.pos) t.wild in
  (* Step 2: drop exclusions redundant because another key covers them. *)
  let covered_elsewhere loc e =
    List.exists
      (fun loc' ->
        loc' <> loc
        &&
        match Loc_map.find_opt loc' ex1 with
        | None -> false
        | Some ex' -> not (ES.mem e ex'))
      (Expr.operands e)
  in
  let ex2 =
    Loc_map.mapi (fun loc ex -> ES.filter (fun e -> not (covered_elsewhere loc e)) ex) ex1
  in
  (* Step 3: pos members mentioning a key are now wildcard-covered. *)
  let pos =
    ES.filter
      (fun e -> not (List.exists (fun l -> Loc_map.mem l ex2) (Expr.operands e)))
      t.pos
  in
  { pos; wild = ex2 }

let singleton e = { pos = ES.singleton e; wild = Loc_map.empty }
let of_list es = { pos = ES.of_list es; wild = Loc_map.empty }
let killing loc = { pos = ES.empty; wild = Loc_map.singleton loc ES.empty }
let mem = mem_raw

let union a b =
  normalize
    {
      pos = ES.union a.pos b.pos;
      wild =
        Loc_map.merge
          (fun _loc exa exb ->
            match (exa, exb) with
            | None, x | x, None -> x
            | Some ea, Some eb -> Some (ES.inter ea eb))
          a.wild b.wild;
    }

let all_excepts t =
  Loc_map.fold (fun _ ex acc -> ES.union ex acc) t.wild ES.empty

let inter a b =
  let candidates =
    ES.union (ES.union a.pos b.pos) (ES.union (all_excepts a) (all_excepts b))
  in
  let cross =
    Loc_map.fold
      (fun la _ acc ->
        Loc_map.fold
          (fun lb _ acc -> if la <> lb then ES.add (Expr.binop la lb) acc else acc)
          b.wild acc)
      a.wild ES.empty
  in
  let pos =
    ES.filter
      (fun e -> mem_raw e a && mem_raw e b)
      (ES.union candidates cross)
  in
  let wild =
    Loc_map.merge
      (fun _loc exa exb ->
        match (exa, exb) with
        | Some ea, Some eb -> Some (ES.union ea eb)
        | None, _ | _, None -> None)
      a.wild b.wild
  in
  normalize { pos; wild }

let diff a b =
  let pos = ES.filter (fun e -> not (mem_raw e b)) a.pos in
  let pos, wild =
    Loc_map.fold
      (fun la exa (pos, wild) ->
        match Loc_map.find_opt la b.wild with
        | Some exb ->
          (* Wildcard minus wildcard on the same key: only b's exceptions
             can survive, and only if nothing else in b covers them. *)
          let survivors =
            ES.filter
              (fun e -> not (mem_raw e b))
              (ES.diff exb exa)
          in
          (ES.union pos survivors, wild)
        | None ->
          (* Key survives; grow the exceptions by everything b covers that
             mentions la: b's explicit members, and for each b-wildcard on
             lb the canonical expression over {la, lb}. *)
          let from_pos = ES.filter (Expr.mentions la) b.pos in
          let from_wild =
            Loc_map.fold
              (fun lb exb acc ->
                if lb = la then acc
                else
                  let e = Expr.binop la lb in
                  if ES.mem e exb then acc else ES.add e acc)
              b.wild ES.empty
          in
          (pos, Loc_map.add la (ES.union exa (ES.union from_pos from_wild)) wild))
      a.wild (pos, Loc_map.empty)
  in
  normalize { pos; wild }

let equal a b = ES.equal a.pos b.pos && Loc_map.equal ES.equal a.wild b.wild
let explicit t = t.pos
let wild_locations t = Loc_map.bindings t.wild |> List.map fst

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  let sep () =
    if not !first then Format.fprintf ppf "; ";
    first := false
  in
  ES.iter
    (fun e ->
      sep ();
      Expr.pp ppf e)
    t.pos;
  Loc_map.iter
    (fun loc ex ->
      sep ();
      if ES.is_empty ex then Format.fprintf ppf "*%a" Tracing.Addr.pp loc
      else
        Format.fprintf ppf "*%a\\{%a}" Tracing.Addr.pp loc
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
             Expr.pp)
          (ES.elements ex))
    t.wild;
  Format.fprintf ppf "}"

let union_all = List.fold_left union empty
