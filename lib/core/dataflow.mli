(** The generic butterfly dataflow framework (Sections 4.3 and 5).

    A forward dataflow problem is given by per-instruction GEN/KILL sets and
    a {e flavour}:

    - [`May] ("reaching definitions"-like): a fact reaches a point if it
      reaches along {e some} valid ordering.  Facts generated anywhere in a
      wing block are visible to the body (GEN-SIDE-OUT); killing is local
      (KILL-SIDE-OUT is conservatively useless).
    - [`Must] ("reaching expressions"-like): a fact reaches a point only if
      it reaches along {e all} valid orderings.  Kills anywhere in a wing
      are visible (KILL-SIDE-OUT); generation is local.

    {!Make} implements the two-pass algorithm: pass 1 summarizes each block
    (local GEN/KILL plus side-out); the wing summaries are met into a
    side-in; pass 2 recomputes per-instruction state with wing information
    and drives the lifeguard's checks; finally epoch-level GEN{_l}/KILL{_l}
    (Section 5.1.1 / 5.2) update the Strongly Ordered State:
    SOS{_l} = GEN{_l-2} ∪ (SOS{_l-1} − KILL{_l-2}).

    The fact-set representation is supplied by the problem; it must be
    closed under the boolean operations the equations perform (see
    {!Def_set} for the wildcard algebra reaching definitions needs, and
    {!Interval_set} for AddrCheck's ranges). *)

module type SET = sig
  type t

  val empty : t
  val is_empty : t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val union_all : t list -> t
  (** n-ary union: functional sets fold {!union}; the flat backend
      allocates the result once instead of once per operand. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type PROBLEM = sig
  val name : string

  module Set : SET

  val flavour : [ `May | `Must ]
  val gen : Instr_id.t -> Tracing.Instr.t -> Set.t
  val kill : Instr_id.t -> Tracing.Instr.t -> Set.t
end

module Make (P : PROBLEM) : sig
  module Set : SET with type t = P.Set.t

  type block_summary = {
    block : Block.t;
    gen : Set.t;  (** Net block GEN{_l,t}: facts surviving to the block end. *)
    kill : Set.t;  (** Net block KILL{_l,t}. *)
    gen_union : Set.t;  (** ∪{_i} GEN{_l,t,i} — GEN-SIDE-OUT for [`May]. *)
    kill_union : Set.t;  (** ∪{_i} KILL{_l,t,i} — KILL-SIDE-OUT for [`Must]. *)
  }

  val summarize : Block.t -> block_summary
  (** Pass 1 over one block. *)

  val side_out : block_summary -> Set.t
  (** What this block exposes to bodies it wings, by flavour. *)

  val side_in : wings:block_summary list -> Set.t
  (** The meet (union) of the wings' side-outs. *)

  type epoch_summary = { gen_l : Set.t; kill_l : Set.t }

  val epoch_summary :
    prev:block_summary array option -> cur:block_summary array -> epoch_summary
  (** GEN{_l} and KILL{_l} from the epoch's block summaries ([cur]) and the
      previous epoch's ([prev], [None] for epoch 0). *)

  val sos_next : sos_prev:Set.t -> two_back:epoch_summary -> Set.t
  (** SOS{_l} = GEN{_l-2} ∪ (SOS{_l-1} − KILL{_l-2}). *)

  val lsos :
    sos:Set.t -> head:block_summary -> two_back_row:block_summary array ->
    tid:Tracing.Tid.t -> Set.t
  (** LSOS{_l,t} per Section 5.1.2 ([`May], including the resurrection
      clause for facts the head killed but epoch l-2 in another thread may
      re-generate) or Section 5.2.1 ([`Must]). *)

  type instr_view = {
    id : Instr_id.t;
    instr : Tracing.Instr.t;
    lsos_before : Set.t;  (** LSOS{_l,t,i}: local state, pass-1 view. *)
    in_before : Set.t;  (** IN{_l,t,i}: with wing side-in, pass-2 view. *)
    side_in : Set.t;
    sos : Set.t;  (** SOS{_l}. *)
  }

  val iter_block :
    side_in:Set.t ->
    lsos0:Set.t ->
    sos:Set.t ->
    (instr_view -> unit) ->
    Block.t ->
    unit
  (** The pass-2 inner loop over one block, shared by every driver (the
      batch {!run}, the pooled/wavefront scheduler, the fork-join
      driver): threads the running LSOS through GEN/KILL and emits each
      instruction's view.  [in_before] is recomputed only when the
      running LSOS actually changes — GEN/KILL-free instructions reuse
      the previous meet, so word-at-a-time backends pay O(set width) per
      state change, not per instruction. *)

  type result = {
    epochs : Epochs.t;
    sos : Set.t array;
        (** [sos.(l)] = SOS{_l}, for [0 <= l <= num_epochs + 1]; the last
            entry summarizes the entire execution. *)
    block_summaries : block_summary array array;
    epoch_summaries : epoch_summary array;
  }

  val run : ?on_instr:(instr_view -> unit) -> Epochs.t -> result
  (** Executes both passes over every epoch in sliding-window order,
      invoking [on_instr] during each block's second pass. *)

  val block_in : result -> epoch:int -> tid:Tracing.Tid.t -> Set.t
  (** IN{_l,t}: facts possibly (or certainly, for [`Must]) reaching the
      block start. *)

  val block_out : result -> epoch:int -> tid:Tracing.Tid.t -> Set.t
end
