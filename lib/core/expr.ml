type t = Unop of Tracing.Addr.t | Binop of Tracing.Addr.t * Tracing.Addr.t

let unop a = Unop a
let binop a b = if a = b then Unop a else if a < b then Binop (a, b) else Binop (b, a)

let of_instr = function
  | Tracing.Instr.Assign_unop (x, a) -> if x = a then None else Some (unop a)
  | Tracing.Instr.Assign_binop (x, a, b) ->
    if x = a || x = b then None else Some (binop a b)
  | Tracing.Instr.Assign_const _ | Read _ | Malloc _ | Free _ | Taint_source _
  | Untaint _ | Jump_via _ | Syscall_arg _ | Nop | Lock _ | Unlock _ | Fork _
  | Join _ ->
    None

let operands = function Unop a -> [ a ] | Binop (a, b) -> [ a; b ]
let mentions x = function Unop a -> a = x | Binop (a, b) -> a = x || b = x
let equal a b = a = b
let compare = Stdlib.compare

let pp ppf = function
  | Unop a -> Format.fprintf ppf "op(%a)" Tracing.Addr.pp a
  | Binop (a, b) ->
    Format.fprintf ppf "(%a op %a)" Tracing.Addr.pp a Tracing.Addr.pp b

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
