(** Sets of dynamic expressions, closed under the butterfly equations.

    A write to location [x] kills {e every} expression mentioning [x] — an
    infinite set online.  Because an expression mentions at most two
    locations, sets of the form "finitely many expressions, plus all
    expressions mentioning certain locations minus finitely many
    exceptions" are closed under union, intersection and difference (the
    intersection of two per-location wildcards is the single canonical
    binary expression over the two locations).  The representation is kept
    in a canonical normal form, so {!equal} is semantic. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Expr.t -> t
val of_list : Expr.t list -> t

val killing : Tracing.Addr.t -> t
(** All expressions mentioning the location: the KILL of a write to it. *)

val mem : Expr.t -> t -> bool
val union : t -> t -> t

val union_all : t list -> t
(** n-ary {!union} (folds pairwise). *)

val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool

val explicit : t -> Expr.Set.t
(** The finite (non-wildcard) part. *)

val wild_locations : t -> Tracing.Addr.t list
(** Locations with a wildcard portion, sorted. *)

val pp : Format.formatter -> t -> unit
