(* Canonical form: sorted, disjoint, non-adjacent, non-empty [lo, hi). *)
type t = (int * int) list

let empty = []
let is_empty t = t = []
let range lo hi = if hi <= lo then [] else [ (lo, hi) ]
let singleton x = range x (x + 1)

(* Merge a sorted-by-lo list of possibly overlapping/adjacent intervals. *)
let normalize l =
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest when hi <= lo -> go acc rest
    | (lo, hi) :: rest -> (
      match acc with
      | (plo, phi) :: acc' when lo <= phi ->
        go ((plo, max phi hi) :: acc') rest
      | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] (List.sort compare l)

let of_intervals l = normalize l

let union a b =
  (* Linear merge of two canonical lists; [acc] holds the result reversed,
     with the invariant that its head has the greatest [lo] seen so far. *)
  let rec push acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
      match acc with
      | (plo, phi) :: acc' when lo <= phi -> push ((plo, max phi hi) :: acc') rest
      | _ -> push ((lo, hi) :: acc) rest)
  in
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> push acc rest
    | (alo, _) :: _, (blo, _) :: _ ->
      let ((lo, hi), a, b) =
        if alo <= blo then (List.hd a, List.tl a, b)
        else (List.hd b, a, List.tl b)
      in
      (match acc with
      | (plo, phi) :: acc' when lo <= phi ->
        go ((plo, max phi hi) :: acc') a b
      | _ -> go ((lo, hi) :: acc) a b)
  in
  go [] a b

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | (alo, ahi) :: a', (blo, bhi) :: b' ->
    let lo = max alo blo and hi = min ahi bhi in
    let rest = if ahi < bhi then inter a' b else inter a b' in
    if lo < hi then (lo, hi) :: rest else rest

let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | _, [] -> a
  | (alo, ahi) :: a', (blo, bhi) :: b' ->
    if bhi <= alo then diff a b'
    else if ahi <= blo then (alo, ahi) :: diff a' b
    else
      (* Overlap. *)
      let left = if alo < blo then [ (alo, blo) ] else [] in
      if ahi <= bhi then left @ diff a' b
      else left @ diff ((bhi, ahi) :: a') b'

let add_range lo hi t = union (range lo hi) t
let remove_range lo hi t = diff t (range lo hi)

let rec mem x = function
  | [] -> false
  | (lo, hi) :: rest -> if x < lo then false else x < hi || mem x rest

let equal a b = a = b
let subset a b = diff a b = []
let disjoint a b = inter a b = []
let cardinal t = List.fold_left (fun n (lo, hi) -> n + (hi - lo)) 0 t
let interval_count = List.length
let intervals t = t
let choose = function [] -> None | (lo, _) :: _ -> Some lo
let fold_intervals f t acc = List.fold_left (fun acc (lo, hi) -> f lo hi acc) acc t

let iter f t =
  List.iter
    (fun (lo, hi) ->
      for x = lo to hi - 1 do
        f x
      done)
    t

let elements t =
  List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun k -> lo + k)) t

let pp ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun k (lo, hi) ->
      if k > 0 then Format.fprintf ppf ", ";
      if hi = lo + 1 then Format.fprintf ppf "%d" lo
      else Format.fprintf ppf "%d..%d" lo (hi - 1))
    t;
  Format.fprintf ppf "}"

let union_all = List.fold_left union empty
