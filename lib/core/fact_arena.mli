(** Flat-state fact tables: word-addressed bitsets and mutable arenas.

    The lifeguards' functional fact structures ({!Interval_set},
    [Set.Make (Int)]) are the reference semantics; this module provides
    the raw-speed twin selected by [--state flat].  A {!Bitset.t} covers
    a contiguous run of 64-bit words of the (conceptually infinite,
    zero-extended) address-indexed bit vector, so per-block GEN/KILL
    meets and joins process 64 addresses per machine word instead of one
    element per fold step.  {!Dense} is the mutable construction arena:
    geometric growth, in-place (allocation-free once grown) set algebra,
    and [freeze] to cut an immutable canonical bitset.

    Only non-negative addresses are representable; constructors raise
    [Invalid_argument] on negative input rather than misfiling it.

    Telemetry: [state.arena.bytes] (bytes of arena backing store
    allocated) and [state.arena.grows] (geometric regrow events), both
    counters under [backend=flat]. *)

(** Immutable canonical bitset.  Canonical form — zero words trimmed
    from both ends, the empty set uniquely represented — makes
    structural {!Bitset.equal} coincide with semantic set equality,
    which the flat/functional differential battery relies on.

    The API mirrors the slices of {!Interval_set} and [Set.Make (Int)]
    that the lifeguards use, so one functor body serves both
    representations. *)
module Bitset : sig
  type t = private { off : int; bits : Bytes.t }
  (** Words [off, off + Bytes.length bits / 8) of the bit vector.
      Exposed read-only for {!Dense} and the white-box canonicity
      tests; never construct directly. *)

  val empty : t
  val is_empty : t -> bool

  val range : int -> int -> t
  (** [range lo hi] is [{lo, ..., hi - 1}]; empty if [hi <= lo]. *)

  val singleton : int -> t
  val add : int -> t -> t
  val mem : int -> t -> bool

  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val equal : t -> t -> bool
  (** Structural, and by canonicity semantic, equality. *)

  val disjoint : t -> t -> bool
  val subset : t -> t -> bool

  val cardinal : t -> int
  val iter : (int -> unit) -> t -> unit
  (** Ascending order. *)

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val elements : t -> int list
  (** Sorted ascending, like [Set.Make(Int).elements]. *)

  val choose : t -> int option
  (** The smallest element, if any. *)

  val of_list : int list -> t
  val union_all : t list -> t
  val to_intervals : t -> Interval_set.t
  val of_intervals : Interval_set.t -> t
  val pp : Format.formatter -> t -> unit
end

(** Mutable scratch arena rooted at address 0.  Not thread-safe: each
    pool worker builds into its own arena. *)
module Dense : sig
  type t

  val create : ?capacity_bits:int -> unit -> t
  (** Default capacity 512 bits.  Allocation is counted in
      [state.arena.bytes]. *)

  val capacity_bits : t -> int

  val set : t -> int -> unit
  (** Grows geometrically when the address exceeds capacity (counted in
      [state.arena.grows]).  Raises [Invalid_argument] on a negative
      address. *)

  val unset : t -> int -> unit
  val get : t -> int -> bool

  val clear : t -> unit
  (** Zero every bit, keeping capacity (reuse-after-clear). *)

  val union_into : t -> Bitset.t -> unit
  (** In-place [t := t ∪ b]; grows only if [b] exceeds capacity. *)

  val inter_into : t -> Bitset.t -> unit
  (** In-place [t := t ∩ b]; never grows, never allocates. *)

  val diff_into : t -> Bitset.t -> unit
  (** In-place [t := t − b]; never grows, never allocates. *)

  val freeze : t -> Bitset.t
  (** Canonical immutable copy of the current contents. *)
end

(** The fact-set operations a lifeguard body is generic over:
    {!Dataflow.SET} plus the range constructors and queries its transfer
    functions and reports need.  Reports convert through
    {!Interval_set.t} ([to_intervals]) so rendered fingerprints are
    representation-independent. *)
module type FACTS = sig
  include Dataflow.SET

  val range : int -> int -> t
  val singleton : int -> t
  val mem : int -> t -> bool
  val disjoint : t -> t -> bool
  val subset : t -> t -> bool
  val cardinal : t -> int

  val of_list : int list -> t
  (** Equals folding {!singleton} unions; the flat backend builds the
      result in one buffer, so hot loops that collect per-instruction
      addresses should accumulate a list and build once. *)

  val union_all : t list -> t
  (** n-ary {!union}; the flat backend allocates the result once instead
      of once per operand. *)

  val to_intervals : t -> Interval_set.t
  val of_intervals : Interval_set.t -> t
end

module Interval_facts : FACTS with type t = Interval_set.t
(** The functional reference backend. *)

module Bitset_facts : FACTS with type t = Bitset.t
(** The flat backend. *)
