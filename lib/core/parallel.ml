module Make (P : Dataflow.PROBLEM) = struct
  module D = Dataflow.Make (P)

  let last_domains = ref 1

  let checks_in_parallel () = !last_domains

  let run ?domains ?(map : (D.instr_view -> 'a option) option) epochs =
    let threads = Epochs.threads epochs in
    let num_l = Epochs.num_epochs epochs in
    let requested = match domains with Some d -> d | None -> threads in
    Domain_pool.with_pool ~name:("parallel." ^ P.name) ~domains:requested
      (fun pool ->
        last_domains := Domain_pool.size pool;
        let tids = Array.init threads (fun tid -> tid) in
        (* Pass 1: per-thread columns of block summaries, on the pool. *)
        let columns =
          Domain_pool.map_array pool
            (fun tid ->
              Array.init num_l (fun l ->
                  D.summarize (Epochs.block epochs ~epoch:l ~tid)))
            tids
        in
        let block_summaries =
          Array.init num_l (fun l ->
              Array.init threads (fun tid -> columns.(tid).(l)))
        in
        (* Master: epoch summaries and the strongly ordered state. *)
        let epoch_summaries =
          Array.init num_l (fun l ->
              D.epoch_summary
                ~prev:(if l = 0 then None else Some block_summaries.(l - 1))
                ~cur:block_summaries.(l))
        in
        let sos = Array.make (num_l + 2) D.Set.empty in
        for l = 2 to num_l + 1 do
          sos.(l) <-
            D.sos_next ~sos_prev:sos.(l - 1) ~two_back:epoch_summaries.(l - 2)
        done;
        let row l =
          if l < 0 || l >= num_l then
            Array.init threads (fun tid -> D.summarize (Block.empty ~epoch:l ~tid))
          else block_summaries.(l)
        in
        (* Pass 2: per-thread tasks over read-only summaries and SOS. *)
        let collected =
          match map with
          | None -> []
          | Some f ->
            let per_thread =
              Domain_pool.map_array pool
                (fun tid ->
                  let acc = ref [] in
                  for l = 0 to num_l - 1 do
                    let body = Epochs.block epochs ~epoch:l ~tid in
                    let wings =
                      Epochs.wings epochs ~epoch:l ~tid
                      |> List.map (fun (b : Block.t) -> (row b.epoch).(b.tid))
                    in
                    let side_in = D.side_in ~wings in
                    let head = (row (l - 1)).(tid) in
                    let lsos0 =
                      D.lsos ~sos:sos.(l) ~head ~two_back_row:(row (l - 2)) ~tid
                    in
                    D.iter_block ~side_in ~lsos0 ~sos:sos.(l)
                      (fun view ->
                        match f view with
                        | Some x -> acc := (l, x) :: !acc
                        | None -> ())
                      body
                  done;
                  List.rev !acc)
                tids
            in
            (* Deterministic merge: epoch-major, thread-minor (each per-thread
               list is already in epoch-then-instruction order). *)
            let out = ref [] in
            for l = 0 to num_l - 1 do
              Array.iter
                (List.iter (fun (l', x) -> if l' = l then out := x :: !out))
                per_thread
            done;
            List.rev !out
        in
        ({ D.epochs; sos; block_summaries; epoch_summaries }, collected))
end
