(** Parallel execution of a butterfly analysis on a {!Domain_pool}.

    The deployment model of the paper runs one lifeguard thread per
    application thread, synchronizing at pass boundaries.  This module
    realizes that shape in-process on a bounded pool: pass 1 (block
    summarization) fans one task per application thread out to the pool,
    the master computes epoch summaries and the SOS (it is the designated
    single writer of Section 5), and pass 2 fans out per-thread tasks
    again — each consuming only read-only summaries, so no locking is
    needed, exactly the paper's "objects are not modified after being
    released for reading" discipline.

    Unlike the first version of this driver, a 64-thread trace no longer
    spawns 64 domains: tasks multiplex onto at most
    {!Domain_pool.max_domains} workers.

    Results are deterministic and identical to {!Dataflow.Make}'s batch
    driver (property-tested). *)

module Make (P : Dataflow.PROBLEM) : sig
  module D : module type of Dataflow.Make (P)

  val run :
    ?domains:int ->
    ?map:(D.instr_view -> 'a option) ->
    Epochs.t ->
    D.result * 'a list
  (** [run ~map epochs] executes both passes on a fresh domain pool sized
      [min domains (Domain_pool.max_domains ())] ([domains] defaults to
      the trace's thread count).  [map] is applied to every second-pass
      instruction view {e inside} the worker tasks; the [Some] results are
      returned in deterministic (epoch-major, thread-minor,
      instruction-order) order.  Omitting [map] collects nothing. *)

  val checks_in_parallel : unit -> int
  (** Number of worker domains the last [run] used: at most
      {!Domain_pool.max_domains}, regardless of the trace's thread
      count. *)
end
