module Loc_map = Map.Make (Int)
module S = Definition.Site_set

(* Per-location portion: finite or cofinite set of definition sites. *)
type portion = Pos of S.t | All_except of S.t

type t = portion Loc_map.t

let empty = Loc_map.empty

let norm_portion = function
  | Pos s when S.is_empty s -> None
  | p -> Some p

let is_empty t = Loc_map.is_empty t

let singleton (d : Definition.t) =
  Loc_map.singleton d.loc (Pos (S.singleton d.site))

let of_list ds =
  List.fold_left
    (fun m (d : Definition.t) ->
      Loc_map.update d.loc
        (function
          | None -> Some (Pos (S.singleton d.site))
          | Some (Pos s) -> Some (Pos (S.add d.site s))
          | Some (All_except e) -> Some (All_except (S.remove d.site e)))
        m)
    empty ds

let all_of_loc loc = Loc_map.singleton loc (All_except S.empty)

let all_of_loc_except loc site =
  Loc_map.singleton loc (All_except (S.singleton site))

let mem (d : Definition.t) t =
  match Loc_map.find_opt d.loc t with
  | None -> false
  | Some (Pos s) -> S.mem d.site s
  | Some (All_except e) -> not (S.mem d.site e)

let defines_loc loc t = Loc_map.mem loc t

let merge_portions f a b =
  Loc_map.merge
    (fun _loc pa pb ->
      let pa = Option.value pa ~default:(Pos S.empty) in
      let pb = Option.value pb ~default:(Pos S.empty) in
      norm_portion (f pa pb))
    a b

let union =
  merge_portions (fun pa pb ->
      match (pa, pb) with
      | Pos a, Pos b -> Pos (S.union a b)
      | Pos a, All_except e | All_except e, Pos a -> All_except (S.diff e a)
      | All_except e1, All_except e2 -> All_except (S.inter e1 e2))

let inter =
  merge_portions (fun pa pb ->
      match (pa, pb) with
      | Pos a, Pos b -> Pos (S.inter a b)
      | Pos a, All_except e | All_except e, Pos a -> Pos (S.diff a e)
      | All_except e1, All_except e2 -> All_except (S.union e1 e2))

let diff =
  merge_portions (fun pa pb ->
      match (pa, pb) with
      | Pos a, Pos b -> Pos (S.diff a b)
      | Pos a, All_except e -> Pos (S.inter a e)
      | All_except e, Pos b -> All_except (S.union e b)
      | All_except e1, All_except e2 -> Pos (S.diff e2 e1))

let equal a b =
  Loc_map.equal
    (fun pa pb ->
      match (pa, pb) with
      | Pos s1, Pos s2 -> S.equal s1 s2
      | All_except e1, All_except e2 -> S.equal e1 e2
      | Pos _, All_except _ | All_except _, Pos _ -> false)
    a b

let sites_of_loc loc t =
  match Loc_map.find_opt loc t with
  | None -> `None
  | Some (Pos s) -> `Sites s
  | Some (All_except e) -> `All_except e

let locations t = Loc_map.bindings t |> List.map fst

let pp_portion ppf = function
  | Pos s ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Instr_id.pp)
      (S.elements s)
  | All_except e when S.is_empty e -> Format.fprintf ppf "*"
  | All_except e ->
    Format.fprintf ppf "*\\{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Instr_id.pp)
      (S.elements e)

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  Loc_map.iter
    (fun loc p ->
      if not !first then Format.fprintf ppf "; ";
      first := false;
      Format.fprintf ppf "%a:%a" Tracing.Addr.pp loc pp_portion p)
    t;
  Format.fprintf ppf "}"

let union_all = List.fold_left union empty
