(** Sets of dynamic definitions, closed under the butterfly equations.

    Killing a definition in reaching definitions means killing {e every}
    definition of a location — a set we cannot enumerate online.  Because a
    definition belongs to exactly one location, the per-location portion of
    a set is either a finite set of sites ([Pos]) or a cofinite one
    ([All_except]), and that two-valued algebra is closed under union,
    intersection and difference.  This gives an exact, finite representation
    for every set the framework computes (GEN, KILL, SOS, LSOS, IN, OUT and
    the spanning-epoch combinations of Section 5.1.1). *)

type t

val empty : t
val is_empty : t -> bool
(** [All_except] entries are treated as non-empty: the universe of
    definitions of a location is unbounded in an online analysis. *)

val singleton : Definition.t -> t
val of_list : Definition.t list -> t

val all_of_loc : Tracing.Addr.t -> t
(** Every definition of a location: what a write kills. *)

val all_of_loc_except : Tracing.Addr.t -> Instr_id.t -> t
(** Every definition of the location except the given site: the precise
    KILL of a write at that site. *)

val mem : Definition.t -> t -> bool

val defines_loc : Tracing.Addr.t -> t -> bool
(** Does the set contain at least one definition of the location?
    ([All_except] counts.) *)

val union : t -> t -> t

val union_all : t list -> t
(** n-ary {!union} (folds pairwise). *)

val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool

val sites_of_loc :
  Tracing.Addr.t -> t -> [ `None | `Sites of Definition.Site_set.t
                         | `All_except of Definition.Site_set.t ]

val locations : t -> Tracing.Addr.t list
(** Locations with a non-empty portion, sorted. *)

val pp : Format.formatter -> t -> unit
