type task = Stop | Run of (unit -> unit)

type worker = {
  queue : task Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

type t = {
  pool_name : string;
  capacity : int;
  workers : worker array;
  busy : int Atomic.t;
  mutable handles : unit Domain.t array;
  mutable rr : int; (* round-robin submission cursor *)
  mutable live : bool;
  g_size : Obs.Gauge.t;
  g_util : Obs.Gauge.t;
  h_depth : Obs.Histogram.t;
  h_wait : Obs.Histogram.t;
  sp_task : Obs.Span.t;
}

let max_domains () = max 1 (Domain.recommended_domain_count ())

let name t = t.pool_name
let size t = Array.length t.workers

(* Pop one task, signalling the submitter that queue space freed up. *)
let take w =
  Mutex.lock w.lock;
  while Queue.is_empty w.queue do
    Condition.wait w.not_empty w.lock
  done;
  let task = Queue.pop w.queue in
  Condition.signal w.not_full;
  Mutex.unlock w.lock;
  task

let worker_loop t w =
  let rec go () =
    match take w with
    | Stop -> ()
    | Run f ->
      Atomic.incr t.busy;
      if Obs.enabled () then
        Obs.Gauge.set t.g_util
          (float_of_int (Atomic.get t.busy) /. float_of_int (size t));
      Obs.Span.time t.sp_task f;
      (* [f] is exception-free: [async] wraps the user thunk. *)
      Atomic.decr t.busy;
      go ()
  in
  go ()

let create ?(name = "pool") ?(queue_capacity = 64) ~domains () =
  if domains <= 0 then invalid_arg "Domain_pool.create: domains must be > 0";
  if queue_capacity <= 0 then
    invalid_arg "Domain_pool.create: queue_capacity must be > 0";
  let n = max 1 (min domains (max_domains ())) in
  let labels = [ ("pool", name) ] in
  let t =
    {
      pool_name = name;
      capacity = queue_capacity;
      workers =
        Array.init n (fun _ ->
            {
              queue = Queue.create ();
              lock = Mutex.create ();
              not_empty = Condition.create ();
              not_full = Condition.create ();
            });
      busy = Atomic.make 0;
      handles = [||];
      rr = 0;
      live = true;
      g_size = Obs.Gauge.make ~labels "pool.size";
      g_util = Obs.Gauge.make ~labels "pool.utilization";
      h_depth = Obs.Histogram.make ~labels "pool.queue_depth";
      h_wait = Obs.Histogram.make ~labels "pool.submit_wait.ns";
      sp_task = Obs.Span.make ~labels "pool.task.ns";
    }
  in
  Obs.Gauge.set t.g_size (float_of_int n);
  t.handles <-
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) t.workers;
  t

(* Enqueue on one worker, blocking while its queue is at capacity. *)
let enqueue t w task =
  Mutex.lock w.lock;
  Obs.Histogram.observe t.h_depth (float_of_int (Queue.length w.queue));
  if Queue.length w.queue >= t.capacity then begin
    let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
    while Queue.length w.queue >= t.capacity do
      Condition.wait w.not_full w.lock
    done;
    if Obs.enabled () then
      Obs.Histogram.observe t.h_wait
        (Int64.to_float (Int64.sub (Obs.now_ns ()) t0))
  end;
  Queue.push task w.queue;
  Condition.signal w.not_empty;
  Mutex.unlock w.lock

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  f_lock : Mutex.t;
  f_done : Condition.t;
  mutable state : 'a state;
}

let async t f =
  if not t.live then invalid_arg "Domain_pool.async: pool is shut down";
  let fut = { f_lock = Mutex.create (); f_done = Condition.create (); state = Pending } in
  let run () =
    let outcome = match f () with v -> Done v | exception e -> Failed e in
    Mutex.lock fut.f_lock;
    fut.state <- outcome;
    Condition.broadcast fut.f_done;
    Mutex.unlock fut.f_lock
  in
  let w = t.workers.(t.rr) in
  t.rr <- (t.rr + 1) mod Array.length t.workers;
  enqueue t w (Run run);
  fut

let poll fut =
  Mutex.lock fut.f_lock;
  let done_ = fut.state <> Pending in
  Mutex.unlock fut.f_lock;
  done_

let await fut =
  Mutex.lock fut.f_lock;
  while fut.state = Pending do
    Condition.wait fut.f_done fut.f_lock
  done;
  let outcome = fut.state in
  Mutex.unlock fut.f_lock;
  match outcome with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

let map_array t f arr =
  match Array.length arr with
  | 0 -> [||]
  | n ->
    (* Submit in index order — round-robin assignment stays deterministic. *)
    let futs = Array.make n (async t (fun () -> f arr.(0))) in
    for i = 1 to n - 1 do
      futs.(i) <- async t (fun () -> f arr.(i))
    done;
    Array.map await futs

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter (fun w -> enqueue t w Stop) t.workers;
    Array.iter Domain.join t.handles;
    Obs.Gauge.set t.g_util 0.0
  end

let with_pool ?name ?queue_capacity ~domains f =
  let t = create ?name ?queue_capacity ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
