(** A reusable fixed-size pool of worker domains.

    OCaml 5 domains are heavyweight (each owns a minor heap and a share of
    the GC): spawning one per task — or one per application thread, as the
    first parallel driver did — oversubscribes the machine as soon as the
    trace has more threads than the host has cores.  This pool spawns a
    fixed set of workers, capped at {!max_domains} (the runtime's
    recommended domain count), and multiplexes any number of tasks onto
    them.

    Scheduling discipline:

    - {b Bounded per-worker queues.}  Each worker owns a FIFO of at most
      [queue_capacity] tasks.  Tasks are assigned round-robin, so the
      assignment (and therefore the work each worker performs) is
      deterministic for a deterministic submission sequence.
    - {b Backpressure on submit.}  When the target worker's queue is full,
      {!async} blocks the submitter until the worker drains — a producer
      can never race unboundedly ahead of the pool.
    - {b Deterministic result collection.}  {!map_array} returns results
      positionally: element [i] of the output is [f arr.(i)] no matter
      which worker ran it or in what order tasks completed.

    Telemetry (under the installed {!Obs} sink, labelled [pool=<name>]):
    [pool.size] and [pool.utilization] gauges, [pool.queue_depth] and
    [pool.submit_wait.ns] histograms (queue occupancy at submit, time the
    submitter spent blocked on backpressure), and a [pool.task.ns] span
    per executed task.

    Concurrency contract: tasks run on worker domains and must not call
    {!async}, {!await} or {!map_array} on the pool that runs them (a task
    waiting for a task queued behind it would deadlock the worker).  All
    submissions must come from a single coordinating domain at a time —
    exactly the single-writer discipline the butterfly drivers already
    follow. *)

type t

val max_domains : unit -> int
(** Upper bound on pool size: [max 1 (Domain.recommended_domain_count ())]. *)

val create : ?name:string -> ?queue_capacity:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [max 1 (min domains (max_domains ()))]
    worker domains.  [name] labels the pool's telemetry (default ["pool"]);
    [queue_capacity] bounds each worker's task FIFO (default [64]).
    Raises [Invalid_argument] if [domains <= 0] or [queue_capacity <= 0]. *)

val size : t -> int
(** Number of worker domains actually spawned. *)

val name : t -> string

type 'a future
(** The pending result of an {!async} task. *)

val async : t -> (unit -> 'a) -> 'a future
(** Enqueue a task on the next worker (round-robin).  Blocks while that
    worker's queue is full (backpressure).  Raises [Invalid_argument] on a
    pool that has been {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task has run; returns its result or re-raises the
    exception it terminated with.  Idempotent. *)

val poll : 'a future -> bool
(** [true] once the task has finished (successfully or not): {!await}
    will return without blocking.  Never blocks; safe from the
    submitting domain at any time. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array p f arr] runs [f] over [arr] on the pool and returns the
    results in input order: deterministic collection regardless of task
    completion order.  Exceptions re-raise (first index wins). *)

val shutdown : t -> unit
(** Drain every queue, stop and join all workers.  Idempotent.  Every
    pool must be shut down before process exit — parked domains would
    otherwise keep the runtime alive. *)

val with_pool :
  ?name:string -> ?queue_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool, shutting it down
    afterwards (also on exceptions). *)
