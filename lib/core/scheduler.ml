module Make (P : Dataflow.PROBLEM) = struct
  module D = Dataflow.Make (P)

  (* Telemetry: same metric names as the batch driver, distinguished by
     [driver=streaming]; window accounting is streaming-only. *)
  let obs_labels = [ ("problem", P.name); ("driver", "streaming") ]
  let m_epochs = Obs.Counter.make ~labels:obs_labels "butterfly.epochs_processed"
  let m_instrs = Obs.Counter.make ~labels:obs_labels "butterfly.pass2_instrs"
  let m_blocks = Obs.Counter.make ~labels:obs_labels "scheduler.blocks_closed"
  let g_window = Obs.Gauge.make ~labels:obs_labels "scheduler.window_occupancy"
  let g_window_hwm =
    Obs.Gauge.make ~labels:obs_labels "scheduler.window_occupancy_hwm"
  let sp_pass1 = Obs.Span.make ~labels:obs_labels "butterfly.pass1_summarize.ns"
  let sp_meet = Obs.Span.make ~labels:obs_labels "butterfly.side_in_meet.ns"
  let sp_lsos = Obs.Span.make ~labels:obs_labels "butterfly.lsos.ns"
  let sp_pass2 = Obs.Span.make ~labels:obs_labels "butterfly.pass2_block.ns"

  (* Wavefront mode keeps several epochs' pass-2 tasks in flight at once;
     its pipeline accounting carries its own driver label. *)
  let wf_labels = [ ("problem", P.name); ("driver", "wavefront") ]
  let g_wf_ready =
    Obs.Gauge.make ~labels:wf_labels "scheduler.wavefront.ready_queue"
  let sp_wf_stall =
    Obs.Span.make ~labels:wf_labels "scheduler.wavefront.stall_ns"
  let m_wf_overlap =
    Obs.Counter.make ~labels:wf_labels "scheduler.wavefront.overlapped_epochs"

  type t = {
    threads : int;
    pool : Domain_pool.t option;
    on_instr : D.instr_view -> unit;
    buffers : Tracing.Instr.t list array; (* open block per thread, reversed *)
    completed : int array; (* closed blocks per thread *)
    summaries : (int, D.block_summary array) Hashtbl.t; (* epoch -> row *)
    pending : (int * int, D.block_summary Domain_pool.future) Hashtbl.t;
        (* pass-1 tasks in flight on the pool, keyed by (epoch, tid) *)
    blocks : (int, Block.t array) Hashtbl.t;
    epoch_sums : (int, D.epoch_summary) Hashtbl.t;
    sos_tbl : (int, D.Set.t) Hashtbl.t;
    mutable sos_filled : int; (* SOS_l known for l <= sos_filled *)
    mutable processed : int; (* epochs whose pass 2 has been launched *)
    mutable hwm : int;
    mutable finished : bool;
    (* Wavefront pipelining: pass-2 results still in flight on the pool,
       keyed by epoch, plus the delivery frontier.  In the sequential and
       plain pooled modes delivery is immediate, so [delivered] simply
       tracks [processed]. *)
    wavefront : bool;
    inflight_cap : int;
    p2_pending : (int, D.instr_view list Domain_pool.future array) Hashtbl.t;
    mutable delivered : int; (* epochs whose views reached [on_instr] *)
  }

  let create ?pool ?(wavefront = false) ~threads ~on_instr () =
    if threads <= 0 then invalid_arg "Scheduler.create: threads must be > 0";
    let wavefront = wavefront && pool <> None in
    if wavefront && Obs.enabled () then begin
      (* Materialize the pipeline metrics so clean runs still report them. *)
      Obs.Counter.add m_wf_overlap 0;
      Obs.Gauge.set g_wf_ready 0.0;
      Obs.Span.time sp_wf_stall ignore
    end;
    let t =
      {
        threads;
        pool;
        on_instr;
        buffers = Array.make threads [];
        completed = Array.make threads 0;
        summaries = Hashtbl.create 16;
        pending = Hashtbl.create 16;
        blocks = Hashtbl.create 16;
        epoch_sums = Hashtbl.create 16;
        sos_tbl = Hashtbl.create 16;
        sos_filled = 1;
        processed = 0;
        hwm = 0;
        finished = false;
        wavefront;
        inflight_cap =
          (match pool with
          | Some p when wavefront -> (2 * Domain_pool.size p) + 2
          | _ -> 1);
        p2_pending = Hashtbl.create 8;
        delivered = 0;
      }
    in
    Hashtbl.replace t.sos_tbl 0 D.Set.empty;
    Hashtbl.replace t.sos_tbl 1 D.Set.empty;
    t

  let empty_summary_row t epoch =
    Array.init t.threads (fun tid -> D.summarize (Block.empty ~epoch ~tid))

  (* Commit any in-flight pass-1 results for this row.  Master-side only:
     rows handed to pool workers are always resolved first. *)
  let resolve_row t epoch row =
    if Hashtbl.length t.pending > 0 then
      for tid = 0 to t.threads - 1 do
        match Hashtbl.find_opt t.pending (epoch, tid) with
        | Some fut ->
          row.(tid) <- Domain_pool.await fut;
          Hashtbl.remove t.pending (epoch, tid)
        | None -> ()
      done;
    row

  let summary_row t epoch =
    if epoch < 0 then empty_summary_row t epoch
    else
      match Hashtbl.find_opt t.summaries epoch with
      | Some row -> resolve_row t epoch row
      | None -> empty_summary_row t epoch

  (* GEN_l/KILL_l for epoch [e], cached; requires summary rows e-1 and e
     (empty rows are fine at the boundaries). *)
  let epoch_sum t e =
    match Hashtbl.find_opt t.epoch_sums e with
    | Some s -> s
    | None ->
      let s =
        D.epoch_summary
          ~prev:(if e = 0 then None else Some (summary_row t (e - 1)))
          ~cur:(summary_row t e)
      in
      Hashtbl.replace t.epoch_sums e s;
      s

  let sos_at t l =
    while t.sos_filled < l do
      let s = t.sos_filled + 1 in
      let prev = Hashtbl.find t.sos_tbl (s - 1) in
      Hashtbl.replace t.sos_tbl s
        (D.sos_next ~sos_prev:prev ~two_back:(epoch_sum t (s - 2)));
      t.sos_filled <- s
    done;
    Hashtbl.find t.sos_tbl l

  (* One thread's share of pass 2 over epoch [p].  [rows.(i)] is the
     resolved summary row of epoch [p - 2 + i]; with a pool this runs on a
     worker, so it touches only the read-only arguments (never [t]'s
     tables) and reports views through [emit]. *)
  let pass2_thread t ~sos ~rows ~body ~tid ~emit =
    let wings = ref [] in
    for i = 3 downto 1 do
      (* epochs p+1 downto p-1 *)
      let row : D.block_summary array = rows.(i) in
      for t' = t.threads - 1 downto 0 do
        if t' <> tid then wings := row.(t') :: !wings
      done
    done;
    let side_in = Obs.Span.time sp_meet (fun () -> D.side_in ~wings:!wings) in
    let head = rows.(1).(tid) in
    let lsos0 =
      Obs.Span.time sp_lsos (fun () ->
          D.lsos ~sos ~head ~two_back_row:rows.(0) ~tid)
    in
    Obs.Counter.add m_instrs (Block.length body);
    Obs.Span.time sp_pass2 (fun () ->
        D.iter_block ~side_in ~lsos0 ~sos emit body)

  (* ---- Wavefront delivery.  Buffered pass-2 views are handed to
     [on_instr] strictly epoch-major (the futures array is per-thread, so
     thread-minor order is positional), which keeps the observable
     sequence byte-identical to the sequential path no matter how the
     pool interleaved the work. *)

  let await_views fut =
    if Domain_pool.poll fut then Domain_pool.await fut
    else Obs.Span.time sp_wf_stall (fun () -> Domain_pool.await fut)

  let deliver_epoch t p futs =
    let views = Array.map await_views futs in
    Obs.Scope.with_scope ~epoch:p ~phase:"deliver" (fun () ->
        Array.iter (fun vs -> List.iter t.on_instr vs) views);
    Hashtbl.remove t.p2_pending p;
    t.delivered <- p + 1;
    if Obs.enabled () then
      Obs.Gauge.set g_wf_ready (float_of_int (Hashtbl.length t.p2_pending))

  (* Deliver every epoch whose tasks have all finished (a cheap poll —
     the master never blocks for it), and force delivery of the oldest
     epochs while the in-flight depth exceeds the cap, bounding the
     memory held by undelivered views. *)
  let drain t =
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt t.p2_pending t.delivered with
      | None -> continue := false
      | Some futs ->
        if
          Hashtbl.length t.p2_pending > t.inflight_cap
          || Array.for_all Domain_pool.poll futs
        then deliver_epoch t t.delivered futs
        else continue := false
    done

  (* Quiesce all transient parallelism: resolve in-flight pass-1
     summaries into their rows and flush every undelivered pass-2 epoch.
     Afterwards [delivered = processed] and the pool holds no work for
     this scheduler. *)
  let quiesce t =
    Hashtbl.iter (fun epoch row -> ignore (resolve_row t epoch row)) t.summaries;
    while Hashtbl.mem t.p2_pending t.delivered do
      deliver_epoch t t.delivered (Hashtbl.find t.p2_pending t.delivered)
    done

  (* Second pass over epoch [p]: every thread's epoch-(p+1) summaries are
     available (or the run has finished and missing rows are empty). *)
  let process_epoch t p =
    let sos = sos_at t p in
    let body_row =
      match Hashtbl.find_opt t.blocks p with
      | Some row -> row
      | None -> Array.init t.threads (fun tid -> Block.empty ~epoch:p ~tid)
    in
    (* Resolve the four rows of the butterfly up front: pool workers must
       never await or touch the scheduler's tables. *)
    let rows = Array.init 4 (fun i -> summary_row t (p - 2 + i)) in
    (match t.pool with
    | None ->
      for tid = 0 to t.threads - 1 do
        Obs.Scope.with_scope ~epoch:p ~tid ~phase:"pass2" (fun () ->
            pass2_thread t ~sos ~rows ~body:body_row.(tid) ~tid ~emit:t.on_instr)
      done;
      t.delivered <- p + 1
    | Some pool when t.wavefront ->
      (* No barrier: launch this epoch's per-thread tasks and move on.
         The closures capture only the resolved [rows], [sos] and body
         blocks (all frozen before submission), never [t]'s tables, so
         several epochs may be in flight at once — pass 1 of epoch p+2
         overlaps pass 2 of epoch p.  [drain] below delivers completed
         epochs in order. *)
      let futs =
        Array.init t.threads (fun tid ->
            Domain_pool.async pool (fun () ->
                Obs.Scope.with_scope ~epoch:p ~tid ~phase:"pass2" (fun () ->
                    let acc = ref [] in
                    pass2_thread t ~sos ~rows ~body:body_row.(tid) ~tid
                      ~emit:(fun v -> acc := v :: !acc);
                    List.rev !acc)))
      in
      Hashtbl.replace t.p2_pending p futs;
      if Obs.enabled () then begin
        if Hashtbl.length t.p2_pending > 1 then Obs.Counter.incr m_wf_overlap;
        Obs.Gauge.set g_wf_ready (float_of_int (Hashtbl.length t.p2_pending))
      end;
      drain t
    | Some pool ->
      (* Fan the per-thread work out, then deliver the buffered views in
         thread order: the observable sequence is byte-identical to the
         sequential path (epoch-major, thread-minor, instruction order). *)
      let views =
        Domain_pool.map_array pool
          (fun tid ->
            Obs.Scope.with_scope ~epoch:p ~tid ~phase:"pass2" (fun () ->
                let acc = ref [] in
                pass2_thread t ~sos ~rows ~body:body_row.(tid) ~tid
                  ~emit:(fun v -> acc := v :: !acc);
                List.rev !acc))
          (Array.init t.threads (fun tid -> tid))
      in
      Obs.Scope.with_scope ~epoch:p ~phase:"deliver" (fun () ->
          Array.iter (fun vs -> List.iter t.on_instr vs) views);
      t.delivered <- p + 1);
    (* Shrink the window: the body blocks are done; summary row p-2 has
       served its last purpose (epoch_sum p-1 is cached by sos_at).
       Wavefront tasks still in flight hold their own references to the
       captured rows, so dropping the table entries is safe. *)
    ignore (epoch_sum t (max 0 (p - 1)));
    Hashtbl.remove t.blocks p;
    Hashtbl.remove t.summaries (p - 2);
    t.processed <- p + 1;
    if Obs.enabled () then begin
      Obs.Counter.incr m_epochs;
      Obs.Gauge.set g_window (float_of_int (Hashtbl.length t.summaries))
    end

  let ready t = Array.fold_left min max_int t.completed

  let advance t =
    while ready t >= t.processed + 2 do
      process_epoch t t.processed
    done

  let close_block t tid =
    let epoch = t.completed.(tid) in
    let instrs = Array.of_list (List.rev t.buffers.(tid)) in
    t.buffers.(tid) <- [];
    let block = Block.make ~epoch ~tid instrs in
    let srow =
      match Hashtbl.find_opt t.summaries epoch with
      | Some row -> row
      | None ->
        let row = empty_summary_row t epoch in
        Hashtbl.replace t.summaries epoch row;
        row
    in
    (match t.pool with
    | None ->
      srow.(tid) <-
        Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
            Obs.Span.time sp_pass1 (fun () -> D.summarize block))
    | Some pool ->
      (* Pass 1 is per-block-local: it can run on a worker the moment the
         heartbeat closes the block, while the master keeps ingesting. *)
      Hashtbl.replace t.pending (epoch, tid)
        (Domain_pool.async pool (fun () ->
             Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                 Obs.Span.time sp_pass1 (fun () -> D.summarize block)))));
    let brow =
      match Hashtbl.find_opt t.blocks epoch with
      | Some row -> row
      | None ->
        let row = Array.init t.threads (fun tid -> Block.empty ~epoch ~tid) in
        Hashtbl.replace t.blocks epoch row;
        row
    in
    brow.(tid) <- block;
    t.completed.(tid) <- epoch + 1;
    t.hwm <- max t.hwm (Hashtbl.length t.summaries);
    (* Gated so the null-sink hot path never boxes the float. *)
    if Obs.enabled () then begin
      Obs.Counter.incr m_blocks;
      let occ = float_of_int (Hashtbl.length t.summaries) in
      Obs.Gauge.set g_window occ;
      Obs.Gauge.set_max g_window_hwm occ
    end

  let feed t tid ev =
    if t.finished then invalid_arg "Scheduler.feed: already finished";
    if tid < 0 || tid >= t.threads then invalid_arg "Scheduler.feed: bad tid";
    match ev with
    | Tracing.Event.Instr i -> t.buffers.(tid) <- i :: t.buffers.(tid)
    | Tracing.Event.Heartbeat ->
      close_block t tid;
      advance t

  let feed_trace t tid trace =
    Array.iter (fun ev -> feed t tid ev) (Tracing.Trace.events trace)

  let finish t =
    if not t.finished then (
      t.finished <- true;
      (* Close trailing partial blocks and pad every thread to a common
         epoch count, mirroring Epochs.of_program's padding. *)
      for tid = 0 to t.threads - 1 do
        close_block t tid
      done;
      let target = Array.fold_left max 0 t.completed in
      for tid = 0 to t.threads - 1 do
        while t.completed.(tid) < target do
          close_block t tid
        done
      done;
      advance t;
      (* Drain: remaining epochs' tails are empty. *)
      while t.processed < target do
        process_epoch t t.processed
      done;
      (* Flush any wavefront epochs still in flight: after [finish] every
         view has reached [on_instr], in every mode. *)
      quiesce t)

  let sos t = sos_at t (t.processed + 1)

  let sos_history t =
    Array.init (t.processed + 2) (fun l -> sos_at t l)

  let epochs_completed t = t.processed
  let epochs_delivered t = t.delivered
  let max_resident_epochs t = t.hwm

  (* ---------------- Checkpointing ----------------

     A scheduler is durable state plus transient plumbing.  The durable
     part is exactly the bounded sliding window: open buffers, closed-block
     counts, the resident summary/block/epoch-summary rows, the SOS levels
     computed so far and the cursor counters.  The transient part (pool,
     in-flight pass-1 futures, the [on_instr] sink) is re-supplied on
     restore — after quiescing, the pending table is empty by
     construction, so it never needs representing. *)

  type set_codec = {
    put_set : Tracing.Binio.W.t -> D.Set.t -> unit;
    get_set : Tracing.Binio.R.t -> D.Set.t;
  }

  let sorted_entries tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let encode_state ~set t =
    (* Resolve every in-flight pass-1 future and deliver every in-flight
       pass-2 epoch: workers' results become master-side state, so the
       snapshot is self-contained and cut at a sealed-epoch frontier. *)
    quiesce t;
    let module W = Tracing.Binio.W in
    let w = W.create () in
    let put_instrs w instrs = W.array w Tracing.Trace_codec.put_instr instrs in
    let put_summary w (s : D.block_summary) =
      put_instrs w s.D.block.Block.instrs;
      set.put_set w s.D.gen;
      set.put_set w s.D.kill;
      set.put_set w s.D.gen_union;
      set.put_set w s.D.kill_union
    in
    W.varint w t.threads;
    Array.iter (fun b -> W.list w Tracing.Trace_codec.put_instr b) t.buffers;
    Array.iter (fun c -> W.varint w c) t.completed;
    W.list w
      (fun w (epoch, row) ->
        W.varint w epoch;
        W.array w put_summary row)
      (sorted_entries t.summaries);
    W.list w
      (fun w (epoch, row) ->
        W.varint w epoch;
        W.array w (fun w (b : Block.t) -> put_instrs w b.Block.instrs) row)
      (sorted_entries t.blocks);
    W.list w
      (fun w (epoch, (s : D.epoch_summary)) ->
        W.varint w epoch;
        set.put_set w s.D.gen_l;
        set.put_set w s.D.kill_l)
      (sorted_entries t.epoch_sums);
    W.list w
      (fun w (l, s) ->
        W.varint w l;
        set.put_set w s)
      (sorted_entries t.sos_tbl);
    W.varint w t.sos_filled;
    W.varint w t.processed;
    W.varint w t.hwm;
    W.bool w t.finished;
    W.contents w

  let decode_state ~set ?pool ?(wavefront = false) ~on_instr s =
    let module R = Tracing.Binio.R in
    let r = R.of_string s in
    let get_instrs r = R.array r Tracing.Trace_codec.read_instr in
    let threads = R.varint r in
    if threads <= 0 then raise (R.Corrupt "scheduler state: bad thread count");
    let buffers =
      Array.init threads (fun _ -> R.list r Tracing.Trace_codec.read_instr)
    in
    let completed = Array.init threads (fun _ -> R.varint r) in
    let tbl_of entries =
      let tbl = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries;
      tbl
    in
    let summaries =
      tbl_of
        (R.list r (fun r ->
             let epoch = R.varint r in
             let row =
               R.array r (fun r ->
                   let instrs = get_instrs r in
                   let gen = set.get_set r in
                   let kill = set.get_set r in
                   let gen_union = set.get_set r in
                   let kill_union = set.get_set r in
                   (instrs, gen, kill, gen_union, kill_union))
             in
             if Array.length row <> threads then
               raise (R.Corrupt "scheduler state: ragged summary row");
             ( epoch,
               Array.mapi
                 (fun tid (instrs, gen, kill, gen_union, kill_union) ->
                   {
                     D.block = Block.make ~epoch ~tid instrs;
                     gen;
                     kill;
                     gen_union;
                     kill_union;
                   })
                 row )))
    in
    let blocks =
      tbl_of
        (R.list r (fun r ->
             let epoch = R.varint r in
             let row = R.array r get_instrs in
             if Array.length row <> threads then
               raise (R.Corrupt "scheduler state: ragged block row");
             (epoch, Array.mapi (fun tid instrs -> Block.make ~epoch ~tid instrs) row)))
    in
    let epoch_sums =
      tbl_of
        (R.list r (fun r ->
             let epoch = R.varint r in
             let gen_l = set.get_set r in
             let kill_l = set.get_set r in
             (epoch, { D.gen_l; kill_l })))
    in
    let sos_tbl =
      tbl_of
        (R.list r (fun r ->
             let l = R.varint r in
             (l, set.get_set r)))
    in
    let sos_filled = R.varint r in
    let processed = R.varint r in
    let hwm = R.varint r in
    let finished = R.bool r in
    R.expect_end r;
    {
      threads;
      pool;
      on_instr;
      buffers;
      completed;
      summaries;
      pending = Hashtbl.create 16;
      blocks;
      epoch_sums;
      sos_tbl;
      sos_filled;
      processed;
      hwm;
      finished;
      (* Snapshots are cut quiesced: no pass-2 work was in flight, so the
         restored pipeline starts empty with [delivered = processed]. *)
      wavefront = wavefront && pool <> None;
      inflight_cap =
        (match pool with
        | Some p when wavefront -> (2 * Domain_pool.size p) + 2
        | _ -> 1);
      p2_pending = Hashtbl.create 8;
      delivered = processed;
    }

  let run_epochs ?pool ?wavefront ~on_instr epochs =
    let threads = Epochs.threads epochs in
    let num_l = Epochs.num_epochs epochs in
    let t = create ?pool ?wavefront ~threads ~on_instr () in
    for l = 0 to num_l - 1 do
      for tid = 0 to threads - 1 do
        let b = Epochs.block epochs ~epoch:l ~tid in
        Array.iter
          (fun i -> feed t tid (Tracing.Event.Instr i))
          b.Block.instrs;
        (* No heartbeat after the final epoch: [finish] closes it, keeping
           the epoch count equal to the grid's. *)
        if l < num_l - 1 then feed t tid Tracing.Event.Heartbeat
      done
    done;
    finish t;
    t
end

(* ------------------------------------------------------------------ *)

module Epochwise = struct
  (* Batch counterpart of the pooled streaming mode above, for analyses
     that do not fit [Dataflow.PROBLEM] (TaintCheck's transfer-function
     chase reads the whole window, not a meet-of-summaries).  The shape is
     the same: per-block tasks are pure, the master is the single writer
     of cross-block state, and the epoch barrier is what makes the
     serialization order (epoch-major / thread-minor) deterministic. *)

  let obs_labels = [ ("driver", "epochwise") ]
  let m_barriers = Obs.Counter.make ~labels:obs_labels "scheduler.epoch_barriers"
  let sp_fanout = Obs.Span.make ~labels:obs_labels "scheduler.epoch_fanout.ns"

  let map_grid ?pool ~num_epochs ~threads f =
    if num_epochs < 0 then invalid_arg "Epochwise.map_grid: negative num_epochs";
    if threads <= 0 then invalid_arg "Epochwise.map_grid: threads must be > 0";
    let f ~epoch ~tid =
      Obs.Scope.with_scope ~epoch ~tid (fun () -> f ~epoch ~tid)
    in
    match pool with
    | None ->
      Array.init num_epochs (fun epoch ->
          Array.init threads (fun tid -> f ~epoch ~tid))
    | Some pool ->
      (* One flat fan-out over the whole grid: every cell is independent,
         and [Domain_pool.map_array] keeps results positional. *)
      let flat =
        Domain_pool.map_array pool
          (fun k -> f ~epoch:(k / threads) ~tid:(k mod threads))
          (Array.init (num_epochs * threads) Fun.id)
      in
      Array.init num_epochs (fun epoch ->
          Array.init threads (fun tid -> flat.((epoch * threads) + tid)))

  let run ?pool ~num_epochs ~threads ~prepare ~task ~commit () =
    if threads <= 0 then invalid_arg "Epochwise.run: threads must be > 0";
    let task ~epoch ~tid =
      Obs.Scope.with_scope ~epoch ~tid (fun () -> task ~epoch ~tid)
    in
    for epoch = 0 to num_epochs - 1 do
      prepare epoch;
      match pool with
      | None ->
        for tid = 0 to threads - 1 do
          commit ~epoch ~tid (task ~epoch ~tid)
        done
      | Some pool ->
        let results =
          Obs.Span.time sp_fanout (fun () ->
              Domain_pool.map_array pool
                (fun tid -> task ~epoch ~tid)
                (Array.init threads Fun.id))
        in
        Obs.Counter.incr m_barriers;
        Array.iteri (fun tid r -> commit ~epoch ~tid r) results
    done
end

(* ------------------------------------------------------------------ *)

module Wavefront = struct
  (* Dependency-driven counterpart of [Epochwise]: instead of stalling
     the whole pool at every epoch boundary, the master dispatches each
     task the moment its butterfly dependencies (Lemma 5.2) are
     committed, and commits results in the canonical epoch-major /
     thread-minor order so reports stay byte-identical.

     The dependence structure of a two-pass butterfly analysis:

     - pass 1 of block (l, t) is block-local: always ready;
     - pass 2 of block (l, t) reads the pass-1 facts of its wings and
       head — epochs l-1 .. l+1 — plus the epoch-l cross-block input
       (SOS / LASTCHECK), which [prepare l] seals after every pass-2
       result of epoch l-1 has been committed.

     So the master keeps pass-1 dispatch running [lookahead] epochs
     ahead of the pass-2 cursor: while the pool chews on epoch e's
     pass-2 tasks, it is also summarizing epochs e+2 .. e+lookahead-1 —
     the pipelining the epoch barrier forbids. *)

  let obs_labels = [ ("driver", "wavefront") ]
  let g_ready =
    Obs.Gauge.make ~labels:obs_labels "scheduler.wavefront.ready_queue"
  let sp_stall = Obs.Span.make ~labels:obs_labels "scheduler.wavefront.stall_ns"
  let m_overlap =
    Obs.Counter.make ~labels:obs_labels "scheduler.wavefront.overlapped_epochs"
  let m_p1_pipelined =
    Obs.Counter.make ~labels:obs_labels
      "scheduler.wavefront.pipelined_pass1_blocks"

  type phase = Pass1 | Pass2

  type probe_event =
    | Dispatched of { phase : phase; epoch : int; tid : int }
    | Committed of { phase : phase; epoch : int; tid : int }

  (* A dispatched task: ran inline (no pool) or in flight on a worker. *)
  type 'a join = Now of 'a | Fut of 'a Domain_pool.future

  let run ?pool ?lookahead ?probe ~num_epochs ~threads ~pass1 ~commit1
      ~prepare ~pass2 ~commit2 () =
    if threads <= 0 then invalid_arg "Wavefront.run: threads must be > 0";
    if num_epochs < 0 then invalid_arg "Wavefront.run: negative num_epochs";
    let lookahead =
      match lookahead with
      | Some k ->
        (* Pass 2 of epoch e reads pass-1 facts up to epoch e+1 (the tail
           wing), so dispatch must run at least two epochs ahead. *)
        if k < 2 then invalid_arg "Wavefront.run: lookahead must be >= 2";
        k
      | None -> (
        match pool with
        | Some p -> 2 + (2 * Domain_pool.size p)
        | None -> 2)
    in
    let probe = match probe with Some f -> f | None -> fun _ -> () in
    if pool <> None && Obs.enabled () then begin
      (* Materialize the pipeline metrics so clean runs still report them. *)
      Obs.Counter.add m_overlap 0;
      Obs.Counter.add m_p1_pipelined 0;
      Obs.Gauge.set g_ready 0.0;
      Obs.Span.time sp_stall ignore
    end;
    (* Eta-expanded so [submit] generalizes: it is used at the pass-1 and
       pass-2 result types. *)
    let submit f =
      match pool with
      | None -> Now (f ())
      | Some p -> Fut (Domain_pool.async p f)
    in
    let joined j =
      match j with
      | Now v -> v
      | Fut fut ->
        if Domain_pool.poll fut then Domain_pool.await fut
        else Obs.Span.time sp_stall (fun () -> Domain_pool.await fut)
    in
    (* Pass-1 pipeline: [p1.(l * threads + t)] holds the dispatched but
       not yet committed summary of block (l, t).  Both cursors are
       exclusive epoch frontiers. *)
    let p1 = Array.make (max 1 (num_epochs * threads)) None in
    let p1_dispatched = ref 0 in
    let p1_committed = ref 0 in
    let dispatch_p1_upto e =
      let e = min e num_epochs in
      while !p1_dispatched < e do
        let epoch = !p1_dispatched in
        for tid = 0 to threads - 1 do
          probe (Dispatched { phase = Pass1; epoch; tid });
          if pool <> None && !p1_committed < epoch && Obs.enabled () then
            Obs.Counter.incr m_p1_pipelined;
          p1.((epoch * threads) + tid) <-
            Some
              (submit (fun () ->
                   Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                       pass1 ~epoch ~tid)))
        done;
        incr p1_dispatched;
        if pool <> None && Obs.enabled () then
          Obs.Gauge.set g_ready
            (float_of_int ((!p1_dispatched - !p1_committed) * threads))
      done
    in
    let commit_p1_upto e =
      let e = min e num_epochs in
      while !p1_committed < e do
        let epoch = !p1_committed in
        for tid = 0 to threads - 1 do
          let k = (epoch * threads) + tid in
          match p1.(k) with
          | None -> assert false
          | Some j ->
            let v = joined j in
            p1.(k) <- None;
            commit1 ~epoch ~tid v;
            probe (Committed { phase = Pass1; epoch; tid })
        done;
        incr p1_committed;
        if pool <> None && Obs.enabled () then
          Obs.Gauge.set g_ready
            (float_of_int ((!p1_dispatched - !p1_committed) * threads))
      done
    in
    for epoch = 0 to num_epochs - 1 do
      (* Readiness: before epoch e's pass 2 is dispatched, the pass-1
         facts of every wing/head dependency (epochs <= e+1) are
         committed, and [prepare e] has sealed the cross-block input
         (every pass-2 result of e-1 committed on the previous turn). *)
      dispatch_p1_upto (epoch + lookahead);
      commit_p1_upto (epoch + 2);
      if pool <> None && !p1_dispatched > epoch + 2 && Obs.enabled () then
        Obs.Counter.incr m_overlap;
      prepare epoch;
      let joins =
        Array.init threads (fun tid ->
            probe (Dispatched { phase = Pass2; epoch; tid });
            submit (fun () ->
                Obs.Scope.with_scope ~epoch ~tid ~phase:"pass2" (fun () ->
                    pass2 ~epoch ~tid)))
      in
      Array.iteri
        (fun tid j ->
          commit2 ~epoch ~tid (joined j);
          probe (Committed { phase = Pass2; epoch; tid }))
        joins
    done;
    commit_p1_upto num_epochs
end
