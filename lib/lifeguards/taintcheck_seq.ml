module AS = Set.Make (Int)

type error = { index : int; sink : Tracing.Addr.t }
type report = { errors : error list; final_tainted : Tracing.Addr.t list }

let check instrs =
  let tainted = ref AS.empty in
  let errors = ref [] in
  let taint x = tainted := AS.add x !tainted in
  let untaint x = tainted := AS.remove x !tainted in
  List.iteri
    (fun index (i : Tracing.Instr.t) ->
      match i with
      | Taint_source x -> taint x
      | Untaint x | Assign_const x -> untaint x
      | Assign_unop (x, a) -> if AS.mem a !tainted then taint x else untaint x
      | Assign_binop (x, a, b) ->
        if AS.mem a !tainted || AS.mem b !tainted then taint x else untaint x
      | Jump_via x | Syscall_arg x ->
        if AS.mem x !tainted then errors := { index; sink = x } :: !errors
      | Read _ | Malloc _ | Free _ | Nop | Lock _ | Unlock _ | Fork _ | Join _
        ->
        ())
    instrs;
  { errors = List.rev !errors; final_tainted = AS.elements !tainted }

let flagged_sinks r =
  List.map (fun e -> e.sink) r.errors |> List.sort_uniq Int.compare
