(* Sequential reference for RaceCheck: a direct brute force over the
   grid that shares no machinery with the parallel lifeguard — no pass-1
   summaries, no vector clocks, no SOS lock rows.  Locksets are obtained
   by replaying each thread's whole trace prefix; happens-before is
   decided by literally scanning the wing for a [Fork] and the body for
   a [Join].  The differential battery pins [check]'s report
   byte-identical to every parallel driver's. *)

module LS = Racecheck.Lockset

let valid_target ~threads ~tid u = u >= 0 && u < threads && u <> tid

(* Locks thread [tid] holds just before instruction [index] of its
   epoch-[epoch] block, by replaying the thread from the beginning. *)
let locks_before epochs ~tid ~epoch ~index =
  let held = ref LS.empty in
  for l = 0 to epoch do
    let b = Butterfly.Epochs.block epochs ~epoch:l ~tid in
    let stop = if l = epoch then index else Array.length b.instrs in
    for i = 0 to stop - 1 do
      match Tracing.Instr.sync_effect b.instrs.(i) with
      | `Lock m -> held := LS.add m !held
      | `Unlock m -> held := LS.remove m !held
      | `Fork _ | `Join _ | `None -> ()
    done
  done;
  !held

(* The accesses of a block, in the order the lifeguard pairs them:
   instruction order, the write before the reads of one instruction. *)
let accesses_of (b : Butterfly.Block.t) =
  let acc = ref [] in
  Array.iteri
    (fun i instr ->
      (match Tracing.Instr.writes instr with
      | Some x -> acc := (i, x, Racecheck.W) :: !acc
      | None -> ());
      List.iter
        (fun x -> acc := (i, x, Racecheck.R) :: !acc)
        (Tracing.Instr.reads instr))
    b.instrs;
  List.rev !acc

(* Is the wing access (wl, wu, wi) ordered before the body access
   (l, t, i) by a happens-before path?  Inside the window (wl = l-1 or
   wl = l, wu <> t) the only paths are a fork of [t] in the wing block at
   index >= wi, or a join of [wu] in the body block at index < i. *)
let hb_before epochs ~threads ~wl ~wu ~wi ~l ~t ~i =
  if wl > l - 1 then false
  else if wl < l - 1 then true (* strongly ordered: the epoch assumption *)
  else
    let wing = Butterfly.Epochs.block epochs ~epoch:wl ~tid:wu in
    let forked = ref false in
    Array.iteri
      (fun k instr ->
        if k >= wi then
          match Tracing.Instr.sync_effect instr with
          | `Fork u when u = t && valid_target ~threads ~tid:wu u ->
            forked := true
          | _ -> ())
      wing.instrs;
    !forked
    ||
    let body = Butterfly.Epochs.block epochs ~epoch:l ~tid:t in
    let joined = ref false in
    Array.iteri
      (fun k instr ->
        if k < i then
          match Tracing.Instr.sync_effect instr with
          | `Join u when u = wu && valid_target ~threads ~tid:t u ->
            joined := true
          | _ -> ())
      body.instrs;
    !joined

let check epochs : Racecheck.report =
  let num_l = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  let races = ref [] in
  let stats =
    Array.init threads (fun _ ->
        Array.make num_l
          ({ instrs = 0; accesses = 0; pairs_checked = 0; races = 0 }
            : Racecheck.block_stats))
  in
  for l = 0 to num_l - 1 do
    for t = 0 to threads - 1 do
      let body = Butterfly.Epochs.block epochs ~epoch:l ~tid:t in
      let body_accs = accesses_of body in
      let n_pairs = ref 0 and n_races = ref 0 in
      let check_wing (i, x, k) ~wl ~wu =
        if wl >= 0 && wl < num_l then
          List.iter
            (fun (wi, wx, wk) ->
              if wx = x && (k = Racecheck.W || wk = Racecheck.W) then begin
                incr n_pairs;
                if not (hb_before epochs ~threads ~wl ~wu ~wi ~l ~t ~i) then begin
                  let ls_a = locks_before epochs ~tid:t ~epoch:l ~index:i in
                  let ls_b =
                    locks_before epochs ~tid:wu ~epoch:wl ~index:wi
                  in
                  if LS.is_empty (LS.inter ls_a ls_b) then begin
                    incr n_races;
                    races :=
                      {
                        Racecheck.a = Racecheck.Id.make ~epoch:l ~tid:t ~index:i;
                        a_kind = k;
                        b = Racecheck.Id.make ~epoch:wl ~tid:wu ~index:wi;
                        b_kind = wk;
                        addr = x;
                      }
                      :: !races
                  end
                end
              end)
            (accesses_of (Butterfly.Epochs.block epochs ~epoch:wl ~tid:wu))
      in
      List.iter
        (fun a ->
          for u = 0 to threads - 1 do
            if u <> t then check_wing a ~wl:(l - 1) ~wu:u
          done;
          for u = 0 to t - 1 do
            check_wing a ~wl:l ~wu:u
          done)
        body_accs;
      stats.(t).(l) <-
        {
          instrs = Array.length body.instrs;
          accesses = List.length body_accs;
          pairs_checked = !n_pairs;
          races = !n_races;
        }
    done
  done;
  {
    races = List.rev !races;
    entry_locks =
      Array.init (num_l + 1) (fun l ->
          Array.init threads (fun t ->
              LS.elements (locks_before epochs ~tid:t ~epoch:l ~index:0)));
    block_stats = stats;
  }
