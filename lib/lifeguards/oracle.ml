module VO = Memmodel.Valid_ordering
module IS = Butterfly.Interval_set

type verdict = {
  sound : bool;
  orderings_checked : int;
  exhaustive : bool;
  missed : string list;
}

let grid_of_program p =
  Array.init (Tracing.Program.threads p) (fun t ->
      Tracing.Trace.blocks (Tracing.Program.trace p t))

(* Enumerate valid orderings if feasible, otherwise sample. *)
let orderings_of ?(model = Memmodel.Consistency.Sequential) ?(cap = 20_000)
    ?(samples = 200) ?(seed = 7) grid =
  let vo = VO.of_blocks ~model grid in
  let os, exhaustive = VO.enumerate ~cap vo in
  if exhaustive then (vo, os, true)
  else
    let rng = Random.State.make [| seed; 0x0c31e |] in
    (vo, List.init samples (fun _ -> VO.sample rng vo), false)

let instrs_of_ordering vo o =
  Memmodel.Ordering.apply (VO.threads vo) o

let addrcheck_zero_false_negatives ?model ?cap ?samples ?seed ?wavefront
    ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Addrcheck.run ?wavefront ?domains (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_flags = Addrcheck.flagged_addresses report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Addrcheck_seq.check (instrs_of_ordering vo o) in
      let seq_flags = Addrcheck_seq.flagged_addresses seq in
      let uncovered = IS.diff seq_flags butterfly_flags in
      if not (IS.is_empty uncovered) then
        missed :=
          Format.asprintf "ordering #%d: sequential flags %a, butterfly misses them"
            k IS.pp uncovered
          :: !missed)
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }

let initcheck_zero_false_negatives ?model ?cap ?samples ?seed ?wavefront
    ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Initcheck.run ?wavefront ?domains (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_flags = Initcheck.flagged_addresses report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Initcheck_seq.check (instrs_of_ordering vo o) in
      let seq_flags = Initcheck_seq.flagged_addresses seq in
      let uncovered = IS.diff seq_flags butterfly_flags in
      if not (IS.is_empty uncovered) then
        missed :=
          Format.asprintf
            "ordering #%d: sequential flags %a, butterfly misses them" k IS.pp
            uncovered
          :: !missed)
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }

let taintcheck_zero_false_negatives ?model ?cap ?samples ?seed
    ?(sequential = true) ?(two_phase = true) ?wavefront ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Taintcheck.run ~sequential ~two_phase ?wavefront ?domains
      (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_sinks = Taintcheck.flagged_sinks report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Taintcheck_seq.check (instrs_of_ordering vo o) in
      List.iter
        (fun sink ->
          if not (List.mem sink butterfly_sinks) then
            missed :=
              Format.asprintf
                "ordering #%d: sequential taints sink %a, butterfly does not"
                k Tracing.Addr.pp sink
              :: !missed)
        (Taintcheck_seq.flagged_sinks seq))
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }
