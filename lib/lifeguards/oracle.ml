module VO = Memmodel.Valid_ordering
module IS = Butterfly.Interval_set

type verdict = {
  sound : bool;
  orderings_checked : int;
  exhaustive : bool;
  missed : string list;
}

let grid_of_program p =
  Array.init (Tracing.Program.threads p) (fun t ->
      Tracing.Trace.blocks (Tracing.Program.trace p t))

(* Enumerate valid orderings if feasible, otherwise sample. *)
let orderings_of ?(model = Memmodel.Consistency.Sequential) ?(cap = 20_000)
    ?(samples = 200) ?(seed = 7) grid =
  let vo = VO.of_blocks ~model grid in
  let os, exhaustive = VO.enumerate ~cap vo in
  if exhaustive then (vo, os, true)
  else
    let rng = Random.State.make [| seed; 0x0c31e |] in
    (vo, List.init samples (fun _ -> VO.sample rng vo), false)

let instrs_of_ordering vo o =
  Memmodel.Ordering.apply (VO.threads vo) o

let addrcheck_zero_false_negatives ?model ?cap ?samples ?seed ?wavefront
    ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Addrcheck.run ?wavefront ?domains (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_flags = Addrcheck.flagged_addresses report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Addrcheck_seq.check (instrs_of_ordering vo o) in
      let seq_flags = Addrcheck_seq.flagged_addresses seq in
      let uncovered = IS.diff seq_flags butterfly_flags in
      if not (IS.is_empty uncovered) then
        missed :=
          Format.asprintf "ordering #%d: sequential flags %a, butterfly misses them"
            k IS.pp uncovered
          :: !missed)
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }

let initcheck_zero_false_negatives ?model ?cap ?samples ?seed ?wavefront
    ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Initcheck.run ?wavefront ?domains (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_flags = Initcheck.flagged_addresses report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Initcheck_seq.check (instrs_of_ordering vo o) in
      let seq_flags = Initcheck_seq.flagged_addresses seq in
      let uncovered = IS.diff seq_flags butterfly_flags in
      if not (IS.is_empty uncovered) then
        missed :=
          Format.asprintf
            "ordering #%d: sequential flags %a, butterfly misses them" k IS.pp
            uncovered
          :: !missed)
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }

(* ------------------------------------------------------------------ *)
(* RaceCheck ground truth.  A pair races {e in one ordering} when no
   happens-before path orders it there and no common lock guards both
   accesses.  The happens-before graph is explicit: event nodes plus
   per-epoch virtual nodes ES(l)/EE(l) encoding the epoch assumption
   (everything of epoch l precedes everything of epoch l+2), fork/join
   edges, program order, and — per ordering — the observed unlock-to-
   next-lock edges of each mutex.  The union of races over enumerated
   (or sampled) valid orderings must be covered by butterfly RaceCheck's
   flagged pairs: Theorem 6.1/6.2 specialized to the race relation.

   The lockset filter matters for soundness of the comparison itself:
   valid orderings do not model mutual exclusion, so without it the
   oracle would demand pairs that butterfly rightly clears as guarded.
   Only [Sequential] is meaningful here — the graph assumes program
   order is respected, which relaxed models deliberately give up. *)

let conflict_addrs i1 i2 =
  let w1 = Tracing.Instr.writes i1 and w2 = Tracing.Instr.writes i2 in
  let r1 = Tracing.Instr.reads i1 and r2 = Tracing.Instr.reads i2 in
  let of_write w other_w other_r =
    match w with
    | Some x when other_w = Some x || List.mem x other_r -> [ x ]
    | _ -> []
  in
  List.sort_uniq compare (of_write w1 w2 r2 @ of_write w2 w1 r1)

let racecheck_zero_false_negatives ?model ?cap ?samples ?seed ?wavefront
    ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let epochs = Butterfly.Epochs.of_blocks grid in
  let report = Racecheck.run ?wavefront ?domains epochs in
  let flagged = Racecheck.flagged_pairs report in
  let flat = VO.threads vo in
  let n_threads = Array.length flat in
  let num_l = Butterfly.Epochs.num_epochs epochs in
  (* Flat per-thread index -> (epoch, in-block index). *)
  let pos_of =
    Array.init n_threads (fun t ->
        Array.init (Array.length flat.(t)) (fun _ -> (0, 0)))
  in
  Array.iteri
    (fun t blocks ->
      let flat_i = ref 0 in
      List.iteri
        (fun l block ->
          Array.iteri
            (fun i _ ->
              pos_of.(t).(!flat_i) <- (l, i);
              incr flat_i)
            block)
        blocks)
    grid;
  let offsets = Array.make n_threads 0 in
  let n_events = ref 0 in
  Array.iteri
    (fun t es ->
      offsets.(t) <- !n_events;
      n_events := !n_events + Array.length es)
    flat;
  let n_events = !n_events in
  let n_nodes = n_events + (2 * num_l) in
  let es l = n_events + (2 * l) and ee l = n_events + (2 * l) + 1 in
  let base = Array.make n_nodes [] in
  let add adj u v = adj.(u) <- v :: adj.(u) in
  (* Program order and the epoch skeleton. *)
  for t = 0 to n_threads - 1 do
    for i = 0 to Array.length flat.(t) - 1 do
      let e = offsets.(t) + i in
      if i + 1 < Array.length flat.(t) then add base e (e + 1);
      let l, bi = pos_of.(t).(i) in
      if bi = 0 then add base (es l) e;
      let is_last =
        i + 1 >= Array.length flat.(t) || fst pos_of.(t).(i + 1) > l
      in
      if is_last then add base e (ee l)
    done
  done;
  for l = 0 to num_l - 1 do
    if l + 1 < num_l then add base (es l) (es (l + 1));
    if l >= 1 then add base (ee (l - 1)) (ee l);
    if l + 2 < num_l then add base (ee l) (es (l + 2))
  done;
  (* Fork and join edges (epoch-granular, invalid targets inert). *)
  for t = 0 to n_threads - 1 do
    for i = 0 to Array.length flat.(t) - 1 do
      let e = offsets.(t) + i in
      let l, _ = pos_of.(t).(i) in
      match Tracing.Instr.sync_effect flat.(t).(i) with
      | `Fork u when u >= 0 && u < n_threads && u <> t ->
        (* to the first event of [u] in a strictly later epoch *)
        let j = ref 0 in
        while !j < Array.length flat.(u) && fst pos_of.(u).(!j) <= l do
          incr j
        done;
        if !j < Array.length flat.(u) then add base e (offsets.(u) + !j)
      | `Join u when u >= 0 && u < n_threads && u <> t ->
        (* from the last event of [u] in a strictly earlier epoch *)
        let j = ref (Array.length flat.(u) - 1) in
        while !j >= 0 && fst pos_of.(u).(!j) >= l do
          decr j
        done;
        if !j >= 0 then add base (offsets.(u) + !j) e
      | _ -> ()
    done
  done;
  let lockset t i =
    let l, bi = pos_of.(t).(i) in
    Racecheck_seq.locks_before epochs ~tid:t ~epoch:l ~index:bi
  in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      (* Observed critical-section order: unlock -> next lock of m. *)
      let adj = Array.copy base in
      let last_unlock = Hashtbl.create 8 in
      List.iter
        (fun (s : Memmodel.Ordering.step) ->
          let e = offsets.(s.tid) + s.index in
          match Tracing.Instr.sync_effect flat.(s.tid).(s.index) with
          | `Lock m -> (
            match Hashtbl.find_opt last_unlock m with
            | Some u -> add adj u e
            | None -> ())
          | `Unlock m -> Hashtbl.replace last_unlock m e
          | _ -> ())
        o;
      let reach =
        Array.init n_nodes (fun s ->
            let seen = Array.make n_nodes false in
            let rec go v =
              List.iter
                (fun w ->
                  if not seen.(w) then begin
                    seen.(w) <- true;
                    go w
                  end)
                adj.(v)
            in
            go s;
            seen)
      in
      for t1 = 0 to n_threads - 1 do
        for t2 = t1 + 1 to n_threads - 1 do
          for i1 = 0 to Array.length flat.(t1) - 1 do
            for i2 = 0 to Array.length flat.(t2) - 1 do
              let xs = conflict_addrs flat.(t1).(i1) flat.(t2).(i2) in
              if xs <> [] then begin
                let e1 = offsets.(t1) + i1 and e2 = offsets.(t2) + i2 in
                if (not reach.(e1).(e2)) && not reach.(e2).(e1) then
                  if
                    Racecheck.Lockset.is_empty
                      (Racecheck.Lockset.inter (lockset t1 i1) (lockset t2 i2))
                  then begin
                    let l1, b1 = pos_of.(t1).(i1)
                    and l2, b2 = pos_of.(t2).(i2) in
                    let id1 = Racecheck.Id.make ~epoch:l1 ~tid:t1 ~index:b1
                    and id2 = Racecheck.Id.make ~epoch:l2 ~tid:t2 ~index:b2 in
                    let a, b =
                      if Racecheck.Id.compare id1 id2 <= 0 then (id1, id2)
                      else (id2, id1)
                    in
                    List.iter
                      (fun x ->
                        if not (List.mem (a, b, x) flagged) then
                          missed :=
                            Format.asprintf
                              "ordering #%d: %a and %a race on %a, butterfly \
                               does not flag the pair"
                              k Butterfly.Instr_id.pp a Butterfly.Instr_id.pp b
                              Tracing.Addr.pp x
                            :: !missed)
                      xs
                  end
              end
            done
          done
        done
      done)
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }

let taintcheck_zero_false_negatives ?model ?cap ?samples ?seed
    ?(sequential = true) ?(two_phase = true) ?wavefront ?domains p =
  let grid = grid_of_program p in
  let vo, os, exhaustive = orderings_of ?model ?cap ?samples ?seed grid in
  let report =
    Taintcheck.run ~sequential ~two_phase ?wavefront ?domains
      (Butterfly.Epochs.of_blocks grid)
  in
  let butterfly_sinks = Taintcheck.flagged_sinks report in
  let missed = ref [] in
  List.iteri
    (fun k o ->
      let seq = Taintcheck_seq.check (instrs_of_ordering vo o) in
      List.iter
        (fun sink ->
          if not (List.mem sink butterfly_sinks) then
            missed :=
              Format.asprintf
                "ordering #%d: sequential taints sink %a, butterfly does not"
                k Tracing.Addr.pp sink
              :: !missed)
        (Taintcheck_seq.flagged_sinks seq))
    os;
  {
    sound = !missed = [];
    orderings_checked = List.length os;
    exhaustive;
    missed = List.rev !missed;
  }
