(** RaceCheck: a happens-before / lockset data-race lifeguard on the
    butterfly window (DESIGN §16).

    Synchronization events ([Lock]/[Unlock]/[Fork]/[Join]) induce a
    happens-before partial order over the grid: program order, the epoch
    assumption (epoch [l] precedes epoch [l+2]), fork edges into strictly
    later epochs and join edges from strictly earlier ones.  Two
    conflicting accesses to one address — cross-thread, at least one a
    write — are reported as a {e may-race} when no happens-before path
    orders them and no common lock guards both.  Within the window the
    analysis is conservative in the sense of Theorem 6.1/6.2: every pair
    that races under some valid ordering is flagged
    ({!Oracle.racecheck_zero_false_negatives}); pairs ordered in every
    valid ordering may still be flagged (may-race, no false negatives).

    Parallel drivers (pooled epoch-barrier and wavefront) reproduce the
    sequential reference {!Racecheck_seq.check} byte for byte, pinned by
    the differential battery in [test/test_racecheck.ml]. *)

module Lockset : Set.S with type elt = int
(** Locks are identified by their [Tracing.Addr.t]; a lockset is the set
    held at one program point.  Exposed for the qcheck lattice laws
    (intersection is a lower bound, union monotone). *)

module Id = Butterfly.Instr_id

type kind = R | W

type race = {
  a : Id.t;  (** the later access — the one whose block ran the check *)
  a_kind : kind;
  b : Id.t;  (** the wing access it conflicts with *)
  b_kind : kind;
  addr : Tracing.Addr.t;
}

type block_stats = {
  instrs : int;
  accesses : int;  (** memory accesses the block contributes to pairing *)
  pairs_checked : int;  (** conflicting candidate pairs examined *)
  races : int;
}

type report = {
  races : race list;  (** in commit order: epoch-major, thread-minor *)
  entry_locks : int list array array;
      (** [entry_locks.(l).(t)]: locks thread [t] holds when epoch [l]
          starts, sorted; row [num_epochs] is the final state. *)
  block_stats : block_stats array array;  (** indexed [tid].[epoch] *)
}

val pp_race : Format.formatter -> race -> unit

val flagged_addrs : report -> Tracing.Addr.t list
(** Addresses involved in at least one race, sorted, deduplicated. *)

val flagged_pairs : report -> (Id.t * Id.t * Tracing.Addr.t) list
(** Canonical pair keys (smaller id first), sorted, deduplicated — the
    currency the interleaving oracle compares against. *)

val fingerprint : report -> string
(** Total serialization of a report; equal strings iff byte-identical
    results.  The differential batteries compare drivers through this. *)

type backend = [ `Functional | `Flat ]
(** RaceCheck keeps no per-address fact sets, so both backends alias one
    implementation; the parameter exists to keep the CLI and the
    differential driver matrix uniform across lifeguards. *)

val run :
  ?state:backend ->
  ?wavefront:bool ->
  ?domains:int ->
  ?pool:Butterfly.Domain_pool.t ->
  Butterfly.Epochs.t ->
  report
(** Analyze a whole grid.  [wavefront] selects the dependency-driven
    scheduler; [domains]/[pool] the worker pool (absent both, the master
    runs every block itself).  All combinations produce identical
    reports. *)

(** Checkpointable epoch-incremental engine: feed rows as they arrive,
    snapshot between epochs, resume from the encoded state.  Used by
    {!Recovery.Runner} and the crash-sim battery. *)
module Resumable : sig
  type state

  val create :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    threads:int ->
    unit ->
    state
  (** [state] is accepted for uniformity with the other lifeguards and
      ignored (see {!type:backend}). *)

  val feed_epoch : state -> Tracing.Instr.t array array -> unit
  (** One grid row, [threads] wide; raises [Invalid_argument] otherwise. *)

  val epochs_fed : state -> int

  val finish : state -> report

  val encode : state -> string
  (** Serialize between [feed_epoch] calls.  The payload retains only the
      sliding window's raw rows (summaries are recomputed on decode) plus
      the accumulated races, statistics and entry-lock history. *)

  val decode :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    string ->
    (state, string) result
end

(**/**)

(* Test-only fault injection: skipping the same-epoch backward wing makes
   RaceCheck miss races between concurrent blocks of one epoch — the QA
   mutation smoke test proves the oracle battery catches it. *)
module Testing : sig
  val break_same_epoch : bool ref
end
