(** Window-local vector clocks for RaceCheck.

    A clock component is a {e position} [(epoch, index)] in one thread's
    trace, ordered lexicographically; a clock holds one position per
    thread.  Component [u] of a clock owned by some program point means:
    every event of thread [u] at a position strictly below the component
    happens before that point.  Positions form a total order and clocks
    the usual componentwise lattice — the qcheck battery in
    [test/test_racecheck.ml] pins the lattice laws ([join] is an upper
    bound and monotone, [meet] a lower bound, both commutative,
    associative and absorbing). *)

type pos = int * int
(** [(epoch, index)], compared lexicographically. *)

val pos_leq : pos -> pos -> bool
val pos_lt : pos -> pos -> bool
val pos_max : pos -> pos -> pos
val pos_min : pos -> pos -> pos

type t = pos array
(** One component per thread, indexed by [Tracing.Tid.t]. *)

val make : threads:int -> pos -> t
(** Constant clock: every component at the given position. *)

val get : t -> int -> pos

val with_component : t -> int -> pos -> t
(** Functional update; the argument clock is not mutated. *)

val leq : t -> t -> bool
(** Componentwise: [leq a b] iff every component of [a] is [pos_leq] the
    corresponding component of [b].  A partial order (clocks of unequal
    width are never related). *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Componentwise max: least upper bound. *)

val meet : t -> t -> t
(** Componentwise min: greatest lower bound. *)

val pp : Format.formatter -> t -> unit
