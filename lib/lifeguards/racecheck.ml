(* RaceCheck: a happens-before / lockset data-race lifeguard on the
   butterfly window.

   The trace ISA's synchronization events induce a happens-before partial
   order over dynamic instructions:

     - program order within each thread;
     - the epoch assumption: every event of epoch l precedes every event
       of epoch l' >= l+2 (Lemma 5.2 — exactly the strictly-ordered
       region of the butterfly);
     - fork: [Fork u] at (l_f, t) precedes every event of thread u at
       epochs > l_f;
     - join: every event of thread u at epochs < l_j precedes [Join u]
       at (l_j, t).

   Every edge is non-decreasing in epoch, so for a conflicting cross-
   thread pair inside the window (|Δl| <= 1) an exhaustive path analysis
   leaves exactly two ways the earlier access B at (l-1, u, i_b) can be
   ordered before the later access A at (l, t, i):

     (a) block (l-1, u) forks t at an index >= i_b (B runs po-before the
         fork, the fork precedes all of t's epoch-l events), or
     (b) block (l, t) joins u at an index < i (the join succeeds all of
         u's epoch-(l-1) events and po-precedes A).

   Same-epoch cross-thread pairs are never ordered, and no transitive
   path through a third thread exists inside the window.  Case (a) is
   encoded in a per-block entry {!Vclock}: component u of block (l, t)'s
   entry clock is (l-1, f+1) when block (l-1, u) last forks t at index
   f, else (l-1, 0) — positions strictly below the component happen
   before the whole block.  Case (b) refines the clock per access.

   A pair left unordered by happens-before is still suppressed when the
   two accesses hold a common lock: mutual exclusion orders the critical
   sections in every valid ordering.  Locksets are pure per-thread
   program-order state; each thread's held-lock set at epoch entry is
   maintained SOS-style by the master, one row per epoch:

     entry(l+1, t) = (entry(l, t) \ removed(l, t)) ∪ added(l, t)

   with removed/added the block's net unlock/lock effect from its pass-1
   summary.  Everything else — fork/join positions and per-access
   held/released deltas — is block-local pass-1 data, so the lifeguard
   rides both epoch-barrier drivers unchanged.

   What survives is reported as a may-race.  Within the window the
   analysis is conservative in the sense of Theorem 6.1/6.2: it never
   misses a pair that races under some valid ordering (the lockset and
   happens-before filters only remove pairs ordered in {e every} valid
   ordering), which [Oracle.racecheck_zero_false_negatives] checks
   against enumerated interleavings. *)

module LS = Set.Make (Int)
module Lockset = LS
module Id = Butterfly.Instr_id

type kind = R | W

type race = {
  a : Id.t;
  a_kind : kind;
  b : Id.t;
  b_kind : kind;
  addr : Tracing.Addr.t;
}

type block_stats = {
  instrs : int;
  accesses : int;
  pairs_checked : int;
  races : int;
}

type report = {
  races : race list;
  entry_locks : int list array array;
  block_stats : block_stats array array;
}

(* Test-only fault injection.  The QA mutation smoke test flips this to
   prove the differential fuzz engine detects an unsound window: skipping
   the same-epoch backward wing makes butterfly RaceCheck miss races
   between concurrent blocks of one epoch, which the interleaving oracle
   still exhibits — a zero-false-negative violation the fuzzer must
   surface.  Never set outside tests. *)
module Testing = struct
  let break_same_epoch = ref false
end

let kind_char = function R -> 'R' | W -> 'W'

let pp_race ppf r =
  Format.fprintf ppf "race on %a: %c%a vs %c%a" Tracing.Addr.pp r.addr
    (kind_char r.a_kind) Id.pp r.a (kind_char r.b_kind) Id.pp r.b

let flagged_addrs (r : report) =
  List.map (fun rc -> rc.addr) r.races |> List.sort_uniq Int.compare

let flagged_pairs (r : report) =
  List.map
    (fun rc ->
      if Id.compare rc.a rc.b <= 0 then (rc.a, rc.b, rc.addr)
      else (rc.b, rc.a, rc.addr))
    r.races
  |> List.sort_uniq compare

let fingerprint (r : report) =
  let fp_stats ppf grid =
    Array.iteri
      (fun t row ->
        Array.iteri
          (fun l (s : block_stats) ->
            Format.fprintf ppf "(%d,%d)%d/%d/%d/%d " t l s.instrs s.accesses
              s.pairs_checked s.races)
          row)
      grid
  in
  Format.asprintf "races=[%a] entry_locks=[%a] stats=[%a]"
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " pp_race))
    r.races
    (fun ppf rows ->
      Array.iter
        (fun row ->
          Array.iter
            (fun ms ->
              List.iter (Format.fprintf ppf "%d,") ms;
              Format.fprintf ppf "|")
            row;
          Format.fprintf ppf "; ")
        rows)
    r.entry_locks fp_stats r.block_stats

(* ------------------------------------------------------------------ *)
(* Pass-1 block summaries: everything pass 2 needs to know about a wing
   without rereading it, computed per block with no shared state. *)

type access = {
  ai : int; (* instruction index in block *)
  a_addr : Tracing.Addr.t;
  a_kind : kind;
  a_held : LS.t; (* locks acquired in-block and still held here *)
  a_removed : LS.t; (* entry locks already released here *)
}

type summary = {
  s_accesses : access array; (* index order; per instr: write, then reads *)
  s_fork_max : (int, int) Hashtbl.t; (* child tid -> max Fork index *)
  s_join_min : (int, int) Hashtbl.t; (* target tid -> min Join index *)
  s_added : LS.t; (* locks acquired in-block and held at exit *)
  s_removed : LS.t; (* entry locks released by exit *)
}

let empty_summary () =
  {
    s_accesses = [||];
    s_fork_max = Hashtbl.create 1;
    s_join_min = Hashtbl.create 1;
    s_added = LS.empty;
    s_removed = LS.empty;
  }

(* Fork/join targets outside the grid (or the forking thread itself) are
   recorded in the trace but induce no ordering. *)
let valid_target ~threads ~tid u = u >= 0 && u < threads && u <> tid

let summarize_block ~threads (block : Butterfly.Block.t) =
  let tid = block.tid in
  let accs = ref [] in
  let held = ref LS.empty and removed = ref LS.empty in
  let fork_max = Hashtbl.create 4 and join_min = Hashtbl.create 4 in
  Butterfly.Block.iteri
    (fun id instr ->
      let index = id.Butterfly.Instr_id.index in
      (match Tracing.Instr.sync_effect instr with
      | `Lock m ->
        held := LS.add m !held;
        removed := LS.remove m !removed
      | `Unlock m ->
        held := LS.remove m !held;
        removed := LS.add m !removed
      | `Fork u ->
        (* iterated in index order, so the last replace is the max *)
        if valid_target ~threads ~tid u then Hashtbl.replace fork_max u index
      | `Join u ->
        if valid_target ~threads ~tid u && not (Hashtbl.mem join_min u) then
          Hashtbl.replace join_min u index
      | `None -> ());
      let push a_kind a_addr =
        accs :=
          { ai = index; a_addr; a_kind; a_held = !held; a_removed = !removed }
          :: !accs
      in
      (match Tracing.Instr.writes instr with
      | Some x -> push W x
      | None -> ());
      List.iter (push R) (Tracing.Instr.reads instr))
    block;
  {
    s_accesses = Array.of_list (List.rev !accs);
    s_fork_max = fork_max;
    s_join_min = join_min;
    s_added = !held;
    s_removed = !removed;
  }

(* entry(l+1) from entry(l) and block (l, t)'s summary. *)
let entry_step entry (s : summary) =
  LS.union s.s_added (LS.diff entry s.s_removed)

(* The lockset guarding one access: locally acquired locks still held,
   plus the epoch-entry set minus what the block released before it. *)
let access_lockset entry (a : access) =
  LS.union a.a_held (LS.diff entry a.a_removed)

(* Entry clock of block (l, t): for u <> t, everything of u up to the
   last Fork t in block (l-1, u) — or up to epoch l-2 when there is
   none — happens before all of block (l, t). *)
let entry_clock ~threads ~summary_at ~epoch:l ~tid:t : Vclock.t =
  Array.init threads (fun u ->
      if u = t then (l, 0)
      else
        match summary_at (l - 1) u with
        | Some s -> (
          match Hashtbl.find_opt s.s_fork_max t with
          | Some f -> (l - 1, f + 1)
          | None -> (l - 1, 0))
        | None -> (l - 1, 0))

(* ------------------------------------------------------------------ *)

let obs_labels = [ ("lifeguard", "racecheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_ls_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"

(* Why a candidate pair was cleared: ordered by happens-before, or
   mutually excluded by a common lock. *)
let m_hb_supp = Obs.Counter.make ~labels:obs_labels "racecheck.hb_suppressed"
let m_lock_supp =
  Obs.Counter.make ~labels:obs_labels "racecheck.lock_suppressed"

(* Racecheck does not ride on [Dataflow.Make], so it emits the pipeline
   counters itself to keep [--stats] reports uniform across lifeguards. *)
let pipe_labels = [ ("problem", "racecheck"); ("driver", "batch") ]
let m_epochs = Obs.Counter.make ~labels:pipe_labels "butterfly.epochs_processed"
let m_instrs = Obs.Counter.make ~labels:pipe_labels "butterfly.pass2_instrs"

(* The resumable engine's wavefront mode does its own pass-1 pipelining
   (rows arrive incrementally), so it carries the pipeline telemetry
   itself, under the same names as the scheduler drivers. *)
let wf_labels = [ ("problem", "racecheck"); ("driver", "wavefront") ]
let g_wf_ready =
  Obs.Gauge.make ~labels:wf_labels "scheduler.wavefront.ready_queue"
let sp_wf_stall = Obs.Span.make ~labels:wf_labels "scheduler.wavefront.stall_ns"
let m_wf_overlap =
  Obs.Counter.make ~labels:wf_labels "scheduler.wavefront.overlapped_epochs"
let m_wf_p1 =
  Obs.Counter.make ~labels:wf_labels "scheduler.wavefront.pipelined_pass1_blocks"

(* Everything pass 2 learns about one body block, produced without
   touching shared state.  Evaluating block (l, t) reads only inputs
   sealed before its dispatch — pass-1 summaries of rows l-1 and l, and
   the entry lock/clock rows the master computed in [prepare l] — so it
   can run on a pool worker.  The master commits outcomes epoch-major /
   thread-minor, which reproduces the sequential race list, statistics
   and telemetry byte for byte. *)
type block_outcome = {
  bo_races : race list; (* in enumeration order *)
  bo_stats : block_stats;
  bo_hb_supp : int;
  bo_lock_supp : int;
  bo_max_ls : int; (* largest per-access lockset seen *)
}

type ctx = {
  c_threads : int;
  summary_at : int -> int -> summary option;
  entry_locks_at : int -> int -> LS.t;
  entry_clock_at : int -> int -> Vclock.t;
}

(* The pair enumeration discipline makes every window pair checked
   exactly once, by its later block: block (l, t) checks each of its
   accesses (index order) against the wings of epoch l-1 (all u <> t,
   ascending) and the already-committed part of its own epoch (u < t,
   ascending).  The forward wing (l+1, u) is covered when that block
   runs. *)
let eval_block c ~epoch:l ~tid:t block =
  let sm =
    match c.summary_at l t with Some s -> s | None -> empty_summary ()
  in
  let entry = c.entry_locks_at l t in
  let clock = c.entry_clock_at l t in
  let races = ref [] in
  let n_pairs = ref 0 and hb_supp = ref 0 and lock_supp = ref 0 in
  let max_ls = ref 0 in
  let check_wing (a : access) ls_a ~wl ~wu =
    match c.summary_at wl wu with
    | None -> ()
    | Some wsm ->
      let wentry = c.entry_locks_at wl wu in
      Array.iter
        (fun (b : access) ->
          if b.a_addr = a.a_addr && (a.a_kind = W || b.a_kind = W) then begin
            incr n_pairs;
            let hb =
              Vclock.pos_lt (wl, b.ai) (Vclock.get clock wu)
              || wl < l
                 &&
                 match Hashtbl.find_opt sm.s_join_min wu with
                 | Some j -> j < a.ai
                 | None -> false
            in
            if hb then incr hb_supp
            else if
              not (LS.is_empty (LS.inter ls_a (access_lockset wentry b)))
            then incr lock_supp
            else
              races :=
                {
                  a = Id.make ~epoch:l ~tid:t ~index:a.ai;
                  a_kind = a.a_kind;
                  b = Id.make ~epoch:wl ~tid:wu ~index:b.ai;
                  b_kind = b.a_kind;
                  addr = a.a_addr;
                }
                :: !races
          end)
        wsm.s_accesses
  in
  Array.iter
    (fun (a : access) ->
      let ls_a = access_lockset entry a in
      if LS.cardinal ls_a > !max_ls then max_ls := LS.cardinal ls_a;
      for u = 0 to c.c_threads - 1 do
        if u <> t then check_wing a ls_a ~wl:(l - 1) ~wu:u
      done;
      if not !Testing.break_same_epoch then
        for u = 0 to t - 1 do
          check_wing a ls_a ~wl:l ~wu:u
        done)
    sm.s_accesses;
  let races = List.rev !races in
  {
    bo_races = races;
    bo_stats =
      {
        instrs = Butterfly.Block.length block;
        accesses = Array.length sm.s_accesses;
        pairs_checked = !n_pairs;
        races = List.length races;
      };
    bo_hb_supp = !hb_supp;
    bo_lock_supp = !lock_supp;
    bo_max_ls = !max_ls;
  }

let zero_stats = { instrs = 0; accesses = 0; pairs_checked = 0; races = 0 }

let commit_obs ~threads ~epoch ~tid o =
  Obs.Scope.with_scope ~epoch ~tid ~phase:"commit" (fun () ->
      Obs.Counter.add m_checks o.bo_stats.pairs_checked;
      Obs.Counter.add m_flags o.bo_stats.races;
      Obs.Counter.add m_hb_supp o.bo_hb_supp;
      Obs.Counter.add m_lock_supp o.bo_lock_supp;
      Obs.Counter.add m_instrs o.bo_stats.instrs;
      if Obs.enabled () then
        Obs.Gauge.set_max g_ls_hwm (float_of_int o.bo_max_ls);
      if tid = threads - 1 then Obs.Counter.incr m_epochs)

let run_with ~pool ~wavefront epochs =
  (* Materialize the check/flag counters so clean runs still report 0. *)
  Obs.Counter.add m_checks 0;
  Obs.Counter.add m_flags 0;
  let num_l = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  (* Pass-1 summaries, committed by the master as they become available:
     the epochwise driver fans the whole grid out up front, the wavefront
     driver commits each row just ahead of the pass-2 cursor.  Either
     way, a cell is [Some] before any pass-2 task that may read it is
     dispatched, and rows <= l-1 before [prepare l]. *)
  let summaries = Array.init num_l (fun _ -> Array.make threads None) in
  (* entry.(l).(t): locks held by t when epoch l starts; row num_l is the
     state after the whole execution.  Row l is written by [prepare l]
     (row 0 is the empty base) and read by epoch-l and epoch-(l+1)
     workers. *)
  let entry = Array.init (num_l + 1) (fun _ -> Array.make threads LS.empty) in
  let clocks = Array.init num_l (fun _ -> Array.make threads [||]) in
  let summary_at l t =
    if l < 0 || l >= num_l then None else summaries.(l).(t)
  in
  let c =
    {
      c_threads = threads;
      summary_at;
      entry_locks_at =
        (fun l t -> if l < 0 || l > num_l then LS.empty else entry.(l).(t));
      entry_clock_at = (fun l t -> clocks.(l).(t));
    }
  in
  let advance_entry l =
    if l >= 1 && l <= num_l then
      for t = 0 to threads - 1 do
        entry.(l).(t) <-
          (match summaries.(l - 1).(t) with
          | Some s -> entry_step entry.(l - 1).(t) s
          | None -> entry.(l - 1).(t))
      done
  in
  let prepare l =
    advance_entry l;
    for t = 0 to threads - 1 do
      clocks.(l).(t) <- entry_clock ~threads ~summary_at ~epoch:l ~tid:t
    done
  in
  let races = ref [] in
  let stats = Array.init threads (fun _ -> Array.make num_l zero_stats) in
  let commit ~epoch:l ~tid o =
    races := List.rev_append o.bo_races !races;
    stats.(tid).(l) <- o.bo_stats;
    commit_obs ~threads ~epoch:l ~tid o
  in
  if wavefront then
    (* Dependency-driven schedule: pass-1 summarization of later epochs
       overlaps pass 2 of earlier ones.  eval_block of epoch l reads
       summary rows l-1 and l — committed before its dispatch — and the
       entry rows sealed by [prepare l]. *)
    Butterfly.Scheduler.Wavefront.run ?pool ~num_epochs:num_l ~threads
      ~pass1:(fun ~epoch ~tid ->
        summarize_block ~threads (Butterfly.Epochs.block epochs ~epoch ~tid))
      ~commit1:(fun ~epoch ~tid s -> summaries.(epoch).(tid) <- Some s)
      ~prepare
      ~pass2:(fun ~epoch ~tid ->
        eval_block c ~epoch ~tid (Butterfly.Epochs.block epochs ~epoch ~tid))
      ~commit2:commit ()
  else begin
    (* Pass 1 is per-block-local, so the pooled mode fans the whole grid
       out up front; pass 2 below then sees every wing already
       summarized. *)
    let sm =
      Butterfly.Scheduler.Epochwise.map_grid ?pool ~num_epochs:num_l ~threads
        (fun ~epoch ~tid ->
          Obs.Scope.with_scope ~phase:"pass1" (fun () ->
              summarize_block ~threads
                (Butterfly.Epochs.block epochs ~epoch ~tid)))
    in
    Array.iteri
      (fun l row -> Array.iteri (fun t s -> summaries.(l).(t) <- Some s) row)
      sm;
    Butterfly.Scheduler.Epochwise.run ?pool ~num_epochs:num_l ~threads ~prepare
      ~task:(fun ~epoch ~tid ->
        Obs.Scope.with_scope ~phase:"pass2" (fun () ->
            eval_block c ~epoch ~tid
              (Butterfly.Epochs.block epochs ~epoch ~tid)))
      ~commit ()
  end;
  (* Final lock state past the last epoch. *)
  advance_entry num_l;
  {
    races = List.rev !races;
    entry_locks = Array.map (Array.map LS.elements) entry;
    block_stats = stats;
  }

(* RaceCheck keeps no per-address fact sets — its state is the race list
   plus O(threads) lock/clock rows — so the functional and flat backends
   alias a single implementation; [state] only keeps the CLI and the
   differential matrix uniform across lifeguards. *)
type backend = [ `Functional | `Flat ]

let run ?state ?(wavefront = false) ?domains ?pool epochs =
  ignore (state : backend option);
  match (pool, domains) with
  | Some _, _ -> run_with ~pool ~wavefront epochs
  | None, Some d ->
    Butterfly.Domain_pool.with_pool ~name:"racecheck" ~domains:d (fun p ->
        run_with ~pool:(Some p) ~wavefront epochs)
  | None, None -> run_with ~pool:None ~wavefront epochs

(* ------------------------------------------------------------------ *)
(* Checkpointable epoch-incremental engine.  Evaluating epoch l reads
   summary rows l-1 and l, the entry lock rows l-1 and l, and its own
   raw row — so raw and summary rows the window has passed are pruned;
   the entry-lock history (part of the report) is kept whole.  Pass-1
   summaries are recomputed from the retained raw rows on decode rather
   than serialized: [summarize_block] is pure, and entry clocks are
   rederived per epoch from the summary row behind it. *)

module Resumable = struct
  type state = {
    threads : int;
    pool : Butterfly.Domain_pool.t option;
    wavefront : bool;
    rows : (int, Tracing.Instr.t array array) Hashtbl.t; (* raw, pruned *)
    summaries : (int, summary array) Hashtbl.t; (* derived from [rows] *)
    pending : (int, summary Butterfly.Domain_pool.future array) Hashtbl.t;
        (* wavefront mode: pass-1 rows still in flight on the pool,
           resolved into [summaries] just before pass 2 needs them *)
    entry : (int, LS.t array) Hashtbl.t; (* full history: report content *)
    clocks : (int, Vclock.t array) Hashtbl.t; (* transient, per epoch *)
    stats : (int, block_stats array) Hashtbl.t; (* epoch -> per-tid *)
    ctx : ctx;
    mutable races : race list; (* reversed *)
    mutable processed : int;
    mutable epochs_fed : int;
  }

  let make_ctx_of ~threads ~summaries ~entry ~clocks =
    {
      c_threads = threads;
      summary_at =
        (fun l t ->
          match Hashtbl.find_opt summaries l with
          | Some row -> Some row.(t)
          | None -> None);
      entry_locks_at =
        (fun l t ->
          match Hashtbl.find_opt entry l with
          | Some row -> row.(t)
          | None -> LS.empty);
      entry_clock_at = (fun l t -> (Hashtbl.find clocks l).(t));
    }

  let create ?pool ?(wavefront = false) ?state ~threads () =
    ignore (state : backend option);
    if threads <= 0 then
      invalid_arg "Racecheck.Resumable.create: threads must be > 0";
    Obs.Counter.add m_checks 0;
    Obs.Counter.add m_flags 0;
    (* Materialize the pipeline metrics so clean wavefront runs still
       report them; non-wavefront runs never touch them. *)
    if wavefront && pool <> None && Obs.enabled () then begin
      Obs.Counter.add m_wf_overlap 0;
      Obs.Counter.add m_wf_p1 0;
      Obs.Gauge.set g_wf_ready 0.0;
      Obs.Span.time sp_wf_stall ignore
    end;
    let summaries = Hashtbl.create 8 in
    let entry = Hashtbl.create 64 in
    let clocks = Hashtbl.create 8 in
    {
      threads;
      pool;
      wavefront = wavefront && pool <> None;
      rows = Hashtbl.create 8;
      summaries;
      pending = Hashtbl.create 8;
      entry;
      clocks;
      stats = Hashtbl.create 64;
      ctx = make_ctx_of ~threads ~summaries ~entry ~clocks;
      races = [];
      processed = 0;
      epochs_fed = 0;
    }

  let epochs_fed st = st.epochs_fed

  let commit st ~epoch:l ~tid o =
    st.races <- List.rev_append o.bo_races st.races;
    let srow =
      match Hashtbl.find_opt st.stats l with
      | Some s -> s
      | None ->
        let s = Array.make st.threads zero_stats in
        Hashtbl.replace st.stats l s;
        s
    in
    srow.(tid) <- o.bo_stats;
    commit_obs ~threads:st.threads ~epoch:l ~tid o

  (* Wavefront mode: land an in-flight pass-1 row into [st.summaries].
     Master-side only; no-op for rows summarized synchronously. *)
  let resolve_summaries st l =
    match Hashtbl.find_opt st.pending l with
    | None -> ()
    | Some futs ->
      let land_row () = Array.map Butterfly.Domain_pool.await futs in
      let row =
        if Array.for_all Butterfly.Domain_pool.poll futs then land_row ()
        else Obs.Span.time sp_wf_stall land_row
      in
      Hashtbl.replace st.summaries l row;
      Hashtbl.remove st.pending l;
      if Obs.enabled () then
        Obs.Gauge.set g_wf_ready
          (float_of_int (Hashtbl.length st.pending * st.threads))

  let entry_row st l =
    match Hashtbl.find_opt st.entry l with
    | Some row -> row
    | None -> Array.make st.threads LS.empty

  let advance_entry st l =
    if l >= 1 && not (Hashtbl.mem st.entry l) then begin
      let prev = entry_row st (l - 1) in
      let srow = Hashtbl.find_opt st.summaries (l - 1) in
      Hashtbl.replace st.entry l
        (Array.init st.threads (fun t ->
             match srow with
             | Some row -> entry_step prev.(t) row.(t)
             | None -> prev.(t)))
    end

  (* Process epoch [st.processed]: the same prepare/task/commit sequence
     as the batch drivers, one epoch at a time, then retire the rows the
     window has passed (raw/summary rows < l). *)
  let process_one st =
    let l = st.processed in
    (* eval_block reads summary rows l-1 and l: land any in flight. *)
    resolve_summaries st (l - 1);
    resolve_summaries st l;
    advance_entry st l;
    Hashtbl.replace st.clocks l
      (Array.init st.threads (fun t ->
           entry_clock ~threads:st.threads ~summary_at:st.ctx.summary_at
             ~epoch:l ~tid:t));
    let row = Hashtbl.find st.rows l in
    let task tid =
      Obs.Scope.with_scope ~epoch:l ~tid ~phase:"pass2" (fun () ->
          eval_block st.ctx ~epoch:l ~tid
            (Butterfly.Block.make ~epoch:l ~tid row.(tid)))
    in
    (match st.pool with
    | None ->
      for tid = 0 to st.threads - 1 do
        commit st ~epoch:l ~tid (task tid)
      done
    | Some pool ->
      let results =
        Butterfly.Domain_pool.map_array pool task
          (Array.init st.threads Fun.id)
      in
      Array.iteri (fun tid r -> commit st ~epoch:l ~tid r) results);
    st.processed <- l + 1;
    Hashtbl.remove st.clocks l;
    if l > 0 then begin
      Hashtbl.remove st.rows (l - 1);
      Hashtbl.remove st.summaries (l - 1)
    end

  (* Epoch l reads nothing of row l+1, but the one-epoch lag below keeps
     the wavefront pass-1 pipeline genuinely ahead of the pass-2 cursor;
     [finish] drains the rest.  The lag is invisible to results. *)
  let feed_epoch st row =
    if Array.length row <> st.threads then
      invalid_arg "Racecheck.Resumable.feed_epoch: wrong row width";
    let epoch = st.epochs_fed in
    Hashtbl.replace st.rows epoch row;
    (match st.pool with
    | Some pool when st.wavefront ->
      (* Pipeline pass 1: summaries run on workers while the master
         checks older epochs; [summarize_block] is pure, so the deferred
         commit is invisible to results. *)
      Hashtbl.replace st.pending epoch
        (Array.mapi
           (fun tid instrs ->
             Butterfly.Domain_pool.async pool (fun () ->
                 Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                     summarize_block ~threads:st.threads
                       (Butterfly.Block.make ~epoch ~tid instrs))))
           row);
      if Obs.enabled () then begin
        if epoch > st.processed then Obs.Counter.add m_wf_p1 st.threads;
        let depth = Hashtbl.length st.pending in
        if depth > 1 then Obs.Counter.incr m_wf_overlap;
        Obs.Gauge.set g_wf_ready (float_of_int (depth * st.threads))
      end
    | _ ->
      Hashtbl.replace st.summaries epoch
        (Array.mapi
           (fun tid instrs ->
             Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                 summarize_block ~threads:st.threads
                   (Butterfly.Block.make ~epoch ~tid instrs)))
           row));
    st.epochs_fed <- epoch + 1;
    while st.processed <= st.epochs_fed - 2 do
      process_one st
    done

  let finish st =
    (* An empty program still owns one (empty) epoch — mirror
       [Epochs.of_program]. *)
    if st.epochs_fed = 0 then feed_epoch st (Array.make st.threads [||]);
    while st.processed < st.epochs_fed do
      process_one st
    done;
    let num_l = st.epochs_fed in
    (* Final lock state past the last epoch. *)
    resolve_summaries st (num_l - 1);
    advance_entry st num_l;
    {
      races = List.rev st.races;
      entry_locks =
        Array.init (num_l + 1) (fun l ->
            Array.map LS.elements (entry_row st l));
      block_stats =
        Array.init st.threads (fun tid ->
            Array.init num_l (fun l ->
                match Hashtbl.find_opt st.stats l with
                | Some row -> row.(tid)
                | None -> zero_stats));
    }

  let put_stats w (s : block_stats) =
    let module W = Tracing.Binio.W in
    W.varint w s.instrs;
    W.varint w s.accesses;
    W.varint w s.pairs_checked;
    W.varint w s.races

  let get_stats r =
    let module R = Tracing.Binio.R in
    let instrs = R.varint r in
    let accesses = R.varint r in
    let pairs_checked = R.varint r in
    let races = R.varint r in
    { instrs; accesses; pairs_checked; races }

  let put_race w (rc : race) =
    let module W = Tracing.Binio.W in
    Lg_io.put_id w rc.a;
    W.bool w (rc.a_kind = W);
    Lg_io.put_id w rc.b;
    W.bool w (rc.b_kind = W);
    W.sint w rc.addr

  let get_race r =
    let module R = Tracing.Binio.R in
    let a = Lg_io.get_id r in
    let a_kind = if R.bool r then W else R in
    let b = Lg_io.get_id r in
    let b_kind = if R.bool r then W else R in
    let addr = R.sint r in
    { a; a_kind; b; b_kind; addr }

  let encode st =
    let module W = Tracing.Binio.W in
    let w = W.create () in
    W.varint w st.threads;
    W.varint w st.epochs_fed;
    W.varint w st.processed;
    W.list w put_race st.races;
    W.list w
      (fun w (epoch, row) ->
        W.varint w epoch;
        W.array w put_stats row)
      (Lg_io.sorted_entries st.stats);
    W.list w
      (fun w (l, row) ->
        W.varint w l;
        W.array w (fun w s -> W.list w (fun w x -> W.sint w x) (LS.elements s)) row)
      (Lg_io.sorted_entries st.entry);
    W.list w
      (fun w (epoch, row) ->
        W.varint w epoch;
        W.array w Lg_io.put_instrs row)
      (Lg_io.sorted_entries st.rows);
    W.contents w

  let decode ?pool ?(wavefront = false) ?state s =
    ignore (state : backend option);
    let module R = Tracing.Binio.R in
    match
      let r = R.of_string s in
      let threads = R.varint r in
      if threads = 0 then raise (R.Corrupt "zero threads");
      let epochs_fed = R.varint r in
      let processed = R.varint r in
      let races = R.list r get_race in
      let stats = Hashtbl.create 64 in
      ignore
        (R.list r (fun r ->
             let epoch = R.varint r in
             let row = R.array r get_stats in
             if Array.length row <> threads then
               raise (R.Corrupt "stats row width mismatch");
             Hashtbl.replace stats epoch row));
      let entry = Hashtbl.create 64 in
      ignore
        (R.list r (fun r ->
             let l = R.varint r in
             let row =
               R.array r (fun r -> LS.of_list (R.list r (fun r -> R.sint r)))
             in
             if Array.length row <> threads then
               raise (R.Corrupt "entry-lock row width mismatch");
             Hashtbl.replace entry l row));
      let rows = Hashtbl.create 8 in
      ignore
        (R.list r (fun r ->
             let epoch = R.varint r in
             let row = R.array r Lg_io.get_instrs in
             if Array.length row <> threads then
               raise (R.Corrupt "instr row width mismatch");
             Hashtbl.replace rows epoch row));
      R.expect_end r;
      let summaries = Hashtbl.create 8 in
      Hashtbl.iter
        (fun epoch row ->
          Hashtbl.replace summaries epoch
            (Array.mapi
               (fun tid instrs ->
                 summarize_block ~threads
                   (Butterfly.Block.make ~epoch ~tid instrs))
               row))
        rows;
      let clocks = Hashtbl.create 8 in
      {
        threads;
        pool;
        wavefront = wavefront && pool <> None;
        rows;
        summaries;
        pending = Hashtbl.create 8;
        entry;
        clocks;
        stats;
        ctx = make_ctx_of ~threads ~summaries ~entry ~clocks;
        races;
        processed;
        epochs_fed;
      }
    with
    | st -> Ok st
    | exception R.Corrupt m -> Error ("racecheck state: " ^ m)
end
