module IS = Butterfly.Interval_set

type error = { id : Butterfly.Instr_id.t; addrs : IS.t }

type report = {
  errors : error list;
  flagged_reads : int;
  total_reads : int;
  sos : IS.t array;
}

let obs_labels = [ ("lifeguard", "initcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc e.addrs) IS.empty r.errors

let pp_error ppf e =
  Format.fprintf ppf "possibly-uninitialized read at %a: %a"
    Butterfly.Instr_id.pp e.id IS.pp e.addrs

let fingerprint (r : report) =
  Format.asprintf "flagged=%d/%d errors=[%a] sos=[%a]" r.flagged_reads
    r.total_reads
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " pp_error))
    r.errors
    (fun ppf -> Array.iter (Format.fprintf ppf "%a; " IS.pp))
    r.sos

(* ------------------------------------------------------------------ *)
(* The analysis body, generic over the fact-set representation
   ({!Butterfly.Fact_arena.FACTS}): [Interval_facts] is the functional
   reference, [Bitset_facts] the flat fast path.  Reports and snapshots
   round-trip through {!IS.t}, so fingerprints and checkpoint payloads
   are representation-independent — the property the flat/functional
   differential battery checks. *)

module Body (F : Butterfly.Fact_arena.FACTS) = struct
  module Problem = struct
    let name = "initcheck"

    module Set = F

    let flavour = `Must

    let gen _id i =
      match Tracing.Instr.writes i with
      | Some x -> F.range x (x + 1)
      | None -> F.empty

    let kill _id i =
      match Tracing.Instr.alloc_effect i with
      | `Alloc (base, size) | `Free (base, size) -> F.range base (base + size)
      | `None -> F.empty
  end

  module A = Butterfly.Dataflow.Make (Problem)
  module S = Butterfly.Scheduler.Make (Problem)

  (* The per-instruction check, shared verbatim by the batch/streaming [run]
     drivers and the checkpointable [Resumable] engine below: a divergence
     here would break the resume-equivalence guarantee. *)
  let make_on_instr ~errors ~flagged ~total (v : A.instr_view) =
    match Tracing.Instr.reads v.instr with
    | [] -> ()
    | rs ->
      incr total;
      Obs.Counter.incr m_checks;
      let bad =
        List.fold_left
          (fun acc a ->
            if F.mem a v.in_before then acc else IS.union acc (IS.singleton a))
          IS.empty rs
      in
      if not (IS.is_empty bad) then (
        incr flagged;
        Obs.Counter.incr m_flags;
        errors := { id = v.id; addrs = bad } :: !errors)

  let run ?(wavefront = false) ?domains ?pool epochs =
    (* Materialize the check/flag counters so clean runs still report 0. *)
    Obs.Counter.add m_checks 0;
    Obs.Counter.add m_flags 0;
    let errors = ref [] in
    let flagged = ref 0 in
    let total = ref 0 in
    let on_instr = make_on_instr ~errors ~flagged ~total in
    let sos_levels =
      match (pool, domains) with
      | None, None ->
        let result = A.run ~on_instr epochs in
        result.A.sos
      | Some pool, _ ->
        let s = S.run_epochs ~pool ~wavefront ~on_instr epochs in
        S.sos_history s
      | None, Some d ->
        Butterfly.Domain_pool.with_pool ~name:"initcheck" ~domains:d
          (fun pool ->
            let s = S.run_epochs ~pool ~wavefront ~on_instr epochs in
            S.sos_history s)
    in
    if Obs.enabled () then
      Array.iter
        (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (F.cardinal s)))
        sos_levels;
    {
      errors = List.rev !errors;
      flagged_reads = !flagged;
      total_reads = !total;
      sos = Array.map F.to_intervals sos_levels;
    }

  (* ---------------------------------------------------------------- *)
  (* Checkpointable epoch-incremental engine.  Built directly on the
     streaming scheduler: InitCheck's durable state is the scheduler's
     sliding window plus the accumulated report — nothing else. *)

  module Resumable = struct
    (* Fact sets are serialized as canonical interval lists regardless of
       backend, so snapshots are backend-portable. *)
    let set_codec =
      {
        S.put_set = (fun w s -> Lg_io.put_is w (F.to_intervals s));
        get_set = (fun r -> F.of_intervals (Lg_io.get_is r));
      }

    type state = {
      sched : S.t;
      threads : int;
      errors : error list ref; (* reversed *)
      flagged : int ref;
      total : int ref;
      mutable epochs_fed : int;
    }

    let create ?pool ?(wavefront = false) ~threads () =
      Obs.Counter.add m_checks 0;
      Obs.Counter.add m_flags 0;
      let errors = ref [] and flagged = ref 0 and total = ref 0 in
      let on_instr = make_on_instr ~errors ~flagged ~total in
      {
        sched = S.create ?pool ~wavefront ~threads ~on_instr ();
        threads;
        errors;
        flagged;
        total;
        epochs_fed = 0;
      }

    let epochs_fed st = st.epochs_fed

    (* Heartbeats go out as separators, not terminators: the engine cannot
       know which epoch is the last one, and [S.finish] closes the final
       (still open) blocks exactly like [run_epochs] does — keeping the
       epoch count identical to the grid's. *)
    let feed_epoch st row =
      if Array.length row <> st.threads then
        invalid_arg "Initcheck.Resumable.feed_epoch: wrong row width";
      if st.epochs_fed > 0 then
        for tid = 0 to st.threads - 1 do
          S.feed st.sched tid Tracing.Event.Heartbeat
        done;
      Array.iteri
        (fun tid instrs ->
          Array.iter
            (fun i -> S.feed st.sched tid (Tracing.Event.Instr i))
            instrs)
        row;
      st.epochs_fed <- st.epochs_fed + 1

    let finish st =
      (* An empty program still owns one (empty) epoch — mirror
         [Epochs.of_program]. *)
      if st.epochs_fed = 0 then feed_epoch st (Array.make st.threads [||]);
      S.finish st.sched;
      let sos_levels = S.sos_history st.sched in
      if Obs.enabled () then
        Array.iter
          (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (F.cardinal s)))
          sos_levels;
      {
        errors = List.rev !(st.errors);
        flagged_reads = !(st.flagged);
        total_reads = !(st.total);
        sos = Array.map F.to_intervals sos_levels;
      }

    let encode st =
      (* Quiesce before serializing: delivering in-flight pass-2 epochs
         appends to the error list and counters captured below. *)
      S.quiesce st.sched;
      let module W = Tracing.Binio.W in
      let w = W.create () in
      W.varint w st.threads;
      W.varint w st.epochs_fed;
      W.varint w !(st.flagged);
      W.varint w !(st.total);
      W.list w
        (fun w e ->
          Lg_io.put_id w e.id;
          Lg_io.put_is w e.addrs)
        !(st.errors);
      W.string w (S.encode_state ~set:set_codec st.sched);
      W.contents w

    let decode ?pool ?(wavefront = false) s =
      let module R = Tracing.Binio.R in
      match
        let r = R.of_string s in
        let threads = R.varint r in
        let epochs_fed = R.varint r in
        let flagged = ref (R.varint r) in
        let total = ref (R.varint r) in
        let errors =
          ref
            (R.list r (fun r ->
                 let id = Lg_io.get_id r in
                 let addrs = Lg_io.get_is r in
                 { id; addrs }))
        in
        let sched_payload = R.string r in
        R.expect_end r;
        let on_instr = make_on_instr ~errors ~flagged ~total in
        let sched =
          S.decode_state ~set:set_codec ?pool ~wavefront ~on_instr
            sched_payload
        in
        { sched; threads; errors; flagged; total; epochs_fed }
      with
      | st -> Ok st
      | exception R.Corrupt m -> Error ("initcheck state: " ^ m)
  end
end

module Fn = Body (Butterfly.Fact_arena.Interval_facts)
module Fl = Body (Butterfly.Fact_arena.Bitset_facts)

type backend = [ `Functional | `Flat ]

let run ?(state = `Functional) ?wavefront ?domains ?pool epochs =
  match (state : backend) with
  | `Functional -> Fn.run ?wavefront ?domains ?pool epochs
  | `Flat -> Fl.run ?wavefront ?domains ?pool epochs

module Resumable = struct
  type state = Fn_state of Fn.Resumable.state | Fl_state of Fl.Resumable.state

  let create ?pool ?wavefront ?(state = (`Functional : backend)) ~threads () =
    match state with
    | `Functional -> Fn_state (Fn.Resumable.create ?pool ?wavefront ~threads ())
    | `Flat -> Fl_state (Fl.Resumable.create ?pool ?wavefront ~threads ())

  let feed_epoch st row =
    match st with
    | Fn_state s -> Fn.Resumable.feed_epoch s row
    | Fl_state s -> Fl.Resumable.feed_epoch s row

  let epochs_fed = function
    | Fn_state s -> Fn.Resumable.epochs_fed s
    | Fl_state s -> Fl.Resumable.epochs_fed s

  let finish = function
    | Fn_state s -> Fn.Resumable.finish s
    | Fl_state s -> Fl.Resumable.finish s

  let encode = function
    | Fn_state s -> Fn.Resumable.encode s
    | Fl_state s -> Fl.Resumable.encode s

  let decode ?pool ?wavefront ?(state = (`Functional : backend)) s =
    match state with
    | `Functional ->
      Result.map
        (fun st -> Fn_state st)
        (Fn.Resumable.decode ?pool ?wavefront s)
    | `Flat ->
      Result.map
        (fun st -> Fl_state st)
        (Fl.Resumable.decode ?pool ?wavefront s)
end
