module IS = Butterfly.Interval_set

module Problem = struct
  let name = "initcheck"

  module Set = Butterfly.Interval_set

  let flavour = `Must

  let gen _id i =
    match Tracing.Instr.writes i with
    | Some x -> IS.range x (x + 1)
    | None -> IS.empty

  let kill _id i =
    match Tracing.Instr.alloc_effect i with
    | `Alloc (base, size) | `Free (base, size) -> IS.range base (base + size)
    | `None -> IS.empty
end

module A = Butterfly.Dataflow.Make (Problem)
module S = Butterfly.Scheduler.Make (Problem)

type error = { id : Butterfly.Instr_id.t; addrs : IS.t }

type report = {
  errors : error list;
  flagged_reads : int;
  total_reads : int;
  sos : IS.t array;
}

let obs_labels = [ ("lifeguard", "initcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"

let run ?domains ?pool epochs =
  (* Materialize the check/flag counters so clean runs still report 0. *)
  Obs.Counter.add m_checks 0;
  Obs.Counter.add m_flags 0;
  let errors = ref [] in
  let flagged = ref 0 in
  let total = ref 0 in
  let on_instr (v : A.instr_view) =
    match Tracing.Instr.reads v.instr with
    | [] -> ()
    | rs ->
      incr total;
      Obs.Counter.incr m_checks;
      let bad =
        List.fold_left
          (fun acc a ->
            if IS.mem a v.in_before then acc else IS.union acc (IS.singleton a))
          IS.empty rs
      in
      if not (IS.is_empty bad) then (
        incr flagged;
        Obs.Counter.incr m_flags;
        errors := { id = v.id; addrs = bad } :: !errors)
  in
  let sos_levels =
    match (pool, domains) with
    | None, None ->
      let result = A.run ~on_instr epochs in
      result.A.sos
    | Some pool, _ ->
      let s = S.run_epochs ~pool ~on_instr epochs in
      S.sos_history s
    | None, Some d ->
      Butterfly.Domain_pool.with_pool ~name:"initcheck" ~domains:d (fun pool ->
          let s = S.run_epochs ~pool ~on_instr epochs in
          S.sos_history s)
  in
  if Obs.enabled () then
    Array.iter
      (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (IS.cardinal s)))
      sos_levels;
  {
    errors = List.rev !errors;
    flagged_reads = !flagged;
    total_reads = !total;
    sos = sos_levels;
  }

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc e.addrs) IS.empty r.errors

let pp_error ppf e =
  Format.fprintf ppf "possibly-uninitialized read at %a: %a"
    Butterfly.Instr_id.pp e.id IS.pp e.addrs
