type pos = int * int

let pos_leq (l, i) (l', i') = l < l' || (l = l' && i <= i')
let pos_lt (l, i) (l', i') = l < l' || (l = l' && i < i')
let pos_max a b = if pos_leq a b then b else a
let pos_min a b = if pos_leq a b then a else b

type t = pos array

let make ~threads p = Array.make threads p
let get (c : t) u = c.(u)

let with_component (c : t) u p =
  let c' = Array.copy c in
  c'.(u) <- p;
  c'

let leq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> pos_leq x y) a b

let equal (a : t) b = a = b
let join a b = Array.map2 pos_max a b
let meet a b = Array.map2 pos_min a b

let pp ppf c =
  Format.fprintf ppf "[";
  Array.iteri
    (fun u (l, i) ->
      if u > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "T%d:(%d,%d)" u l i)
    c;
  Format.fprintf ppf "]"
