module W = Tracing.Binio.W
module R = Tracing.Binio.R
module IS = Butterfly.Interval_set

let put_is w is =
  W.list w
    (fun w (lo, hi) ->
      W.sint w lo;
      W.sint w hi)
    (IS.intervals is)

let get_is r =
  IS.of_intervals
    (R.list r (fun r ->
         let lo = R.sint r in
         let hi = R.sint r in
         (lo, hi)))

let put_id w (id : Butterfly.Instr_id.t) =
  W.sint w id.epoch;
  W.varint w id.tid;
  W.varint w id.index

let get_id r =
  let epoch = R.sint r in
  let tid = R.varint r in
  let index = R.varint r in
  Butterfly.Instr_id.make ~epoch ~tid ~index

let put_instrs w instrs = W.array w Tracing.Trace_codec.put_instr instrs
let get_instrs r = R.array r Tracing.Trace_codec.read_instr

let sorted_entries tbl =
  List.sort
    (fun (a, _) (b, _) -> compare (a : int) b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
