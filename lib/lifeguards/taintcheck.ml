module AS = Set.Make (Int)
module Id = Butterfly.Instr_id

type rhs = Bot | Top | Inherit of int list
type tf = { tf_id : Id.t; dst : int; rhs : rhs }

type error = { id : Id.t; sink : Tracing.Addr.t }
type block_stats = { instrs : int; mem_events : int; checks_resolved : int }

type report = {
  errors : error list;
  sos_tainted : Tracing.Addr.t list array;
  block_stats : block_stats array array;
}

(* Test-only fault injection.  The QA mutation smoke test flips this to
   prove the differential fuzz engine detects an unsound meet: dropping a
   binop's second source makes butterfly TaintCheck miss taint flowing
   through it, which the sequential oracle (Taintcheck_seq over valid
   orderings) still reports — a Theorem 6.2 violation the fuzzer must
   surface.  Never set outside tests. *)
module Testing = struct
  let break_binop_meet = ref false
end

let tf_of_instr id (i : Tracing.Instr.t) =
  match i with
  | Taint_source x -> Some { tf_id = id; dst = x; rhs = Bot }
  | Untaint x | Assign_const x -> Some { tf_id = id; dst = x; rhs = Top }
  | Assign_unop (x, a) -> Some { tf_id = id; dst = x; rhs = Inherit [ a ] }
  | Assign_binop (x, a, b) ->
    let srcs =
      if !Testing.break_binop_meet || a = b then [ a ] else [ a; b ]
    in
    Some { tf_id = id; dst = x; rhs = Inherit srcs }
  | Read _ | Malloc _ | Free _ | Jump_via _ | Syscall_arg _ | Nop -> None

(* Per-block pass-1 summary: transfer functions indexed by destination. *)
type block_tfs = { by_dst : (int, tf list) Hashtbl.t }

let summarize_block block =
  let by_dst = Hashtbl.create 16 in
  Butterfly.Block.iteri
    (fun id i ->
      match tf_of_instr id i with
      | None -> ()
      | Some tf ->
        let prev = Option.value (Hashtbl.find_opt by_dst tf.dst) ~default:[] in
        Hashtbl.replace by_dst tf.dst (tf :: prev))
    block;
  { by_dst }

(* SC-termination state: per-thread upper bound on the position of the next
   transfer function the chase may follow from that thread. *)
module Pos_map = Map.Make (Int)

let pos_of (id : Id.t) = (id.epoch, id.index)

let sc_admissible sc_pos (tf : tf) =
  match Pos_map.find_opt tf.tf_id.tid sc_pos with
  | None -> true
  | Some (l, i) ->
    let l', i' = pos_of tf.tf_id in
    l' < l || (l' = l && i' < i)

let sc_advance sc_pos (tf : tf) = Pos_map.add tf.tf_id.tid (pos_of tf.tf_id) sc_pos

module Tf_set = Set.Make (struct
  type t = Id.t

  let compare = Id.compare
end)

let obs_labels = [ ("lifeguard", "taintcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"

(* Checks phase 1 could not prove tainted, forcing the phase-2 chase of
   Lemma 6.3 — the contended path a coarser phase split would serialize. *)
let m_phase2 = Obs.Counter.make ~labels:obs_labels "lifeguard.phase2_rechecks"

(* Taintcheck does not ride on [Dataflow.Make], so it emits the pipeline
   counters itself to keep [--stats] reports uniform across lifeguards. *)
let pipe_labels = [ ("problem", "taintcheck"); ("driver", "batch") ]
let m_epochs = Obs.Counter.make ~labels:pipe_labels "butterfly.epochs_processed"
let m_instrs = Obs.Counter.make ~labels:pipe_labels "butterfly.pass2_instrs"

(* Everything pass 2 learns about one body block, produced without touching
   shared state.  Evaluating block (l,t) reads only inputs frozen before
   epoch l's barrier opens — the pass-1 transfer functions of the whole
   grid, LASTCHECK results of epochs <= l-1, and SOS_l — so it can run on a
   pool worker.  The master commits outcomes epoch-major / thread-minor,
   which reproduces the sequential error list, LASTCHECK tables, statistics
   and telemetry byte for byte. *)
type block_outcome = {
  bo_errors : error list;  (* in instruction order *)
  bo_lastcheck : (int, bool) Hashtbl.t;
  bo_stats : block_stats;
  bo_lsos_card : int;
  bo_phase2 : int;
}

let run_with ~sequential ~two_phase ~pool epochs =
  (* Materialize the check/flag counters so clean runs still report 0. *)
  Obs.Counter.add m_checks 0;
  Obs.Counter.add m_flags 0;
  let num_l = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  (* Pass 1 is per-block-local, so the pooled mode fans the whole grid out
     up front; pass 2 below then sees every wing already summarized. *)
  let tfs =
    Butterfly.Scheduler.Epochwise.map_grid ?pool ~num_epochs:num_l ~threads
      (fun ~epoch ~tid ->
        summarize_block (Butterfly.Epochs.block epochs ~epoch ~tid))
  in
  let tfs_for ~scope ~exclude_tid a =
    List.concat_map
      (fun l ->
        if l < 0 || l >= num_l then []
        else
          List.concat
            (List.init threads (fun t' ->
                 if Some t' = exclude_tid then []
                 else
                   Option.value (Hashtbl.find_opt tfs.(l).(t').by_dst a)
                     ~default:[])))
      scope
  in
  (* LASTCHECK results: lastcheck.(l).(t) maps assigned locations to their
     final resolved taint in block (l,t).  Row l is written only by the
     master's epoch-l commits; workers evaluating epoch l read rows <= l-1. *)
  let lastcheck =
    Array.init num_l (fun _ -> Array.init threads (fun _ -> Hashtbl.create 16))
  in
  let gen_block l t =
    if l < 0 || l >= num_l then AS.empty
    else
      Hashtbl.fold
        (fun x tainted acc -> if tainted then AS.add x acc else acc)
        lastcheck.(l).(t) AS.empty
  in
  let kill_block l t =
    if l < 0 || l >= num_l then AS.empty
    else
      Hashtbl.fold
        (fun x tainted acc -> if not tainted then AS.add x acc else acc)
        lastcheck.(l).(t) AS.empty
  in
  (* LASTCHECK(x, (l-1,l), t): the last check spanning the two epochs. *)
  let lastcheck_span x l t =
    let look l =
      if l < 0 || l >= num_l then None else Hashtbl.find_opt lastcheck.(l).(t) x
    in
    match look l with Some r -> Some r | None -> look (l - 1)
  in
  (* SOS over tainted addresses, with the reaching-definitions update. *)
  let sos = Array.make (num_l + 2) AS.empty in
  let epoch_gen l =
    let acc = ref AS.empty in
    for t = 0 to threads - 1 do
      acc := AS.union !acc (gen_block l t)
    done;
    !acc
  in
  let epoch_kill l =
    let acc = ref AS.empty in
    for t = 0 to threads - 1 do
      AS.iter
        (fun x ->
          let others_ok =
            List.for_all
              (fun t' ->
                t' = t
                ||
                match lastcheck_span x l t' with
                | None -> true (* ∅: never assigned nearby *)
                | Some tainted -> not tainted)
              (List.init threads Fun.id)
          in
          if others_ok then acc := AS.add x !acc)
        (kill_block l t)
    done;
    !acc
  in
  let advance_sos l =
    if l >= 2 then
      sos.(l) <- AS.union (epoch_gen (l - 2)) (AS.diff sos.(l - 1) (epoch_kill (l - 2)))
  in
  let eval_block ~epoch:l ~tid =
    let block = Butterfly.Epochs.block epochs ~epoch:l ~tid in
    (* LSOS via the May rule, with the resurrection clause. *)
    let head_gen = gen_block (l - 1) tid and head_kill = kill_block (l - 1) tid in
    let others_gen_l2 =
      let acc = ref AS.empty in
      for t' = 0 to threads - 1 do
        if t' <> tid then acc := AS.union !acc (gen_block (l - 2) t')
      done;
      !acc
    in
    let lsos =
      AS.union head_gen
        (AS.union
           (AS.diff sos.(l) head_kill)
           (AS.inter (AS.inter sos.(l) head_kill) others_gen_l2))
    in
    let local : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    (* A chain's base taint sources: something our block already resolved
       as tainted (the wing read may interleave after our write), or the
       strongly-ordered past.  A local untaint does NOT mask the LSOS for
       wing chains: the wing may read the location before our untaint. *)
    let base_tainted a =
      Hashtbl.find_opt local a = Some true || AS.mem a lsos
    in
    (* Under sequential consistency a wing chain only uses other threads'
       transfer functions (the own thread's effects flow through LSOS and
       [local]); under relaxed models the own thread's independent writes
       may become visible out of program order (Figure 2), so its
       transfer functions join the chase and only the per-location
       termination rules bound it. *)
    let exclude_tid = if sequential then Some tid else None in
    (* Two-phase resolution (Lemma 6.3): phase 1 chases transfer
       functions of epochs l-1 and l; phase 2 of epochs l and l+1, where
       a parent already proven tainted by phase 1 stays tainted.  Both
       phases run here, on the worker: phase 2 reads the same frozen
       inputs as phase 1, and its verdicts feed [local] (hence later
       instructions of this very block), so deferring it past the epoch
       barrier would change results, not just scheduling. *)
    let checks = ref 0 in
    let phase2 = ref 0 in
    let phase1_memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    let rec resolve ~scope ~parent_extra a visited sc_pos =
      List.exists
        (fun tf ->
          incr checks;
          (not (Tf_set.mem tf.tf_id visited))
          && ((not sequential) || sc_admissible sc_pos tf)
          &&
          let visited = Tf_set.add tf.tf_id visited in
          let sc_pos = if sequential then sc_advance sc_pos tf else sc_pos in
          match tf.rhs with
          | Bot -> true
          | Top -> false
          | Inherit ps ->
            List.exists
              (fun p ->
                base_tainted p || parent_extra p
                || resolve ~scope ~parent_extra p visited sc_pos)
              ps)
        (tfs_for ~scope ~exclude_tid a)
    in
    let phase1 a =
      match Hashtbl.find_opt phase1_memo a with
      | Some r -> r
      | None ->
        let r =
          resolve ~scope:[ l - 1; l ]
            ~parent_extra:(fun _ -> false)
            a Tf_set.empty Pos_map.empty
        in
        Hashtbl.replace phase1_memo a r;
        r
    in
    let wing_may a =
      if two_phase then
        phase1 a
        || (incr phase2;
            resolve ~scope:[ l; l + 1 ] ~parent_extra:phase1 a Tf_set.empty
              Pos_map.empty)
      else
        (* Ablation: one phase over the whole window.  Still sound, but
           admits impossible chains such as an epoch l+1 taint feeding an
           epoch l-1 read (the example of Section 6.2). *)
        resolve ~scope:[ l - 1; l; l + 1 ]
          ~parent_extra:(fun _ -> false)
          a Tf_set.empty Pos_map.empty
    in
    let may_tainted a =
      match Hashtbl.find_opt local a with
      | Some true -> true
      | Some false -> wing_may a
      | None -> AS.mem a lsos || wing_may a
    in
    let n_instrs = ref 0 and n_mem = ref 0 in
    let errs = ref [] in
    Butterfly.Block.iteri
      (fun id instr ->
        incr n_instrs;
        if Tracing.Instr.is_memory_event instr then incr n_mem;
        (match Tracing.Instr.taint_sink instr with
        | Some x -> if may_tainted x then errs := { id; sink = x } :: !errs
        | None -> ());
        match tf_of_instr id instr with
        | None -> ()
        | Some tf ->
          let result =
            match tf.rhs with
            | Bot -> true
            | Top -> false
            | Inherit ps -> List.exists may_tainted ps
          in
          Hashtbl.replace local tf.dst result)
      block;
    {
      bo_errors = List.rev !errs;
      bo_lastcheck = local;
      bo_stats =
        { instrs = !n_instrs; mem_events = !n_mem; checks_resolved = !checks };
      bo_lsos_card = AS.cardinal lsos;
      bo_phase2 = !phase2;
    }
  in
  let errors = ref [] in
  let stats =
    Array.init threads (fun _ ->
        Array.init num_l (fun _ -> { instrs = 0; mem_events = 0; checks_resolved = 0 }))
  in
  let commit ~epoch:l ~tid o =
    errors := List.rev_append o.bo_errors !errors;
    Hashtbl.iter (fun x r -> Hashtbl.replace lastcheck.(l).(tid) x r) o.bo_lastcheck;
    stats.(tid).(l) <- o.bo_stats;
    Obs.Counter.add m_checks o.bo_stats.checks_resolved;
    Obs.Counter.add m_flags (List.length o.bo_errors);
    Obs.Counter.add m_phase2 o.bo_phase2;
    Obs.Counter.add m_instrs o.bo_stats.instrs;
    if Obs.enabled () then
      Obs.Gauge.set_max g_set_hwm (float_of_int o.bo_lsos_card);
    if tid = threads - 1 then Obs.Counter.incr m_epochs
  in
  Butterfly.Scheduler.Epochwise.run ?pool ~num_epochs:num_l ~threads
    ~prepare:advance_sos ~task:eval_block ~commit ();
  (* Final SOS entries past the last window. *)
  advance_sos num_l;
  advance_sos (num_l + 1);
  {
    errors = List.rev !errors;
    sos_tainted = Array.map AS.elements sos;
    block_stats = stats;
  }

let run ?(sequential = true) ?(two_phase = true) ?domains ?pool epochs =
  match (pool, domains) with
  | Some _, _ -> run_with ~sequential ~two_phase ~pool epochs
  | None, Some d ->
    Butterfly.Domain_pool.with_pool ~name:"taintcheck" ~domains:d (fun p ->
        run_with ~sequential ~two_phase ~pool:(Some p) epochs)
  | None, None -> run_with ~sequential ~two_phase ~pool:None epochs

let flagged_sinks r =
  List.map (fun e -> e.sink) r.errors |> List.sort_uniq Int.compare

let pp_error ppf e =
  Format.fprintf ppf "tainted sink %a at %a" Tracing.Addr.pp e.sink Id.pp e.id
