module AS = Set.Make (Int)
module Id = Butterfly.Instr_id

type rhs = Bot | Top | Inherit of int list
type tf = { tf_id : Id.t; dst : int; rhs : rhs }

type error = { id : Id.t; sink : Tracing.Addr.t }
type block_stats = { instrs : int; mem_events : int; checks_resolved : int }

type report = {
  errors : error list;
  sos_tainted : Tracing.Addr.t list array;
  block_stats : block_stats array array;
}

(* Test-only fault injection.  The QA mutation smoke test flips this to
   prove the differential fuzz engine detects an unsound meet: dropping a
   binop's second source makes butterfly TaintCheck miss taint flowing
   through it, which the sequential oracle (Taintcheck_seq over valid
   orderings) still reports — a Theorem 6.2 violation the fuzzer must
   surface.  Never set outside tests. *)
module Testing = struct
  let break_binop_meet = ref false
end

let tf_of_instr id (i : Tracing.Instr.t) =
  match i with
  | Taint_source x -> Some { tf_id = id; dst = x; rhs = Bot }
  | Untaint x | Assign_const x -> Some { tf_id = id; dst = x; rhs = Top }
  | Assign_unop (x, a) -> Some { tf_id = id; dst = x; rhs = Inherit [ a ] }
  | Assign_binop (x, a, b) ->
    let srcs =
      if !Testing.break_binop_meet || a = b then [ a ] else [ a; b ]
    in
    Some { tf_id = id; dst = x; rhs = Inherit srcs }
  | Read _ | Malloc _ | Free _ | Jump_via _ | Syscall_arg _ | Nop | Lock _
  | Unlock _ | Fork _ | Join _ ->
    None

(* Per-block pass-1 summary: transfer functions indexed by destination. *)
type block_tfs = { by_dst : (int, tf list) Hashtbl.t }

let summarize_block block =
  let by_dst = Hashtbl.create 16 in
  Butterfly.Block.iteri
    (fun id i ->
      match tf_of_instr id i with
      | None -> ()
      | Some tf ->
        let prev = Option.value (Hashtbl.find_opt by_dst tf.dst) ~default:[] in
        Hashtbl.replace by_dst tf.dst (tf :: prev))
    block;
  { by_dst }

(* SC-termination state: per-thread upper bound on the position of the next
   transfer function the chase may follow from that thread. *)
module Pos_map = Map.Make (Int)

let pos_of (id : Id.t) = (id.epoch, id.index)

let sc_admissible sc_pos (tf : tf) =
  match Pos_map.find_opt tf.tf_id.tid sc_pos with
  | None -> true
  | Some (l, i) ->
    let l', i' = pos_of tf.tf_id in
    l' < l || (l' = l && i' < i)

let sc_advance sc_pos (tf : tf) = Pos_map.add tf.tf_id.tid (pos_of tf.tf_id) sc_pos

module Tf_set = Set.Make (struct
  type t = Id.t

  let compare = Id.compare
end)

let obs_labels = [ ("lifeguard", "taintcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"

(* Checks phase 1 could not prove tainted, forcing the phase-2 chase of
   Lemma 6.3 — the contended path a coarser phase split would serialize. *)
let m_phase2 = Obs.Counter.make ~labels:obs_labels "lifeguard.phase2_rechecks"

(* Taintcheck does not ride on [Dataflow.Make], so it emits the pipeline
   counters itself to keep [--stats] reports uniform across lifeguards. *)
let pipe_labels = [ ("problem", "taintcheck"); ("driver", "batch") ]
let m_epochs = Obs.Counter.make ~labels:pipe_labels "butterfly.epochs_processed"
let m_instrs = Obs.Counter.make ~labels:pipe_labels "butterfly.pass2_instrs"

(* The resumable engine's wavefront mode does its own pass-1 pipelining
   (it cannot ride [Scheduler.Wavefront]: rows arrive incrementally), so
   it also carries the pipeline telemetry itself, under the same names
   as the scheduler drivers. *)
let wf_labels = [ ("problem", "taintcheck"); ("driver", "wavefront") ]
let g_wf_ready =
  Obs.Gauge.make ~labels:wf_labels "scheduler.wavefront.ready_queue"
let sp_wf_stall =
  Obs.Span.make ~labels:wf_labels "scheduler.wavefront.stall_ns"
let m_wf_overlap =
  Obs.Counter.make ~labels:wf_labels "scheduler.wavefront.overlapped_epochs"
let m_wf_p1 =
  Obs.Counter.make ~labels:wf_labels "scheduler.wavefront.pipelined_pass1_blocks"

(* Everything pass 2 learns about one body block, produced without touching
   shared state.  Evaluating block (l,t) reads only inputs frozen before
   epoch l's barrier opens — the pass-1 transfer functions of the whole
   grid, LASTCHECK results of epochs <= l-1, and SOS_l — so it can run on a
   pool worker.  The master commits outcomes epoch-major / thread-minor,
   which reproduces the sequential error list, LASTCHECK tables, statistics
   and telemetry byte for byte. *)
type block_outcome = {
  bo_errors : error list;  (* in instruction order *)
  bo_lastcheck : (int, bool) Hashtbl.t;
  bo_stats : block_stats;
  bo_lsos_card : int;
  bo_phase2 : int;
}

let flagged_sinks (r : report) =
  List.map (fun e -> e.sink) r.errors |> List.sort_uniq Int.compare

let pp_error ppf e =
  Format.fprintf ppf "tainted sink %a at %a" Tracing.Addr.pp e.sink Id.pp e.id

let fingerprint (r : report) =
  let fp_stats ppf grid =
    Array.iteri
      (fun t row ->
        Array.iteri
          (fun l (s : block_stats) ->
            Format.fprintf ppf "(%d,%d)%d/%d/%d " t l s.instrs s.mem_events
              s.checks_resolved)
          row)
      grid
  in
  Format.asprintf "errors=[%a] sos_tainted=[%a] stats=[%a]"
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " pp_error))
    r.errors
    (fun ppf ->
      Array.iter (fun xs ->
          List.iter (Format.fprintf ppf "%d,") xs;
          Format.fprintf ppf "; "))
    r.sos_tainted fp_stats r.block_stats

(* ------------------------------------------------------------------ *)
(* The taint-fact set the analysis core is generic over.  [AS] (the
   functional reference) and [Butterfly.Fact_arena.Bitset] (the flat
   backend) both satisfy it; [elements] must be sorted ascending so the
   report and the snapshot payloads are representation-independent. *)

module type TAINT_SET = sig
  type t

  val empty : t
  val mem : int -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val cardinal : t -> int
  val iter : (int -> unit) -> t -> unit
  val elements : t -> int list
  val of_list : int list -> t
end

(* ------------------------------------------------------------------ *)
(* The evaluation core, parameterized over how its frozen inputs are
   looked up: [run_with] instantiates [ctx] over whole-grid arrays, the
   checkpointable [Resumable] engine over a pruned sliding window.  The
   two drivers share this code verbatim — a divergence here would break
   the resume-equivalence guarantee.  Accessors return [None] (or
   [S.empty]) outside the grid, which subsumes the bounds checks the
   array-backed driver used to do inline.

   The functor is additionally generic over the fact-set representation.
   With [memo_genkill] (the flat backend), the per-block GEN/KILL sets
   derived from LASTCHECK tables are cached per (epoch, tid): a row is
   only ever queried after its commits have sealed it (eval of epoch l
   reads rows <= l-1; [prepare l] reads row l-2; both run after every
   commit of those rows under all drivers — the Lemma 5.2 dependence
   argument), so the cache can never observe a half-built row.  The
   functional backend keeps [memo_genkill = false] and stays exactly the
   original element-fold reference path. *)

module Core (X : sig
  module S : TAINT_SET

  val memo_genkill : bool
end) =
struct
  module S = X.S

  type ctx = {
    c_threads : int;
    c_sequential : bool;
    c_two_phase : bool;
    tfs_at : int -> int -> block_tfs option;
    lastcheck_at : int -> int -> (int, bool) Hashtbl.t option;
    sos_at : int -> S.t;
    c_genkill : (int, S.t * S.t) Hashtbl.t option;
        (* flat backend: (l * threads + t) -> (gen, kill) *)
  }

  let make_ctx ~threads ~sequential ~two_phase ~tfs_at ~lastcheck_at ~sos_at =
    {
      c_threads = threads;
      c_sequential = sequential;
      c_two_phase = two_phase;
      tfs_at;
      lastcheck_at;
      sos_at;
      c_genkill = (if X.memo_genkill then Some (Hashtbl.create 64) else None);
    }

  let compute_gen c l t =
    match c.lastcheck_at l t with
    | None -> S.empty
    | Some h ->
      S.of_list
        (Hashtbl.fold
           (fun x tainted acc -> if tainted then x :: acc else acc)
           h [])

  let compute_kill c l t =
    match c.lastcheck_at l t with
    | None -> S.empty
    | Some h ->
      S.of_list
        (Hashtbl.fold
           (fun x tainted acc -> if not tainted then x :: acc else acc)
           h [])

  let genkill_memo c l t memo =
    let key = (l * c.c_threads) + t in
    match Hashtbl.find_opt memo key with
    | Some p -> p
    | None ->
      let p = (compute_gen c l t, compute_kill c l t) in
      Hashtbl.replace memo key p;
      p

  let gen_block c l t =
    match c.c_genkill with
    | None -> compute_gen c l t
    | Some memo -> fst (genkill_memo c l t memo)

  let kill_block c l t =
    match c.c_genkill with
    | None -> compute_kill c l t
    | Some memo -> snd (genkill_memo c l t memo)

  (* Drop cached rows the sliding window has passed. *)
  let forget_genkill c l =
    match c.c_genkill with
    | None -> ()
    | Some memo ->
      for t = 0 to c.c_threads - 1 do
        Hashtbl.remove memo ((l * c.c_threads) + t)
      done

  (* LASTCHECK(x, (l-1,l), t): the last check spanning the two epochs. *)
  let lastcheck_span c x l t =
    let look l =
      match c.lastcheck_at l t with
      | None -> None
      | Some h -> Hashtbl.find_opt h x
    in
    match look l with Some r -> Some r | None -> look (l - 1)

  let epoch_gen c l =
    let acc = ref S.empty in
    for t = 0 to c.c_threads - 1 do
      acc := S.union !acc (gen_block c l t)
    done;
    !acc

  let epoch_kill c l =
    let acc = ref [] in
    for t = 0 to c.c_threads - 1 do
      S.iter
        (fun x ->
          let others_ok =
            List.for_all
              (fun t' ->
                t' = t
                ||
                match lastcheck_span c x l t' with
                | None -> true (* ∅: never assigned nearby *)
                | Some tainted -> not tainted)
              (List.init c.c_threads Fun.id)
          in
          if others_ok then acc := x :: !acc)
        (kill_block c l t)
    done;
    S.of_list !acc

  (* SOS over tainted addresses, with the reaching-definitions update:
     SOS_l = GEN_{l-2} ∪ (SOS_{l-1} − KILL_{l-2}), for l >= 2. *)
  let sos_step c ~prev l =
    S.union (epoch_gen c (l - 2)) (S.diff prev (epoch_kill c (l - 2)))

  let tfs_for c ~scope ~exclude_tid a =
    List.concat_map
      (fun l ->
        List.concat
          (List.init c.c_threads (fun t' ->
               if Some t' = exclude_tid then []
               else
                 match c.tfs_at l t' with
                 | None -> []
                 | Some tfs ->
                   Option.value (Hashtbl.find_opt tfs.by_dst a) ~default:[])))
      scope

  let eval_block c ~epoch:l ~tid block =
    (* LSOS via the May rule, with the resurrection clause. *)
    let head_gen = gen_block c (l - 1) tid
    and head_kill = kill_block c (l - 1) tid in
    let others_gen_l2 =
      let acc = ref S.empty in
      for t' = 0 to c.c_threads - 1 do
        if t' <> tid then acc := S.union !acc (gen_block c (l - 2) t')
      done;
      !acc
    in
    let sos_l = c.sos_at l in
    let lsos =
      S.union head_gen
        (S.union
           (S.diff sos_l head_kill)
           (S.inter (S.inter sos_l head_kill) others_gen_l2))
    in
    let local : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    (* A chain's base taint sources: something our block already resolved
       as tainted (the wing read may interleave after our write), or the
       strongly-ordered past.  A local untaint does NOT mask the LSOS for
       wing chains: the wing may read the location before our untaint. *)
    let base_tainted a =
      Hashtbl.find_opt local a = Some true || S.mem a lsos
    in
    (* Under sequential consistency a wing chain only uses other threads'
       transfer functions (the own thread's effects flow through LSOS and
       [local]); under relaxed models the own thread's independent writes
       may become visible out of program order (Figure 2), so its
       transfer functions join the chase and only the per-location
       termination rules bound it. *)
    let exclude_tid = if c.c_sequential then Some tid else None in
    (* Two-phase resolution (Lemma 6.3): phase 1 chases transfer
       functions of epochs l-1 and l; phase 2 of epochs l and l+1, where
       a parent already proven tainted by phase 1 stays tainted.  Both
       phases run here, on the worker: phase 2 reads the same frozen
       inputs as phase 1, and its verdicts feed [local] (hence later
       instructions of this very block), so deferring it past the epoch
       barrier would change results, not just scheduling. *)
    let checks = ref 0 in
    let phase2 = ref 0 in
    let phase1_memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    let rec resolve ~scope ~parent_extra a visited sc_pos =
      List.exists
        (fun tf ->
          incr checks;
          (not (Tf_set.mem tf.tf_id visited))
          && ((not c.c_sequential) || sc_admissible sc_pos tf)
          &&
          let visited = Tf_set.add tf.tf_id visited in
          let sc_pos =
            if c.c_sequential then sc_advance sc_pos tf else sc_pos
          in
          match tf.rhs with
          | Bot -> true
          | Top -> false
          | Inherit ps ->
            List.exists
              (fun p ->
                base_tainted p || parent_extra p
                || resolve ~scope ~parent_extra p visited sc_pos)
              ps)
        (tfs_for c ~scope ~exclude_tid a)
    in
    let phase1 a =
      match Hashtbl.find_opt phase1_memo a with
      | Some r -> r
      | None ->
        let r =
          resolve ~scope:[ l - 1; l ]
            ~parent_extra:(fun _ -> false)
            a Tf_set.empty Pos_map.empty
        in
        Hashtbl.replace phase1_memo a r;
        r
    in
    let wing_may a =
      if c.c_two_phase then
        phase1 a
        || (incr phase2;
            resolve ~scope:[ l; l + 1 ] ~parent_extra:phase1 a Tf_set.empty
              Pos_map.empty)
      else
        (* Ablation: one phase over the whole window.  Still sound, but
           admits impossible chains such as an epoch l+1 taint feeding an
           epoch l-1 read (the example of Section 6.2). *)
        resolve ~scope:[ l - 1; l; l + 1 ]
          ~parent_extra:(fun _ -> false)
          a Tf_set.empty Pos_map.empty
    in
    let may_tainted a =
      match Hashtbl.find_opt local a with
      | Some true -> true
      | Some false -> wing_may a
      | None -> S.mem a lsos || wing_may a
    in
    let n_instrs = ref 0 and n_mem = ref 0 in
    let errs = ref [] in
    Butterfly.Block.iteri
      (fun id instr ->
        incr n_instrs;
        if Tracing.Instr.is_memory_event instr then incr n_mem;
        (match Tracing.Instr.taint_sink instr with
        | Some x -> if may_tainted x then errs := { id; sink = x } :: !errs
        | None -> ());
        match tf_of_instr id instr with
        | None -> ()
        | Some tf ->
          let result =
            match tf.rhs with
            | Bot -> true
            | Top -> false
            | Inherit ps -> List.exists may_tainted ps
          in
          Hashtbl.replace local tf.dst result)
      block;
    {
      bo_errors = List.rev !errs;
      bo_lastcheck = local;
      bo_stats =
        { instrs = !n_instrs; mem_events = !n_mem; checks_resolved = !checks };
      bo_lsos_card = S.cardinal lsos;
      bo_phase2 = !phase2;
    }

  let run_with ~sequential ~two_phase ~pool ~wavefront epochs =
    (* Materialize the check/flag counters so clean runs still report 0. *)
    Obs.Counter.add m_checks 0;
    Obs.Counter.add m_flags 0;
    let num_l = Butterfly.Epochs.num_epochs epochs in
    let threads = Butterfly.Epochs.threads epochs in
    (* Pass-1 summaries, committed by the master as they become available:
       the epochwise driver fans the whole grid out up front, the wavefront
       driver commits each row just ahead of the pass-2 cursor.  Either
       way, a cell is [Some] before any pass-2 task that may read it is
       dispatched. *)
    let tfs_store = Array.init num_l (fun _ -> Array.make threads None) in
    (* LASTCHECK results: lastcheck.(l).(t) maps assigned locations to their
       final resolved taint in block (l,t).  Row l is written only by the
       master's epoch-l commits; workers evaluating epoch l read rows <= l-1. *)
    let lastcheck =
      Array.init num_l (fun _ ->
          Array.init threads (fun _ -> Hashtbl.create 16))
    in
    let sos = Array.make (num_l + 2) S.empty in
    let c =
      make_ctx ~threads ~sequential ~two_phase
        ~tfs_at:(fun l t ->
          if l < 0 || l >= num_l then None else tfs_store.(l).(t))
        ~lastcheck_at:(fun l t ->
          if l < 0 || l >= num_l then None else Some lastcheck.(l).(t))
        ~sos_at:(fun l -> sos.(l))
    in
    let advance_sos l =
      if l >= 2 then sos.(l) <- sos_step c ~prev:sos.(l - 1) l
    in
    let errors = ref [] in
    let stats =
      Array.init threads (fun _ ->
          Array.init num_l (fun _ ->
              { instrs = 0; mem_events = 0; checks_resolved = 0 }))
    in
    let commit ~epoch:l ~tid o =
      errors := List.rev_append o.bo_errors !errors;
      Hashtbl.iter
        (fun x r -> Hashtbl.replace lastcheck.(l).(tid) x r)
        o.bo_lastcheck;
      stats.(tid).(l) <- o.bo_stats;
      (* The master commits on behalf of block (l,tid): scope the counter
         deltas so a jsonl stream attributes them to their epoch. *)
      Obs.Scope.with_scope ~epoch:l ~tid ~phase:"commit" (fun () ->
          Obs.Counter.add m_checks o.bo_stats.checks_resolved;
          Obs.Counter.add m_flags (List.length o.bo_errors);
          Obs.Counter.add m_phase2 o.bo_phase2;
          Obs.Counter.add m_instrs o.bo_stats.instrs;
          if Obs.enabled () then
            Obs.Gauge.set_max g_set_hwm (float_of_int o.bo_lsos_card);
          if tid = threads - 1 then Obs.Counter.incr m_epochs)
    in
    if wavefront then
      (* Dependency-driven schedule: pass-1 summarization of later epochs
         overlaps the (serially dependent) pass-2 chase of earlier ones.
         eval_block of epoch l reads tfs rows l-1..l+1 — committed by
         [commit1] before dispatch — and LASTCHECK rows <= l-1, sealed by
         the previous iteration's [commit2]s. *)
      Butterfly.Scheduler.Wavefront.run ?pool ~num_epochs:num_l ~threads
        ~pass1:(fun ~epoch ~tid ->
          summarize_block (Butterfly.Epochs.block epochs ~epoch ~tid))
        ~commit1:(fun ~epoch ~tid s -> tfs_store.(epoch).(tid) <- Some s)
        ~prepare:advance_sos
        ~pass2:(fun ~epoch ~tid ->
          eval_block c ~epoch ~tid (Butterfly.Epochs.block epochs ~epoch ~tid))
        ~commit2:commit ()
    else begin
      (* Pass 1 is per-block-local, so the pooled mode fans the whole grid
         out up front; pass 2 below then sees every wing already summarized. *)
      let tfs =
        Butterfly.Scheduler.Epochwise.map_grid ?pool ~num_epochs:num_l ~threads
          (fun ~epoch ~tid ->
            Obs.Scope.with_scope ~phase:"pass1" (fun () ->
                summarize_block (Butterfly.Epochs.block epochs ~epoch ~tid)))
      in
      Array.iteri
        (fun l row -> Array.iteri (fun t s -> tfs_store.(l).(t) <- Some s) row)
        tfs;
      Butterfly.Scheduler.Epochwise.run ?pool ~num_epochs:num_l ~threads
        ~prepare:advance_sos
        ~task:(fun ~epoch ~tid ->
          Obs.Scope.with_scope ~phase:"pass2" (fun () ->
              eval_block c ~epoch ~tid
                (Butterfly.Epochs.block epochs ~epoch ~tid)))
        ~commit ()
    end;
    (* Final SOS entries past the last window. *)
    advance_sos num_l;
    advance_sos (num_l + 1);
    {
      errors = List.rev !errors;
      sos_tainted = Array.map S.elements sos;
      block_stats = stats;
    }

  let run ?(sequential = true) ?(two_phase = true) ?(wavefront = false)
      ?domains ?pool epochs =
    match (pool, domains) with
    | Some _, _ -> run_with ~sequential ~two_phase ~pool ~wavefront epochs
    | None, Some d ->
      Butterfly.Domain_pool.with_pool ~name:"taintcheck" ~domains:d (fun p ->
          run_with ~sequential ~two_phase ~pool:(Some p) ~wavefront epochs)
    | None, None -> run_with ~sequential ~two_phase ~pool:None ~wavefront epochs

  (* ---------------------------------------------------------------- *)
  (* Checkpointable epoch-incremental engine.  TaintCheck's epoch-barrier
     driver already processes the grid epoch-major, so incrementality only
     needs the window localized: evaluating epoch l reads transfer
     functions of rows l-1..l+1, LASTCHECK rows l-3..l-1 and SOS_l — so raw
     rows, pass-1 summaries and LASTCHECK rows the window has passed are
     pruned, and the SOS history (part of the report) is kept whole.
     Pass-1 summaries are recomputed from the retained raw rows on decode
     rather than serialized: [summarize_block] is pure. *)

  module Resumable = struct
    let zero_stats = { instrs = 0; mem_events = 0; checks_resolved = 0 }

    type state = {
      threads : int;
      sequential : bool;
      two_phase : bool;
      pool : Butterfly.Domain_pool.t option;
      wavefront : bool;
      rows : (int, Tracing.Instr.t array array) Hashtbl.t; (* raw, pruned *)
      tfs : (int, block_tfs array) Hashtbl.t; (* derived from [rows] *)
      tfs_pending :
        (int, block_tfs Butterfly.Domain_pool.future array) Hashtbl.t;
          (* wavefront mode: pass-1 rows still in flight on the pool,
             resolved into [tfs] just before the pass-2 window needs them *)
      lastcheck : (int, (int, bool) Hashtbl.t array) Hashtbl.t; (* pruned *)
      sos : (int, S.t) Hashtbl.t; (* full history: report content *)
      stats : (int, block_stats array) Hashtbl.t; (* epoch -> per-tid *)
      ctx : ctx; (* carries the (transient) flat-backend GEN/KILL cache *)
      mutable errors : error list; (* reversed *)
      mutable processed : int;
      mutable epochs_fed : int;
    }

    let make_ctx_of ~threads ~sequential ~two_phase ~rows:_ ~tfs ~lastcheck
        ~sos =
      make_ctx ~threads ~sequential ~two_phase
        ~tfs_at:(fun l t ->
          match Hashtbl.find_opt tfs l with
          | Some row -> Some row.(t)
          | None -> None)
        ~lastcheck_at:(fun l t ->
          match Hashtbl.find_opt lastcheck l with
          | Some row -> Some row.(t)
          | None -> None)
        ~sos_at:(fun l ->
          Option.value (Hashtbl.find_opt sos l) ~default:S.empty)

    let create ?pool ?(sequential = true) ?(two_phase = true)
        ?(wavefront = false) ~threads () =
      if threads <= 0 then
        invalid_arg "Taintcheck.Resumable.create: threads must be > 0";
      Obs.Counter.add m_checks 0;
      Obs.Counter.add m_flags 0;
      (* Materialize the pipeline metrics so clean wavefront runs still
         report them; non-wavefront runs never touch them. *)
      if wavefront && pool <> None && Obs.enabled () then begin
        Obs.Counter.add m_wf_overlap 0;
        Obs.Counter.add m_wf_p1 0;
        Obs.Gauge.set g_wf_ready 0.0;
        Obs.Span.time sp_wf_stall ignore
      end;
      let rows = Hashtbl.create 8 in
      let tfs = Hashtbl.create 8 in
      let lastcheck = Hashtbl.create 8 in
      let sos = Hashtbl.create 64 in
      {
        threads;
        sequential;
        two_phase;
        pool;
        wavefront = wavefront && pool <> None;
        rows;
        tfs;
        tfs_pending = Hashtbl.create 8;
        lastcheck;
        sos;
        stats = Hashtbl.create 64;
        ctx = make_ctx_of ~threads ~sequential ~two_phase ~rows ~tfs ~lastcheck ~sos;
        errors = [];
        processed = 0;
        epochs_fed = 0;
      }

    let epochs_fed st = st.epochs_fed

    let advance_sos st l =
      if l >= 2 then begin
        let prev =
          Option.value (Hashtbl.find_opt st.sos (l - 1)) ~default:S.empty
        in
        Hashtbl.replace st.sos l (sos_step st.ctx ~prev l)
      end

    let commit st ~epoch:l ~tid o =
      st.errors <- List.rev_append o.bo_errors st.errors;
      let row =
        match Hashtbl.find_opt st.lastcheck l with
        | Some row -> row
        | None ->
          let row = Array.init st.threads (fun _ -> Hashtbl.create 16) in
          Hashtbl.replace st.lastcheck l row;
          row
      in
      Hashtbl.iter (fun x r -> Hashtbl.replace row.(tid) x r) o.bo_lastcheck;
      let srow =
        match Hashtbl.find_opt st.stats l with
        | Some s -> s
        | None ->
          let s = Array.make st.threads zero_stats in
          Hashtbl.replace st.stats l s;
          s
      in
      srow.(tid) <- o.bo_stats;
      Obs.Scope.with_scope ~epoch:l ~tid ~phase:"commit" (fun () ->
          Obs.Counter.add m_checks o.bo_stats.checks_resolved;
          Obs.Counter.add m_flags (List.length o.bo_errors);
          Obs.Counter.add m_phase2 o.bo_phase2;
          Obs.Counter.add m_instrs o.bo_stats.instrs;
          if Obs.enabled () then
            Obs.Gauge.set_max g_set_hwm (float_of_int o.bo_lsos_card);
          if tid = st.threads - 1 then Obs.Counter.incr m_epochs)

    (* Wavefront mode: commit an in-flight pass-1 row into [st.tfs].
       Master-side only; no-op for rows summarized synchronously. *)
    let resolve_tfs st l =
      match Hashtbl.find_opt st.tfs_pending l with
      | None -> ()
      | Some futs ->
        let land_row () = Array.map Butterfly.Domain_pool.await futs in
        let row =
          if Array.for_all Butterfly.Domain_pool.poll futs then land_row ()
          else Obs.Span.time sp_wf_stall land_row
        in
        Hashtbl.replace st.tfs l row;
        Hashtbl.remove st.tfs_pending l;
        if Obs.enabled () then
          Obs.Gauge.set g_wf_ready
            (float_of_int (Hashtbl.length st.tfs_pending * st.threads))

    (* Process epoch [st.processed]: the same prepare/task/commit sequence
       as [Epochwise.run], one epoch at a time, then retire the rows the
       window has passed (raw/summary rows < l, LASTCHECK rows < l-2). *)
    let process_one st =
      let l = st.processed in
      (* eval_block reads tfs rows l-1..l+1: land any still in flight. *)
      resolve_tfs st (l - 1);
      resolve_tfs st l;
      resolve_tfs st (l + 1);
      advance_sos st l;
      let c = st.ctx in
      let row = Hashtbl.find st.rows l in
      let task tid =
        Obs.Scope.with_scope ~epoch:l ~tid ~phase:"pass2" (fun () ->
            eval_block c ~epoch:l ~tid
              (Butterfly.Block.make ~epoch:l ~tid row.(tid)))
      in
      (match st.pool with
      | None ->
        for tid = 0 to st.threads - 1 do
          commit st ~epoch:l ~tid (task tid)
        done
      | Some pool ->
        let results =
          Butterfly.Domain_pool.map_array pool task
            (Array.init st.threads Fun.id)
        in
        Array.iteri (fun tid r -> commit st ~epoch:l ~tid r) results);
      st.processed <- l + 1;
      if l > 0 then (
        Hashtbl.remove st.rows (l - 1);
        Hashtbl.remove st.tfs (l - 1));
      if l >= 3 then begin
        Hashtbl.remove st.lastcheck (l - 3);
        forget_genkill st.ctx (l - 3)
      end

    (* Rows arrive whole, so epoch l is processable as soon as row l+1 (its
       trailing-wing source) has been fed; the last epoch waits for
       [finish], where the missing row l+1 reads as empty — exactly the
       out-of-grid bounds case of the batch driver. *)
    let feed_epoch st row =
      if Array.length row <> st.threads then
        invalid_arg "Taintcheck.Resumable.feed_epoch: wrong row width";
      let epoch = st.epochs_fed in
      Hashtbl.replace st.rows epoch row;
      (match st.pool with
      | Some pool when st.wavefront ->
        (* Pipeline pass 1: the summaries run on workers while the master
           chases pass 2 of older epochs; [summarize_block] is pure, so the
           deferred commit is invisible to results. *)
        Hashtbl.replace st.tfs_pending epoch
          (Array.mapi
             (fun tid instrs ->
               Butterfly.Domain_pool.async pool (fun () ->
                   Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                       summarize_block
                         (Butterfly.Block.make ~epoch ~tid instrs))))
             row);
        if Obs.enabled () then begin
          if epoch > st.processed then Obs.Counter.add m_wf_p1 st.threads;
          let depth = Hashtbl.length st.tfs_pending in
          if depth > 1 then Obs.Counter.incr m_wf_overlap;
          Obs.Gauge.set g_wf_ready (float_of_int (depth * st.threads))
        end
      | _ ->
        Hashtbl.replace st.tfs epoch
          (Array.mapi
             (fun tid instrs ->
               Obs.Scope.with_scope ~epoch ~tid ~phase:"pass1" (fun () ->
                   summarize_block (Butterfly.Block.make ~epoch ~tid instrs)))
             row));
      st.epochs_fed <- epoch + 1;
      while st.processed <= st.epochs_fed - 2 do
        process_one st
      done

    let finish st =
      (* An empty program still owns one (empty) epoch — mirror
         [Epochs.of_program]. *)
      if st.epochs_fed = 0 then feed_epoch st (Array.make st.threads [||]);
      while st.processed < st.epochs_fed do
        process_one st
      done;
      let num_l = st.epochs_fed in
      (* Final SOS entries past the last window. *)
      advance_sos st num_l;
      advance_sos st (num_l + 1);
      {
        errors = List.rev st.errors;
        sos_tainted =
          Array.init (num_l + 2) (fun l ->
              S.elements
                (Option.value (Hashtbl.find_opt st.sos l) ~default:S.empty));
        block_stats =
          Array.init st.threads (fun tid ->
              Array.init num_l (fun l ->
                  match Hashtbl.find_opt st.stats l with
                  | Some row -> row.(tid)
                  | None -> zero_stats));
      }

    let put_stats w (s : block_stats) =
      let module W = Tracing.Binio.W in
      W.varint w s.instrs;
      W.varint w s.mem_events;
      W.varint w s.checks_resolved

    let get_stats r =
      let module R = Tracing.Binio.R in
      let instrs = R.varint r in
      let mem_events = R.varint r in
      let checks_resolved = R.varint r in
      { instrs; mem_events; checks_resolved }

    (* The payload is representation-independent (sorted element lists),
       so a snapshot cut under either backend restores under either. *)
    let encode st =
      let module W = Tracing.Binio.W in
      let w = W.create () in
      W.varint w st.threads;
      W.bool w st.sequential;
      W.bool w st.two_phase;
      W.varint w st.epochs_fed;
      W.varint w st.processed;
      W.list w
        (fun w (e : error) ->
          Lg_io.put_id w e.id;
          W.sint w e.sink)
        st.errors;
      W.list w
        (fun w (epoch, row) ->
          W.varint w epoch;
          W.array w put_stats row)
        (Lg_io.sorted_entries st.stats);
      W.list w
        (fun w (l, s) ->
          W.varint w l;
          W.list w (fun w x -> W.sint w x) (S.elements s))
        (Lg_io.sorted_entries st.sos);
      W.list w
        (fun w (epoch, row) ->
          W.varint w epoch;
          W.array w
            (fun w tbl ->
              W.list w
                (fun w (x, b) ->
                  W.sint w x;
                  W.bool w b)
                (List.sort compare
                   (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])))
            row)
        (Lg_io.sorted_entries st.lastcheck);
      W.list w
        (fun w (epoch, row) ->
          W.varint w epoch;
          W.array w Lg_io.put_instrs row)
        (Lg_io.sorted_entries st.rows);
      W.contents w

    let decode ?pool ?(wavefront = false) s =
      let module R = Tracing.Binio.R in
      match
        let r = R.of_string s in
        let threads = R.varint r in
        if threads = 0 then raise (R.Corrupt "zero threads");
        let sequential = R.bool r in
        let two_phase = R.bool r in
        let epochs_fed = R.varint r in
        let processed = R.varint r in
        let errors =
          R.list r (fun r ->
              let id = Lg_io.get_id r in
              let sink = R.sint r in
              { id; sink })
        in
        let stats = Hashtbl.create 64 in
        ignore
          (R.list r (fun r ->
               let epoch = R.varint r in
               let row = R.array r get_stats in
               if Array.length row <> threads then
                 raise (R.Corrupt "stats row width mismatch");
               Hashtbl.replace stats epoch row));
        let sos = Hashtbl.create 64 in
        ignore
          (R.list r (fun r ->
               let l = R.varint r in
               let xs = R.list r (fun r -> R.sint r) in
               Hashtbl.replace sos l (S.of_list xs)));
        let lastcheck = Hashtbl.create 8 in
        ignore
          (R.list r (fun r ->
               let epoch = R.varint r in
               let row =
                 R.array r (fun r ->
                     let tbl = Hashtbl.create 16 in
                     ignore
                       (R.list r (fun r ->
                            let x = R.sint r in
                            let b = R.bool r in
                            Hashtbl.replace tbl x b));
                     tbl)
               in
               if Array.length row <> threads then
                 raise (R.Corrupt "lastcheck row width mismatch");
               Hashtbl.replace lastcheck epoch row));
        let rows = Hashtbl.create 8 in
        ignore
          (R.list r (fun r ->
               let epoch = R.varint r in
               let row = R.array r Lg_io.get_instrs in
               if Array.length row <> threads then
                 raise (R.Corrupt "instr row width mismatch");
               Hashtbl.replace rows epoch row));
        R.expect_end r;
        let tfs = Hashtbl.create 8 in
        Hashtbl.iter
          (fun epoch row ->
            Hashtbl.replace tfs epoch
              (Array.mapi
                 (fun tid instrs ->
                   summarize_block (Butterfly.Block.make ~epoch ~tid instrs))
                 row))
          rows;
        {
          threads;
          sequential;
          two_phase;
          pool;
          wavefront = wavefront && pool <> None;
          rows;
          tfs;
          tfs_pending = Hashtbl.create 8;
          lastcheck;
          sos;
          stats;
          ctx =
            make_ctx_of ~threads ~sequential ~two_phase ~rows ~tfs ~lastcheck
              ~sos;
          errors;
          processed;
          epochs_fed;
        }
      with
      | st -> Ok st
      | exception R.Corrupt m -> Error ("taintcheck state: " ^ m)
  end
end

(* ------------------------------------------------------------------ *)
(* Backend instantiation and the state-dispatching public API.  [Fn] is
   the original functional path (element folds over [Set.Make (Int)]),
   [Fl] the flat bitset path with GEN/KILL memoization; the differential
   battery in [test/test_fact_arena.ml] pins their reports byte-identical
   across every driver. *)

module Fn = Core (struct
  module S = AS

  let memo_genkill = false
end)

module Fl = Core (struct
  module S = Butterfly.Fact_arena.Bitset

  let memo_genkill = true
end)

type backend = [ `Functional | `Flat ]

let run ?(state = `Functional) ?sequential ?two_phase ?wavefront ?domains
    ?pool epochs =
  match (state : backend) with
  | `Functional -> Fn.run ?sequential ?two_phase ?wavefront ?domains ?pool epochs
  | `Flat -> Fl.run ?sequential ?two_phase ?wavefront ?domains ?pool epochs

module Resumable = struct
  type state = Fn_state of Fn.Resumable.state | Fl_state of Fl.Resumable.state

  let create ?pool ?sequential ?two_phase ?wavefront
      ?(state = (`Functional : backend)) ~threads () =
    match state with
    | `Functional ->
      Fn_state
        (Fn.Resumable.create ?pool ?sequential ?two_phase ?wavefront ~threads
           ())
    | `Flat ->
      Fl_state
        (Fl.Resumable.create ?pool ?sequential ?two_phase ?wavefront ~threads
           ())

  let feed_epoch st row =
    match st with
    | Fn_state s -> Fn.Resumable.feed_epoch s row
    | Fl_state s -> Fl.Resumable.feed_epoch s row

  let epochs_fed = function
    | Fn_state s -> Fn.Resumable.epochs_fed s
    | Fl_state s -> Fl.Resumable.epochs_fed s

  let finish = function
    | Fn_state s -> Fn.Resumable.finish s
    | Fl_state s -> Fl.Resumable.finish s

  let encode = function
    | Fn_state s -> Fn.Resumable.encode s
    | Fl_state s -> Fl.Resumable.encode s

  let decode ?pool ?wavefront ?(state = (`Functional : backend)) s =
    match state with
    | `Functional ->
      Result.map
        (fun st -> Fn_state st)
        (Fn.Resumable.decode ?pool ?wavefront s)
    | `Flat ->
      Result.map
        (fun st -> Fl_state st)
        (Fl.Resumable.decode ?pool ?wavefront s)
end
