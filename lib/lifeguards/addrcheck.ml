module IS = Butterfly.Interval_set

type error_kind =
  | Unallocated_access
  | Unallocated_free
  | Double_alloc
  | Metadata_race

type error = {
  kind : error_kind;
  addrs : IS.t;
  where : [ `Instr of Butterfly.Instr_id.t | `Block of int * Tracing.Tid.t ];
}

type block_stats = { instrs : int; mem_events : int; flagged_events : int }

type report = {
  errors : error list;
  flagged_accesses : int;
  total_accesses : int;
  block_stats : block_stats array array;
  sos : IS.t array;
}

let obs_labels = [ ("lifeguard", "addrcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"
let sp_isolation = Obs.Span.make ~labels:obs_labels "lifeguard.isolation.ns"

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc e.addrs) IS.empty r.errors

let pp_error ppf e =
  let kind =
    match e.kind with
    | Unallocated_access -> "unallocated access"
    | Unallocated_free -> "unallocated free"
    | Double_alloc -> "double alloc"
    | Metadata_race -> "metadata race"
  in
  match e.where with
  | `Instr id ->
    Format.fprintf ppf "%a at %a: %a" Fmt.string kind Butterfly.Instr_id.pp id
      IS.pp e.addrs
  | `Block (l, t) ->
    Format.fprintf ppf "%a in block (%d,%d): %a" Fmt.string kind l t IS.pp
      e.addrs

let fingerprint (r : report) =
  let fp_stats ppf grid =
    Array.iteri
      (fun t row ->
        Array.iteri
          (fun l (s : block_stats) ->
            Format.fprintf ppf "(%d,%d)%d/%d/%d " t l s.instrs s.mem_events
              s.flagged_events)
          row)
      grid
  in
  Format.asprintf "flagged=%d/%d errors=[%a] sos=[%a] stats=[%a]"
    r.flagged_accesses r.total_accesses
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " pp_error))
    r.errors
    (fun ppf -> Array.iter (Format.fprintf ppf "%a; " IS.pp))
    r.sos fp_stats r.block_stats

let zero_stats = { instrs = 0; mem_events = 0; flagged_events = 0 }

(* Errors and stats are backend-independent (fact sets are converted to
   {!IS.t} at error-creation time), so their codecs are shared. *)

let put_error w (e : error) =
  let module W = Tracing.Binio.W in
  W.u8 w
    (match e.kind with
    | Unallocated_access -> 0
    | Unallocated_free -> 1
    | Double_alloc -> 2
    | Metadata_race -> 3);
  Lg_io.put_is w e.addrs;
  match e.where with
  | `Instr id ->
    W.u8 w 0;
    Lg_io.put_id w id
  | `Block (l, tid) ->
    W.u8 w 1;
    W.sint w l;
    W.varint w tid

let get_error r =
  let module R = Tracing.Binio.R in
  let kind =
    match R.u8 r with
    | 0 -> Unallocated_access
    | 1 -> Unallocated_free
    | 2 -> Double_alloc
    | 3 -> Metadata_race
    | k -> raise (R.Corrupt (Printf.sprintf "bad error kind %d" k))
  in
  let addrs = Lg_io.get_is r in
  let where =
    match R.u8 r with
    | 0 -> `Instr (Lg_io.get_id r)
    | 1 ->
      let l = R.sint r in
      let tid = R.varint r in
      `Block (l, tid)
    | t -> raise (R.Corrupt (Printf.sprintf "bad error site tag %d" t))
  in
  { kind; addrs; where }

let put_stats w (s : block_stats) =
  let module W = Tracing.Binio.W in
  W.varint w s.instrs;
  W.varint w s.mem_events;
  W.varint w s.flagged_events

let get_stats r =
  let module R = Tracing.Binio.R in
  let instrs = R.varint r in
  let mem_events = R.varint r in
  let flagged_events = R.varint r in
  { instrs; mem_events; flagged_events }

(* ------------------------------------------------------------------ *)
(* The analysis body, generic over the fact-set representation
   ({!Butterfly.Fact_arena.FACTS}): [Interval_facts] is the functional
   reference, [Bitset_facts] the flat fast path.  Error sets, reports and
   snapshots round-trip through {!IS.t}, so fingerprints and checkpoint
   payloads are representation-independent — the property the
   flat/functional differential battery checks. *)

module Body (F : Butterfly.Fact_arena.FACTS) = struct
  module Problem = struct
    let name = "addrcheck"

    module Set = F

    let flavour = `Must

    let gen _id i =
      match Tracing.Instr.alloc_effect i with
      | `Alloc (base, size) -> F.range base (base + size)
      | `Free _ | `None -> F.empty

    let kill _id i =
      match Tracing.Instr.alloc_effect i with
      | `Free (base, size) -> F.range base (base + size)
      | `Alloc _ | `None -> F.empty
  end

  module A = Butterfly.Dataflow.Make (Problem)
  module S = Butterfly.Scheduler.Make (Problem)

  (* Does instruction [i]'s footprint meet [viol]?  Point accesses probe
     membership directly — materializing a bitset spanning the lowest to
     highest accessed address per instruction is exactly the allocation
     the flat backend must avoid. *)
  let footprint_meets i viol =
    match Tracing.Instr.alloc_effect i with
    | `Alloc (base, size) | `Free (base, size) ->
      not (F.disjoint (F.range base (base + size)) viol)
    | `None -> List.exists (fun a -> F.mem a viol) (Tracing.Instr.accesses i)

  (* Collect then build once: the flat backend turns what was one
     widening union per memory instruction into a single buffer fill. *)
  let access_set block =
    Butterfly.Block.fold_left
      (fun acc _id i ->
        match Tracing.Instr.alloc_effect i with
        | `Alloc _ | `Free _ -> acc
        | `None -> List.rev_append (Tracing.Instr.accesses i) acc)
      [] block
    |> F.of_list

  (* The per-instruction check, shared verbatim by the batch [run] driver
     and the checkpointable [Resumable] engine below: a divergence here
     would break the resume-equivalence guarantee.  [violation_of l tid]
     abstracts over how the isolation-violation sets are obtained — a
     precomputed whole-grid array in [run], a lazily materialized sliding
     window in [Resumable]. *)
  let make_on_instr ~violation_of ~bump ~instr_errors ~flagged ~total
      (v : A.instr_view) =
    let { Butterfly.Instr_id.epoch = l; tid; _ } = v.id in
    bump tid l (fun s -> { s with instrs = s.instrs + 1 });
    if Tracing.Instr.is_memory_event v.instr then (
      incr total;
      Obs.Counter.incr m_checks;
      bump tid l (fun s -> { s with mem_events = s.mem_events + 1 }));
    let local_errs =
      match Tracing.Instr.alloc_effect v.instr with
      | `Alloc (base, size) ->
        let bad = F.inter (F.range base (base + size)) v.lsos_before in
        if F.is_empty bad then []
        else
          [
            {
              kind = Double_alloc;
              addrs = F.to_intervals bad;
              where = `Instr v.id;
            };
          ]
      | `Free (base, size) ->
        let bad = F.diff (F.range base (base + size)) v.lsos_before in
        if F.is_empty bad then []
        else
          [
            {
              kind = Unallocated_free;
              addrs = F.to_intervals bad;
              where = `Instr v.id;
            };
          ]
      | `None ->
        List.filter_map
          (fun a ->
            if F.mem a v.lsos_before then None
            else
              Some
                {
                  kind = Unallocated_access;
                  addrs = IS.singleton a;
                  where = `Instr v.id;
                })
          (Tracing.Instr.accesses v.instr)
    in
    instr_errors := List.rev_append local_errs !instr_errors;
    let races = footprint_meets v.instr (violation_of l tid) in
    if (local_errs <> [] || races) && Tracing.Instr.is_memory_event v.instr
    then (
      incr flagged;
      Obs.Counter.incr m_flags;
      bump tid l (fun s -> { s with flagged_events = s.flagged_events + 1 }))

  let run ?(isolation = true) ?(wavefront = false) ?domains ?pool epochs =
    (* Materialize the check/flag counters so clean runs still report 0. *)
    Obs.Counter.add m_checks 0;
    Obs.Counter.add m_flags 0;
    let num_l = Butterfly.Epochs.num_epochs epochs in
    let threads = Butterfly.Epochs.threads epochs in
    (* Pass-1-style summaries (also recomputed inside A.run; cheap). *)
    let summaries =
      Array.init num_l (fun l ->
          Array.init threads (fun tid ->
              A.summarize (Butterfly.Epochs.block epochs ~epoch:l ~tid)))
    in
    let accesses =
      Array.init num_l (fun l ->
          Array.init threads (fun tid ->
              access_set (Butterfly.Epochs.block epochs ~epoch:l ~tid)))
    in
    let changes =
      Array.map
        (Array.map (fun s -> F.union s.A.gen_union s.A.kill_union))
        summaries
    in
    let state_change l tid =
      if l < 0 || l >= num_l then F.empty else changes.(l).(tid)
    in
    let access_of l tid =
      if l < 0 || l >= num_l then F.empty else accesses.(l).(tid)
    in
    (* Isolation-violation set per block (Section 6.1's emptiness check). *)
    let violation l tid =
      let s_change = state_change l tid in
      let s_access = access_of l tid in
      let wing_change = ref [] and wing_access = ref [] in
      for l' = l - 1 to l + 1 do
        for t' = 0 to threads - 1 do
          if t' <> tid then (
            wing_change := state_change l' t' :: !wing_change;
            wing_access := access_of l' t' :: !wing_access)
        done
      done;
      (* (∪w) ∩ x  distributed as  ∪(w ∩ x): state changes are sparse, so
         every intersection is small — materializing the union of nine
         access footprints (≈ the whole heap) just to meet it with one
         block's allocations is the allocation the flat backend feels. *)
      let wing_inter ws x = F.union_all (List.map (F.inter x) ws) in
      F.union
        (wing_inter !wing_change s_change)
        (F.union
           (wing_inter !wing_change s_access)
           (wing_inter !wing_access s_change))
    in
    let violations =
      Obs.Scope.with_scope ~phase:"isolation" (fun () ->
          Obs.Span.time sp_isolation (fun () ->
              Array.init num_l (fun l ->
                  Array.init threads (fun tid ->
                      if isolation then violation l tid else F.empty))))
    in
    let errors = ref [] in
    let flagged = ref 0 in
    let total = ref 0 in
    let stats =
      Array.init threads (fun _ ->
          Array.init num_l (fun _ ->
              { instrs = 0; mem_events = 0; flagged_events = 0 }))
    in
    let bump tid l f = stats.(tid).(l) <- f stats.(tid).(l) in
    let on_instr =
      make_on_instr
        ~violation_of:(fun l tid -> violations.(l).(tid))
        ~bump ~instr_errors:errors ~flagged ~total
    in
    let sos_levels =
      match (pool, domains) with
      | None, None ->
        let result = A.run ~on_instr epochs in
        result.A.sos
      | Some pool, _ ->
        (* Caller-owned pool: same pooled streaming driver, shared across
           runs (the QA fuzz engine reuses one pool for its whole corpus). *)
        let s = S.run_epochs ~pool ~wavefront ~on_instr epochs in
        S.sos_history s
      | None, Some d ->
        (* Pooled streaming: the scheduler delivers the exact same view
           sequence (property-tested), with pass 1/2 on worker domains. *)
        Butterfly.Domain_pool.with_pool ~name:"addrcheck" ~domains:d
          (fun pool ->
            let s = S.run_epochs ~pool ~wavefront ~on_instr epochs in
            S.sos_history s)
    in
    (* Report isolation violations at block granularity too. *)
    for l = 0 to num_l - 1 do
      for tid = 0 to threads - 1 do
        let v = violations.(l).(tid) in
        if not (F.is_empty v) then (
          Obs.Counter.incr m_flags;
          errors :=
            {
              kind = Metadata_race;
              addrs = F.to_intervals v;
              where = `Block (l, tid);
            }
            :: !errors)
      done
    done;
    if Obs.enabled () then
      Array.iter
        (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (F.cardinal s)))
        sos_levels;
    {
      errors = List.rev !errors;
      flagged_accesses = !flagged;
      total_accesses = !total;
      block_stats = stats;
      sos = Array.map F.to_intervals sos_levels;
    }

  (* ---------------------------------------------------------------- *)
  (* Checkpointable epoch-incremental engine.  The streaming scheduler
     already carries the dataflow window; what AddrCheck adds on top is the
     isolation check, whose whole-grid precomputation above must become
     incremental here.  The key locality fact (Section 6.1): the violation
     set of block (l, t) reads state-change/access footprints of rows
     l-1..l+1 only, and the scheduler processes epoch l only once row l+1
     is closed — so violation rows can be materialized lazily, and row
     footprints older than the window pruned. *)

  module Resumable = struct
    (* Fact sets are serialized as canonical interval lists regardless of
       backend, so snapshots are backend-portable. *)
    let set_codec =
      {
        S.put_set = (fun w s -> Lg_io.put_is w (F.to_intervals s));
        get_set = (fun r -> F.of_intervals (Lg_io.get_is r));
      }

    (* Per-row, per-tid footprints feeding the isolation check. *)
    type row_facts = { sc : F.t array;  (* GEN ∪ KILL *) ac : F.t array }

    type state = {
      sched : S.t;
      threads : int;
      isolation : bool;
      instr_errors : error list ref; (* reversed *)
      mutable block_errors : error list; (* reversed *)
      flagged : int ref;
      total : int ref;
      stats : (int, block_stats array) Hashtbl.t; (* epoch -> per-tid *)
      facts : (int, row_facts) Hashtbl.t; (* sliding window, pruned *)
      viol : (int, F.t array) Hashtbl.t; (* lazy violation rows *)
      mutable finalized : int; (* rows 0..finalized-1 emitted block errors *)
      mutable epochs_fed : int;
    }

    (* Rows absent from [facts] (before epoch 0, or past the last row fed)
       contribute empty footprints — exactly the bounds check in [run]. *)
    let violation_row ~threads ~isolation ~facts ~viol l =
      match Hashtbl.find_opt viol l with
      | Some v -> v
      | None ->
        let v =
          if not isolation then Array.make threads F.empty
          else
            Obs.Scope.with_scope ~epoch:l ~phase:"isolation" @@ fun () ->
            Obs.Span.time sp_isolation (fun () ->
                let sc l' t' =
                  match Hashtbl.find_opt facts l' with
                  | Some f -> f.sc.(t')
                  | None -> F.empty
                and ac l' t' =
                  match Hashtbl.find_opt facts l' with
                  | Some f -> f.ac.(t')
                  | None -> F.empty
                in
                Array.init threads (fun tid ->
                    let s_change = sc l tid and s_access = ac l tid in
                    let wing_change = ref [] and wing_access = ref [] in
                    for l' = l - 1 to l + 1 do
                      for t' = 0 to threads - 1 do
                        if t' <> tid then (
                          wing_change := sc l' t' :: !wing_change;
                          wing_access := ac l' t' :: !wing_access)
                      done
                    done;
                    (* Distributed as in [run]: see the comment there. *)
                    let wing_inter ws x =
                      F.union_all (List.map (F.inter x) ws)
                    in
                    F.union
                      (wing_inter !wing_change s_change)
                      (F.union
                         (wing_inter !wing_change s_access)
                         (wing_inter !wing_access s_change))))
        in
        Hashtbl.replace viol l v;
        v

    let make_state ?pool ~isolation ~threads ~instr_errors ~block_errors
        ~flagged ~total ~stats ~facts ~finalized ~epochs_fed ~sched_of () =
      let viol = Hashtbl.create 8 in
      let bump tid l f =
        let row =
          match Hashtbl.find_opt stats l with
          | Some row -> row
          | None ->
            let row = Array.make threads zero_stats in
            Hashtbl.replace stats l row;
            row
        in
        row.(tid) <- f row.(tid)
      in
      let violation_of l tid =
        (violation_row ~threads ~isolation ~facts ~viol l).(tid)
      in
      let on_instr =
        make_on_instr ~violation_of ~bump ~instr_errors ~flagged ~total
      in
      let sched = sched_of ?pool ~on_instr () in
      {
        sched;
        threads;
        isolation;
        instr_errors;
        block_errors;
        flagged;
        total;
        stats;
        facts;
        viol;
        finalized;
        epochs_fed;
      }

    let create ?pool ?(isolation = true) ?(wavefront = false) ~threads () =
      Obs.Counter.add m_checks 0;
      Obs.Counter.add m_flags 0;
      make_state ?pool ~isolation ~threads ~instr_errors:(ref [])
        ~block_errors:[] ~flagged:(ref 0) ~total:(ref 0)
        ~stats:(Hashtbl.create 64) ~facts:(Hashtbl.create 8) ~finalized:0
        ~epochs_fed:0
        ~sched_of:(fun ?pool ~on_instr () ->
          S.create ?pool ~wavefront ~threads ~on_instr ())
        ()

    let epochs_fed st = st.epochs_fed

    (* Violation row [e] is final once row [e+1] is closed; emit its
       block-level errors and retire footprint rows the window has passed
       (rows < e are never read again). *)
    let finalize_rows st ~upto =
      while st.finalized <= upto do
        let l = st.finalized in
        let v =
          violation_row ~threads:st.threads ~isolation:st.isolation
            ~facts:st.facts ~viol:st.viol l
        in
        for tid = 0 to st.threads - 1 do
          if not (F.is_empty v.(tid)) then (
            Obs.Counter.incr m_flags;
            st.block_errors <-
              {
                kind = Metadata_race;
                addrs = F.to_intervals v.(tid);
                where = `Block (l, tid);
              }
              :: st.block_errors)
        done;
        Hashtbl.remove st.viol l;
        if l > 0 then Hashtbl.remove st.facts (l - 1);
        st.finalized <- l + 1
      done

    let record_facts st row =
      let epoch = st.epochs_fed in
      let sc =
        Array.mapi
          (fun tid instrs ->
            let s = A.summarize (Butterfly.Block.make ~epoch ~tid instrs) in
            F.union s.A.gen_union s.A.kill_union)
          row
      and ac =
        Array.mapi
          (fun tid instrs ->
            access_set (Butterfly.Block.make ~epoch ~tid instrs))
          row
      in
      Hashtbl.replace st.facts epoch { sc; ac }

    (* Heartbeats go out as separators, not terminators (see
       {!Initcheck.Resumable.feed_epoch}).  The separator heartbeats close
       row m-1, which lets the scheduler process epoch m-2 — whose
       violation row draws on footprints m-3..m-1, all recorded — and then
       lets us finalize that same row's block-level errors. *)
    let feed_epoch st row =
      if Array.length row <> st.threads then
        invalid_arg "Addrcheck.Resumable.feed_epoch: wrong row width";
      if st.epochs_fed > 0 then
        for tid = 0 to st.threads - 1 do
          S.feed st.sched tid Tracing.Event.Heartbeat
        done;
      (* A violation row may only be finalized (and its facts pruned) once
         every view that reads it has been delivered — in wavefront mode
         delivery can lag the scheduler's processing cursor, so clamp to
         the delivery frontier.  Outside wavefront mode the clamp is the
         identity: delivered tracks processed exactly. *)
      finalize_rows st
        ~upto:(min (st.epochs_fed - 2) (S.epochs_delivered st.sched - 1));
      record_facts st row;
      Array.iteri
        (fun tid instrs ->
          Array.iter
            (fun i -> S.feed st.sched tid (Tracing.Event.Instr i))
            instrs)
        row;
      st.epochs_fed <- st.epochs_fed + 1

    let finish st =
      (* An empty program still owns one (empty) epoch — mirror
         [Epochs.of_program]. *)
      if st.epochs_fed = 0 then feed_epoch st (Array.make st.threads [||]);
      S.finish st.sched;
      (* [S.finish] quiesces the pipeline, so every epoch is delivered. *)
      finalize_rows st ~upto:(st.epochs_fed - 1);
      let num_l = st.epochs_fed in
      let sos_levels = S.sos_history st.sched in
      let stats =
        Array.init st.threads (fun tid ->
            Array.init num_l (fun l ->
                match Hashtbl.find_opt st.stats l with
                | Some row -> row.(tid)
                | None -> zero_stats))
      in
      if Obs.enabled () then
        Array.iter
          (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (F.cardinal s)))
          sos_levels;
      {
        errors = List.rev !(st.instr_errors) @ List.rev st.block_errors;
        flagged_accesses = !(st.flagged);
        total_accesses = !(st.total);
        block_stats = stats;
        sos = Array.map F.to_intervals sos_levels;
      }

    let encode st =
      (* Quiesce before serializing anything: delivering in-flight pass-2
         epochs appends to the error lists and counters captured below, so
         the drain must happen first, not as a side effect of
         [S.encode_state] at the end. *)
      S.quiesce st.sched;
      let module W = Tracing.Binio.W in
      let w = W.create () in
      W.varint w st.threads;
      W.bool w st.isolation;
      W.varint w st.epochs_fed;
      W.varint w st.finalized;
      W.varint w !(st.flagged);
      W.varint w !(st.total);
      W.list w put_error !(st.instr_errors);
      W.list w put_error st.block_errors;
      W.list w
        (fun w (epoch, row) ->
          W.varint w epoch;
          W.array w put_stats row)
        (Lg_io.sorted_entries st.stats);
      W.list w
        (fun w (epoch, f) ->
          W.varint w epoch;
          W.array w (fun w s -> Lg_io.put_is w (F.to_intervals s)) f.sc;
          W.array w (fun w s -> Lg_io.put_is w (F.to_intervals s)) f.ac)
        (Lg_io.sorted_entries st.facts);
      W.string w (S.encode_state ~set:set_codec st.sched);
      W.contents w

    let decode ?pool ?(wavefront = false) s =
      let module R = Tracing.Binio.R in
      match
        let r = R.of_string s in
        let threads = R.varint r in
        if threads = 0 then raise (R.Corrupt "zero threads");
        let isolation = R.bool r in
        let epochs_fed = R.varint r in
        let finalized = R.varint r in
        let flagged = ref (R.varint r) in
        let total = ref (R.varint r) in
        let instr_errors = ref (R.list r get_error) in
        let block_errors = R.list r get_error in
        let stats = Hashtbl.create 64 in
        R.list r (fun r ->
            let epoch = R.varint r in
            let row = R.array r get_stats in
            if Array.length row <> threads then
              raise (R.Corrupt "stats row width mismatch");
            Hashtbl.replace stats epoch row)
        |> ignore;
        let facts = Hashtbl.create 8 in
        R.list r (fun r ->
            let epoch = R.varint r in
            let sc = R.array r (fun r -> F.of_intervals (Lg_io.get_is r)) in
            let ac = R.array r (fun r -> F.of_intervals (Lg_io.get_is r)) in
            if Array.length sc <> threads || Array.length ac <> threads then
              raise (R.Corrupt "facts row width mismatch");
            Hashtbl.replace facts epoch { sc; ac })
        |> ignore;
        let sched_payload = R.string r in
        R.expect_end r;
        make_state ?pool ~isolation ~threads ~instr_errors ~block_errors
          ~flagged ~total ~stats ~facts ~finalized ~epochs_fed
          ~sched_of:(fun ?pool ~on_instr () ->
            S.decode_state ~set:set_codec ?pool ~wavefront ~on_instr
              sched_payload)
          ()
      with
      | st -> Ok st
      | exception R.Corrupt m -> Error ("addrcheck state: " ^ m)
  end
end

module Fn = Body (Butterfly.Fact_arena.Interval_facts)
module Fl = Body (Butterfly.Fact_arena.Bitset_facts)

type backend = [ `Functional | `Flat ]

let run ?(state = `Functional) ?isolation ?wavefront ?domains ?pool epochs =
  match (state : backend) with
  | `Functional -> Fn.run ?isolation ?wavefront ?domains ?pool epochs
  | `Flat -> Fl.run ?isolation ?wavefront ?domains ?pool epochs

module Resumable = struct
  type state = Fn_state of Fn.Resumable.state | Fl_state of Fl.Resumable.state

  let create ?pool ?isolation ?wavefront ?(state = (`Functional : backend))
      ~threads () =
    match state with
    | `Functional ->
      Fn_state (Fn.Resumable.create ?pool ?isolation ?wavefront ~threads ())
    | `Flat ->
      Fl_state (Fl.Resumable.create ?pool ?isolation ?wavefront ~threads ())

  let feed_epoch st row =
    match st with
    | Fn_state s -> Fn.Resumable.feed_epoch s row
    | Fl_state s -> Fl.Resumable.feed_epoch s row

  let epochs_fed = function
    | Fn_state s -> Fn.Resumable.epochs_fed s
    | Fl_state s -> Fl.Resumable.epochs_fed s

  let finish = function
    | Fn_state s -> Fn.Resumable.finish s
    | Fl_state s -> Fl.Resumable.finish s

  let encode = function
    | Fn_state s -> Fn.Resumable.encode s
    | Fl_state s -> Fl.Resumable.encode s

  let decode ?pool ?wavefront ?(state = (`Functional : backend)) s =
    match state with
    | `Functional ->
      Result.map
        (fun st -> Fn_state st)
        (Fn.Resumable.decode ?pool ?wavefront s)
    | `Flat ->
      Result.map
        (fun st -> Fl_state st)
        (Fl.Resumable.decode ?pool ?wavefront s)
end
