module IS = Butterfly.Interval_set

module Problem = struct
  let name = "addrcheck"

  module Set = Butterfly.Interval_set

  let flavour = `Must

  let gen _id i =
    match Tracing.Instr.alloc_effect i with
    | `Alloc (base, size) -> IS.range base (base + size)
    | `Free _ | `None -> IS.empty

  let kill _id i =
    match Tracing.Instr.alloc_effect i with
    | `Free (base, size) -> IS.range base (base + size)
    | `Alloc _ | `None -> IS.empty
end

module A = Butterfly.Dataflow.Make (Problem)
module S = Butterfly.Scheduler.Make (Problem)

type error_kind =
  | Unallocated_access
  | Unallocated_free
  | Double_alloc
  | Metadata_race

type error = {
  kind : error_kind;
  addrs : IS.t;
  where : [ `Instr of Butterfly.Instr_id.t | `Block of int * Tracing.Tid.t ];
}

type block_stats = { instrs : int; mem_events : int; flagged_events : int }

type report = {
  errors : error list;
  flagged_accesses : int;
  total_accesses : int;
  block_stats : block_stats array array;
  sos : IS.t array;
}

let obs_labels = [ ("lifeguard", "addrcheck") ]
let m_checks = Obs.Counter.make ~labels:obs_labels "lifeguard.checks"
let m_flags = Obs.Counter.make ~labels:obs_labels "lifeguard.flags"
let g_set_hwm = Obs.Gauge.make ~labels:obs_labels "lifeguard.sos_size_hwm"
let sp_isolation = Obs.Span.make ~labels:obs_labels "lifeguard.isolation.ns"

let footprint i =
  match Tracing.Instr.alloc_effect i with
  | `Alloc (base, size) | `Free (base, size) -> IS.range base (base + size)
  | `None ->
    List.fold_left
      (fun acc a -> IS.union acc (IS.singleton a))
      IS.empty (Tracing.Instr.accesses i)

let access_set block =
  Butterfly.Block.fold_left
    (fun acc _id i ->
      match Tracing.Instr.alloc_effect i with
      | `Alloc _ | `Free _ -> acc
      | `None -> IS.union acc (footprint i))
    IS.empty block

let run ?(isolation = true) ?domains ?pool epochs =
  (* Materialize the check/flag counters so clean runs still report 0. *)
  Obs.Counter.add m_checks 0;
  Obs.Counter.add m_flags 0;
  let num_l = Butterfly.Epochs.num_epochs epochs in
  let threads = Butterfly.Epochs.threads epochs in
  (* Pass-1-style summaries (also recomputed inside A.run; cheap). *)
  let summaries =
    Array.init num_l (fun l ->
        Array.init threads (fun tid ->
            A.summarize (Butterfly.Epochs.block epochs ~epoch:l ~tid)))
  in
  let accesses =
    Array.init num_l (fun l ->
        Array.init threads (fun tid ->
            access_set (Butterfly.Epochs.block epochs ~epoch:l ~tid)))
  in
  let state_change l tid =
    if l < 0 || l >= num_l then IS.empty
    else
      let s = summaries.(l).(tid) in
      IS.union s.A.gen_union s.A.kill_union
  in
  let access_of l tid = if l < 0 || l >= num_l then IS.empty else accesses.(l).(tid) in
  (* Isolation-violation set per block (Section 6.1's emptiness check). *)
  let violation l tid =
    let s_change = state_change l tid in
    let s_access = access_of l tid in
    let wing_change = ref IS.empty and wing_access = ref IS.empty in
    for l' = l - 1 to l + 1 do
      for t' = 0 to threads - 1 do
        if t' <> tid then (
          wing_change := IS.union !wing_change (state_change l' t');
          wing_access := IS.union !wing_access (access_of l' t'))
      done
    done;
    IS.union
      (IS.inter s_change !wing_change)
      (IS.union (IS.inter s_access !wing_change) (IS.inter !wing_access s_change))
  in
  let violations =
    Obs.Span.time sp_isolation (fun () ->
        Array.init num_l (fun l ->
            Array.init threads (fun tid ->
                if isolation then violation l tid else IS.empty)))
  in
  let errors = ref [] in
  let flagged = ref 0 in
  let total = ref 0 in
  let stats =
    Array.init threads (fun _ ->
        Array.init num_l (fun _ -> { instrs = 0; mem_events = 0; flagged_events = 0 }))
  in
  let bump tid l f =
    stats.(tid).(l) <- f stats.(tid).(l)
  in
  let on_instr (v : A.instr_view) =
    let { Butterfly.Instr_id.epoch = l; tid; _ } = v.id in
    bump tid l (fun s -> { s with instrs = s.instrs + 1 });
    if Tracing.Instr.is_memory_event v.instr then (
      incr total;
      Obs.Counter.incr m_checks;
      bump tid l (fun s -> { s with mem_events = s.mem_events + 1 }));
    let local_errs =
      match Tracing.Instr.alloc_effect v.instr with
      | `Alloc (base, size) ->
        let bad = IS.inter (IS.range base (base + size)) v.lsos_before in
        if IS.is_empty bad then []
        else [ { kind = Double_alloc; addrs = bad; where = `Instr v.id } ]
      | `Free (base, size) ->
        let bad = IS.diff (IS.range base (base + size)) v.lsos_before in
        if IS.is_empty bad then []
        else [ { kind = Unallocated_free; addrs = bad; where = `Instr v.id } ]
      | `None ->
        List.filter_map
          (fun a ->
            if IS.mem a v.lsos_before then None
            else
              Some
                {
                  kind = Unallocated_access;
                  addrs = IS.singleton a;
                  where = `Instr v.id;
                })
          (Tracing.Instr.accesses v.instr)
    in
    errors := List.rev_append local_errs !errors;
    let races = not (IS.disjoint (footprint v.instr) violations.(l).(tid)) in
    if (local_errs <> [] || races) && Tracing.Instr.is_memory_event v.instr
    then (
      incr flagged;
      Obs.Counter.incr m_flags;
      bump tid l (fun s -> { s with flagged_events = s.flagged_events + 1 }))
  in
  let sos_levels =
    match (pool, domains) with
    | None, None ->
      let result = A.run ~on_instr epochs in
      result.A.sos
    | Some pool, _ ->
      (* Caller-owned pool: same pooled streaming driver, shared across
         runs (the QA fuzz engine reuses one pool for its whole corpus). *)
      let s = S.run_epochs ~pool ~on_instr epochs in
      S.sos_history s
    | None, Some d ->
      (* Pooled streaming: the scheduler delivers the exact same view
         sequence (property-tested), with pass 1/2 on worker domains. *)
      Butterfly.Domain_pool.with_pool ~name:"addrcheck" ~domains:d (fun pool ->
          let s = S.run_epochs ~pool ~on_instr epochs in
          S.sos_history s)
  in
  (* Report isolation violations at block granularity too. *)
  for l = 0 to num_l - 1 do
    for tid = 0 to threads - 1 do
      let v = violations.(l).(tid) in
      if not (IS.is_empty v) then (
        Obs.Counter.incr m_flags;
        errors := { kind = Metadata_race; addrs = v; where = `Block (l, tid) } :: !errors)
    done
  done;
  if Obs.enabled () then
    Array.iter
      (fun s -> Obs.Gauge.set_max g_set_hwm (float_of_int (IS.cardinal s)))
      sos_levels;
  {
    errors = List.rev !errors;
    flagged_accesses = !flagged;
    total_accesses = !total;
    block_stats = stats;
    sos = sos_levels;
  }

let flagged_addresses r =
  List.fold_left (fun acc e -> IS.union acc e.addrs) IS.empty r.errors

let pp_error ppf e =
  let kind =
    match e.kind with
    | Unallocated_access -> "unallocated access"
    | Unallocated_free -> "unallocated free"
    | Double_alloc -> "double alloc"
    | Metadata_race -> "metadata race"
  in
  match e.where with
  | `Instr id ->
    Format.fprintf ppf "%a at %a: %a" Fmt.string kind Butterfly.Instr_id.pp id
      IS.pp e.addrs
  | `Block (l, t) ->
    Format.fprintf ppf "%a in block (%d,%d): %a" Fmt.string kind l t IS.pp
      e.addrs
