(** Serialization helpers shared by the lifeguards' resumable engines.

    The checkpoint payloads ([Resumable.encode]/[decode] in each
    lifeguard) are built from a handful of recurring shapes — interval
    sets, instruction ids, instruction arrays — collected here so every
    lifeguard writes them identically.  Readers raise
    {!Tracing.Binio.R.Corrupt} on malformed input, like the primitives
    they are built from. *)

val put_is : Tracing.Binio.W.t -> Butterfly.Interval_set.t -> unit
val get_is : Tracing.Binio.R.t -> Butterfly.Interval_set.t

val put_id : Tracing.Binio.W.t -> Butterfly.Instr_id.t -> unit
val get_id : Tracing.Binio.R.t -> Butterfly.Instr_id.t

val put_instrs : Tracing.Binio.W.t -> Tracing.Instr.t array -> unit
val get_instrs : Tracing.Binio.R.t -> Tracing.Instr.t array

val sorted_entries : (int, 'a) Hashtbl.t -> (int * 'a) list
(** Hashtable entries sorted by key — serialization must not depend on
    hash-bucket order. *)
