(** Butterfly INITCHECK: uninitialized-read detection over the window.

    A direct instantiation of the generic framework (Section 5): facts are
    {e definitely-defined} locations, so the analysis is
    reaching-expressions flavoured — a location counts as defined at a read
    only if it is defined along {e every} valid ordering.  GEN is a write's
    destination byte; KILL is a [malloc]/[free] range (fresh memory holds
    garbage).  A read of a location outside IN is flagged.

    Like the other butterfly lifeguards: zero false negatives (a read that
    is uninitialized under some valid ordering is always flagged), false
    positives only from potential concurrency.  Unlike AddrCheck it needs
    no extra isolation machinery — the framework's IN sets are exactly the
    check. *)

type error = {
  id : Butterfly.Instr_id.t;
  addrs : Butterfly.Interval_set.t;  (** possibly-undefined bytes read *)
}

type report = {
  errors : error list;
  flagged_reads : int;
  total_reads : int;
  sos : Butterfly.Interval_set.t array;  (** definitely-defined SOS per epoch *)
}

type backend = [ `Functional | `Flat ]
(** Fact-table representation: [`Functional] is the {!Butterfly.Interval_set}
    reference path, [`Flat] the {!Butterfly.Fact_arena.Bitset} fast path.
    Reports are byte-identical across backends (the differential battery
    of [test/test_fact_arena.ml]). *)

val run :
  ?state:backend ->
  ?wavefront:bool ->
  ?domains:int ->
  ?pool:Butterfly.Domain_pool.t ->
  Butterfly.Epochs.t ->
  report
(** [domains] switches the driver from the sequential batch run to the
    pooled streaming scheduler, [pool] is the caller-owned form and
    [wavefront] selects the pipelined (barrier-free) pooled mode (see
    {!Addrcheck.run}); [state] (default [`Functional]) selects the
    fact-table backend; the report is identical in every mode. *)

val flagged_addresses : report -> Butterfly.Interval_set.t
val pp_error : Format.formatter -> error -> unit

val fingerprint : report -> string
(** Canonical one-line digest of a report (counts, every error, the full
    SOS history).  Two reports fingerprint equal iff they are
    semantically identical — the equality used by the resume-equivalence
    and differential test suites. *)

(** Checkpointable epoch-incremental engine.

    Feed whole epoch rows one at a time; between any two rows the engine
    can be serialized with {!Resumable.encode} and later revived with
    {!Resumable.decode}, and the resumed run's {!Resumable.finish} report
    is byte-identical to an uninterrupted run's (see [test_recovery]).
    The payload is raw — [lib/recovery] wraps it in a versioned,
    CRC-guarded envelope. *)
module Resumable : sig
  type state

  val create :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    threads:int ->
    unit ->
    state

  val feed_epoch : state -> Tracing.Instr.t array array -> unit
  (** One epoch row, indexed by tid; width must equal [threads]. *)

  val epochs_fed : state -> int

  val finish : state -> report
  (** Close the final epoch and produce the report.  The state must not
      be used afterwards. *)

  val encode : state -> string

  val decode :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    string ->
    (state, string) result
  (** [Error _] on any malformed payload (never raises).  Snapshots
      serialize fact sets as canonical interval lists, so a checkpoint
      cut under one backend restores under the other. *)
end
