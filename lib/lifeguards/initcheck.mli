(** Butterfly INITCHECK: uninitialized-read detection over the window.

    A direct instantiation of the generic framework (Section 5): facts are
    {e definitely-defined} locations, so the analysis is
    reaching-expressions flavoured — a location counts as defined at a read
    only if it is defined along {e every} valid ordering.  GEN is a write's
    destination byte; KILL is a [malloc]/[free] range (fresh memory holds
    garbage).  A read of a location outside IN is flagged.

    Like the other butterfly lifeguards: zero false negatives (a read that
    is uninitialized under some valid ordering is always flagged), false
    positives only from potential concurrency.  Unlike AddrCheck it needs
    no extra isolation machinery — the framework's IN sets are exactly the
    check. *)

type error = {
  id : Butterfly.Instr_id.t;
  addrs : Butterfly.Interval_set.t;  (** possibly-undefined bytes read *)
}

type report = {
  errors : error list;
  flagged_reads : int;
  total_reads : int;
  sos : Butterfly.Interval_set.t array;  (** definitely-defined SOS per epoch *)
}

val run :
  ?domains:int -> ?pool:Butterfly.Domain_pool.t -> Butterfly.Epochs.t -> report
(** [domains] switches the driver from the sequential batch run to the
    pooled streaming scheduler, [pool] is the caller-owned form (see
    {!Addrcheck.run}); the report is identical in every mode. *)

val flagged_addresses : report -> Butterfly.Interval_set.t
val pp_error : Format.formatter -> error -> unit
