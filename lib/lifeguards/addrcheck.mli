(** Butterfly ADDRCHECK (Section 6.1).

    AddrCheck instantiated over the butterfly framework: allocations are
    GEN, deallocations are KILL, and the analysis is reaching-expressions
    flavoured (an address is known-allocated only if it is allocated along
    {e every} valid ordering).  Checking is two-part:

    - {b Local} (uses LSOS{_l,t,i}): every access/free must target memory
      that appears allocated within the thread's own strongly ordered view,
      and every malloc must target memory that appears deallocated.
    - {b Isolation} (uses wing summaries): an allocation-state change must
      not be potentially concurrent with any access or other state change
      to the same bytes — a metadata race (Figure 9).

    Flagged events that the actual execution would not flag are false
    positives; Theorem 6.1 guarantees there are no false negatives. *)

type error_kind =
  | Unallocated_access
  | Unallocated_free
  | Double_alloc
  | Metadata_race  (** isolation violation: concurrent state change *)

type error = {
  kind : error_kind;
  addrs : Butterfly.Interval_set.t;
  where : [ `Instr of Butterfly.Instr_id.t | `Block of int * Tracing.Tid.t ];
}

type block_stats = {
  instrs : int;
  mem_events : int;
  flagged_events : int;  (** events this block flagged (for FP accounting) *)
}

type report = {
  errors : error list;
  flagged_accesses : int;  (** memory events flagged across the run *)
  total_accesses : int;
  block_stats : block_stats array array;  (** [.(tid).(epoch)] *)
  sos : Butterfly.Interval_set.t array;  (** allocated-state SOS per epoch *)
}

type backend = [ `Functional | `Flat ]
(** Fact-table representation: [`Functional] is the {!Butterfly.Interval_set}
    reference path, [`Flat] the {!Butterfly.Fact_arena.Bitset} fast path.
    Reports are byte-identical across backends (the differential battery
    of [test/test_fact_arena.ml]). *)

val run :
  ?state:backend ->
  ?isolation:bool ->
  ?wavefront:bool ->
  ?domains:int ->
  ?pool:Butterfly.Domain_pool.t ->
  Butterfly.Epochs.t ->
  report
(** [state] (default [`Functional]) selects the fact-table backend.

    [isolation] (default [true]) enables the wing-summary isolation check.
    Disabling it is an ablation: local LSOS checks alone miss the
    metadata races of Figure 9 (allocation state changing concurrently
    with an access), reintroducing false negatives — the tests demonstrate
    exactly which errors it loses.

    [domains] switches the underlying driver from the sequential batch
    run to the pooled streaming scheduler with a {!Butterfly.Domain_pool}
    of that many workers (capped at the hardware's recommended domain
    count).  [pool] is the caller-owned form of the same driver — the
    pool is reused across calls and the caller shuts it down ([pool] wins
    if both are given, mirroring {!Taintcheck.run}).  [wavefront]
    (default [false]; needs a pool) removes the pooled driver's epoch
    barrier: pass-2 epochs pipeline through the pool with master-side
    ordered delivery.  The report is identical in every mode — the
    drivers' equivalence is property-tested and continuously fuzzed
    ([lib/qa], [test/test_wavefront.ml]). *)

val flagged_addresses : report -> Butterfly.Interval_set.t
val pp_error : Format.formatter -> error -> unit

val fingerprint : report -> string
(** Canonical one-line digest of a report (counts, every error, the full
    SOS history and per-block stats).  Two reports fingerprint equal iff
    they are semantically identical — the equality used by the
    resume-equivalence and differential test suites. *)

(** Checkpointable epoch-incremental engine.

    Feed whole epoch rows one at a time; between any two rows the engine
    can be serialized with {!Resumable.encode} and later revived with
    {!Resumable.decode}, and the resumed run's {!Resumable.finish} report
    is byte-identical to an uninterrupted run's (see [test_recovery]).
    The isolation check's whole-grid precomputation in {!run} is replaced
    by a sliding window of per-row footprints, finalized and pruned as
    the wing passes each row.  The payload is raw — [lib/recovery] wraps
    it in a versioned, CRC-guarded envelope. *)
module Resumable : sig
  type state

  val create :
    ?pool:Butterfly.Domain_pool.t ->
    ?isolation:bool ->
    ?wavefront:bool ->
    ?state:backend ->
    threads:int ->
    unit ->
    state
  (** [wavefront] (with [pool]) runs the underlying scheduler in
      pipelined mode; checkpoints are still cut at sealed-epoch
      frontiers, so resume equivalence is unaffected.  [state] (default
      [`Functional]) selects the fact-table backend. *)

  val feed_epoch : state -> Tracing.Instr.t array array -> unit
  (** One epoch row, indexed by tid; width must equal [threads]. *)

  val epochs_fed : state -> int

  val finish : state -> report
  (** Close the final epoch and produce the report.  The state must not
      be used afterwards. *)

  val encode : state -> string

  val decode :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    string ->
    (state, string) result
  (** [Error _] on any malformed payload (never raises).  Snapshots
      serialize fact sets as canonical interval lists, so a checkpoint
      cut under one backend restores under the other. *)
end
