(** Ground-truth comparisons for the soundness theorems.

    The paper's guarantees quantify over valid orderings: any error the
    sequential lifeguard would report on {e some} valid ordering must also
    be reported by the butterfly lifeguard (Theorems 6.1, 6.2).  This
    module enumerates (small traces) or samples (large traces) valid
    orderings, runs the sequential lifeguards over them, and compares. *)

type verdict = {
  sound : bool;  (** butterfly findings cover every sequential finding *)
  orderings_checked : int;
  exhaustive : bool;  (** all valid orderings were enumerated *)
  missed : string list;  (** descriptions of any violations found *)
}

val addrcheck_zero_false_negatives :
  ?model:Memmodel.Consistency.t ->
  ?cap:int ->
  ?samples:int ->
  ?seed:int ->
  ?wavefront:bool ->
  ?domains:int ->
  Tracing.Program.t ->
  verdict
(** Splits the program at its heartbeats, runs butterfly AddrCheck, and
    checks that every address flagged by sequential AddrCheck under any
    enumerated (or sampled, when enumeration exceeds [cap]) valid ordering
    is also flagged.  [domains] runs the butterfly side on the pooled
    streaming scheduler instead of the batch driver and [wavefront]
    selects its pipelined mode (see {!Addrcheck.run}), so the soundness
    theorem is checked against the parallel deployments too. *)

val initcheck_zero_false_negatives :
  ?model:Memmodel.Consistency.t ->
  ?cap:int ->
  ?samples:int ->
  ?seed:int ->
  ?wavefront:bool ->
  ?domains:int ->
  Tracing.Program.t ->
  verdict
(** Same for InitCheck: every byte sequential InitCheck flags as read
    uninitialized under any valid ordering must be flagged. *)

val racecheck_zero_false_negatives :
  ?model:Memmodel.Consistency.t ->
  ?cap:int ->
  ?samples:int ->
  ?seed:int ->
  ?wavefront:bool ->
  ?domains:int ->
  Tracing.Program.t ->
  verdict
(** Same for RaceCheck.  Per valid ordering, ground-truth races are the
    conflicting cross-thread pairs left unordered by the explicit
    happens-before graph (program order, the epoch assumption, fork/join
    edges, and that ordering's observed unlock-to-lock edges) whose
    locksets are disjoint; each must appear in butterfly RaceCheck's
    {!Racecheck.flagged_pairs}.  Only meaningful under the default
    [Sequential] model: the graph assumes program order is respected. *)

val taintcheck_zero_false_negatives :
  ?model:Memmodel.Consistency.t ->
  ?cap:int ->
  ?samples:int ->
  ?seed:int ->
  ?sequential:bool ->
  ?two_phase:bool ->
  ?wavefront:bool ->
  ?domains:int ->
  Tracing.Program.t ->
  verdict
(** Same for TaintCheck: every sink location flagged sequentially under any
    valid ordering must be flagged by butterfly TaintCheck.  When checking
    a relaxed [model], pass [~sequential:false] so the checker uses the
    relaxed termination condition.  [domains] runs the butterfly side on a
    domain pool (see {!Taintcheck.run}), checking the theorem against the
    parallel deployment. *)
