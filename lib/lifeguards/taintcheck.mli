(** Butterfly TAINTCHECK (Section 6.2).

    Taint tracking over the butterfly framework.  Each write produces an
    SSA-like {e transfer function} [x_(l,t,i) <- s] with
    [s ∈ {⊥ (tainted), ⊤ (untainted), {a}, {a,b} (inheritance)}].  A
    location may be tainted at a point if {e some} valid ordering taints it
    (reaching-definitions flavour): the [Check] resolution chases
    inheritance chains through the window's transfer functions until it
    reaches ⊥, ⊤ or the strongly ordered taint state.

    Resolution is two-phase (Lemma 6.3): chains are first resolved using
    transfer functions from epochs [l-1, l], then from [l, l+1], with
    phase-1 taint conclusions persisting — this rejects impossible
    orderings such as epoch [l+1] writes feeding epoch [l-1] reads.

    Termination: under [~sequential:true] the chase keeps a per-thread
    position and only follows a thread's transfer functions in descending
    program order (the SC condition); otherwise it merely never revisits a
    transfer function (the relaxed condition) — more conservative, hence
    potentially more false positives, but still no false negatives
    (Theorem 6.2). *)

type error = {
  id : Butterfly.Instr_id.t;  (** the sink instruction *)
  sink : Tracing.Addr.t;
}

type block_stats = {
  instrs : int;
  mem_events : int;
  checks_resolved : int;  (** transfer-function resolutions performed *)
}

type report = {
  errors : error list;
  sos_tainted : Tracing.Addr.t list array;
      (** tainted locations in SOS{_l}, per epoch (sorted) *)
  block_stats : block_stats array array;  (** [.(tid).(epoch)] *)
}

type backend = [ `Functional | `Flat ]
(** Fact-table representation: [`Functional] is the original
    [Set.Make (Int)] reference path, [`Flat] the
    {!Butterfly.Fact_arena.Bitset} fast path with per-row GEN/KILL
    memoization.  Reports are byte-identical across backends (the
    differential battery of [test/test_fact_arena.ml]). *)

val run :
  ?state:backend ->
  ?sequential:bool ->
  ?two_phase:bool ->
  ?wavefront:bool ->
  ?domains:int ->
  ?pool:Butterfly.Domain_pool.t ->
  Butterfly.Epochs.t ->
  report
(** [state] (default [`Functional]) selects the fact-table backend.

    [sequential] defaults to [true] (the machine-model assumption of
    Sections 3–4.3); pass [false] for the relaxed-consistency variant.
    [two_phase] (default [true]) enables the false-positive reduction of
    Lemma 6.3; disabling it is the ablation of that design choice — still
    sound, strictly less precise.

    [pool] runs both butterfly passes on the given domain pool via
    {!Butterfly.Scheduler.Epochwise}: pass-1 summaries for the whole grid
    fan out at once, pass-2 block evaluations fan out per epoch behind a
    barrier, and the master serializes LASTCHECK/SOS commits epoch-major /
    thread-minor — the report is structurally identical to the sequential
    run (property-tested in [test/test_taintcheck_parallel.ml]).
    [domains] is the convenience form: a private pool of that many domains
    is created for the call and shut down afterwards ([pool] wins if both
    are given).  Omit both for the sequential driver.

    [wavefront] (default [false]) switches the pooled path to
    {!Butterfly.Scheduler.Wavefront}: pass-1 summarization runs a
    lookahead window ahead of the pass-2 cursor instead of fanning the
    whole grid out behind a barrier, so summaries of future epochs
    overlap the serially-dependent LASTCHECK chase.  Reports are
    byte-identical across all drivers ([test/test_wavefront.ml]). *)

val flagged_sinks : report -> Tracing.Addr.t list

val pp_error : Format.formatter -> error -> unit

val fingerprint : report -> string
(** Canonical one-line digest of a report (every error, the full tainted
    SOS history and per-block stats).  Two reports fingerprint equal iff
    they are semantically identical — the equality used by the
    resume-equivalence and differential test suites. *)

(** Checkpointable epoch-incremental engine.

    Feed whole epoch rows one at a time; between any two rows the engine
    can be serialized with {!Resumable.encode} and later revived with
    {!Resumable.decode}, and the resumed run's {!Resumable.finish} report
    is byte-identical to an uninterrupted run's (see [test_recovery]).
    The engine shares the pass-2 evaluation core with {!run} verbatim,
    localized to a sliding window: raw rows, pass-1 summaries and
    LASTCHECK rows the window has passed are pruned from the state (and
    hence from checkpoints).  The payload is raw — [lib/recovery] wraps
    it in a versioned, CRC-guarded envelope. *)
module Resumable : sig
  type state

  val create :
    ?pool:Butterfly.Domain_pool.t ->
    ?sequential:bool ->
    ?two_phase:bool ->
    ?wavefront:bool ->
    ?state:backend ->
    threads:int ->
    unit ->
    state
  (** [wavefront] (with [pool]) pipelines pass-1 summarization of newly
      fed rows against the pass-2 window; results are unchanged.  Ignored
      without a pool.  [state] (default [`Functional]) selects the
      fact-table backend. *)

  val feed_epoch : state -> Tracing.Instr.t array array -> unit
  (** One epoch row, indexed by tid; width must equal [threads]. *)

  val epochs_fed : state -> int

  val finish : state -> report
  (** Close the final epoch and produce the report.  The state must not
      be used afterwards. *)

  val encode : state -> string

  val decode :
    ?pool:Butterfly.Domain_pool.t ->
    ?wavefront:bool ->
    ?state:backend ->
    string ->
    (state, string) result
  (** [Error _] on any malformed payload (never raises).  The analysis
      variant ([sequential]/[two_phase]) travels inside the payload;
      [pool]/[wavefront]/[state] are transient plumbing re-supplied on
      restore.  Snapshots are representation-independent (sorted element
      lists), so a checkpoint cut under one backend restores under the
      other. *)
end

(**/**)

(** Test-only fault injection, consumed by the QA mutation smoke test
    ([test/test_qa.ml]): with [break_binop_meet] set, a binop's transfer
    function drops its second source — an unsound meet that the
    differential fuzz engine must catch as a Theorem 6.2 violation.
    Never set this outside tests. *)
module Testing : sig
  val break_binop_meet : bool ref
end
