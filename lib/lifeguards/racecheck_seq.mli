(** Sequential reference implementation of RaceCheck.

    A deliberately naive brute force over the grid — locksets by full
    trace replay, happens-before by scanning for the fork/join
    instructions directly — sharing no code with the windowed parallel
    lifeguard.  Every parallel driver must reproduce its report byte for
    byte ({!Racecheck.fingerprint}); the battery in
    [test/test_racecheck.ml] pins this on hundreds of generated grids. *)

val check : Butterfly.Epochs.t -> Racecheck.report

val locks_before :
  Butterfly.Epochs.t -> tid:int -> epoch:int -> index:int -> Racecheck.Lockset.t
(** Locks [tid] holds just before instruction [index] of its
    epoch-[epoch] block, by replay from the start of the trace.  Also
    used by the interleaving oracle's lockset filter. *)

val accesses_of :
  Butterfly.Block.t -> (int * Tracing.Addr.t * Racecheck.kind) list
(** [(index, addr, kind)] triples in pairing order: instruction order,
    each instruction's write before its reads. *)
