(** Tunable synthetic workload for sensitivity and ablation studies.

    The four knobs isolate the workload properties the evaluation depends
    on: memory-event density (lifeguard load), inter-thread sharing and
    allocation churn (false-positive pressure), and load imbalance
    (parallel speedup). *)

type knobs = {
  mem_ratio : float;  (** fraction of instructions touching memory, [0,1] *)
  sharing : float;  (** fraction of accesses to the shared region, [0,1] *)
  churn : float;
      (** probability per 100 instructions that a thread recycles (frees
          and re-allocates) a shared buffer *)
  imbalance : float;
      (** thread [t] receives [scale * (1 - imbalance * t / threads)]
          instructions, [0,1) *)
}

val default : knobs

val generate :
  ?knobs:knobs -> threads:int -> scale:int -> seed:int -> unit ->
  Workload.Bundle.t

val generate_racy :
  ?counters:int ->
  ?discipline:float ->
  threads:int ->
  scale:int ->
  seed:int ->
  unit ->
  Workload.Bundle.t
(** Lock-discipline workload for RaceCheck: threads hammer [counters]
    shared words, each access guarded by that counter's mutex with
    probability [discipline].  [discipline = 1.0] (the default) is
    race-free by construction; lower values seed genuine races at a
    controllable rate. *)

val profile_of : string -> knobs -> Workload.profile

val racy_profile : string -> discipline:float -> Workload.profile
(** A {!generate_racy} instance as a named workload profile. *)
