module I = Tracing.Instr

type scenario = {
  name : string;
  program : Tracing.Program.t;
  racy_addrs : Tracing.Addr.t list;
  guarded_addrs : Tracing.Addr.t list;
}

(* Locations: a shared counter, two handoff cells and a scratch word. *)
let counter = 0x200
let cell_a = 0x208
let cell_b = 0x210
let scratch = 0x218
let mutex = 0

let pad n = List.init n (fun _ -> I.Nop)

(* The canonical twin pair: two threads bump one shared counter from
   adjacent epochs.  With [locked] each bump sits in a lock/unlock pair
   around the same mutex, so every conflicting cross-thread pair shares
   the lock and RaceCheck stays silent; without it the very same access
   pattern is a textbook write-write / read-write race. *)
let counter_bump ~locked =
  let bump =
    if locked then [ I.Lock mutex; I.Assign_unop (counter, counter); I.Unlock mutex ]
    else [ I.Nop; I.Assign_unop (counter, counter); I.Nop ]
  in
  let t0 = bump @ pad 1 in
  let t1 = pad 4 @ bump @ pad 1 in
  {
    name = (if locked then "locked-counter" else "unlocked-counter");
    program =
      Tracing.Program.of_instrs [ t0; t1 ]
      |> Tracing.Program.with_heartbeats ~every:4;
    racy_addrs = (if locked then [] else [ counter ]);
    guarded_addrs = (if locked then [ counter ] else []);
  }

let unlocked_counter () = counter_bump ~locked:false
let locked_counter () = counter_bump ~locked:true

(* Fork and join edges as the ordering mechanism: the parent hands
   [cell_a] to the thread it forks and [cell_b] travels back through a
   join, while a third thread races on [scratch] with nothing ordering
   it.  RaceCheck must clear both handoffs and flag only the scratch
   word. *)
let fork_join () =
  let t0 = [ I.Assign_const cell_a; I.Fork 1; I.Assign_const scratch; I.Nop ] in
  let t1 = pad 4 @ [ I.Read cell_a; I.Join 2; I.Read cell_b; I.Nop ] in
  let t2 = [ I.Assign_const cell_b; I.Nop; I.Read scratch; I.Nop ] in
  {
    name = "fork-join";
    program =
      Tracing.Program.of_instrs [ t0; t1; t2 ]
      |> Tracing.Program.with_heartbeats ~every:4;
    racy_addrs = [ scratch ];
    guarded_addrs = [ cell_a; cell_b ];
  }

let all () = [ unlocked_counter (); locked_counter (); fork_join () ]
