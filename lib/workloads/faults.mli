(** Memory-bug injection for AddrCheck validation and demos.

    Each scenario returns the program together with the set of {e true}
    errors it contains — accesses that violate allocation discipline under
    {e every} possible ordering — so callers can verify the
    zero-false-negative guarantee and measure false positives exactly. *)

type bug_kind = Use_after_free | Double_free | Unallocated_access | Data_race

type injected = {
  kind : bug_kind;
  tid : Tracing.Tid.t;
  addr : Tracing.Addr.t;  (** address whose access/free is erroneous *)
}

val pp_bug : Format.formatter -> injected -> unit

val use_after_free :
  threads:int -> scale:int -> seed:int -> Tracing.Program.t * injected list
(** A synthetic workload where one thread frees its scratch buffer and then
    keeps reading it. *)

val double_free :
  threads:int -> scale:int -> seed:int -> Tracing.Program.t * injected list

val unallocated_access :
  threads:int -> scale:int -> seed:int -> Tracing.Program.t * injected list
(** A stray pointer dereference into memory that was never allocated. *)

val data_race :
  ?locked:bool ->
  threads:int ->
  scale:int ->
  seed:int ->
  unit ->
  Tracing.Program.t * injected list
(** Two threads (the first and the last) write one scratch word at the
    same aligned trace offset, so the conflict lands inside the butterfly
    window under any heartbeat interval.  With [locked] both writes are
    guarded by one mutex and the injected-bug list is empty — the
    race-free twin.  A single-thread run also injects nothing (program
    order serializes the writes). *)

val all_kinds :
  threads:int -> scale:int -> seed:int -> Tracing.Program.t * injected list
(** One of each, in different threads where possible. *)
