module I = Tracing.Instr

type knobs = {
  mem_ratio : float;
  sharing : float;
  churn : float;
  imbalance : float;
}

let default = { mem_ratio = 0.5; sharing = 0.1; churn = 0.01; imbalance = 0.0 }

let generate ?(knobs = default) ~threads ~scale ~seed () =
  if threads <= 0 then invalid_arg "Synthetic.generate: threads must be > 0";
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let rngs =
    Array.init threads (fun t -> Random.State.make [| seed; t; 0x5f17 |])
  in
  let private_elems = 64 and shared_elems = 64 in
  let privates =
    Array.init threads (fun t -> Workload.Heap.alloc heap ems.(t) (8 * private_elems))
  in
  let shared = Array.init threads (fun t -> Workload.Heap.alloc heap ems.(t) (8 * shared_elems)) in
  let budget t =
    let f = 1.0 -. (knobs.imbalance *. float_of_int t /. float_of_int threads) in
    max 1 (int_of_float (float_of_int scale *. f))
  in
  (* Generate in synchronized rounds so cross-thread references always name
     a buffer that is live in that round: the round-robin interleaving of
     the resulting traces is race-free by construction. *)
  let round = 50 in
  let remaining = Array.init threads budget in
  let live () = Array.exists (fun r -> r > 0) remaining in
  while live () do
    Array.iteri
      (fun t em ->
        let rng = rngs.(t) in
        let quota = min round remaining.(t) in
        remaining.(t) <- remaining.(t) - quota;
        for _ = 1 to quota do
          if Random.State.float rng 1.0 < knobs.churn /. 100.0 then (
            (* Recycle this thread's shared buffer. *)
            Workload.Heap.free heap em shared.(t);
            shared.(t) <- Workload.Heap.alloc heap em (8 * shared_elems))
          else if Random.State.float rng 1.0 < knobs.mem_ratio then (
            let target =
              if Random.State.float rng 1.0 < knobs.sharing && threads > 1 then (
                let t' = (t + 1 + Random.State.int rng (threads - 1)) mod threads in
                Workload.elem shared.(t') (Random.State.int rng shared_elems))
              else Workload.elem privates.(t) (Random.State.int rng private_elems)
            in
            let own = Workload.elem privates.(t) (Random.State.int rng private_elems) in
            if Random.State.bool rng then
              Workload.Emitter.emit em (I.Assign_binop (own, own, target))
            else Workload.Emitter.emit em (I.Read target))
          else Workload.Emitter.emit em I.Nop
        done)
      ems
  done;
  Array.iteri (fun t b -> Workload.Heap.free heap ems.(t) b) privates;
  Array.iteri (fun t b -> Workload.Heap.free heap ems.(t) b) shared;
  bundle

(* Lock-discipline workload for RaceCheck: every thread hammers a small
   set of shared counters, taking the counter's mutex around an access
   with probability [discipline].  Discipline 1.0 is race-free by
   construction (every conflicting pair shares the counter's lock);
   anything lower seeds genuine data races at a controllable rate. *)
let generate_racy ?(counters = 4) ?(discipline = 1.0) ~threads ~scale ~seed () =
  if threads <= 0 then
    invalid_arg "Synthetic.generate_racy: threads must be > 0";
  let heap = Workload.Heap.create () in
  let bundle = Workload.Bundle.create ~threads in
  let ems = Workload.Bundle.emitters bundle in
  let rngs =
    Array.init threads (fun t -> Random.State.make [| seed; t; 0xace5 |])
  in
  let shared = Workload.Heap.alloc heap ems.(0) (8 * counters) in
  let round = 50 in
  let remaining = Array.make threads (max 1 scale) in
  while Array.exists (fun r -> r > 0) remaining do
    Array.iteri
      (fun t em ->
        let rng = rngs.(t) in
        let quota = min round remaining.(t) in
        remaining.(t) <- remaining.(t) - quota;
        for _ = 1 to quota do
          let c = Random.State.int rng counters in
          let a = Workload.elem shared c in
          let guarded = Random.State.float rng 1.0 < discipline in
          if guarded then Workload.Emitter.emit em (I.Lock c);
          if Random.State.bool rng then
            Workload.Emitter.emit em (I.Assign_unop (a, a))
          else Workload.Emitter.emit em (I.Read a);
          if guarded then Workload.Emitter.emit em (I.Unlock c)
        done)
      ems
  done;
  Workload.Heap.free heap ems.(0) shared;
  bundle

let racy_profile name ~discipline =
  {
    Workload.name;
    suite = "synthetic";
    input_desc = Printf.sprintf "counters=4 discipline=%.2f" discipline;
    generate =
      (fun ~threads ~scale ~seed ->
        generate_racy ~discipline ~threads ~scale ~seed ());
  }

let profile_of name knobs =
  {
    Workload.name;
    suite = "synthetic";
    input_desc =
      Printf.sprintf "mem=%.2f share=%.2f churn=%.2f imb=%.2f" knobs.mem_ratio
        knobs.sharing knobs.churn knobs.imbalance;
    generate = (fun ~threads ~scale ~seed -> generate ~knobs ~threads ~scale ~seed ());
  }
