module I = Tracing.Instr

type bug_kind = Use_after_free | Double_free | Unallocated_access | Data_race

type injected = {
  kind : bug_kind;
  tid : Tracing.Tid.t;
  addr : Tracing.Addr.t;
}

let pp_bug ppf b =
  let kind =
    match b.kind with
    | Use_after_free -> "use-after-free"
    | Double_free -> "double-free"
    | Unallocated_access -> "unallocated-access"
    | Data_race -> "data-race"
  in
  Format.fprintf ppf "%s of %a in %a" kind Tracing.Addr.pp b.addr
    Tracing.Tid.pp b.tid

let base_workload ~threads ~scale ~seed =
  Synthetic.generate
    ~knobs:{ Synthetic.default with sharing = 0.05; churn = 0.05 }
    ~threads ~scale ~seed ()

(* A region far above the synthetic heap, so injections never collide with
   legitimate allocations. *)
let scratch_base = 0x4000000

let inject_uaf bundle tid =
  let em = Workload.Bundle.em bundle tid in
  let b = scratch_base in
  Workload.Emitter.emit em (I.Malloc { base = b; size = 32 });
  Workload.Emitter.emit em (I.Assign_const b);
  Workload.Emitter.emit em (I.Free { base = b; size = 32 });
  Workload.Emitter.emit em (I.Read (b + 8));
  Workload.Emitter.emit em (I.Assign_const (b + 16));
  [
    { kind = Use_after_free; tid; addr = b + 8 };
    { kind = Use_after_free; tid; addr = b + 16 };
  ]

let inject_df bundle tid =
  let em = Workload.Bundle.em bundle tid in
  let b = scratch_base + 0x1000 in
  Workload.Emitter.emit em (I.Malloc { base = b; size = 16 });
  Workload.Emitter.emit em (I.Read b);
  Workload.Emitter.emit em (I.Free { base = b; size = 16 });
  Workload.Emitter.emit em (I.Free { base = b; size = 16 });
  [ { kind = Double_free; tid; addr = b } ]

let inject_ua bundle tid =
  let em = Workload.Bundle.em bundle tid in
  let b = scratch_base + 0x2000 in
  Workload.Emitter.emit em (I.Read b);
  [ { kind = Unallocated_access; tid; addr = b } ]

(* Two threads write one scratch word with no lock and no fork/join edge.
   The emitters are aligned first so both writes land at the same trace
   offset — whatever heartbeat interval the caller slices with, the
   conflicting accesses share an epoch and sit squarely inside the
   butterfly window.  [locked] guards both writes with one mutex,
   producing the race-free twin of the same access pattern. *)
let race_mutex = 0x7f

let inject_race ?(locked = false) bundle t_a t_b =
  let b = scratch_base + 0x3000 in
  Workload.Emitter.emit (Workload.Bundle.em bundle t_a)
    (I.Malloc { base = b; size = 16 });
  Workload.Bundle.align bundle;
  List.iter
    (fun tid ->
      let em = Workload.Bundle.em bundle tid in
      if locked then Workload.Emitter.emit em (I.Lock race_mutex);
      Workload.Emitter.emit em (I.Assign_const b);
      if locked then Workload.Emitter.emit em (I.Unlock race_mutex))
    [ t_a; t_b ];
  if locked || t_a = t_b then []
  else [ { kind = Data_race; tid = t_b; addr = b } ]

let finish bundle bugs = (Workload.Bundle.program bundle, bugs)

let use_after_free ~threads ~scale ~seed =
  let bundle = base_workload ~threads ~scale ~seed in
  finish bundle (inject_uaf bundle (threads - 1))

let double_free ~threads ~scale ~seed =
  let bundle = base_workload ~threads ~scale ~seed in
  finish bundle (inject_df bundle 0)

let unallocated_access ~threads ~scale ~seed =
  let bundle = base_workload ~threads ~scale ~seed in
  finish bundle (inject_ua bundle (threads / 2))

let data_race ?locked ~threads ~scale ~seed () =
  let bundle = base_workload ~threads ~scale ~seed in
  finish bundle (inject_race ?locked bundle 0 (threads - 1))

let all_kinds ~threads ~scale ~seed =
  let bundle = base_workload ~threads ~scale ~seed in
  let bugs =
    inject_uaf bundle (threads - 1)
    @ inject_df bundle 0
    @ inject_ua bundle (threads / 2)
  in
  finish bundle bugs
