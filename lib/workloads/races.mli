(** Data-race scenarios for RaceCheck (DESIGN §16).

    Small hand-built parallel traces with known synchronization
    structure: each scenario records the addresses RaceCheck {e must}
    flag ([racy_addrs] — conflicting cross-thread accesses no
    happens-before edge or common lock orders) and the addresses it must
    leave clean ([guarded_addrs] — the same access shapes, ordered by a
    lock, fork or join).  The pair [unlocked_counter]/[locked_counter]
    is the twin required by the acceptance battery: identical access
    pattern, one flagged, one silent. *)

type scenario = {
  name : string;
  program : Tracing.Program.t;
  racy_addrs : Tracing.Addr.t list;
      (** addresses with at least one genuine race *)
  guarded_addrs : Tracing.Addr.t list;
      (** shared addresses whose accesses are all synchronized *)
}

val unlocked_counter : unit -> scenario
(** Two threads bump a shared counter from adjacent epochs, no locks. *)

val locked_counter : unit -> scenario
(** The properly-locked twin of {!unlocked_counter}: same accesses, each
    inside a lock/unlock pair on one mutex — race-free. *)

val fork_join : unit -> scenario
(** Fork and join edges order two handoff cells; a third thread races on
    a scratch word that nothing orders. *)

val all : unit -> scenario list
