type t = Sequential | Tso | Relaxed

let equal a b = a = b

let to_string = function
  | Sequential -> "sequential"
  | Tso -> "tso"
  | Relaxed -> "relaxed"

let pp ppf m = Format.pp_print_string ppf (to_string m)
let all = [ Sequential; Tso; Relaxed ]

(* Location footprints.  Malloc/Free touch their whole range (the allocator
   mutates that memory and its metadata), so they order against any access
   falling inside the range. *)

type footprint = {
  reads : (Tracing.Addr.t * int) list; (* (base, len) ranges read *)
  writes : (Tracing.Addr.t * int) list;
  fence : bool; (* system-call-like: ordered against everything *)
}

let footprint (i : Tracing.Instr.t) : footprint =
  let pt a = (a, 1) in
  match i with
  | Assign_const x -> { reads = []; writes = [ pt x ]; fence = false }
  | Assign_unop (x, a) -> { reads = [ pt a ]; writes = [ pt x ]; fence = false }
  | Assign_binop (x, a, b) ->
    { reads = [ pt a; pt b ]; writes = [ pt x ]; fence = false }
  | Read a -> { reads = [ pt a ]; writes = []; fence = false }
  | Malloc { base; size } | Free { base; size } ->
    { reads = []; writes = [ (base, size) ]; fence = true }
  | Taint_source x | Untaint x ->
    { reads = []; writes = [ pt x ]; fence = true }
  | Jump_via x | Syscall_arg x ->
    { reads = [ pt x ]; writes = []; fence = true }
  (* Synchronization operations order against everything in their own
     thread under every model (acquire/release and fork/join barriers) —
     without this, lock-based happens-before would be meaningless under
     TSO/relaxed executions. *)
  | Lock _ | Unlock _ | Fork _ | Join _ ->
    { reads = []; writes = []; fence = true }
  | Nop -> { reads = []; writes = []; fence = false }

let ranges_overlap (b1, l1) (b2, l2) =
  b1 < b2 + l2 && b2 < b1 + l1

let any_overlap r1 r2 =
  List.exists (fun a -> List.exists (fun b -> ranges_overlap a b) r2) r1

(* Dependence edge under the weakest model: read-after-write,
   write-after-write (coherence) or write-after-read on an overlapping
   location, or either side is a fence. *)
let depends fi fj =
  fi.fence || fj.fence
  || any_overlap fi.writes fj.reads
  || any_overlap fi.writes fj.writes
  || any_overlap fi.reads fj.writes

(* TSO relaxes exactly store -> later load to a distinct location. *)
let tso_ordered fi fj =
  let pure_store f = f.writes <> [] && f.reads = [] && not f.fence in
  let load f = f.reads <> [] in
  if fi.fence || fj.fence then true
  else if pure_store fi && load fj && not (any_overlap fi.writes fj.reads)
  then depends fi fj
  else true

let intra_thread_edges m is =
  let n = Array.length is in
  match m with
  | Sequential -> List.init (max 0 (n - 1)) (fun i -> (i, i + 1))
  | Tso | Relaxed ->
    let fp = Array.map footprint is in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let ordered =
          match m with
          | Tso -> tso_ordered fp.(i) fp.(j)
          | Relaxed -> depends fp.(i) fp.(j)
          | Sequential -> true
        in
        if ordered then edges := (i, j) :: !edges
      done
    done;
    List.rev !edges
