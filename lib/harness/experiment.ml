type config = {
  machine : Machine.Machine_config.t;
  total_scale : int;
  seed : int;
  quantum : int;
}

let default_config =
  {
    machine = Machine.Machine_config.default;
    total_scale = 48_000;
    seed = 1;
    quantum = 1000;
  }

type result = {
  benchmark : string;
  threads : int;
  epoch_size : int;
  seq_unmonitored_cycles : int;
  timesliced : float;
  butterfly : float;
  parallel_unmonitored : float;
  flagged_events : int;
  total_accesses : int;
  fp_rate_percent : float;
  app_stall_cycles : int;
}

let m_runs = Obs.Counter.make "experiment.runs"

let run ?(config = default_config) (profile : Workloads.Workload.profile)
    ~threads ~epoch_size =
  Obs.Counter.incr m_runs;
  Obs.Span.time
    (Obs.Span.make ~labels:[ ("benchmark", profile.name) ] "experiment.run.ns")
  @@ fun () ->
  let scale = max 1 (config.total_scale / threads) in
  let bundle = profile.generate ~threads ~scale ~seed:config.seed in
  let p = Workloads.Workload.Bundle.program bundle in
  let p_hb = Machine.Heartbeat.insert ~every:epoch_size p in
  (* Accuracy: run the actual butterfly AddrCheck. *)
  let epochs = Butterfly.Epochs.of_program p_hb in
  let ac = Lifeguards.Addrcheck.run epochs in
  (* Application-side timing. *)
  let app = Machine.App_timing.per_thread_epochs config.machine p_hb in
  let seq = Machine.App_timing.sequential_cycles config.machine p in
  let parallel_app =
    Array.fold_left
      (fun m row ->
        max m
          (Array.fold_left
             (fun acc (e : Machine.App_timing.epoch_cost) -> acc + e.cycles)
             0 row))
      0 app
  in
  (* Butterfly monitoring timeline. *)
  let flagged tid l =
    let stats = ac.block_stats in
    if tid < Array.length stats && l < Array.length stats.(tid) then
      stats.(tid).(l).Lifeguards.Addrcheck.flagged_events
    else 0
  in
  let input = Cost_model.butterfly_input config.machine p_hb ~app ~flagged in
  let bf = Machine.Monitor_sim.parallel input in
  (* Timesliced monitoring. *)
  let ts_app =
    Machine.App_timing.timesliced_cycles ~quantum:config.quantum config.machine p
  in
  let ts_lifeguard =
    Cost_model.timesliced_lifeguard_cycles ~quantum:config.quantum
      config.machine p
  in
  let ts =
    Machine.Monitor_sim.timesliced
      { app_total_cycles = ts_app; lifeguard_total_cycles = ts_lifeguard }
  in
  let norm x = float_of_int x /. float_of_int seq in
  {
    benchmark = profile.name;
    threads;
    epoch_size;
    seq_unmonitored_cycles = seq;
    timesliced = norm ts;
    butterfly = norm bf.makespan;
    parallel_unmonitored = norm parallel_app;
    flagged_events = ac.flagged_accesses;
    total_accesses = ac.total_accesses;
    fp_rate_percent =
      (if ac.total_accesses = 0 then 0.0
       else
         100.0 *. float_of_int ac.flagged_accesses
         /. float_of_int ac.total_accesses);
    app_stall_cycles = Array.fold_left ( + ) 0 bf.stall_cycles;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%s t=%d h=%d: ts=%.2f bf=%.2f app=%.2f fp=%s (%d/%d)" r.benchmark
    r.threads r.epoch_size r.timesliced r.butterfly r.parallel_unmonitored
    (Report_format.pct r.fp_rate_percent)
    r.flagged_events r.total_accesses
