(** Textual serialization of programs (multi-threaded traces).

    The format is line-oriented; each non-blank, non-comment line is
    [<tid> <mnemonic> <operands...>]:

    {v
    # comment
    threads 2
    0 malloc 0x100 64
    0 binop 0x10 0x100 0x104
    1 read 0x100
    0 heartbeat
    v}

    A [threads N] directive declares the thread count (needed when a
    thread's trace is empty).  Mnemonics: [assign x], [unop x a], [binop x a b], [read a],
    [malloc base size], [free base size], [taint x], [untaint x],
    [jump x], [sysarg x], [nop], [heartbeat].

    This is the trace tooling the paper's LBA hardware provided; here it
    lets externally generated traces be fed to the analyses and lets
    workload traces be inspected and persisted. *)

val encode : Program.t -> string
val encode_to_channel : out_channel -> Program.t -> unit

val decode : string -> (Program.t, string) result
(** Returns [Error msg] with a 1-based line number on malformed input. *)

val decode_file : string -> (Program.t, string) result

val roundtrip_exn : Program.t -> Program.t
(** [decode (encode p)], raising [Failure] on codec disagreement; used by
    tests. *)

(** {1 Binary format}

    A compact varint-encoded format for large traces (the text format costs
    ~20 bytes/event; the binary one 2–6).  Since format version 2 the
    encoding travels in a {!Binio} envelope — magic ["BFLY"], a version
    byte, the payload (varint thread count, then per thread a varint event
    count followed by events: opcode byte + varint operands) and a CRC32
    trailer — so truncation, bit flips and version skew are rejected with
    stable error messages instead of being misparsed.  Legacy version-1
    traces (prefix ["BFLY1"], no checksum) are still decoded. *)

val binary_magic : string
val binary_version : int

val encode_binary : Program.t -> string
val decode_binary : string -> (Program.t, string) result
val binary_roundtrip_exn : Program.t -> Program.t

(** {1 Event-level binary codec}

    The per-event encoding of the binary format, exposed for other
    persisted payloads that embed instructions — the checkpoint snapshots
    of [lib/recovery] reuse it for serialized blocks. *)

val put_instr : Binio.W.t -> Instr.t -> unit
val read_instr : Binio.R.t -> Instr.t
(** Raises {!Binio.R.Corrupt} on a malformed or heartbeat opcode. *)

val put_event : Binio.W.t -> Event.t -> unit
val read_event : Binio.R.t -> Event.t

(** {1 Zero-copy cursor}

    In-place walk over a binary trace buffer: the envelope is validated
    without copying the payload ({!Binio.crc32_sub} over the original
    string), thread event regions are located in one validating scan,
    and instruction rows are then decoded epoch-by-epoch straight out of
    the buffer — no [Program.t], no per-thread event lists, no second
    copy of the trace.  This is the ingestion path behind
    [--ingest cursor]: rows feed the lifeguards' [Resumable] engines
    directly, so peak memory is one epoch row instead of the whole
    decoded program.

    The cursor accepts exactly the inputs {!decode_binary} accepts
    (including legacy ["BFLY1"] traces) and rejects exactly the inputs
    it rejects, with the same error messages — fuzz-tested in
    [test/test_tracing.ml]. *)
module Cursor : sig
  type t

  val of_string : string -> (t, string) result
  (** Validate the envelope and scan the payload.  O(size) time, O(1)
      extra space beyond the cursor record; the buffer is retained by
      reference. *)

  val threads : t -> int
  val instr_count : t -> int

  val num_rows : ?every:int -> t -> int
  (** Number of epoch rows {!iter_rows} will yield (always ≥ 1). *)

  val iter_rows : ?every:int -> t -> (Instr.t array array -> unit) -> unit
  (** [iter_rows ?every c f] calls [f] once per epoch row (a per-tid
      array of instruction arrays), in order.  Without [every], embedded
      heartbeats delimit epochs exactly like [Trace.blocks] (k
      separators yield k+1 blocks); with [~every:h], embedded heartbeats
      are discarded and the instruction stream re-chunked every [h]
      instructions exactly like [Trace.with_heartbeats] (floor(n/h)+1
      blocks, the last one empty when [h] divides [n]).  Shorter threads
      are padded with empty blocks like [Epochs.of_blocks].  The rows
      are therefore identical to
      [Epochs.of_program (decode_binary ...)] under the same chunking —
      property-tested in [test/test_tracing.ml]. *)
end
