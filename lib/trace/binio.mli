(** Binary encoding primitives shared by the trace codec and the
    checkpoint snapshots ([lib/recovery]).

    Two layers:

    {ul
    {- {!W}/{!R}: a varint-based writer/reader pair for structured
       payloads (LEB128 unsigned varints, length-prefixed strings,
       counted lists).  The reader raises {!R.Corrupt} on any malformed
       input, so decoders fail loudly instead of misparsing.}
    {- {!frame}/{!unframe}: the durable envelope every persisted payload
       travels in — magic string, one format-version byte, the payload,
       and a CRC32 (IEEE 802.3) trailer over everything before it.
       Unframing rejects wrong magic, wrong version, truncation and any
       bit flip, each with a distinct, stable error message.}} *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected, init/xorout [0xffffffff]) of the whole
    string, as a non-negative int in [0, 2^32). *)

val crc32_sub : string -> pos:int -> len:int -> int
(** {!crc32} over [s.[pos .. pos+len-1]] without copying the slice.
    Raises [Invalid_argument] on an out-of-range window. *)

(** Append-only payload writer over a {!Buffer.t}. *)
module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  (** One byte; the value must be in [0, 255]. *)

  val varint : t -> int -> unit
  (** LEB128; the value must be non-negative. *)

  val sint : t -> int -> unit
  (** Zigzag-coded signed int.  The magnitude must fit once doubled
      (|n| <= max_int/2) — ample for addresses, epochs and indices. *)

  val bool : t -> bool -> unit
  val string : t -> string -> unit
  (** Varint length, then the raw bytes. *)

  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Varint count, then each element. *)

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

(** Payload reader; the exact dual of {!W}. *)
module R : sig
  type t

  exception Corrupt of string
  (** Raised on truncation, overlong varints, or invalid tags.  {!R}
      functions raise it; [decode]-style entry points catch it and
      return [Error]. *)

  val of_string : string -> t

  val of_substring : string -> pos:int -> len:int -> t
  (** A reader over the window [s.[pos .. pos+len-1]], sharing [s]
      (no copy).  Reads past the window raise {!Corrupt} exactly as
      reads past the end of a whole-string reader do.  Raises
      [Invalid_argument] on an out-of-range window. *)

  val pos : t -> int
  (** Current absolute offset into the underlying string. *)

  val remaining : t -> int
  (** Bytes left before the window's end. *)

  val u8 : t -> int
  val varint : t -> int
  val sint : t -> int
  val bool : t -> bool
  val string : t -> string
  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option

  val expect_end : t -> unit
  (** Raises {!Corrupt} unless the whole input has been consumed. *)
end

val frame : magic:string -> version:int -> string -> string
(** [magic ^ version-byte ^ payload ^ crc32(all of the above)]. *)

val unframe : magic:string -> version:int -> string -> (string, string) result
(** Recover the payload, checking magic, version and CRC.  Errors:
    ["bad magic"], ["unsupported format version N (expected M)"],
    ["truncated envelope"], ["CRC mismatch: stored ..., computed ..."]. *)
