(** A single thread's dynamic trace: the event sequence one lifeguard
    thread consumes. *)

type t

val of_events : Event.t list -> t
val of_instrs : Instr.t list -> t
(** A trace with no heartbeats. *)

val events : t -> Event.t array
val instrs : t -> Instr.t list
(** Instructions in program order, heartbeats stripped. *)

val length : t -> int
(** Total number of events including heartbeats. *)

val instr_count : t -> int
val memory_event_count : t -> int
(** Number of instructions that generate logged loads/stores. *)

val with_heartbeats : every:int -> t -> t
(** [with_heartbeats ~every t] strips any existing heartbeats and inserts a
    heartbeat after every [every] instructions.  [every] must be positive. *)

val blocks : t -> Instr.t array list
(** Split at heartbeats: the list of per-epoch instruction blocks, in epoch
    order.  A trace with [k] heartbeats yields [k+1] blocks (possibly
    empty). *)

val of_blocks : Instr.t array list -> t
(** Inverse of {!blocks}: the events of the given blocks with a heartbeat
    between consecutive blocks ([n] blocks yield [n-1] heartbeats; the
    empty list yields the empty trace, which {!blocks} reads back as one
    empty block). *)

val append : t -> t -> t
val pp : Format.formatter -> t -> unit
