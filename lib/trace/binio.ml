(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.  Kept in pure
   int arithmetic: the 32-bit values fit easily in OCaml's 63-bit ints. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Binio.crc32_sub";
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let contents = Buffer.contents

  let u8 b n =
    if n < 0 || n > 255 then invalid_arg "Binio.W.u8: out of range";
    Buffer.add_char b (Char.chr n)

  let varint b n =
    if n < 0 then invalid_arg "Binio.W.varint: negative";
    let n = ref n in
    let continue = ref true in
    while !continue do
      let byte = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then (
        Buffer.add_char b (Char.chr byte);
        continue := false)
      else Buffer.add_char b (Char.chr (byte lor 0x80))
    done

  let bool b v = u8 b (if v then 1 else 0)

  (* Zigzag: small magnitudes of either sign stay short. *)
  let sint b n = varint b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let string b s =
    varint b (String.length s);
    Buffer.add_string b s

  let pair b fa fb (x, y) =
    fa b x;
    fb b y

  let list b f xs =
    varint b (List.length xs);
    List.iter (f b) xs

  let array b f xs =
    varint b (Array.length xs);
    Array.iter (f b) xs

  let option b f = function
    | None -> u8 b 0
    | Some x ->
      u8 b 1;
      f b x
end

module R = struct
  type t = { s : string; mutable pos : int; limit : int }

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt
  let of_string s = { s; pos = 0; limit = String.length s }

  (* In-place reader over a window of [s]: no copy, so cursor-style
     decoders can walk a region of a large buffer directly. *)
  let of_substring s ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Binio.R.of_substring";
    { s; pos; limit = pos + len }

  let pos r = r.pos
  let remaining r = r.limit - r.pos

  let u8 r =
    if r.pos >= r.limit then corrupt "truncated input";
    let b = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    b

  let varint r =
    let rec go shift acc =
      if shift > 56 then corrupt "varint too long";
      let b = u8 r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | b -> corrupt "bad bool tag %d" b

  let sint r =
    let z = varint r in
    (z lsr 1) lxor (-(z land 1))

  let string r =
    let n = varint r in
    if n > r.limit - r.pos then corrupt "truncated string";
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s

  let pair r fa fb =
    let a = fa r in
    let b = fb r in
    (a, b)

  let list r f = List.init (varint r) (fun _ -> f r)
  let array r f = Array.init (varint r) (fun _ -> f r)

  let option r f =
    match u8 r with
    | 0 -> None
    | 1 -> Some (f r)
    | b -> corrupt "bad option tag %d" b

  let expect_end r = if r.pos <> r.limit then corrupt "trailing bytes"
end

(* The CRC covers magic + version + payload, so a flipped bit anywhere in
   the envelope (including the header) is detected, not just payload
   corruption. *)
let frame ~magic ~version payload =
  let b = Buffer.create (String.length payload + String.length magic + 5) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (version land 0xff));
  Buffer.add_string b payload;
  let crc = crc32 (Buffer.contents b) in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * i)) land 0xff))
  done;
  Buffer.contents b

let unframe ~magic ~version s =
  let mlen = String.length magic in
  let len = String.length s in
  if len < mlen || String.sub s 0 mlen <> magic then Error "bad magic"
  else if len < mlen + 5 then Error "truncated envelope"
  else
    let got_version = Char.code s.[mlen] in
    if got_version <> version then
      Error
        (Printf.sprintf "unsupported format version %d (expected %d)"
           got_version version)
    else
      let body = String.sub s 0 (len - 4) in
      let stored = ref 0 in
      for i = 3 downto 0 do
        stored := (!stored lsl 8) lor Char.code s.[len - 4 + i]
      done;
      let computed = crc32 body in
      if !stored <> computed then
        Error
          (Printf.sprintf "CRC mismatch: stored %08x, computed %08x" !stored
             computed)
      else Ok (String.sub s (mlen + 1) (len - mlen - 5))
